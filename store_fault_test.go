package fastbcc_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/faultpoint"
)

// These tests drive the Store through the fault-injection points of the
// build pipeline (internal/faultpoint) and assert the fault-tolerance
// contract: a failed build never corrupts serving state, always releases
// its admission slot, and is fully described by the entry's failure
// state until a successful build clears it. All of them run under -race
// in CI.

// TestStorePanicIsolation: an engine panic becomes an error wrapping
// ErrBuildPanic, the entry keeps serving the last-good snapshot at its
// old version, the failure is visible in Status and Stats, and a
// subsequent healthy rebuild clears it and bumps the version.
func TestStorePanicIsolation(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)

	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := snap.Version
	snap.Release()

	faultpoint.ArmPanic(faultpoint.PanicInEngine)
	_, err = s.Rebuild(context.Background(), "demo", nil)
	if !errors.Is(err, fastbcc.ErrBuildPanic) {
		t.Fatalf("rebuild with panicking engine = %v, want ErrBuildPanic", err)
	}

	// Last-good snapshot still serves, at the pre-failure version.
	snap, err = s.Acquire("demo")
	if err != nil {
		t.Fatalf("Acquire after failed rebuild: %v", err)
	}
	if snap.Version != v1 {
		t.Fatalf("serving version = %d, want last-good %d", snap.Version, v1)
	}
	if !snap.Index.Biconnected(0, 1) {
		t.Fatal("last-good snapshot answers wrong")
	}
	snap.Release()

	st, err := s.Status("demo")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Loaded || st.Version != v1 {
		t.Fatalf("Status = %+v, want Loaded v%d", st, v1)
	}
	if st.ConsecutiveFailures != 1 || !strings.Contains(st.LastError, "panicked") || st.LastErrorAt.IsZero() {
		t.Fatalf("failure state = %+v, want 1 failure with panic error", st)
	}
	if gs := s.Stats(); gs.FailingGraphs != 1 || gs.BuildFailures != 1 {
		t.Fatalf("Stats = %+v, want FailingGraphs=1 BuildFailures=1", gs)
	}

	// Recovery: the next healthy build clears the failure state.
	faultpoint.Reset()
	snap, err = s.Rebuild(context.Background(), "demo", nil)
	if err != nil {
		t.Fatalf("rebuild after disarm: %v", err)
	}
	if snap.Version != v1+1 {
		t.Fatalf("recovered version = %d, want %d", snap.Version, v1+1)
	}
	snap.Release()
	st, _ = s.Status("demo")
	if st.ConsecutiveFailures != 0 || st.LastError != "" || !st.LastErrorAt.IsZero() {
		t.Fatalf("failure state after recovery = %+v, want clear", st)
	}
	if gs := s.Stats(); gs.FailingGraphs != 0 || gs.BuildFailures != 1 {
		t.Fatalf("Stats after recovery = %+v, want FailingGraphs=0 BuildFailures=1 (cumulative)", gs)
	}
}

// TestStoreFailedInitialLoad: an entry whose first build fails exists in
// the catalog unloaded — Acquire fails with ErrNotLoaded but Status
// reports why — and a retry brings it up normally.
func TestStoreFailedInitialLoad(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)

	faultpoint.ArmError(faultpoint.ErrorInBuild, 0)
	if _, err := s.Load(context.Background(), "demo", g, nil); !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("Load with injected error = %v, want ErrInjected", err)
	}
	if _, err := s.Acquire("demo"); !errors.Is(err, fastbcc.ErrNotLoaded) {
		t.Fatalf("Acquire of never-built entry = %v, want ErrNotLoaded", err)
	}
	st, err := s.Status("demo")
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded || st.ConsecutiveFailures != 1 {
		t.Fatalf("Status = %+v, want unloaded with 1 failure", st)
	}

	faultpoint.Reset()
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if st, _ = s.Status("demo"); !st.Loaded || st.ConsecutiveFailures != 0 {
		t.Fatalf("Status after retry = %+v, want loaded and clear", st)
	}
}

// TestStoreBuildTimeout: a build past the store's BuildTimeout is
// cooperatively canceled — the pipeline observes the cancellation (the
// CancelObserved point fires), the error is DeadlineExceeded, and the
// admission slot is freed so the next build proceeds.
func TestStoreBuildTimeout(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:             2,
		MaxConcurrentBuilds: 1, // a leaked slot would wedge the store
		BuildTimeout:        20 * time.Millisecond,
	})
	defer s.Close()
	g := storeTestGraph(t)

	faultpoint.ArmSleep(faultpoint.SlowBuild, time.Hour)
	faultpoint.ArmObserve(faultpoint.CancelObserved)
	if _, err := s.Load(context.Background(), "demo", g, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-deadline Load = %v, want DeadlineExceeded", err)
	}
	if faultpoint.Hits(faultpoint.CancelObserved) == 0 {
		t.Fatal("cancellation was not observed inside the build pipeline")
	}

	// The slot must have been released: with the fault disarmed the next
	// build on the 1-slot gate succeeds immediately.
	faultpoint.Disarm(faultpoint.SlowBuild)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatalf("Load after timed-out build: %v (admission slot leaked?)", err)
	}
	snap.Release()
}

// TestStoreCallerCancel: canceling the caller's context abandons the
// build with context.Canceled.
func TestStoreCallerCancel(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)

	faultpoint.ArmSleep(faultpoint.SlowBuild, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Load(ctx, "demo", g, nil)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the build reach the sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled Load = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled build never returned")
	}
}

// TestStoreSaturation: with the admission gate full and no queue wait,
// further builds are shed with ErrSaturated — while queries against
// already-loaded graphs keep being answered (they are never gated).
func TestStoreSaturation(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:             2,
		MaxConcurrentBuilds: 1,
		// BuildQueueWait 0: shed immediately when the gate is full.
	})
	defer s.Close()
	g := storeTestGraph(t)

	snap, err := s.Load(context.Background(), "served", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// Park a build in the gate's only slot.
	faultpoint.ArmSleep(faultpoint.SlowBuild, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	slow := make(chan error, 1)
	go func() {
		_, err := s.Load(ctx, "slow", storeTestGraph(t), nil)
		slow <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().InFlightBuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow build never started")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Load(context.Background(), "shed", storeTestGraph(t), nil); !errors.Is(err, fastbcc.ErrSaturated) {
		t.Fatalf("Load on full gate = %v, want ErrSaturated", err)
	}
	if _, err := s.Rebuild(context.Background(), "served", nil); !errors.Is(err, fastbcc.ErrSaturated) {
		t.Fatalf("Rebuild on full gate = %v, want ErrSaturated", err)
	}

	// Queries are never shed: the gate being full is invisible to them.
	for i := 0; i < 100; i++ {
		qs, err := s.Acquire("served")
		if err != nil {
			t.Fatalf("Acquire during saturation: %v", err)
		}
		if !qs.Index.Connected(0, 2) {
			t.Fatal("query answered wrong during saturation")
		}
		qs.Release()
	}

	cancel()
	if err := <-slow; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked build = %v, want context.Canceled", err)
	}
	// Slot released: builds are admitted again.
	faultpoint.Reset()
	snap, err = s.Rebuild(context.Background(), "served", nil)
	if err != nil {
		t.Fatalf("Rebuild after gate drained: %v", err)
	}
	snap.Release()
	// The saturation failures were shed ahead of any build, so they must
	// not have been recorded as build failures of their entries.
	if st, _ := s.Status("served"); st.ConsecutiveFailures != 0 {
		t.Fatalf("shed rebuild recorded a failure: %+v", st)
	}
}

// TestStoreLoadRemoveRace: a Load racing a Remove of the same name must
// land the load (recreating the entry), never error with "not loaded" —
// the historical race where Load could observe the removed entry between
// lookup and lock.
func TestStoreLoadRemoveRace(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	for i := 0; i < 200; i++ {
		g := storeTestGraph(t)
		if snap, err := s.Load(context.Background(), "demo", g, nil); err != nil {
			t.Fatal(err)
		} else {
			snap.Release()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.Remove("demo")
		}()
		var loadErr error
		go func() {
			defer wg.Done()
			snap, err := s.Load(context.Background(), "demo", g, nil)
			if err != nil {
				loadErr = err
				return
			}
			snap.Release()
		}()
		wg.Wait()
		if loadErr != nil {
			t.Fatalf("iteration %d: Load racing Remove failed: %v", i, loadErr)
		}
		// Whatever the interleaving, the load won an entry at some point;
		// if Remove ran second the name is gone, if it ran first the
		// loaded entry survives. Both are fine — only a Load error is not.
		s.Remove("demo")
	}
}

// TestStoreSentinels: the exported error sentinels classify every
// Store-level failure.
func TestStoreSentinels(t *testing.T) {
	s := fastbcc.NewStore(2)
	if _, err := s.Acquire("ghost"); !errors.Is(err, fastbcc.ErrNotLoaded) {
		t.Fatalf("Acquire(ghost) = %v, want ErrNotLoaded", err)
	}
	if _, err := s.Rebuild(context.Background(), "ghost", nil); !errors.Is(err, fastbcc.ErrNotLoaded) {
		t.Fatalf("Rebuild(ghost) = %v, want ErrNotLoaded", err)
	}
	if _, err := s.Status("ghost"); !errors.Is(err, fastbcc.ErrNotLoaded) {
		t.Fatalf("Status(ghost) = %v, want ErrNotLoaded", err)
	}
	s.Close()
	if _, err := s.Load(context.Background(), "g", storeTestGraph(t), nil); !errors.Is(err, fastbcc.ErrStoreClosed) {
		t.Fatalf("Load after Close = %v, want ErrStoreClosed", err)
	}
}

// TestMutateDeltaFlushPanicRequeues: an injected panic inside the
// coalesced delta rebuild leaves the last-good snapshot serving and
// re-queues every stolen delta — no mutation is lost — and a healthy
// retry applies them.
func TestMutateDeltaFlushPanicRequeues(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		MutationCoalesce: time.Hour, // only FlushDeltas drives the flush
	})
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := snap.Version
	snap.Release()

	r, err := s.ApplyBatch(context.Background(), "demo", nil, []fastbcc.Edge{{U: 2, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Queued != 1 || r.Pending != 1 {
		t.Fatalf("queued delete: %+v", r)
	}

	faultpoint.ArmPanic(faultpoint.MutateDeltaFlush)
	err = s.FlushDeltas(context.Background(), "demo")
	if !errors.Is(err, fastbcc.ErrBuildPanic) {
		t.Fatalf("flush with armed panic = %v, want ErrBuildPanic", err)
	}

	// Last-good still serving at the old version; the delta re-queued.
	cur, err := s.Acquire("demo")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != v1 || !cur.Index.Connected(0, 4) {
		t.Fatalf("serving version=%d (want %d) after failed flush", cur.Version, v1)
	}
	cur.Release()
	st, err := s.Status("demo")
	if err != nil {
		t.Fatal(err)
	}
	if st.PendingDeltas != 1 || st.DeltaFlushes != 0 {
		t.Fatalf("status after failed flush: %+v", st)
	}
	if st.ConsecutiveFailures == 0 || !strings.Contains(st.LastError, "delta flush") {
		t.Fatalf("failure state not recorded: %+v", st)
	}

	// Disarm and retry: the re-queued delete applies.
	faultpoint.Reset()
	if err := s.FlushDeltas(context.Background(), "demo"); err != nil {
		t.Fatal(err)
	}
	cur, err = s.Acquire("demo")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Index.Connected(0, 4) {
		t.Fatal("re-queued delete was lost")
	}
	st, _ = s.Status("demo")
	if st.PendingDeltas != 0 || st.DeltaFlushes != 1 || st.ConsecutiveFailures != 0 {
		t.Fatalf("status after recovery: %+v", st)
	}
}

// TestMutateClassifyFaultDemotes: an armed error (or panic) at the
// classify point demotes even a fast-classifiable insertion to the
// delta queue — degraded to a rebuild, never lost.
func TestMutateClassifyFaultDemotes(t *testing.T) {
	defer faultpoint.Reset()
	for _, mode := range []string{"error", "panic"} {
		s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
			Workers:          2,
			MutationCoalesce: time.Hour,
		})
		g := storeTestGraph(t)
		snap, err := s.Load(context.Background(), "demo", g, nil)
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()

		if mode == "error" {
			faultpoint.ArmError(faultpoint.MutateClassify, 0)
		} else {
			faultpoint.ArmPanic(faultpoint.MutateClassify)
		}
		// {0,1} would be a fast intra-block insert; the fault demotes it.
		r, err := s.ApplyBatch(context.Background(), "demo", []fastbcc.Edge{{U: 0, W: 1}}, nil)
		if err != nil {
			t.Fatalf("%s: ApplyBatch = %v", mode, err)
		}
		if r.Fast != 0 || r.Queued != 1 {
			t.Fatalf("%s: demoted insert: %+v", mode, r)
		}
		if faultpoint.Hits(faultpoint.MutateClassify) == 0 {
			t.Fatalf("%s: classify faultpoint never reached", mode)
		}
		faultpoint.Reset()

		if err := s.FlushDeltas(context.Background(), "demo"); err != nil {
			t.Fatal(err)
		}
		cur, err := s.Acquire("demo")
		if err != nil {
			t.Fatal(err)
		}
		if cur.NumEdges() != g.NumEdges()+1 {
			t.Fatalf("%s: demoted insert lost: %d edges", mode, cur.NumEdges())
		}
		cur.Release()
		s.Close()
	}
}
