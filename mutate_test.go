package fastbcc_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fastbcc "repro"
)

func canon(e fastbcc.Edge) fastbcc.Edge {
	if e.U > e.W {
		e.U, e.W = e.W, e.U
	}
	return e
}

// oracleIndex builds a from-scratch decomposition + index over exactly
// the given edge multiset — the ground truth every mutated snapshot is
// diffed against.
func oracleIndex(t *testing.T, n int, edges []fastbcc.Edge) *fastbcc.Index {
	t.Helper()
	g, err := fastbcc.NewGraphFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	_, idx := fastbcc.BuildIndex(g, nil)
	return idx
}

// diffIndexes compares every O(1) query the Index answers, over all
// vertex pairs, plus global counts and sampled Separates triples.
func diffIndexes(t *testing.T, tag string, n int, got, want *fastbcc.Index) {
	t.Helper()
	if g, w := got.NumBlocks(), want.NumBlocks(); g != w {
		t.Fatalf("%s: NumBlocks = %d, oracle %d", tag, g, w)
	}
	if g, w := got.NumCutVertices(), want.NumCutVertices(); g != w {
		t.Fatalf("%s: NumCutVertices = %d, oracle %d", tag, g, w)
	}
	if g, w := got.NumBridges(), want.NumBridges(); g != w {
		t.Fatalf("%s: NumBridges = %d, oracle %d", tag, g, w)
	}
	if g, w := got.NumTwoECC(), want.NumTwoECC(); g != w {
		t.Fatalf("%s: NumTwoECC = %d, oracle %d", tag, g, w)
	}
	for u := int32(0); u < int32(n); u++ {
		if g, w := got.IsCutVertex(u), want.IsCutVertex(u); g != w {
			t.Fatalf("%s: IsCutVertex(%d) = %v, oracle %v", tag, u, g, w)
		}
		for v := int32(0); v < int32(n); v++ {
			if g, w := got.Connected(u, v), want.Connected(u, v); g != w {
				t.Fatalf("%s: Connected(%d,%d) = %v, oracle %v", tag, u, v, g, w)
			}
			if g, w := got.Biconnected(u, v), want.Biconnected(u, v); g != w {
				t.Fatalf("%s: Biconnected(%d,%d) = %v, oracle %v", tag, u, v, g, w)
			}
			if g, w := got.TwoEdgeConnected(u, v), want.TwoEdgeConnected(u, v); g != w {
				t.Fatalf("%s: TwoEdgeConnected(%d,%d) = %v, oracle %v", tag, u, v, g, w)
			}
			if g, w := got.NumCutsOnPath(u, v), want.NumCutsOnPath(u, v); g != w {
				t.Fatalf("%s: NumCutsOnPath(%d,%d) = %d, oracle %d", tag, u, v, g, w)
			}
			if g, w := got.NumBridgesOnPath(u, v), want.NumBridgesOnPath(u, v); g != w {
				t.Fatalf("%s: NumBridgesOnPath(%d,%d) = %d, oracle %d", tag, u, v, g, w)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4*n; i++ {
		x, u, v := int32(rng.Intn(n)), int32(rng.Intn(n)), int32(rng.Intn(n))
		if g, w := got.Separates(x, u, v), want.Separates(x, u, v); g != w {
			t.Fatalf("%s: Separates(%d,%d,%d) = %v, oracle %v", tag, x, u, v, g, w)
		}
	}
}

func TestApplyBatchFastIntraBlock(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t) // triangle 0-1-2, bridge 2-3, square 3-4-5-6
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// 0 and 1 are biconnected and two-edge-connected (triangle): a
	// parallel edge changes no query answer — the fast path, no build.
	r, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fast != 1 || r.Collapsed != 0 || r.Queued != 0 || r.Pending != 0 {
		t.Fatalf("fast insert result: %+v", r)
	}
	if r.Version != 2 {
		t.Fatalf("fast insert version = %d, want 2", r.Version)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.OverlayEdges() != 1 || cur.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("overlay=%d edges=%d", cur.OverlayEdges(), cur.NumEdges())
	}
	st, err := s.Status("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.OverlayEdges != 1 || st.PendingDeltas != 0 || st.DeltaFlushes != 0 {
		t.Fatalf("status after fast insert: %+v", st)
	}
	base := g.Edges()
	diffIndexes(t, "fast", 7, cur.Index, oracleIndex(t, 7, append(base, fastbcc.Edge{U: 0, W: 1})))
}

func TestApplyBatchCollapsePath(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// 0 (triangle) to 4 (square): the BC-tree path crosses cuts 2 and 3,
	// so the insertion merges triangle + bridge block + square into one
	// block — the collapse path, still no pipeline run.
	r, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collapsed != 1 || r.Fast != 0 || r.Queued != 0 {
		t.Fatalf("collapse insert result: %+v", r)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Index.NumCutsOnPath(0, 4) != 0 || cur.Index.NumBridgesOnPath(0, 4) != 0 {
		t.Fatal("collapse left cuts or bridges on the 0-4 path")
	}
	diffIndexes(t, "collapse", 7, cur.Index, oracleIndex(t, 7, append(g.Edges(), fastbcc.Edge{U: 0, W: 4})))
}

func TestApplyBatchParallelEdgeOverBridge(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// 2 and 3 are biconnected (they share the bridge's 2-vertex block)
	// but NOT two-edge-connected: a parallel edge kills the bridge, which
	// only a rebuild expresses — the classifier must queue it.
	r, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 2, W: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queued != 1 || r.Fast != 0 || r.Collapsed != 0 || r.Pending != 1 {
		t.Fatalf("parallel-over-bridge result: %+v", r)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Index.NumBridges() != 0 || !cur.Index.TwoEdgeConnected(2, 3) {
		t.Fatal("flush did not kill the doubled bridge")
	}
	diffIndexes(t, "bridge-parallel", 7, cur.Index, oracleIndex(t, 7, append(g.Edges(), fastbcc.Edge{U: 2, W: 3})))
	st, _ := s.Status("g")
	if st.PendingDeltas != 0 || st.DeltaFlushes != 1 || st.OverlayEdges != 0 {
		t.Fatalf("status after flush: %+v", st)
	}
}

func TestApplyBatchDeleteAndSaturation(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// Deleting an absent edge saturates to a no-op; deleting the bridge
	// disconnects the square from the triangle.
	r, err := s.ApplyBatch(context.Background(), "g",
		nil, []fastbcc.Edge{{U: 0, W: 5}, {U: 2, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Queued != 2 {
		t.Fatalf("delete result: %+v", r)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.Index.Connected(0, 4) {
		t.Fatal("bridge delete did not disconnect 0 from 4")
	}
	want := []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 0, W: 2},
		{U: 3, W: 4}, {U: 4, W: 5}, {U: 5, W: 6}, {U: 3, W: 6},
	}
	diffIndexes(t, "delete", 7, cur.Index, oracleIndex(t, 7, want))
}

func TestApplyBatchAddThenDeleteSameBatch(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// The add applies on the fast path, the delete of the same edge
	// queues behind it; the flush must replay them in order and land on
	// the original edge set.
	r, err := s.ApplyBatch(context.Background(), "g",
		[]fastbcc.Edge{{U: 0, W: 1}}, []fastbcc.Edge{{U: 0, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fast != 1 || r.Queued != 1 {
		t.Fatalf("add+delete result: %+v", r)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.NumEdges() != g.NumEdges() {
		t.Fatalf("edges after add+delete = %d, want %d", cur.NumEdges(), g.NumEdges())
	}
	diffIndexes(t, "add-del", 7, cur.Index, oracleIndex(t, 7, g.Edges()))
}

func TestApplyBatchValidation(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	if _, err := s.ApplyBatch(context.Background(), "missing", []fastbcc.Edge{{U: 0, W: 1}}, nil); err == nil {
		t.Fatal("mutating an unloaded graph succeeded")
	}
	snap, err := s.Load(context.Background(), "g", storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if _, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 99}}, nil); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := s.ApplyBatch(context.Background(), "g", nil, []fastbcc.Edge{{U: -1, W: 0}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

// mutationFamilies are the graph shapes the randomized oracle crosstest
// runs over: general random, forest (every insertion is a collapse or a
// component merge), multigraph (self-loops and parallel edges), and
// disconnected clusters.
func mutationFamilies(rng *rand.Rand) map[string]struct {
	n     int
	edges []fastbcc.Edge
} {
	fam := map[string]struct {
		n     int
		edges []fastbcc.Edge
	}{}

	n := 18
	var random []fastbcc.Edge
	for i := 0; i < 24; i++ {
		random = append(random, fastbcc.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
	}
	fam["random"] = struct {
		n     int
		edges []fastbcc.Edge
	}{n, random}

	var forest []fastbcc.Edge
	for v := 1; v < n; v++ {
		if rng.Float64() < 0.75 {
			forest = append(forest, fastbcc.Edge{U: int32(rng.Intn(v)), W: int32(v)})
		}
	}
	fam["forest"] = struct {
		n     int
		edges []fastbcc.Edge
	}{n, forest}

	var multi []fastbcc.Edge
	for i := 0; i < 20; i++ {
		u, w := int32(rng.Intn(12)), int32(rng.Intn(12))
		multi = append(multi, fastbcc.Edge{U: u, W: w})
		if rng.Float64() < 0.4 {
			multi = append(multi, fastbcc.Edge{U: u, W: w}) // parallel
		}
	}
	multi = append(multi, fastbcc.Edge{U: 3, W: 3}, fastbcc.Edge{U: 7, W: 7})
	fam["multigraph"] = struct {
		n     int
		edges []fastbcc.Edge
	}{12, multi}

	var disc []fastbcc.Edge
	for i := 0; i < 10; i++ {
		disc = append(disc, fastbcc.Edge{U: int32(rng.Intn(8)), W: int32(rng.Intn(8))})
		disc = append(disc, fastbcc.Edge{U: int32(8 + rng.Intn(8)), W: int32(8 + rng.Intn(8))})
	}
	fam["disconnected"] = struct {
		n     int
		edges []fastbcc.Edge
	}{16, disc}

	return fam
}

// TestMutationOracleRandomized is the crosstest the acceptance criteria
// require: randomized add/del sequences on four graph families, diffing
// every Index query after each applied mutation against a from-scratch
// rebuild oracle. Single-mutation batches make the serving edge set
// deterministic: a mutation either applies (fast/collapse — the serving
// snapshot now reflects it) or queues (it applies at the next flush).
func TestMutationOracleRandomized(t *testing.T) {
	for famName, fam := range mutationFamilies(rand.New(rand.NewSource(42))) {
		fam := fam
		t.Run(famName, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(len(famName)) * 1009))
			// A huge coalesce window parks the async flusher, so queued
			// deltas reach the serving snapshot ONLY through the explicit
			// FlushDeltas below — that determinism is what lets the test
			// know exactly which edge multiset the snapshot reflects.
			s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
				Workers:          2,
				MutationCoalesce: time.Hour,
			})
			defer s.Close()
			g, err := fastbcc.NewGraphFromEdges(fam.n, fam.edges)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := s.Load(context.Background(), famName, g, nil)
			if err != nil {
				t.Fatal(err)
			}
			snap.Release()

			// served: the edge multiset the serving snapshot reflects.
			// full: counts after every accepted mutation (what serving
			// becomes after a flush).
			served := append([]fastbcc.Edge(nil), g.Edges()...)
			full := map[fastbcc.Edge]int{}
			for _, e := range served {
				full[canon(e)]++
			}
			expand := func() []fastbcc.Edge {
				var out []fastbcc.Edge
				for e, c := range full {
					for i := 0; i < c; i++ {
						out = append(out, e)
					}
				}
				return out
			}

			const steps = 60
			for i := 0; i < steps; i++ {
				e := canon(fastbcc.Edge{U: int32(rng.Intn(fam.n)), W: int32(rng.Intn(fam.n))})
				if rng.Float64() < 0.6 {
					r, err := s.ApplyBatch(context.Background(), famName, []fastbcc.Edge{e}, nil)
					if err != nil {
						t.Fatal(err)
					}
					full[e]++
					if r.Fast+r.Collapsed == 1 {
						served = append(served, e)
					} else if r.Queued != 1 {
						t.Fatalf("step %d: add disposed nowhere: %+v", i, r)
					}
				} else {
					if rng.Float64() < 0.5 && len(served) > 0 {
						e = canon(served[rng.Intn(len(served))])
					}
					if _, err := s.ApplyBatch(context.Background(), famName, nil, []fastbcc.Edge{e}); err != nil {
						t.Fatal(err)
					}
					if full[e] > 0 {
						full[e]--
					}
				}
				if rng.Float64() < 0.3 || i == steps-1 {
					if err := s.FlushDeltas(context.Background(), famName); err != nil {
						t.Fatal(err)
					}
					served = expand()
				}
				cur, err := s.Acquire(famName)
				if err != nil {
					t.Fatal(err)
				}
				diffIndexes(t, fmt.Sprintf("%s step %d", famName, i), fam.n,
					cur.Index, oracleIndex(t, fam.n, served))
				cur.Release()
			}
			st, err := s.Status(famName)
			if err != nil {
				t.Fatal(err)
			}
			if st.PendingDeltas != 0 {
				t.Fatalf("pending deltas after final flush: %+v", st)
			}
		})
	}
}

// TestMutationBurstCoalesces is the acceptance criterion: a burst of 100
// unclassifiable mutations triggers at most 3 coalesced rebuilds, with
// queries serving throughout.
func TestMutationBurstCoalesces(t *testing.T) {
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		MutationCoalesce: 50 * time.Millisecond,
	})
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			cur, err := s.Acquire("g")
			if err != nil {
				t.Error(err)
				return
			}
			if !cur.Index.Connected(0, 4) {
				t.Error("query served a disconnected 0-4 during the burst")
				cur.Release()
				return
			}
			cur.Release()
		}
	}()

	// 100 deletions of absent edges: every one is unclassifiable, every
	// one is a saturating no-op, so the graph never actually changes.
	for i := 0; i < 100; i++ {
		r, err := s.ApplyBatch(context.Background(), "g",
			nil, []fastbcc.Edge{{U: 0, W: int32(4 + i%3)}})
		if err != nil {
			t.Fatal(err)
		}
		if r.Queued != 1 {
			t.Fatalf("burst mutation %d: %+v", i, r)
		}
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()

	st, err := s.Status("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.PendingDeltas != 0 {
		t.Fatalf("pending after drain: %+v", st)
	}
	if st.DeltaFlushes < 1 || st.DeltaFlushes > 3 {
		t.Fatalf("burst of 100 mutations ran %d coalesced rebuilds, want 1..3", st.DeltaFlushes)
	}
	stats := s.Stats()
	if stats.DeltaFlushes != st.DeltaFlushes || stats.PendingDeltas != 0 {
		t.Fatalf("store stats disagree: %+v", stats)
	}
}

func TestLoadDiscardsPendingDeltas(t *testing.T) {
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		MutationCoalesce: time.Hour, // park the async flusher well away
	})
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	if _, err := s.ApplyBatch(context.Background(), "g", nil, []fastbcc.Edge{{U: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Status("g"); st.PendingDeltas != 1 {
		t.Fatalf("pending before reload: %+v", st)
	}

	// Load replaces the graph wholesale: the queued deltas describe edges
	// of the old graph and must die with it.
	snap2, err := s.Load(context.Background(), "g", storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	if st, _ := s.Status("g"); st.PendingDeltas != 0 {
		t.Fatalf("pending after reload: %+v", st)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if !cur.Index.Connected(0, 4) {
		t.Fatal("discarded delete was applied to the new graph")
	}
}

func TestRebuildFoldsOverlay(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	if _, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	snap2, err := s.Rebuild(context.Background(), "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	if snap2.OverlayEdges() != 0 {
		t.Fatalf("rebuild kept %d overlay edges", snap2.OverlayEdges())
	}
	if snap2.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("rebuild lost the overlay edge: %d edges, want %d", snap2.NumEdges(), g.NumEdges()+1)
	}
	diffIndexes(t, "rebuild-fold", 7, snap2.Index, oracleIndex(t, 7, append(g.Edges(), fastbcc.Edge{U: 0, W: 1})))
}

// TestMutationOrderingAfterQueue: once any delta is pending, even
// fast-classifiable insertions must queue behind it so the flush replays
// arrival order.
func TestMutationOrderingAfterQueue(t *testing.T) {
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		MutationCoalesce: time.Hour,
	})
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	if _, err := s.ApplyBatch(context.Background(), "g", nil, []fastbcc.Edge{{U: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	// {0,1} is fast-classifiable, but a delta is pending: it must queue.
	r, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fast != 0 || r.Queued != 1 || r.Pending != 2 {
		t.Fatalf("mutation behind pending delta: %+v", r)
	}
	if r.DeltaAge <= 0 {
		t.Fatalf("delta age not reported: %+v", r)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	want := append(g.Edges()[:0:0], g.Edges()...)
	want = append(want, fastbcc.Edge{U: 0, W: 1})
	// minus the deleted bridge {2,3}:
	trimmed := want[:0]
	removed := false
	for _, e := range want {
		if !removed && canon(e) == (fastbcc.Edge{U: 2, W: 3}) {
			removed = true
			continue
		}
		trimmed = append(trimmed, e)
	}
	diffIndexes(t, "ordering", 7, cur.Index, oracleIndex(t, 7, trimmed))
}
