package fastbcc_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/faultpoint"
	"repro/internal/persist"
)

// durableStore builds a Store persisting under dir, with the async
// flusher parked (tests flush explicitly for determinism).
func durableStore(dir string) *fastbcc.Store {
	return fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		MutationCoalesce: time.Hour,
		DataDir:          dir,
	})
}

// TestDurableRecoveryRoundTrip is the tentpole's core contract: load,
// mutate (every disposition: fast, collapse, queued, deleted), flush
// some of it, persist, mutate more WITHOUT persisting — then close,
// recover in a fresh store, and diff every query against a from-scratch
// oracle over the full acknowledged edge multiset. The mutations after
// the last persisted snapshot survive only through the journal.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := storeTestGraph(t) // triangle 0-1-2, bridge 2-3, square 3-4-5-6
	full := map[fastbcc.Edge]int{}
	for _, e := range g.Edges() {
		full[canon(e)]++
	}
	apply := func(s *fastbcc.Store, adds, dels []fastbcc.Edge) {
		t.Helper()
		if _, err := s.ApplyBatch(context.Background(), "g", adds, dels); err != nil {
			t.Fatal(err)
		}
		for _, e := range adds {
			full[canon(e)]++
		}
		for _, e := range dels {
			if full[canon(e)] > 0 {
				full[canon(e)]--
			}
		}
	}

	s := durableStore(dir)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// Pre-snapshot history: a fast add, a queued bridge doubling, a
	// delete — flushed, then persisted, so the snapshot reflects it all.
	apply(s, []fastbcc.Edge{{U: 0, W: 1}}, nil)
	apply(s, []fastbcc.Edge{{U: 2, W: 3}}, nil)
	apply(s, nil, []fastbcc.Edge{{U: 4, W: 5}})
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot history: acknowledged, journaled, never persisted.
	// The fast add (1-2 stays inside the triangle block) exercises the
	// applied-record path; the deletes and the add queued behind them
	// exercise the queued-record path.
	apply(s, []fastbcc.Edge{{U: 1, W: 2}}, nil)
	apply(s, nil, []fastbcc.Edge{{U: 3, W: 6}})
	apply(s, []fastbcc.Edge{{U: 0, W: 6}}, nil)
	s.Close()

	// A fresh store over the same directory: the snapshot serves
	// immediately, the journal tail replays through the delta queue.
	s2 := durableStore(dir)
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("recovery failures: %+v", rep.Failures)
	}
	if len(rep.Graphs) != 1 || rep.Graphs[0].Name != "g" {
		t.Fatalf("recovered graphs: %+v", rep.Graphs)
	}
	if rep.Graphs[0].Replayed == 0 {
		t.Fatal("post-snapshot mutations were not queued for replay")
	}

	// Stale-but-correct: before any flush, the snapshot answers as of
	// its persist point (0 and 4 became connected pre-snapshot).
	cur, err := s2.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Index.Connected(0, 4) {
		t.Fatal("recovered snapshot lost pre-snapshot state")
	}
	cur.Release()

	// One coalesced flush catches up to the full acknowledged history.
	if err := s2.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	var want []fastbcc.Edge
	for e, c := range full {
		for i := 0; i < c; i++ {
			want = append(want, e)
		}
	}
	cur, err = s2.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	diffIndexes(t, "recovered", 7, cur.Index, oracleIndex(t, 7, want))

	stats := s2.Stats()
	if stats.RecoveredGraphs != 1 || stats.ReplayedMutations == 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
}

// TestDurableOverlayInSnapshot is the satellite regression: a snapshot
// persisted while overlay edges are live (fast/collapse mutations not
// yet folded by a flush) must carry the overlay, and recovery must
// serve it — an overlay edge silently dropped by the encode path would
// pass every no-mutation test and corrupt exactly the graphs that were
// mutated before the crash.
func TestDurableOverlayInSnapshot(t *testing.T) {
	dir := t.TempDir()
	g := storeTestGraph(t)

	s := durableStore(dir)
	snap, err := s.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	// Fast-path add: lives only in the overlay, no flush.
	if r, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil); err != nil || r.Fast != 1 {
		t.Fatalf("fast add: %+v, %v", r, err)
	}
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := durableStore(dir)
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 1 || len(rep.Failures) != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	cur, err := s2.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	if cur.OverlayEdges() != 1 {
		t.Fatalf("recovered overlay edges = %d, want 1", cur.OverlayEdges())
	}
	if cur.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("recovered edges = %d, want %d", cur.NumEdges(), g.NumEdges()+1)
	}
	diffIndexes(t, "overlay-recovered", 7, cur.Index,
		oracleIndex(t, 7, append(g.Edges(), fastbcc.Edge{U: 0, W: 1})))
	// The overlay also survives a further flush on the recovered entry.
	if _, err := s2.ApplyBatch(context.Background(), "g", nil, []fastbcc.Edge{{U: 2, W: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	want := append(g.Edges(), fastbcc.Edge{U: 0, W: 1})
	trimmed := want[:0]
	removed := false
	for _, e := range want {
		if !removed && canon(e) == (fastbcc.Edge{U: 2, W: 3}) {
			removed = true
			continue
		}
		trimmed = append(trimmed, e)
	}
	cur2, err := s2.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Release()
	diffIndexes(t, "overlay-flushed", 7, cur2.Index, oracleIndex(t, 7, trimmed))
}

// TestDurableFaultDegradation: injected persistence faults degrade
// durability — Status reports it, counters count it — but queries and
// mutation acknowledgments never fail.
func TestDurableFaultDegradation(t *testing.T) {
	defer faultpoint.Reset()
	dir := t.TempDir()
	s := durableStore(dir)
	defer s.Close()
	snap, err := s.Load(context.Background(), "g", storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}

	for _, fp := range []string{persist.FaultWrite, persist.FaultFsync, persist.FaultRename} {
		if err := faultpoint.Set(fp + "=error"); err != nil {
			t.Fatal(err)
		}
		// Mutations still acknowledge (the WAL append fails under
		// persist.write; the others only hit the snapshot path).
		if _, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil); err != nil {
			t.Fatalf("%s: mutation ack failed under fault: %v", fp, err)
		}
		// Snapshot writes fail, reported not fatal.
		if err := s.Persist("g"); err == nil {
			t.Fatalf("%s: Persist succeeded under fault", fp)
		}
		// Queries keep serving.
		cur, err := s.Acquire("g")
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Index.Connected(0, 4) {
			t.Fatalf("%s: query answer changed under fault", fp)
		}
		cur.Release()
		st, err := s.Status("g")
		if err != nil {
			t.Fatal(err)
		}
		if !st.DurabilityDegraded || st.LastPersistError == "" {
			t.Fatalf("%s: status not degraded: %+v", fp, st)
		}
		faultpoint.Disarm(fp)
	}

	// Recovery: a successful persist clears the degradation.
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}
	st, err := s.Status("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.DurabilityDegraded {
		t.Fatalf("degradation not cleared by successful persist: %+v", st)
	}
	if stats := s.Stats(); stats.PersistFailures == 0 || stats.DegradedGraphs != 0 {
		t.Fatalf("stats after recovery: %+v", stats)
	}
}

// TestDurableCorruptSnapshotSkipped: a corrupt snapshot fails that one
// graph's recovery — reported, directory left for inspection — without
// blocking other graphs.
func TestDurableCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	s := durableStore(dir)
	for _, name := range []string{"good", "bad"} {
		snap, err := s.Load(context.Background(), name, storeTestGraph(t), nil)
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()
		if err := s.Persist(name); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a 256-byte span in the middle of bad's snapshot: well past the
	// header, and wide enough to guarantee hitting checksummed section
	// data rather than only alignment padding.
	badSnap := filepath.Join(dir, "g-bad", "snapshot.fbcc")
	raw, err := os.ReadFile(badSnap)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(raw) / 2; i < len(raw)/2+256 && i < len(raw); i++ {
		raw[i] ^= 0x40
	}
	if err := os.WriteFile(badSnap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:      2,
		DataDir:      dir,
		VerifyOnLoad: true,
	})
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 1 || rep.Graphs[0].Name != "good" {
		t.Fatalf("recovered: %+v", rep.Graphs)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("failures: %+v", rep.Failures)
	}
	if _, err := s2.Acquire("bad"); err == nil {
		t.Fatal("corrupt graph is serving")
	}
	cur, err := s2.Acquire("good")
	if err != nil {
		t.Fatal(err)
	}
	cur.Release()
}

// TestDurableRemoveDeletesData: Remove tears down the graph's data
// directory, so a later Recover cannot resurrect it.
func TestDurableRemoveDeletesData(t *testing.T) {
	dir := t.TempDir()
	s := durableStore(dir)
	snap, err := s.Load(context.Background(), "g", storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "g-g", "snapshot.fbcc")); err != nil {
		t.Fatalf("snapshot not on disk before Remove: %v", err)
	}
	if err := s.Remove("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "g-g")); !os.IsNotExist(err) {
		t.Fatalf("graph dir survived Remove: %v", err)
	}
	s.Close()

	s2 := durableStore(dir)
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 0 || len(rep.Failures) != 0 {
		t.Fatalf("removed graph resurrected: %+v", rep)
	}
}

// TestDurableUnsafeNamesRoundTrip: catalog names that cannot be file
// names hex-encode into their directory and recover under the original
// name (the meta blob is authoritative).
func TestDurableUnsafeNamesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := durableStore(dir)
	const name = "../evil graph/№1"
	snap, err := s.Load(context.Background(), name, storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if err := s.Persist(name); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Everything must have landed inside dir (no path traversal).
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name()[:2] != "x-" {
		t.Fatalf("unsafe name landed as %v", ents)
	}

	s2 := durableStore(dir)
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 1 || rep.Graphs[0].Name != name {
		t.Fatalf("recovered: %+v", rep.Graphs)
	}
	cur, err := s2.Acquire(name)
	if err != nil {
		t.Fatal(err)
	}
	cur.Release()
}

// TestDurableMetricsExposed: the fastbcc_persist_* series record real
// durability activity.
func TestDurableMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	s := durableStore(dir)
	defer s.Close()
	snap, err := s.Load(context.Background(), "g", storeTestGraph(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if _, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{{U: 0, W: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist("g"); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.WalAppends == 0 {
		t.Fatalf("no WAL appends recorded: %+v", stats)
	}
	if stats.PersistedSnapshots == 0 {
		t.Fatalf("no persisted snapshots recorded: %+v", stats)
	}
	if s.Metrics() == nil {
		t.Fatal("store is not instrumented")
	}
}

// TestDurableSnapshotLoadSpeedup is the acceptance smoke: recovering a
// persisted graph (mmap + journal scan) must beat rebuilding it from
// scratch by >= 10x. Best-of-3 on both sides to shave scheduler noise.
func TestDurableSnapshotLoadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing acceptance check")
	}
	dir := t.TempDir()
	g := fastbcc.GenerateRMAT(17, 8, 0xD0) // ~131k vertices, ~1M arcs

	s := durableStore(dir)
	snap, err := s.Load(context.Background(), "big", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if err := s.Persist("big"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	best := func(rounds int, f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	recoverT := best(3, func() {
		s2 := durableStore(dir)
		rep, err := s2.Recover(context.Background())
		if err != nil || len(rep.Graphs) != 1 {
			t.Fatalf("recover: %+v, %v", rep, err)
		}
		cur, err := s2.Acquire("big")
		if err != nil {
			t.Fatal(err)
		}
		cur.Index.Connected(0, 1) // touch the restored index
		cur.Release()
		s2.Close()
	})
	buildT := best(3, func() {
		s3 := fastbcc.NewStore(2)
		snap, err := s3.Load(context.Background(), "big", g, nil)
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()
		s3.Close()
	})
	t.Logf("recover=%v rebuild=%v ratio=%.1fx", recoverT, buildT, float64(buildT)/float64(recoverT))
	if buildT < 10*recoverT {
		t.Fatalf("recover=%v not >=10x faster than rebuild=%v", recoverT, buildT)
	}
}

// TestDurableWalSeqMonotonicAcrossRestart: sequence numbers keep
// climbing after recovery — a reset walSeq would let a new record reuse
// a truncated seq and corrupt the truncation protocol.
func TestDurableWalSeqMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	n := 16
	var edges []fastbcc.Edge
	for i := 0; i < 24; i++ {
		edges = append(edges, fastbcc.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
	}
	g, err := fastbcc.NewGraphFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	full := map[fastbcc.Edge]int{}
	for _, e := range edges {
		full[canon(e)]++
	}

	// Three generations of store over the same directory, mutating and
	// crashing (Close without final persist) each time.
	for gen := 0; gen < 3; gen++ {
		s := durableStore(dir)
		if gen == 0 {
			snap, err := s.Load(context.Background(), "g", g, nil)
			if err != nil {
				t.Fatal(err)
			}
			snap.Release()
			// Make the base snapshot durable before any Close: a journal
			// whose base graph never reached disk is unrecoverable by
			// design, and this test is about sequence numbers, not the
			// load-then-instant-crash window.
			if err := s.Persist("g"); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.Recover(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			e := canon(fastbcc.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
			if rng.Float64() < 0.5 {
				if _, err := s.ApplyBatch(context.Background(), "g", []fastbcc.Edge{e}, nil); err != nil {
					t.Fatal(err)
				}
				full[e]++
			} else {
				if _, err := s.ApplyBatch(context.Background(), "g", nil, []fastbcc.Edge{e}); err != nil {
					t.Fatal(err)
				}
				if full[e] > 0 {
					full[e]--
				}
			}
		}
		if gen == 1 {
			// Middle generation persists mid-history, so the final
			// recovery replays across a snapshot boundary.
			if err := s.FlushDeltas(context.Background(), "g"); err != nil {
				t.Fatal(err)
			}
			if err := s.Persist("g"); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
	}

	s := durableStore(dir)
	defer s.Close()
	if _, err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushDeltas(context.Background(), "g"); err != nil {
		t.Fatal(err)
	}
	var want []fastbcc.Edge
	for e, c := range full {
		for i := 0; i < c; i++ {
			want = append(want, e)
		}
	}
	cur, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	diffIndexes(t, "three-generations", n, cur.Index, oracleIndex(t, n, want))
}
