package fastbcc_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	fastbcc "repro"
)

// The kill-and-restart crash test. The parent re-executes the test
// binary as a helper process (selected by FASTBCC_CRASH_DIR) that loads
// a graph into a durable store and applies an endless deterministic
// stream of single-mutation batches, appending one byte to a progress
// file after each acknowledgment. The parent SIGKILLs it mid-burst —
// no shutdown hook runs, the snapshot and journal are whatever the
// kernel has — then recovers in-process and checks the contract: with
// K acknowledged mutations (progress bytes; a plain write(2) survives a
// process kill, so the count is exact), the recovered graph must equal
// the oracle after exactly K or K+1 mutations. K+1 covers the one
// mutation that can be journaled (the ack's durability point) but not
// yet acknowledged when the signal lands. Anything else — a lost ack, a
// duplicated replay, a half-applied batch — lands outside both oracles
// and fails.

// crashMutation returns the k-th mutation of the deterministic stream
// (shared by helper and parent), as (add?, edge) over crashN vertices.
const crashN = 24

func crashMutation(rng *rand.Rand) (bool, fastbcc.Edge) {
	e := canon(fastbcc.Edge{U: int32(rng.Intn(crashN)), W: int32(rng.Intn(crashN))})
	return rng.Float64() < 0.6, e
}

func crashBaseEdges() []fastbcc.Edge {
	var edges []fastbcc.Edge
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 32; i++ {
		edges = append(edges, canon(fastbcc.Edge{U: int32(rng.Intn(crashN)), W: int32(rng.Intn(crashN))}))
	}
	return edges
}

// TestCrashRecoveryHelper is the victim process. It only runs when
// re-executed by TestCrashRecovery with FASTBCC_CRASH_DIR set; under a
// normal `go test` it skips.
func TestCrashRecoveryHelper(t *testing.T) {
	dir := os.Getenv("FASTBCC_CRASH_DIR")
	if dir == "" {
		t.Skip("crash helper; driven by TestCrashRecovery")
	}
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers: 2,
		DataDir: dir,
		// A short coalesce keeps flushes and background snapshot persists
		// racing with the mutation stream, so the kill can land mid-write,
		// mid-truncate, or mid-rebuild.
		MutationCoalesce: 5 * time.Millisecond,
	})
	g, err := fastbcc.NewGraphFromEdges(crashN, crashBaseEdges())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load(context.Background(), "crash", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	progress, err := os.OpenFile(filepath.Join(dir, "progress"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; ; i++ {
		add, e := crashMutation(rng)
		var adds, dels []fastbcc.Edge
		if add {
			adds = []fastbcc.Edge{e}
		} else {
			dels = []fastbcc.Edge{e}
		}
		if _, err := s.ApplyBatch(context.Background(), "crash", adds, dels); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if _, err := progress.Write([]byte{'.'}); err != nil {
			t.Fatal(err)
		}
		if i >= 100000 {
			t.Fatal("parent never killed the helper")
		}
	}
}

// indexesAgree is diffIndexes without the t.Fatal: full pairwise query
// comparison, boolean result (the crash test tries two oracles).
func indexesAgree(n int, got, want *fastbcc.Index) bool {
	if got.NumBlocks() != want.NumBlocks() ||
		got.NumCutVertices() != want.NumCutVertices() ||
		got.NumBridges() != want.NumBridges() ||
		got.NumTwoECC() != want.NumTwoECC() {
		return false
	}
	for u := int32(0); u < int32(n); u++ {
		if got.IsCutVertex(u) != want.IsCutVertex(u) {
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			if got.Connected(u, v) != want.Connected(u, v) ||
				got.Biconnected(u, v) != want.Biconnected(u, v) ||
				got.TwoEdgeConnected(u, v) != want.TwoEdgeConnected(u, v) ||
				got.NumCutsOnPath(u, v) != want.NumCutsOnPath(u, v) ||
				got.NumBridgesOnPath(u, v) != want.NumBridgesOnPath(u, v) {
				return false
			}
		}
	}
	return true
}

// crashOracleEdges replays the first k mutations of the deterministic
// stream over the base multiset.
func crashOracleEdges(k int) []fastbcc.Edge {
	full := map[fastbcc.Edge]int{}
	for _, e := range crashBaseEdges() {
		full[e]++
	}
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < k; i++ {
		add, e := crashMutation(rng)
		if add {
			full[e]++
		} else if full[e] > 0 {
			full[e]--
		}
	}
	var out []fastbcc.Edge
	for e, c := range full {
		for i := 0; i < c; i++ {
			out = append(out, e)
		}
	}
	return out
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// The data dir is shared with the subprocess, so it cannot be
	// t.TempDir of the helper; the parent owns cleanup.
	dir := t.TempDir()

	cmd := exec.Command(bin, "-test.run", "^TestCrashRecoveryHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "FASTBCC_CRASH_DIR="+dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Let the burst run until a healthy amount of acknowledged work is on
	// the books, then kill without warning.
	progressPath := filepath.Join(dir, "progress")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(progressPath); err == nil && fi.Size() >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("helper made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no defers, no flushes
		t.Fatal(err)
	}
	cmd.Wait()

	fi, err := os.Stat(progressPath)
	if err != nil {
		t.Fatal(err)
	}
	acked := int(fi.Size())
	t.Logf("killed helper after %d acknowledged mutations", acked)

	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		DataDir:          dir,
		MutationCoalesce: time.Hour,
	})
	defer s.Close()
	rep, err := s.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("recovery failures: %+v", rep.Failures)
	}
	if len(rep.Graphs) != 1 || rep.Graphs[0].Name != "crash" {
		t.Fatalf("recovered: %+v", rep.Graphs)
	}
	if err := s.FlushDeltas(context.Background(), "crash"); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Acquire("crash")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()

	for _, k := range []int{acked, acked + 1} {
		oracle := oracleIndex(t, crashN, crashOracleEdges(k))
		if indexesAgree(crashN, cur.Index, oracle) {
			t.Logf("recovered state matches oracle after %d mutations", k)
			return
		}
	}
	t.Fatalf("recovered state matches neither oracle(%d) nor oracle(%d): "+
		"an acknowledged mutation was lost or replayed twice", acked, acked+1)
}

// TestCrashRecoveryCompact is the CI-friendly variant: same protocol,
// but the "crash" is simulated in-process by abandoning the first store
// without Close — no journal close, no final persist, no delta flush;
// the on-disk state is the Load-time snapshot plus the journal, exactly
// what a kill right after the acknowledgments would leave (minus torn
// writes, which the persist package's own torn-tail tests cover). The
// flusher is parked so the abandoned store stops touching the directory
// the moment the last ack returns — a crashed process can't keep
// writing, and neither may its stand-in. Runs in -short mode too.
func TestCrashRecoveryCompact(t *testing.T) {
	dir := t.TempDir()
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		DataDir:          dir,
		MutationCoalesce: time.Hour,
	})
	g, err := fastbcc.NewGraphFromEdges(crashN, crashBaseEdges())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load(context.Background(), "crash", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	const acked = 120
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < acked; i++ {
		add, e := crashMutation(rng)
		var adds, dels []fastbcc.Edge
		if add {
			adds = []fastbcc.Edge{e}
		} else {
			dels = []fastbcc.Edge{e}
		}
		if _, err := s.ApplyBatch(context.Background(), "crash", adds, dels); err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned, never Closed: the store object leaks workers for the
	// test's lifetime, exactly like a crashed process leaks nothing.

	s2 := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          2,
		DataDir:          dir,
		MutationCoalesce: time.Hour,
	})
	defer s2.Close()
	rep, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Graphs) != 1 || len(rep.Failures) != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if err := s2.FlushDeltas(context.Background(), "crash"); err != nil {
		t.Fatal(err)
	}
	cur, err := s2.Acquire("crash")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Release()
	diffIndexes(t, fmt.Sprintf("compact-crash after %d acks", acked), crashN,
		cur.Index, oracleIndex(t, crashN, crashOracleEdges(acked)))
}
