package fastbcc_test

import (
	"context"
	"testing"

	fastbcc "repro"
)

// The allocation-regression guard. Timing on the CI container is ±5–8%
// noisy, but allocation counters are exact, so the hot paths' allocs/op
// are asserted as hard upper bounds: a change that reintroduces per-round
// buffer churn, drops an arena Put, or re-eagers the topology caches
// fails here deterministically instead of hiding inside timing noise.
//
// The bounds are deliberately loose (current steady-state numbers are
// roughly half of each bound) so scheduling jitter — pool refills,
// sync.Pool misses — never flakes the test, while order-of-magnitude
// regressions (the scratch-backed pipeline burned ~4,000 allocs/op
// before the PR 5 sweep) cannot pass.

// guardGraph returns the shared workload: a power-law graph big enough
// that every parallel stage engages, small enough for the test budget.
func guardGraph(tb testing.TB) *fastbcc.Graph {
	tb.Helper()
	return fastbcc.GenerateRMAT(14, 8, 0xBC)
}

func TestAllocGuardBCCScratch(t *testing.T) {
	g := guardGraph(t)
	sc := fastbcc.NewScratch()
	opts := &fastbcc.Options{Seed: 7, Scratch: sc}
	fastbcc.BCC(g, opts) // warm the arena
	fastbcc.BCC(g, opts)
	avg := testing.AllocsPerRun(5, func() { fastbcc.BCC(g, opts) })
	if avg > 400 {
		t.Fatalf("scratch-backed BCC: %.1f allocs/op, want <= 400", avg)
	}
}

func TestAllocGuardIndexBuild(t *testing.T) {
	g := guardGraph(t)
	res := fastbcc.BCC(g, &fastbcc.Options{Seed: 7})
	fastbcc.NewIndex(g, res) // one-time lazy topology precompute
	avg := testing.AllocsPerRun(5, func() { fastbcc.NewIndex(g, res) })
	if avg > 3000 {
		t.Fatalf("index build: %.1f allocs/op, want <= 3000", avg)
	}
}

func TestAllocGuardStoreHop(t *testing.T) {
	g := guardGraph(t)
	st := fastbcc.NewStore(0)
	defer st.Close()
	// Metrics are on by default, so this guard proves the *instrumented*
	// refcount hop stays allocation-free.
	if st.Metrics() == nil {
		t.Fatal("guard store is not instrumented")
	}
	snap, err := st.Load(context.Background(), "guard", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	avg := testing.AllocsPerRun(200, func() {
		s, err := st.Acquire("guard")
		if err != nil {
			t.Fatal(err)
		}
		if s.Index.Separates(2, 0, 4) {
			_ = s
		}
		s.Release()
	})
	// The whole serving hop is allocation-free; < 1 tolerates a stray
	// runtime allocation landing inside the measured window.
	if avg >= 1 {
		t.Fatalf("store acquire→query→release: %.2f allocs/op, want 0", avg)
	}
}

func TestAllocGuardHandleHop(t *testing.T) {
	g := guardGraph(t)
	st := fastbcc.NewStore(0)
	defer st.Close()
	snap, err := st.Load(context.Background(), "guard", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	h := st.NewHandle()
	defer h.Close()
	avg := testing.AllocsPerRun(200, func() {
		s, err := h.Acquire("guard")
		if err != nil {
			t.Fatal(err)
		}
		if s.Index.Separates(2, 0, 4) {
			_ = s
		}
		h.Release()
	})
	// The epoch fast path must match the refcount hop's zero allocations
	// while also avoiding its shared-cacheline CAS.
	if avg >= 1 {
		t.Fatalf("handle acquire→query→release: %.2f allocs/op, want 0", avg)
	}
}

func TestAllocGuardMutationFastPath(t *testing.T) {
	g := guardGraph(t)
	st := fastbcc.NewStore(0)
	defer st.Close()
	snap, err := st.Load(context.Background(), "guard", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Pick an edge inside a 2ECC block: parallel edges there stay in the
	// fast class forever, so every measured ApplyBatch takes the same
	// path.
	var u, w int32 = -1, -1
	idx := snap.Index
	n := int32(g.NumVertices())
	for a := int32(0); a < n && u < 0; a++ {
		for b := a + 1; b < a+64 && b < n; b++ {
			if idx.Biconnected(a, b) && idx.TwoEdgeConnected(a, b) {
				u, w = a, b
				break
			}
		}
	}
	snap.Release()
	if u < 0 {
		t.Fatal("no 2ECC pair in the guard graph")
	}
	ctx := context.Background()
	adds := []fastbcc.Edge{{U: u, W: w}}
	st.ApplyBatch(ctx, "guard", adds, nil) // warm the per-graph gauges
	avg := testing.AllocsPerRun(100, func() {
		res, err := st.ApplyBatch(ctx, "guard", adds, nil)
		if err != nil || res.Fast != 1 || res.Queued != 0 {
			t.Fatalf("fast add degraded: %+v %v", res, err)
		}
	})
	// The fast path publishes a snapshot sharing the Result and Index —
	// no rebuild, no index derivation. The bound covers the snapshot
	// struct, the growing overlay copy, and the epoch retire bookkeeping;
	// an accidental rebuild or index rebuild costs thousands and cannot
	// pass.
	if avg > 32 {
		t.Fatalf("fast-path ApplyBatch: %.1f allocs/op, want <= 32", avg)
	}
}

func TestAllocGuardMutationFastPathDurable(t *testing.T) {
	g := guardGraph(t)
	st := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		DataDir: t.TempDir(),
	})
	defer st.Close()
	snap, err := st.Load(context.Background(), "guard", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var u, w int32 = -1, -1
	idx := snap.Index
	n := int32(g.NumVertices())
	for a := int32(0); a < n && u < 0; a++ {
		for b := a + 1; b < a+64 && b < n; b++ {
			if idx.Biconnected(a, b) && idx.TwoEdgeConnected(a, b) {
				u, w = a, b
				break
			}
		}
	}
	snap.Release()
	if u < 0 {
		t.Fatal("no 2ECC pair in the guard graph")
	}
	ctx := context.Background()
	adds := []fastbcc.Edge{{U: u, W: w}}
	st.ApplyBatch(ctx, "guard", adds, nil) // warm gauges, journal, edge scratch
	avg := testing.AllocsPerRun(100, func() {
		res, err := st.ApplyBatch(ctx, "guard", adds, nil)
		if err != nil || res.Fast != 1 || res.Queued != 0 {
			t.Fatalf("fast add degraded: %+v %v", res, err)
		}
	})
	// Same bound as the non-durable guard: the WAL append reuses the
	// entry's edge scratch and the journal's record buffer, so durability
	// must not add steady-state allocations to the acknowledgment path.
	if avg > 32 {
		t.Fatalf("durable fast-path ApplyBatch: %.1f allocs/op, want <= 32", avg)
	}
	if st.Stats().WalAppends < 100 {
		t.Fatal("guard ran without journaling — the bound proved nothing")
	}
}

func TestAllocGuardQueryBatch(t *testing.T) {
	g := guardGraph(t)
	st := fastbcc.NewStore(0)
	defer st.Close()
	// Metrics are on by default: the batch guard covers the recordBatch
	// flush (clock reads, histogram observe, per-op counter adds) too.
	if st.Metrics() == nil {
		t.Fatal("guard store is not instrumented")
	}
	snap, err := st.Load(context.Background(), "guard", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	h := st.NewHandle()
	defer h.Close()
	qs := make([]fastbcc.Query, 256)
	for i := range qs {
		op := fastbcc.OpConnected + fastbcc.QueryOp(i%6)
		qs[i] = fastbcc.Query{Op: op, U: int32(i % 100), V: int32((i * 7) % 100), X: int32((i * 3) % 100)}
	}
	dst := make([]fastbcc.Answer, 0, len(qs))
	ctx := context.Background()
	avg := testing.AllocsPerRun(200, func() {
		out, _, err := st.QueryBatch(ctx, h, "guard", qs, dst)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
	})
	// A whole batch — pin, resolve, 256 queries, unpin — reusing the
	// caller's answer slice allocates nothing.
	if avg >= 1 {
		t.Fatalf("256-query batch with recycled dst: %.2f allocs/op, want 0", avg)
	}
}
