package fastbcc_test

import (
	"testing"

	fastbcc "repro"
)

func TestQuickstartExample(t *testing.T) {
	g, err := fastbcc.NewGraphFromEdges(4, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 2, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fastbcc.BCC(g, nil)
	if res.NumBCC != 2 {
		t.Fatalf("NumBCC = %d, want 2", res.NumBCC)
	}
	ap := res.ArticulationPoints()
	if len(ap) != 1 || ap[0] != 2 {
		t.Fatalf("articulation points = %v, want [2]", ap)
	}
	br := res.Bridges(g)
	if len(br) != 1 || br[0] != (fastbcc.Edge{U: 2, W: 3}) {
		t.Fatalf("bridges = %v", br)
	}
}

func TestOptionsSeedAndThreads(t *testing.T) {
	g := fastbcc.GenerateRMAT(10, 8, 7)
	a := fastbcc.BCC(g, &fastbcc.Options{Seed: 1, Threads: 2})
	b := fastbcc.BCC(g, &fastbcc.Options{Seed: 9, LocalSearch: true})
	if a.NumBCC != b.NumBCC {
		t.Fatalf("NumBCC differs across options: %d vs %d", a.NumBCC, b.NumBCC)
	}
	seq := fastbcc.BCCSeq(g)
	if a.NumBCC != seq.NumBCC() {
		t.Fatalf("parallel %d != sequential %d", a.NumBCC, seq.NumBCC())
	}
}

func TestTopLevelConvenience(t *testing.T) {
	g := fastbcc.GenerateChain(10)
	if got := len(fastbcc.ArticulationPoints(g)); got != 8 {
		t.Fatalf("chain articulation points = %d, want 8", got)
	}
	if got := len(fastbcc.Bridges(g)); got != 9 {
		t.Fatalf("chain bridges = %d, want 9", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := fastbcc.GenerateGrid(10, 10, true)
	path := t.TempDir() + "/grid.bin"
	if err := fastbcc.SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	g2, err := fastbcc.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if fastbcc.BCC(g2, nil).NumBCC != fastbcc.BCC(g, nil).NumBCC {
		t.Fatal("round trip changed decomposition")
	}
}

func TestGeneratorsExported(t *testing.T) {
	if fastbcc.GenerateKNN(500, 3, 1).NumVertices() != 500 {
		t.Fatal("knn generator wrong")
	}
	if fastbcc.GenerateRoadLike(10, 10, 0.1, 2).NumVertices() != 100 {
		t.Fatal("roadlike generator wrong")
	}
	if fastbcc.GenerateSampledGrid(10, 10, 0.5, 3).NumVertices() != 100 {
		t.Fatal("sampled grid generator wrong")
	}
}
