package fastbcc_test

import (
	"context"
	"sync"
	"testing"

	fastbcc "repro"
)

func storeTestGraph(t *testing.T) *fastbcc.Graph {
	t.Helper()
	// Triangle 0-1-2, bridge 2-3, square 3-4-5-6.
	g, err := fastbcc.NewGraphFromEdges(7, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0},
		{U: 2, W: 3},
		{U: 3, W: 4}, {U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreLoadAcquireRebuild(t *testing.T) {
	s := fastbcc.NewStore(4)
	defer s.Close()
	g := storeTestGraph(t)

	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Name != "demo" {
		t.Fatalf("version=%d name=%q", snap.Version, snap.Name)
	}
	if !snap.Index.Separates(2, 0, 4) || snap.Index.NumBridgesOnPath(0, 4) != 1 {
		t.Fatal("snapshot index answers wrong")
	}
	snap.Release()

	got, err := s.Acquire("demo")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Fatalf("acquired version %d", got.Version)
	}

	// Rebuild swaps in version 2; the held version-1 snapshot stays valid.
	snap2, err := s.Rebuild(context.Background(), "demo", &fastbcc.Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != 2 {
		t.Fatalf("rebuild version %d", snap2.Version)
	}
	if st := s.Stats(); st.Graphs != 1 || st.LiveSnapshots != 2 {
		t.Fatalf("stats after rebuild: %+v", st)
	}
	if !got.Index.Biconnected(0, 1) || got.Result.NumBCC != 3 {
		t.Fatal("superseded snapshot broke")
	}
	got.Release() // retires version 1
	snap2.Release()
	if st := s.Stats(); st.LiveSnapshots != 1 {
		t.Fatalf("stats after releases: %+v", st)
	}

	if names := s.Names(); len(names) != 1 || names[0] != "demo" {
		t.Fatalf("names = %v", names)
	}
	if err := s.Remove("demo"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Acquire("demo"); err == nil {
		t.Fatal("acquire after remove must fail")
	}
	if _, err := s.Rebuild(context.Background(), "demo", nil); err == nil {
		t.Fatal("rebuild after remove must fail")
	}
	if st := s.Stats(); st.Graphs != 0 || st.LiveSnapshots != 0 {
		t.Fatalf("stats after remove: %+v", st)
	}
}

func TestStoreErrors(t *testing.T) {
	s := fastbcc.NewStore(2)
	if _, err := s.Acquire("nope"); err == nil {
		t.Fatal("acquire of unknown name must fail")
	}
	if err := s.Remove("nope"); err == nil {
		t.Fatal("remove of unknown name must fail")
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Load(context.Background(), "demo", storeTestGraph(t), nil); err == nil {
		t.Fatal("load after close must fail")
	}
}

// TestStoreConcurrentServing hammers one Store from reader goroutines
// while writers rebuild and replace the same names: the serving contract
// is that readers always see a complete, queryable snapshot and that
// versions only move forward. Run under -race (the CI race shard does).
func TestStoreConcurrentServing(t *testing.T) {
	s := fastbcc.NewStore(4)
	defer s.Close()
	g := storeTestGraph(t)
	if snap, err := s.Load(context.Background(), "demo", g, nil); err != nil {
		t.Fatal(err)
	} else {
		snap.Release()
	}

	const readers, writers, iters = 6, 2, 60
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				var snap *fastbcc.Snapshot
				if i%2 == 0 {
					snap, err = s.Rebuild(context.Background(), "demo", &fastbcc.Options{Seed: seed + uint64(i), Threads: 2})
				} else {
					snap, err = s.Load(context.Background(), "demo", g, &fastbcc.Options{Seed: seed + uint64(i)})
				}
				if err != nil {
					errs <- err
					return
				}
				snap.Release()
			}
		}(uint64(w) * 1000)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for i := 0; i < 400; i++ {
				snap, err := s.Acquire("demo")
				if err != nil {
					errs <- err
					return
				}
				if snap.Version < last {
					errs <- errVersionWentBackwards
					snap.Release()
					return
				}
				last = snap.Version
				// The decomposition of this graph is seed-independent.
				ok := snap.Index.Separates(2, 0, 4) &&
					snap.Index.NumCutsOnPath(0, 4) == 2 &&
					snap.Index.TwoEdgeConnected(3, 6) &&
					!snap.Index.TwoEdgeConnected(2, 3) &&
					snap.Result.NumBCC == 3
				if !ok {
					errs <- errWrongAnswer
					snap.Release()
					return
				}
				snap.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Once every handle is back, exactly the current version remains live.
	if st := s.Stats(); st.Graphs != 1 || st.LiveSnapshots != 1 {
		t.Fatalf("stats after stress: %+v", st)
	}
}

var (
	errVersionWentBackwards = errString("snapshot version went backwards")
	errWrongAnswer          = errString("snapshot served a wrong answer")
)

type errString string

func (e errString) Error() string { return string(e) }
