package fastbcc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/persist"
)

// Sentinel errors wrapped by Store methods, so serving layers can map
// failures to the right client-facing status with errors.Is (cmd/bccd:
// ErrNotLoaded → 404, ErrStoreClosed → 503, ErrSaturated → 503 +
// Retry-After, ErrUnknownAlgorithm → 400, ErrBuildPanic → 500,
// context.DeadlineExceeded → 504).
var (
	// ErrNotLoaded is wrapped by errors for names without a catalog
	// entry (never loaded, or removed).
	ErrNotLoaded = errors.New("graph not loaded")
	// ErrStoreClosed is wrapped by errors from Load/Rebuild/Acquire on a
	// closed Store — a shutting-down server, not a missing graph.
	ErrStoreClosed = errors.New("store closed")
	// ErrSaturated is wrapped by build errors when the admission gate is
	// full and a slot did not free up within the configured queue wait.
	// Only builds are shed; Acquire and queries are never gated.
	ErrSaturated = errors.New("build admission queue saturated")
)

// Snapshot is one immutable version of a served graph: the graph, its
// decomposition, and the query index, published together. A snapshot
// stays fully usable after being superseded by a rebuild — queries in
// flight never observe a half-swapped state and never block
// recomputation.
//
// Two reader disciplines protect a snapshot's lifetime:
//
//   - Epoch pins (the fast path): a Handle pinned across Store.Acquire
//     on the handle, or a Store.QueryBatch call, protects the snapshot
//     with two uncontended stores on the handle's private slot; the
//     snapshot must not be used after the handle's Release.
//   - Refcounts (the compatible fallback): handle-less Store.Acquire
//     CAS-retains the snapshot's shared refcount and the caller must
//     Snapshot.Release it — the pre-epoch contract, kept for callers
//     that hold snapshots across goroutines or for unbounded time.
//
// A superseded snapshot is retired into the Store's epoch domain and
// reclaimed only when no pin and no refcount can still reach it.
type Snapshot struct {
	// Name and Version identify the snapshot: Version increases by one
	// per (re)build of Name.
	Name    string
	Version int64
	// Algorithm is the registry name of the engine that computed this
	// snapshot's decomposition (see Algorithms).
	Algorithm string
	// Graph, Result, and Index are the immutable payload.
	Graph  *Graph
	Result *Result
	Index  *Index
	// BuiltAt records when the snapshot was published; BuildTime is the
	// wall time the decomposition + index build took (for a snapshot
	// published by a classified mutation, the mutation's apply time).
	BuiltAt   time.Time
	BuildTime time.Duration

	// overlay lists the edges ApplyBatch applied to this snapshot beyond
	// Graph's CSR — classified insertions that changed no query answer
	// the Index does not already give (see mutate.go). The next graph
	// materialization (a delta flush or a Rebuild) folds them into the
	// CSR. Immutable, like every other snapshot field.
	overlay []Edge

	// mutSeq is the highest journal sequence number fully reflected in
	// this snapshot (0 with durability off); see durable.go. mapping,
	// when non-nil, is the mmap the snapshot's arrays alias — restored
	// snapshots, and their descendants that share the Graph. The snapshot
	// holds one mapping reference, released with the last refcount.
	mutSeq  uint64
	mapping *persist.Mapping

	refs  atomic.Int64 // the store's reference + one per Acquire
	store *Store
}

// NumEdges returns the snapshot's edge count: the CSR's edges plus the
// overlay of applied-but-unmaterialized insertions.
func (s *Snapshot) NumEdges() int { return s.Graph.NumEdges() + len(s.overlay) }

// OverlayEdges returns how many applied insertions await materialization
// into the CSR (0 on a freshly built snapshot).
func (s *Snapshot) OverlayEdges() int { return len(s.overlay) }

// tryRetain takes a reference unless the snapshot is already dead
// (refs == 0), which can happen when a rebuild swaps it out between a
// reader loading the pointer and retaining it.
func (s *Snapshot) tryRetain() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release returns the snapshot to the store. The caller must not use the
// snapshot afterwards. Releasing more times than acquired panics.
func (s *Snapshot) Release() {
	n := s.refs.Add(-1)
	switch {
	case n == 0:
		// Superseded and no reader left: the version is fully retired.
		if s.store != nil {
			s.store.live.Add(-1)
		}
		if s.mapping != nil {
			// The arrays may alias the mapped snapshot file; only now is
			// it provably unreachable.
			s.mapping.Release()
		}
	case n < 0:
		panic("fastbcc: Snapshot released more times than acquired")
	}
}

// Store is a named-graph catalog serving versioned decomposition
// snapshots — the front end cmd/bccd exposes over HTTP. Each name holds
// one current Snapshot; Load and Rebuild compute a new version on the
// Store's Runner budget and swap it in atomically, so concurrent Acquire
// calls always see a complete snapshot and queries never block
// recomputation (rebuilds of the same name serialize; different names
// rebuild concurrently within the worker budget).
//
// # Fault tolerance
//
// The Store degrades instead of dying. A build that fails — an engine
// panic (captured and converted to an error), an injected fault, a
// cancellation or an expired deadline — leaves the entry's last-good
// snapshot in place: queries keep answering from the previous version
// while the per-entry failure state (consecutive failures, last error
// and time; see Status and StoreStats) records the problem until a
// successful build clears it. Builds are bounded three ways: the
// caller's context cancels cooperatively through the whole pipeline, a
// configured BuildTimeout caps every build, and an admission gate sheds
// builds with ErrSaturated once MaxConcurrentBuilds are in flight and a
// slot does not free within BuildQueueWait. The Acquire→query→Release
// path takes none of these locks or gates — queries are never shed.
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with NewStore or NewStoreWithConfig.
type Store struct {
	runner *Runner
	live   atomic.Int64 // snapshots with at least one outstanding reference

	// epochs is the snapshot-reclamation domain: superseded snapshots
	// are retired into it instead of dropping the store's reference
	// immediately, so epoch-pinned readers (Handle/QueryBatch) never
	// race a release. Rebuilds advance the epoch and scan on reclaim;
	// Stats also reclaims, so the live gauge is self-healing even when
	// no further rebuilds arrive.
	epochs *epoch.Domain
	// catalogGen counts catalog shape changes (entry created, removed,
	// store closed). Handles cache their name→entry resolution against
	// it so the query fast path skips the catalog RWMutex entirely.
	catalogGen atomic.Uint64

	batches      atomic.Int64 // QueryBatch calls served
	batchQueries atomic.Int64 // scalar queries served through batches

	// Admission gate (nil sem = unbounded): build slots are acquired
	// before any per-entry serialization so saturation is detected — and
	// shed — up front instead of deep in a lock queue.
	buildSem     chan struct{}
	queueWait    time.Duration
	buildTimeout time.Duration

	// mutationCoalesce is the delta-flush coalescing window; see
	// StoreConfig.MutationCoalesce and mutate.go.
	mutationCoalesce time.Duration

	inFlight   atomic.Int64 // builds currently executing on the Runner
	buildFails atomic.Int64 // cumulative failed builds since creation

	// Durability configuration and store-wide counters (see durable.go).
	// dataDir == "" disables persistence entirely.
	dataDir       string
	verifyOnLoad  bool
	journalNoSync bool

	persistOK         atomic.Int64 // snapshot files durably published
	persistFails      atomic.Int64 // failed snapshot writes / journal appends
	walAppends        atomic.Int64 // journal records appended
	walFails          atomic.Int64 // journal appends that failed (ack proceeded, degraded)
	walTruncs         atomic.Int64 // journal truncations after a durable snapshot
	recoveredGraphs   atomic.Int64 // graphs restored by Recover
	replayedMutations atomic.Int64 // journal records queued for replay by Recover

	// metrics is the observability surface the hot paths record into;
	// every record site guards on the load being non-nil. It is nil with
	// DisableMetrics, and SetMetricsEnabled flips it between nil and
	// metricsAll — the built surface, which survives pauses so the
	// registry keeps serving scrapes. See Store.Metrics.
	metrics    atomic.Pointer[storeMetrics]
	metricsAll *storeMetrics

	mu     sync.RWMutex
	byName map[string]*storeEntry
	closed bool
}

type storeEntry struct {
	// sem is a 1-slot semaphore serializing (re)builds of this name — a
	// mutex whose Lock can be abandoned when the build's context is
	// canceled while waiting (a plain sync.Mutex cannot).
	sem     chan struct{}
	removed bool // guarded by sem
	version atomic.Int64
	cur     atomic.Pointer[Snapshot]

	// Failure state, guarded by failMu (read by Stats/Status while a
	// build holds sem).
	failMu    sync.Mutex
	fails     int
	lastErr   string
	lastErrAt time.Time

	// traces retains the entry's recent build attempts (see Store.Trace).
	traces traceRing

	// Mutation state (see mutate.go). mutMu is a leaf lock in the entry's
	// lock order: it may be taken while holding sem, but a goroutine
	// holding mutMu must never wait on sem.
	mutMu          sync.Mutex
	deltaQ         []edgeDelta // pending unclassifiable mutations, arrival order
	deltaSince     time.Time   // arrival of the oldest pending delta
	inFlightDeltas int         // deltas stolen by a running flush, not yet applied
	flushing       bool        // a coalesced delta flush is scheduled or running
	// graphGen counts graph replacements (Load with an explicit graph).
	// A stolen delta batch from an older generation is dropped: its edges
	// describe a graph that no longer exists.
	graphGen atomic.Uint64
	flushes  atomic.Int64 // coalesced delta rebuilds published
	// flushKick wakes a flusher sleeping out its coalesce window early
	// (FlushDeltas sends it so a synchronous drain never waits out the
	// window). Buffered; a stale kick at worst shortens one future
	// window.
	flushKick chan struct{}

	// Durability state (see durable.go); all dormant with DataDir unset.
	// jmu guards the journal handle, walSeq, and the reusable encode
	// buffers; it is a leaf like mutMu (may be taken under sem or mutMu,
	// never waits on either). appliedSeq — the highest journal seq fully
	// reflected in the published snapshot — is guarded by sem, like the
	// publish it describes.
	jmu        sync.Mutex
	journal    *persist.Journal
	walSeq     uint64
	jAdds      []persist.JEdge
	jDels      []persist.JEdge
	appliedSeq uint64

	// pwMu serializes snapshot writes for this entry (the background
	// persister vs Store.Persist). pmu guards the persister's scheduling
	// flags and the persist-error state; it is a leaf.
	pwMu           sync.Mutex
	pmu            sync.Mutex
	persistDirty   bool
	persistRunning bool
	persistStopped bool
	persistErr     string
	persistErrAt   time.Time
}

// pendingDeltas returns the entry's unapplied mutation count and the age
// of the oldest one (zero when none are pending).
func (en *storeEntry) pendingDeltas() (int, time.Duration) {
	en.mutMu.Lock()
	defer en.mutMu.Unlock()
	n := len(en.deltaQ) + en.inFlightDeltas
	if n == 0 || en.deltaSince.IsZero() {
		return n, 0
	}
	return n, time.Since(en.deltaSince)
}

func newStoreEntry() *storeEntry {
	return &storeEntry{
		sem:       make(chan struct{}, 1),
		flushKick: make(chan struct{}, 1),
	}
}

func (en *storeEntry) lock() { en.sem <- struct{}{} }

// lockCtx acquires the build lock unless ctx is done first.
func (en *storeEntry) lockCtx(ctx context.Context) error {
	select {
	case en.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case en.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (en *storeEntry) unlock() { <-en.sem }

func (en *storeEntry) recordFailure(err error) {
	en.failMu.Lock()
	en.fails++
	en.lastErr = err.Error()
	en.lastErrAt = time.Now()
	en.failMu.Unlock()
}

func (en *storeEntry) clearFailure() {
	en.failMu.Lock()
	en.fails = 0
	en.lastErr = ""
	en.lastErrAt = time.Time{}
	en.failMu.Unlock()
}

// failure returns the entry's failure state.
func (en *storeEntry) failure() (int, string, time.Time) {
	en.failMu.Lock()
	defer en.failMu.Unlock()
	return en.fails, en.lastErr, en.lastErrAt
}

// StoreConfig tunes a Store's fault-tolerance envelope; the zero value
// of every field selects the permissive default (NewStore's behavior).
type StoreConfig struct {
	// Workers is the Runner worker budget shared by all builds
	// (< 1 selects GOMAXPROCS).
	Workers int
	// MaxConcurrentBuilds bounds builds in flight across all names
	// (0 = unbounded). Builds beyond the bound wait up to BuildQueueWait
	// for a slot, then fail wrapping ErrSaturated.
	MaxConcurrentBuilds int
	// BuildQueueWait is how long an admitted-over-capacity build may
	// wait for a slot before being shed (0 = shed immediately when
	// saturated). Only meaningful with MaxConcurrentBuilds > 0.
	BuildQueueWait time.Duration
	// BuildTimeout caps every build (0 = none); it composes with — never
	// extends — the caller's context deadline. An over-deadline build is
	// cooperatively canceled, frees its admission slot, and leaves the
	// entry serving its last-good snapshot.
	BuildTimeout time.Duration
	// MutationCoalesce is how long a delta flush waits after the first
	// unclassifiable mutation arrives before rebuilding, so a burst of N
	// mutations coalesces into O(1) rebuilds instead of N (0 = flush
	// immediately; the steal-the-whole-queue drain still coalesces any
	// mutations that arrive while a flush build is in flight).
	MutationCoalesce time.Duration
	// DataDir enables durable serving (see durable.go): every full build
	// persists a checksummed, mmap-able snapshot under DataDir/<graph>/,
	// every mutation journals to a write-ahead log before acknowledging,
	// and Store.Recover restores both after a restart. Empty disables
	// persistence entirely — the default, and the pre-durability
	// behavior.
	DataDir string
	// VerifyOnLoad makes Recover validate every section checksum before
	// serving a restored snapshot, instead of the default lazy scheme
	// (header/meta/directory eagerly, sections in the background while
	// the snapshot already serves).
	VerifyOnLoad bool
	// JournalNoSync skips the fsync on journal appends: acknowledged
	// mutations may be lost on a machine crash (not a process crash).
	// For benchmarks and tests; leave false in production.
	JournalNoSync bool
	// DisableMetrics skips creating the Store's metric registry
	// (Store.Metrics returns nil). The default — metrics on — costs one
	// sharded atomic add per serving hop and a constant handful of
	// operations per batch and per build; Store.SetMetricsEnabled pauses
	// exactly that cost at run time (and is how cmd/bccbench -qbench
	// measures it).
	DisableMetrics bool
}

// NewStore returns a Store whose rebuilds share a Runner with workers-1
// pool goroutines (workers < 1 selects GOMAXPROCS), with no admission
// bound and no build timeout. Close releases the workers.
func NewStore(workers int) *Store {
	return NewStoreWithConfig(StoreConfig{Workers: workers})
}

// NewStoreWithConfig returns a Store with the given fault-tolerance
// configuration; see StoreConfig.
func NewStoreWithConfig(cfg StoreConfig) *Store {
	s := &Store{
		runner:           NewRunner(cfg.Workers),
		epochs:           epoch.NewDomain(),
		byName:           map[string]*storeEntry{},
		queueWait:        cfg.BuildQueueWait,
		buildTimeout:     cfg.BuildTimeout,
		mutationCoalesce: cfg.MutationCoalesce,
		dataDir:          cfg.DataDir,
		verifyOnLoad:     cfg.VerifyOnLoad,
		journalNoSync:    cfg.JournalNoSync,
	}
	if cfg.MaxConcurrentBuilds > 0 {
		s.buildSem = make(chan struct{}, cfg.MaxConcurrentBuilds)
	}
	if !cfg.DisableMetrics {
		s.metricsAll = newStoreMetrics(s)
		s.runner.metrics = &s.metricsAll.runner
		s.metrics.Store(s.metricsAll)
	}
	return s
}

// Runner returns the Store's Runner, for callers that want to share its
// worker budget for ad-hoc decompositions.
func (s *Store) Runner() *Runner { return s.runner }

func notLoadedErr(name string) error {
	return fmt.Errorf("fastbcc: graph %q: %w", name, ErrNotLoaded)
}

func (s *Store) lookup(name string) (*storeEntry, error) {
	s.mu.RLock()
	en := s.byName[name]
	s.mu.RUnlock()
	if en == nil {
		return nil, notLoadedErr(name)
	}
	return en, nil
}

// Load computes the decomposition and index of g and installs it as the
// current snapshot of name (creating or replacing the entry). It returns
// the new snapshot retained for the caller: Release it when done.
//
// The build observes ctx cooperatively: canceling it (or exceeding its
// deadline, or the Store's BuildTimeout) abandons the build, frees its
// admission slot, and leaves the entry's previous snapshot — if any —
// serving. A failed build records per-entry failure state (see Status).
func (s *Store) Load(ctx context.Context, name string, g *Graph, opts *Options) (*Snapshot, error) {
	en, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	return s.build(ctx, en, name, g, opts)
}

// entry returns name's catalog entry, creating it if absent.
func (s *Store) entry(name string) (*storeEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("fastbcc: %w", ErrStoreClosed)
	}
	en := s.byName[name]
	if en == nil {
		en = newStoreEntry()
		s.byName[name] = en
		s.catalogGen.Add(1)
	}
	return en, nil
}

// Rebuild recomputes the current graph of name into a new snapshot
// version (for example after tuning Options, or with a different
// opts.Algorithm to switch engines; an empty Algorithm keeps the entry's
// current one). It returns the new snapshot retained for the caller:
// Release it when done. Cancellation, timeout, admission, and failure
// recording behave exactly as in Load.
func (s *Store) Rebuild(ctx context.Context, name string, opts *Options) (*Snapshot, error) {
	en, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return s.build(ctx, en, name, nil, opts)
}

// admit takes an admission slot, waiting up to queueWait when the gate
// is full; the caller must release the slot. A nil gate admits freely.
func (s *Store) admit(ctx context.Context) error {
	if s.buildSem == nil {
		return nil
	}
	select {
	case s.buildSem <- struct{}{}:
		return nil
	default:
	}
	if s.queueWait <= 0 {
		return fmt.Errorf("fastbcc: %w", ErrSaturated)
	}
	t := time.NewTimer(s.queueWait)
	defer t.Stop()
	select {
	case s.buildSem <- struct{}{}:
		return nil
	case <-t.C:
		return fmt.Errorf("fastbcc: %w (no slot freed in %v)", ErrSaturated, s.queueWait)
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Store) releaseSlot() {
	if s.buildSem != nil {
		<-s.buildSem
	}
}

// build computes and installs one snapshot version. g == nil reuses the
// entry's current graph (Rebuild); the read happens under the entry's
// build lock so a concurrent Load's replacement graph is not lost. An
// unknown opts.Algorithm is an error (no snapshot is installed). An
// empty one selects the entry's current algorithm on rebuilds — so a
// rebuild sticks with the engine the graph was loaded with — but the
// documented default engine on loads, including loads that replace an
// existing entry.
func (s *Store) build(ctx context.Context, en *storeEntry, name string, g *Graph, opts *Options) (*Snapshot, error) {
	// Admission first: saturation is detected ahead of any per-entry
	// lock queue, so a shed build never holds anything.
	if err := s.admit(ctx); err != nil {
		if m := s.metrics.Load(); m != nil && errors.Is(err, ErrSaturated) {
			m.buildSheds.Inc()
		}
		return nil, err
	}
	defer s.releaseSlot()
	if s.buildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.buildTimeout)
		defer cancel()
	}
	for {
		if err := en.lockCtx(ctx); err != nil {
			return nil, err
		}
		if !en.removed {
			break
		}
		// The entry retired between our lookup and taking its lock (a
		// concurrent Remove or Close). A Rebuild of a removed name
		// correctly fails; a Load must (re)create the entry — erroring
		// here was the historical Load-vs-Remove race — so re-resolve
		// the name and retry on the fresh entry.
		en.unlock()
		if g == nil {
			return nil, notLoadedErr(name)
		}
		var err error
		en, err = s.entry(name)
		if err != nil {
			return nil, err
		}
	}
	defer en.unlock()
	var o Options
	if opts != nil {
		o = *opts
	}
	isLoad := g != nil
	cur := en.cur.Load()
	if g == nil {
		if cur == nil {
			return nil, notLoadedErr(name)
		}
		g = cur.Graph
		if o.Algorithm == "" {
			o.Algorithm = cur.Algorithm
		}
		// A rebuild recomputes the *current* edge set: applied-but-
		// unmaterialized overlay insertions fold into the CSR here, so no
		// classified mutation is ever lost to a rebuild. Pending deltas
		// stay queued — they apply on top of the new snapshot, same graph
		// generation.
		if len(cur.overlay) > 0 {
			mg, merr := materializeGraph(s.runner.exec, cur.Graph, cur.overlay, nil)
			if merr != nil {
				return nil, merr
			}
			g = mg
		}
	}
	algo, err := resolveAlgorithm(o.Algorithm)
	if err != nil {
		return nil, err
	}
	o.Algorithm = algo
	t0 := time.Now()
	s.inFlight.Add(1)
	res, idx, err := s.runner.buildIndex(ctx, g, &o)
	s.inFlight.Add(-1)
	dur := time.Since(t0)
	trace := BuildTrace{Algorithm: algo, StartedAt: t0, Duration: dur, Outcome: buildOutcome(err)}
	if res != nil {
		trace.Phases = res.Times
	}
	if err != nil {
		// The build itself failed (panic, cancellation, deadline,
		// injected fault, engine error): record it on the entry — the
		// last-good snapshot, if any, keeps serving — and count it
		// store-wide.
		trace.Error = err.Error()
		en.traces.add(trace)
		en.recordFailure(err)
		s.buildFails.Add(1)
		if m := s.metrics.Load(); m != nil {
			m.recordBuild(err, dur, PhaseTimes{})
		}
		return nil, err
	}
	en.clearFailure()
	snap := &Snapshot{
		Name:      name,
		Version:   en.version.Add(1),
		Algorithm: algo,
		Graph:     g,
		Result:    res,
		Index:     idx,
		BuiltAt:   time.Now(),
		BuildTime: dur,
		store:     s,
	}
	snap.refs.Store(2) // the store's reference + the returned handle
	trace.Version = snap.Version
	en.traces.add(trace)
	if m := s.metrics.Load(); m != nil {
		m.recordBuild(nil, dur, res.Times)
	}
	s.live.Add(1)
	if isLoad {
		// The graph was replaced wholesale: pending deltas describe edges
		// of the old graph and die with it. Bumping the generation also
		// tells a flush that already stole a batch to drop it.
		en.mutMu.Lock()
		en.graphGen.Add(1)
		en.deltaQ = nil
		en.deltaSince = time.Time{}
		en.mutMu.Unlock()
		// Journal history dies with the old graph too; appliedSeq catches
		// up to walSeq so no obsolete record replays over the new graph.
		s.initDurableEntry(en, name)
	}
	// A rebuild over the current graph (no overlay fold) shares its CSR
	// arrays; if those alias a mapped snapshot file, this snapshot keeps
	// the mapping alive too.
	if cur != nil && snap.Graph == cur.Graph && cur.mapping != nil {
		cur.mapping.Retain()
		snap.mapping = cur.mapping
	}
	// The fresh build reflects everything applied so far (a rebuild folds
	// the overlay; queued deltas stay queued and are NOT in this
	// snapshot) — appliedSeq, guarded by the sem we hold, is exactly that
	// watermark.
	snap.mutSeq = en.appliedSeq
	if old := en.cur.Swap(snap); old != nil {
		// The old version is unpublished (the swap) but epoch-pinned
		// readers may still be inside it: retire it into the domain,
		// which drops the store's reference only once every pin that
		// could hold it has drained. Refcount holders are unaffected —
		// the deferred Release just removes the store's share.
		s.epochs.Retire(old.Release)
	}
	s.kickPersist(en, name)
	return snap, nil
}

// Acquire retains and returns the current snapshot of name. The caller
// must Release it; until then the snapshot stays valid even if a rebuild
// supersedes it. Acquire never blocks on builds, admission, or failure
// handling — it is the untouched query hot path.
func (s *Store) Acquire(name string) (*Snapshot, error) {
	en, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	for {
		snap := en.cur.Load()
		if snap == nil {
			return nil, notLoadedErr(name)
		}
		if snap.tryRetain() {
			if m := s.metrics.Load(); m != nil {
				m.acquiresCAS.Inc()
			}
			return snap, nil
		}
		// The snapshot died between the load and the retain (swapped out
		// and fully released); the entry now points at its replacement.
	}
}

// Remove drops name from the catalog. Snapshots already acquired stay
// valid until released.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	en := s.byName[name]
	if en != nil {
		delete(s.byName, name)
		s.catalogGen.Add(1)
	}
	s.mu.Unlock()
	if en == nil {
		return notLoadedErr(name)
	}
	s.retire(en)
	// Remove deletes the graph's persisted state too — otherwise the next
	// Recover would resurrect a graph the operator deleted. (Close does
	// NOT delete: shutdown persistence is the whole point.)
	if s.dataDir != "" {
		os.RemoveAll(s.graphDir(name))
	}
	return nil
}

func (s *Store) retire(en *storeEntry) {
	en.lock()
	en.removed = true
	old := en.cur.Swap(nil)
	en.unlock()
	s.closeDurable(en)
	if old != nil {
		s.epochs.Retire(old.Release)
	}
}

// Names returns the loaded graph names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.byName))
	for name := range s.byName {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// GraphStatus is the per-entry health record Status reports: the
// serving version plus the failure state fault-tolerant rebuilds
// maintain.
type GraphStatus struct {
	// Name is the catalog name.
	Name string
	// Loaded reports whether the entry currently serves a snapshot. An
	// entry can exist unloaded when its initial build failed — the
	// failure fields say why.
	Loaded bool
	// Version is the serving snapshot's version (0 when not Loaded).
	Version int64
	// Algorithm is the serving snapshot's engine ("" when not Loaded).
	Algorithm string
	// ConsecutiveFailures counts failed builds since the last success;
	// 0 for a healthy entry. LastError/LastErrorAt describe the most
	// recent failure and are cleared by the next successful build.
	ConsecutiveFailures int
	LastError           string
	LastErrorAt         time.Time
	// LastBuild is the most recent build attempt's trace (nil when the
	// entry has never reached the engine); Store.Trace returns the full
	// retained ring.
	LastBuild *BuildTrace
	// Phases is the serving snapshot's per-phase build breakdown (zero
	// when not Loaded).
	Phases PhaseTimes

	// Mutation staleness (see Store.ApplyBatch). PendingDeltas counts
	// mutations accepted but not yet applied — the serving snapshot does
	// not reflect them — and DeltaAge is the age of the oldest one.
	// OverlayEdges counts classified insertions applied to the serving
	// snapshot but not yet folded into its CSR (queries already reflect
	// them). DeltaFlushes counts the coalesced delta rebuilds published
	// for this entry.
	PendingDeltas int
	DeltaAge      time.Duration
	OverlayEdges  int
	DeltaFlushes  int64

	// Durability state (always false/empty with DataDir unset).
	// DurabilityDegraded reports that the entry's most recent snapshot
	// write or journal append failed: serving and acknowledgments
	// continue, but a crash now may lose state. LastPersistError says
	// why; a successful snapshot persist clears both.
	DurabilityDegraded bool
	LastPersistError   string
	LastPersistErrorAt time.Time
}

// Status reports the health of name's entry: the serving version and
// the failure state of recent builds. Unlike Acquire it succeeds for an
// entry whose builds have all failed (Loaded false), which is how
// operators see why a graph never came up.
func (s *Store) Status(name string) (GraphStatus, error) {
	en, err := s.lookup(name)
	if err != nil {
		return GraphStatus{}, err
	}
	st := GraphStatus{Name: name}
	st.ConsecutiveFailures, st.LastError, st.LastErrorAt = en.failure()
	st.PendingDeltas, st.DeltaAge = en.pendingDeltas()
	st.DeltaFlushes = en.flushes.Load()
	if perr, pat := en.persistState(); perr != "" {
		st.DurabilityDegraded = true
		st.LastPersistError = perr
		st.LastPersistErrorAt = pat
	}
	if t, ok := en.traces.last(); ok {
		st.LastBuild = &t
	}
	if cur := en.cur.Load(); cur != nil {
		st.Loaded = true
		st.Version = cur.Version
		st.Algorithm = cur.Algorithm
		st.OverlayEdges = len(cur.overlay)
		if cur.Result != nil {
			st.Phases = cur.Result.Times
		}
	}
	return st, nil
}

// StoreStats is a point-in-time gauge of the catalog.
type StoreStats struct {
	// Graphs is the number of loaded names.
	Graphs int
	// LiveSnapshots counts snapshots with at least one outstanding
	// reference — current versions plus superseded ones still held by
	// in-flight readers or awaiting epoch reclamation.
	LiveSnapshots int64
	// RetiredSnapshots counts superseded snapshots retired into the
	// epoch domain and not yet reclaimed. Steady nonzero growth means a
	// reader is holding a pin (or a handle leaked while pinned).
	RetiredSnapshots int
	// Batches and BatchQueries count QueryBatch calls and the scalar
	// queries they carried since the Store was created.
	Batches      int64
	BatchQueries int64
	// ByAlgorithm counts loaded graphs by the engine of their current
	// snapshot.
	ByAlgorithm map[string]int
	// FailingGraphs counts entries whose most recent build failed
	// (ConsecutiveFailures > 0); they keep serving their last-good
	// snapshot, if any. Nonzero means the catalog is degraded.
	FailingGraphs int
	// BuildFailures is the cumulative count of failed builds (panics,
	// cancellations, timeouts, engine errors) since the Store was
	// created.
	BuildFailures int64
	// InFlightBuilds is the number of builds currently executing on the
	// Runner (admitted, not yet finished).
	InFlightBuilds int64
	// PendingDeltas totals mutations accepted by ApplyBatch but not yet
	// applied across all entries — the catalog's mutation staleness.
	// DeltaFlushes totals the coalesced delta rebuilds published.
	PendingDeltas int64
	DeltaFlushes  int64
	// Durability counters (all zero with DataDir unset; see durable.go).
	// PersistedSnapshots/PersistFailures count snapshot writes and any
	// durability failure (snapshot or journal); WalAppends counts journal
	// records appended; DegradedGraphs counts entries currently in the
	// durability-degraded state; RecoveredGraphs/ReplayedMutations
	// describe what Recover restored.
	PersistedSnapshots int64
	PersistFailures    int64
	WalAppends         int64
	DegradedGraphs     int
	RecoveredGraphs    int64
	ReplayedMutations  int64
}

// Stats returns current catalog gauges. Reading stats also runs an
// epoch reclamation scan, so the live/retired gauges report what is
// actually reachable, not garbage merely awaiting the next rebuild.
func (s *Store) Stats() StoreStats {
	s.epochs.Reclaim()
	byAlgo := map[string]int{}
	failing, degraded := 0, 0
	var pendingDeltas, deltaFlushes int64
	s.mu.RLock()
	n := len(s.byName)
	for _, en := range s.byName {
		if cur := en.cur.Load(); cur != nil {
			byAlgo[cur.Algorithm]++
		}
		if f, _, _ := en.failure(); f > 0 {
			failing++
		}
		if perr, _ := en.persistState(); perr != "" {
			degraded++
		}
		p, _ := en.pendingDeltas()
		pendingDeltas += int64(p)
		deltaFlushes += en.flushes.Load()
	}
	s.mu.RUnlock()
	// Batch totals sum both accounting sources: the plain counters
	// (metrics off or paused) and the metric bank (metrics on), which
	// carries the batch call in batchSlot and the query volume in the
	// per-op slots. See Snapshot.queryBatch.
	batches := s.batches.Load()
	batchQueries := s.batchQueries.Load()
	if m := s.metricsAll; m != nil {
		batches += m.batchQueries.Value(batchSlot)
		for op := OpConnected; op < opEnd; op++ {
			batchQueries += m.batchQueries.Value(int(op))
		}
	}
	return StoreStats{
		Graphs:           n,
		LiveSnapshots:    s.live.Load(),
		RetiredSnapshots: s.epochs.Retired(),
		Batches:          batches,
		BatchQueries:     batchQueries,
		ByAlgorithm:      byAlgo,
		FailingGraphs:    failing,
		BuildFailures:    s.buildFails.Load(),
		InFlightBuilds:   s.inFlight.Load(),
		PendingDeltas:    pendingDeltas,
		DeltaFlushes:     deltaFlushes,

		PersistedSnapshots: s.persistOK.Load(),
		PersistFailures:    s.persistFails.Load(),
		WalAppends:         s.walAppends.Load(),
		DegradedGraphs:     degraded,
		RecoveredGraphs:    s.recoveredGraphs.Load(),
		ReplayedMutations:  s.replayedMutations.Load(),
	}
}

// Close retires every entry and releases the Store's workers. Snapshots
// already acquired stay valid until released; Load/Rebuild/Acquire after
// Close fail wrapping ErrStoreClosed. Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	entries := make([]*storeEntry, 0, len(s.byName))
	for _, en := range s.byName {
		entries = append(entries, en)
	}
	s.byName = map[string]*storeEntry{}
	s.catalogGen.Add(1)
	s.mu.Unlock()
	for _, en := range entries {
		s.retire(en)
	}
	// Snapshots still pinned by open handles survive this scan; a later
	// Stats (or the handles' own Release path via rebuild churn) drains
	// them once the pins go quiescent.
	s.epochs.Reclaim()
	s.runner.Close()
}
