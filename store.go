package fastbcc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is one immutable version of a served graph: the graph, its
// decomposition, and the query index, published together. Snapshots are
// ref-counted: Store.Acquire retains one and the caller must Release it
// when done. A snapshot stays fully usable after being superseded by a
// rebuild — queries in flight never observe a half-swapped state and
// never block recomputation.
type Snapshot struct {
	// Name and Version identify the snapshot: Version increases by one
	// per (re)build of Name.
	Name    string
	Version int64
	// Algorithm is the registry name of the engine that computed this
	// snapshot's decomposition (see Algorithms).
	Algorithm string
	// Graph, Result, and Index are the immutable payload.
	Graph  *Graph
	Result *Result
	Index  *Index
	// BuiltAt records when the snapshot was published; BuildTime is the
	// wall time the decomposition + index build took.
	BuiltAt   time.Time
	BuildTime time.Duration

	refs  atomic.Int64 // the store's reference + one per Acquire
	store *Store
}

// tryRetain takes a reference unless the snapshot is already dead
// (refs == 0), which can happen when a rebuild swaps it out between a
// reader loading the pointer and retaining it.
func (s *Snapshot) tryRetain() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release returns the snapshot to the store. The caller must not use the
// snapshot afterwards. Releasing more times than acquired panics.
func (s *Snapshot) Release() {
	n := s.refs.Add(-1)
	switch {
	case n == 0:
		// Superseded and no reader left: the version is fully retired.
		if s.store != nil {
			s.store.live.Add(-1)
		}
	case n < 0:
		panic("fastbcc: Snapshot released more times than acquired")
	}
}

// Store is a named-graph catalog serving versioned decomposition
// snapshots — the front end cmd/bccd exposes over HTTP. Each name holds
// one current Snapshot; Load and Rebuild compute a new version on the
// Store's Runner budget and swap it in atomically, so concurrent Acquire
// calls always see a complete snapshot and queries never block
// recomputation (rebuilds of the same name serialize; different names
// rebuild concurrently within the worker budget).
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with NewStore.
type Store struct {
	runner *Runner
	live   atomic.Int64 // snapshots with at least one outstanding reference

	mu     sync.RWMutex
	byName map[string]*storeEntry
	closed bool
}

type storeEntry struct {
	buildMu sync.Mutex // serializes (re)builds of this name
	removed bool       // guarded by buildMu
	version atomic.Int64
	cur     atomic.Pointer[Snapshot]
}

// NewStore returns a Store whose rebuilds share a Runner with workers-1
// pool goroutines (workers < 1 selects GOMAXPROCS). Close releases them.
func NewStore(workers int) *Store {
	return &Store{runner: NewRunner(workers), byName: map[string]*storeEntry{}}
}

// Runner returns the Store's Runner, for callers that want to share its
// worker budget for ad-hoc decompositions.
func (s *Store) Runner() *Runner { return s.runner }

func (s *Store) lookup(name string) (*storeEntry, error) {
	s.mu.RLock()
	en := s.byName[name]
	s.mu.RUnlock()
	if en == nil {
		return nil, fmt.Errorf("fastbcc: graph %q not loaded", name)
	}
	return en, nil
}

// Load computes the decomposition and index of g and installs it as the
// current snapshot of name (creating or replacing the entry). It returns
// the new snapshot retained for the caller: Release it when done.
func (s *Store) Load(name string, g *Graph, opts *Options) (*Snapshot, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("fastbcc: store is closed")
	}
	en := s.byName[name]
	if en == nil {
		en = &storeEntry{}
		s.byName[name] = en
	}
	s.mu.Unlock()
	return s.build(en, name, g, opts)
}

// Rebuild recomputes the current graph of name into a new snapshot
// version (for example after tuning Options, or with a different
// opts.Algorithm to switch engines; an empty Algorithm keeps the entry's
// current one). It returns the new snapshot retained for the caller:
// Release it when done.
func (s *Store) Rebuild(name string, opts *Options) (*Snapshot, error) {
	en, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return s.build(en, name, nil, opts)
}

// build computes and installs one snapshot version. g == nil reuses the
// entry's current graph (Rebuild); the read happens under buildMu so a
// concurrent Load's replacement graph is not lost. An unknown
// opts.Algorithm is an error (no snapshot is installed). An empty one
// selects the entry's current algorithm on rebuilds — so a rebuild
// sticks with the engine the graph was loaded with — but the documented
// default engine on loads, including loads that replace an existing
// entry.
func (s *Store) build(en *storeEntry, name string, g *Graph, opts *Options) (*Snapshot, error) {
	en.buildMu.Lock()
	defer en.buildMu.Unlock()
	if en.removed {
		return nil, fmt.Errorf("fastbcc: graph %q not loaded", name)
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	cur := en.cur.Load()
	if g == nil {
		if cur == nil {
			return nil, fmt.Errorf("fastbcc: graph %q not loaded", name)
		}
		g = cur.Graph
		if o.Algorithm == "" {
			o.Algorithm = cur.Algorithm
		}
	}
	algo, err := resolveAlgorithm(o.Algorithm)
	if err != nil {
		return nil, err
	}
	o.Algorithm = algo
	t0 := time.Now()
	res, idx, err := s.runner.buildIndex(g, &o)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Name:      name,
		Version:   en.version.Add(1),
		Algorithm: algo,
		Graph:     g,
		Result:    res,
		Index:     idx,
		BuiltAt:   time.Now(),
		BuildTime: time.Since(t0),
		store:     s,
	}
	snap.refs.Store(2) // the store's reference + the returned handle
	s.live.Add(1)
	if old := en.cur.Swap(snap); old != nil {
		old.Release()
	}
	return snap, nil
}

// Acquire retains and returns the current snapshot of name. The caller
// must Release it; until then the snapshot stays valid even if a rebuild
// supersedes it.
func (s *Store) Acquire(name string) (*Snapshot, error) {
	en, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	for {
		snap := en.cur.Load()
		if snap == nil {
			return nil, fmt.Errorf("fastbcc: graph %q not loaded", name)
		}
		if snap.tryRetain() {
			return snap, nil
		}
		// The snapshot died between the load and the retain (swapped out
		// and fully released); the entry now points at its replacement.
	}
}

// Remove drops name from the catalog. Snapshots already acquired stay
// valid until released.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	en := s.byName[name]
	delete(s.byName, name)
	s.mu.Unlock()
	if en == nil {
		return fmt.Errorf("fastbcc: graph %q not loaded", name)
	}
	s.retire(en)
	return nil
}

func (s *Store) retire(en *storeEntry) {
	en.buildMu.Lock()
	en.removed = true
	old := en.cur.Swap(nil)
	en.buildMu.Unlock()
	if old != nil {
		old.Release()
	}
}

// Names returns the loaded graph names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.byName))
	for name := range s.byName {
		out = append(out, name)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// StoreStats is a point-in-time gauge of the catalog.
type StoreStats struct {
	// Graphs is the number of loaded names.
	Graphs int
	// LiveSnapshots counts snapshots with at least one outstanding
	// reference — current versions plus superseded ones still held by
	// in-flight readers.
	LiveSnapshots int64
	// ByAlgorithm counts loaded graphs by the engine of their current
	// snapshot.
	ByAlgorithm map[string]int
}

// Stats returns current catalog gauges.
func (s *Store) Stats() StoreStats {
	byAlgo := map[string]int{}
	s.mu.RLock()
	n := len(s.byName)
	for _, en := range s.byName {
		if cur := en.cur.Load(); cur != nil {
			byAlgo[cur.Algorithm]++
		}
	}
	s.mu.RUnlock()
	return StoreStats{Graphs: n, LiveSnapshots: s.live.Load(), ByAlgorithm: byAlgo}
}

// Close retires every entry and releases the Store's workers. Snapshots
// already acquired stay valid until released; Load/Rebuild/Acquire after
// Close fail. Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	entries := make([]*storeEntry, 0, len(s.byName))
	for _, en := range s.byName {
		entries = append(entries, en)
	}
	s.byName = map[string]*storeEntry{}
	s.mu.Unlock()
	for _, en := range entries {
		s.retire(en)
	}
	s.runner.Close()
}
