package fastbcc

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// The serving contract (see the package-level Serving section): concurrent
// BCC / Runner.Run calls with differing Threads values must be safe,
// deterministic, and must not mutate the process-global worker
// configuration. On the pre-context substrate Options.Threads called
// parallel.SetProcs, so the concurrent sections below raced to resize the
// one global pool and the final Procs() assertion failed.

// servingGraphs builds a few structurally different test graphs.
func servingGraphs(t *testing.T) []*Graph {
	t.Helper()
	gs := []*Graph{
		GenerateRMAT(12, 8, 42),
		GenerateGrid(64, 64, true),
		GenerateChain(4096),
	}
	return gs
}

// resultsEqual compares two decompositions of g semantically. The exact
// Label/Parent arrays depend on CAS claim order inside connectivity, so
// only scheduling-independent properties are compared: the component
// count, the articulation points, and the bridges — together these pin
// down the block structure.
func resultsEqual(g *Graph, a, b *Result) bool {
	if a.NumBCC != b.NumBCC {
		return false
	}
	apA, apB := a.ArticulationPoints(), b.ArticulationPoints()
	if len(apA) != len(apB) {
		return false
	}
	for i := range apA {
		if apA[i] != apB[i] {
			return false
		}
	}
	brA, brB := a.Bridges(g), b.Bridges(g)
	if len(brA) != len(brB) {
		return false
	}
	for i := range brA {
		if brA[i] != brB[i] {
			return false
		}
	}
	return true
}

func TestConcurrentBCCDifferingThreads(t *testing.T) {
	oldMax := runtime.GOMAXPROCS(4)
	oldProcs := parallel.SetProcs(4) // size the shared default pool once
	defer func() {
		runtime.GOMAXPROCS(oldMax)
		parallel.SetProcs(oldProcs)
	}()

	graphs := servingGraphs(t)
	refs := make([]*Result, len(graphs))
	for i, g := range graphs {
		refs[i] = BCC(g, &Options{Seed: 7})
	}

	before := parallel.Procs()
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		threads := worker%4 + 1 // differing Threads caps: 1, 2, 3, 4
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, g := range graphs {
					res := BCC(g, &Options{Seed: 7, Threads: threads})
					if !resultsEqual(g, res, refs[i]) {
						t.Errorf("Threads=%d: result diverged on graph %d", threads, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := parallel.Procs(); got != before {
		t.Fatalf("concurrent BCC calls mutated global Procs: %d -> %d", before, got)
	}
}

func TestRunnerConcurrent(t *testing.T) {
	oldMax := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldMax)

	graphs := servingGraphs(t)
	refs := make([]*Result, len(graphs))
	for i, g := range graphs {
		refs[i] = BCC(g, &Options{Seed: 7})
	}

	before := parallel.Procs()
	r := NewRunner(4)
	defer r.Close()
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		threads := worker % 5 // 0 (uncapped) through 4
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, g := range graphs {
					res := r.Run(g, &Options{Seed: 7, Threads: threads})
					if !resultsEqual(g, res, refs[i]) {
						t.Errorf("Runner Threads=%d: result diverged on graph %d", threads, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := parallel.Procs(); got != before {
		t.Fatalf("Runner mutated global Procs: %d -> %d", before, got)
	}
}

func TestRunnerResultsOutliveArenaReuse(t *testing.T) {
	g := GenerateRMAT(10, 4, 1)
	r := NewRunner(2)
	defer r.Close()
	first := r.Run(g, &Options{Seed: 7})
	snapshot := append([]int32(nil), first.Label...)
	// Subsequent runs recycle the arena; the first Result must not alias it.
	for i := 0; i < 5; i++ {
		r.Run(g, &Options{Seed: uint64(i) * 13})
	}
	for v := range snapshot {
		if first.Label[v] != snapshot[v] {
			t.Fatalf("Result.Label mutated by later runs at %d", v)
		}
	}
}

func TestRunnerRunAfterClose(t *testing.T) {
	g := GenerateChain(512)
	r := NewRunner(4)
	ref := r.Run(g, nil)
	r.Close()
	res := r.Run(g, nil) // must degrade to inline execution, not hang
	if !resultsEqual(g, res, ref) {
		t.Fatal("run after Close diverged")
	}
}
