package fastbcc_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	fastbcc "repro"
	"repro/internal/check"
)

// algoTestGraph has two components (a square with a chord-connected tail
// and a triangle), cut vertices, and a bridge — every engine must agree.
func algoTestGraph(t *testing.T) *fastbcc.Graph {
	t.Helper()
	g, err := fastbcc.NewGraphFromEdges(8, []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 0}, {U: 3, W: 4},
		{U: 5, W: 6}, {U: 6, W: 7}, {U: 7, W: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAlgorithmsEnumeration(t *testing.T) {
	algos := fastbcc.Algorithms()
	if len(algos) < 5 {
		t.Fatalf("expected at least 5 registered algorithms, got %v", algos)
	}
	if algos[0].Name != "fast" {
		t.Fatalf("default algorithm should come first, got %q", algos[0].Name)
	}
	seen := map[string]bool{}
	for _, a := range algos {
		seen[a.Name] = true
	}
	for _, want := range []string{"fast", "fast-opt", "seq", "gbbs", "sm14", "tv"} {
		if !seen[want] {
			t.Errorf("algorithm %q missing from enumeration", want)
		}
	}
}

func TestBCCWithEveryAlgorithm(t *testing.T) {
	g := algoTestGraph(t)
	ref := fastbcc.BCC(g, nil)
	for _, a := range fastbcc.Algorithms() {
		res := fastbcc.BCC(g, &fastbcc.Options{Algorithm: a.Name, Seed: 5})
		if res.NumBCC != ref.NumBCC {
			t.Errorf("%s: NumBCC = %d, want %d", a.Name, res.NumBCC, ref.NumBCC)
		}
		if !check.Equal(res.Blocks(), ref.Blocks()) {
			t.Errorf("%s: block decomposition differs from default engine", a.Name)
		}
	}
}

func TestBCCUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("BCC with unknown algorithm did not panic")
		}
		if !strings.Contains(panicText(r), "unknown algorithm") {
			t.Fatalf("panic %v does not name the problem", r)
		}
	}()
	fastbcc.BCC(algoTestGraph(t), &fastbcc.Options{Algorithm: "nope"})
}

func panicText(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

func TestRunnerWithEveryAlgorithm(t *testing.T) {
	g := algoTestGraph(t)
	r := fastbcc.NewRunner(4)
	defer r.Close()
	ref := r.Run(g, nil)
	for _, a := range fastbcc.Algorithms() {
		res := r.Run(g, &fastbcc.Options{Algorithm: a.Name, Threads: 2})
		if !check.Equal(res.Blocks(), ref.Blocks()) {
			t.Errorf("%s via Runner: block decomposition differs", a.Name)
		}
	}
}

func TestStorePerEntryAlgorithm(t *testing.T) {
	g := algoTestGraph(t)
	st := fastbcc.NewStore(2)
	defer st.Close()

	snap, err := st.Load(context.Background(), "g", g, &fastbcc.Options{Algorithm: "sm14"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "sm14" {
		t.Fatalf("snapshot algorithm = %q, want sm14", snap.Algorithm)
	}
	snap.Release()

	// Rebuild without an algorithm keeps the entry's engine.
	snap, err = st.Rebuild(context.Background(), "g", nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "sm14" || snap.Version != 2 {
		t.Fatalf("rebuild kept algo=%q v=%d, want sm14 v2", snap.Algorithm, snap.Version)
	}
	snap.Release()

	// Rebuild can switch engines; stats reflect the per-entry algorithm.
	snap, err = st.Rebuild(context.Background(), "g", &fastbcc.Options{Algorithm: "gbbs"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "gbbs" {
		t.Fatalf("switched algorithm = %q, want gbbs", snap.Algorithm)
	}
	snap.Release()
	if stats := st.Stats(); stats.ByAlgorithm["gbbs"] != 1 {
		t.Fatalf("stats by-algorithm = %v, want gbbs:1", stats.ByAlgorithm)
	}

	// Unknown algorithms error without installing a snapshot.
	if _, err := st.Rebuild(context.Background(), "g", &fastbcc.Options{Algorithm: "nope"}); err == nil {
		t.Fatal("rebuild with unknown algorithm did not error")
	}
	snap, err = st.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "gbbs" || snap.Version != 3 {
		t.Fatalf("failed rebuild disturbed the entry: algo=%q v=%d", snap.Algorithm, snap.Version)
	}
	snap.Release()

	// Default loads resolve to the canonical default name.
	snap, err = st.Load(context.Background(), "d", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "fast" {
		t.Fatalf("default algorithm = %q, want fast", snap.Algorithm)
	}
	snap.Release()

	// A load that replaces an entry without naming an algorithm gets the
	// documented default, not the replaced entry's engine; and unknown
	// names are classifiable with errors.Is.
	snap, err = st.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Algorithm != "fast" {
		t.Fatalf("replacing load algorithm = %q, want fast", snap.Algorithm)
	}
	snap.Release()
	if _, err := st.Load(context.Background(), "g", g, &fastbcc.Options{Algorithm: "nope"}); !errors.Is(err, fastbcc.ErrUnknownAlgorithm) {
		t.Fatalf("unknown-algorithm error not classifiable: %v", err)
	}
	// Restore the engine under test for the query comparison below.
	if _, err := st.Rebuild(context.Background(), "g", &fastbcc.Options{Algorithm: "gbbs"}); err != nil {
		t.Fatal(err)
	}

	// Queries answer identically regardless of the serving engine.
	sa, _ := st.Acquire("g")
	sb, _ := st.Acquire("d")
	defer sa.Release()
	defer sb.Release()
	for u := int32(0); u < 8; u++ {
		for v := int32(0); v < 8; v++ {
			if sa.Index.Connected(u, v) != sb.Index.Connected(u, v) ||
				sa.Index.Biconnected(u, v) != sb.Index.Biconnected(u, v) ||
				sa.Index.TwoEdgeConnected(u, v) != sb.Index.TwoEdgeConnected(u, v) {
				t.Fatalf("engines disagree on query (%d,%d)", u, v)
			}
		}
	}
}
