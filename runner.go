package fastbcc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// ErrBuildPanic is wrapped by the error a Runner or Store returns when an
// engine panics during a build. The panic is captured — on whatever
// goroutine it happened, pool worker or submitter — and converted to an
// error at the top of the build, so one misbehaving engine or graph
// never takes down a serving process; the Store keeps serving the
// entry's last-good snapshot (cmd/bccd maps this error to HTTP 500).
var ErrBuildPanic = errors.New("engine panicked")

// Runner serves BCC decompositions concurrently with a bounded worker
// budget and recycled scratch memory — the serving pattern the package
// documentation describes.
//
// A Runner owns a private worker pool, isolated from the process-global
// one: at most workers-1 pool goroutines ever exist, no matter how many
// Run calls are in flight, and each calling goroutine works only on its
// own run (so k concurrent calls execute on at most workers-1+k
// goroutines). Concurrent runs share the pool workers fairly through
// dynamic block claiming, and a run's Options.Threads further caps that
// one run — submitter included — within the Runner's budget. Each run draws its ~16n int32 of
// auxiliary buffers from a recycled arena, so a warm Runner allocates only
// what the Result itself retains.
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with NewRunner.
type Runner struct {
	exec *parallel.Exec
	// arenas recycles one *Scratch per concurrent run rather than sharing
	// a single arena, so concurrent runs never contend on a freelist
	// mutex and a burst of k runs settles at k pooled arenas.
	arenas sync.Pool
	// metrics counts runs/errors/panics when the Runner is owned by a
	// metrics-enabled Store; nil (and unrecorded) otherwise.
	metrics *runnerMetrics
}

// NewRunner returns a Runner with workers-1 shared pool goroutines, so a
// single in-flight run uses at most workers workers including its caller
// (workers < 1 selects GOMAXPROCS). The pool goroutines are started
// lazily by the first run and released by Close.
func NewRunner(workers int) *Runner {
	r := &Runner{exec: parallel.NewExec(workers)}
	r.arenas.New = func() any { return graph.NewScratch() }
	return r
}

// Run computes the biconnected components of g like BCC — including
// engine selection via opts.Algorithm, with the same panic-on-unknown-name
// contract — on the Runner's worker budget. opts may be nil for defaults.
// opts.Threads caps this run's share of the Runner's workers; opts.Scratch
// overrides the Runner's recycled arena (for callers that manage their
// own). The returned Result never aliases pooled memory.
func (r *Runner) Run(g *Graph, opts *Options) *Result {
	res, err := r.run(context.Background(), g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext is Run bounded by ctx: the build's parallel loops observe
// cancellation cooperatively at block granularity and the abandoned run
// returns ctx's error instead of running to completion. Unlike Run it
// also reports unknown algorithm names and engine panics as errors
// rather than panicking — the error-surfacing form serving layers want.
func (r *Runner) RunContext(ctx context.Context, g *Graph, opts *Options) (*Result, error) {
	return r.run(ctx, g, opts)
}

// recoverBuildPanic converts a panic unwinding a build into an error
// wrapping ErrBuildPanic, assigned to *err. Deferred at the top of every
// build path so an engine bug — wherever it fired; parallel loop bodies
// re-raise worker panics at the join — is isolated to this one build.
func recoverBuildPanic(err *error) {
	if rec := recover(); rec != nil {
		if lp, ok := rec.(*parallel.Panic); ok {
			rec = lp.Value
		}
		*err = fmt.Errorf("fastbcc: %w: %v", ErrBuildPanic, rec)
	}
}

// run is the error-returning dispatch behind Run, shared with the Store
// (which surfaces bad algorithm names, cancellation, and engine panics
// to clients instead of panicking). The four fault points of the build
// pipeline (see internal/faultpoint) live here, ahead of the engine
// dispatch; they are no-ops unless a test or debug endpoint arms them.
func (r *Runner) run(ctx context.Context, g *Graph, opts *Options) (res *Result, err error) {
	if m := r.metrics; m != nil {
		m.runs.Inc()
		// Registered before recoverBuildPanic so it runs after it (LIFO):
		// by then a panic has been converted to an ErrBuildPanic-wrapped
		// error and is classifiable.
		defer func() {
			if err != nil {
				m.errs.Inc()
				if errors.Is(err, ErrBuildPanic) {
					m.panics.Inc()
				}
			}
		}()
	}
	defer recoverBuildPanic(&err)
	if err := r.admitFaults(ctx); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	ex := r.exec.Limit(o.Threads).WithContext(ctx)
	sc := o.Scratch
	if sc == nil {
		arena := r.arenas.Get().(*Scratch)
		defer r.arenas.Put(arena)
		sc = arena
	}
	if o.Algorithm == "" || o.Algorithm == engine.Default {
		res := core.BCC(g, core.Options{Seed: o.Seed, LocalSearch: o.LocalSearch, Scratch: sc, Exec: ex})
		// Serving contract: results handed out by a Runner (and the
		// Store snapshots built on it) carry the topology caches
		// precomputed on the Runner's own workers, so a published
		// snapshot never hits the lazy compute path from a query.
		res.PrecomputeTopologyIn(ex)
		if err := r.buildErr(ex); err != nil {
			return nil, err
		}
		return res, nil
	}
	o.Scratch = sc
	res, err = runEngine(g, o, ex)
	if err != nil {
		return nil, err
	}
	if err := r.buildErr(ex); err != nil {
		return nil, err
	}
	return res, nil
}

// admitFaults runs the pre-build fault points and the entry cancellation
// check. Order matters for the harness: the slow-build sleep comes first
// so a deadline can expire inside it, then the injected panic and error.
func (r *Runner) admitFaults(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		faultpoint.Check(faultpoint.CancelObserved)
		return err
	}
	if err := faultpoint.CheckCtx(ctx, faultpoint.SlowBuild); err != nil {
		faultpoint.Check(faultpoint.CancelObserved)
		return err
	}
	faultpoint.Check(faultpoint.PanicInEngine) // panics when armed; recovered above
	return faultpoint.Check(faultpoint.ErrorInBuild)
}

// buildErr validates a finished pipeline stage: once the execution
// context is canceled, every buffer the skipped loops left behind is
// garbage, so the build is abandoned and the caller discards the result.
func (r *Runner) buildErr(ex *parallel.Exec) error {
	if err := ex.Err(); err != nil {
		faultpoint.Check(faultpoint.CancelObserved)
		return err
	}
	return nil
}

// Close releases the Runner's worker goroutines. Runs started after Close
// execute sequentially on the calling goroutine; runs already in flight
// complete normally. Close is idempotent.
func (r *Runner) Close() { r.exec.Close() }
