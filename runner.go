package fastbcc

import (
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Runner serves BCC decompositions concurrently with a bounded worker
// budget and recycled scratch memory — the serving pattern the package
// documentation describes.
//
// A Runner owns a private worker pool, isolated from the process-global
// one: at most workers-1 pool goroutines ever exist, no matter how many
// Run calls are in flight, and each calling goroutine works only on its
// own run (so k concurrent calls execute on at most workers-1+k
// goroutines). Concurrent runs share the pool workers fairly through
// dynamic block claiming, and a run's Options.Threads further caps that
// one run — submitter included — within the Runner's budget. Each run draws its ~16n int32 of
// auxiliary buffers from a recycled arena, so a warm Runner allocates only
// what the Result itself retains.
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with NewRunner.
type Runner struct {
	exec *parallel.Exec
	// arenas recycles one *Scratch per concurrent run rather than sharing
	// a single arena, so concurrent runs never contend on a freelist
	// mutex and a burst of k runs settles at k pooled arenas.
	arenas sync.Pool
}

// NewRunner returns a Runner with workers-1 shared pool goroutines, so a
// single in-flight run uses at most workers workers including its caller
// (workers < 1 selects GOMAXPROCS). The pool goroutines are started
// lazily by the first run and released by Close.
func NewRunner(workers int) *Runner {
	r := &Runner{exec: parallel.NewExec(workers)}
	r.arenas.New = func() any { return graph.NewScratch() }
	return r
}

// Run computes the biconnected components of g like BCC — including
// engine selection via opts.Algorithm, with the same panic-on-unknown-name
// contract — on the Runner's worker budget. opts may be nil for defaults.
// opts.Threads caps this run's share of the Runner's workers; opts.Scratch
// overrides the Runner's recycled arena (for callers that manage their
// own). The returned Result never aliases pooled memory.
func (r *Runner) Run(g *Graph, opts *Options) *Result {
	res, err := r.run(g, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// run is the error-returning dispatch behind Run, shared with the Store
// (which surfaces bad algorithm names to clients instead of panicking).
func (r *Runner) run(g *Graph, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	ex := r.exec.Limit(o.Threads)
	sc := o.Scratch
	if sc == nil {
		arena := r.arenas.Get().(*Scratch)
		defer r.arenas.Put(arena)
		sc = arena
	}
	if o.Algorithm == "" || o.Algorithm == engine.Default {
		res := core.BCC(g, core.Options{Seed: o.Seed, LocalSearch: o.LocalSearch, Scratch: sc, Exec: ex})
		// Serving contract: results handed out by a Runner (and the
		// Store snapshots built on it) carry the topology caches
		// precomputed on the Runner's own workers, so a published
		// snapshot never hits the lazy compute path from a query.
		res.PrecomputeTopologyIn(ex)
		return res, nil
	}
	o.Scratch = sc
	return runEngine(g, o, ex)
}

// Close releases the Runner's worker goroutines. Runs started after Close
// execute sequentially on the calling goroutine; runs already in flight
// complete normally. Close is idempotent.
func (r *Runner) Close() { r.exec.Close() }
