package fastbcc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bctree"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Incremental edge mutations.
//
// The paper's pipeline is construction-only: it computes a decomposition
// from scratch and nothing in it updates one. Serving mutable graphs on
// top of that would mean a full ~50-90ms rebuild per edge change. This
// file closes that gap with a classifier (Westbrook & Tarjan's analysis
// of incremental biconnectivity) that routes every insertion to the
// cheapest update that stays exactly correct:
//
//   - fast: the endpoints are already biconnected AND two-edge-connected
//     (or the edge is a self-loop). The new edge changes no query answer
//     the current Index gives, so ApplyBatch publishes a new snapshot
//     version that shares the Result/Index and carries the edge in the
//     snapshot's overlay — O(1), no build, no graph materialization.
//   - collapse: the endpoints are connected and their block-cut tree
//     path crosses at least one cut vertex. Adding the edge merges
//     exactly the blocks on that path into one (Westbrook-Tarjan); the
//     update is a bounded parallel relabel pass (core.MergeBlockPath)
//     plus an index rebuild over the merged decomposition — no pipeline
//     run, no CSR rebuild.
//   - rebuild: everything else — deletions, component-merging
//     insertions, parallel edges over a bridge (the blocks survive but
//     the bridge dies, changing 2ECC answers), and any insertion the
//     fault injection or a defensive check demotes. These queue in the
//     entry's delta buffer and are drained by ONE coalesced asynchronous
//     rebuild behind the usual epoch swap: a burst of N unclassifiable
//     mutations costs O(1) rebuilds, and queries keep serving the
//     last-good snapshot with the staleness surfaced in Store.Status.
//
// Lock order: the entry's build semaphore (sem) is the outer lock, the
// entry's mutation mutex (mutMu) is a leaf — it may be taken while
// holding sem, but never the reverse. Ordering guarantee: once any delta
// is pending (or a flush is running), every new mutation queues behind
// it, so the materialized edge sequence replays arrival order.

// edgeDelta is one queued mutation: an insertion (add) or a deletion of
// one occurrence of e. Edges are stored canonicalized (U <= W). seq is
// the journal sequence number of the record that carries this delta (0
// with durability off); when a flush lands, the entry's appliedSeq
// advances to the last flushed delta's seq and the journal prefix
// through it becomes truncatable (see durable.go).
type edgeDelta struct {
	add bool
	e   Edge
	seq uint64
}

// MutationResult reports how ApplyBatch disposed of one batch.
type MutationResult struct {
	// Version is the serving snapshot version after the call's
	// synchronous work (fast/collapse publishes bump it; queued
	// mutations do not until their coalesced flush lands).
	Version int64 `json:"version"`
	// Fast counts insertions applied by the intra-block overlay path,
	// Collapsed those applied by merging the BC-tree path, Queued the
	// mutations deferred to the coalesced delta rebuild.
	Fast      int `json:"fast"`
	Collapsed int `json:"collapsed"`
	Queued    int `json:"queued"`
	// Pending and DeltaAge describe the entry's whole delta buffer after
	// this call (this batch's queued mutations included): how many
	// mutations are accepted but not yet applied, and the age of the
	// oldest one.
	Pending  int           `json:"pending"`
	DeltaAge time.Duration `json:"delta_age"`
}

// mutationClass is the classifier's verdict for one insertion.
type mutationClass uint8

const (
	classRebuild mutationClass = iota
	classFast
	classCollapse
)

// classifyAdd routes the insertion {u, w} against idx, the serving
// index. Each test is an O(1) Index query.
func classifyAdd(idx *Index, e Edge) mutationClass {
	u, w := e.U, e.W
	if u == w {
		// A self-loop changes no connectivity, biconnectivity, or
		// 2-edge-connectivity answer.
		return classFast
	}
	if !idx.Connected(u, w) {
		// Components merge: the spanning forest itself changes shape.
		return classRebuild
	}
	if idx.Biconnected(u, w) {
		if idx.TwoEdgeConnected(u, w) {
			return classFast
		}
		// u and w share a block but a bridge separates them: that block
		// is the bridge's 2-vertex block, and the parallel edge keeps
		// the blocks intact while killing the bridge — 2ECC and bridge
		// answers change, so only a rebuild is exact.
		return classRebuild
	}
	// Connected, not biconnected: the BC-tree path between them crosses
	// at least one cut vertex, and the edge merges the path's blocks.
	return classCollapse
}

// canonEdge returns e with U <= W, the form deltas, overlays, and the
// materialization counts map all agree on.
func canonEdge(e Edge) Edge {
	if e.U > e.W {
		e.U, e.W = e.W, e.U
	}
	return e
}

// validateEdges rejects endpoints outside [0, n). Mutations never grow
// the vertex set — load a new graph for that.
func validateEdges(n int, adds, dels []Edge) error {
	for _, es := range [2][]Edge{adds, dels} {
		for _, e := range es {
			if e.U < 0 || int(e.U) >= n || e.W < 0 || int(e.W) >= n {
				return fmt.Errorf("fastbcc: mutation edge {%d,%d} out of range [0,%d)", e.U, e.W, n)
			}
		}
	}
	return nil
}

// ApplyBatch applies the insertions adds and deletions dels to name, in
// order (all adds, then all dels). Each insertion is classified against
// the serving snapshot's Index in O(1) and applied by the cheapest exact
// update — see the file comment for the three classes. Classified
// insertions publish one new snapshot version synchronously (shared
// Result/Index for the fast class, a merged decomposition for collapse);
// deletions and unclassifiable insertions return immediately as Queued
// and are drained by one coalesced asynchronous rebuild, during which
// queries keep serving the last-good snapshot (staleness is visible in
// the result, Store.Status, and Store.Stats).
//
// Once any delta is pending for the entry, every subsequent mutation
// queues behind it so the rebuild replays arrival order. Queued deltas
// survive a failed flush (they re-queue) and die only when the graph
// itself is replaced by Load. ctx bounds only the synchronous work; the
// coalesced flush runs on the background with the Store's BuildTimeout.
func (s *Store) ApplyBatch(ctx context.Context, name string, adds, dels []Edge) (MutationResult, error) {
	en, err := s.lookup(name)
	if err != nil {
		return MutationResult{}, err
	}
	if len(adds) == 0 && len(dels) == 0 {
		cur := en.cur.Load()
		if cur == nil {
			return MutationResult{}, notLoadedErr(name)
		}
		var r MutationResult
		r.Version = cur.Version
		r.Pending, r.DeltaAge = en.pendingDeltas()
		return r, nil
	}

	if m := s.metrics.Load(); m != nil {
		m.ensureGraphGauges(s, name)
	}

	// With deltas already pending (or a flush in flight) everything
	// queues — no build lock needed, the mutation returns in O(batch).
	en.mutMu.Lock()
	if en.flushing || len(en.deltaQ) > 0 {
		res, err := s.enqueueLocked(en, name, adds, dels)
		en.mutMu.Unlock()
		return res, err
	}
	en.mutMu.Unlock()

	// Nothing pending: classify under the entry's build lock so the
	// snapshot we classify against cannot be swapped mid-batch.
	if err := en.lockCtx(ctx); err != nil {
		return MutationResult{}, err
	}
	defer en.unlock()
	if en.removed {
		return MutationResult{}, notLoadedErr(name)
	}
	// Re-check under the lock: a delta may have arrived while we waited.
	en.mutMu.Lock()
	pending := en.flushing || len(en.deltaQ) > 0
	if pending {
		res, err := s.enqueueLocked(en, name, adds, dels)
		en.mutMu.Unlock()
		return res, err
	}
	en.mutMu.Unlock()
	return s.applyClassified(en, name, adds, dels)
}

// enqueueLocked queues the whole batch as rebuild-class deltas and kicks
// the coalesced flusher. Caller holds en.mutMu (and possibly en.sem —
// mutMu is a leaf, so both call sites are legal).
func (s *Store) enqueueLocked(en *storeEntry, name string, adds, dels []Edge) (MutationResult, error) {
	cur := en.cur.Load()
	if cur == nil {
		return MutationResult{}, notLoadedErr(name)
	}
	if err := validateEdges(cur.Graph.NumVertices(), adds, dels); err != nil {
		return MutationResult{}, err
	}
	// Journal before acknowledging: the record is what makes this batch
	// durable (a failed append degrades, it does not fail the ack).
	seq := s.journalAppend(en, name, adds, dels)
	q := make([]edgeDelta, 0, len(adds)+len(dels))
	for _, e := range adds {
		q = append(q, edgeDelta{add: true, e: canonEdge(e), seq: seq})
	}
	for _, e := range dels {
		q = append(q, edgeDelta{e: canonEdge(e), seq: seq})
	}
	s.queueDeltasLocked(en, name, q)
	res := MutationResult{Version: cur.Version, Queued: len(q)}
	res.Pending = len(en.deltaQ) + en.inFlightDeltas
	if !en.deltaSince.IsZero() {
		res.DeltaAge = time.Since(en.deltaSince)
	}
	return res, nil
}

// queueDeltasLocked appends q to the entry's delta buffer and ensures a
// flusher is scheduled. Caller holds en.mutMu.
func (s *Store) queueDeltasLocked(en *storeEntry, name string, q []edgeDelta) {
	if len(q) == 0 {
		return
	}
	if en.deltaSince.IsZero() {
		en.deltaSince = time.Now()
	}
	en.deltaQ = append(en.deltaQ, q...)
	if m := s.metrics.Load(); m != nil {
		m.mutRebuild.Add(int64(len(q)))
	}
	if !en.flushing {
		en.flushing = true
		go s.flushLoop(en, name)
	}
}

// applyClassified runs the classifier over the batch and publishes at
// most one new snapshot for the fast/collapse insertions; the rest
// queues. Caller holds en.sem, no deltas are pending, and en.removed is
// false.
func (s *Store) applyClassified(en *storeEntry, name string, adds, dels []Edge) (MutationResult, error) {
	cur := en.cur.Load()
	if cur == nil {
		return MutationResult{}, notLoadedErr(name)
	}
	if err := validateEdges(cur.Graph.NumVertices(), adds, dels); err != nil {
		return MutationResult{}, err
	}

	t0 := time.Now()
	work, idx := cur.Result, cur.Index
	var queued []edgeDelta
	var applied []Edge
	var queuedAdds, queuedDels []Edge
	fast, collapsed := 0, 0
	for _, e := range adds {
		cls := s.classifyAndMerge(cur, &work, &idx, e)
		switch cls {
		case classFast:
			fast++
			applied = append(applied, canonEdge(e))
		case classCollapse:
			collapsed++
			applied = append(applied, canonEdge(e))
		default:
			queued = append(queued, edgeDelta{add: true, e: canonEdge(e)})
			queuedAdds = append(queuedAdds, canonEdge(e))
		}
	}
	for _, e := range dels {
		queued = append(queued, edgeDelta{e: canonEdge(e)})
		queuedDels = append(queuedDels, canonEdge(e))
	}

	// Journal before acknowledging, as (up to) two records partitioning
	// the batch: the applied part — reflected in the snapshot published
	// below, so its seq becomes the snapshot's truncation point — and the
	// queued residual, whose later seq keeps it in the journal until its
	// own flush is durably persisted. The split is what makes a crash
	// anywhere here safe: replay queues each record's edges exactly once.
	var appliedSeq, queuedSeq uint64
	if len(applied) > 0 {
		appliedSeq = s.journalAppend(en, name, applied, nil)
	}
	if len(queued) > 0 {
		queuedSeq = s.journalAppend(en, name, queuedAdds, queuedDels)
		for i := range queued {
			queued[i].seq = queuedSeq
		}
	}

	if len(applied) > 0 {
		overlay := make([]Edge, 0, len(cur.overlay)+len(applied))
		overlay = append(overlay, cur.overlay...)
		overlay = append(overlay, applied...)
		snap := &Snapshot{
			Name:      name,
			Version:   en.version.Add(1),
			Algorithm: cur.Algorithm,
			Graph:     cur.Graph,
			Result:    work,
			Index:     idx,
			BuiltAt:   time.Now(),
			BuildTime: time.Since(t0),
			overlay:   overlay,
			store:     s,
		}
		// This snapshot fully reflects the applied record (we hold sem, so
		// appliedSeq > the previous watermark by construction); the shared
		// Graph may alias a mapped snapshot file.
		en.appliedSeq = appliedSeq
		snap.mutSeq = appliedSeq
		if cur.mapping != nil {
			cur.mapping.Retain()
			snap.mapping = cur.mapping
		}
		snap.refs.Store(1) // the store's reference only — nothing returned
		s.live.Add(1)
		if old := en.cur.Swap(snap); old != nil {
			s.epochs.Retire(old.Release)
		}
		cur = snap
	}
	if m := s.metrics.Load(); m != nil {
		if fast > 0 {
			m.mutFast.Add(int64(fast))
		}
		if collapsed > 0 {
			m.mutCollapse.Add(int64(collapsed))
		}
	}

	res := MutationResult{Version: cur.Version, Fast: fast, Collapsed: collapsed, Queued: len(queued)}
	en.mutMu.Lock()
	s.queueDeltasLocked(en, name, queued)
	res.Pending = len(en.deltaQ) + en.inFlightDeltas
	if !en.deltaSince.IsZero() {
		res.DeltaAge = time.Since(en.deltaSince)
	}
	en.mutMu.Unlock()
	return res, nil
}

// classifyAndMerge classifies one insertion against *idx and, for the
// collapse class, swaps *work/*idx for the merged decomposition and its
// fresh index. Any panic (the classify faultpoint, or a defensive
// failure inside the merge) demotes the insertion to the rebuild class —
// mutations degrade, they are never lost.
func (s *Store) classifyAndMerge(cur *Snapshot, work **Result, idx **Index, e Edge) (cls mutationClass) {
	cls = classRebuild
	defer func() {
		if recover() != nil {
			cls = classRebuild
		}
	}()
	if err := faultpoint.Check(faultpoint.MutateClassify); err != nil {
		return classRebuild
	}
	cls = classifyAdd(*idx, e)
	if cls != classCollapse {
		return cls
	}
	labels := (*idx).PathBlockLabels(e.U, e.W)
	merged := core.MergeBlockPath(s.runner.exec, *work, labels)
	if merged == nil {
		return classRebuild
	}
	*idx = bctree.NewIn(s.runner.exec, cur.Graph, merged)
	*work = merged
	return classCollapse
}

// errDeltasDropped marks a flush whose stolen batch was intentionally
// discarded — the entry was removed, never loaded, or its graph was
// replaced (generation mismatch) — so the deltas must NOT re-queue.
var errDeltasDropped = errors.New("fastbcc: pending deltas dropped")

// flushLoop is the per-kick coalescing drain: after the optional
// coalesce window it repeatedly steals the whole delta queue and runs
// one rebuild per stolen batch, so any burst that arrives during the
// window or during a rebuild lands in a single later rebuild. It exits
// when the queue drains, or parks the deltas back on a failure (the next
// mutation re-kicks it).
func (s *Store) flushLoop(en *storeEntry, name string) {
	if d := s.mutationCoalesce; d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-en.flushKick:
			t.Stop()
		}
	}
	for {
		en.mutMu.Lock()
		q := en.deltaQ
		en.deltaQ = nil
		if len(q) == 0 {
			en.flushing = false
			en.deltaSince = time.Time{}
			en.mutMu.Unlock()
			return
		}
		en.inFlightDeltas = len(q)
		gen := en.graphGen.Load()
		en.mutMu.Unlock()

		err := s.flushOnce(en, name, q, gen)

		en.mutMu.Lock()
		en.inFlightDeltas = 0
		if err != nil && !errors.Is(err, errDeltasDropped) {
			// Re-queue at the front: arrival order is preserved relative
			// to deltas that arrived during the failed flush. The flusher
			// parks; the next mutation (or FlushDeltas) re-kicks it, so a
			// persistent failure does not spin.
			en.deltaQ = append(q, en.deltaQ...)
			if en.deltaSince.IsZero() {
				en.deltaSince = time.Now()
			}
			en.flushing = false
			en.mutMu.Unlock()
			return
		}
		if len(en.deltaQ) == 0 {
			en.deltaSince = time.Time{}
		}
		en.mutMu.Unlock()
	}
}

// flushOnce materializes the current graph plus overlay plus the stolen
// deltas q and builds + publishes one fresh snapshot (overlay folded,
// empty again). Returns errDeltasDropped when the batch is obsolete; any
// other error means the caller must re-queue q.
func (s *Store) flushOnce(en *storeEntry, name string, q []edgeDelta, gen uint64) error {
	ctx := context.Background()
	if s.buildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.buildTimeout)
		defer cancel()
	}
	if err := en.lockCtx(ctx); err != nil {
		return err
	}
	defer en.unlock()
	if en.removed || en.graphGen.Load() != gen {
		return errDeltasDropped
	}
	cur := en.cur.Load()
	if cur == nil {
		return errDeltasDropped
	}

	t0 := time.Now()
	res, idx, g, err := s.flushBuild(ctx, cur, q)
	dur := time.Since(t0)
	trace := BuildTrace{Algorithm: cur.Algorithm, StartedAt: t0, Duration: dur, Outcome: buildOutcome(err)}
	if err != nil {
		trace.Error = err.Error()
		en.traces.add(trace)
		en.recordFailure(err)
		s.buildFails.Add(1)
		if m := s.metrics.Load(); m != nil {
			m.recordBuild(err, dur, PhaseTimes{})
		}
		return err
	}
	en.clearFailure()
	snap := &Snapshot{
		Name:      name,
		Version:   en.version.Add(1),
		Algorithm: cur.Algorithm,
		Graph:     g,
		Result:    res,
		Index:     idx,
		BuiltAt:   time.Now(),
		BuildTime: dur,
		store:     s,
	}
	// The flush materialized every stolen delta: the watermark advances
	// to the batch's last record (deltas arrive in seq order), and once
	// this snapshot is durably persisted the journal prefix through it
	// truncates away. No mapping propagation: materializeGraph built a
	// fresh CSR, nothing here aliases a mapped file.
	if last := q[len(q)-1].seq; last > en.appliedSeq {
		en.appliedSeq = last
	}
	snap.mutSeq = en.appliedSeq
	snap.refs.Store(1)
	trace.Version = snap.Version
	trace.Phases = res.Times
	en.traces.add(trace)
	if m := s.metrics.Load(); m != nil {
		m.recordBuild(nil, dur, res.Times)
		// One unit per second: _sum renders as the exact delta count.
		m.mutFlushSize.Observe(time.Duration(len(q)) * time.Second)
	}
	en.flushes.Add(1)
	s.live.Add(1)
	if old := en.cur.Swap(snap); old != nil {
		s.epochs.Retire(old.Release)
	}
	s.kickPersist(en, name)
	return nil
}

// flushBuild is flushOnce's fallible core: faultpoint, graph
// materialization, and the pipeline run, with panics captured (the
// delta-flush faultpoint's armed panic lands here and becomes an
// ordinary re-queueing failure).
func (s *Store) flushBuild(ctx context.Context, cur *Snapshot, q []edgeDelta) (res *Result, idx *Index, g *Graph, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, idx, g = nil, nil, nil
			err = fmt.Errorf("fastbcc: delta flush: %w: %v", ErrBuildPanic, rec)
		}
	}()
	if err := faultpoint.CheckCtx(ctx, faultpoint.MutateDeltaFlush); err != nil {
		return nil, nil, nil, err
	}
	g, err = materializeGraph(s.runner.exec, cur.Graph, cur.overlay, q)
	if err != nil {
		return nil, nil, nil, err
	}
	o := Options{Algorithm: cur.Algorithm}
	s.inFlight.Add(1)
	res, idx, err = s.runner.buildIndex(ctx, g, &o)
	s.inFlight.Add(-1)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, idx, g, nil
}

// FlushDeltas synchronously drains name's pending mutation deltas — the
// coalesced rebuild the asynchronous flusher would eventually run,
// without waiting out the coalesce window. It returns once the entry is
// quiescent (nothing pending and no flusher running — nil), a flush
// fails (the error; the deltas re-queue), or ctx is done. Tests and
// operational drains use it; the serving path never needs to.
func (s *Store) FlushDeltas(ctx context.Context, name string) error {
	en, err := s.lookup(name)
	if err != nil {
		return err
	}
	for {
		en.mutMu.Lock()
		if len(en.deltaQ) == 0 && en.inFlightDeltas == 0 && !en.flushing {
			// Fully quiescent: nothing pending AND no flusher goroutine
			// still winding down — after this return, a classifiable
			// mutation takes the synchronous path again.
			en.mutMu.Unlock()
			return nil
		}
		if en.flushing {
			// An async flusher owns the queue; wake it if it is sleeping
			// out its coalesce window and wait for it to drain.
			en.mutMu.Unlock()
			select {
			case en.flushKick <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
			}
			continue
		}
		// Parked deltas (a previous flush failed): drain them here.
		q := en.deltaQ
		en.deltaQ = nil
		en.inFlightDeltas = len(q)
		gen := en.graphGen.Load()
		en.flushing = true
		en.mutMu.Unlock()

		ferr := s.flushOnce(en, name, q, gen)

		en.mutMu.Lock()
		en.inFlightDeltas = 0
		en.flushing = false
		if ferr != nil && !errors.Is(ferr, errDeltasDropped) {
			en.deltaQ = append(q, en.deltaQ...)
			if en.deltaSince.IsZero() {
				en.deltaSince = time.Now()
			}
			en.mutMu.Unlock()
			return ferr
		}
		if len(en.deltaQ) == 0 {
			en.deltaSince = time.Time{}
		}
		en.mutMu.Unlock()
		if errors.Is(ferr, errDeltasDropped) {
			return nil
		}
	}
}

// materializeGraph builds a fresh CSR for base plus the overlay edges
// plus the ordered deltas. Insertions append one edge occurrence;
// deletions remove one occurrence, saturating to a no-op when none
// remains — order within the delta list matters for add/delete sequences
// over the same edge, which is why the queue replays arrival order.
func materializeGraph(e *parallel.Exec, base *Graph, overlay []Edge, deltas []edgeDelta) (*Graph, error) {
	edges := base.Edges()
	edges = append(edges, overlay...)
	hasDel := false
	for _, d := range deltas {
		if !d.add {
			hasDel = true
			break
		}
	}
	if !hasDel {
		for _, d := range deltas {
			edges = append(edges, d.e)
		}
		return graph.FromEdgesIn(e, base.NumVertices(), edges, nil)
	}
	counts := make(map[Edge]int, len(edges))
	for _, ed := range edges {
		counts[canonEdge(ed)]++
	}
	for _, d := range deltas {
		ed := canonEdge(d.e)
		if d.add {
			counts[ed]++
		} else if counts[ed] > 0 {
			counts[ed]--
		}
	}
	out := make([]Edge, 0, len(edges))
	for ed, c := range counts {
		for i := 0; i < c; i++ {
			out = append(out, ed)
		}
	}
	return graph.FromEdgesIn(e, base.NumVertices(), out, nil)
}
