package fastbcc

import (
	"context"

	"repro/internal/bctree"
	"repro/internal/parallel"
)

// Index answers online connectivity queries over one decomposition in
// O(1) (scalar queries, allocation-free) or O(path length) (enumeration):
//
//	res := fastbcc.BCC(g, nil)
//	idx := fastbcc.NewIndex(g, res)
//	idx.Biconnected(u, v)       // share a block?
//	idx.Separates(x, u, v)      // does removing x disconnect u from v?
//	idx.NumCutsOnPath(u, v)     // articulation points between u and v
//	idx.CutsOnPath(u, v)        // ... enumerated
//	idx.TwoEdgeConnected(u, v)  // no single edge removal disconnects them?
//	idx.BridgesOnPath(u, v)     // bridges every u-v route crosses
//
// An Index is immutable and safe for concurrent use; it is the per-version
// payload a Store snapshot serves. See internal/bctree for the structure
// (block-cut tree + bridge tree, flattened, with Euler-tour LCA over the
// package's RMQ).
type Index = bctree.Index

// NewIndex builds the query index for g's decomposition res, in parallel
// on the default execution context. res must be the decomposition of g.
func NewIndex(g *Graph, res *Result) *Index { return bctree.New(g, res) }

// BuildIndex computes the decomposition (with the engine selected by
// opts.Algorithm) and its query index in one call, sharing one execution
// context and Threads cap. opts may be nil.
func BuildIndex(g *Graph, opts *Options) (*Result, *Index) {
	res := BCC(g, opts)
	var threads int
	if opts != nil {
		threads = opts.Threads
	}
	return res, bctree.NewIn(parallel.Limit(threads), g, res)
}

// BuildIndex is Runner.Run followed by an index build, all within the
// Runner's worker budget (and this run's opts.Threads cap). The returned
// Result and Index never alias pooled memory.
func (r *Runner) BuildIndex(g *Graph, opts *Options) (*Result, *Index) {
	res, idx, err := r.buildIndex(context.Background(), g, opts)
	if err != nil {
		panic(err)
	}
	return res, idx
}

// buildIndex is the error-returning, context-bounded form behind
// Runner.BuildIndex, used by the Store so bad algorithm names,
// cancellation, and engine panics reach clients as errors. Both the
// decomposition and the index build observe ctx cooperatively; a
// canceled build is abandoned (its partial output discarded) and the
// context's error returned.
func (r *Runner) buildIndex(ctx context.Context, g *Graph, opts *Options) (res *Result, idx *Index, err error) {
	defer recoverBuildPanic(&err)
	var o Options
	if opts != nil {
		o = *opts
	}
	res, err = r.run(ctx, g, &o)
	if err != nil {
		return nil, nil, err
	}
	ex := r.exec.Limit(o.Threads).WithContext(ctx)
	idx = bctree.NewIn(ex, g, res)
	if err := r.buildErr(ex); err != nil {
		return nil, nil, err
	}
	return res, idx, nil
}
