package fastbcc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/faultpoint"
)

// QueryOp identifies one scalar query in a batch. The boolean ops mirror
// the Index methods of the same name; OpCutsOnPath and OpBridgesOnPath
// are the counting forms (enumeration stays on the scalar Index API —
// batches are fixed-size answers by design, which is what keeps them
// allocation-free and wire-compact).
type QueryOp uint8

const (
	// OpConnected: are U and V in the same connected component?
	OpConnected QueryOp = 1 + iota
	// OpBiconnected: do U and V share a biconnected component?
	OpBiconnected
	// OpTwoEdgeConnected: does no single edge removal disconnect U and V?
	OpTwoEdgeConnected
	// OpSeparates: does removing X disconnect U from V?
	OpSeparates
	// OpCutsOnPath counts articulation points strictly between U and V.
	OpCutsOnPath
	// OpBridgesOnPath counts bridges every U-V route must cross.
	OpBridgesOnPath

	opEnd
)

var opNames = [opEnd]string{
	OpConnected:        "connected",
	OpBiconnected:      "biconnected",
	OpTwoEdgeConnected: "twoecc",
	OpSeparates:        "separates",
	OpCutsOnPath:       "cuts",
	OpBridgesOnPath:    "bridges",
}

// Valid reports whether op is a defined query operation.
func (op QueryOp) Valid() bool { return op >= OpConnected && op < opEnd }

// Counts reports whether op's answer is a count (true) or a boolean
// encoded as 0/1 (false).
func (op QueryOp) Counts() bool { return op == OpCutsOnPath || op == OpBridgesOnPath }

// String returns the op's wire/API name — the same names cmd/bccd uses
// for its scalar query endpoints.
func (op QueryOp) String() string {
	if op.Valid() {
		return opNames[op]
	}
	return fmt.Sprintf("QueryOp(%d)", uint8(op))
}

// ParseQueryOp maps an op name ("connected", "separates", ...) to its
// QueryOp, the inverse of String.
func ParseQueryOp(name string) (QueryOp, error) {
	for op := OpConnected; op < opEnd; op++ {
		if opNames[op] == name {
			return op, nil
		}
	}
	return 0, fmt.Errorf("fastbcc: unknown query op %q", name)
}

// Query is one scalar query in a batch. X is consulted only by
// OpSeparates.
type Query struct {
	Op QueryOp
	U  int32
	V  int32
	X  int32
}

// Answer is one query's scalar result: 0/1 for the boolean ops, the
// count for OpCutsOnPath/OpBridgesOnPath.
type Answer int32

// Bool interprets the answer of a boolean op.
func (a Answer) Bool() bool { return a != 0 }

// Count interprets the answer of a counting op.
func (a Answer) Count() int { return int(a) }

// Handle is a reader's registration in the Store's epoch-reclamation
// domain — the serving fast path. Acquire/Release through a Handle are
// two uncontended atomic stores on the handle's private cacheline-padded
// slot, instead of the CAS retain/release pair on the snapshot's shared
// refcount that handle-less Store.Acquire performs; under many reader
// goroutines the shared-refcount cacheline is the serving bottleneck,
// not the 2–14ns query core.
//
// Obtain one Handle per goroutine (or pool them per connection) with
// Store.NewHandle, reuse it across batches, and Close it when the
// goroutine retires. A Handle must not be used concurrently.
type Handle struct {
	store *Store
	eh    *epoch.Handle

	// Single-entry resolution cache: a handle typically hammers one
	// graph, and revalidating against the catalog generation turns the
	// per-batch name lookup into a pointer compare instead of a trip
	// through the catalog RWMutex (a shared cacheline, like the
	// refcount this type exists to avoid).
	cacheGen  uint64
	cacheName string
	cacheEn   *storeEntry
}

// NewHandle registers a reader with the Store's epoch domain. The
// returned Handle is the fast-path alternative to Store.Acquire; see
// Handle. Handles remain usable after the Store closes (they answer
// ErrStoreClosed/ErrNotLoaded like the rest of the API).
func (s *Store) NewHandle() *Handle {
	return &Handle{store: s, eh: s.epochs.NewHandle()}
}

// Close unregisters the handle, releasing any reservation it still
// holds and recycling its epoch slot. The Handle must not be used
// afterwards. Close is idempotent.
func (h *Handle) Close() {
	h.eh.Close()
	h.cacheEn = nil
	h.cacheName = ""
}

// entry resolves name to its catalog entry, consulting the handle's
// cache first: while the catalog shape is unchanged (no loads of new
// names, removes, or close), the resolution is two loads and a string
// compare — no shared-memory writes.
func (h *Handle) entry(name string) (*storeEntry, error) {
	gen := h.store.catalogGen.Load()
	if h.cacheEn != nil && h.cacheGen == gen && h.cacheName == name {
		return h.cacheEn, nil
	}
	en, err := h.store.lookup(name)
	if err != nil {
		h.cacheEn = nil
		return nil, err
	}
	h.cacheGen, h.cacheName, h.cacheEn = gen, name, en
	return en, nil
}

// Acquire pins the handle and returns the current snapshot of name. The
// snapshot is valid until the matching Release — even if rebuilds
// supersede it — and must not be used afterwards. Unlike handle-less
// Store.Acquire it takes no shared-memory RMW: the pin is a store to
// the handle's private slot. Do NOT call Snapshot.Release on the result;
// the handle's Release ends the reservation.
//
// Acquire never blocks on builds, admission, or failure handling.
// Acquires nest (each needs its own Release), and the reservation
// covers every snapshot acquired under it.
func (h *Handle) Acquire(name string) (*Snapshot, error) {
	snap, err := h.acquire(name)
	if err == nil {
		if m := h.store.metrics.Load(); m != nil {
			m.acquiresEpoch.Inc()
		}
	}
	return snap, err
}

// acquire is Acquire without the metric touch: Store.QueryBatch counts
// its pin through the batch's counter-bank flush (opCounts slot 0)
// instead of a separate sharded counter, so the batch fast path dirties
// one metrics cacheline, not two.
func (h *Handle) acquire(name string) (*Snapshot, error) {
	en, err := h.entry(name)
	if err != nil {
		return nil, err
	}
	h.eh.Pin()
	snap := en.cur.Load()
	if snap == nil {
		h.eh.Unpin()
		return nil, notLoadedErr(name)
	}
	return snap, nil
}

// Release ends the reservation of the matching Acquire. Snapshots
// acquired under it must not be used afterwards.
func (h *Handle) Release() { h.eh.Unpin() }

// checkEvery is how many queries a batch executes between context
// checks; a power of two so the check is a mask test.
const checkEvery = 1 << 12

// parallelBatchMin is the batch size above which QueryBatch fans the
// queries out over the Store's Runner workers. Below it the sequential
// loop wins (and stays strictly allocation-free).
const parallelBatchMin = 1 << 15

// QueryBatch answers qs against the snapshot sn, appending one Answer
// per query to dst[:0] (pass a recycled dst with enough capacity to
// keep the call allocation-free; nil allocates). The caller must hold
// sn by either reader discipline — an epoch pin or a refcount — for the
// whole call.
//
// Batches larger than an internal threshold execute in parallel on the
// snapshot's Store Runner workers (the build pool; the submitting
// goroutine always participates, so a batch makes progress even while
// builds saturate the pool). ctx is observed cooperatively every few
// thousand queries; a canceled or over-deadline batch returns the
// context's error and no answers.
//
// Every query is validated (known op, vertices in range); an invalid
// query fails the whole batch with an error naming its index — no
// partial answers.
func (sn *Snapshot) QueryBatch(ctx context.Context, qs []Query, dst []Answer) ([]Answer, error) {
	return sn.queryBatch(ctx, qs, dst, false)
}

// queryBatch is QueryBatch plus the epochPin flag: true when the caller
// is Store.QueryBatch and its handle pin should be counted through the
// batch flush (see opCounts).
func (sn *Snapshot) queryBatch(ctx context.Context, qs []Query, dst []Answer, epochPin bool) ([]Answer, error) {
	if err := faultpoint.CheckCtx(ctx, faultpoint.SlowQuery); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dst = dst[:0]
	if cap(dst) < len(qs) {
		dst = make([]Answer, 0, len(qs))
	}
	answers := dst[:len(qs)]
	idx := sn.Index
	n := int32(sn.Graph.NumVertices())

	var m *storeMetrics
	if sn.store != nil {
		m = sn.store.metrics.Load()
	}
	var counts opCounts
	if m != nil && epochPin {
		counts[pinSlot] = 1
	}

	if len(qs) >= parallelBatchMin {
		if err := sn.queryParallel(ctx, idx, n, qs, answers); err != nil {
			return nil, err
		}
		if m != nil {
			// Large batches count in a separate pass: its cost amortizes
			// over >=32K queries, and the workers stay untouched.
			for i := range qs {
				counts[qs[i].Op&7]++
			}
		}
	} else {
		for i := range qs {
			if i&(checkEvery-1) == checkEvery-1 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			a, ok := execQuery(idx, n, &qs[i])
			if !ok {
				return nil, queryErr(i, &qs[i], n)
			}
			answers[i] = a
			// Per-op tally, unconditional: one stack add overlapped with
			// the query work (a predictable metrics-enabled? branch here
			// would cost as much as the add), masked so the validated op
			// indexes without a bounds check.
			counts[qs[i].Op&7]++
		}
	}
	// Stats accounting: with metrics on, the batch call rides the same
	// bank flush as the per-op tallies and the epoch pin — one flush
	// instead of two plain atomic adds, so the instrumented path costs
	// roughly what the bare one does. With metrics off (or paused), the
	// plain counters take over; Stats and fastbcc_batches_total sum
	// both sources, so totals stay exact across SetMetricsEnabled flips.
	if m != nil {
		counts[batchSlot] = 1
		m.recordBatch(&counts)
	} else if sn.store != nil {
		sn.store.batches.Add(1)
		sn.store.batchQueries.Add(int64(len(qs)))
	}
	return answers, nil
}

// queryParallel is the large-batch path: the queries are blocked over
// the Store's Runner execution context (dynamic claiming shares the
// workers fairly with any in-flight builds). Failures record the lowest
// failing query index so the reported error is deterministic.
func (sn *Snapshot) queryParallel(ctx context.Context, idx *Index, n int32, qs []Query, answers []Answer) error {
	bad := atomic.Int64{}
	bad.Store(int64(len(qs)))
	canceled := atomic.Bool{}
	sn.store.runner.exec.ForBlock(len(qs), checkEvery, func(lo, hi int) {
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		for i := lo; i < hi; i++ {
			a, ok := execQuery(idx, n, &qs[i])
			if !ok {
				// Record the lowest failing index; answers past it are
				// garbage but the batch errors anyway.
				for {
					cur := bad.Load()
					if int64(i) >= cur || bad.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
				return
			}
			answers[i] = a
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	if canceled.Load() {
		return context.Canceled
	}
	if i := bad.Load(); i < int64(len(qs)) {
		return queryErr(int(i), &qs[i], n)
	}
	return nil
}

// execQuery answers one validated query; ok is false for an unknown op
// or out-of-range vertex (the unsigned compares fold the negative and
// too-large cases into one branch each).
func execQuery(idx *Index, n int32, q *Query) (Answer, bool) {
	u, v := q.U, q.V
	if uint32(u) >= uint32(n) || uint32(v) >= uint32(n) {
		return 0, false
	}
	switch q.Op {
	case OpConnected:
		return b2a(idx.Connected(u, v)), true
	case OpBiconnected:
		return b2a(idx.Biconnected(u, v)), true
	case OpTwoEdgeConnected:
		return b2a(idx.TwoEdgeConnected(u, v)), true
	case OpSeparates:
		if uint32(q.X) >= uint32(n) {
			return 0, false
		}
		return b2a(idx.Separates(q.X, u, v)), true
	case OpCutsOnPath:
		return Answer(idx.NumCutsOnPath(u, v)), true
	case OpBridgesOnPath:
		return Answer(idx.NumBridgesOnPath(u, v)), true
	}
	return 0, false
}

func b2a(b bool) Answer {
	if b {
		return 1
	}
	return 0
}

// queryErr builds the batch-failing error for query i: the off-hot-path
// diagnosis of what execQuery rejected.
func queryErr(i int, q *Query, n int32) error {
	switch {
	case !q.Op.Valid():
		return fmt.Errorf("fastbcc: query %d: invalid op %d", i, uint8(q.Op))
	case uint32(q.U) >= uint32(n):
		return fmt.Errorf("fastbcc: query %d: vertex u=%d out of range [0,%d)", i, q.U, n)
	case uint32(q.V) >= uint32(n):
		return fmt.Errorf("fastbcc: query %d: vertex v=%d out of range [0,%d)", i, q.V, n)
	default:
		return fmt.Errorf("fastbcc: query %d: vertex x=%d out of range [0,%d)", i, q.X, n)
	}
}

// QueryBatch resolves the current snapshot of name and answers qs
// against it: one reservation, one snapshot resolve, N scalar queries —
// the per-query cost approaches the raw 2–14ns Index core instead of
// paying a full Acquire/Release hop each.
//
// With a non-nil Handle the reservation is the epoch fast path (two
// uncontended stores); a nil Handle falls back to the compatible
// refcount CAS pair, so handle-less callers keep working. Answers are
// appended to dst[:0] (see Snapshot.QueryBatch for the reuse contract
// and validation semantics). The snapshot version the batch was
// answered from is returned alongside the answers — batches racing a
// rebuild see one consistent version, never a mix.
func (s *Store) QueryBatch(ctx context.Context, h *Handle, name string, qs []Query, dst []Answer) ([]Answer, int64, error) {
	if h != nil {
		if h.store != s {
			return nil, 0, errors.New("fastbcc: QueryBatch: handle belongs to a different Store")
		}
		snap, err := h.acquire(name)
		if err != nil {
			return nil, 0, err
		}
		defer h.Release()
		out, err := snap.queryBatch(ctx, qs, dst, true)
		return out, snap.Version, err
	}
	snap, err := s.Acquire(name)
	if err != nil {
		return nil, 0, err
	}
	defer snap.Release()
	out, err := snap.QueryBatch(ctx, qs, dst)
	return out, snap.Version, err
}
