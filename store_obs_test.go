package fastbcc_test

import (
	"context"
	"errors"
	"testing"

	fastbcc "repro"
	"repro/internal/faultpoint"
)

// Store-level observability: the per-graph build-trace ring, the build
// classification it records, and the DisableMetrics escape hatch used by
// the qbench A/B overhead measurement.

func TestStoreTraceRing(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)

	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	// 17 rebuilds: 18 attempts total, one more than the ring holds.
	for i := 0; i < 17; i++ {
		snap, err := s.Rebuild(context.Background(), "demo", nil)
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()
	}

	traces, err := s.Trace("demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 16 {
		t.Fatalf("ring holds %d traces, want 16", len(traces))
	}
	// Newest first; the oldest two attempts (versions 1 and 2) evicted.
	for i, tr := range traces {
		if want := int64(18 - i); tr.Version != want {
			t.Fatalf("trace[%d].Version = %d, want %d", i, tr.Version, want)
		}
		if tr.Outcome != fastbcc.BuildOK {
			t.Fatalf("trace[%d].Outcome = %q", i, tr.Outcome)
		}
		if tr.Duration <= 0 || tr.StartedAt.IsZero() {
			t.Fatalf("trace[%d] missing timing: %+v", i, tr)
		}
	}

	if _, err := s.Trace("nosuch"); err == nil {
		t.Fatal("Trace of unknown graph did not error")
	}
}

func TestStoreTraceRecordsFailures(t *testing.T) {
	defer faultpoint.Reset()
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)

	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	faultpoint.ArmError(faultpoint.ErrorInBuild, 0)
	if _, err := s.Rebuild(context.Background(), "demo", nil); err == nil {
		t.Fatal("faulted rebuild did not error")
	}
	faultpoint.Reset()

	traces, err := s.Trace("demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("want 2 traces, got %d", len(traces))
	}
	failed, ok := traces[0], traces[1]
	if failed.Outcome != fastbcc.BuildError || failed.Error == "" || failed.Version != 0 {
		t.Fatalf("failed trace: %+v", failed)
	}
	if ok.Outcome != fastbcc.BuildOK || ok.Version != 1 {
		t.Fatalf("ok trace: %+v", ok)
	}
	if failed.Phases != (fastbcc.PhaseTimes{}) {
		t.Fatalf("failed build carries phase times: %+v", failed.Phases)
	}

	// Status surfaces the most recent attempt alongside the serving
	// snapshot's phase breakdown (still version 1's).
	st, err := s.Status("demo")
	if err != nil {
		t.Fatal(err)
	}
	if st.LastBuild == nil || st.LastBuild.Outcome != fastbcc.BuildError {
		t.Fatalf("Status.LastBuild = %+v", st.LastBuild)
	}
	if st.Phases.Total() <= 0 {
		t.Fatalf("Status.Phases empty: %+v", st.Phases)
	}
}

func TestStoreTraceRecordsCancellation(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Rebuild(ctx, "demo", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("rebuild with canceled ctx = %v", err)
	}
	traces, err := s.Trace("demo")
	if err != nil {
		t.Fatal(err)
	}
	if traces[0].Outcome != fastbcc.BuildCanceled {
		t.Fatalf("canceled build classified %q", traces[0].Outcome)
	}
}

func TestStoreDisableMetrics(t *testing.T) {
	s := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{DisableMetrics: true})
	defer s.Close()
	if s.Metrics() != nil {
		t.Fatal("DisableMetrics store still has a registry")
	}

	// The serving paths are unaffected: load, both acquire disciplines,
	// a batch, and the trace ring (which is independent of metrics).
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	snap, err = s.Acquire("demo")
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	h := s.NewHandle()
	defer h.Close()
	qs := []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 6}}
	as, _, err := s.QueryBatch(context.Background(), h, "demo", qs, nil)
	if err != nil || len(as) != 1 || as[0] != 1 {
		t.Fatalf("batch on metrics-free store: %v %v", as, err)
	}
	traces, err := s.Trace("demo")
	if err != nil || len(traces) != 1 {
		t.Fatalf("trace on metrics-free store: %v %v", traces, err)
	}
}

// TestStoreSetMetricsEnabled exercises the runtime recording kill
// switch: pausing freezes the serving-path recorders (per-op batch
// volume, acquire-discipline counters) while Stats and the func-backed
// fastbcc_batches_total stay exact by summing the plain stat counters
// the paused path falls back to; re-enabling resumes recording without
// losing anything.
func TestStoreSetMetricsEnabled(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	h := s.NewHandle()
	defer h.Close()
	qs := []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 6}}
	batch := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, _, err := s.QueryBatch(context.Background(), h, "demo", qs, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	read := func(family, labels string) float64 {
		t.Helper()
		for _, fam := range s.Metrics().Gather() {
			if fam.Name != family {
				continue
			}
			for _, se := range fam.Series {
				if se.Labels == labels {
					return se.Value
				}
			}
		}
		t.Fatalf("series %s{%s} not found", family, labels)
		return 0
	}

	batch(2)
	s.SetMetricsEnabled(false)
	batch(3) // paused: plain stat counters take over
	s.SetMetricsEnabled(true)
	batch(1)

	// Exactness across the flips: totals count every batch...
	if got := read("fastbcc_batches_total", ""); got != 6 {
		t.Errorf("fastbcc_batches_total = %v, want 6", got)
	}
	st := s.Stats()
	if st.Batches != 6 || st.BatchQueries != 6 {
		t.Errorf("Stats batches/queries = %d/%d, want 6/6", st.Batches, st.BatchQueries)
	}
	// ...while the paused recorders saw only the 3 recorded batches.
	if got := read("fastbcc_batch_queries_total", `op="connected"`); got != 3 {
		t.Errorf(`batch_queries{op="connected"} = %v, want 3`, got)
	}
	if got := read("fastbcc_acquires_total", `discipline="epoch"`); got != 3 {
		t.Errorf(`acquires{discipline="epoch"} = %v, want 3`, got)
	}

	// The switch is a no-op on a DisableMetrics store.
	off := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{DisableMetrics: true})
	defer off.Close()
	off.SetMetricsEnabled(true)
	if off.Metrics() != nil {
		t.Fatal("SetMetricsEnabled(true) resurrected a DisableMetrics store")
	}
}

func TestStoreMetricsRegistryGathers(t *testing.T) {
	s := fastbcc.NewStore(2)
	defer s.Close()
	g := storeTestGraph(t)
	snap, err := s.Load(context.Background(), "demo", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	reg := s.Metrics()
	if reg == nil {
		t.Fatal("default store has no metrics registry")
	}
	found := map[string]bool{}
	for _, fam := range reg.Gather() {
		found[fam.Name] = true
	}
	for _, name := range []string{
		"fastbcc_acquires_total", "fastbcc_batches_total",
		"fastbcc_builds_total", "fastbcc_build_duration_seconds",
		"fastbcc_build_phase_duration_seconds", "fastbcc_live_snapshots",
		"fastbcc_retired_snapshots", "fastbcc_reclaimed_snapshots_total",
	} {
		if !found[name] {
			t.Errorf("registry missing family %s", name)
		}
	}
}
