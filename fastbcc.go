// Package fastbcc is a Go implementation of FAST-BCC — "Provably Fast and
// Space-Efficient Parallel Biconnectivity" (Dong, Wang, Gu, Sun,
// PPoPP 2023) — together with the baselines the paper evaluates.
//
// FAST-BCC computes the biconnected components (BCCs, blocks) of an
// undirected graph with O(n+m) expected work, O(log³ n) span whp, and O(n)
// auxiliary space. It follows the skeleton–connectivity framework: a
// spanning forest is computed by parallel connectivity, rooted with the
// Euler tour technique, tagged with first/last/low/high, and a second
// connectivity pass over the implicit skeleton (fence tree edges and back
// edges skipped) labels the blocks.
//
// # Quick start
//
//	g, err := fastbcc.NewGraphFromEdges(4, []fastbcc.Edge{
//		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 2, W: 3},
//	})
//	res := fastbcc.BCC(g, nil)
//	fmt.Println(res.NumBCC)              // 2: the triangle and the bridge
//	fmt.Println(res.ArticulationPoints()) // [2]
//
// The result is the paper's O(n) representation — a label per non-root
// vertex plus a component head per label; explicit blocks, articulation
// points, and bridges are derived on demand.
//
// # Choosing an algorithm
//
// Every BCC implementation in the repository — FAST-BCC plus the paper's
// baselines (sequential Hopcroft–Tarjan, a faithful Tarjan–Vishkin, a
// GBBS-style BFS-skeleton algorithm, and an SM'14-style algorithm) — is a
// registered engine producing the same Result representation, selected by
// Options.Algorithm:
//
//	res := fastbcc.BCC(g, &fastbcc.Options{Algorithm: "gbbs"})
//	for _, a := range fastbcc.Algorithms() { ... } // the choices + caps
//
// All engines return identical decompositions (the cross-test suite
// enforces it), so the whole query and serving surface — Index, Runner,
// Store, cmd/bccd — works identically on any of them; the choice trades
// construction speed, memory, and determinism (see the README's
// capabilities table). Engines with native restrictions are normalized:
// the SM'14 baseline only supports connected graphs, so the registry
// runs it per connected component and merges. BCCSeq exposes
// Hopcroft–Tarjan's explicit block output directly for convenience.
//
// # Performance
//
// The hot paths are engineered to pay no synchronization or allocation tax
// beyond the algorithm's own work. Parallel loops run on a lazily-started
// persistent worker pool (no goroutine spawn per loop), CSR construction
// is atomic-free (per-worker degree counting, prefix-sum merged scatter
// ranges, and an allocation-free radix/insertion hybrid for neighbor
// lists), and a single FAST-BCC run's ~16n int32 of auxiliary buffers can
// be recycled across runs through a Scratch arena:
//
//	sc := fastbcc.NewScratch()
//	for _, g := range graphs {
//		res := fastbcc.BCC(g, &fastbcc.Options{Scratch: sc})
//		... // res never aliases arena memory; safe to retain
//	}
//
// Repeated BCC calls with a shared Scratch (the serving pattern) cut
// allocated bytes per run by roughly 3× on power-law inputs; pass the same
// arena to NewGraphFromEdgesScratch to recycle construction buffers too.
//
// # Serving
//
// Every entry point of this package is safe to call concurrently, including
// concurrent BCC calls on the same *Graph (graphs are never mutated) and
// concurrent calls with different Options.Threads values. Threads is a
// per-call worker cap: it bounds how many workers that one call may use,
// mutates no global state, and restarts no pool. (Historically Threads
// called parallel.SetProcs, so two concurrent callers raced to resize one
// process-global pool; that global mutation is gone.)
//
// A process that serves many decompositions should use a Runner, which
// bounds the pool goroutines shared by all in-flight runs (each calling
// goroutine additionally works on its own run) and recycles each run's
// ~16n int32 of scratch buffers automatically:
//
//	r := fastbcc.NewRunner(8) // 7 pool workers shared by all runs
//	defer r.Close()
//	... // from any number of goroutines:
//	res := r.Run(g, &fastbcc.Options{Threads: 4}) // ≤ 4 workers for this run
//
// Runner.Run calls are independent: concurrent runs share the Runner's
// workers through dynamic block claiming, each within its own Threads cap.
// Results never alias pooled memory, so they remain valid indefinitely.
// One process-wide parallel.SetProcs sizing (or the GOMAXPROCS default)
// still governs plain BCC calls without a Runner.
//
// # Online queries
//
// A Result is a decomposition; an Index answers questions about it. The
// index flattens the block-cut tree and the bridge tree (over the
// 2-edge-connected components) into rooted array-based forests with
// Euler-tour LCA, so after an O(n+m) parallel build every scalar query is
// O(1) and allocation-free:
//
//	res, idx := fastbcc.BuildIndex(g, nil)
//	idx.Biconnected(u, v)       // share a block?
//	idx.Separates(x, u, v)      // does removing x disconnect u from v?
//	idx.NumCutsOnPath(u, v)     // single points of failure between u and v
//	idx.TwoEdgeConnected(u, v)  // immune to any single link failure?
//	idx.CutsOnPath(u, v)        // ... enumerated (allocates the output)
//	idx.BridgesOnPath(u, v)     // the links every u-v route crosses
//
// For serving many graphs under churn, a Store keeps a catalog of named
// graphs with versioned, ref-counted (graph, Result, Index) snapshots:
// Acquire hands out the current snapshot, rebuilds compute on the Store's
// Runner budget and swap atomically, and readers holding a superseded
// version keep querying it safely until they Release. cmd/bccd exposes a
// Store over HTTP/JSON.
package fastbcc

import (
	"fmt"

	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/seqbcc"
)

// Graph is an undirected graph in compressed-sparse-row form.
type Graph = graph.Graph

// Edge is an undirected edge {U, W}.
type Edge = graph.Edge

// Result is a biconnectivity decomposition in the O(n) label/head
// representation, with per-step timings and a space estimate.
type Result = core.Result

// SeqResult is the explicit block decomposition produced by BCCSeq.
type SeqResult = seqbcc.Result

// Scratch is a reusable arena for the pipeline's auxiliary buffers; see
// the package-level Performance section. Safe for concurrent use.
type Scratch = graph.Scratch

// NewScratch returns an empty arena for Options.Scratch and
// NewGraphFromEdgesScratch.
func NewScratch() *Scratch { return graph.NewScratch() }

// Options tunes the decomposition run. The zero value is a sensible
// default (the FAST-BCC engine on the default execution context).
type Options struct {
	// Algorithm selects the engine by registry name ("" = "fast", the
	// paper's FAST-BCC). Algorithms() enumerates the choices with their
	// capabilities; unknown names make BCC panic — validate user-supplied
	// names up front (the Store does) or pick from Algorithms().
	Algorithm string
	// Seed drives the randomized connectivity; runs with equal seeds on
	// equal graphs produce identical spanning forests.
	Seed uint64
	// LocalSearch enables the hash-bag/local-search connectivity
	// optimization (1.5× average speedup in the paper, Fig. 6).
	LocalSearch bool
	// Threads caps the number of workers this one call may use
	// (0 = no cap beyond the executing pool's size). The cap is purely
	// per-call: it mutates no global state and restarts no pool, so
	// concurrent calls with different Threads values are safe and
	// isolated. See the package-level Serving section.
	Threads int
	// Scratch, when non-nil, recycles auxiliary buffers across BCC calls.
	Scratch *Scratch
	// Source is the root vertex for engines that grow a tree from a seed
	// vertex (the SM'14 baseline's BFS root); the default engine ignores
	// it.
	Source int32
}

// AlgorithmInfo describes one registered BCC engine: its registry name
// plus capability flags for choosing among them (see the README's
// "Choosing an algorithm" table).
type AlgorithmInfo struct {
	// Name is the value for Options.Algorithm.
	Name string
	// ConnectedOnly marks engines whose native implementation supports
	// only connected graphs; the serving stack transparently runs them
	// per component, so any graph still works.
	ConnectedOnly bool
	// Sequential marks single-threaded engines that ignore Threads.
	Sequential bool
	// Deterministic marks engines whose full Result (labels, parents,
	// heads — not just the block decomposition, which is canonical for
	// every engine) is identical across runs with equal Options.
	Deterministic bool
}

// Algorithms enumerates the registered BCC engines, default first. Every
// name is valid for Options.Algorithm everywhere an Options is accepted
// (BCC, Runner, Store, cmd/bccd's "algo" field).
func Algorithms() []AlgorithmInfo {
	engines := engine.All()
	out := make([]AlgorithmInfo, len(engines))
	for i, a := range engines {
		c := a.Caps()
		out[i] = AlgorithmInfo{
			Name:          a.Name(),
			ConnectedOnly: c.ConnectedOnly,
			Sequential:    c.Sequential,
			Deterministic: c.Deterministic,
		}
	}
	return out
}

// ErrUnknownAlgorithm is wrapped by the errors Store.Load/Rebuild return
// for an unregistered Options.Algorithm, so serving layers can classify
// bad names with errors.Is (cmd/bccd maps them to HTTP 400).
var ErrUnknownAlgorithm = engine.ErrUnknownAlgorithm

// resolveAlgorithm canonicalizes an algorithm name ("" selects the
// default engine) and validates it against the registry, returning an
// error that lists the valid names.
func resolveAlgorithm(name string) (string, error) {
	a, err := engine.Get(name)
	if err != nil {
		return "", fmt.Errorf("fastbcc: %w", err)
	}
	return a.Name(), nil
}

// runEngine dispatches one decomposition to the selected engine. exec
// overrides the Threads-derived context when non-nil (the Runner path).
func runEngine(g *Graph, o Options, exec *parallel.Exec) (*Result, error) {
	a, err := engine.Get(o.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("fastbcc: %w", err)
	}
	opt := engine.RunOptions{
		Exec:        exec,
		Scratch:     o.Scratch,
		Source:      o.Source,
		Seed:        o.Seed,
		LocalSearch: o.LocalSearch,
	}
	if exec == nil {
		opt.Threads = o.Threads
	}
	res, err := a.Run(g, opt)
	if err != nil {
		return nil, fmt.Errorf("fastbcc: algorithm %q: %w", a.Name(), err)
	}
	return res, nil
}

// NewGraphFromEdges builds a symmetric CSR graph over n vertices. Self
// loops and parallel edges are allowed; they never change the vertex-set
// block decomposition.
func NewGraphFromEdges(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// NewGraphFromEdgesScratch is NewGraphFromEdges drawing its construction
// temporaries from sc.
func NewGraphFromEdgesScratch(n int, edges []Edge, sc *Scratch) (*Graph, error) {
	return graph.FromEdgesScratch(n, edges, sc)
}

// ReorderByComponent relabels the graph so each connected component
// occupies a contiguous vertex-id range — the CSR locality optimization
// the paper applies after First-CC ("re-order the vertices in the CSR
// format to let each CC be contiguous", Sec. 5). It computes
// connectivity, returns the reordered graph and the permutation
// (newID[v] is v's id in the new graph), and caps the work at threads
// workers (0 = no cap). Decompositions and indexes built on the
// reordered graph answer queries about newID[v] exactly as the original
// answers about v; cmd/bccd applies the mapping transparently when a
// graph is loaded with "reorder": true.
func ReorderByComponent(g *Graph, threads int) (*Graph, []int32) {
	e := parallel.Limit(threads)
	cc := conn.Connectivity(g, conn.Options{Exec: e})
	return graph.ReorderByComponentIn(e, g, cc.Comp)
}

// LoadGraph reads a graph from a binary file written by SaveGraph.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes the graph to path in the package's binary format.
func SaveGraph(g *Graph, path string) error { return g.SaveFile(path) }

// BCC computes the biconnected components of g with the engine selected
// by opts.Algorithm (default FAST-BCC). opts may be nil for defaults.
// BCC panics on an unknown Algorithm name — a programmer error, since
// Algorithms() enumerates the valid ones; serving layers that accept
// user-supplied names should go through a Store, which validates and
// returns an error instead.
//
// On the default engine the Result's topology caches (ArticulationPoints,
// BlockCutTree) are built lazily on first query, guarded by a sync.Once
// (concurrent first queries are safe), so a one-shot decomposition that
// never asks for them pays nothing. Results produced by a Runner, Store,
// or explicit engine selection precompute the caches before returning —
// the serving paths have no first-query latency cliff.
func BCC(g *Graph, opts *Options) *Result {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Algorithm == "" || o.Algorithm == engine.Default {
		// The default engine keeps its direct path: no registry hop, and
		// the per-call Threads cap over the default pool mutates no
		// global state.
		var ex *parallel.Exec
		if o.Threads > 0 {
			ex = parallel.Limit(o.Threads)
		}
		return core.BCC(g, core.Options{Seed: o.Seed, LocalSearch: o.LocalSearch, Scratch: o.Scratch, Exec: ex})
	}
	res, err := runEngine(g, o, nil)
	if err != nil {
		panic(err)
	}
	return res
}

// BCCSeq computes the biconnected components with the sequential
// Hopcroft–Tarjan algorithm (the paper's SEQ baseline).
func BCCSeq(g *Graph) *SeqResult { return seqbcc.BCC(g) }

// ArticulationPoints returns the articulation points of g.
func ArticulationPoints(g *Graph) []int32 {
	return BCC(g, nil).ArticulationPoints()
}

// Bridges returns the bridge edges of g, each with U < W, sorted.
func Bridges(g *Graph) []Edge {
	return BCC(g, nil).Bridges(g)
}

// Generators for realistic workloads, re-exported from internal/gen so
// downstream users can reproduce the paper's graph categories.
var (
	// GenerateChain returns a path of n vertices (the paper's Chn graphs).
	GenerateChain = gen.Chain
	// GenerateGrid returns a rows×cols grid, circular per the paper's
	// SQR/REC graphs when circular is true.
	GenerateGrid = gen.Grid2D
	// GenerateSampledGrid keeps each circular-grid edge with probability p
	// (the paper's SQR'/REC').
	GenerateSampledGrid = gen.SampledGrid
	// GenerateRMAT returns a power-law graph resembling social/web graphs.
	GenerateRMAT = gen.RMAT
	// GenerateKNN returns the k-nearest-neighbor graph of n random points.
	GenerateKNN = gen.KNN
	// GenerateRoadLike returns a grid-with-shortcuts road-network analog.
	GenerateRoadLike = gen.RoadLike
)
