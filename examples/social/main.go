// Social: robustness structure of a social network.
//
// On power-law graphs almost all users sit inside one giant biconnected
// core (the paper's social graphs have |BCC1| between 40%% and 98%% of n),
// with a fringe of pendant users attached through cut vertices. This
// example measures that structure and compares FAST-BCC against the
// sequential Hopcroft–Tarjan baseline on the same graph.
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"time"

	fastbcc "repro"
)

func main() {
	// RMAT graph: 2^16 users, ~16 average degree, heavy-tailed.
	g := fastbcc.GenerateRMAT(16, 8, 7)
	fmt.Printf("social network: %d users, %d ties\n", g.NumVertices(), g.NumEdges())

	t0 := time.Now()
	res := fastbcc.BCC(g, &fastbcc.Options{LocalSearch: true})
	par := time.Since(t0)

	t0 = time.Now()
	seq := fastbcc.BCCSeq(g)
	seqT := time.Since(t0)

	fmt.Printf("FAST-BCC: %v   Hopcroft-Tarjan: %v   (speedup %.1fx)\n",
		par, seqT, float64(seqT)/float64(par))
	if res.NumBCC != seq.NumBCC() {
		panic("decompositions disagree")
	}

	// Block size distribution.
	counts := make([]int, res.NumLabels)
	for v, l := range res.Label {
		if res.Parent[v] != -1 {
			counts[l]++
		}
	}
	largest, pendant := 0, 0
	for l, c := range counts {
		if res.Head[l] == -1 {
			continue
		}
		size := c + 1
		if size > largest {
			largest = size
		}
		if size == 2 {
			pendant++
		}
	}
	fmt.Printf("blocks: %d\n", res.NumBCC)
	fmt.Printf("giant biconnected core: %d users (%.1f%% of the network)\n",
		largest, 100*float64(largest)/float64(g.NumVertices()))
	fmt.Printf("pendant attachments (2-user blocks): %d\n", pendant)
	fmt.Printf("cut users (articulation points): %d\n", len(res.ArticulationPoints()))
}
