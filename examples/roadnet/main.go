// Roadnet: vulnerability analysis of a road network.
//
// Road networks are the paper's motivating large-diameter case: BFS-based
// BCC algorithms lose their parallelism there, while FAST-BCC keeps
// polylogarithmic span. This example builds a road-like grid, finds the
// articulation points (intersections whose closure disconnects traffic)
// and bridges (road segments with no detour), and ranks the most critical
// intersections by how many blocks they join.
//
// Run with: go run ./examples/roadnet
package main

import (
	"fmt"
	"sort"
	"time"

	fastbcc "repro"
)

func main() {
	// A 300x300 road grid with 70% of segments built — about 90k
	// intersections, diameter in the hundreds, and (because the mesh is
	// incomplete) real dead ends, bridges, and cut intersections.
	g := fastbcc.GenerateSampledGrid(300, 300, 0.7, 42)
	fmt.Printf("road network: %d intersections, %d road segments\n",
		g.NumVertices(), g.NumEdges())

	t0 := time.Now()
	res := fastbcc.BCC(g, nil)
	fmt.Printf("FAST-BCC finished in %v (steps: cc=%v ett=%v tags=%v skel=%v)\n",
		time.Since(t0), res.Times.FirstCC, res.Times.Rooting,
		res.Times.Tagging, res.Times.LastCC)

	aps := res.ArticulationPoints()
	bridges := res.Bridges(g)
	fmt.Printf("blocks: %d, cut intersections: %d, bridge segments: %d\n",
		res.NumBCC, len(aps), len(bridges))

	// Rank intersections by the number of blocks they belong to: closing
	// one of these splits the network into that many pieces.
	blockCount := map[int32]int{}
	for _, h := range res.Head {
		if h != -1 {
			blockCount[h]++
		}
	}
	for v := range res.Label {
		if res.Parent[v] != -1 {
			blockCount[int32(v)]++
		}
	}
	type crit struct {
		v int32
		c int
	}
	var ranked []crit
	for _, v := range aps {
		ranked = append(ranked, crit{v, blockCount[v]})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].v < ranked[j].v
	})
	fmt.Println("most critical intersections (vertex: #blocks joined):")
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("  %6d: %d blocks\n", ranked[i].v, ranked[i].c)
	}

	// What fraction of the network survives any single-point failure? The
	// largest biconnected component answers that.
	counts := make([]int, res.NumLabels)
	for v, l := range res.Label {
		if res.Parent[v] != -1 {
			counts[l]++
		}
	}
	largest := 0
	for l, c := range counts {
		if res.Head[l] != -1 && c+1 > largest {
			largest = c + 1
		}
	}
	fmt.Printf("largest 2-connected core: %d intersections (%.1f%%)\n",
		largest, 100*float64(largest)/float64(g.NumVertices()))
}
