// Queries: build the connectivity-query index over a network and answer
// online reliability questions in O(1) per query.
//
// The decomposition (fastbcc.BCC) is the offline half; the Index is the
// online half: block-cut tree and bridge tree flattened with Euler-tour
// LCA, so "which routers are single points of failure between A and B"
// is a constant-time lookup rather than a graph traversal.
//
// Run with: go run ./examples/queries
package main

import (
	"fmt"

	fastbcc "repro"
)

func main() {
	// The data-center topology from examples/blockcut: three meshed pods
	// joined through aggregation routers 4 and 9, plus a stub host 14.
	//
	//   pod A (0-3 clique) --4-- pod B (5-8 clique) --9-- pod C (10-13 clique)
	//                                  |
	//                                 14 (stub host)
	var edges []fastbcc.Edge
	clique := func(vs ...int32) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, fastbcc.Edge{U: vs[i], W: vs[j]})
			}
		}
	}
	clique(0, 1, 2, 3)
	clique(5, 6, 7, 8)
	clique(10, 11, 12, 13)
	edges = append(edges,
		fastbcc.Edge{U: 3, W: 4}, fastbcc.Edge{U: 4, W: 5},
		fastbcc.Edge{U: 8, W: 9}, fastbcc.Edge{U: 9, W: 10},
		fastbcc.Edge{U: 7, W: 14},
	)
	g, err := fastbcc.NewGraphFromEdges(15, edges)
	if err != nil {
		panic(err)
	}

	res, idx := fastbcc.BuildIndex(g, nil)
	fmt.Printf("network: %d nodes, %d links, %d blocks, %d cut routers, %d bridge links\n",
		g.NumVertices(), g.NumEdges(), res.NumBCC, idx.NumCutVertices(), idx.NumBridges())

	// Which routers are single points of failure between two hosts?
	pairs := [][2]int32{{0, 2}, {0, 13}, {5, 14}}
	for _, p := range pairs {
		fmt.Printf("cut routers between %d and %d: %v\n",
			p[0], p[1], idx.CutsOnPath(p[0], p[1]))
	}

	// Would losing router 4 cut pod A off from pod C? And router 6?
	fmt.Printf("losing 4 disconnects 0 from 13: %v\n", idx.Separates(4, 0, 13))
	fmt.Printf("losing 6 disconnects 0 from 13: %v\n", idx.Separates(6, 0, 13))

	// Which links are unprotected (every 1<->12 route crosses them)?
	fmt.Printf("unprotected links between 1 and 12: %v\n", idx.BridgesOnPath(1, 12))

	// Single-link-failure safety: inside a pod yes, across pods no.
	fmt.Printf("0<->3 survives any single link failure: %v\n", idx.TwoEdgeConnected(0, 3))
	fmt.Printf("0<->13 survives any single link failure: %v\n", idx.TwoEdgeConnected(0, 13))
}
