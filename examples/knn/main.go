// KNN: biconnectivity of k-nearest-neighbor graphs as k grows.
//
// k-NN graphs are the paper's second large-diameter family (Sec. 6 builds
// GL2..GL20 from one point set with k = 2..20). Small k leaves the graph
// fragmented into many tiny blocks; growing k fuses them into one giant
// 2-connected component. This example reproduces that transition — the
// qualitative trend behind the GL rows of Tab. 2 — on one synthetic point
// set, reporting per-k block structure and FAST-BCC running times.
//
// Run with: go run ./examples/knn
package main

import (
	"fmt"
	"time"

	fastbcc "repro"
)

func main() {
	const n = 50000
	fmt.Printf("%6s %10s %10s %12s %12s %10s\n",
		"k", "edges", "#BCC", "|BCC1|%", "bridges", "time")
	for _, k := range []int{2, 5, 10, 15, 20} {
		g := fastbcc.GenerateKNN(n, k, 123) // same seed: same point set
		t0 := time.Now()
		res := fastbcc.BCC(g, nil)
		dt := time.Since(t0)

		counts := make([]int, res.NumLabels)
		for v, l := range res.Label {
			if res.Parent[v] != -1 {
				counts[l]++
			}
		}
		largest := 0
		for l, c := range counts {
			if res.Head[l] != -1 && c+1 > largest {
				largest = c + 1
			}
		}
		fmt.Printf("%6d %10d %10d %11.2f%% %12d %10v\n",
			k, g.NumEdges(), res.NumBCC,
			100*float64(largest)/float64(n), len(res.Bridges(g)), dt)
	}
}
