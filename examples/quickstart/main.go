// Quickstart: build a small graph, run FAST-BCC, and inspect the result.
//
// The graph is the running example shape of the paper: two cycles sharing
// an articulation point, plus a pendant bridge.
//
//	0 - 1        5 - 6
//	|   |  \   /  |   |
//	3 - 2 -- 4 -- 8 - 7      4 - 9 (bridge)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fastbcc "repro"
)

func main() {
	edges := []fastbcc.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 0}, // square
		{U: 1, W: 4}, {U: 2, W: 4}, // attach 4 to the square
		{U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 7}, {U: 7, W: 8}, {U: 8, W: 4}, // pentagon
		{U: 4, W: 9}, // pendant bridge
	}
	g, err := fastbcc.NewGraphFromEdges(10, edges)
	if err != nil {
		log.Fatal(err)
	}

	res := fastbcc.BCC(g, nil)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("biconnected components: %d\n", res.NumBCC)
	for i, block := range res.Blocks() {
		fmt.Printf("  block %d: %v\n", i, block)
	}
	fmt.Printf("articulation points: %v\n", res.ArticulationPoints())
	fmt.Printf("bridges: %v\n", res.Bridges(g))

	// The O(n) representation behind the scenes: a label per non-root
	// vertex plus a head per label (Sec. 3.4 of the paper).
	fmt.Printf("labels: %v\n", res.Label)
	fmt.Printf("heads:  %v\n", res.Head)

	// Cross-check with the sequential Hopcroft-Tarjan baseline.
	seq := fastbcc.BCCSeq(g)
	fmt.Printf("Hopcroft-Tarjan agrees: %v (%d blocks)\n",
		seq.NumBCC() == res.NumBCC, seq.NumBCC())
}
