// Blockcut: build the block-cut tree of a network and use it to answer
// reliability queries.
//
// The block-cut tree — one node per biconnected component, one per
// articulation point — is the structure behind the applications the paper
// cites (centrality decomposition, planarity testing, robustness analysis).
// Two vertices have a single-failure-safe connection iff they sit in the
// same block; otherwise every articulation point on the tree path between
// their blocks is a single point of failure.
//
// Run with: go run ./examples/blockcut
package main

import (
	"fmt"

	fastbcc "repro"
)

func main() {
	// A small "data-center" topology: three meshed pods joined through
	// aggregation routers, plus a stub host.
	//
	//   pod A (0-3 clique) --4-- pod B (5-8 clique) --9-- pod C (10-13 clique)
	//                                  |
	//                                 14 (stub host)
	var edges []fastbcc.Edge
	clique := func(vs ...int32) {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, fastbcc.Edge{U: vs[i], W: vs[j]})
			}
		}
	}
	clique(0, 1, 2, 3)
	clique(5, 6, 7, 8)
	clique(10, 11, 12, 13)
	edges = append(edges,
		fastbcc.Edge{U: 3, W: 4}, fastbcc.Edge{U: 4, W: 5}, // pod A — 4 — pod B
		fastbcc.Edge{U: 8, W: 9}, fastbcc.Edge{U: 9, W: 10}, // pod B — 9 — pod C
		fastbcc.Edge{U: 7, W: 14}, // stub host
	)
	g, err := fastbcc.NewGraphFromEdges(15, edges)
	if err != nil {
		panic(err)
	}

	res := fastbcc.BCC(g, nil)
	bct := res.BlockCutTree()
	fmt.Printf("network: %d nodes, %d links\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("blocks: %d, articulation routers: %v\n", bct.NumBlocks, bct.Cuts)
	fmt.Printf("block-cut tree is a forest: %v\n", bct.IsTree())

	for l := int32(0); int(l) < res.NumLabels; l++ {
		if blk := res.Block(l); blk != nil {
			fmt.Printf("  block %d: %v\n", bct.BlockOf[l], blk)
		}
	}

	// Reliability query: is the connection between two nodes immune to any
	// single failure elsewhere?
	pairs := [][2]int32{{0, 2}, {0, 14}, {5, 8}, {1, 12}}
	for _, p := range pairs {
		same := res.Label[p[0]] == res.Label[p[1]]
		// Articulation points also share a block with their neighbors via
		// the head relation; check block membership properly.
		safe := same || inSameBlock(res, p[0], p[1])
		fmt.Printf("  %d <-> %d single-failure-safe: %v\n", p[0], p[1], safe)
	}
}

// inSameBlock reports whether u and w belong to a common block, consulting
// the head relation for articulation points.
func inSameBlock(res *fastbcc.Result, u, w int32) bool {
	for l := int32(0); int(l) < res.NumLabels; l++ {
		blk := res.Block(l)
		hasU, hasW := false, false
		for _, v := range blk {
			if v == u {
				hasU = true
			}
			if v == w {
				hasW = true
			}
		}
		if hasU && hasW {
			return true
		}
	}
	return false
}
