package fastbcc

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// PhaseTimes is the per-phase breakdown of one build — the paper's four
// pipeline phases (First-CC, Rooting, Tagging, Last-CC) as recorded on
// every Result.
type PhaseTimes = core.StepTimes

// phaseNames are the metric label values for the four phases, in
// pipeline order.
var phaseNames = [4]string{"first_cc", "rooting", "tagging", "last_cc"}

// phaseDurations returns t's phases in pipeline order, parallel to
// phaseNames.
func phaseDurations(t PhaseTimes) [4]time.Duration {
	return [4]time.Duration{t.FirstCC, t.Rooting, t.Tagging, t.LastCC}
}

// Build outcomes as recorded in traces and the builds_total metric.
const (
	// BuildOK is a successful build that published a snapshot.
	BuildOK = "ok"
	// BuildError is a failed build: an engine error, injected fault, or
	// captured panic. The entry keeps serving its last-good snapshot.
	BuildError = "error"
	// BuildCanceled is a build abandoned by cancellation or deadline
	// (caller context or the Store's BuildTimeout).
	BuildCanceled = "canceled"
)

// buildOutcome classifies a finished build's error for traces and
// metrics.
func buildOutcome(err error) string {
	switch {
	case err == nil:
		return BuildOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return BuildCanceled
	}
	return BuildError
}

// BuildTrace is one build attempt's record in a graph's trace ring —
// what GET /v1/graphs/{name}/trace serves. Every attempt that reached
// the engine is recorded: published snapshots, failures, cancellations.
type BuildTrace struct {
	// Version is the snapshot version the build published (0 when the
	// build failed and published nothing).
	Version int64
	// Algorithm is the engine the build ran.
	Algorithm string
	// Outcome is BuildOK, BuildError, or BuildCanceled; Error carries the
	// failure message for the latter two.
	Outcome string
	Error   string
	// StartedAt and Duration bound the attempt's wall time.
	StartedAt time.Time
	Duration  time.Duration
	// Phases is the per-phase breakdown (zero for failed builds — a
	// failed pipeline leaves no trustworthy phase times).
	Phases PhaseTimes
}

// buildTraceCap is how many build attempts each graph's ring retains.
const buildTraceCap = 16

// traceRing is a fixed-size ring of the most recent build attempts of
// one catalog entry. Recording is mutex-guarded but off every query
// path: builds write it once per attempt, reads come from the status
// endpoints.
type traceRing struct {
	mu    sync.Mutex
	buf   [buildTraceCap]BuildTrace
	total uint64
}

func (r *traceRing) add(t BuildTrace) {
	r.mu.Lock()
	r.buf[r.total%buildTraceCap] = t
	r.total++
	r.mu.Unlock()
}

// list returns the retained attempts, newest first.
func (r *traceRing) list() []BuildTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > buildTraceCap {
		n = buildTraceCap
	}
	out := make([]BuildTrace, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(r.total-1-i)%buildTraceCap])
	}
	return out
}

// last returns the most recent attempt, if any.
func (r *traceRing) last() (BuildTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return BuildTrace{}, false
	}
	return r.buf[(r.total-1)%buildTraceCap], true
}

// runnerMetrics counts engine runs on a Runner. Attached by the owning
// Store (nil on a standalone Runner — the hot path guards on it).
type runnerMetrics struct {
	runs   *obs.Counter
	errs   *obs.Counter
	panics *obs.Counter
}

// storeMetrics is a Store's metric surface, registered into one
// obs.Registry (see Store.Metrics). The recording fields sit on paths
// with strict budgets: acquire counters are one sharded atomic add per
// serving hop, and the entire batch record is one single-cacheline
// bank flush per batch (see recordBatch) — never per-query atomics,
// which would dominate the ~35ns/query batch core.
type storeMetrics struct {
	reg *obs.Registry

	// Acquire discipline: epoch pins (Handle.Acquire) vs the CAS
	// refcount fallback (Store.Acquire). Store.QueryBatch's epoch pin
	// rides pinSlot of the batch bank instead of this counter — it
	// flushes with the per-op counts on one cacheline, so the pin costs
	// the batch no separate counter touch; the exposed epoch series
	// sums both.
	acquiresEpoch *obs.Counter
	acquiresCAS   *obs.Counter

	// Batch serving: one CounterBank carries the whole batch record —
	// slot pinSlot the epoch pin, slots 1..opEnd-1 the per-op query
	// volume (slot = QueryOp), slot batchSlot the call count — flushed
	// once per batch onto a single cacheline.
	batchQueries obs.CounterBank

	// Build pipeline: outcomes, sheds, durations, per-phase breakdown
	// (indexed parallel to phaseNames).
	buildsOK       *obs.Counter
	buildsError    *obs.Counter
	buildsCanceled *obs.Counter
	buildSheds     *obs.Counter
	buildDur       *obs.Histogram
	phaseDur       [4]*obs.Histogram

	// Mutation pipeline (see mutate.go): classified dispositions, the
	// coalesced-flush batch-size histogram, and the set of graph names
	// whose per-graph staleness gauges are registered (label sets are
	// fixed per series, so per-graph series register lazily on a graph's
	// first mutation).
	mutFast      *obs.Counter
	mutCollapse  *obs.Counter
	mutRebuild   *obs.Counter
	mutFlushSize *obs.Histogram

	// Durability (see durable.go): snapshot writes and WAL appends by
	// outcome, byte volume, journal prefix truncations, and restart
	// recovery totals. These sit off the query path entirely — WAL
	// counters cost one atomic add per mutation batch, snapshot counters
	// one per background persist.
	persistSnapOK    *obs.Counter
	persistSnapErr   *obs.Counter
	persistSnapBytes *obs.Counter
	walAppendOK      *obs.Counter
	walAppendErr     *obs.Counter
	walBytes         *obs.Counter
	walTruncs        *obs.Counter
	recovered        *obs.Counter
	replayed         *obs.Counter

	graphGaugeMu sync.Mutex
	graphGauges  map[string]bool

	runner runnerMetrics
}

// newStoreMetrics builds the store's registry: recorded series for the
// hot paths plus func-backed series reading the gauges the Store already
// maintains (no double accounting, and scrape cost stays on the
// scraper).
func newStoreMetrics(s *Store) *storeMetrics {
	reg := obs.NewRegistry()
	m := &storeMetrics{reg: reg}

	m.acquiresEpoch = &obs.Counter{}
	reg.CounterFunc("fastbcc_acquires_total",
		"Snapshot acquires by reader discipline.",
		func() int64 { return m.acquiresEpoch.Value() + m.batchQueries.Value(pinSlot) },
		"discipline", "epoch")
	m.acquiresCAS = reg.Counter("fastbcc_acquires_total",
		"Snapshot acquires by reader discipline.", "discipline", "refcount")

	reg.CounterFunc("fastbcc_batches_total",
		"QueryBatch calls served.",
		func() int64 { return s.batches.Load() + m.batchQueries.Value(batchSlot) })
	for op := OpConnected; op < opEnd; op++ {
		slot := int(op)
		reg.CounterFunc("fastbcc_batch_queries_total",
			"Scalar queries served through batches, by op.",
			func() int64 { return m.batchQueries.Value(slot) },
			"op", op.String())
	}

	m.buildsOK = reg.Counter("fastbcc_builds_total",
		"Finished builds by outcome.", "outcome", BuildOK)
	m.buildsError = reg.Counter("fastbcc_builds_total",
		"Finished builds by outcome.", "outcome", BuildError)
	m.buildsCanceled = reg.Counter("fastbcc_builds_total",
		"Finished builds by outcome.", "outcome", BuildCanceled)
	m.buildSheds = reg.Counter("fastbcc_build_sheds_total",
		"Builds shed by admission control (ErrSaturated).")
	reg.CounterFunc("fastbcc_build_failures_total",
		"Failed builds (errors, panics, cancellations, timeouts).", s.buildFails.Load)
	m.buildDur = reg.Histogram("fastbcc_build_duration_seconds",
		"Successful build duration (decomposition + index).")
	for i, name := range phaseNames {
		m.phaseDur[i] = reg.Histogram("fastbcc_build_phase_duration_seconds",
			"Successful build duration by pipeline phase.", "phase", name)
	}

	m.graphGauges = map[string]bool{}
	m.mutFast = reg.Counter("fastbcc_mutations_total",
		"Mutations by classified disposition (see Store.ApplyBatch).", "class", "fast")
	m.mutCollapse = reg.Counter("fastbcc_mutations_total",
		"Mutations by classified disposition (see Store.ApplyBatch).", "class", "collapse")
	m.mutRebuild = reg.Counter("fastbcc_mutations_total",
		"Mutations by classified disposition (see Store.ApplyBatch).", "class", "rebuild")
	m.mutFlushSize = reg.Histogram("fastbcc_mutation_flush_size",
		"Deltas drained per coalesced rebuild; recorded as one unit per "+
			"second, so _sum is the exact delta total and bucket bounds read "+
			"as sizes.")
	reg.GaugeFunc("fastbcc_pending_deltas",
		"Mutations accepted but not yet applied, summed over all graphs.",
		func() float64 {
			var n int
			s.mu.RLock()
			for _, en := range s.byName {
				p, _ := en.pendingDeltas()
				n += p
			}
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("fastbcc_delta_staleness_seconds",
		"Age of the oldest pending mutation delta across all graphs.",
		func() float64 {
			var oldest time.Duration
			s.mu.RLock()
			for _, en := range s.byName {
				if _, age := en.pendingDeltas(); age > oldest {
					oldest = age
				}
			}
			s.mu.RUnlock()
			return oldest.Seconds()
		})

	m.persistSnapOK = reg.Counter("fastbcc_persist_snapshots_total",
		"Snapshot files durably published, by outcome.", "outcome", "ok")
	m.persistSnapErr = reg.Counter("fastbcc_persist_snapshots_total",
		"Snapshot files durably published, by outcome.", "outcome", "error")
	m.persistSnapBytes = reg.Counter("fastbcc_persist_snapshot_bytes_total",
		"Bytes of snapshot files durably published.")
	m.walAppendOK = reg.Counter("fastbcc_persist_wal_appends_total",
		"Mutation journal appends, by outcome.", "outcome", "ok")
	m.walAppendErr = reg.Counter("fastbcc_persist_wal_appends_total",
		"Mutation journal appends, by outcome.", "outcome", "error")
	m.walBytes = reg.Counter("fastbcc_persist_wal_bytes_total",
		"Bytes appended to mutation journals.")
	m.walTruncs = reg.Counter("fastbcc_persist_wal_truncations_total",
		"Journal prefixes truncated after a snapshot durably covered them.")
	m.recovered = reg.Counter("fastbcc_persist_recovered_graphs_total",
		"Graphs restored from snapshot files by Store.Recover.")
	m.replayed = reg.Counter("fastbcc_persist_replayed_mutations_total",
		"Journal records replayed past their snapshot by Store.Recover.")
	reg.GaugeFunc("fastbcc_persist_degraded_graphs",
		"Graphs whose most recent persistence operation failed (serving "+
			"continues; durability is degraded until a retry succeeds).",
		func() float64 {
			degraded := 0
			s.mu.RLock()
			for _, en := range s.byName {
				if msg, _ := en.persistState(); msg != "" {
					degraded++
				}
			}
			s.mu.RUnlock()
			return float64(degraded)
		})

	m.runner.runs = reg.Counter("fastbcc_runs_total",
		"Engine runs started on the Store's Runner.")
	m.runner.errs = reg.Counter("fastbcc_run_errors_total",
		"Engine runs that returned an error (including panics and cancellations).")
	m.runner.panics = reg.Counter("fastbcc_run_panics_total",
		"Engine runs that panicked (captured as ErrBuildPanic).")

	reg.GaugeFunc("fastbcc_live_snapshots",
		"Snapshots with at least one outstanding reference.",
		func() float64 { return float64(s.live.Load()) })
	reg.GaugeFunc("fastbcc_retired_snapshots",
		"Superseded snapshots awaiting epoch reclamation (a scrape runs a reclaim scan first).",
		func() float64 {
			s.epochs.Reclaim()
			return float64(s.epochs.Retired())
		})
	reg.CounterFunc("fastbcc_reclaimed_snapshots_total",
		"Snapshots reclaimed by the epoch domain.", s.epochs.Reclaimed)
	reg.GaugeFunc("fastbcc_graphs",
		"Loaded graph names in the catalog.",
		func() float64 {
			s.mu.RLock()
			n := len(s.byName)
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("fastbcc_failing_graphs",
		"Entries whose most recent build failed (serving last-good, if any).",
		func() float64 {
			failing := 0
			s.mu.RLock()
			for _, en := range s.byName {
				if f, _, _ := en.failure(); f > 0 {
					failing++
				}
			}
			s.mu.RUnlock()
			return float64(failing)
		})
	reg.GaugeFunc("fastbcc_inflight_builds",
		"Builds currently executing on the Runner.",
		func() float64 { return float64(s.inFlight.Load()) })
	reg.GaugeFunc("fastbcc_faultpoints_armed",
		"Fault-injection points currently armed process-wide.",
		func() float64 { return float64(faultpoint.Armed()) })

	return m
}

// ensureGraphGauges registers name's per-graph staleness series —
// fastbcc_graph_pending_deltas{graph=...} and
// fastbcc_graph_delta_staleness_seconds{graph=...} — on the graph's
// first mutation. The registry's label sets are fixed per series, so
// these register lazily; the callbacks read through the catalog, so a
// removed graph's series reports zero rather than going stale.
func (m *storeMetrics) ensureGraphGauges(s *Store, name string) {
	m.graphGaugeMu.Lock()
	defer m.graphGaugeMu.Unlock()
	if m.graphGauges[name] {
		return
	}
	m.graphGauges[name] = true
	pending := func() (int, time.Duration) {
		s.mu.RLock()
		en := s.byName[name]
		s.mu.RUnlock()
		if en == nil {
			return 0, 0
		}
		return en.pendingDeltas()
	}
	m.reg.GaugeFunc("fastbcc_graph_pending_deltas",
		"Mutations accepted but not yet applied, per graph.",
		func() float64 { p, _ := pending(); return float64(p) },
		"graph", name)
	m.reg.GaugeFunc("fastbcc_graph_delta_staleness_seconds",
		"Age of the oldest pending mutation delta, per graph.",
		func() float64 { _, age := pending(); return age.Seconds() },
		"graph", name)
}

// recordBuild records one finished build attempt into the outcome
// counters and, for successes, the duration and phase histograms.
func (m *storeMetrics) recordBuild(err error, dur time.Duration, phases PhaseTimes) {
	switch buildOutcome(err) {
	case BuildOK:
		m.buildsOK.Inc()
		m.buildDur.Observe(dur)
		for i, d := range phaseDurations(phases) {
			m.phaseDur[i].Observe(d)
		}
	case BuildCanceled:
		m.buildsCanceled.Inc()
	default:
		m.buildsError.Inc()
	}
}

// Bank slots of batchQueries beyond the per-op slots 1..opEnd-1.
const (
	// pinSlot counts Store.QueryBatch's epoch pins (see Handle.acquire).
	pinSlot = 0
	// batchSlot counts QueryBatch calls; with metrics on it replaces the
	// store's plain batches stat counter on the batch path.
	batchSlot = 7
)

// opCounts is the stack-local tally a batch accumulates during
// execution: slot pinSlot carries the batch's own epoch pin (when it
// was taken through Store.QueryBatch), slots 1..opEnd-1 the per-op
// query counts, slot batchSlot the call itself. Sized to the bank so
// `op & 7` indexes without a bounds check.
type opCounts [obs.BankSlots]int64

// recordBatch flushes one successful batch into the counter bank. The
// per-op counts were accumulated inside the execution loop (one
// register add per query, overlapped with the query work — a separate
// counting pass over a 256-query batch costs more than the flush
// itself), so the entire batch record — call count, epoch pin, per-op
// volume — is one shard pick and up to eight adds on a single
// cacheline, and it replaces the two plain stat atomics the
// metrics-off path pays (see Snapshot.queryBatch). The store core
// deliberately carries no batch latency histogram: latency is recorded
// at the serving edge (bccd_http_request_duration_seconds), where a
// request costs tens of microseconds and two clock reads vanish; on
// the ~2.5µs store batch path those same two clock reads plus a
// histogram observation measured 5-7% of the whole batch — the
// difference between this instrumentation being free and it failing
// its overhead budget.
func (m *storeMetrics) recordBatch(cnt *opCounts) {
	m.batchQueries.Flush((*[obs.BankSlots]int64)(cnt))
}

// Metrics returns the Store's metric registry for exposition (nil when
// the Store was built with DisableMetrics). The registry covers the
// serving hot paths (acquire disciplines, batch latency and per-op
// volume), the build pipeline (outcomes, sheds, duration, the paper's
// four phases), and the reclamation domain (live/retired/reclaimed
// snapshots). Render it with internal/obs/promtext.
func (s *Store) Metrics() *obs.Registry {
	if s.metricsAll == nil {
		return nil
	}
	return s.metricsAll.reg
}

// SetMetricsEnabled resumes (true) or pauses (false) metric recording on
// a live Store — a run-time kill switch for the instrumentation's
// hot-path cost, and the mechanism cmd/bccbench -qbench uses to A/B that
// cost on one store instance (two separately built stores differ in
// memory layout by more than the ~100ns-per-batch delta being measured).
// While paused the registry keeps serving scrapes: the serving- and
// build-path recorders freeze at their last values, while func-backed
// series (catalog gauges, live and retired snapshots) and the Runner's
// engine-run counters stay live. On a DisableMetrics store there is
// nothing to resume and the call is a no-op. The flip is atomic; an
// operation in flight across it records wholly by the surface it saw at
// its start.
func (s *Store) SetMetricsEnabled(on bool) {
	if on && s.metricsAll != nil {
		s.metrics.Store(s.metricsAll)
	} else {
		s.metrics.Store(nil)
	}
}

// Trace returns the most recent build attempts of name, newest first —
// successes with their per-phase breakdown, failures with their error.
// At most the last 16 attempts are retained per graph.
func (s *Store) Trace(name string) ([]BuildTrace, error) {
	en, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return en.traces.list(), nil
}
