// Command bccd is the HTTP serving front end for the biconnectivity
// query subsystem: a fastbcc.Store of named graphs, each with a
// versioned decomposition + query-index snapshot, exposed as a JSON API.
//
// Usage:
//
//	bccd -addr :8080 -workers 8
//	bccd -graph road=road.bin -graph social=social.bin
//
// Endpoints (all JSON):
//
//	GET    /healthz                          liveness + catalog gauges + the
//	                                         registered algorithms with their
//	                                         capability flags
//	GET    /v1/graphs                        list loaded graphs
//	PUT    /v1/graphs/{name}                 load a graph: {"n":..,"edges":[[u,w],..]}
//	                                         or {"path":"file.bin"}; optional
//	                                         "algo" (a registered algorithm
//	                                         name; default "fast"), "seed",
//	                                         "threads", "local_search", "source"
//	GET    /v1/graphs/{name}                 snapshot stats (includes "algo")
//	POST   /v1/graphs/{name}/rebuild         recompute a new snapshot version;
//	                                         "algo" switches the engine, empty
//	                                         keeps the entry's current one
//	DELETE /v1/graphs/{name}                 drop the graph
//	GET    /v1/graphs/{name}/query/{op}?u=&v=[&x=][&list=1]
//	POST   /v1/graphs/{name}/query/batch     answer N queries in one request:
//	                                         {"queries":[{"op":"connected",
//	                                         "u":0,"v":6},...],"timeout_ms":50}
//	                                         or, with Content-Type
//	                                         application/x-fastbcc-batch, a
//	                                         binary frame (13 bytes/query,
//	                                         4 bytes/answer; see internal/wire)
//	POST   /v1/graphs/{name}/edges           mutate the graph in place:
//	                                         {"add":[[u,w],..],"del":[[u,w],..]}
//	                                         or, with Content-Type
//	                                         application/x-fastbcc-mutation, a
//	                                         binary "bcu1" frame (8 bytes/edge).
//	                                         Insertions are classified against
//	                                         the serving index and applied by
//	                                         the cheapest exact update; the
//	                                         rest queues for one coalesced
//	                                         rebuild ("queued"/"pending"/
//	                                         "delta_age_ms" in the response,
//	                                         pending_deltas/staleness_ms in
//	                                         the per-graph stats)
//	GET    /v1/graphs/{name}/trace           recent build attempts, newest
//	                                         first: version, outcome, error,
//	                                         duration, and the per-phase
//	                                         breakdown of each build
//	GET    /metrics                          Prometheus text exposition:
//	                                         request/query latency histograms,
//	                                         acquire disciplines, build
//	                                         outcomes and phase timings, epoch
//	                                         reclamation gauges (no external
//	                                         scrape library needed)
//
// Query ops: connected, biconnected, twoecc (2-edge-connected),
// separates (does removing x disconnect u from v), cuts (articulation
// points between u and v; list=1 enumerates them), bridges (bridges
// every u-v route crosses; list=1 enumerates them). A batch answers all
// its queries from one snapshot version under a single epoch
// reservation; the response encoding follows the request's Content-Type
// unless Accept names the other one.
//
// Every graph is served by the engine its snapshot was built with: the
// paper's FAST-BCC by default, or any registered baseline (seq, gbbs,
// sm14, tv, fast-opt) selected per load/rebuild with "algo". All engines
// produce the same decomposition, so query answers are engine-independent;
// the choice trades construction speed, memory, and determinism (see the
// README's "Choosing an algorithm").
//
// Rebuilds run on the store's bounded worker budget and swap snapshots
// atomically, so queries keep being served from the previous version
// while a new one is computed. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests finish, then the store is closed.
//
// # Mutations
//
// POST /v1/graphs/{name}/edges applies edge insertions and deletions
// without a rebuild where the decomposition permits: an insertion whose
// endpoints already share a biconnected and 2-edge-connected block
// changes no query answer and publishes a new snapshot in O(1)
// ("fast"); an insertion joining two blocks of one component collapses
// the block path between its endpoints ("collapsed", the
// Westbrook–Tarjan rule); everything else — deletions, component-joining
// or bridge-killing insertions — queues and is drained by ONE coalesced
// background rebuild per burst (-mutation-coalesce sets the gathering
// window). Queries always serve the last-good snapshot; the response and
// stats expose the staleness window (pending/delta_age_ms).
//
// # Fault tolerance
//
// Builds are bounded and isolated; queries are never shed. A load or
// rebuild that fails — an engine panic (captured and converted to an
// error), a timeout, a canceled request — leaves the graph serving its
// last-good snapshot and records per-entry failure state, visible in the
// per-graph stats (consecutive_failures, last_error) and in /healthz
// (ok:false + degraded:true while any graph's latest build failed, plus
// failing_graphs / build_failures / in_flight_builds gauges). Builds
// admitted beyond -max-builds wait up to -build-queue-wait for a slot,
// then are shed with 503 + Retry-After; -build-timeout caps every build
// (504 past the deadline), and a per-request "timeout_ms" can tighten it
// further. A client that disconnects mid-build cancels it, freeing its
// admission slot.
//
// # Durability
//
// With -data-dir set, the store persists every graph under
// <data-dir>/<graph>/ as a checksummed, memory-mappable snapshot plus a
// write-ahead journal for mutations: each acknowledged mutation is
// fsynced into the journal BEFORE the HTTP response, and a background
// persister rewrites the snapshot after every full build, truncating the
// journal prefix the snapshot now covers. On startup bccd recovers the
// directory before serving: each graph's last-good snapshot is mmapped
// back (no rebuild — startup is I/O-bound, not compute-bound) and the
// journal tail replays through the ordinary mutation queue, so the first
// query is answered from a stale-but-correct snapshot while one
// coalesced rebuild catches up. Section checksums are verified lazily in
// the background unless -verify-on-load forces eager validation; a
// corrupt snapshot fails only that graph's recovery, reported and
// skipped. Disk trouble never takes down serving: a failed persist or
// journal append degrades durability — surfaced in /healthz
// (degraded_graphs, persist_failures), per-graph stats
// (durability_degraded, last_persist_error), and the fastbcc_persist_*
// metric series — while queries and mutation acks proceed unchanged.
//
// # Observability
//
// GET /metrics exposes the whole serving stack in the Prometheus text
// format with no external dependency (internal/obs): per-endpoint
// request latency histograms and response counters, per-op scalar query
// latency, batch volume and byte counters by codec, acquire-discipline
// counters (epoch pins vs refcount CAS), build outcomes with per-phase
// duration histograms matching the paper's four pipeline phases, and
// epoch-domain live/retired/reclaimed snapshot gauges. Logs are leveled
// structured key=value lines on stderr (-log-level selects the floor;
// -slow-query-ms additionally logs batches over the threshold). The
// pprof surface is mounted under /debug/pprof/ only with -debug-pprof,
// the same explicit gating as -debug-faults.
//
// Flags:
//
//	-addr             listen address (default :8080)
//	-workers          worker budget shared by all rebuilds (0 = GOMAXPROCS)
//	-graph            preload a graph as name=path (repeatable)
//	-drain            graceful-shutdown drain timeout (default 10s)
//	-max-builds       max concurrent builds before shedding (default 16, 0 = unbounded)
//	-build-queue-wait how long a build may wait for a slot (default 1s)
//	-build-timeout    cap on every build, 0 = none
//	-mutation-coalesce how long a delta flush gathers queued mutations
//	                  before rebuilding (default 25ms; 0 = flush at once)
//	-data-dir         persist snapshots + mutation journals here and
//	                  recover them on startup (empty = in-memory only)
//	-verify-on-load   verify every section checksum during recovery
//	                  instead of lazily in the background
//	-log-level        log floor: debug, info, warn, or error (default info)
//	-slow-query-ms    warn-log batch requests slower than this (0 = off)
//	-faultpoints      arm fault-injection points at startup, e.g.
//	                  "build.error=error:after=1" (testing)
//	-debug-faults     mount /debug/faultpoints for arming faults over HTTP
//	                  (testing)
//	-debug-pprof      mount net/http/pprof under /debug/pprof/
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fastbcc "repro"
	"repro/internal/bccdhttp"
	"repro/internal/faultpoint"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker budget shared by all rebuilds (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	maxBuilds := flag.Int("max-builds", 16, "max concurrent builds before shedding (0 = unbounded)")
	queueWait := flag.Duration("build-queue-wait", time.Second, "how long a build may wait for an admission slot before 503")
	buildTimeout := flag.Duration("build-timeout", 0, "cap on every build; past it the build is canceled (0 = none)")
	mutationCoalesce := flag.Duration("mutation-coalesce", 25*time.Millisecond,
		"how long a delta flush gathers queued mutations before rebuilding (0 = flush at once)")
	dataDir := flag.String("data-dir", "", "persist snapshots and mutation journals here and recover them on startup (empty = in-memory only)")
	verifyOnLoad := flag.Bool("verify-on-load", false, "verify every snapshot section checksum during recovery instead of lazily in the background")
	logLevel := flag.String("log-level", "info", "log floor: debug, info, warn, or error")
	slowQueryMS := flag.Int("slow-query-ms", 0, "warn-log batch requests slower than this many milliseconds (0 = off)")
	faultSpec := flag.String("faultpoints", "", "arm fault-injection points at startup, e.g. \"build.error=error:after=1\" (testing)")
	debugFaults := flag.Bool("debug-faults", false, "mount /debug/faultpoints for arming faults over HTTP (testing)")
	debugPprof := flag.Bool("debug-pprof", false, "mount net/http/pprof under /debug/pprof/")
	var preload []string
	flag.Func("graph", "preload a graph as name=path (repeatable)", func(v string) error {
		preload = append(preload, v)
		return nil
	})
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bccd: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(msg string, fields ...any) {
		logger.Error(msg, fields...)
		os.Exit(1)
	}

	if *faultSpec != "" {
		if err := faultpoint.Set(*faultSpec); err != nil {
			fatal("bad -faultpoints", "spec", *faultSpec, "err", err)
		}
		logger.Info("fault points armed", "spec", *faultSpec)
	}

	store := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:             *workers,
		MaxConcurrentBuilds: *maxBuilds,
		BuildQueueWait:      *queueWait,
		BuildTimeout:        *buildTimeout,
		MutationCoalesce:    *mutationCoalesce,
		DataDir:             *dataDir,
		VerifyOnLoad:        *verifyOnLoad,
	})
	defer store.Close()
	if *dataDir != "" {
		rep, err := store.Recover(context.Background())
		if err != nil {
			fatal("recovering data dir", "dir", *dataDir, "err", err)
		}
		for _, g := range rep.Graphs {
			logger.Info("graph recovered", "graph", g.Name, "version", g.Version,
				"n", g.Vertices, "m", g.Edges, "replayed", g.Replayed,
				"snapshot_bytes", g.SnapshotBytes)
		}
		for _, f := range rep.Failures {
			logger.Error("graph recovery failed", "dir", f.Dir, "err", f.Error)
		}
		logger.Info("recovery done", "dir", *dataDir,
			"recovered", len(rep.Graphs), "failed", len(rep.Failures))
	}
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal("bad -graph: want name=path", "spec", spec)
		}
		g, err := fastbcc.LoadGraph(path)
		if err != nil {
			fatal("loading graph", "spec", spec, "err", err)
		}
		snap, err := store.Load(context.Background(), name, g, nil)
		if err != nil {
			fatal("building graph", "spec", spec, "err", err)
		}
		logger.Info("graph preloaded", "graph", name, "version", snap.Version,
			"n", g.NumVertices(), "m", g.NumEdges(),
			"blocks", snap.Result.NumBCC, "took", snap.BuildTime)
		snap.Release()
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: bccdhttp.NewHandler(store, bccdhttp.Config{
			DebugFaults: *debugFaults,
			DebugPprof:  *debugPprof,
			Logger:      logger,
			SlowQuery:   time.Duration(*slowQueryMS) * time.Millisecond,
		}),
		// Slow-client protection: a peer that dribbles its headers or
		// body cannot pin a connection forever. Write timeouts are left
		// off — load/rebuild responses legitimately take as long as the
		// build they wait for, which -build-timeout already bounds.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatal("server failed", "err", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fatal("shutdown", "err", err)
	}
	logger.Info("drained cleanly")
}
