// Command bccd is the HTTP serving front end for the biconnectivity
// query subsystem: a fastbcc.Store of named graphs, each with a
// versioned decomposition + query-index snapshot, exposed as a JSON API.
//
// Usage:
//
//	bccd -addr :8080 -workers 8
//	bccd -graph road=road.bin -graph social=social.bin
//
// Endpoints (all JSON):
//
//	GET    /healthz                          liveness + catalog gauges + the
//	                                         registered algorithms with their
//	                                         capability flags
//	GET    /v1/graphs                        list loaded graphs
//	PUT    /v1/graphs/{name}                 load a graph: {"n":..,"edges":[[u,w],..]}
//	                                         or {"path":"file.bin"}; optional
//	                                         "algo" (a registered algorithm
//	                                         name; default "fast"), "seed",
//	                                         "threads", "local_search", "source"
//	GET    /v1/graphs/{name}                 snapshot stats (includes "algo")
//	POST   /v1/graphs/{name}/rebuild         recompute a new snapshot version;
//	                                         "algo" switches the engine, empty
//	                                         keeps the entry's current one
//	DELETE /v1/graphs/{name}                 drop the graph
//	GET    /v1/graphs/{name}/query/{op}?u=&v=[&x=][&list=1]
//	POST   /v1/graphs/{name}/query/batch     answer N queries in one request:
//	                                         {"queries":[{"op":"connected",
//	                                         "u":0,"v":6},...],"timeout_ms":50}
//	                                         or, with Content-Type
//	                                         application/x-fastbcc-batch, a
//	                                         binary frame (13 bytes/query,
//	                                         4 bytes/answer; see internal/wire)
//
// Query ops: connected, biconnected, twoecc (2-edge-connected),
// separates (does removing x disconnect u from v), cuts (articulation
// points between u and v; list=1 enumerates them), bridges (bridges
// every u-v route crosses; list=1 enumerates them). A batch answers all
// its queries from one snapshot version under a single epoch
// reservation; the response encoding follows the request's Content-Type
// unless Accept names the other one.
//
// Every graph is served by the engine its snapshot was built with: the
// paper's FAST-BCC by default, or any registered baseline (seq, gbbs,
// sm14, tv, fast-opt) selected per load/rebuild with "algo". All engines
// produce the same decomposition, so query answers are engine-independent;
// the choice trades construction speed, memory, and determinism (see the
// README's "Choosing an algorithm").
//
// Rebuilds run on the store's bounded worker budget and swap snapshots
// atomically, so queries keep being served from the previous version
// while a new one is computed. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests finish, then the store is closed.
//
// # Fault tolerance
//
// Builds are bounded and isolated; queries are never shed. A load or
// rebuild that fails — an engine panic (captured and converted to an
// error), a timeout, a canceled request — leaves the graph serving its
// last-good snapshot and records per-entry failure state, visible in the
// per-graph stats (consecutive_failures, last_error) and in /healthz
// (ok:false + degraded:true while any graph's latest build failed, plus
// failing_graphs / build_failures / in_flight_builds gauges). Builds
// admitted beyond -max-builds wait up to -build-queue-wait for a slot,
// then are shed with 503 + Retry-After; -build-timeout caps every build
// (504 past the deadline), and a per-request "timeout_ms" can tighten it
// further. A client that disconnects mid-build cancels it, freeing its
// admission slot.
//
// Flags:
//
//	-addr             listen address (default :8080)
//	-workers          worker budget shared by all rebuilds (0 = GOMAXPROCS)
//	-graph            preload a graph as name=path (repeatable)
//	-drain            graceful-shutdown drain timeout (default 10s)
//	-max-builds       max concurrent builds before shedding (default 16, 0 = unbounded)
//	-build-queue-wait how long a build may wait for a slot (default 1s)
//	-build-timeout    cap on every build, 0 = none
//	-faultpoints      arm fault-injection points at startup, e.g.
//	                  "build.error=error:after=1" (testing)
//	-debug-faults     mount /debug/faultpoints for arming faults over HTTP
//	                  (testing)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	fastbcc "repro"
	"repro/internal/bccdhttp"
	"repro/internal/faultpoint"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker budget shared by all rebuilds (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	maxBuilds := flag.Int("max-builds", 16, "max concurrent builds before shedding (0 = unbounded)")
	queueWait := flag.Duration("build-queue-wait", time.Second, "how long a build may wait for an admission slot before 503")
	buildTimeout := flag.Duration("build-timeout", 0, "cap on every build; past it the build is canceled (0 = none)")
	faultSpec := flag.String("faultpoints", "", "arm fault-injection points at startup, e.g. \"build.error=error:after=1\" (testing)")
	debugFaults := flag.Bool("debug-faults", false, "mount /debug/faultpoints for arming faults over HTTP (testing)")
	var preload []string
	flag.Func("graph", "preload a graph as name=path (repeatable)", func(v string) error {
		preload = append(preload, v)
		return nil
	})
	flag.Parse()

	if *faultSpec != "" {
		if err := faultpoint.Set(*faultSpec); err != nil {
			log.Fatalf("bccd: -faultpoints: %v", err)
		}
		log.Printf("bccd: fault points armed: %s", *faultSpec)
	}

	store := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:             *workers,
		MaxConcurrentBuilds: *maxBuilds,
		BuildQueueWait:      *queueWait,
		BuildTimeout:        *buildTimeout,
	})
	defer store.Close()
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bccd: -graph %q: want name=path", spec)
		}
		g, err := fastbcc.LoadGraph(path)
		if err != nil {
			log.Fatalf("bccd: load %s: %v", spec, err)
		}
		snap, err := store.Load(context.Background(), name, g, nil)
		if err != nil {
			log.Fatalf("bccd: load %s: %v", spec, err)
		}
		log.Printf("bccd: loaded %q v%d: n=%d m=%d blocks=%d (%.1fms)",
			name, snap.Version, g.NumVertices(), g.NumEdges(),
			snap.Result.NumBCC, float64(snap.BuildTime.Microseconds())/1000)
		snap.Release()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: bccdhttp.NewHandler(store, *debugFaults),
		// Slow-client protection: a peer that dribbles its headers or
		// body cannot pin a connection forever. Write timeouts are left
		// off — load/rebuild responses legitimately take as long as the
		// build they wait for, which -build-timeout already bounds.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("bccd: serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatalf("bccd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("bccd: shutting down (drain %s)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "bccd: shutdown: %v\n", err)
		os.Exit(1)
	}
	log.Printf("bccd: drained cleanly")
}
