// Command bccbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bccbench -exp tab2            # Table 2: all algorithms on the 27-graph suite
//	bccbench -exp fig1            # Figure 1: speedup heatmap over SEQ
//	bccbench -exp fig4            # Figure 4: scalability curves
//	bccbench -exp fig5            # Figure 5: per-step breakdown Ours vs GBBS
//	bccbench -exp fig6            # Figure 6: Orig vs Opt connectivity ablation
//	bccbench -exp fig7            # Figure 7: relative space usage
//	bccbench -exp tab3            # Table 3: Tarjan–Vishkin running times
//	bccbench -exp all             # everything
//	bccbench -exp tab2 -scale medium -reps 3
//	bccbench -exp tab2 -graphs SQR,REC,Chn7
//	bccbench -micro BENCH_N.json       # hot-path micro-benchmarks -> JSON report
//	bccbench -micro BENCH_N.json -algo fast,seq   # engine matrix subset
//	bccbench -qbench -scale small      # serving-path query throughput: store +
//	                                   # HTTP, scalar + batch (JSON and binary),
//	                                   # under concurrent rebuild churn
//	bccbench -qbench -qbatch 512 -micro BENCH_N.json  # record qbench in the report
//	bccbench -exp tab2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "tab2", "experiment: tab2|fig1|fig4|fig5|fig6|fig7|tab3|all")
	scale := flag.String("scale", "small", "instance scale: small|medium|large")
	reps := flag.Int("reps", 1, "repetitions per measurement (median reported)")
	graphs := flag.String("graphs", "", "comma-separated subset of instance names (default: all 27)")
	quiet := flag.Bool("q", false, "suppress progress output")
	micro := flag.String("micro", "", "run the hot-path micro-benchmarks and write a BENCH_*.json report to this path")
	algo := flag.String("algo", "", "comma-separated engine subset for the -micro engine matrix (default: every registered engine)")
	qbench := flag.Bool("qbench", false, "measure online query throughput through the serving stack (store + HTTP, scalar + batch); combine with -micro to record it in the JSON report")
	qbatch := flag.Int("qbatch", 256, "queries per batch request in -qbench")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file (go tool pprof)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			}
		}()
	}

	if *qbench && *micro == "" {
		bench.RunQueryThroughput(bench.ParseScale(*scale), *qbatch, os.Stdout)
		return
	}

	if *micro != "" {
		var engines []string
		if *algo != "" {
			for _, name := range strings.Split(*algo, ",") {
				engines = append(engines, strings.TrimSpace(name))
			}
		}
		rep, err := bench.RunMicro(engines)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(2)
		}
		if *qbench {
			rep.QBench = bench.RunQueryThroughput(bench.ParseScale(*scale), *qbatch, os.Stderr)
		}
		if err := rep.WriteJSON(*micro); err != nil {
			fmt.Fprintf(os.Stderr, "bccbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", *micro)
		return
	}

	sc := bench.ParseScale(*scale)
	progress := os.Stderr
	if *quiet {
		progress = nil
	}

	var rows []bench.Row
	needRows := map[string]bool{"tab2": true, "fig1": true, "fig5": true, "fig6": true, "fig7": true, "tab3": true, "all": true}
	if needRows[*exp] {
		rows = collectRows(sc, *reps, *graphs, progress)
	}

	switch *exp {
	case "tab2":
		bench.RenderTable2(os.Stdout, rows)
	case "fig1":
		bench.RenderFig1(os.Stdout, rows)
	case "fig4":
		runFig4(sc, progress)
	case "fig5":
		bench.RenderFig5(os.Stdout, rows)
	case "fig6":
		bench.RenderFig6(os.Stdout, rows)
	case "fig7":
		bench.RenderFig7(os.Stdout, rows)
	case "tab3":
		bench.RenderTable3(os.Stdout, rows)
	case "all":
		fmt.Println("== Table 2 ==")
		bench.RenderTable2(os.Stdout, rows)
		fmt.Println("\n== Figure 1 ==")
		bench.RenderFig1(os.Stdout, rows)
		fmt.Println("\n== Figure 4 ==")
		runFig4(sc, progress)
		fmt.Println("\n== Figure 5 ==")
		bench.RenderFig5(os.Stdout, rows)
		fmt.Println("\n== Figure 6 ==")
		bench.RenderFig6(os.Stdout, rows)
		fmt.Println("\n== Figure 7 ==")
		bench.RenderFig7(os.Stdout, rows)
		fmt.Println("\n== Table 3 ==")
		bench.RenderTable3(os.Stdout, rows)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func collectRows(sc bench.Scale, reps int, subset string, progress *os.File) []bench.Row {
	wanted := map[string]bool{}
	if subset != "" {
		for _, name := range strings.Split(subset, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
	}
	var rows []bench.Row
	for _, ins := range bench.Suite() {
		if subset != "" && !wanted[ins.Name] {
			continue
		}
		g := ins.Build(sc)
		if progress != nil {
			fmt.Fprintf(progress, "# %s: n=%d m=%d\n", ins.Name, g.NumVertices(), g.NumEdges())
		}
		rows = append(rows, bench.RunRow(ins, g, reps))
	}
	return rows
}

func runFig4(sc bench.Scale, progress *os.File) {
	max := runtime.GOMAXPROCS(0)
	threads := []int{1}
	for p := 2; p < max; p *= 2 {
		threads = append(threads, p)
	}
	if max > 1 {
		threads = append(threads, max)
	}
	pts := bench.RunFig4(sc, threads, progress)
	bench.RenderFig4(os.Stdout, pts)
}
