package main

import (
	"testing"
)

func TestCollectRowsSubset(t *testing.T) {
	rows := collectRows(0 /* Small */, 1, "SQR,Chn7", nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.OursPar <= 0 || r.Seq <= 0 {
			t.Fatalf("%s: missing timings", r.Name)
		}
	}
	if !names["SQR"] || !names["Chn7"] {
		t.Fatalf("wrong subset: %v", names)
	}
}

func TestCollectRowsUnknownNameIgnored(t *testing.T) {
	rows := collectRows(0, 1, "DOES-NOT-EXIST", nil)
	if len(rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rows))
	}
}
