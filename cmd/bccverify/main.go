// Command bccverify runs every BCC implementation in the repository on the
// same graph and cross-checks the decompositions, as the paper does with
// #BCC ("We compare the number of BCCs reported by each algorithm with SEQ
// to verify correctness", Sec. 6) — but stronger: the full vertex-set block
// decomposition must match.
//
// Usage:
//
//	bccverify -gen SQR -scale small
//	bccverify -in graph.bin
//	bccverify -random 500 -edges 1200 -trials 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/bfsbcc"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prim"
	"repro/internal/seqbcc"
	"repro/internal/smbcc"
	"repro/internal/tv"
)

func main() {
	in := flag.String("in", "", "input graph file (binary)")
	genName := flag.String("gen", "", "suite instance name")
	scale := flag.String("scale", "small", "scale for -gen")
	random := flag.Int("random", 0, "verify on random graphs with this many vertices")
	edges := flag.Int("edges", 0, "edges for -random (default 2n)")
	trials := flag.Int("trials", 10, "number of random trials")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	switch {
	case *random > 0:
		m := *edges
		if m == 0 {
			m = 2 * *random
		}
		rng := prim.NewRNG(*seed)
		for trial := 0; trial < *trials; trial++ {
			g := gen.ER(*random, m, rng.Next())
			if !verify(g, fmt.Sprintf("random trial %d", trial)) {
				os.Exit(1)
			}
		}
		fmt.Printf("OK: %d random graphs (n=%d, m≈%d) verified across all algorithms\n",
			*trials, *random, m)
	case *genName != "":
		ins, ok := bench.ByName(*genName)
		if !ok {
			fmt.Fprintf(os.Stderr, "bccverify: unknown instance %q\n", *genName)
			os.Exit(2)
		}
		g := ins.Build(bench.ParseScale(*scale))
		if !verify(g, *genName) {
			os.Exit(1)
		}
		fmt.Printf("OK: %s verified across all algorithms\n", *genName)
	case *in != "":
		g, err := graph.LoadFile(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bccverify:", err)
			os.Exit(1)
		}
		if !verify(g, *in) {
			os.Exit(1)
		}
		fmt.Printf("OK: %s verified across all algorithms\n", *in)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// verify cross-checks all implementations on g; returns false on mismatch.
func verify(g *graph.Graph, what string) bool {
	ref := seqbcc.BCC(g)
	refBlocks := ref.Blocks
	fmt.Printf("%s: n=%d m=%d #BCC=%d\n", what, g.NumVertices(), g.NumEdges(), ref.NumBCC())

	fail := func(alg string, blocks [][]int32) bool {
		if check.Equal(blocks, refBlocks) {
			fmt.Printf("  %-10s agrees (%d blocks)\n", alg, len(blocks))
			return false
		}
		fmt.Printf("  %-10s MISMATCH:\n    got:  %s\n    want: %s\n",
			alg, check.Describe(blocks), check.Describe(refBlocks))
		return true
	}

	bad := false
	bad = fail("FAST-BCC", core.BCC(g, core.Options{Seed: 7}).Blocks()) || bad
	bad = fail("FAST-opt", core.BCC(g, core.Options{Seed: 8, LocalSearch: true}).Blocks()) || bad
	bad = fail("GBBS", bfsbcc.BCC(g, bfsbcc.Options{Seed: 7}).Blocks()) || bad
	bad = fail("TV", tv.BCC(g, tv.Options{Seed: 7}).Blocks()) || bad
	if sm, err := smbcc.BCC(g, smbcc.Options{}); err == nil {
		bad = fail("SM14", sm.Blocks()) || bad
	} else {
		fmt.Printf("  %-10s skipped (%v)\n", "SM14", err)
	}
	// Independent recursive oracle on small inputs only (O(n) recursion).
	if g.NumVertices() <= 100000 {
		bad = fail("oracle", check.NaiveBCC(g)) || bad
	}
	return !bad
}
