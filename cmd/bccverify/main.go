// Command bccverify runs every registered BCC engine on the same graph
// and cross-checks the decompositions against the sequential
// Hopcroft–Tarjan oracle, as the paper does with #BCC ("We compare the
// number of BCCs reported by each algorithm with SEQ to verify
// correctness", Sec. 6) — but stronger: the full vertex-set block
// decomposition must match. The engine list comes from the algorithm
// registry, so a newly registered engine is verified with no change here.
//
// Usage:
//
//	bccverify -gen SQR -scale small
//	bccverify -in graph.bin
//	bccverify -random 500 -edges 1200 -trials 20
//	bccverify -gen SQR -algo gbbs,tv     # verify a subset of engines
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	fastbcc "repro"
	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/prim"
	"repro/internal/seqbcc"
)

func main() {
	in := flag.String("in", "", "input graph file (binary)")
	genName := flag.String("gen", "", "suite instance name")
	scale := flag.String("scale", "small", "scale for -gen")
	random := flag.Int("random", 0, "verify on random graphs with this many vertices")
	edges := flag.Int("edges", 0, "edges for -random (default 2n)")
	trials := flag.Int("trials", 10, "number of random trials")
	seed := flag.Uint64("seed", 1, "random seed")
	algos := flag.String("algo", "", "comma-separated engine subset (default: every registered engine)")
	flag.Parse()

	names, err := selectAlgos(*algos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bccverify:", err)
		os.Exit(2)
	}

	switch {
	case *random > 0:
		m := *edges
		if m == 0 {
			m = 2 * *random
		}
		rng := prim.NewRNG(*seed)
		for trial := 0; trial < *trials; trial++ {
			g := gen.ER(*random, m, rng.Next())
			if !verify(g, fmt.Sprintf("random trial %d", trial), names) {
				os.Exit(1)
			}
		}
		fmt.Printf("OK: %d random graphs (n=%d, m≈%d) verified across all engines\n",
			*trials, *random, m)
	case *genName != "":
		ins, ok := bench.ByName(*genName)
		if !ok {
			fmt.Fprintf(os.Stderr, "bccverify: unknown instance %q\n", *genName)
			os.Exit(2)
		}
		g := ins.Build(bench.ParseScale(*scale))
		if !verify(g, *genName, names) {
			os.Exit(1)
		}
		fmt.Printf("OK: %s verified across all engines\n", *genName)
	case *in != "":
		g, err := graph.LoadFile(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bccverify:", err)
			os.Exit(1)
		}
		if !verify(g, *in, names) {
			os.Exit(1)
		}
		fmt.Printf("OK: %s verified across all engines\n", *in)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// selectAlgos resolves the -algo subset against the registry (empty =
// all registered engines).
func selectAlgos(spec string) ([]string, error) {
	if spec == "" {
		return engine.Names(), nil
	}
	var names []string
	for _, name := range strings.Split(spec, ",") {
		a, err := engine.Get(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		names = append(names, a.Name())
	}
	return names, nil
}

// verify cross-checks the selected engines on g against the seqbcc
// oracle (and, on small inputs, an independent recursive oracle);
// returns false on mismatch.
func verify(g *graph.Graph, what string, names []string) bool {
	ref := seqbcc.BCC(g)
	refBlocks := ref.Blocks
	fmt.Printf("%s: n=%d m=%d #BCC=%d\n", what, g.NumVertices(), g.NumEdges(), ref.NumBCC())

	fail := func(alg string, blocks [][]int32) bool {
		if check.Equal(blocks, refBlocks) {
			fmt.Printf("  %-10s agrees (%d blocks)\n", alg, len(blocks))
			return false
		}
		fmt.Printf("  %-10s MISMATCH:\n    got:  %s\n    want: %s\n",
			alg, check.Describe(blocks), check.Describe(refBlocks))
		return true
	}

	bad := false
	for _, name := range names {
		res := fastbcc.BCC(g, &fastbcc.Options{Algorithm: name, Seed: 7})
		bad = fail(name, res.Blocks()) || bad
	}
	// Independent recursive oracle on small inputs only (O(n) recursion).
	if g.NumVertices() <= 100000 {
		bad = fail("oracle", check.NaiveBCC(g)) || bad
	}
	return !bad
}
