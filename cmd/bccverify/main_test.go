package main

import (
	"testing"

	"repro/internal/gen"
)

func TestVerifyAgreesOnStructuredGraphs(t *testing.T) {
	all, err := selectAlgos("")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() bool{
		"cycle":       func() bool { return verify(gen.Cycle(50), "cycle", all) },
		"chain":       func() bool { return verify(gen.Chain(40), "chain", all) },
		"cliquechain": func() bool { return verify(gen.CliqueChain(3, 4), "cliquechain", all) },
		"disjoint":    func() bool { return verify(gen.Disjoint(gen.Cycle(6), gen.Star(5)), "disjoint", all) },
		"rmat":        func() bool { return verify(gen.RMAT(8, 4, 1), "rmat", all) },
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			if !run() {
				t.Fatal("verification failed")
			}
		})
	}
}
