package main

import (
	"testing"

	"repro/internal/gen"
)

func TestVerifyAgreesOnStructuredGraphs(t *testing.T) {
	cases := map[string]func() bool{
		"cycle":       func() bool { return verify(gen.Cycle(50), "cycle") },
		"chain":       func() bool { return verify(gen.Chain(40), "chain") },
		"cliquechain": func() bool { return verify(gen.CliqueChain(3, 4), "cliquechain") },
		"disjoint":    func() bool { return verify(gen.Disjoint(gen.Cycle(6), gen.Star(5)), "disjoint") },
		"rmat":        func() bool { return verify(gen.RMAT(8, 4, 1), "rmat") },
	}
	for name, run := range cases {
		t.Run(name, func(t *testing.T) {
			if !run() {
				t.Fatal("verification failed")
			}
		})
	}
}
