package main

import (
	"os"
	"testing"

	"repro/internal/gen"
)

func TestLoadGen(t *testing.T) {
	g, err := load("", "bin", "Chn7", "small")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestLoadGenUnknown(t *testing.T) {
	if _, err := load("", "bin", "NOPE", "small"); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestLoadBinaryFile(t *testing.T) {
	path := t.TempDir() + "/g.bin"
	g := gen.Cycle(10)
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := load(path, "bin", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 10 {
		t.Fatalf("m = %d", got.NumEdges())
	}
}

func TestLoadEdgeListFile(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	if err := os.WriteFile(path, []byte("3 2\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := load(path, "edges", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestLoadNothing(t *testing.T) {
	if _, err := load("", "bin", "", ""); err == nil {
		t.Fatal("empty input accepted")
	}
}
