// Command bcc computes the biconnected components of a graph and prints a
// summary: block count, articulation points, bridges, per-step times.
//
// Usage:
//
//	bcc -in graph.bin                  # binary file written by bccgen
//	bcc -in graph.txt -format edges    # "n m" header + "u w" lines
//	bcc -gen SQR -scale small          # a suite instance by name
//	bcc -in graph.bin -algo seq        # any registered engine (-algo list)
//	bcc -in graph.bin -blocks          # also list the blocks (small graphs)
package main

import (
	"flag"
	"fmt"
	"os"

	fastbcc "repro"
	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/graph"
)

func main() {
	in := flag.String("in", "", "input graph file")
	format := flag.String("format", "bin", "input format: bin|edges")
	genName := flag.String("gen", "", "generate a suite instance by name (e.g. SQR, Chn7)")
	scale := flag.String("scale", "small", "scale for -gen: small|medium|large")
	algo := flag.String("algo", "", "algorithm (registry name, default fast; 'list' prints the choices)")
	alg := flag.String("alg", "", "deprecated alias for -algo (ignored when -algo is set)")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	localSearch := flag.Bool("opt", false, "enable hash-bag/local-search connectivity")
	blocks := flag.Bool("blocks", false, "print the blocks (use on small graphs)")
	reorder := flag.Bool("reorder", false, "relabel so each connected component is a contiguous CSR range before decomposing (locality optimization; printed vertex ids are then the reordered ones)")
	flag.Parse()

	name := *algo
	if name == "" && *alg != "" {
		fmt.Fprintln(os.Stderr, "bcc: -alg is deprecated, use -algo")
		name = *alg
	}
	if name == "list" {
		for _, a := range fastbcc.Algorithms() {
			fmt.Printf("%-10s connected-only=%v sequential=%v deterministic=%v\n",
				a.Name, a.ConnectedOnly, a.Sequential, a.Deterministic)
		}
		return
	}
	a, err := engine.Get(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bcc: %v (try -algo list)\n", err)
		os.Exit(2)
	}
	name = a.Name()

	g, err := load(*in, *format, *genName, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcc:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	if *reorder {
		g, _ = fastbcc.ReorderByComponent(g, *threads)
		fmt.Println("reordered: connected components are contiguous id ranges")
	}

	res := fastbcc.BCC(g, &fastbcc.Options{
		Algorithm:   name,
		Threads:     *threads,
		LocalSearch: *localSearch,
	})
	fmt.Printf("algorithm: %s\n", name)
	fmt.Printf("#BCC: %d\n", res.NumBCC)
	fmt.Printf("articulation points: %d\n", len(res.ArticulationPoints()))
	fmt.Printf("bridges: %d\n", len(res.Bridges(g)))
	t := res.Times
	fmt.Printf("steps: first-cc=%v rooting=%v tagging=%v last-cc=%v total=%v\n",
		t.FirstCC, t.Rooting, t.Tagging, t.LastCC, t.Total())
	fmt.Printf("aux space estimate: %.1f MB\n", float64(res.AuxBytes)/(1<<20))
	if *blocks {
		for i, b := range res.Blocks() {
			fmt.Printf("block %d: %v\n", i, b)
		}
	}
}

func load(in, format, genName, scale string) (*graph.Graph, error) {
	switch {
	case genName != "":
		ins, ok := bench.ByName(genName)
		if !ok {
			return nil, fmt.Errorf("unknown suite instance %q", genName)
		}
		return ins.Build(bench.ParseScale(scale)), nil
	case in != "":
		if format == "edges" {
			f, err := os.Open(in)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ReadEdgeList(f)
		}
		return graph.LoadFile(in)
	default:
		return nil, fmt.Errorf("need -in or -gen")
	}
}
