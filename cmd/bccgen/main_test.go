package main

import "testing"

func TestBuildSuiteInstance(t *testing.T) {
	g, err := build("SQR", "small", "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 80*80 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestBuildUnknownInstance(t *testing.T) {
	if _, err := build("NOPE", "small", "", 0, 0, 1); err == nil {
		t.Fatal("unknown instance accepted")
	}
}

func TestBuildCustomKinds(t *testing.T) {
	cases := []struct {
		kind    string
		n, p    int
		wantN   int
		wantErr bool
	}{
		{"rmat", 8, 4, 256, false},
		{"grid", 10, 12, 120, false},
		{"chain", 50, 0, 50, false},
		{"knn", 200, 3, 200, false},
		{"er", 100, 150, 100, false},
		{"road", 10, 10, 100, false},
		{"bogus", 1, 1, 0, true},
		{"", 1, 1, 0, true},
	}
	for _, tc := range cases {
		g, err := build("", "", tc.kind, tc.n, tc.p, 1)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("kind %q accepted", tc.kind)
			}
			continue
		}
		if err != nil {
			t.Fatalf("kind %q: %v", tc.kind, err)
		}
		if g.NumVertices() != tc.wantN {
			t.Fatalf("kind %q: n = %d, want %d", tc.kind, g.NumVertices(), tc.wantN)
		}
	}
}
