// Command bccgen generates benchmark graphs and writes them to disk in the
// repository's binary CSR format (readable by cmd/bcc and fastbcc.LoadGraph).
//
// Usage:
//
//	bccgen -name SQR -scale medium -out sqr.bin     # a suite instance
//	bccgen -kind rmat -n 16 -param 8 -out rmat.bin  # custom RMAT 2^16, ef=8
//	bccgen -kind grid -n 500 -param 500 -out g.bin  # 500x500 circular grid
//	bccgen -kind chain -n 1000000 -out chain.bin
//	bccgen -kind knn -n 100000 -param 5 -out knn.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	name := flag.String("name", "", "suite instance name (YT..Chn8)")
	scale := flag.String("scale", "small", "scale for -name")
	kind := flag.String("kind", "", "custom generator: rmat|grid|chain|knn|er|road")
	n := flag.Int("n", 1000, "size parameter (rmat: log2 n; grid/road: rows; others: n)")
	param := flag.Int("param", 5, "secondary parameter (rmat: edge factor; grid/road: cols; knn: k; er: m)")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (required)")
	text := flag.Bool("text", false, "write text edge list instead of binary")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "bccgen: -out is required")
		os.Exit(2)
	}
	g, err := build(*name, *scale, *kind, *n, *param, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bccgen:", err)
		os.Exit(1)
	}
	fmt.Printf("generated: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	if *text {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bccgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			fmt.Fprintln(os.Stderr, "bccgen:", err)
			os.Exit(1)
		}
	} else if err := g.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "bccgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

func build(name, scale, kind string, n, param int, seed uint64) (*graph.Graph, error) {
	if name != "" {
		ins, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown suite instance %q", name)
		}
		return ins.Build(bench.ParseScale(scale)), nil
	}
	switch kind {
	case "rmat":
		return gen.RMAT(n, param, seed), nil
	case "grid":
		return gen.Grid2D(n, param, true), nil
	case "chain":
		return gen.Chain(n), nil
	case "knn":
		return gen.KNN(n, param, seed), nil
	case "er":
		return gen.ER(n, param, seed), nil
	case "road":
		return gen.RoadLike(n, param, 0.1, seed), nil
	default:
		return nil, fmt.Errorf("need -name or a valid -kind (got %q)", kind)
	}
}
