package fastbcc_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fastbcc "repro"
)

// TestStoreEpochReclamationStress is the serving-stack half of the epoch
// reclamation stress suite (the domain-level half lives in
// internal/epoch): reader goroutines run batched queries through their
// own epoch Handles while a writer continuously rebuilds the graph,
// retiring a snapshot per rebuild. Run with -race in CI.
//
// It asserts the three properties the refactor must preserve:
//   - no snapshot is reclaimed while a pinned reader is inside it
//     (answers stay correct — a freed index would misanswer or fault,
//     and the race detector would flag the reclaim itself);
//   - batches never mix versions (each batch reports one version);
//   - retired snapshots are eventually reclaimed: after the churn stops
//     and readers quiesce, the live-snapshot gauge returns to steady
//     state and the retired gauge drains to zero.
func TestStoreEpochReclamationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuild churn stress")
	}
	st := fastbcc.NewStore(0)
	defer st.Close()
	g := fastbcc.GenerateRMAT(10, 8, 0x5EED)
	ctx := context.Background()
	snap, err := st.Load(ctx, "churn", g, &fastbcc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	// The answers are a function of the graph alone — every rebuild of
	// the same graph must produce them bit-for-bit, so readers can
	// assert exact equality across versions.
	qs := make([]fastbcc.Query, 512)
	n := int32(g.NumVertices())
	for i := range qs {
		qs[i] = fastbcc.Query{
			Op: fastbcc.OpConnected + fastbcc.QueryOp(i%6),
			U:  int32(i*31) % n,
			V:  int32(i*17+5) % n,
			X:  int32(i*13+9) % n,
		}
	}
	want, _, err := st.QueryBatch(ctx, nil, "churn", qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want = append([]fastbcc.Answer(nil), want...)

	const readers = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	var batches atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := st.NewHandle()
			defer h.Close()
			dst := make([]fastbcc.Answer, 0, len(qs))
			var lastVersion int64
			for !stop.Load() {
				out, version, err := st.QueryBatch(ctx, h, "churn", qs, dst)
				if err != nil {
					t.Errorf("batch under churn: %v", err)
					return
				}
				if version < lastVersion {
					t.Errorf("batch version went backwards: %d after %d", version, lastVersion)
					return
				}
				lastVersion = version
				for i := range want {
					if out[i] != want[i] {
						t.Errorf("answer %d diverged under churn: got %d, want %d (version %d)",
							i, out[i], want[i], version)
						return
					}
				}
				dst = out
				batches.Add(1)
			}
		}()
	}

	// Writer: rebuild as fast as possible; every rebuild retires the
	// previous snapshot into the epoch domain while readers are inside it.
	const rebuilds = 60
	for i := 0; i < rebuilds; i++ {
		snap, err := st.Rebuild(ctx, "churn", nil)
		if err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
		snap.Release()
	}
	stop.Store(true)
	wg.Wait()
	if batches.Load() == 0 {
		t.Fatal("no batches completed under churn")
	}

	// Eventual reclamation: with readers quiescent, the gauges settle to
	// exactly one live snapshot (the current version) and zero retired.
	// Stats itself runs a reclaim scan, so poll it briefly — handles
	// were closed above but a final in-flight release may lag a tick.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := st.Stats()
		if stats.LiveSnapshots == 1 && stats.RetiredSnapshots == 0 {
			if stats.Batches == 0 || stats.BatchQueries == 0 {
				t.Fatalf("batch counters not populated: %+v", stats)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not settle: live=%d retired=%d (want 1/0)",
				stats.LiveSnapshots, stats.RetiredSnapshots)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStoreHandleCatalogCache: a Handle's cached name→entry resolution
// must be invalidated by Remove and by a Load that re-creates the entry
// — the catalogGen protocol.
func TestStoreHandleCatalogCache(t *testing.T) {
	st := fastbcc.NewStore(0)
	defer st.Close()
	g := fastbcc.GenerateRMAT(8, 8, 1)
	ctx := context.Background()
	snap, err := st.Load(ctx, "a", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()

	h := st.NewHandle()
	defer h.Close()
	s1, err := h.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	v1 := s1.Version
	h.Release()

	// Remove: the cached entry must not resurrect the name.
	if err := st.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Acquire("a"); err == nil {
		t.Fatal("Acquire through a stale cached entry succeeded after Remove")
	}

	// Reload under the same name: the handle must see the new entry.
	snap, err = st.Load(ctx, "a", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	s2, err := h.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 1 || v1 != 1 {
		t.Fatalf("versions: first %d, after reload %d (each load starts at 1)", v1, s2.Version)
	}
	h.Release()
}

// TestStoreQueryBatchNilHandle: the CAS-refcount fallback answers
// exactly like the epoch path.
func TestStoreQueryBatchNilHandle(t *testing.T) {
	st := fastbcc.NewStore(0)
	defer st.Close()
	g := fastbcc.GenerateRMAT(8, 8, 2)
	snap, err := st.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	qs := []fastbcc.Query{
		{Op: fastbcc.OpConnected, U: 0, V: 5},
		{Op: fastbcc.OpCutsOnPath, U: 0, V: 5},
	}
	viaNil, v1, err := st.QueryBatch(context.Background(), nil, "g", qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := st.NewHandle()
	defer h.Close()
	viaHandle, v2, err := st.QueryBatch(context.Background(), h, "g", qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("versions differ: %d vs %d", v1, v2)
	}
	for i := range qs {
		if viaNil[i] != viaHandle[i] {
			t.Fatalf("answer %d: %d via refcount vs %d via handle", i, viaNil[i], viaHandle[i])
		}
	}
}

// TestStoreQueryBatchParallelPath exercises the large-batch fan-out over
// the Runner workers (and its error propagation) with a batch over the
// parallel threshold.
func TestStoreQueryBatchParallelPath(t *testing.T) {
	st := fastbcc.NewStore(0)
	defer st.Close()
	g := fastbcc.GenerateRMAT(10, 8, 3)
	snap, err := st.Load(context.Background(), "g", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	n := int32(g.NumVertices())

	const big = 1 << 16 // over parallelBatchMin
	qs := make([]fastbcc.Query, big)
	for i := range qs {
		qs[i] = fastbcc.Query{
			Op: fastbcc.OpConnected + fastbcc.QueryOp(i%6),
			U:  int32(i*7) % n,
			V:  int32(i*11+3) % n,
			X:  int32(i*5+1) % n,
		}
	}
	out, _, err := st.QueryBatch(context.Background(), nil, "g", qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check against scalar answers.
	for _, i := range []int{0, 1, 12345, big - 1} {
		q := qs[i]
		var want fastbcc.Answer
		single, _, err := st.QueryBatch(context.Background(), nil, "g", []fastbcc.Query{q}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want = single[0]
		if out[i] != want {
			t.Fatalf("parallel batch answer %d: got %d, want %d", i, out[i], want)
		}
	}

	// An invalid query deep in the batch fails the whole batch and names
	// the lowest failing index deterministically.
	bad := make([]fastbcc.Query, big)
	copy(bad, qs)
	bad[40000].V = n + 5
	bad[50000].Op = 0
	if _, _, err := st.QueryBatch(context.Background(), nil, "g", bad, nil); err == nil {
		t.Fatal("parallel batch with invalid query succeeded")
	} else if want := "query 40000"; !strings.Contains(err.Error(), want) {
		t.Fatalf("parallel batch error %q does not name the lowest bad index (%s)", err, want)
	}
}
