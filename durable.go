package fastbcc

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bctree"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/persist"
)

// Durable serving.
//
// With StoreConfig.DataDir set, the Store persists each graph under
// DataDir/<graph-dir>/ as two files:
//
//   - snapshot.fbcc — the serving snapshot's flat arrays (CSR graph,
//     decomposition, query index, overlay) in the internal/persist
//     container: checksummed sections, written temp-fsync-rename by a
//     per-entry background persister after every full build (Load,
//     Rebuild, delta flush). A restart memory-maps it back and serves
//     without rebuilding anything.
//   - wal — the write-ahead journal for mutations. ApplyBatch appends a
//     CRC-framed record and fsyncs BEFORE acknowledging, so every acked
//     mutation survives a crash; after a snapshot that reflects a record
//     is durably published, the record is truncated away.
//
// The sequence protocol ties the two together. Every journaled record
// gets the entry's next walSeq; appliedSeq (guarded by the entry's build
// lock) is the highest seq such that every record <= it is fully
// reflected in the serving snapshot, and each snapshot captures it as
// mutSeq. Recovery maps the snapshot, then replays the journal records
// with Seq > mutSeq into the ordinary delta queue — the already-serving
// snapshot is stale but correct, and one coalesced rebuild catches up. A
// batch that classifies partially (some edges applied to the overlay,
// some queued) journals as TWO records — the applied part, then the
// residual — so the snapshot's truncation point never strands the queued
// half and replay never re-applies the applied half.
//
// Durability degrades, it never fails serving: a failed snapshot write or
// journal append is logged into the entry's persist-error state (Status
// reports DurabilityDegraded, metrics count it), and queries and mutation
// acknowledgments proceed exactly as with DataDir unset.

const (
	snapshotFile = "snapshot.fbcc"
	journalFile  = "wal"
)

// Snapshot section IDs (persist.Section.ID). Frozen: renumbering breaks
// every snapshot on disk.
const (
	secGraphOffsets uint32 = 1
	secGraphAdj     uint32 = 2
	secLabel        uint32 = 3
	secHead         uint32 = 4
	secParent       uint32 = 5
	secLabelCount   uint32 = 6
	secArtPoints    uint32 = 7
	secBCTCutNode   uint32 = 8
	secBCTBlockOf   uint32 = 9
	secBCTOffsets   uint32 = 10
	secBCTAdj       uint32 = 11
	secNodeOf       uint32 = 12
	secBCPar        uint32 = 13
	secBCFirst      uint32 = 14
	secBCLast       uint32 = 15
	secBCDepth      uint32 = 16
	secBCTourDepth  uint32 = 17
	secECC          uint32 = 18
	secBRComp       uint32 = 19
	secBRPar        uint32 = 20
	secBRFirst      uint32 = 21
	secBRDepth      uint32 = 22
	secBRTourDepth  uint32 = 23
	secBREdgeU      uint32 = 24
	secBREdgeW      uint32 = 25
	secOverlay      uint32 = 26 // flattened (u, w) pairs
)

// snapshotMeta is the JSON meta blob of a snapshot file — the scalars the
// sections cannot carry, plus the shape facts restore validates the
// sections against.
type snapshotMeta struct {
	Format     int    `json:"format"`
	Name       string `json:"name"`
	Algorithm  string `json:"algorithm"`
	Version    int64  `json:"version"`
	BuiltAt    int64  `json:"built_at"` // UnixNano
	MutSeq     uint64 `json:"mut_seq"`
	N          int32  `json:"n"`
	NumLabels  int    `json:"num_labels"`
	NumBCC     int    `json:"num_bcc"`
	NumBlocks  int    `json:"num_blocks"`
	NumBridges int    `json:"num_bridges"`
}

// graphDir maps a catalog name to its directory under DataDir: names
// made of [A-Za-z0-9._-] (not starting with a dot) keep themselves,
// prefixed "g-"; anything else hex-encodes as "x-<hex>". The meta blob
// carries the authoritative name either way.
func (s *Store) graphDir(name string) string {
	safe := name != "" && name[0] != '.' && len(name) <= 128
	if safe {
		for i := 0; i < len(name); i++ {
			c := name[i]
			if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
				c == '.' || c == '_' || c == '-') {
				safe = false
				break
			}
		}
	}
	if safe {
		return filepath.Join(s.dataDir, "g-"+name)
	}
	return filepath.Join(s.dataDir, "x-"+hex.EncodeToString([]byte(name)))
}

// ---------------------------------------------------------------------
// Snapshot encode / restore
// ---------------------------------------------------------------------

// encodeSnapshot flattens snap into the persist container's meta +
// sections. The section slices alias the snapshot's arrays (except the
// tiny overlay flattening), so the caller must hold its retain across
// the write.
func encodeSnapshot(snap *Snapshot) ([]byte, []persist.Section, error) {
	g, r, x := snap.Graph, snap.Result, snap.Index
	if g == nil || r == nil || x == nil {
		return nil, nil, errors.New("fastbcc: snapshot has no payload to persist")
	}
	t := r.BlockCutTree()
	p := x.Parts()
	meta := snapshotMeta{
		Format:     1,
		Name:       snap.Name,
		Algorithm:  snap.Algorithm,
		Version:    snap.Version,
		BuiltAt:    snap.BuiltAt.UnixNano(),
		MutSeq:     snap.mutSeq,
		N:          g.N,
		NumLabels:  r.NumLabels,
		NumBCC:     r.NumBCC,
		NumBlocks:  t.NumBlocks,
		NumBridges: p.NumBridges,
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, nil, err
	}
	overlay := make([]int32, 0, 2*len(snap.overlay))
	for _, e := range snap.overlay {
		overlay = append(overlay, e.U, e.W)
	}
	secs := []persist.Section{
		{ID: secGraphOffsets, Data: g.Offsets},
		{ID: secGraphAdj, Data: g.Adj},
		{ID: secLabel, Data: r.Label},
		{ID: secHead, Data: r.Head},
		{ID: secParent, Data: r.Parent},
		{ID: secLabelCount, Data: r.LabelSizes()},
		{ID: secArtPoints, Data: r.ArticulationPoints()},
		{ID: secBCTCutNode, Data: t.CutNode},
		{ID: secBCTBlockOf, Data: t.BlockOf},
		{ID: secBCTOffsets, Data: t.Offsets},
		{ID: secBCTAdj, Data: t.Adj},
		{ID: secNodeOf, Data: p.NodeOf},
		{ID: secBCPar, Data: p.BCPar},
		{ID: secBCFirst, Data: p.BCFirst},
		{ID: secBCLast, Data: p.BCLast},
		{ID: secBCDepth, Data: p.BCDepth},
		{ID: secBCTourDepth, Data: p.BCTourDepth},
		{ID: secECC, Data: p.ECC},
		{ID: secBRComp, Data: p.BRComp},
		{ID: secBRPar, Data: p.BRPar},
		{ID: secBRFirst, Data: p.BRFirst},
		{ID: secBRDepth, Data: p.BRDepth},
		{ID: secBRTourDepth, Data: p.BRTourDepth},
		{ID: secBREdgeU, Data: p.BREdgeU},
		{ID: secBREdgeW, Data: p.BREdgeW},
		{ID: secOverlay, Data: overlay},
	}
	return mb, secs, nil
}

// restoreSnapshot reassembles a serving snapshot from a validated
// mapping. The returned snapshot's arrays alias m on little-endian
// hosts; the caller transfers its mapping reference into snap.mapping.
func restoreSnapshot(m *persist.Mapping, meta *snapshotMeta) (*Snapshot, error) {
	sec := func(id uint32, wantLen int, what string) ([]int32, error) {
		a, ok := m.Section(id)
		if !ok {
			return nil, fmt.Errorf("fastbcc: snapshot restore: section %d (%s) missing", id, what)
		}
		if wantLen >= 0 && len(a) != wantLen {
			return nil, fmt.Errorf("fastbcc: snapshot restore: %s has %d entries, meta implies %d", what, len(a), wantLen)
		}
		return a, nil
	}
	n := int(meta.N)
	if n < 0 || meta.NumLabels < 0 || meta.NumBlocks < 0 || meta.NumBridges < 0 {
		return nil, errors.New("fastbcc: snapshot restore: negative shape in meta")
	}

	offsets, err := sec(secGraphOffsets, n+1, "graph offsets")
	if err != nil {
		return nil, err
	}
	adj, err := sec(secGraphAdj, -1, "graph adjacency")
	if err != nil {
		return nil, err
	}
	// The CSR is the one structure queries index by raw user input, so it
	// gets the full O(n+m) validation: monotone offsets closing exactly on
	// the adjacency, every target in range.
	if n > 0 && offsets[0] != 0 {
		return nil, errors.New("fastbcc: snapshot restore: graph offsets do not start at 0")
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, errors.New("fastbcc: snapshot restore: graph offsets not monotone")
		}
	}
	if n > 0 && int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("fastbcc: snapshot restore: offsets close at %d, adjacency has %d arcs", offsets[n], len(adj))
	}
	for _, w := range adj {
		if w < 0 || int(w) >= n {
			return nil, fmt.Errorf("fastbcc: snapshot restore: adjacency target %d out of range [0,%d)", w, n)
		}
	}

	label, err := sec(secLabel, n, "labels")
	if err != nil {
		return nil, err
	}
	head, err := sec(secHead, meta.NumLabels, "heads")
	if err != nil {
		return nil, err
	}
	parent, err := sec(secParent, n, "parents")
	if err != nil {
		return nil, err
	}
	labelCount, err := sec(secLabelCount, meta.NumLabels, "label sizes")
	if err != nil {
		return nil, err
	}
	artPoints, err := sec(secArtPoints, -1, "articulation points")
	if err != nil {
		return nil, err
	}
	cutNode, err := sec(secBCTCutNode, n, "cut nodes")
	if err != nil {
		return nil, err
	}
	blockOf, err := sec(secBCTBlockOf, meta.NumLabels, "block map")
	if err != nil {
		return nil, err
	}
	numNodes := meta.NumBlocks + len(artPoints)
	bctOffsets, err := sec(secBCTOffsets, numNodes+1, "block-cut offsets")
	if err != nil {
		return nil, err
	}
	bctAdj, err := sec(secBCTAdj, -1, "block-cut adjacency")
	if err != nil {
		return nil, err
	}
	nodeOf, err := sec(secNodeOf, n, "node map")
	if err != nil {
		return nil, err
	}
	bcPar, err := sec(secBCPar, numNodes, "bc parents")
	if err != nil {
		return nil, err
	}
	bcFirst, err := sec(secBCFirst, numNodes, "bc tour firsts")
	if err != nil {
		return nil, err
	}
	bcLast, err := sec(secBCLast, numNodes, "bc tour lasts")
	if err != nil {
		return nil, err
	}
	bcDepth, err := sec(secBCDepth, numNodes, "bc depths")
	if err != nil {
		return nil, err
	}
	bcTour, err := sec(secBCTourDepth, -1, "bc tour depths")
	if err != nil {
		return nil, err
	}
	ecc, err := sec(secECC, n, "2ecc labels")
	if err != nil {
		return nil, err
	}
	brComp, err := sec(secBRComp, -1, "bridge components")
	if err != nil {
		return nil, err
	}
	numEcc := len(brComp)
	brPar, err := sec(secBRPar, numEcc, "bridge parents")
	if err != nil {
		return nil, err
	}
	brFirst, err := sec(secBRFirst, numEcc, "bridge tour firsts")
	if err != nil {
		return nil, err
	}
	brDepth, err := sec(secBRDepth, numEcc, "bridge depths")
	if err != nil {
		return nil, err
	}
	brTour, err := sec(secBRTourDepth, -1, "bridge tour depths")
	if err != nil {
		return nil, err
	}
	brEdgeU, err := sec(secBREdgeU, numEcc, "bridge edge u")
	if err != nil {
		return nil, err
	}
	brEdgeW, err := sec(secBREdgeW, numEcc, "bridge edge w")
	if err != nil {
		return nil, err
	}
	overlayFlat, err := sec(secOverlay, -1, "overlay")
	if err != nil {
		return nil, err
	}
	if len(overlayFlat)%2 != 0 {
		return nil, errors.New("fastbcc: snapshot restore: overlay has odd length")
	}

	// Range checks for every array a query indexes with: a value out of
	// range would turn the first query into a panic.
	inRange := func(a []int32, lo, hi int, what string) error {
		for _, v := range a {
			if int(v) < lo || int(v) >= hi {
				return fmt.Errorf("fastbcc: snapshot restore: %s value %d out of range [%d,%d)", what, v, lo, hi)
			}
		}
		return nil
	}
	for _, chk := range []error{
		inRange(label, 0, max(meta.NumLabels, 1), "label"),
		inRange(head, -1, n, "head"),
		inRange(parent, -1, n, "parent"),
		inRange(artPoints, 0, n, "articulation point"),
		inRange(cutNode, -1, numNodes, "cut node"),
		inRange(blockOf, -1, meta.NumBlocks, "block map"),
		inRange(nodeOf, -1, numNodes, "node map"),
		inRange(bcFirst, 0, max(len(bcTour), 1), "bc tour first"),
		inRange(bcLast, 0, max(len(bcTour), 1), "bc tour last"),
		inRange(ecc, -1, numEcc, "2ecc label"),
		inRange(brComp, 0, max(numEcc, 1), "bridge component"),
		inRange(brFirst, 0, max(len(brTour), 1), "bridge tour first"),
		validateCSR(bctOffsets, bctAdj, numNodes, "block-cut tree"),
	} {
		if chk != nil {
			return nil, chk
		}
	}

	bct := &core.BlockCutTree{
		NumBlocks: meta.NumBlocks,
		Cuts:      artPoints,
		CutNode:   cutNode,
		BlockOf:   blockOf,
		Offsets:   bctOffsets,
		Adj:       bctAdj,
	}
	res := core.RestoreResult(label, head, parent, labelCount, artPoints, meta.NumBCC, bct)
	idx := bctree.FromParts(res, bctree.Parts{
		NodeOf:      nodeOf,
		BCPar:       bcPar,
		BCFirst:     bcFirst,
		BCLast:      bcLast,
		BCDepth:     bcDepth,
		BCTourDepth: bcTour,
		ECC:         ecc,
		NumBridges:  meta.NumBridges,
		BRComp:      brComp,
		BRPar:       brPar,
		BRFirst:     brFirst,
		BRDepth:     brDepth,
		BRTourDepth: brTour,
		BREdgeU:     brEdgeU,
		BREdgeW:     brEdgeW,
	})
	var overlay []Edge
	if len(overlayFlat) > 0 {
		overlay = make([]Edge, len(overlayFlat)/2)
		for i := range overlay {
			overlay[i] = Edge{U: overlayFlat[2*i], W: overlayFlat[2*i+1]}
		}
	}
	return &Snapshot{
		Name:      meta.Name,
		Version:   meta.Version,
		Algorithm: meta.Algorithm,
		Graph:     &graph.Graph{N: meta.N, Offsets: offsets, Adj: adj},
		Result:    res,
		Index:     idx,
		BuiltAt:   time.Unix(0, meta.BuiltAt),
		overlay:   overlay,
		mutSeq:    meta.MutSeq,
	}, nil
}

// validateCSR checks a CSR (offsets, adj) over nodes vertices.
func validateCSR(offsets, adj []int32, nodes int, what string) error {
	if len(offsets) != nodes+1 {
		return fmt.Errorf("fastbcc: snapshot restore: %s offsets have %d entries, want %d", what, len(offsets), nodes+1)
	}
	if nodes == 0 {
		return nil
	}
	if offsets[0] != 0 || int(offsets[nodes]) != len(adj) {
		return fmt.Errorf("fastbcc: snapshot restore: %s offsets do not close on adjacency", what)
	}
	for v := 0; v < nodes; v++ {
		if offsets[v] > offsets[v+1] {
			return fmt.Errorf("fastbcc: snapshot restore: %s offsets not monotone", what)
		}
	}
	for _, w := range adj {
		if w < 0 || int(w) >= nodes {
			return fmt.Errorf("fastbcc: snapshot restore: %s adjacency target out of range", what)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Journal integration (the mutation ack path)
// ---------------------------------------------------------------------

// appendJEdges converts edges into dst (reused across calls).
func appendJEdges(dst []persist.JEdge, edges []Edge) []persist.JEdge {
	for _, e := range edges {
		dst = append(dst, persist.JEdge{U: e.U, W: e.W})
	}
	return dst
}

// journalAppend assigns the batch the entry's next WAL sequence number
// and appends one journal record, fsyncing before returning — the
// durability point every mutation acknowledgment rests on. With DataDir
// unset it returns 0 and touches nothing. A failed append DEGRADES
// (persist-error state, metrics) instead of failing the mutation: the
// acknowledgment proceeds, it just is not crash-durable, which Status
// reports as DurabilityDegraded.
func (s *Store) journalAppend(en *storeEntry, name string, adds, dels []Edge) uint64 {
	if s.dataDir == "" {
		return 0
	}
	en.jmu.Lock()
	defer en.jmu.Unlock()
	en.walSeq++
	seq := en.walSeq
	if en.journal == nil {
		// Load opens the journal; reaching here without one means that
		// open failed. Note it (once per batch) and keep serving.
		s.notePersistError(en, fmt.Errorf("fastbcc: graph %q has no journal (open failed earlier)", name))
		s.walFails.Add(1)
		return seq
	}
	en.jAdds = appendJEdges(en.jAdds[:0], adds)
	en.jDels = appendJEdges(en.jDels[:0], dels)
	nb, err := en.journal.Append(seq, en.jAdds, en.jDels, !s.journalNoSync)
	if err != nil {
		s.walFails.Add(1)
		s.notePersistError(en, err)
		if m := s.metrics.Load(); m != nil {
			m.walAppendErr.Inc()
		}
		return seq
	}
	s.walAppends.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.walAppendOK.Inc()
		m.walBytes.Add(int64(nb))
	}
	return seq
}

// ensureJournalLocked opens (creating) the entry's journal. Caller holds
// en.jmu. Any records already on disk are discarded from replay (the
// caller Load path resets the file) but their sequence numbers are
// honored so walSeq stays monotone across restarts.
func (s *Store) ensureJournalLocked(en *storeEntry, name string) error {
	if en.journal != nil {
		return nil
	}
	dir := s.graphDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	j, _, err := persist.OpenJournal(filepath.Join(dir, journalFile))
	if err != nil {
		return err
	}
	en.journal = j
	if last := j.LastSeq(); last > en.walSeq {
		en.walSeq = last
	}
	return nil
}

// initDurableEntry wires a freshly Loaded entry's durability state: the
// journal is opened and reset (the graph was replaced wholesale, so any
// prior records describe a dead graph) and appliedSeq catches up to
// walSeq. Caller holds en.sem. Failures degrade.
func (s *Store) initDurableEntry(en *storeEntry, name string) {
	if s.dataDir == "" {
		return
	}
	en.jmu.Lock()
	defer en.jmu.Unlock()
	if err := s.ensureJournalLocked(en, name); err != nil {
		s.notePersistError(en, err)
		return
	}
	if err := en.journal.Reset(); err != nil {
		s.notePersistError(en, err)
		return
	}
	en.appliedSeq = en.walSeq
}

// ---------------------------------------------------------------------
// Background snapshot persister
// ---------------------------------------------------------------------

// notePersistError records a durability failure on the entry (Status
// surfaces it as DurabilityDegraded/LastPersistError) and store-wide.
func (s *Store) notePersistError(en *storeEntry, err error) {
	s.persistFails.Add(1)
	en.pmu.Lock()
	en.persistErr = err.Error()
	en.persistErrAt = time.Now()
	en.pmu.Unlock()
}

// persistState returns the entry's durability-degradation state.
func (en *storeEntry) persistState() (string, time.Time) {
	en.pmu.Lock()
	defer en.pmu.Unlock()
	return en.persistErr, en.persistErrAt
}

// kickPersist marks the entry dirty and ensures a background persister
// is running. Called after every full-build publish (Load, Rebuild,
// delta flush) — not after fast/collapse publishes, whose durability the
// journal already carries; persisting on every overlay bump would turn a
// mutation burst into a disk-write burst for nothing.
func (s *Store) kickPersist(en *storeEntry, name string) {
	if s.dataDir == "" {
		return
	}
	en.pmu.Lock()
	en.persistDirty = true
	start := !en.persistRunning && !en.persistStopped
	if start {
		en.persistRunning = true
	}
	en.pmu.Unlock()
	if start {
		go s.persistLoop(en, name)
	}
}

// persistLoop drains the dirty flag: each pass persists the entry's
// current snapshot, so any number of publishes during a write coalesce
// into one more write.
func (s *Store) persistLoop(en *storeEntry, name string) {
	for {
		en.pmu.Lock()
		if !en.persistDirty || en.persistStopped {
			en.persistRunning = false
			en.pmu.Unlock()
			return
		}
		en.persistDirty = false
		en.pmu.Unlock()
		s.persistEntry(en, name)
	}
}

// persistEntry writes the entry's current snapshot (persistCurrent under
// the per-entry writer lock) and records the outcome. The stopped
// re-check under pwMu pairs with closeDurable's barrier: after
// closeDurable returns, no snapshot write can start, so Remove's
// RemoveAll cannot race a persist that would resurrect the directory.
func (s *Store) persistEntry(en *storeEntry, name string) error {
	en.pwMu.Lock()
	defer en.pwMu.Unlock()
	en.pmu.Lock()
	stopped := en.persistStopped
	en.pmu.Unlock()
	if stopped {
		return nil
	}
	err := s.persistCurrent(en, name)
	if err != nil {
		s.notePersistError(en, err)
		if m := s.metrics.Load(); m != nil {
			m.persistSnapErr.Inc()
		}
	}
	return err
}

// persistCurrent writes the entry's current snapshot to disk and, on
// success, truncates the journal through the snapshot's mutSeq and
// clears the entry's persist-error state. Returns nil when there is
// nothing to persist.
func (s *Store) persistCurrent(en *storeEntry, name string) error {
	cur := en.cur.Load()
	if cur == nil {
		return nil
	}
	if !cur.tryRetain() {
		return nil
	}
	defer cur.Release()
	meta, secs, err := encodeSnapshot(cur)
	if err != nil {
		return err
	}
	dir := s.graphDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	nb, err := persist.WriteSnapshot(filepath.Join(dir, snapshotFile), meta, secs)
	if err != nil {
		return err
	}
	s.persistOK.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.persistSnapOK.Inc()
		m.persistSnapBytes.Add(nb)
	}
	en.pmu.Lock()
	en.persistErr = ""
	en.persistErrAt = time.Time{}
	en.pmu.Unlock()
	// Every record <= mutSeq is now reflected in a durable snapshot; the
	// journal only needs the tail.
	en.jmu.Lock()
	j := en.journal
	en.jmu.Unlock()
	if j != nil {
		if terr := j.TruncateThrough(cur.mutSeq); terr != nil {
			s.notePersistError(en, terr)
		} else {
			s.walTruncs.Add(1)
			if m := s.metrics.Load(); m != nil {
				m.walTruncs.Inc()
			}
		}
	}
	return nil
}

// Persist synchronously writes name's current snapshot to the Store's
// DataDir — the write the background persister would eventually do. For
// tests and operational flushes; with DataDir unset it is a no-op.
func (s *Store) Persist(name string) error {
	if s.dataDir == "" {
		return nil
	}
	en, err := s.lookup(name)
	if err != nil {
		return err
	}
	return s.persistEntry(en, name)
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

// RecoveredGraph describes one graph Recover brought back.
type RecoveredGraph struct {
	// Name and Version identify the restored snapshot.
	Name    string `json:"name"`
	Version int64  `json:"version"`
	// Vertices and Edges describe the restored graph (overlay included).
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Replayed counts the journaled mutation records queued for replay —
	// the snapshot serves immediately and one coalesced rebuild catches
	// up in the background.
	Replayed int `json:"replayed"`
	// SnapshotBytes is the mapped snapshot file's size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// RecoveryFailure describes one data directory Recover could not bring
// back (corrupt snapshot, unreadable file). The graph is simply absent
// from the catalog; the directory is left on disk for inspection.
type RecoveryFailure struct {
	Dir   string `json:"dir"`
	Error string `json:"error"`
}

// RecoveryReport summarizes a Recover pass.
type RecoveryReport struct {
	Graphs   []RecoveredGraph  `json:"graphs"`
	Failures []RecoveryFailure `json:"failures,omitempty"`
}

// Recover scans the Store's DataDir and restores every persisted graph:
// the last-good snapshot is memory-mapped and published (queries serve
// it immediately, no rebuild), the journal's records newer than the
// snapshot replay through the ordinary delta queue (one coalesced
// rebuild catches up in the background), and the journal's torn tail —
// if the process died mid-append — is truncated. Corrupt snapshots are
// reported in the result and skipped: recovery of one graph never blocks
// the rest, and a failed graph just stays unloaded.
//
// Call Recover once, before serving. Entries already serving a snapshot
// (Loaded while Recover ran, or a second Recover call) are skipped.
// With DataDir unset the report is empty.
func (s *Store) Recover(ctx context.Context) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	if s.dataDir == "" {
		return rep, nil
	}
	entries, err := os.ReadDir(s.dataDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rep, nil
		}
		return nil, err
	}
	for _, de := range entries {
		if !de.IsDir() || !(strings.HasPrefix(de.Name(), "g-") || strings.HasPrefix(de.Name(), "x-")) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		dir := filepath.Join(s.dataDir, de.Name())
		rg, rerr := s.recoverDir(ctx, dir)
		if rerr != nil {
			rep.Failures = append(rep.Failures, RecoveryFailure{Dir: dir, Error: rerr.Error()})
			continue
		}
		if rg != nil {
			rep.Graphs = append(rep.Graphs, *rg)
		}
	}
	sort.Slice(rep.Graphs, func(i, j int) bool { return rep.Graphs[i].Name < rep.Graphs[j].Name })
	return rep, nil
}

// recoverDir restores one graph directory. A nil, nil return means the
// directory was skipped (no snapshot, or the graph is already serving).
func (s *Store) recoverDir(ctx context.Context, dir string) (*RecoveredGraph, error) {
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); errors.Is(err, os.ErrNotExist) {
		// A directory with a journal but no snapshot: the process died
		// after Load created the journal but before the first persist
		// finished. There is no base graph to replay onto — nothing to
		// recover (and nothing acked rested on it: acks rest on the
		// journal only for mutations, which require a loaded graph whose
		// snapshot persist would have had to complete for a restart to
		// matter... the records describe a graph that was never durable).
		return nil, nil
	}
	m, err := persist.OpenMapped(snapPath, s.verifyOnLoad)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			m.Release()
		}
	}()
	var meta snapshotMeta
	if err := json.Unmarshal(m.Meta(), &meta); err != nil {
		return nil, fmt.Errorf("fastbcc: snapshot meta: %w", err)
	}
	if meta.Format != 1 || meta.Name == "" {
		return nil, fmt.Errorf("fastbcc: snapshot meta: unsupported format %d or empty name", meta.Format)
	}
	snap, err := restoreSnapshot(m, &meta)
	if err != nil {
		return nil, err
	}

	en, err := s.entry(meta.Name)
	if err != nil {
		return nil, err
	}
	if err := en.lockCtx(ctx); err != nil {
		return nil, err
	}
	defer en.unlock()
	if en.removed || en.cur.Load() != nil {
		// Raced with Remove, or the graph was Loaded (or already
		// recovered) while we decoded: the live state wins.
		return nil, nil
	}
	snap.store = s
	snap.mapping = m // transfers the OpenMapped reference
	snap.refs.Store(1)
	en.version.Store(snap.Version)
	en.appliedSeq = snap.mutSeq
	s.live.Add(1)
	en.cur.Store(snap)
	ok = true
	s.recoveredGraphs.Add(1)
	if mm := s.metrics.Load(); mm != nil {
		mm.recovered.Inc()
		mm.ensureGraphGauges(s, meta.Name)
	}

	// Journal: open (truncating any torn tail), then queue the records
	// the snapshot does not reflect through the ordinary delta machinery.
	replayed := 0
	wal := filepath.Join(dir, journalFile)
	en.jmu.Lock()
	j, recs, jerr := persist.OpenJournal(wal)
	if jerr != nil && errors.Is(jerr, persist.ErrJournalCorrupt) {
		// The journal file is not a journal at all. Quarantine it and
		// start fresh: the snapshot still serves, but any acked mutations
		// it held are lost — that is a durability degradation, reported.
		os.Rename(wal, wal+".corrupt")
		j, recs, _ = persist.OpenJournal(wal)
	}
	if j != nil {
		en.journal = j
		for _, rec := range recs {
			if rec.Seq <= meta.MutSeq {
				continue
			}
			q := make([]edgeDelta, 0, len(rec.Adds)+len(rec.Dels))
			for _, e := range rec.Adds {
				q = append(q, edgeDelta{add: true, e: canonEdge(Edge{U: e.U, W: e.W}), seq: rec.Seq})
			}
			for _, e := range rec.Dels {
				q = append(q, edgeDelta{e: canonEdge(Edge{U: e.U, W: e.W}), seq: rec.Seq})
			}
			en.mutMu.Lock()
			s.queueDeltasLocked(en, meta.Name, q)
			en.mutMu.Unlock()
			replayed++
		}
		if last := j.LastSeq(); last > en.walSeq {
			en.walSeq = last
		}
	}
	if en.walSeq < meta.MutSeq {
		en.walSeq = meta.MutSeq
	}
	en.jmu.Unlock()
	if jerr != nil {
		s.notePersistError(en, jerr)
	}
	if replayed > 0 {
		s.replayedMutations.Add(int64(replayed))
		if mm := s.metrics.Load(); mm != nil {
			mm.replayed.Add(int64(replayed))
		}
	}

	// Lazy integrity: unless VerifyOnLoad already checked every section,
	// verify in the background while the snapshot serves. A checksum
	// mismatch degrades (and is almost certainly about to surface as
	// wrong answers — but crashing the server for a graph that may never
	// be queried again is worse than reporting it).
	if !s.verifyOnLoad {
		m.Retain()
		go func() {
			defer m.Release()
			if verr := m.Verify(); verr != nil {
				s.notePersistError(en, verr)
			}
		}()
	}
	return &RecoveredGraph{
		Name:          meta.Name,
		Version:       snap.Version,
		Vertices:      snap.Graph.NumVertices(),
		Edges:         snap.NumEdges(),
		Replayed:      replayed,
		SnapshotBytes: m.Size(),
	}, nil
}

// closeDurable tears down the entry's durability state: the persister
// stops and the journal closes. Called from retire (Remove / Close); a
// concurrent mutation ack observing the closed journal degrades, which
// the residual Remove race accepts. The pwMu acquire-release is a
// barrier: any snapshot write in flight completes before this returns,
// and every later persistEntry sees persistStopped and writes nothing —
// so after closeDurable the data directory is quiescent.
func (s *Store) closeDurable(en *storeEntry) {
	en.pmu.Lock()
	en.persistStopped = true
	en.pmu.Unlock()
	en.pwMu.Lock()
	//lint:ignore SA2001 empty critical section is the point: drain the writer.
	en.pwMu.Unlock()
	en.jmu.Lock()
	if en.journal != nil {
		en.journal.Close()
		en.journal = nil
	}
	en.jmu.Unlock()
}
