package faultpoint

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestUnarmedIsNoOp(t *testing.T) {
	defer Reset()
	if err := Check("never.armed"); err != nil {
		t.Fatal(err)
	}
	if Hits("never.armed") != 0 {
		t.Fatal("unarmed point counted hits")
	}
	if got := List(); len(got) != 0 {
		t.Fatalf("List on clean registry = %v", got)
	}
}

func TestArmError(t *testing.T) {
	defer Reset()
	ArmError("p.err", 0)
	err := Check("p.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	Disarm("p.err")
	if err := Check("p.err"); err != nil {
		t.Fatalf("disarmed point still fails: %v", err)
	}
}

func TestAfterN(t *testing.T) {
	defer Reset()
	ArmError("p.after", 2)
	for i := 0; i < 2; i++ {
		if err := Check("p.after"); err != nil {
			t.Fatalf("check %d should pass: %v", i+1, err)
		}
	}
	if err := Check("p.after"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third check = %v, want ErrInjected", err)
	}
	if Hits("p.after") != 3 {
		t.Fatalf("hits = %d, want 3", Hits("p.after"))
	}
}

func TestArmPanic(t *testing.T) {
	defer Reset()
	ArmPanic("p.panic")
	defer func() {
		if recover() == nil {
			t.Fatal("armed panic point did not panic")
		}
	}()
	Check("p.panic")
}

func TestSleepInterruptedByContext(t *testing.T) {
	defer Reset()
	ArmSleep("p.sleep", time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- CheckCtx(ctx, "p.sleep") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleep ignored the canceled context")
	}
}

func TestSleepCompletes(t *testing.T) {
	defer Reset()
	ArmSleep("p.nap", time.Millisecond)
	if err := CheckCtx(context.Background(), "p.nap"); err != nil {
		t.Fatal(err)
	}
}

func TestObserveCounts(t *testing.T) {
	defer Reset()
	ArmObserve(CancelObserved)
	for i := 0; i < 3; i++ {
		if err := Check(CancelObserved); err != nil {
			t.Fatal(err)
		}
	}
	if Hits(CancelObserved) != 3 {
		t.Fatalf("hits = %d, want 3", Hits(CancelObserved))
	}
}

func TestSetSpec(t *testing.T) {
	defer Reset()
	if err := Set("a.x=panic, b.y=error:after=1,c.z=sleep:10ms,d.w=observe"); err != nil {
		t.Fatal(err)
	}
	got := List()
	if len(got) != 4 {
		t.Fatalf("List = %v", got)
	}
	if err := Check("b.y"); err != nil {
		t.Fatalf("b.y first check should pass (after=1): %v", err)
	}
	if err := Check("b.y"); !errors.Is(err, ErrInjected) {
		t.Fatalf("b.y second check = %v", err)
	}
	if err := Set("a.x=off"); err != nil {
		t.Fatal(err)
	}
	if err := Check("a.x"); err != nil {
		t.Fatal("a.x should be disarmed")
	}

	for _, bad := range []string{"nope", "x=", "=panic", "x=zap", "x=sleep", "x=sleep:zzz", "x=error:n=2", "x=off:now", "x=error:after=-1"} {
		if err := Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestConcurrentChecks exercises arming/disarming racing live checks
// under -race.
func TestConcurrentChecks(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					Check("race.point")
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		ArmError("race.point", int64(i%3))
		Disarm("race.point")
	}
	close(stop)
	wg.Wait()
}
