// Package faultpoint provides named fault-injection points for
// deterministic robustness testing of the serving stack.
//
// A fault point is a named site in production code — Check(name) or
// CheckCtx(ctx, name) — that normally does nothing: while no point is
// armed anywhere in the process, a check is a single atomic load and an
// immediate return, so the points can stay compiled into the serving
// path. Tests (and bccd's debug endpoint) arm a point with a behavior:
//
//	faultpoint.ArmPanic(faultpoint.PanicInEngine)       // panic at the site
//	faultpoint.ArmError(faultpoint.ErrorInBuild, 2)     // error after 2 passes
//	faultpoint.ArmSleep(faultpoint.SlowBuild, 50*time.Millisecond)
//	faultpoint.ArmObserve(faultpoint.CancelObserved)    // count hits only
//	defer faultpoint.Reset()
//
// or textually — the form bccd's -faultpoints flag and debug endpoint
// accept:
//
//	faultpoint.Set("build.panic-in-engine=panic")
//	faultpoint.Set("build.error=error:after=2, build.slow=sleep:50ms")
//
// Every behavior supports an after=N guard (the first N checks pass
// untriggered — "fail the second build", the smoke tests' idiom) and the
// hit counter Hits(name) reports how many times an armed point was
// reached, which is how tests assert that cancellation was actually
// observed inside the pipeline rather than merely requested.
//
// The canonical points of the build pipeline are declared here so tests,
// the Runner, and bccd agree on the names; arbitrary names work too —
// a check on a never-armed name is the same no-op.
package faultpoint

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The named injection points wired into the engine/Runner build path.
const (
	// PanicInEngine panics at the top of the engine dispatch, simulating
	// an engine bug; the Runner must convert it to an error and the
	// Store must keep serving the last-good snapshot.
	PanicInEngine = "build.panic-in-engine"
	// SlowBuild sleeps at the start of a build (interruptibly — a
	// canceled context ends the sleep early), simulating a pathological
	// graph holding a build slot.
	SlowBuild = "build.slow"
	// ErrorInBuild fails the build with ErrInjected; with after=N the
	// first N builds succeed ("error-after-N").
	ErrorInBuild = "build.error"
	// CancelObserved is an observation point: the Runner checks it on
	// every path that abandons a build because its context was canceled,
	// so a test that arms it with ArmObserve can assert — via Hits —
	// that cancellation was cooperatively observed inside the pipeline.
	CancelObserved = "build.cancel-observed"
	// SlowQuery sleeps at the start of a batch query execution
	// (interruptibly), simulating a pathologically large batch so tests
	// can prove batch requests respect their deadline.
	SlowQuery = "query.slow"
	// MutateClassify fires in Store.ApplyBatch's insertion classifier; an
	// armed error demotes the batch to the unclassifiable delta queue (the
	// degraded-but-correct path), an armed panic must not lose mutations.
	MutateClassify = "mutate.classify"
	// MutateDeltaFlush fires inside the coalesced delta rebuild, after the
	// pending deltas were stolen from the queue: a failure here must leave
	// the last-good snapshot serving and re-queue every stolen delta.
	MutateDeltaFlush = "mutate.delta-flush"
)

// ErrInjected is wrapped by every error an armed point returns, so
// callers and tests can classify injected failures with errors.Is.
var ErrInjected = errors.New("injected fault")

type mode int

const (
	modeObserve mode = iota // count hits, never trigger
	modePanic
	modeError
	modeSleep
)

func (m mode) String() string {
	switch m {
	case modeObserve:
		return "observe"
	case modePanic:
		return "panic"
	case modeError:
		return "error"
	case modeSleep:
		return "sleep"
	}
	return "?"
}

// config is one arming of a point; swapping the whole config on Arm
// makes re-arming race-free against in-flight checks.
type config struct {
	mode  mode
	after int64 // trigger only on hits after the first `after`
	delay time.Duration
	hits  atomic.Int64
}

type point struct {
	name string
	cfg  atomic.Pointer[config]
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	// armed counts armed points process-wide; zero is the no-op fast
	// path every Check takes in production.
	armed atomic.Int32
)

// Check runs the fault point name: a no-op unless the point is armed, in
// which case it panics, sleeps, or returns an error according to the
// armed behavior. The un-armed fast path is one atomic load.
func Check(name string) error { return CheckCtx(context.Background(), name) }

// CheckCtx is Check with a context: an armed sleep ends early when ctx
// is canceled (returning the context's error), which is how the
// slow-build point cooperates with build cancellation.
func CheckCtx(ctx context.Context, name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return slowCheck(ctx, name)
}

func slowCheck(ctx context.Context, name string) error {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return nil
	}
	cfg := p.cfg.Load()
	if cfg == nil {
		return nil
	}
	k := cfg.hits.Add(1)
	if k <= cfg.after {
		return nil
	}
	switch cfg.mode {
	case modePanic:
		panic(fmt.Sprintf("faultpoint: injected panic at %q", name))
	case modeError:
		return fmt.Errorf("faultpoint %q: %w", name, ErrInjected)
	case modeSleep:
		t := time.NewTimer(cfg.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil // modeObserve: counted, nothing else
}

// arm installs cfg (non-nil) under name, creating the point if needed;
// re-arming an armed point swaps behaviors and restarts the hit count.
func arm(name string, cfg *config) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		p = &point{name: name}
		points[name] = p
	}
	if p.cfg.Swap(cfg) == nil {
		armed.Add(1)
	}
}

// ArmPanic makes name panic when reached.
func ArmPanic(name string) { arm(name, &config{mode: modePanic}) }

// ArmError makes name fail with ErrInjected after the first `after`
// checks pass (0 = fail immediately).
func ArmError(name string, after int64) { arm(name, &config{mode: modeError, after: after}) }

// ArmSleep makes name sleep for d (interruptibly under CheckCtx).
func ArmSleep(name string, d time.Duration) { arm(name, &config{mode: modeSleep, delay: d}) }

// ArmObserve arms name as a pure observation point: checks pass but are
// counted, queryable with Hits.
func ArmObserve(name string) { arm(name, &config{mode: modeObserve}) }

// Disarm returns name to the no-op state. Unknown or already-disarmed
// names are a no-op.
func Disarm(name string) {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p != nil && p.cfg.Swap(nil) != nil {
		armed.Add(-1)
	}
}

// Reset disarms every point — the deferred cleanup of every test that
// arms anything.
func Reset() {
	mu.Lock()
	ps := make([]*point, 0, len(points))
	for _, p := range points {
		ps = append(ps, p)
	}
	mu.Unlock()
	for _, p := range ps {
		if p.cfg.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// Hits reports how many times name was checked while armed (since it was
// last armed). Zero for unarmed or unknown names.
func Hits(name string) int64 {
	mu.Lock()
	p := points[name]
	mu.Unlock()
	if p == nil {
		return 0
	}
	cfg := p.cfg.Load()
	if cfg == nil {
		return 0
	}
	return cfg.hits.Load()
}

// Armed reports how many fault points are currently armed process-wide —
// the gauge bccd exposes so a fleet scrape catches an injection harness
// left running. One atomic load.
func Armed() int { return int(armed.Load()) }

// Status describes one armed point, for bccd's debug endpoint.
type Status struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	Hits int64  `json:"hits"`
}

// List returns the armed points, sorted by name.
func List() []Status {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Status, 0, len(points))
	for _, p := range points {
		cfg := p.cfg.Load()
		if cfg == nil {
			continue
		}
		out = append(out, Status{Name: p.name, Mode: cfg.mode.String(), Hits: cfg.hits.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Set arms points from a comma-separated textual spec, the grammar of
// bccd's -faultpoints flag and debug endpoint:
//
//	name=panic            panic when reached
//	name=error            fail with ErrInjected
//	name=sleep:DURATION   sleep (e.g. sleep:50ms)
//	name=observe          count hits only
//	name=off              disarm
//
// Any behavior may append :after=N to let the first N checks pass, e.g.
// "build.error=error:after=1" fails every build after the first.
func Set(spec string) error {
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, beh, ok := strings.Cut(item, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || beh == "" {
			return fmt.Errorf("faultpoint: bad spec %q (want name=behavior)", item)
		}
		cfg := &config{}
		parts := strings.Split(beh, ":")
		switch parts[0] {
		case "off":
			if len(parts) > 1 {
				return fmt.Errorf("faultpoint: %q: off takes no parameters", item)
			}
			Disarm(name)
			continue
		case "panic":
			cfg.mode = modePanic
		case "error":
			cfg.mode = modeError
		case "observe":
			cfg.mode = modeObserve
		case "sleep":
			cfg.mode = modeSleep
			if len(parts) < 2 {
				return fmt.Errorf("faultpoint: %q: sleep needs a duration (sleep:50ms)", item)
			}
			d, err := time.ParseDuration(parts[1])
			if err != nil {
				return fmt.Errorf("faultpoint: %q: bad duration: %v", item, err)
			}
			cfg.delay = d
			parts = append(parts[:1], parts[2:]...)
		default:
			return fmt.Errorf("faultpoint: %q: unknown behavior %q", item, parts[0])
		}
		for _, param := range parts[1:] {
			n, ok := strings.CutPrefix(param, "after=")
			if !ok {
				return fmt.Errorf("faultpoint: %q: unknown parameter %q", item, param)
			}
			if _, err := fmt.Sscanf(n, "%d", &cfg.after); err != nil || cfg.after < 0 {
				return fmt.Errorf("faultpoint: %q: bad after=%q", item, n)
			}
		}
		arm(name, cfg)
	}
	return nil
}
