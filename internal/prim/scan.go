// Package prim implements the parallel primitives the paper's algorithms are
// built from: prefix sums (scan), filter/pack, stable counting sort, semisort
// by integer key, and a deterministic splittable RNG.
package prim

import (
	"repro/internal/parallel"
)

// scanBlock is the block size used by the two-pass parallel scans.
const scanBlock = 4096

// ExclusiveScanInt32 replaces a with its exclusive prefix sum and returns the
// total. a[i] becomes sum of the original a[0..i).
func ExclusiveScanInt32(a []int32) int32 {
	return ExclusiveScanInt32In(nil, a)
}

// ExclusiveScanInt32In is ExclusiveScanInt32 running on the execution
// context e (nil = default).
func ExclusiveScanInt32In(e *parallel.Exec, a []int32) int32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	if n <= scanBlock || e.Procs() == 1 {
		var s int32
		for i := 0; i < n; i++ {
			v := a[i]
			a[i] = s
			s += v
		}
		return s
	}
	nb := (n + scanBlock - 1) / scanBlock
	sums := make([]int32, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*scanBlock, (b+1)*scanBlock
			if hi > n {
				hi = n
			}
			var s int32
			for i := lo; i < hi; i++ {
				s += a[i]
			}
			sums[b] = s
		}
	})
	var total int32
	for b := 0; b < nb; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*scanBlock, (b+1)*scanBlock
			if hi > n {
				hi = n
			}
			s := sums[b]
			for i := lo; i < hi; i++ {
				v := a[i]
				a[i] = s
				s += v
			}
		}
	})
	return total
}

// ExclusiveScanInt64 is ExclusiveScanInt32 for int64 slices.
func ExclusiveScanInt64(a []int64) int64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	if n <= scanBlock || parallel.Procs() == 1 {
		var s int64
		for i := 0; i < n; i++ {
			v := a[i]
			a[i] = s
			s += v
		}
		return s
	}
	nb := (n + scanBlock - 1) / scanBlock
	sums := make([]int64, nb)
	parallel.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*scanBlock, (b+1)*scanBlock
			if hi > n {
				hi = n
			}
			var s int64
			for i := lo; i < hi; i++ {
				s += a[i]
			}
			sums[b] = s
		}
	})
	var total int64
	for b := 0; b < nb; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	parallel.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*scanBlock, (b+1)*scanBlock
			if hi > n {
				hi = n
			}
			s := sums[b]
			for i := lo; i < hi; i++ {
				v := a[i]
				a[i] = s
				s += v
			}
		}
	})
	return total
}

// PackInt32 returns the elements of src whose index satisfies keep, in order.
// It is the parallel filter/pack primitive: flags, scan, scatter.
func PackInt32(src []int32, keep func(i int) bool) []int32 {
	n := len(src)
	if n == 0 {
		return nil
	}
	flags := make([]int32, n)
	parallel.For(n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusiveScanInt32(flags)
	out := make([]int32, total)
	parallel.For(n, func(i int) {
		// After the scan, flags[i] is the output slot; an element is kept
		// iff the next prefix value differs.
		if i+1 < n {
			if flags[i+1] != flags[i] {
				out[flags[i]] = src[i]
			}
		} else if int32(len(out)) != flags[i] {
			out[flags[i]] = src[i]
		}
	})
	return out
}

// PackIndices returns the indices i in [0, n) with keep(i) true, in order.
func PackIndices(n int, keep func(i int) bool) []int32 {
	return PackIndicesIn(nil, n, keep)
}

// PackIndicesIn is PackIndices running on the execution context e.
func PackIndicesIn(e *parallel.Exec, n int, keep func(i int) bool) []int32 {
	return PackIndicesArena(e, n, keep, nil)
}

// PackIndicesArena is PackIndicesIn drawing the flag temporary and the
// returned index buffer from a (nil = plain allocation). The caller owns
// the result; transient users return it to the arena when done, while
// results that outlive the run should use PackIndicesIn so they never
// alias arena memory.
func PackIndicesArena(e *parallel.Exec, n int, keep func(i int) bool, a Arena) []int32 {
	flags := arenaGet(a, n, true)
	e.For(n, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ExclusiveScanInt32In(e, flags)
	out := arenaGet(a, int(total), false)
	e.For(n, func(i int) {
		if i+1 < n {
			if flags[i+1] != flags[i] {
				out[flags[i]] = int32(i)
			}
		} else if int32(len(out)) != flags[i] {
			out[flags[i]] = int32(i)
		}
	})
	arenaPut(a, flags)
	return out
}

// CountOnes returns the number of indices with keep(i) true.
func CountOnes(n int, keep func(i int) bool) int {
	return int(parallel.Reduce(n, parallel.DefaultGrain, int64(0),
		func(lo, hi int) int64 {
			var c int64
			for i := lo; i < hi; i++ {
				if keep(i) {
					c++
				}
			}
			return c
		},
		func(a, b int64) int64 { return a + b }))
}
