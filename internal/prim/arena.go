package prim

// Arena is the buffer-recycling contract the scratch-aware primitives
// draw their temporaries from. *graph.Scratch satisfies it; prim cannot
// import graph (graph builds on prim), so the dependency is inverted
// through this interface. Buffers returned by GetInt32 have arbitrary
// contents — primitives zero what they read.
type Arena interface {
	// GetInt32 returns an int32 buffer of length n with arbitrary contents.
	GetInt32(n int) []int32
	// PutInt32 returns int32 buffers to the arena.
	PutInt32(bufs ...[]int32)
}

// arenaGet returns a length-n buffer from a (which may be nil: plain
// allocation, already zeroed). Arena buffers are zeroed only when zero is
// set — most callers overwrite every element anyway.
func arenaGet(a Arena, n int, zero bool) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	b := a.GetInt32(n)
	if zero {
		for i := range b {
			b[i] = 0
		}
	}
	return b
}

// arenaPut returns buffers to a, dropping them when a is nil.
func arenaPut(a Arena, bufs ...[]int32) {
	if a != nil {
		a.PutInt32(bufs...)
	}
}
