package prim

// SortInt32Small sorts a ascending without allocating: insertion sort below
// a threshold and an in-place MSD radix sort (American flag style, 8-bit
// digits) above it. It is built for the many small-to-medium sorts of CSR
// construction — per-vertex adjacency lists — where the closure and
// reflection overhead of sort.Slice dominates; unlike the parallel
// SortInt32 it never spawns parallel work, so it can be called from inside
// parallel loop bodies. Negative values sort correctly (the top digit is
// sign-biased).
func SortInt32Small(a []int32) {
	if len(a) <= smallSortThreshold {
		insertionInt32(a)
		return
	}
	msdRadixInt32(a, 24)
}

// smallSortThreshold is where insertion sort stops winning over a radix
// pass; 48 is a conservative crossover for int32 payloads.
const smallSortThreshold = 48

func insertionInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// digit extracts the byte of v at shift, biasing the sign bit on the top
// byte so that negative values order before non-negative ones.
func digit(v int32, shift uint) int {
	b := (uint32(v) >> shift) & 0xFF
	if shift == 24 {
		b ^= 0x80
	}
	return int(b)
}

// msdRadixInt32 sorts a by the byte at shift with an in-place cycle-chasing
// permutation (American flag sort), then recurses on each bucket with the
// next byte. Recursion depth is at most 4; the per-level counter arrays
// live on the stack.
func msdRadixInt32(a []int32, shift uint) {
	var count [256]int32
	for _, v := range a {
		count[digit(v, shift)]++
	}
	var off, start, end [256]int32
	sum := int32(0)
	for b := 0; b < 256; b++ {
		off[b] = sum
		start[b] = sum
		sum += count[b]
		end[b] = sum
	}
	for b := 0; b < 256; b++ {
		i := off[b]
		for i < end[b] {
			d := digit(a[i], shift)
			if d == b {
				i++
			} else {
				a[i], a[off[d]] = a[off[d]], a[i]
				off[d]++
			}
		}
	}
	if shift == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		seg := a[start[b]:end[b]]
		if len(seg) < 2 {
			continue
		}
		if len(seg) <= smallSortThreshold {
			insertionInt32(seg)
		} else {
			msdRadixInt32(seg, shift-8)
		}
	}
}
