package prim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortInt32SmallMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 3, 7, 47, 48, 49, 100, 255, 256, 257, 1000, 5000, 70000}
	for _, n := range sizes {
		for trial := 0; trial < 4; trial++ {
			a := make([]int32, n)
			switch trial {
			case 0: // uniform, includes negatives
				for i := range a {
					a[i] = rng.Int31() - (1 << 30)
				}
			case 1: // small range with many duplicates
				for i := range a {
					a[i] = int32(rng.Intn(7))
				}
			case 2: // already sorted
				for i := range a {
					a[i] = int32(i)
				}
			case 3: // reverse sorted
				for i := range a {
					a[i] = int32(n - i)
				}
			}
			want := append([]int32(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			SortInt32Small(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("n=%d trial=%d: a[%d]=%d want %d", n, trial, i, a[i], want[i])
				}
			}
		}
	}
}

func TestSortInt32SmallExtremes(t *testing.T) {
	a := []int32{0, -1, 1 << 30, -(1 << 30), 2147483647, -2147483648, 5, -5}
	want := append([]int32(nil), a...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	SortInt32Small(a)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("a[%d]=%d want %d", i, a[i], want[i])
		}
	}
}

func BenchmarkSortInt32SmallAdjacency(b *testing.B) {
	// Simulates sortAdjacency: many small lists.
	rng := rand.New(rand.NewSource(9))
	const lists = 4096
	const deg = 24
	data := make([][]int32, lists)
	for i := range data {
		data[i] = make([]int32, deg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, l := range data {
			for j := range l {
				l[j] = rng.Int31n(1 << 20)
			}
		}
		b.StartTimer()
		for _, l := range data {
			SortInt32Small(l)
		}
	}
}
