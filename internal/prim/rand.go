package prim

// RNG is a deterministic splittable pseudo-random generator (splitmix64).
// Every randomized algorithm in this repository takes an explicit seed so
// experiments are reproducible run-to-run and across machines.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("prim.RNG.Intn: non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Split returns an independent generator derived from this one.
func (r *RNG) Split() *RNG { return &RNG{state: r.Next()} }

// Hash64 mixes x with a fixed splitmix64 finalizer; used for stateless
// per-element randomness (e.g. per-vertex LDD shifts keyed by vertex id).
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash32 reduces Hash64 to 32 bits.
func Hash32(x uint64) uint32 { return uint32(Hash64(x) >> 32) }
