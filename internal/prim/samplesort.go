package prim

import (
	"sort"

	"repro/internal/parallel"
)

// SortInt32 sorts a ascending with a parallel sample sort: oversampled
// splitters partition the input into P² buckets, elements are classified
// and scattered in parallel, and buckets are sorted independently. Falls
// back to the standard library below a size threshold. This is the
// general-purpose comparison sort of the ParlayLib toolkit the paper
// builds on; the Euler tour's semisort uses the cheaper counting sort.
func SortInt32(a []int32) {
	n := len(a)
	p := parallel.Procs()
	if n < 1<<14 || p == 1 {
		SortInt32Small(a)
		return
	}
	nBuckets := p * p
	if nBuckets > 256 {
		nBuckets = 256
	}
	// Oversample: 8 samples per bucket, deterministic positions.
	nSamples := 8 * nBuckets
	samples := make([]int32, nSamples)
	for i := range samples {
		samples[i] = a[(i*2654435761)%n]
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	splitters := make([]int32, nBuckets-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*8]
	}
	// Classify each element to a bucket by binary search on splitters.
	bucketOf := func(v int32) int32 {
		lo, hi := 0, len(splitters)
		for lo < hi {
			mid := (lo + hi) / 2
			if splitters[mid] <= v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	perm, offsets := CountingSortByKey(n, int32(nBuckets), func(i int) int32 {
		return bucketOf(a[i])
	})
	out := make([]int32, n)
	parallel.For(n, func(i int) { out[i] = a[perm[i]] })
	// Sort buckets independently.
	parallel.ForBlock(nBuckets, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			SortInt32Small(out[offsets[b]:offsets[b+1]])
		}
	})
	copy(a, out)
}
