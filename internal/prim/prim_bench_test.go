package prim

import (
	"math/rand"
	"testing"
)

func BenchmarkExclusiveScanInt32(b *testing.B) {
	n := 1 << 20
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i % 7)
	}
	a := make([]int32, n)
	b.SetBytes(int64(4 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a, src)
		ExclusiveScanInt32(a)
	}
}

func BenchmarkPackIndices(b *testing.B) {
	n := 1 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackIndices(n, func(j int) bool { return j%3 == 0 })
	}
}

func BenchmarkCountingSortByKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	nBuckets := int32(1 << 12)
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(int(nBuckets)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountingSortByKey(n, nBuckets, func(j int) int32 { return keys[j] })
	}
}

func BenchmarkSortPairsByKey(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 19
	maxKey := int32(1 << 24)
	srcK := make([]int32, n)
	srcV := make([]int32, n)
	for i := range srcK {
		srcK[i] = int32(rng.Intn(int(maxKey)))
		srcV[i] = int32(i)
	}
	k := make([]int32, n)
	v := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(k, srcK)
		copy(v, srcV)
		SortPairsByKey(k, v, maxKey)
	}
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Hash64(uint64(i))
	}
	_ = sink
}
