package prim

import (
	"sync/atomic"

	"repro/internal/parallel"
)

// CountingSortByKey stably sorts the items [0, n) into buckets given by
// key(i) in [0, nBuckets). It returns the permuted payload produced by
// emit(i) and the bucket offset array of length nBuckets+1.
//
// This is the semisort used by the Euler tour technique: items with equal
// keys become contiguous, and within a bucket the original order is kept.
// Work O(n + nBuckets), span polylogarithmic (two scans plus scatters).
func CountingSortByKey(n int, nBuckets int32, key func(i int) int32) (perm []int32, offsets []int32) {
	return CountingSortByKeyIn(nil, n, nBuckets, key)
}

// CountingSortByKeyIn is CountingSortByKey running on the execution
// context e (nil = default).
func CountingSortByKeyIn(e *parallel.Exec, n int, nBuckets int32, key func(i int) int32) (perm []int32, offsets []int32) {
	return CountingSortByKeyArena(e, n, nBuckets, key, nil)
}

// CountingSortByKeyArena is CountingSortByKeyIn drawing every buffer —
// including the returned perm and offsets, whose ownership passes to the
// caller — from a (nil = plain allocation). Callers on the hot path
// return perm and offsets to the arena when done.
func CountingSortByKeyArena(e *parallel.Exec, n int, nBuckets int32, key func(i int) int32, a Arena) (perm []int32, offsets []int32) {
	offsets = arenaGet(a, int(nBuckets)+1, true)
	counts := offsets[:nBuckets]
	// Parallel histogram with per-block local counters merged by scan.
	p := e.Procs()
	if n < 1<<14 || p == 1 {
		for i := 0; i < n; i++ {
			counts[key(i)]++
		}
		ExclusiveScanInt32In(e, offsets)
		perm = arenaGet(a, n, false)
		cursor := arenaGet(a, int(nBuckets), false)
		copy(cursor, offsets[:nBuckets])
		for i := 0; i < n; i++ {
			k := key(i)
			perm[cursor[k]] = int32(i)
			cursor[k]++
		}
		arenaPut(a, cursor)
		return perm, offsets
	}
	// Parallel path: per-block histograms, column-major scan for stability.
	nb := 4 * p
	blockSz := (n + nb - 1) / nb
	nb = (n + blockSz - 1) / blockSz
	hist := arenaGet(a, nb*int(nBuckets), true)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*blockSz, (b+1)*blockSz
			if hi > n {
				hi = n
			}
			h := hist[b*int(nBuckets) : (b+1)*int(nBuckets)]
			for i := lo; i < hi; i++ {
				h[key(i)]++
			}
		}
	})
	// offsets: total per bucket, then exclusive scan.
	e.For(int(nBuckets), func(k int) {
		var s int32
		for b := 0; b < nb; b++ {
			s += hist[b*int(nBuckets)+k]
		}
		counts[k] = s
	})
	ExclusiveScanInt32In(e, offsets)
	// Per (block, bucket) start = offsets[bucket] + sum of this bucket over
	// earlier blocks. Computed by a per-bucket sequential pass in parallel
	// over buckets (column scan).
	e.For(int(nBuckets), func(k int) {
		s := offsets[k]
		for b := 0; b < nb; b++ {
			c := hist[b*int(nBuckets)+k]
			hist[b*int(nBuckets)+k] = s
			s += c
		}
	})
	perm = arenaGet(a, n, false)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*blockSz, (b+1)*blockSz
			if hi > n {
				hi = n
			}
			cur := hist[b*int(nBuckets) : (b+1)*int(nBuckets)]
			for i := lo; i < hi; i++ {
				k := key(i)
				perm[cur[k]] = int32(i)
				cur[k]++
			}
		}
	})
	arenaPut(a, hist)
	return perm, offsets
}

// SortPairsByKey sorts (keys, vals) in place by key using a parallel LSD
// radix sort (11-bit digits). Keys must be non-negative. maxKey is an upper
// bound (exclusive) on key values.
func SortPairsByKey(keys, vals []int32, maxKey int32) {
	n := len(keys)
	if n != len(vals) {
		panic("prim.SortPairsByKey: length mismatch")
	}
	if n <= 1 {
		return
	}
	const radixBits = 11
	const radix = 1 << radixBits
	tmpK := make([]int32, n)
	tmpV := make([]int32, n)
	srcK, srcV := keys, vals
	dstK, dstV := tmpK, tmpV
	for shift := 0; shift < 31 && (int64(1)<<shift) < int64(maxKey); shift += radixBits {
		sh := shift
		perm, _ := CountingSortByKey(n, radix, func(i int) int32 {
			return (srcK[i] >> sh) & (radix - 1)
		})
		parallel.For(n, func(i int) {
			j := perm[i]
			dstK[i] = srcK[j]
			dstV[i] = srcV[j]
		})
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &keys[0] {
		parallel.Copy(keys, srcK)
		parallel.Copy(vals, srcV)
	}
}

// MaxInt32 returns the maximum of a, or def when a is empty.
func MaxInt32(a []int32, def int32) int32 {
	return MaxInt32In(nil, a, def)
}

// MaxInt32In is MaxInt32 running on the execution context e.
func MaxInt32In(e *parallel.Exec, a []int32, def int32) int32 {
	return parallel.ReduceIn(e, len(a), parallel.DefaultGrain, def,
		func(lo, hi int) int32 {
			m := def
			for i := lo; i < hi; i++ {
				if a[i] > m {
					m = a[i]
				}
			}
			return m
		},
		func(x, y int32) int32 {
			if x > y {
				return x
			}
			return y
		})
}

// WriteMin atomically sets *p = min(*p, v). Returns true if it wrote.
func WriteMin(p *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(p)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(p, old, v) {
			return true
		}
	}
}

// WriteMax atomically sets *p = max(*p, v). Returns true if it wrote.
func WriteMax(p *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(p)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt32(p, old, v) {
			return true
		}
	}
}
