package prim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestExclusiveScanInt32Small(t *testing.T) {
	a := []int32{3, 1, 4, 1, 5}
	total := ExclusiveScanInt32(a)
	want := []int32{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestExclusiveScanInt32Empty(t *testing.T) {
	if got := ExclusiveScanInt32(nil); got != 0 {
		t.Fatalf("scan(nil) = %d", got)
	}
}

func TestExclusiveScanInt32Large(t *testing.T) {
	n := 100003
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 7)
	}
	ref := make([]int32, n)
	var s int32
	for i := range a {
		ref[i] = s
		s += a[i]
	}
	total := ExclusiveScanInt32(a)
	if total != s {
		t.Fatalf("total = %d, want %d", total, s)
	}
	for i := range a {
		if a[i] != ref[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], ref[i])
		}
	}
}

func TestExclusiveScanInt64Large(t *testing.T) {
	n := 70001
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i%11) - 3 // include negatives
	}
	ref := make([]int64, n)
	var s int64
	for i := range a {
		ref[i] = s
		s += a[i]
	}
	total := ExclusiveScanInt64(a)
	if total != s {
		t.Fatalf("total = %d, want %d", total, s)
	}
	for i := range a {
		if a[i] != ref[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], ref[i])
		}
	}
}

func TestScanQuick(t *testing.T) {
	f := func(xs []int32) bool {
		a := make([]int32, len(xs))
		for i, x := range xs {
			a[i] = x % 100
		}
		ref := make([]int32, len(a))
		var s int32
		for i := range a {
			ref[i] = s
			s += a[i]
		}
		got := ExclusiveScanInt32(a)
		if got != s {
			return false
		}
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackInt32(t *testing.T) {
	src := make([]int32, 50000)
	for i := range src {
		src[i] = int32(i)
	}
	got := PackInt32(src, func(i int) bool { return i%3 == 0 })
	for j, v := range got {
		if v != int32(3*j) {
			t.Fatalf("got[%d] = %d, want %d", j, v, 3*j)
		}
	}
	if len(got) != (50000+2)/3 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestPackInt32Edge(t *testing.T) {
	if got := PackInt32(nil, func(int) bool { return true }); got != nil {
		t.Fatalf("pack(nil) = %v", got)
	}
	got := PackInt32([]int32{9}, func(int) bool { return true })
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("pack single = %v", got)
	}
	got = PackInt32([]int32{9}, func(int) bool { return false })
	if len(got) != 0 {
		t.Fatalf("pack none = %v", got)
	}
}

func TestPackIndices(t *testing.T) {
	idx := PackIndices(1000, func(i int) bool { return i%10 == 7 })
	if len(idx) != 100 {
		t.Fatalf("len = %d, want 100", len(idx))
	}
	for j, v := range idx {
		if v != int32(10*j+7) {
			t.Fatalf("idx[%d] = %d", j, v)
		}
	}
}

func TestCountOnes(t *testing.T) {
	if c := CountOnes(100000, func(i int) bool { return i%2 == 0 }); c != 50000 {
		t.Fatalf("CountOnes = %d", c)
	}
	if c := CountOnes(0, func(int) bool { return true }); c != 0 {
		t.Fatalf("CountOnes(0) = %d", c)
	}
}

func checkCountingSort(t *testing.T, n int, nBuckets int32, keys []int32) {
	t.Helper()
	perm, offsets := CountingSortByKey(n, nBuckets, func(i int) int32 { return keys[i] })
	if len(perm) != n || len(offsets) != int(nBuckets)+1 {
		t.Fatalf("sizes: perm=%d offsets=%d", len(perm), len(offsets))
	}
	if offsets[0] != 0 || offsets[nBuckets] != int32(n) {
		t.Fatalf("offsets endpoints: %d %d", offsets[0], offsets[nBuckets])
	}
	seen := make([]bool, n)
	for b := int32(0); b < nBuckets; b++ {
		prev := int32(-1)
		for j := offsets[b]; j < offsets[b+1]; j++ {
			i := perm[j]
			if keys[i] != b {
				t.Fatalf("bucket %d contains item with key %d", b, keys[i])
			}
			if seen[i] {
				t.Fatalf("item %d appears twice", i)
			}
			seen[i] = true
			if i <= prev {
				t.Fatalf("bucket %d not stable: %d after %d", b, i, prev)
			}
			prev = i
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d missing", i)
		}
	}
}

func TestCountingSortSmall(t *testing.T) {
	keys := []int32{2, 0, 1, 2, 0, 0, 1}
	checkCountingSort(t, len(keys), 3, keys)
}

func TestCountingSortLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200000
	nBuckets := int32(997)
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(int(nBuckets)))
	}
	checkCountingSort(t, n, nBuckets, keys)
}

func TestCountingSortSingleBucket(t *testing.T) {
	n := 5000
	keys := make([]int32, n)
	checkCountingSort(t, n, 1, keys)
}

func TestCountingSortEmpty(t *testing.T) {
	perm, offsets := CountingSortByKey(0, 5, func(int) int32 { return 0 })
	if len(perm) != 0 || len(offsets) != 6 {
		t.Fatalf("empty sort: perm=%v offsets=%v", perm, offsets)
	}
}

func TestSortPairsByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100000
	maxKey := int32(1 << 20)
	keys := make([]int32, n)
	vals := make([]int32, n)
	type pair struct{ k, v int32 }
	ref := make([]pair, n)
	for i := range keys {
		keys[i] = int32(rng.Intn(int(maxKey)))
		vals[i] = int32(i)
		ref[i] = pair{keys[i], vals[i]}
	}
	SortPairsByKey(keys, vals, maxKey)
	sort.Slice(ref, func(a, b int) bool {
		if ref[a].k != ref[b].k {
			return ref[a].k < ref[b].k
		}
		return ref[a].v < ref[b].v // radix sort is stable; vals were increasing
	})
	for i := 0; i < n; i++ {
		if keys[i] != ref[i].k || vals[i] != ref[i].v {
			t.Fatalf("at %d: got (%d,%d) want (%d,%d)", i, keys[i], vals[i], ref[i].k, ref[i].v)
		}
	}
}

func TestSortPairsTrivial(t *testing.T) {
	SortPairsByKey(nil, nil, 10)
	k := []int32{5}
	v := []int32{6}
	SortPairsByKey(k, v, 10)
	if k[0] != 5 || v[0] != 6 {
		t.Fatal("single-element sort corrupted data")
	}
}

func TestMaxInt32(t *testing.T) {
	if m := MaxInt32(nil, -1); m != -1 {
		t.Fatalf("MaxInt32(nil) = %d", m)
	}
	a := make([]int32, 100000)
	for i := range a {
		a[i] = int32(i % 999)
	}
	a[77777] = 123456
	if m := MaxInt32(a, 0); m != 123456 {
		t.Fatalf("MaxInt32 = %d", m)
	}
}

func TestWriteMinMax(t *testing.T) {
	var x int32 = 10
	if !WriteMin(&x, 5) || x != 5 {
		t.Fatalf("WriteMin failed: x=%d", x)
	}
	if WriteMin(&x, 7) {
		t.Fatal("WriteMin should not write larger value")
	}
	if !WriteMax(&x, 9) || x != 9 {
		t.Fatalf("WriteMax failed: x=%d", x)
	}
	if WriteMax(&x, 3) {
		t.Fatal("WriteMax should not write smaller value")
	}
}

func TestWriteMinConcurrent(t *testing.T) {
	var x int32 = 1 << 30
	parallel.For(100000, func(i int) {
		WriteMin(&x, int32(i))
	})
	if x != 0 {
		t.Fatalf("concurrent WriteMin = %d, want 0", x)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(2)
	same := true
	a2 := NewRNG(1)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	if r.Next() == s.Next() {
		// One collision is possible but wildly unlikely for splitmix64.
		t.Fatal("split stream identical to parent")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Crude avalanche check: flipping one input bit changes ~half the bits.
	var totalFlips int
	for i := 0; i < 64; i++ {
		d := Hash64(0) ^ Hash64(1<<uint(i))
		pop := 0
		for d != 0 {
			d &= d - 1
			pop++
		}
		totalFlips += pop
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("poor avalanche: avg %.1f bits flipped", avg)
	}
}
