package prim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortInt32Small(t *testing.T) {
	a := []int32{5, 3, 1, 4, 2}
	SortInt32(a)
	for i := int32(0); i < 5; i++ {
		if a[i] != i+1 {
			t.Fatalf("a = %v", a)
		}
	}
}

func TestSortInt32Empty(t *testing.T) {
	SortInt32(nil)
	SortInt32([]int32{})
	a := []int32{7}
	SortInt32(a)
	if a[0] != 7 {
		t.Fatal("singleton corrupted")
	}
}

func TestSortInt32LargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 17
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1<<30)) - (1 << 29)
	}
	ref := append([]int32(nil), a...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	SortInt32(a)
	for i := range a {
		if a[i] != ref[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, a[i], ref[i])
		}
	}
}

func TestSortInt32ManyDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 16
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(4)) // heavy duplication stresses splitters
	}
	SortInt32(a)
	for i := 1; i < n; i++ {
		if a[i] < a[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortInt32AlreadySorted(t *testing.T) {
	n := 1 << 16
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i)
	}
	SortInt32(a)
	for i := range a {
		if a[i] != int32(i) {
			t.Fatal("sorted input corrupted")
		}
	}
}

func TestSortInt32Quick(t *testing.T) {
	f := func(xs []int32) bool {
		a := append([]int32(nil), xs...)
		ref := append([]int32(nil), xs...)
		SortInt32(a)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range a {
			if a[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortInt32(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 20
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(rng.Intn(1 << 30))
	}
	a := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(a, src)
		SortInt32(a)
	}
}
