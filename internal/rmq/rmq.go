// Package rmq implements a space-efficient parallel range-minimum /
// range-maximum structure over an int32 array.
//
// The paper's Tagging step computes low[v]/high[v] with n 1-D range queries
// over the Euler-tour-ordered w1/w2 arrays (Sec. 4.1). A plain sparse table
// is O(n log n) words; to keep the whole algorithm O(n) auxiliary space we
// use the standard block decomposition: the array is cut into blocks of size
// B, each block stores prefix- and suffix-minima, and a sparse table is built
// over the n/B block minima. Queries are O(1); construction is O(n) work and
// O(log n) span (parallel over blocks and table levels).
package rmq

import (
	"math/bits"

	"repro/internal/parallel"
	"repro/internal/prim"
)

// blockSize is the block length B. With B = 64 the sparse table over blocks
// costs (n/64)·log2(n/64) words, well under n for any realistic n.
const blockSize = 64

// Min answers range-minimum queries over a fixed array.
type Min struct {
	a      []int32
	prefix []int32 // prefix[i] = min of a[blockStart(i) .. i]
	suffix []int32 // suffix[i] = min of a[i .. blockEnd(i))
	table  [][]int32
}

// NewMin builds a range-minimum structure over a. The array is retained
// (not copied) and must not change while queries are made.
func NewMin(a []int32) *Min { return NewMinIn(nil, a) }

// NewMinIn is NewMin building on the execution context e (nil = default).
func NewMinIn(e *parallel.Exec, a []int32) *Min {
	return NewMinArena(e, a, nil)
}

// NewMinArena is NewMinIn drawing the prefix/suffix/table arrays from the
// arena ar (nil = plain allocation). An arena-built structure must be
// released with Free once the last query has completed.
func NewMinArena(e *parallel.Exec, a []int32, ar prim.Arena) *Min {
	m := &Min{a: a}
	m.build(e, lessMin, ar)
	return m
}

// Free returns the structure's internal arrays to ar and invalidates the
// structure; it must only be called on arena-built structures, with the
// arena they were built from, after their last query.
func (m *Min) Free(ar prim.Arena) {
	if m.prefix == nil {
		return
	}
	bufs := append(make([][]int32, 0, len(m.table)+2), m.prefix, m.suffix)
	bufs = append(bufs, m.table...)
	ar.PutInt32(bufs...)
	m.a, m.prefix, m.suffix, m.table = nil, nil, nil, nil
}

// Max answers range-maximum queries over a fixed array.
type Max struct {
	Min
}

// NewMax builds a range-maximum structure over a.
func NewMax(a []int32) *Max { return NewMaxIn(nil, a) }

// NewMaxIn is NewMax building on the execution context e (nil = default).
func NewMaxIn(e *parallel.Exec, a []int32) *Max {
	return NewMaxArena(e, a, nil)
}

// NewMaxArena is NewMaxIn drawing the internal arrays from the arena ar
// (nil = plain allocation); release with Free after the last query.
func NewMaxArena(e *parallel.Exec, a []int32, ar prim.Arena) *Max {
	m := &Max{}
	m.a = a
	m.build(e, lessMax, ar)
	return m
}

func lessMin(x, y int32) bool { return x < y }
func lessMax(x, y int32) bool { return x > y }

// getBuf returns a length-n buffer from ar, or a plain allocation when ar
// is nil. Every element is overwritten by build, so no zeroing is needed.
func getBuf(ar prim.Arena, n int) []int32 {
	if ar == nil {
		return make([]int32, n)
	}
	return ar.GetInt32(n)
}

func (m *Min) build(e *parallel.Exec, better func(x, y int32) bool, ar prim.Arena) {
	n := len(m.a)
	if n == 0 {
		return
	}
	nb := (n + blockSize - 1) / blockSize
	m.prefix = getBuf(ar, n)
	m.suffix = getBuf(ar, n)
	blockBest := getBuf(ar, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * blockSize
			hi := lo + blockSize
			if hi > n {
				hi = n
			}
			best := m.a[lo]
			for i := lo; i < hi; i++ {
				if better(m.a[i], best) {
					best = m.a[i]
				}
				m.prefix[i] = best
			}
			best = m.a[hi-1]
			for i := hi - 1; i >= lo; i-- {
				if better(m.a[i], best) {
					best = m.a[i]
				}
				m.suffix[i] = best
			}
			blockBest[b] = m.prefix[hi-1]
		}
	})
	levels := 1
	if nb > 1 {
		levels = bits.Len(uint(nb)) // floor(log2(nb)) + 1
	}
	m.table = make([][]int32, levels)
	m.table[0] = blockBest
	for l := 1; l < levels; l++ {
		span := 1 << l
		width := nb - span + 1
		if width <= 0 {
			m.table = m.table[:l]
			break
		}
		cur := getBuf(ar, width)
		prev := m.table[l-1]
		half := span / 2
		e.ForGrain(width, 2048, func(i int) {
			x, y := prev[i], prev[i+half]
			if better(y, x) {
				x = y
			}
			cur[i] = x
		})
		m.table[l] = cur
	}
}

// Query returns the minimum of a[lo..hi] (inclusive on both ends) for Min.
func (m *Min) Query(lo, hi int) int32 { return m.query(lo, hi, lessMin) }

// Query returns the maximum of a[lo..hi] (inclusive on both ends) for Max.
func (m *Max) Query(lo, hi int) int32 { return m.query(lo, hi, lessMax) }

func (m *Min) query(lo, hi int, better func(x, y int32) bool) int32 {
	if lo > hi {
		panic("rmq: empty query range")
	}
	bl, bh := lo/blockSize, hi/blockSize
	if bl == bh {
		// Within a single block: linear scan of at most blockSize elements
		// would be O(B); instead combine suffix(lo) limited by hi using a
		// short scan. B is a small constant so this stays O(B) worst case,
		// but the common full-prefix/suffix cases below are O(1).
		best := m.a[lo]
		for i := lo + 1; i <= hi; i++ {
			if better(m.a[i], best) {
				best = m.a[i]
			}
		}
		return best
	}
	best := m.suffix[lo] // rest of lo's block
	if better(m.prefix[hi], best) {
		best = m.prefix[hi] // start of hi's block
	}
	if bh-bl >= 2 {
		l := bits.Len(uint(bh-bl-1)) - 1 // floor(log2(#middle blocks))
		t := m.table[l]
		x := t[bl+1]
		y := t[bh-(1<<l)]
		if better(y, x) {
			x = y
		}
		if better(x, best) {
			best = x
		}
	}
	return best
}
