package rmq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMin(a []int32, lo, hi int) int32 {
	m := a[lo]
	for i := lo + 1; i <= hi; i++ {
		if a[i] < m {
			m = a[i]
		}
	}
	return m
}

func naiveMax(a []int32, lo, hi int) int32 {
	m := a[lo]
	for i := lo + 1; i <= hi; i++ {
		if a[i] > m {
			m = a[i]
		}
	}
	return m
}

func TestMinExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 63, 64, 65, 127, 130, 257} {
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(100) - 50)
		}
		q := NewMin(a)
		for lo := 0; lo < n; lo++ {
			for hi := lo; hi < n; hi++ {
				if got, want := q.Query(lo, hi), naiveMin(a, lo, hi); got != want {
					t.Fatalf("n=%d min[%d,%d] = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestMaxExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 64, 129, 300} {
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(1000))
		}
		q := NewMax(a)
		for lo := 0; lo < n; lo++ {
			for hi := lo; hi < n; hi++ {
				if got, want := q.Query(lo, hi), naiveMax(a, lo, hi); got != want {
					t.Fatalf("n=%d max[%d,%d] = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestMinRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 17
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1 << 30))
	}
	q := NewMin(a)
	for trial := 0; trial < 5000; trial++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		if got, want := q.Query(lo, hi), naiveMin(a, lo, hi); got != want {
			t.Fatalf("min[%d,%d] = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestMaxRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 100000
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1<<30)) - (1 << 29)
	}
	q := NewMax(a)
	for trial := 0; trial < 5000; trial++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		if got, want := q.Query(lo, hi), naiveMax(a, lo, hi); got != want {
			t.Fatalf("max[%d,%d] = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSingleElement(t *testing.T) {
	q := NewMin([]int32{42})
	if q.Query(0, 0) != 42 {
		t.Fatal("single element query failed")
	}
}

func TestFullRange(t *testing.T) {
	n := 10000
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(n - i)
	}
	a[n/2] = -5
	if got := NewMin(a).Query(0, n-1); got != -5 {
		t.Fatalf("full range min = %d", got)
	}
	a[n/3] = 1 << 30
	if got := NewMax(a).Query(0, n-1); got != 1<<30 {
		t.Fatalf("full range max = %d", got)
	}
}

func TestEmptyArray(t *testing.T) {
	q := NewMin(nil)
	if q == nil {
		t.Fatal("NewMin(nil) returned nil")
	}
}

func TestEmptyRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on lo > hi")
		}
	}()
	NewMin([]int32{1, 2, 3}).Query(2, 1)
}

func TestMinQuick(t *testing.T) {
	f := func(xs []int32, loU, spanU uint16) bool {
		if len(xs) == 0 {
			return true
		}
		lo := int(loU) % len(xs)
		hi := lo + int(spanU)%(len(xs)-lo)
		q := NewMin(xs)
		return q.Query(lo, hi) == naiveMin(xs, lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockBoundaryRanges(t *testing.T) {
	// Ranges aligned exactly at block boundaries exercise the "no middle
	// blocks" and "one middle block" sparse-table paths.
	n := blockSize * 5
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 37)
	}
	q := NewMin(a)
	cases := [][2]int{
		{0, blockSize - 1},
		{0, blockSize},
		{blockSize, 2*blockSize - 1},
		{blockSize - 1, blockSize},
		{0, 2*blockSize - 1},
		{0, 3*blockSize - 1},
		{1, n - 2},
		{blockSize / 2, 4*blockSize + 3},
	}
	for _, c := range cases {
		if got, want := q.Query(c[0], c[1]), naiveMin(a, c[0], c[1]); got != want {
			t.Fatalf("range [%d,%d]: got %d want %d", c[0], c[1], got, want)
		}
	}
}
