package rmq

import (
	"math/rand"
	"testing"
)

func benchArray(n int) []int32 {
	rng := rand.New(rand.NewSource(1))
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(rng.Intn(1 << 30))
	}
	return a
}

func BenchmarkBuildMin(b *testing.B) {
	a := benchArray(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMin(a)
	}
}

func BenchmarkQueryMin(b *testing.B) {
	a := benchArray(1 << 20)
	q := NewMin(a)
	rng := rand.New(rand.NewSource(2))
	los := make([]int, 1024)
	his := make([]int, 1024)
	for i := range los {
		los[i] = rng.Intn(len(a))
		his[i] = los[i] + rng.Intn(len(a)-los[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 1023
		q.Query(los[k], his[k])
	}
}

func BenchmarkQuerySubtreeShaped(b *testing.B) {
	// FAST-BCC's queries are nested intervals (subtrees); short ranges
	// dominate. Mimic that mix: 90% short (within a block), 10% long.
	a := benchArray(1 << 20)
	q := NewMin(a)
	rng := rand.New(rand.NewSource(3))
	los := make([]int, 1024)
	his := make([]int, 1024)
	for i := range los {
		los[i] = rng.Intn(len(a) - 64)
		if i%10 == 0 {
			his[i] = los[i] + rng.Intn(len(a)-los[i])
		} else {
			his[i] = los[i] + rng.Intn(48)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 1023
		q.Query(los[k], his[k])
	}
}
