package ldd

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// The paper's span separation, stated structurally rather than as wall
// time: BFS-based rooting needs Θ(D) rounds, while LDD finishes in
// O(log n / β) rounds regardless of diameter. These tests pin the round
// counts so the polylog-span property cannot silently regress.

func TestChainRoundsAreDiameterIndependent(t *testing.T) {
	for _, n := range []int{10000, 100000, 400000} {
		g := gen.Chain(n)
		r := Decompose(g, Options{Seed: 1})
		// Bound: activation rounds ~ Exp tail (≈ log(n)/β quantile) plus
		// cluster radii of the same order. With β = 0.2 and n ≤ 4·10^5,
		// 60/β = 300 is a comfortable ceiling — and far below D = n-1.
		bound := int(60.0 / 0.2)
		if r.Rounds > bound {
			t.Fatalf("n=%d: %d rounds, want ≤ %d (diameter %d)", n, r.Rounds, bound, n-1)
		}
		if r.Rounds >= n/10 {
			t.Fatalf("rounds %d scale with diameter %d", r.Rounds, n-1)
		}
	}
}

func TestRoundsGrowLogarithmically(t *testing.T) {
	// Doubling n four times should grow rounds by O(1) increments, not
	// multiplicatively.
	prev := 0
	for _, n := range []int{20000, 40000, 80000, 160000} {
		r := Decompose(gen.Chain(n), Options{Seed: 2})
		if prev > 0 && float64(r.Rounds) > 2.0*float64(prev)+20 {
			t.Fatalf("rounds jumped from %d to %d when doubling n", prev, r.Rounds)
		}
		prev = r.Rounds
	}
}

func TestBetaTradesRoundsForCutEdges(t *testing.T) {
	g := gen.Chain(100000)
	small := Decompose(g, Options{Seed: 3, Beta: 0.05})
	large := Decompose(g, Options{Seed: 3, Beta: 0.8})
	// Larger beta → more clusters (more cut edges) but fewer rounds.
	if large.Rounds >= small.Rounds {
		t.Fatalf("beta=0.8 rounds %d, beta=0.05 rounds %d — want fewer", large.Rounds, small.Rounds)
	}
	countClusters := func(r *Result) int {
		c := 0
		for v, ctr := range r.Center {
			if ctr == int32(v) {
				c++
			}
		}
		return c
	}
	if countClusters(large) <= countClusters(small) {
		t.Fatal("larger beta must create more clusters")
	}
}

func TestRoundsBoundIsTheoryConsistent(t *testing.T) {
	// Rounds should be within a small constant of (maxShift + max radius),
	// both O(log n / beta); check against 4·ln(n)/beta.
	n := 250000
	beta := 0.2
	r := Decompose(gen.Grid2D(500, 500, true), Options{Seed: 4, Beta: beta})
	bound := int(4 * math.Log(float64(n)) / beta)
	if r.Rounds > bound {
		t.Fatalf("rounds %d exceed theory-scale bound %d", r.Rounds, bound)
	}
}
