package ldd

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/uf"
)

// validate checks the structural invariants every decomposition must have:
// full coverage, parent edges real and intra-cluster, clusters connected.
func validate(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	n := g.NumVertices()
	if len(r.Center) != n || len(r.Parent) != n {
		t.Fatalf("result sizes wrong: %d %d", len(r.Center), len(r.Parent))
	}
	for v := 0; v < n; v++ {
		c := r.Center[v]
		if c < 0 || int(c) >= n {
			t.Fatalf("vertex %d unassigned (center %d)", v, c)
		}
		if r.Center[c] != c {
			t.Fatalf("center of %d is %d, but %d is not its own center", v, c, c)
		}
		p := r.Parent[v]
		if int32(v) == c {
			if p != -1 {
				t.Fatalf("center %d has parent %d", v, p)
			}
			continue
		}
		if p < 0 || int(p) >= n {
			t.Fatalf("non-center %d has invalid parent %d", v, p)
		}
		if r.Center[p] != c {
			t.Fatalf("parent %d of %d in different cluster", p, v)
		}
		if !g.HasEdge(int32(v), p) {
			t.Fatalf("parent edge (%d,%d) not in graph", v, p)
		}
	}
	// Parent chains reach the center (no cycles).
	for v := 0; v < n; v++ {
		x := int32(v)
		steps := 0
		for r.Parent[x] != -1 {
			x = r.Parent[x]
			steps++
			if steps > n {
				t.Fatalf("parent cycle starting at %d", v)
			}
		}
		if x != r.Center[v] {
			t.Fatalf("parent chain of %d ends at %d, center is %d", v, x, r.Center[v])
		}
	}
}

func TestDecomposeGrid(t *testing.T) {
	g := gen.Grid2D(40, 40, true)
	r := Decompose(g, Options{Seed: 1})
	validate(t, g, r)
}

func TestDecomposeChain(t *testing.T) {
	g := gen.Chain(5000)
	r := Decompose(g, Options{Seed: 2})
	validate(t, g, r)
	if r.Rounds <= 1 {
		t.Fatal("chain should need multiple rounds")
	}
}

func TestDecomposeRMAT(t *testing.T) {
	g := gen.RMAT(12, 8, 3)
	r := Decompose(g, Options{Seed: 3})
	validate(t, g, r)
}

func TestDecomposeDisconnected(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(50), gen.Chain(30), gen.Star(20))
	r := Decompose(g, Options{Seed: 4})
	validate(t, g, r)
	// Clusters never span components.
	comp := uf.NewSeq(g.NumVertices())
	for _, e := range g.Edges() {
		comp.Union(e.U, e.W)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if comp.Find(int32(v)) != comp.Find(r.Center[v]) {
			t.Fatalf("cluster of %d spans components", v)
		}
	}
}

func TestDecomposeIsolatedVertices(t *testing.T) {
	g := graph.MustFromEdges(10, []graph.Edge{{U: 0, W: 1}})
	r := Decompose(g, Options{Seed: 5})
	validate(t, g, r)
	for v := 2; v < 10; v++ {
		if r.Center[v] != int32(v) {
			t.Fatalf("isolated %d not its own center", v)
		}
	}
}

func TestDecomposeEmpty(t *testing.T) {
	g := graph.MustFromEdges(0, nil)
	r := Decompose(g, Options{Seed: 6})
	if len(r.Center) != 0 {
		t.Fatal("empty decomposition wrong")
	}
}

func TestDecomposeLocalSearch(t *testing.T) {
	for _, mk := range []func() *graph.Graph{
		func() *graph.Graph { return gen.Chain(20000) },
		func() *graph.Graph { return gen.Grid2D(60, 60, true) },
		func() *graph.Graph { return gen.RMAT(11, 6, 9) },
	} {
		g := mk()
		r := Decompose(g, Options{Seed: 7, LocalSearch: true})
		validate(t, g, r)
	}
}

func TestLocalSearchFewerRounds(t *testing.T) {
	g := gen.Chain(50000)
	orig := Decompose(g, Options{Seed: 8})
	opt := Decompose(g, Options{Seed: 8, LocalSearch: true})
	if opt.Rounds >= orig.Rounds {
		t.Fatalf("local search rounds %d, plain rounds %d — expected reduction on a chain",
			opt.Rounds, orig.Rounds)
	}
}

func TestDecomposeWithFilter(t *testing.T) {
	// Filter away the middle edge of a chain: the decomposition must never
	// cluster across it.
	n := 1000
	g := gen.Chain(n)
	mid := int32(n / 2)
	filter := func(u, w int32) bool {
		return !(u == mid && w == mid+1) && !(u == mid+1 && w == mid)
	}
	r := Decompose(g, Options{Seed: 9, Filter: filter})
	// All invariants except HasEdge still hold; check cluster side purity.
	for v := 0; v < n; v++ {
		c := r.Center[v]
		if (int32(v) <= mid) != (c <= mid) {
			t.Fatalf("vertex %d clustered across the cut (center %d)", v, c)
		}
	}
}

func TestBetaControlsClusterCount(t *testing.T) {
	g := gen.Grid2D(50, 50, true)
	count := func(beta float64) int {
		r := Decompose(g, Options{Seed: 10, Beta: beta})
		seen := map[int32]bool{}
		for _, c := range r.Center {
			seen[c] = true
		}
		return len(seen)
	}
	small := count(0.05)
	large := count(0.8)
	if small >= large {
		t.Fatalf("beta=0.05 gave %d clusters, beta=0.8 gave %d — want increase", small, large)
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.RMAT(10, 8, 11)
	a := Decompose(g, Options{Seed: 12})
	b := Decompose(g, Options{Seed: 12})
	// Cluster membership may depend on CAS races, but the *partition into
	// connected clusters* invariants must hold for both; centers chosen by
	// shift rounds are deterministic, so cluster counts should be stable
	// within a small tolerance. We check the strong invariant instead.
	validate(t, g, a)
	validate(t, g, b)
}
