// Package ldd implements the low-diameter decomposition of Miller, Peng,
// and Xu ("Parallel graph decompositions using random shifts", SPAA 2013),
// the first half of the LDD-UF-JTB connectivity algorithm the paper proves
// efficient (Thm. 5.1).
//
// Every vertex v draws an exponential shift δ_v ~ Exp(β). Vertex v becomes
// a cluster center at round ⌊δ_v⌋ if nothing has claimed it yet; clusters
// grow by one BFS hop per round. With β = Θ(1/log n) the decomposition has
// O(β m) inter-cluster edges in expectation and every cluster has diameter
// O(log n / β) whp, so the BFS terminates in O(log n / β) rounds.
//
// The optional local-search mode is the optimization the paper evaluates in
// Fig. 6 (hash bag + local search): when the frontier is small, each
// frontier vertex explores multiple hops at once, cutting the number of
// synchronization rounds on large-diameter graphs. This may claim vertices
// before their activation round, which perturbs the decomposition's radius
// guarantee but preserves the only property connectivity needs — every
// cluster induces a connected subgraph. (The next frontier is collected in
// per-block buffers rather than the paper's hash bag; see expandLocal.)
package ldd

import (
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// Result describes a low-diameter decomposition.
type Result struct {
	// Center[v] is the cluster center that claimed v (Center[c] == c for
	// centers). Every value is a valid vertex; isolated vertices are their
	// own centers.
	Center []int32
	// Parent[v] is the BFS tree edge through which v was claimed, or -1
	// for cluster centers. The parent edges of one cluster form a tree
	// spanning the cluster.
	Parent []int32
	// Rounds is the number of synchronization rounds executed.
	Rounds int
}

// Options configures Decompose.
type Options struct {
	// Beta is the exponential rate; larger means smaller clusters and more
	// cut edges. Zero selects the default 0.2.
	Beta float64
	// Seed drives the per-vertex shifts.
	Seed uint64
	// LocalSearch enables multi-hop frontier expansion when the frontier
	// is small (the paper's "Opt" variant, Fig. 6).
	LocalSearch bool
	// Filter, when non-nil, restricts the decomposition to edges with
	// Filter(u, w) true. Used by the Last-CC step to run on the implicit
	// skeleton without materializing it.
	Filter func(u, w int32) bool
	// Scratch, when non-nil, supplies the n-sized temporaries (shifts,
	// frontiers) and backs the returned Center/Parent arrays, whose
	// ownership then passes to the caller.
	Scratch *graph.Scratch
	// Exec is the execution context parallel loops run on (nil = the
	// process-global default).
	Exec *parallel.Exec
}

// localBudget bounds the vertices one frontier vertex may claim per round
// in local-search mode.
const localBudget = 64

// localThreshold: local search kicks in when the frontier is smaller than
// max(n/64, 1024) — small frontiers are where round-synchronization
// overhead dominates.
func localThreshold(n int) int {
	t := n / 64
	if t < 1024 {
		t = 1024
	}
	return t
}

// Decompose computes a low-diameter decomposition of g.
func Decompose(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	if sc == nil {
		// Call-private arena: the frontier buffers round-trip every BFS
		// round (there can be hundreds on high-diameter graphs), so even
		// a one-shot caller wants them recycled. The returned
		// Center/Parent stay arena-backed; ownership passes to the
		// caller and the arena dies with the call, so nothing can ever
		// recycle them out from under the caller.
		sc = graph.NewScratch()
	}
	e := opt.Exec
	beta := opt.Beta
	if beta <= 0 {
		beta = 0.2
	}
	res := &Result{
		Center: sc.GetInt32(n),
		Parent: sc.GetInt32(n),
	}
	parallel.FillIn(e, res.Center, -1)
	parallel.FillIn(e, res.Parent, -1)
	if n == 0 {
		return res
	}
	// Shift rounds: round(v) = floor(Exp(beta)) computed from a hash of
	// (seed, v) so the decomposition is deterministic for a given seed.
	shift := sc.GetInt32(n)
	e.For(n, func(v int) {
		u := prim.Hash64(opt.Seed ^ (uint64(v)*0x9e3779b97f4a7c15 + 0x1234567))
		// Uniform in (0,1]: avoid log(0).
		x := (float64(u>>11) + 1) / (1 << 53)
		shift[v] = int32(math.Floor(-math.Log(x) / beta))
	})
	// Vertices grouped by activation round via counting sort (arena-backed;
	// returned after the round loop).
	maxShift := prim.MaxInt32In(e, shift, 0)
	byRound, roundOff := prim.CountingSortByKeyArena(e, n, maxShift+1, func(i int) int32 { return shift[i] }, sc)
	sc.PutInt32(shift)

	frontier := sc.GetInt32(n)[:0]
	visitedTotal := 0
	round := 0
	for visitedTotal < n {
		// Activate this round's centers (if still unclaimed).
		if round <= int(maxShift) {
			newCenters := byRound[roundOff[round]:roundOff[round+1]]
			for _, v := range newCenters {
				if atomic.CompareAndSwapInt32(&res.Center[v], -1, v) {
					frontier = append(frontier, v)
					visitedTotal++
				}
			}
		}
		if len(frontier) == 0 {
			round++
			continue
		}
		var next []int32
		var claimed int
		if opt.LocalSearch && len(frontier) < localThreshold(n) {
			next, claimed = expandLocal(e, g, frontier, res, opt.Filter, sc)
		} else {
			next, claimed = expandOneHop(e, g, frontier, res, opt.Filter, sc)
		}
		visitedTotal += claimed
		sc.PutInt32(frontier)
		frontier = next
		round++
	}
	sc.PutInt32(frontier, byRound, roundOff)
	res.Rounds = round
	return res
}

// expandOneHop claims the unvisited neighbors of the frontier (one BFS
// hop). It returns the next frontier and the number of newly claimed
// vertices (equal here, but not in local-search mode).
//
// The next frontier is collected into a single arena buffer through an
// atomic write cursor: a claim already pays a CAS on Center, so the extra
// atomic add is far cheaper than the per-block append buffers (and their
// grow reallocations, every round) this used to burn. With one worker the
// blocks run inline in order, so the sequential claim order — and with it
// the whole decomposition — is unchanged.
func expandOneHop(e *parallel.Exec, g *graph.Graph, frontier []int32, res *Result, filter func(u, w int32) bool, sc *graph.Scratch) ([]int32, int) {
	next := sc.GetInt32(len(res.Center)) // claims are bounded by n
	var cur atomic.Int64
	e.ForBlock(len(frontier), 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u := frontier[i]
			c := res.Center[u]
			for _, w := range g.Neighbors(u) {
				if filter != nil && !filter(u, w) {
					continue
				}
				if atomic.LoadInt32(&res.Center[w]) == -1 &&
					atomic.CompareAndSwapInt32(&res.Center[w], -1, c) {
					res.Parent[w] = u
					next[cur.Add(1)-1] = w
				}
			}
		}
	})
	claimed := int(cur.Load())
	return next[:claimed], claimed
}

// expandLocal lets each frontier vertex claim up to localBudget vertices by
// a depth-limited local walk. Deferred vertices (walks whose budget ran
// out) join the next frontier together with the walk boundary, so the claim
// count is tracked separately from the next frontier size.
//
// The paper's version collects the next frontier in a parallel hash bag
// (package hashbag) because its edge-parallel claiming can insert a vertex
// twice. Here every vertex is claimed by exactly one CAS winner and only
// its claimer can defer it, so duplicates are impossible and one shared
// cursor-collected buffer (same technique as expandOneHop) is strictly
// cheaper; DESIGN.md records the substitution. The next frontier holds
// deferred walk vertices as well as the walk boundary, so its size is
// bounded by claims + |frontier|.
func expandLocal(e *parallel.Exec, g *graph.Graph, frontier []int32, res *Result, filter func(u, w int32) bool, sc *graph.Scratch) ([]int32, int) {
	next := sc.GetInt32(len(res.Center) + len(frontier))
	var cur atomic.Int64
	var totalClaimed atomic.Int64
	e.ForBlock(len(frontier), 4, func(lo, hi int) {
		stack := make([]int32, 0, localBudget)
		blockClaimed := 0
		for i := lo; i < hi; i++ {
			u := frontier[i]
			c := res.Center[u]
			stack = append(stack[:0], u)
			claimed := 0
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if claimed >= localBudget {
					// Budget exhausted: defer x to the next round.
					next[cur.Add(1)-1] = x
					continue
				}
				done := true
				for _, w := range g.Neighbors(x) {
					if filter != nil && !filter(x, w) {
						continue
					}
					if claimed >= localBudget {
						done = false // x may have unclaimed neighbors left
						break
					}
					if atomic.LoadInt32(&res.Center[w]) == -1 &&
						atomic.CompareAndSwapInt32(&res.Center[w], -1, c) {
						res.Parent[w] = x
						claimed++
						stack = append(stack, w)
					}
				}
				if !done {
					next[cur.Add(1)-1] = x
				}
			}
			blockClaimed += claimed
		}
		totalClaimed.Add(int64(blockClaimed))
	})
	return next[:cur.Load()], int(totalClaimed.Load())
}
