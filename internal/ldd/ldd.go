// Package ldd implements the low-diameter decomposition of Miller, Peng,
// and Xu ("Parallel graph decompositions using random shifts", SPAA 2013),
// the first half of the LDD-UF-JTB connectivity algorithm the paper proves
// efficient (Thm. 5.1).
//
// Every vertex v draws an exponential shift δ_v ~ Exp(β). Vertex v becomes
// a cluster center at round ⌊δ_v⌋ if nothing has claimed it yet; clusters
// grow by one BFS hop per round. With β = Θ(1/log n) the decomposition has
// O(β m) inter-cluster edges in expectation and every cluster has diameter
// O(log n / β) whp, so the BFS terminates in O(log n / β) rounds.
//
// The optional local-search mode is the optimization the paper evaluates in
// Fig. 6 (hash bag + local search): when the frontier is small, each
// frontier vertex explores multiple hops at once, cutting the number of
// synchronization rounds on large-diameter graphs. This may claim vertices
// before their activation round, which perturbs the decomposition's radius
// guarantee but preserves the only property connectivity needs — every
// cluster induces a connected subgraph. (The next frontier is collected in
// per-block buffers rather than the paper's hash bag; see expandLocal.)
package ldd

import (
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// Result describes a low-diameter decomposition.
type Result struct {
	// Center[v] is the cluster center that claimed v (Center[c] == c for
	// centers). Every value is a valid vertex; isolated vertices are their
	// own centers.
	Center []int32
	// Parent[v] is the BFS tree edge through which v was claimed, or -1
	// for cluster centers. The parent edges of one cluster form a tree
	// spanning the cluster.
	Parent []int32
	// Rounds is the number of synchronization rounds executed.
	Rounds int
}

// Options configures Decompose.
type Options struct {
	// Beta is the exponential rate; larger means smaller clusters and more
	// cut edges. Zero selects the default 0.2.
	Beta float64
	// Seed drives the per-vertex shifts.
	Seed uint64
	// LocalSearch enables multi-hop frontier expansion when the frontier
	// is small (the paper's "Opt" variant, Fig. 6).
	LocalSearch bool
	// Filter, when non-nil, restricts the decomposition to edges with
	// Filter(u, w) true. Used by the Last-CC step to run on the implicit
	// skeleton without materializing it.
	Filter func(u, w int32) bool
	// Scratch, when non-nil, supplies the n-sized temporaries (shifts,
	// frontiers) and backs the returned Center/Parent arrays, whose
	// ownership then passes to the caller.
	Scratch *graph.Scratch
	// Exec is the execution context parallel loops run on (nil = the
	// process-global default).
	Exec *parallel.Exec
}

// localBudget bounds the vertices one frontier vertex may claim per round
// in local-search mode.
const localBudget = 64

// localThreshold: local search kicks in when the frontier is smaller than
// max(n/64, 1024) — small frontiers are where round-synchronization
// overhead dominates.
func localThreshold(n int) int {
	t := n / 64
	if t < 1024 {
		t = 1024
	}
	return t
}

// Decompose computes a low-diameter decomposition of g.
func Decompose(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	e := opt.Exec
	beta := opt.Beta
	if beta <= 0 {
		beta = 0.2
	}
	res := &Result{
		Center: sc.GetInt32(n),
		Parent: sc.GetInt32(n),
	}
	parallel.FillIn(e, res.Center, -1)
	parallel.FillIn(e, res.Parent, -1)
	if n == 0 {
		return res
	}
	// Shift rounds: round(v) = floor(Exp(beta)) computed from a hash of
	// (seed, v) so the decomposition is deterministic for a given seed.
	shift := sc.GetInt32(n)
	e.For(n, func(v int) {
		u := prim.Hash64(opt.Seed ^ (uint64(v)*0x9e3779b97f4a7c15 + 0x1234567))
		// Uniform in (0,1]: avoid log(0).
		x := (float64(u>>11) + 1) / (1 << 53)
		shift[v] = int32(math.Floor(-math.Log(x) / beta))
	})
	// Vertices grouped by activation round via counting sort.
	maxShift := prim.MaxInt32In(e, shift, 0)
	byRound, roundOff := prim.CountingSortByKeyIn(e, n, maxShift+1, func(i int) int32 { return shift[i] })
	sc.PutInt32(shift)

	frontier := sc.GetInt32(n)[:0]
	visitedTotal := 0
	round := 0
	for visitedTotal < n {
		// Activate this round's centers (if still unclaimed).
		if round <= int(maxShift) {
			newCenters := byRound[roundOff[round]:roundOff[round+1]]
			for _, v := range newCenters {
				if atomic.CompareAndSwapInt32(&res.Center[v], -1, v) {
					frontier = append(frontier, v)
					visitedTotal++
				}
			}
		}
		if len(frontier) == 0 {
			round++
			continue
		}
		var next []int32
		var claimed int
		if opt.LocalSearch && len(frontier) < localThreshold(n) {
			next, claimed = expandLocal(e, g, frontier, res, opt.Filter, sc)
		} else {
			next, claimed = expandOneHop(e, g, frontier, res, opt.Filter, sc)
		}
		visitedTotal += claimed
		sc.PutInt32(frontier)
		frontier = next
		round++
	}
	sc.PutInt32(frontier)
	res.Rounds = round
	return res
}

// expandOneHop claims the unvisited neighbors of the frontier (one BFS
// hop). It returns the next frontier and the number of newly claimed
// vertices (equal here, but not in local-search mode).
func expandOneHop(e *parallel.Exec, g *graph.Graph, frontier []int32, res *Result, filter func(u, w int32) bool, sc *graph.Scratch) ([]int32, int) {
	nb := (len(frontier) + 255) / 256
	outs := make([][]int32, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*256, (b+1)*256
			if hi > len(frontier) {
				hi = len(frontier)
			}
			var out []int32
			for i := lo; i < hi; i++ {
				u := frontier[i]
				c := res.Center[u]
				for _, w := range g.Neighbors(u) {
					if filter != nil && !filter(u, w) {
						continue
					}
					if atomic.LoadInt32(&res.Center[w]) == -1 &&
						atomic.CompareAndSwapInt32(&res.Center[w], -1, c) {
						res.Parent[w] = u
						out = append(out, w)
					}
				}
			}
			outs[b] = out
		}
	})
	sizes := make([]int32, nb)
	for b := range outs {
		sizes[b] = int32(len(outs[b]))
	}
	total := prim.ExclusiveScanInt32In(e, sizes)
	next := sc.GetInt32(int(total))
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			copy(next[sizes[b]:], outs[b])
		}
	})
	return next, len(next)
}

// expandLocal lets each frontier vertex claim up to localBudget vertices by
// a depth-limited local walk. Deferred vertices (walks whose budget ran
// out) join the next frontier together with the walk boundary, so the claim
// count is tracked separately from the next frontier size.
//
// The paper's version collects the next frontier in a parallel hash bag
// (package hashbag) because its edge-parallel claiming can insert a vertex
// twice. Here every vertex is claimed by exactly one CAS winner and only
// its claimer can defer it, so duplicates are impossible and plain
// per-block buffers (same technique as expandOneHop) are strictly cheaper;
// DESIGN.md records the substitution.
func expandLocal(e *parallel.Exec, g *graph.Graph, frontier []int32, res *Result, filter func(u, w int32) bool, sc *graph.Scratch) ([]int32, int) {
	nb := (len(frontier) + 3) / 4
	outs := make([][]int32, nb)
	var totalClaimed atomic.Int64
	e.ForBlock(nb, 1, func(blo, bhi int) {
		stack := make([]int32, 0, localBudget)
		for b := blo; b < bhi; b++ {
			lo, hi := b*4, (b+1)*4
			if hi > len(frontier) {
				hi = len(frontier)
			}
			var out []int32
			blockClaimed := 0
			for i := lo; i < hi; i++ {
				u := frontier[i]
				c := res.Center[u]
				stack = append(stack[:0], u)
				claimed := 0
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if claimed >= localBudget {
						// Budget exhausted: defer x to the next round.
						out = append(out, x)
						continue
					}
					done := true
					for _, w := range g.Neighbors(x) {
						if filter != nil && !filter(x, w) {
							continue
						}
						if claimed >= localBudget {
							done = false // x may have unclaimed neighbors left
							break
						}
						if atomic.LoadInt32(&res.Center[w]) == -1 &&
							atomic.CompareAndSwapInt32(&res.Center[w], -1, c) {
							res.Parent[w] = x
							claimed++
							stack = append(stack, w)
						}
					}
					if !done {
						out = append(out, x)
					}
				}
				blockClaimed += claimed
			}
			outs[b] = out
			totalClaimed.Add(int64(blockClaimed))
		}
	})
	sizes := make([]int32, nb)
	for b := range outs {
		sizes[b] = int32(len(outs[b]))
	}
	total := prim.ExclusiveScanInt32In(e, sizes)
	next := sc.GetInt32(int(total))
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			copy(next[sizes[b]:], outs[b])
		}
	})
	return next, int(totalClaimed.Load())
}
