package ldd

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkDecomposeGrid(b *testing.B) {
	g := gen.Grid2D(450, 450, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g, Options{Seed: 7})
	}
}

func BenchmarkDecomposeChain(b *testing.B) {
	g := gen.Chain(200000)
	for _, ls := range []bool{false, true} {
		name := "orig"
		if ls {
			name = "localsearch"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Decompose(g, Options{Seed: 7, LocalSearch: ls})
			}
		})
	}
}

func BenchmarkDecomposeRMAT(b *testing.B) {
	g := gen.RMAT(15, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g, Options{Seed: 7})
	}
}
