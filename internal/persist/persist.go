// Package persist is the durability layer under the serving stack: a
// versioned, checksummed on-disk container for the flat int32 arrays the
// decomposition and query index are made of, and a write-ahead journal
// for the mutation delta queue. ROADMAP item 3's observation drives the
// design — bctree.Index and the CSR graph are already flat int32 arrays,
// so a restart should memory-map them back in O(1) instead of paying a
// rebuild.
//
// # Snapshot container
//
// A snapshot file is a fixed header, a caller-opaque meta blob (JSON in
// practice), a section directory, and the sections — each section one
// little-endian int32 array, 64-byte aligned:
//
//	header  = "FBCCSNP1" | u32 format | u32 sectionCount | u32 metaLen
//	        | u64 fileSize | u32 metaCRC | u32 dirCRC | u32 headerCRC
//	dir     = sectionCount × { u32 id | u32 count | u64 off | u32 crc }
//	section = count × i32 (little-endian), 64-byte aligned
//
// Every checksum is CRC32-C. The header checks itself (headerCRC covers
// the preceding 36 bytes), the directory and meta are checked eagerly on
// open, and each section carries its own CRC so validation can be lazy:
// OpenMapped maps the file and returns immediately; Verify walks the
// sections when the caller wants the integrity proof (at open with
// verify-on-load, or from a background goroutine while the snapshot
// already serves).
//
// Durability follows the classic temp-fsync-rename protocol: WriteSnapshot
// writes path.tmp, fsyncs it, renames it over path, and fsyncs the
// directory, so a crash at any point leaves either the old snapshot or
// the new one — never a torn file. Readers bound every allocation by the
// declared file size before trusting any length field, the same hostile-
// input discipline as internal/wire.
//
// # Journal
//
// The write-ahead journal (Journal) is an append-only file of length-
// prefixed, CRC-framed mutation records. A record is atomic: replay
// either decodes it fully or truncates the file at its start, so a crash
// mid-append loses at most the unacknowledged tail. See journal.go.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultpoint"
)

// Fault-injection points on the snapshot write path (see
// internal/faultpoint): armed faults simulate a failing disk, and the
// store must degrade durability without dropping a query or an
// acknowledgment.
const (
	// FaultWrite fires before the snapshot temp file is written.
	FaultWrite = "persist.write"
	// FaultFsync fires before the temp file is fsynced.
	FaultFsync = "persist.fsync"
	// FaultRename fires before the atomic rename publishes the snapshot.
	FaultRename = "persist.rename"
)

// Format geometry and hostile-input bounds. The caps are far above any
// legitimate snapshot and far below an allocation attack: a lying header
// costs at most one bounded check, never an unbounded make.
const (
	headerSize  = 40
	dirEntrySize = 20
	sectionAlign = 64
	formatVersion = 1

	// MaxMeta bounds the meta blob; MaxSections the directory.
	MaxMeta     = 1 << 20
	MaxSections = 4096
)

var magic = [8]byte{'F', 'B', 'C', 'C', 'S', 'N', 'P', '1'}

// castagnoli is the CRC32-C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every structural snapshot decode error: bad
// magic, bad checksum, truncated file, out-of-bounds directory entry.
var ErrCorrupt = errors.New("snapshot corrupt")

// Section is one named int32 array of a snapshot. IDs are caller-defined
// and must be unique within a snapshot.
type Section struct {
	ID   uint32
	Data []int32
}

// align64 rounds n up to the next 64-byte boundary.
func align64(n int64) int64 { return (n + sectionAlign - 1) &^ (sectionAlign - 1) }

// WriteSnapshot serializes meta and sections into a snapshot container at
// path, using the temp-fsync-rename protocol so the file named path is
// always a complete snapshot (the previous one until the instant of the
// rename, the new one after). It returns the bytes written.
func WriteSnapshot(path string, meta []byte, sections []Section) (int64, error) {
	if len(meta) > MaxMeta {
		return 0, fmt.Errorf("persist: meta blob %d bytes exceeds %d", len(meta), MaxMeta)
	}
	if len(sections) > MaxSections {
		return 0, fmt.Errorf("persist: %d sections exceed %d", len(sections), MaxSections)
	}
	if err := faultpoint.Check(FaultWrite); err != nil {
		return 0, fmt.Errorf("persist: write %s: %w", path, err)
	}

	// Layout: header, meta, aligned directory, aligned sections.
	dirOff := align64(headerSize + int64(len(meta)))
	off := align64(dirOff + int64(len(sections)*dirEntrySize))
	dir := make([]byte, len(sections)*dirEntrySize)
	for i, s := range sections {
		e := dir[i*dirEntrySize:]
		binary.LittleEndian.PutUint32(e[0:4], s.ID)
		binary.LittleEndian.PutUint32(e[4:8], uint32(len(s.Data)))
		binary.LittleEndian.PutUint64(e[8:16], uint64(off))
		binary.LittleEndian.PutUint32(e[16:20], crcInt32s(s.Data))
		off = align64(off + int64(len(s.Data))*4)
	}
	fileSize := off

	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], formatVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(sections)))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(meta)))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(fileSize))
	binary.LittleEndian.PutUint32(hdr[28:32], crc32.Checksum(meta, castagnoli))
	binary.LittleEndian.PutUint32(hdr[32:36], crc32.Checksum(dir, castagnoli))
	binary.LittleEndian.PutUint32(hdr[36:40], crc32.Checksum(hdr[:36], castagnoli))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	// One contiguous write for header+meta, then the aligned directory
	// and sections with explicit zero padding; pwrite-by-offset keeps the
	// padding logic in one place.
	ok := false
	defer func() {
		f.Close()
		if !ok {
			os.Remove(tmp)
		}
	}()
	if _, err := f.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := f.Write(meta); err != nil {
		return 0, err
	}
	if _, err := f.WriteAt(dir, dirOff); err != nil {
		return 0, err
	}
	pos := align64(dirOff + int64(len(dir)))
	for _, s := range sections {
		if _, err := f.WriteAt(int32Bytes(s.Data), pos); err != nil {
			return 0, err
		}
		pos = align64(pos + int64(len(s.Data))*4)
	}
	// The final section may end short of its aligned fileSize; extend so
	// fileSize is literal truth (readers cross-check it against stat).
	if err := f.Truncate(fileSize); err != nil {
		return 0, err
	}
	if err := faultpoint.Check(FaultFsync); err != nil {
		return 0, fmt.Errorf("persist: fsync %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := faultpoint.Check(FaultRename); err != nil {
		return 0, fmt.Errorf("persist: rename %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	ok = true
	syncDir(filepath.Dir(path))
	return fileSize, nil
}

// syncDir fsyncs a directory so a rename into it is durable. Errors are
// ignored: some filesystems refuse directory fsync, and the rename itself
// already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// crcInt32s checksums an int32 array as its little-endian byte image —
// the exact bytes the section occupies on disk.
func crcInt32s(a []int32) uint32 {
	return crc32.Checksum(int32Bytes(a), castagnoli)
}
