package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotDecode hammers the snapshot parser with arbitrary bytes.
// The invariant is the same as internal/wire's: a hostile image may fail
// with ErrCorrupt, but it must never panic, never allocate past the
// declared file size, and a successfully decoded image must verify and
// serve consistent section views.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a small valid snapshot and a few near-misses.
	path := filepath.Join(f.TempDir(), "seed.fbcc")
	if _, err := WriteSnapshot(path, []byte(`{"n":3}`), []Section{
		{ID: 1, Data: []int32{0, 1, 2}},
		{ID: 2, Data: []int32{}},
	}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:headerSize])
	f.Add([]byte("FBCCSNP1"))
	f.Add([]byte{})
	trunc := append([]byte{}, valid...)
	trunc[40] ^= 0x40
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// A decode that succeeds must be internally consistent: sections
		// retrievable by id with the directory's lengths, meta stable.
		for _, s := range m.secs {
			view, ok := m.Section(s.id)
			if !ok {
				t.Fatalf("section %d decoded but not retrievable", s.id)
			}
			if len(view) != s.count {
				t.Fatalf("section %d: view len %d != directory count %d", s.id, len(view), s.count)
			}
		}
		if !bytes.Equal(m.Meta(), m.meta) {
			t.Fatal("Meta() view unstable")
		}
	})
}

// FuzzJournalReplay feeds arbitrary bytes to the journal decoder. The
// decoder must never panic, the reported good length must be a byte
// offset that re-decodes to the same records (truncation idempotence —
// what OpenJournal relies on when it repairs a torn tail), and every
// record's edge counts must be internally consistent.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a valid journal, a torn one, garbage.
	path := filepath.Join(f.TempDir(), "seed.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := j.Append(1, []JEdge{{0, 1}, {2, 3}}, []JEdge{{4, 5}}, false); err != nil {
		f.Fatal(err)
	}
	if _, err := j.Append(2, nil, nil, false); err != nil {
		f.Fatal(err)
	}
	j.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff, 0xff, 0x7f))
	f.Add([]byte("FBCCWAL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen := DecodeJournal(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range [0,%d]", goodLen, len(data))
		}
		if goodLen > 0 && goodLen < journalHeaderSize {
			t.Fatalf("goodLen %d inside the header", goodLen)
		}
		// Truncation idempotence: decoding the good prefix must yield the
		// same records and consume every byte.
		recs2, goodLen2 := DecodeJournal(data[:goodLen])
		if goodLen2 != goodLen || len(recs2) != len(recs) {
			t.Fatalf("re-decode of good prefix: %d records/%d bytes, want %d/%d",
				len(recs2), goodLen2, len(recs), goodLen)
		}
		for i, r := range recs {
			if r.Seq != recs2[i].Seq || len(r.Adds) != len(recs2[i].Adds) || len(r.Dels) != len(recs2[i].Dels) {
				t.Fatalf("record %d differs on re-decode", i)
			}
			if len(r.Adds)+len(r.Dels) > MaxJournalEdges {
				t.Fatalf("record %d exceeds the edge cap", i)
			}
		}
	})
}
