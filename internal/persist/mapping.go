package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"
)

// sectionHdr is one decoded directory entry.
type sectionHdr struct {
	id    uint32
	count int
	off   int64
	crc   uint32
}

// Mapping is an open snapshot: the mapped (or, on platforms without
// mmap, read) file plus its decoded directory. Section views alias the
// mapping's memory, so the mapping is reference-counted: every snapshot
// built over its arrays retains it, and the file is unmapped only when
// the last retainer releases — the on-disk analog of the store's epoch
// discipline for in-memory snapshots.
type Mapping struct {
	data   []byte
	mapped bool // true when data is an mmap (needs munmap on release)
	meta   []byte
	secs   []sectionHdr
	byID   map[uint32]int
	refs   atomic.Int64
}

// OpenMapped opens the snapshot at path, validates its header, meta, and
// directory eagerly, and memory-maps the sections. With verify true every
// section checksum is validated before returning; otherwise section
// validation is deferred to Verify (background) or skipped — the per-
// section CRCs stay available either way. The returned mapping holds one
// reference; Release it when no snapshot built over it remains.
func OpenMapped(path string, verify bool) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	m, err := parseSnapshot(data)
	if err != nil {
		unmapBytes(data, mapped)
		return nil, err
	}
	m.mapped = mapped
	if verify {
		if err := m.Verify(); err != nil {
			m.Release()
			return nil, err
		}
	}
	return m, nil
}

// DecodeSnapshot parses a snapshot container from an in-memory byte
// image and validates every checksum — the strictest read path, and the
// fuzzing entry point. The returned mapping's section views alias data.
func DecodeSnapshot(data []byte) (*Mapping, error) {
	m, err := parseSnapshot(data)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}

// parseSnapshot validates the header, meta, and directory of data and
// builds the section table. Every length and offset is bounded against
// len(data) before any slice is taken, so a hostile image fails with an
// error, never a panic or an unbounded allocation.
func parseSnapshot(data []byte) (*Mapping, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("persist: %w: %d bytes is shorter than the header", ErrCorrupt, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("persist: %w: bad magic %q", ErrCorrupt, data[:8])
	}
	if got, want := crc32.Checksum(data[:36], castagnoli), binary.LittleEndian.Uint32(data[36:40]); got != want {
		return nil, fmt.Errorf("persist: %w: header checksum %08x != %08x", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return nil, fmt.Errorf("persist: %w: format version %d (supported: %d)", ErrCorrupt, v, formatVersion)
	}
	nSec := int(binary.LittleEndian.Uint32(data[12:16]))
	metaLen := int(binary.LittleEndian.Uint32(data[16:20]))
	fileSize := int64(binary.LittleEndian.Uint64(data[20:28]))
	if nSec > MaxSections {
		return nil, fmt.Errorf("persist: %w: %d sections exceed %d", ErrCorrupt, nSec, MaxSections)
	}
	if metaLen > MaxMeta {
		return nil, fmt.Errorf("persist: %w: meta of %d bytes exceeds %d", ErrCorrupt, metaLen, MaxMeta)
	}
	if fileSize != int64(len(data)) {
		return nil, fmt.Errorf("persist: %w: header says %d bytes, file has %d", ErrCorrupt, fileSize, len(data))
	}
	if int64(headerSize+metaLen) > fileSize {
		return nil, fmt.Errorf("persist: %w: meta overruns the file", ErrCorrupt)
	}
	meta := data[headerSize : headerSize+metaLen]
	if got, want := crc32.Checksum(meta, castagnoli), binary.LittleEndian.Uint32(data[28:32]); got != want {
		return nil, fmt.Errorf("persist: %w: meta checksum %08x != %08x", ErrCorrupt, got, want)
	}
	dirOff := align64(headerSize + int64(metaLen))
	dirEnd := dirOff + int64(nSec*dirEntrySize)
	if dirEnd > fileSize {
		return nil, fmt.Errorf("persist: %w: directory overruns the file", ErrCorrupt)
	}
	dir := data[dirOff:dirEnd]
	if got, want := crc32.Checksum(dir, castagnoli), binary.LittleEndian.Uint32(data[32:36]); got != want {
		return nil, fmt.Errorf("persist: %w: directory checksum %08x != %08x", ErrCorrupt, got, want)
	}
	m := &Mapping{data: data, meta: meta, secs: make([]sectionHdr, nSec), byID: make(map[uint32]int, nSec)}
	for i := 0; i < nSec; i++ {
		e := dir[i*dirEntrySize:]
		s := sectionHdr{
			id:    binary.LittleEndian.Uint32(e[0:4]),
			count: int(binary.LittleEndian.Uint32(e[4:8])),
			off:   int64(binary.LittleEndian.Uint64(e[8:16])),
			crc:   binary.LittleEndian.Uint32(e[16:20]),
		}
		// Bounds before anything touches the section: offset aligned and
		// inside the file, length inside the file, id unique.
		if s.off < dirEnd || s.off%4 != 0 || s.count < 0 || s.off+int64(s.count)*4 > fileSize {
			return nil, fmt.Errorf("persist: %w: section %d (id %d) out of bounds", ErrCorrupt, i, s.id)
		}
		if _, dup := m.byID[s.id]; dup {
			return nil, fmt.Errorf("persist: %w: duplicate section id %d", ErrCorrupt, s.id)
		}
		m.byID[s.id] = i
		m.secs[i] = s
	}
	m.refs.Store(1)
	return m, nil
}

// Meta returns the snapshot's meta blob (aliases the mapping).
func (m *Mapping) Meta() []byte { return m.meta }

// Size returns the mapped file size in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Section returns the int32 view of the section with the given id (false
// when absent). On little-endian hosts the view aliases the mapping: it
// is valid only while the mapping is retained.
func (m *Mapping) Section(id uint32) ([]int32, bool) {
	i, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	s := m.secs[i]
	return viewInt32(m.data[s.off:s.off+int64(s.count)*4], s.count), true
}

// Verify checksums every section against its directory CRC — the lazy
// half of validation (the header, meta, and directory were checked at
// open). Safe to run from a background goroutine while the snapshot
// serves: it only reads.
func (m *Mapping) Verify() error {
	for _, s := range m.secs {
		raw := m.data[s.off : s.off+int64(s.count)*4]
		if got := crc32.Checksum(raw, castagnoli); got != s.crc {
			return fmt.Errorf("persist: %w: section id %d checksum %08x != %08x", ErrCorrupt, s.id, got, s.crc)
		}
	}
	return nil
}

// Retain takes a reference: a snapshot whose arrays alias this mapping
// must hold one until the snapshot itself is reclaimed.
func (m *Mapping) Retain() { m.refs.Add(1) }

// Release drops a reference; the last release unmaps the file. Views
// must not be used afterwards.
func (m *Mapping) Release() {
	n := m.refs.Add(-1)
	switch {
	case n == 0:
		unmapBytes(m.data, m.mapped)
		m.data = nil
	case n < 0:
		panic("persist: Mapping released more times than retained")
	}
}
