package persist

import (
	"encoding/binary"
	"unsafe"
)

// hostLittleEndian reports whether the host's native int32 layout matches
// the on-disk little-endian format, which is what makes the zero-copy
// mmap views legal. Evaluated once at init from the native byte order.
var hostLittleEndian = func() bool {
	var probe [4]byte
	binary.NativeEndian.PutUint32(probe[:], 1)
	return probe[0] == 1
}()

// int32Bytes returns the little-endian byte image of a. On little-endian
// hosts this is a zero-copy reinterpretation of the slice; on big-endian
// hosts it encodes into a fresh buffer.
func int32Bytes(a []int32) []byte {
	if len(a) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*4)
	}
	out := make([]byte, len(a)*4)
	for i, v := range a {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// viewInt32 interprets b (len(b) == 4*count, 4-byte aligned in the
// mapped file) as an int32 array. Zero-copy on little-endian hosts —
// the returned slice aliases the mapping and lives exactly as long as
// it — and a decoded copy elsewhere. count == 0 returns a non-nil empty
// slice so restored caches read as "computed, empty".
func viewInt32(b []byte, count int) []int32 {
	if count == 0 {
		return []int32{}
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
