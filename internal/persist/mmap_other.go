//go:build !unix

package persist

import "os"

// mapFile on platforms without syscall.Mmap reads the file into memory:
// the O(1)-restart property is lost but the format and every caller work
// unchanged.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(f.Name())
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapBytes(data []byte, mapped bool) {}
