package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/faultpoint"
)

// Journal is the per-graph write-ahead log for the mutation delta queue:
// ApplyBatch appends one record per accepted batch before acknowledging,
// and restart recovery replays the records newer than the last durable
// snapshot through the ordinary classify/queue machinery.
//
// File layout:
//
//	file    = "FBCCWAL1" | record*
//	record  = u32 payloadLen | u32 payloadCRC | payload
//	payload = u64 seq | u32 nAdds | u32 nDels | nAdds × (i32 u, i32 w)
//	        | nDels × (i32 u, i32 w)
//
// A record is atomic: the CRC covers the whole payload, so replay either
// decodes a record fully or stops. Anything after the last valid record
// — a torn append from a crash mid-write, or flipped bytes — is cleanly
// truncated on open, which is exactly the acknowledged-durability
// contract: a batch is durable iff its record (append + fsync) completed
// before the acknowledgment was returned.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	lastSeq uint64
	buf     []byte // reusable record-encode buffer (alloc-free appends)
}

// JEdge is one undirected edge endpoint pair in a journal record.
type JEdge struct{ U, W int32 }

// JournalRecord is one decoded journal record: the batch's WAL sequence
// number and its insertions and deletions, in the order ApplyBatch
// received them.
type JournalRecord struct {
	Seq  uint64
	Adds []JEdge
	Dels []JEdge
}

var journalMagic = [8]byte{'F', 'B', 'C', 'C', 'W', 'A', 'L', '1'}

const (
	journalHeaderSize = 8
	recordHeaderSize  = 8  // payloadLen + payloadCRC
	payloadFixed      = 16 // seq + nAdds + nDels
	// MaxJournalEdges bounds the edges in one record (64 MiB of payload)
	// — bounded before any allocation, like every other decode here.
	MaxJournalEdges = 1 << 23
)

// maxPayload is the largest legal record payload.
const maxPayload = payloadFixed + 8*MaxJournalEdges

// ErrJournalCorrupt is returned by OpenJournal when the file's header is
// not a journal at all (as opposed to a torn tail, which is silently
// truncated). The caller decides whether to quarantine the file.
var ErrJournalCorrupt = errors.New("journal corrupt")

// OpenJournal opens (creating if absent) the journal at path, decodes
// every valid record, and truncates any torn or corrupt tail in place.
// It returns the journal positioned for appends plus the replayable
// records in append order.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path}
	if len(data) < journalHeaderSize {
		// New (or torn-before-header) journal: start fresh.
		if err := j.reset(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}
	if [8]byte(data[:8]) != journalMagic {
		f.Close()
		return nil, nil, fmt.Errorf("persist: %s: %w: bad magic %q", path, ErrJournalCorrupt, data[:8])
	}
	recs, goodLen := DecodeJournal(data)
	if int64(goodLen) != int64(len(data)) {
		// Torn or corrupt tail: truncate at the last valid record. The
		// bytes past goodLen were never acknowledged (the ack follows the
		// completed append), so dropping them loses nothing durable.
		if err := f.Truncate(int64(goodLen)); err != nil {
			f.Close()
			return nil, nil, err
		}
		f.Sync()
	}
	if _, err := f.Seek(int64(goodLen), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j.size = int64(goodLen)
	if len(recs) > 0 {
		j.lastSeq = recs[len(recs)-1].Seq
	}
	return j, recs, nil
}

// DecodeJournal decodes the valid record prefix of a journal byte image
// (header included). It returns the decoded records and the byte length
// of the valid prefix — everything past it is torn or corrupt. It never
// panics and bounds every allocation by the declared lengths' cross-check
// against the remaining bytes.
func DecodeJournal(data []byte) ([]JournalRecord, int) {
	if len(data) < journalHeaderSize || [8]byte(data[:8]) != journalMagic {
		return nil, 0
	}
	var recs []JournalRecord
	off := journalHeaderSize
	for {
		rec, n := decodeRecord(data[off:])
		if n == 0 {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
}

// decodeRecord decodes one record from b, returning its byte length (0
// when b does not begin with a complete, checksummed record).
func decodeRecord(b []byte) (JournalRecord, int) {
	if len(b) < recordHeaderSize {
		return JournalRecord{}, 0
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if plen < payloadFixed || plen > maxPayload || len(b) < recordHeaderSize+plen {
		return JournalRecord{}, 0
	}
	payload := b[recordHeaderSize : recordHeaderSize+plen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return JournalRecord{}, 0
	}
	nAdds := int(binary.LittleEndian.Uint32(payload[8:12]))
	nDels := int(binary.LittleEndian.Uint32(payload[12:16]))
	if nAdds < 0 || nDels < 0 || nAdds+nDels > MaxJournalEdges ||
		plen != payloadFixed+8*(nAdds+nDels) {
		return JournalRecord{}, 0
	}
	rec := JournalRecord{Seq: binary.LittleEndian.Uint64(payload[0:8])}
	pairs := payload[payloadFixed:]
	decode := func(n int) []JEdge {
		if n == 0 {
			return nil
		}
		out := make([]JEdge, n)
		for i := range out {
			out[i].U = int32(binary.LittleEndian.Uint32(pairs[i*8:]))
			out[i].W = int32(binary.LittleEndian.Uint32(pairs[i*8+4:]))
		}
		pairs = pairs[n*8:]
		return out
	}
	rec.Adds = decode(nAdds)
	rec.Dels = decode(nDels)
	return rec, recordHeaderSize + plen
}

// Append writes one record for the batch and, with sync true, fsyncs
// before returning — the durability point an acknowledgment rests on.
// It returns the bytes appended. The encode buffer is reused across
// calls, so steady-state appends allocate nothing.
func (j *Journal) Append(seq uint64, adds, dels []JEdge, sync bool) (int, error) {
	if len(adds)+len(dels) > MaxJournalEdges {
		return 0, fmt.Errorf("persist: journal batch of %d edges exceeds %d", len(adds)+len(dels), MaxJournalEdges)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := faultpoint.Check(FaultWrite); err != nil {
		return 0, fmt.Errorf("persist: journal append %s: %w", j.path, err)
	}
	plen := payloadFixed + 8*(len(adds)+len(dels))
	total := recordHeaderSize + plen
	if cap(j.buf) < total {
		j.buf = make([]byte, 0, total+total/2)
	}
	b := j.buf[:total]
	binary.LittleEndian.PutUint32(b[0:4], uint32(plen))
	payload := b[recordHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(len(adds)))
	binary.LittleEndian.PutUint32(payload[12:16], uint32(len(dels)))
	pos := payloadFixed
	for _, e := range adds {
		binary.LittleEndian.PutUint32(payload[pos:], uint32(e.U))
		binary.LittleEndian.PutUint32(payload[pos+4:], uint32(e.W))
		pos += 8
	}
	for _, e := range dels {
		binary.LittleEndian.PutUint32(payload[pos:], uint32(e.U))
		binary.LittleEndian.PutUint32(payload[pos+4:], uint32(e.W))
		pos += 8
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload[:plen], castagnoli))
	if _, err := j.f.Write(b); err != nil {
		return 0, err
	}
	if sync {
		if err := faultpoint.Check(FaultFsync); err != nil {
			return 0, fmt.Errorf("persist: journal fsync %s: %w", j.path, err)
		}
		if err := j.f.Sync(); err != nil {
			return 0, err
		}
	}
	j.size += int64(total)
	j.lastSeq = seq
	return total, nil
}

// TruncateThrough drops every record with Seq <= seq — called after a
// snapshot covering those batches was durably published, so the journal
// holds only the tail a recovery still needs to replay. Records are
// appended in sequence order, so this is a prefix cut: when everything
// is covered the file truncates to its header; otherwise the tail is
// rewritten through the same temp-rename protocol as snapshots.
func (j *Journal) TruncateThrough(seq uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.size <= journalHeaderSize {
		return nil
	}
	if j.lastSeq <= seq {
		return j.reset()
	}
	// Find the cut: the offset of the first record with Seq > seq.
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	recs, goodLen := DecodeJournal(data)
	cut := journalHeaderSize
	off := journalHeaderSize
	for _, r := range recs {
		_, n := decodeRecord(data[off:])
		if r.Seq <= seq {
			cut = off + n
		}
		off += n
	}
	if cut == journalHeaderSize {
		_, err := j.f.Seek(int64(goodLen), io.SeekStart)
		return err
	}
	tmp := j.path + ".tmp"
	out := append(append([]byte{}, journalMagic[:]...), data[cut:goodLen]...)
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	if err := faultpoint.Check(FaultRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: journal truncate %s: %w", j.path, err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(int64(len(out)), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	j.f.Close()
	j.f = f
	j.size = int64(len(out))
	return nil
}

// reset truncates the journal to an empty (header-only) file. Caller
// holds j.mu (or is the only owner, during open).
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := j.f.Write(journalMagic[:]); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size = journalHeaderSize
	return nil
}

// Reset drops every record — the graph was replaced wholesale, so the
// whole history is obsolete.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reset()
}

// Size returns the journal's current byte size (header included).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// LastSeq returns the sequence number of the newest record (0 when the
// journal is empty).
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Close closes the underlying file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
