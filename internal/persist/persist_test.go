package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultpoint"
)

func writeTestSnapshot(t *testing.T, path string) ([]byte, []Section) {
	t.Helper()
	meta := []byte(`{"name":"test","version":7}`)
	sections := []Section{
		{ID: 1, Data: []int32{0, 2, 4, 6}},
		{ID: 2, Data: []int32{1, 0, 2, 1}},
		{ID: 9, Data: []int32{}},
		{ID: 5, Data: []int32{-1, -2, 2147483647, -2147483648}},
	}
	if _, err := WriteSnapshot(path, meta, sections); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return meta, sections
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.fbcc")
	meta, sections := writeTestSnapshot(t, path)

	for _, verify := range []bool{false, true} {
		m, err := OpenMapped(path, verify)
		if err != nil {
			t.Fatalf("OpenMapped(verify=%v): %v", verify, err)
		}
		if !bytes.Equal(m.Meta(), meta) {
			t.Errorf("meta = %q, want %q", m.Meta(), meta)
		}
		for _, s := range sections {
			got, ok := m.Section(s.ID)
			if !ok {
				t.Fatalf("section %d missing", s.ID)
			}
			if len(got) != len(s.Data) {
				t.Fatalf("section %d: len %d, want %d", s.ID, len(got), len(s.Data))
			}
			for i := range got {
				if got[i] != s.Data[i] {
					t.Errorf("section %d[%d] = %d, want %d", s.ID, i, got[i], s.Data[i])
				}
			}
			if got == nil {
				t.Errorf("section %d: nil view (want non-nil even when empty)", s.ID)
			}
		}
		if _, ok := m.Section(42); ok {
			t.Error("Section(42) = ok for absent id")
		}
		if err := m.Verify(); err != nil {
			t.Errorf("Verify: %v", err)
		}
		m.Release()
	}
}

func TestSnapshotOverwriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.fbcc")
	writeTestSnapshot(t, path)
	// Second write over the same path must fully replace it.
	meta2 := []byte("v2")
	if _, err := WriteSnapshot(path, meta2, []Section{{ID: 3, Data: []int32{9}}}); err != nil {
		t.Fatalf("second WriteSnapshot: %v", err)
	}
	m, err := OpenMapped(path, true)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer m.Release()
	if !bytes.Equal(m.Meta(), meta2) {
		t.Errorf("meta = %q, want %q", m.Meta(), meta2)
	}
	if _, ok := m.Section(1); ok {
		t.Error("stale section 1 survived overwrite")
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind: %v", err)
	}
}

// TestSnapshotHostileInputs mangles a valid snapshot byte image every way
// the format must survive: truncation at every boundary, flipped bytes in
// every region, and oversized declared lengths. Every case must fail with
// ErrCorrupt — no panic, no giant allocation, no silent success.
func TestSnapshotHostileInputs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.fbcc")
	writeTestSnapshot(t, path)
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(valid); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 1, 7, 8, 20, headerSize - 1, headerSize, headerSize + 5, len(valid) / 2, len(valid) - 1} {
			if _, err := DecodeSnapshot(valid[:n]); !errors.Is(err, ErrCorrupt) {
				t.Errorf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		// Flip one byte at a time across the whole image. Padding bytes are
		// not covered by any checksum, so a flip there may legitimately
		// still decode — but it must never panic, and any flip in header,
		// meta, directory, or section bytes must be caught.
		for i := 0; i < len(valid); i++ {
			mut := append([]byte{}, valid...)
			mut[i] ^= 0xFF
			_, err := DecodeSnapshot(mut) // must not panic
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Errorf("flip at %d: err = %v, not wrapped in ErrCorrupt", i, err)
			}
		}
	})

	t.Run("oversized-counts", func(t *testing.T) {
		// A directory entry claiming a huge count must be rejected by the
		// bounds check before any allocation; same for metaLen and nSec in
		// the header (with their CRCs recomputed so only the bound trips).
		mut := append([]byte{}, valid...)
		binary.LittleEndian.PutUint32(mut[12:16], 1<<31-1) // nSec
		binary.LittleEndian.PutUint32(mut[36:40], crcOf(mut[:36]))
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("huge section count: err = %v", err)
		}

		mut = append([]byte{}, valid...)
		binary.LittleEndian.PutUint32(mut[16:20], 1<<30) // metaLen
		binary.LittleEndian.PutUint32(mut[36:40], crcOf(mut[:36]))
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("huge meta length: err = %v", err)
		}

		// Huge count in the first directory entry, directory CRC fixed up.
		mut = append([]byte{}, valid...)
		metaLen := int(binary.LittleEndian.Uint32(mut[16:20]))
		nSec := int(binary.LittleEndian.Uint32(mut[12:16]))
		dirOff := align64(headerSize + int64(metaLen))
		binary.LittleEndian.PutUint32(mut[dirOff+4:dirOff+8], 1<<31-1)
		binary.LittleEndian.PutUint32(mut[32:36], crcOf(mut[dirOff:dirOff+int64(nSec*dirEntrySize)]))
		binary.LittleEndian.PutUint32(mut[36:40], crcOf(mut[:36]))
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("huge section count in dir: err = %v", err)
		}
	})

	t.Run("wrong-magic", func(t *testing.T) {
		mut := append([]byte{}, valid...)
		copy(mut, "NOTASNAP")
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("wrong magic: err = %v", err)
		}
	})
}

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

func TestSnapshotFaultpoints(t *testing.T) {
	dir := t.TempDir()
	for _, fp := range []string{FaultWrite, FaultFsync, FaultRename} {
		path := filepath.Join(dir, fp+".fbcc")
		if err := faultpoint.Set(fp + "=error"); err != nil {
			t.Fatalf("arm %s: %v", fp, err)
		}
		_, err := WriteSnapshot(path, []byte("m"), []Section{{ID: 1, Data: []int32{1}}})
		faultpoint.Disarm(fp)
		if err == nil {
			t.Errorf("%s: WriteSnapshot succeeded under fault", fp)
		}
		if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
			t.Errorf("%s: snapshot published despite fault", fp)
		}
		if _, serr := os.Stat(path + ".tmp"); !errors.Is(serr, os.ErrNotExist) {
			t.Errorf("%s: temp file left behind", fp)
		}
	}
	// After clearing, the write must work.
	path := filepath.Join(dir, "ok.fbcc")
	if _, err := WriteSnapshot(path, []byte("m"), []Section{{ID: 1, Data: []int32{1}}}); err != nil {
		t.Fatalf("WriteSnapshot after faults cleared: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	batches := []JournalRecord{
		{Seq: 1, Adds: []JEdge{{0, 1}, {1, 2}}},
		{Seq: 2, Dels: []JEdge{{1, 2}}},
		{Seq: 3, Adds: []JEdge{{2, 3}}, Dels: []JEdge{{0, 1}}},
		{Seq: 4}, // empty batch is legal framing
	}
	for _, b := range batches {
		if _, err := j.Append(b.Seq, b.Adds, b.Dels, true); err != nil {
			t.Fatalf("Append seq %d: %v", b.Seq, err)
		}
	}
	if j.LastSeq() != 4 {
		t.Errorf("LastSeq = %d, want 4", j.LastSeq())
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(recs) != len(batches) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batches))
	}
	for i, r := range recs {
		w := batches[i]
		if r.Seq != w.Seq || len(r.Adds) != len(w.Adds) || len(r.Dels) != len(w.Dels) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
		for k := range r.Adds {
			if r.Adds[k] != w.Adds[k] {
				t.Errorf("record %d add %d = %v, want %v", i, k, r.Adds[k], w.Adds[k])
			}
		}
		for k := range r.Dels {
			if r.Dels[k] != w.Dels[k] {
				t.Errorf("record %d del %d = %v, want %v", i, k, r.Dels[k], w.Dels[k])
			}
		}
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := j.Append(seq, []JEdge{{int32(seq), int32(seq + 1)}}, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := j.Size()
	j.Close()

	// Simulate crash mid-append: garbage tails of several shapes.
	tails := map[string][]byte{
		"partial-header": {0x10},
		"length-no-body": {0x18, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef},
		"huge-length":    {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1, 2, 3},
		"bad-crc": func() []byte {
			// Full-size record with a wrong CRC.
			b := make([]byte, recordHeaderSize+payloadFixed)
			binary.LittleEndian.PutUint32(b[0:4], payloadFixed)
			binary.LittleEndian.PutUint32(b[4:8], 0xbad)
			return b
		}(),
	}
	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			base, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(base[:goodSize:goodSize], tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j, recs, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("OpenJournal with torn tail: %v", err)
			}
			if len(recs) != 3 {
				t.Fatalf("replayed %d records, want 3", len(recs))
			}
			if j.Size() != goodSize {
				t.Errorf("size after truncation = %d, want %d", j.Size(), goodSize)
			}
			// Journal must be appendable after the repair.
			if _, err := j.Append(4, []JEdge{{9, 9}}, nil, true); err != nil {
				t.Fatalf("append after repair: %v", err)
			}
			j.Close()
			j2, recs2, err := OpenJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs2) != 4 || recs2[3].Seq != 4 {
				t.Fatalf("after repair+append: %d records, last %+v", len(recs2), recs2[len(recs2)-1])
			}
			j2.Close()
			// Restore the 3-record base for the next sub-test.
			if err := os.WriteFile(path, base[:goodSize], 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestJournalCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("GARBAGE!and more"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("err = %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalTruncateThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := j.Append(seq, []JEdge{{int32(seq), 0}}, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	// Partial cut: drop 1..3, keep 4..5.
	if err := j.TruncateThrough(3); err != nil {
		t.Fatalf("TruncateThrough(3): %v", err)
	}
	j.Close()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("after cut at 3: %+v", recs)
	}
	// Appends must continue past the cut.
	if _, err := j.Append(6, nil, []JEdge{{1, 2}}, true); err != nil {
		t.Fatal(err)
	}
	// No-op cut below everything.
	if err := j.TruncateThrough(2); err != nil {
		t.Fatal(err)
	}
	// Full cut.
	if err := j.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("after full cut: %+v", recs)
	}
	if _, err := j.Append(7, []JEdge{{3, 4}}, nil, true); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(1, []JEdge{{0, 1}}, nil, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(9, []JEdge{{5, 6}}, nil, true); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 9 {
		t.Fatalf("after reset: %+v", recs)
	}
}

func TestJournalAppendAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	adds := []JEdge{{1, 2}, {3, 4}}
	seq := uint64(0)
	// Warm the buffer, then steady-state appends must not allocate.
	if _, err := j.Append(seq, adds, nil, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		seq++
		if _, err := j.Append(seq, adds, nil, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Append allocates %.1f/op, want 0", allocs)
	}
}
