//go:build unix

package persist

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. An empty file maps to an empty non-nil slice
// without touching mmap (zero-length mappings are an EINVAL on Linux).
// Falls back to an ordinary read when the kernel refuses the mapping
// (some filesystems, locked-down containers) — the caller only sees a
// byte slice either way.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return []byte{}, false, nil
	}
	if int64(int(size)) != size {
		return nil, false, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err == nil {
		return data, true, nil
	}
	data, rerr := os.ReadFile(f.Name())
	if rerr != nil {
		return nil, false, err // report the mmap failure, the more useful one
	}
	return data, false, nil
}

func unmapBytes(data []byte, mapped bool) {
	if mapped && len(data) > 0 {
		syscall.Munmap(data)
	}
}
