package smbcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
	"repro/internal/uf"
)

func assertMatchesSeq(t *testing.T, g *graph.Graph) *Result {
	t.Helper()
	res, err := BCC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := seqbcc.BCC(g)
	if res.NumBCC != ref.NumBCC() {
		t.Fatalf("NumBCC = %d, want %d", res.NumBCC, ref.NumBCC())
	}
	if !check.Equal(res.Blocks(), ref.Blocks) {
		t.Fatalf("blocks differ:\n  sm: %s\n seq: %s",
			check.Describe(res.Blocks()), check.Describe(ref.Blocks))
	}
	return res
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", gen.Clique(3)},
		{"clique", gen.Clique(8)},
		{"chain", gen.Chain(70)},
		{"cycle", gen.Cycle(41)},
		{"star", gen.Star(25)},
		{"barbell", gen.Barbell(5, 3)},
		{"cliquechain", gen.CliqueChain(5, 4)},
		{"grid", gen.Grid2D(8, 9, false)},
		{"torus", gen.Grid2D(8, 9, true)},
		{"tree", gen.RandomTree(90, 4)},
		{"singleedge", graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}})},
		{"singleton", graph.MustFromEdges(1, nil)},
		{"empty", graph.MustFromEdges(0, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertMatchesSeq(t, tc.g)
		})
	}
}

func TestDisconnectedRejected(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(5), gen.Cycle(5))
	if _, err := BCC(g, Options{}); err != ErrDisconnected {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestMultigraph(t *testing.T) {
	cases := [][]graph.Edge{
		{{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}},
		{{U: 0, W: 0}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 1, W: 2}},
		{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 0, W: 1}},
	}
	for i, edges := range cases {
		g := graph.MustFromEdges(3, edges)
		res, err := BCC(g, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		ref := seqbcc.BCC(g)
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("case %d: %s != %s", i,
				check.Describe(res.Blocks()), check.Describe(ref.Blocks))
		}
	}
}

// connectedRandom builds a connected random graph: a random tree plus
// extra random edges.
func connectedRandom(rng *rand.Rand, n, extra int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+extra)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(i)), W: int32(i)})
	}
	for i := 0; i < extra; i++ {
		u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != w {
			edges = append(edges, graph.Edge{U: u, W: w})
		}
	}
	return graph.MustFromEdges(n, edges)
}

func TestQuickConnectedRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		g := connectedRandom(rng, n, rng.Intn(2*n))
		res, err := BCC(g, Options{})
		if err != nil {
			return false
		}
		return check.Equal(res.Blocks(), seqbcc.BCC(g).Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentSources(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := connectedRandom(rng, 60, 90)
	ref := seqbcc.BCC(g)
	for src := int32(0); src < 60; src += 7 {
		res, err := BCC(g, Options{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("source %d: decomposition differs", src)
		}
	}
}

func TestGroupsAreConnectedRegions(t *testing.T) {
	// Internal invariant: each covered group's vertices plus its top form a
	// connected subtree (the top-skipping relies on it).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(60)
		g := connectedRandom(rng, n, rng.Intn(3*n))
		res, err := BCC(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, blk := range res.Blocks() {
			s := uf.NewSeq(n)
			in := make(map[int32]bool, len(blk))
			for _, v := range blk {
				in[v] = true
			}
			for _, v := range blk {
				if p := res.Parent[v]; p != -1 && in[p] {
					s.Union(v, p)
				}
			}
			root := s.Find(blk[0])
			for _, v := range blk {
				if s.Find(v) != root {
					t.Fatalf("block %v not connected via tree edges", blk)
				}
			}
		}
	}
}

func TestLargeChain(t *testing.T) {
	g := gen.Chain(100000)
	res, err := BCC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBCC != 99999 {
		t.Fatalf("chain NumBCC = %d", res.NumBCC)
	}
}

func TestDenseGraph(t *testing.T) {
	g := gen.Clique(60)
	res, err := BCC(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBCC != 1 {
		t.Fatalf("clique NumBCC = %d", res.NumBCC)
	}
}
