// Package smbcc reimplements a BCC algorithm in the spirit of Slota and
// Madduri ("Simple parallel biconnectivity algorithms for multicore
// platforms", HiPC 2014) — the paper's SM'14 baseline.
//
// Shape, restrictions, and performance profile mirror the original:
//
//   - a BFS tree is built from vertex 0 (span proportional to the graph
//     diameter, the same bottleneck as the original);
//   - only connected graphs are supported (BCC returns an error otherwise,
//     matching the "n = no support" entries of Tab. 2);
//   - the per-non-tree-edge work walks tree paths toward the LCA, as in the
//     original's BFS/LCA-based marking, here with a path-skipping structure
//     so each tree edge is traversed O(α) amortized times;
//   - scalability is limited: the marking phase is sequential here (the
//     original's was parallel but famously peaked at ~16 threads; the paper
//     reports its 16-thread time when faster).
//
// The marking invariant: every non-tree edge (u,v) covers all tree edges on
// the cycle u~lca(u,v)~v, and all covered edges of one cycle belong to one
// block. Covered-edge groups are kept in a union-find; each group (a
// connected tree region) records its shallowest vertex ("top") so later
// walks skip the whole region in one hop. Uncovered tree edges are bridges.
package smbcc

import (
	"errors"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/uf"
)

// Options configures the run.
type Options struct {
	// Source is the BFS root (default vertex 0).
	Source int32
	// Exec is the execution context the (parallel) BFS rooting step runs
	// on (nil = the process-global default); the marking phase is
	// sequential, mirroring the original's limited scalability.
	Exec *parallel.Exec
}

// ErrDisconnected is returned for graphs that are not connected.
var ErrDisconnected = errors.New("smbcc: input graph must be connected")

// Result is the block decomposition in SM-style form.
type Result struct {
	// Parent/Level describe the BFS tree.
	Parent, Level []int32
	// NumBCC is the number of biconnected components.
	NumBCC int
	// Times is the step breakdown (Rooting = BFS, LastCC = marking).
	Times core.StepTimes

	covered []bool
	group   *uf.Seq
	top     []int32
}

// BCC computes biconnected components; the input must be connected.
func BCC(g *graph.Graph, opt Options) (*Result, error) {
	n := int(g.N)
	res := &Result{}
	if n == 0 {
		res.group = uf.NewSeq(0)
		return res, nil
	}
	src := opt.Source
	if src < 0 || int(src) >= n {
		src = 0
	}

	t0 := time.Now()
	bfs := graph.BFSIn(opt.Exec, g, src)
	res.Parent = bfs.Parent
	res.Level = bfs.Level
	res.Parent[src] = -1
	for v := 0; v < n; v++ {
		if res.Level[v] == -1 {
			return nil, ErrDisconnected
		}
	}
	res.Times.Rooting = time.Since(t0)

	t0 = time.Now()
	res.covered = make([]bool, n)
	res.group = uf.NewSeq(n)
	res.top = make([]int32, n)
	for v := range res.top {
		res.top[v] = int32(v)
	}
	// Walk every non-tree edge; one tree-edge instance per child vertex is
	// consumed as "the" tree edge so parallel copies act as covering
	// cycles of length two.
	treeSeen := make([]bool, n)
	for v := int32(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v >= w {
				continue // one instance per undirected copy; drops self-loops
			}
			child := int32(-1)
			switch {
			case res.Parent[w] == v:
				child = w
			case res.Parent[v] == w:
				child = v
			}
			if child != -1 && !treeSeen[child] {
				treeSeen[child] = true
				continue
			}
			res.cover(v, w)
		}
	}
	// Count blocks: one per covered-edge group + one per uncovered
	// (bridge) tree edge.
	groupSeen := make(map[int32]bool)
	nBCC := 0
	for v := 0; v < n; v++ {
		if int32(v) == src {
			continue
		}
		if !res.covered[v] {
			nBCC++ // bridge block {parent[v], v}
			continue
		}
		r := res.group.Find(int32(v))
		if !groupSeen[r] {
			groupSeen[r] = true
			nBCC++
		}
	}
	res.NumBCC = nBCC
	res.Times.LastCC = time.Since(t0)
	return res, nil
}

// cover marks the tree edges on the cycle a~lca~b as one block. Each side
// keeps its own chain representative so that every union merges regions
// that touch, preserving the "group = connected tree region" invariant the
// top-skipping relies on.
func (r *Result) cover(a, b int32) {
	u, x := a, b
	curU, curX := int32(-1), int32(-1)
	for u != x {
		if r.Level[u] < r.Level[x] {
			u, x = x, u
			curU, curX = curX, curU
		}
		if r.covered[u] {
			if curU != -1 {
				r.unionTop(curU, u)
			}
			curU = u
			u = r.top[r.group.Find(u)]
		} else {
			r.covered[u] = true
			if curU != -1 {
				r.unionTop(curU, u)
			}
			curU = u
			p := r.Parent[u]
			r.setTop(u, p)
			u = p
		}
	}
	if curU != -1 && curX != -1 {
		r.unionTop(curU, curX)
	}
}

// setTop lowers the recorded top of u's group to p if p is shallower.
func (r *Result) setTop(u, p int32) {
	root := r.group.Find(u)
	if r.Level[p] < r.Level[r.top[root]] {
		r.top[root] = p
	}
}

// unionTop merges two groups, keeping the shallower of their tops.
func (r *Result) unionTop(a, b int32) {
	ra, rb := r.group.Find(a), r.group.Find(b)
	if ra == rb {
		return
	}
	t := r.top[ra]
	if r.Level[r.top[rb]] < r.Level[t] {
		t = r.top[rb]
	}
	r.group.Union(a, b)
	r.top[r.group.Find(a)] = t
}

// Blocks materializes the blocks as sorted vertex sets.
func (r *Result) Blocks() [][]int32 {
	n := len(r.Parent)
	buckets := map[int32][]int32{}
	var blocks [][]int32
	for v := 0; v < n; v++ {
		if r.Parent[v] == -1 {
			continue
		}
		if !r.covered[v] {
			blocks = append(blocks, sorted2(r.Parent[v], int32(v)))
			continue
		}
		root := r.group.Find(int32(v))
		buckets[root] = append(buckets[root], int32(v))
	}
	for root, members := range buckets {
		blk := append(members, r.top[root])
		sort.Slice(blk, func(i, j int) bool { return blk[i] < blk[j] })
		blocks = append(blocks, blk)
	}
	return blocks
}

func sorted2(a, b int32) []int32 {
	if a > b {
		a, b = b, a
	}
	return []int32{a, b}
}
