package seqbcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTriangle(t *testing.T) {
	g := gen.Clique(3)
	r := BCC(g)
	if r.NumBCC() != 1 {
		t.Fatalf("triangle blocks = %d", r.NumBCC())
	}
	if len(r.Blocks[0]) != 3 {
		t.Fatalf("triangle block = %v", r.Blocks[0])
	}
	if len(r.Bridges()) != 0 {
		t.Fatal("triangle has no bridges")
	}
	if len(r.ArticulationPoints()) != 0 {
		t.Fatal("triangle has no articulation points")
	}
}

func TestChainBlocks(t *testing.T) {
	n := 50
	g := gen.Chain(n)
	r := BCC(g)
	if r.NumBCC() != n-1 {
		t.Fatalf("chain blocks = %d, want %d", r.NumBCC(), n-1)
	}
	if len(r.Bridges()) != n-1 {
		t.Fatalf("chain bridges = %d", len(r.Bridges()))
	}
	ap := r.ArticulationPoints()
	if len(ap) != n-2 {
		t.Fatalf("chain articulation points = %d, want %d", len(ap), n-2)
	}
}

func TestCycleSingleBlock(t *testing.T) {
	g := gen.Cycle(100)
	r := BCC(g)
	if r.NumBCC() != 1 || len(r.Blocks[0]) != 100 {
		t.Fatalf("cycle: %d blocks", r.NumBCC())
	}
	if len(r.Bridges()) != 0 || len(r.ArticulationPoints()) != 0 {
		t.Fatal("cycle has no bridges or articulation points")
	}
}

func TestStar(t *testing.T) {
	g := gen.Star(10)
	r := BCC(g)
	if r.NumBCC() != 9 {
		t.Fatalf("star blocks = %d", r.NumBCC())
	}
	ap := r.ArticulationPoints()
	if len(ap) != 1 || ap[0] != 0 {
		t.Fatalf("star articulation = %v", ap)
	}
	if len(r.Bridges()) != 9 {
		t.Fatal("star edges are all bridges")
	}
}

func TestBarbell(t *testing.T) {
	g := gen.Barbell(5, 3)
	r := BCC(g)
	// two K5 blocks + 3 bridge blocks
	if r.NumBCC() != 5 {
		t.Fatalf("barbell blocks = %d, want 5", r.NumBCC())
	}
	if len(r.Bridges()) != 3 {
		t.Fatalf("barbell bridges = %d, want 3", len(r.Bridges()))
	}
}

func TestCliqueChain(t *testing.T) {
	g := gen.CliqueChain(6, 4)
	r := BCC(g)
	if r.NumBCC() != 6 {
		t.Fatalf("clique chain blocks = %d, want 6", r.NumBCC())
	}
	if len(r.ArticulationPoints()) != 5 {
		t.Fatalf("clique chain articulation = %d, want 5", len(r.ArticulationPoints()))
	}
}

func TestDisconnected(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(5), gen.Chain(4), gen.Clique(4))
	r := BCC(g)
	// cycle: 1, chain: 3, clique: 1
	if r.NumBCC() != 5 {
		t.Fatalf("blocks = %d, want 5", r.NumBCC())
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	if BCC(graph.MustFromEdges(0, nil)).NumBCC() != 0 {
		t.Fatal("empty graph")
	}
	if BCC(graph.MustFromEdges(3, nil)).NumBCC() != 0 {
		t.Fatal("edgeless graph")
	}
	r := BCC(graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}}))
	if r.NumBCC() != 1 || len(r.Bridges()) != 1 {
		t.Fatal("single edge")
	}
}

func TestSelfLoop(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 0}, {U: 0, W: 1}})
	r := BCC(g)
	if r.NumBCC() != 1 {
		t.Fatalf("self-loop graph blocks = %d", r.NumBCC())
	}
}

func TestParallelEdgesNotBridge(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}, {U: 0, W: 1}})
	r := BCC(g)
	if r.NumBCC() != 1 {
		t.Fatalf("parallel pair blocks = %d", r.NumBCC())
	}
	if len(r.Bridges()) != 0 {
		t.Fatal("parallel edge must not be a bridge")
	}
}

func TestMatchesNaiveOracle(t *testing.T) {
	cases := []*graph.Graph{
		gen.Clique(6),
		gen.Cycle(12),
		gen.Chain(15),
		gen.Star(8),
		gen.Barbell(4, 2),
		gen.CliqueChain(3, 3),
		gen.Grid2D(4, 5, false),
		gen.Grid2D(4, 5, true),
		gen.RandomTree(40, 1),
		gen.ER(40, 80, 2),
		gen.Disjoint(gen.Cycle(6), gen.Star(5)),
	}
	for i, g := range cases {
		iter := BCC(g).Blocks
		rec := check.NaiveBCC(g)
		if !check.Equal(iter, rec) {
			t.Fatalf("case %d: iterative %s != recursive %s", i,
				check.Describe(iter), check.Describe(rec))
		}
	}
}

func TestQuickMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		return check.Equal(BCC(g).Blocks, check.NaiveBCC(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// The iterative DFS must survive a depth the recursive one cannot.
	n := 2_000_000
	g := gen.Chain(n)
	r := BCC(g)
	if r.NumBCC() != n-1 {
		t.Fatalf("deep chain blocks = %d", r.NumBCC())
	}
}

func TestBlockEdgeCounts(t *testing.T) {
	g := gen.Barbell(4, 1) // two K4 + 1 bridge
	r := BCC(g)
	bridges := 0
	for i := range r.Blocks {
		if r.BlockEdgeCount[i] == 1 {
			bridges++
		} else if r.BlockEdgeCount[i] != 6 {
			t.Fatalf("block %d has %d edges", i, r.BlockEdgeCount[i])
		}
	}
	if bridges != 1 {
		t.Fatalf("bridges = %d", bridges)
	}
}
