// Package seqbcc implements the sequential Hopcroft–Tarjan biconnected
// components algorithm (Commun. ACM 1973) — the paper's SEQ baseline and
// the correctness oracle for every parallel implementation in this
// repository.
//
// The DFS is iterative (explicit frame stack) so graphs with huge diameter
// (e.g. the paper's Chn8 chain with 10^8 vertices) do not overflow the
// goroutine stack. An explicit edge stack is popped each time the
// articulation condition low[w] >= disc[v] fires, exactly as in the
// original algorithm; each popped batch is one biconnected component.
//
// Multigraphs are handled in the standard way: only one traversal back to
// the DFS parent is skipped per vertex, so a parallel copy of the tree edge
// acts as a back edge and correctly keeps the pair biconnected (and the
// edge off the bridge list). Self-loops are ignored.
package seqbcc

import (
	"sort"

	"repro/internal/graph"
)

// Result is the explicit block decomposition of a graph.
type Result struct {
	// Blocks are the biconnected components as sorted vertex sets.
	Blocks [][]int32
	// BlockEdgeCount[i] is the number of edges in Blocks[i]; a block with
	// exactly one edge is a bridge.
	BlockEdgeCount []int
}

// NumBCC returns the number of biconnected components.
func (r *Result) NumBCC() int { return len(r.Blocks) }

// BCC computes the biconnected components of g with Hopcroft–Tarjan.
func BCC(g *graph.Graph) *Result {
	n := int(g.N)
	res := &Result{}
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	type frame struct {
		v             int32
		ai            int32 // cursor into g.Adj
		parent        int32
		skippedParent bool
	}
	var stack []frame
	var estack []graph.Edge
	timer := int32(0)
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack[:0], frame{int32(s), g.Offsets[s], -1, false})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.ai < g.Offsets[v+1] {
				w := g.Adj[f.ai]
				f.ai++
				switch {
				case w == v:
					// self-loop: irrelevant to biconnectivity
				case w == f.parent && !f.skippedParent:
					f.skippedParent = true
				case disc[w] == -1:
					estack = append(estack, graph.Edge{U: v, W: w})
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{w, g.Offsets[w], v, false})
				case disc[w] < disc[v]:
					// Back edge (or forward edges are skipped by the
					// disc[w] < disc[v] test, counting each once).
					estack = append(estack, graph.Edge{U: v, W: w})
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				p := f.parent
				if p == -1 {
					continue
				}
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] >= disc[p] {
					res.popBlock(&estack, p, v)
				}
			}
		}
	}
	return res
}

// popBlock pops edges up to and including the tree edge (p, v) and emits
// them as one block.
func (r *Result) popBlock(estack *[]graph.Edge, p, v int32) {
	es := *estack
	i := len(es) - 1
	for ; i >= 0; i-- {
		if es[i].U == p && es[i].W == v {
			break
		}
	}
	if i < 0 {
		panic("seqbcc: tree edge missing from edge stack")
	}
	batch := es[i:]
	*estack = es[:i]
	seen := make(map[int32]bool, 2*len(batch))
	var verts []int32
	for _, e := range batch {
		if !seen[e.U] {
			seen[e.U] = true
			verts = append(verts, e.U)
		}
		if !seen[e.W] {
			seen[e.W] = true
			verts = append(verts, e.W)
		}
	}
	sort.Slice(verts, func(a, b int) bool { return verts[a] < verts[b] })
	r.Blocks = append(r.Blocks, verts)
	r.BlockEdgeCount = append(r.BlockEdgeCount, len(batch))
}

// ArticulationPoints returns vertices that belong to two or more blocks,
// sorted ascending.
func (r *Result) ArticulationPoints() []int32 {
	count := map[int32]int{}
	for _, b := range r.Blocks {
		for _, v := range b {
			count[v]++
		}
	}
	var out []int32
	for v, c := range count {
		if c >= 2 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Bridges returns the bridge edges (blocks with exactly one edge), with
// U < W, sorted.
func (r *Result) Bridges() []graph.Edge {
	var out []graph.Edge
	for i, b := range r.Blocks {
		if r.BlockEdgeCount[i] == 1 {
			e := graph.Edge{U: b[0], W: b[1]}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].W < out[b].W
	})
	return out
}
