package bccdhttp

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	fastbcc "repro"
	"repro/internal/wire"
)

// POST /v1/graphs/{name}/query/batch answers N scalar queries in one
// request: one snapshot reservation (an epoch pin on a pooled handle —
// no shared-memory RMW), one version, N answers. Two encodings are
// negotiated by Content-Type:
//
//   - application/json (default):
//     {"queries":[{"op":"connected","u":0,"v":6},...],"timeout_ms":50}
//     → {"graph":..,"version":..,"count":N,"answers":[1,0,...]}
//   - application/x-fastbcc-batch: a binary wire frame (package wire);
//     13 bytes per query, 4 per answer, zero per-query allocations.
//
// The response encoding follows the request's, unless an Accept header
// names the other one (a binary request with "Accept: application/json"
// gets a JSON answer — how the CI smoke test diffs binary batches
// against the scalar endpoints). Answers are int32s: 0/1 for the
// boolean ops, counts for cuts/bridges. Errors are always JSON, with
// the scalar endpoints' status mapping plus 504 for a batch that
// exceeds its timeout_ms (accepted in the JSON body or, for binary
// requests, as a ?timeout_ms= query parameter).
//
// The whole batch answers from one snapshot version — a batch racing a
// rebuild never mixes versions — and fails atomically: an invalid query
// fails the batch with its index, no partial answers.

// batchScratch is the pooled per-request state of the batch endpoint.
type batchScratch struct {
	qs  []fastbcc.Query
	as  []fastbcc.Answer
	buf []byte
	h   *fastbcc.Handle
}

// jsonQuery is one query in the JSON batch encoding.
type jsonQuery struct {
	Op string `json:"op"`
	U  int32  `json:"u"`
	V  int32  `json:"v"`
	X  int32  `json:"x"`
}

type jsonBatchRequest struct {
	Queries   []jsonQuery `json:"queries"`
	TimeoutMS int         `json:"timeout_ms"`
}

type jsonBatchResponse struct {
	Graph   string           `json:"graph"`
	Version int64            `json:"version"`
	Count   int              `json:"count"`
	Answers []fastbcc.Answer `json:"answers"`
}

// wantsBinary decides the response encoding: an explicit Accept for
// either type wins, otherwise the response mirrors the request.
func wantsBinary(r *http.Request, binaryReq bool) bool {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, wire.ContentType):
		return true
	case strings.Contains(accept, "application/json"):
		return false
	}
	return binaryReq
}

func (s *server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc := s.scratch.Get().(*batchScratch)
	defer s.scratch.Put(sc)

	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType)
	timeoutMS := 0
	// Per-codec byte accounting: the body reader counts what the decoder
	// consumed; the response side counts the encoded frame (binary) or
	// the bytes the instrumented writer saw (JSON).
	reqCodec, respCodec := "json", "json"
	if binaryReq {
		reqCodec = "binary"
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxBodyBytes)}
	rec, _ := w.(*statusRecorder)
	var respStart int64
	if rec != nil {
		respStart = rec.bytes
	}
	defer func() {
		s.metrics.reqBytes[reqCodec].Add(body.n)
		if rec != nil {
			s.metrics.resBytes[respCodec].Add(rec.bytes - respStart)
		}
	}()
	if binaryReq {
		var err error
		sc.qs, err = wire.ReadRequest(body, sc.qs)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, status, "%v", err)
			return
		}
	} else {
		var req jsonBatchRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if len(req.Queries) > wire.MaxQueries {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"batch of %d queries exceeds limit %d", len(req.Queries), wire.MaxQueries)
			return
		}
		timeoutMS = req.TimeoutMS
		sc.qs = sc.qs[:0]
		for i, jq := range req.Queries {
			op, err := fastbcc.ParseQueryOp(jq.Op)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
				return
			}
			sc.qs = append(sc.qs, fastbcc.Query{Op: op, U: jq.U, V: jq.V, X: jq.X})
		}
	}
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, "bad timeout_ms %q", raw)
			return
		}
		timeoutMS = ms
	}

	ctx := r.Context()
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}

	// One reservation for the whole batch, on the pooled epoch handle.
	if sc.h == nil {
		sc.h = s.store.NewHandle()
	}
	snap, err := sc.h.Acquire(name)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, fastbcc.ErrStoreClosed) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, "%v", err)
		return
	}
	defer sc.h.Release()

	// Reordered graphs: translate client ids to served ids in place (we
	// own the decoded slice). Scalar answers need no inverse map. The
	// translation indexes fwd, so it bounds-checks first — the engine
	// only validates what it executes.
	if vm := s.remapFor(snap); vm != nil {
		n := uint32(len(vm.fwd))
		for i := range sc.qs {
			q := &sc.qs[i]
			if uint32(q.U) >= n || uint32(q.V) >= n {
				s.writeError(w, http.StatusBadRequest,
					"query %d: vertex out of range [0,%d)", i, n)
				return
			}
			q.U, q.V = vm.fwd[q.U], vm.fwd[q.V]
			if q.Op == fastbcc.OpSeparates {
				if uint32(q.X) >= n {
					s.writeError(w, http.StatusBadRequest,
						"query %d: vertex x=%d out of range [0,%d)", i, q.X, n)
					return
				}
				q.X = vm.fwd[q.X]
			}
		}
	}

	q0 := time.Now()
	sc.as, err = snap.QueryBatch(ctx, sc.qs, sc.as)
	if took := time.Since(q0); s.slowQuery > 0 && took >= s.slowQuery {
		s.metrics.slow.Inc()
		s.log.Warn("slow batch", "graph", name, "version", snap.Version,
			"queries", len(sc.qs), "took", took)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.writeError(w, http.StatusGatewayTimeout, "batch exceeded its deadline: %v", err)
		case errors.Is(err, context.Canceled):
			s.writeError(w, statusClientClosedRequest, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}

	if wantsBinary(r, binaryReq) {
		respCodec = "binary"
		sc.buf = wire.AppendResponse(sc.buf[:0], snap.Version, sc.as)
		w.Header().Set("Content-Type", wire.ContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(sc.buf)))
		if _, err := w.Write(sc.buf); err != nil {
			s.log.Warn("writing batch response", "graph", name, "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, jsonBatchResponse{
		Graph:   snap.Name,
		Version: snap.Version,
		Count:   len(sc.as),
		Answers: sc.as,
	})
}
