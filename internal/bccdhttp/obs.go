package bccdhttp

import (
	"io"
	"net/http"
	"time"

	fastbcc "repro"
	"repro/internal/obs"
	"repro/internal/obs/promtext"
)

// endpoints are the instrumented API surfaces, the label values of the
// per-endpoint request metrics. Every route registered through
// server.handle must name one of these.
var endpoints = [...]string{
	"healthz", "list", "load", "stats", "remove", "rebuild",
	"query", "batch", "mutate", "trace",
}

// codecs label the batch endpoint's byte counters.
var codecs = [...]string{"json", "binary"}

// statusClasses label response counters by status family; index is
// status/100 - 2 (the handlers never write 1xx).
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

// httpMetrics is the handler's metric surface — its own registry, so two
// handlers sharing one Store never double-register, merged with the
// store registry at scrape time by /metrics.
type httpMetrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge
	reqDur   map[string]*obs.Histogram                   // by endpoint
	resp     map[string][len(statusClasses)]*obs.Counter // by endpoint, status class
	queryDur map[string]*obs.Histogram                   // scalar endpoint, by op
	reqBytes map[string]*obs.Counter                     // batch endpoint, by codec
	resBytes map[string]*obs.Counter                     // batch endpoint, by codec
	slow     *obs.Counter
}

func newHTTPMetrics() *httpMetrics {
	reg := obs.NewRegistry()
	m := &httpMetrics{
		reg:      reg,
		reqDur:   make(map[string]*obs.Histogram, len(endpoints)),
		resp:     make(map[string][len(statusClasses)]*obs.Counter, len(endpoints)),
		queryDur: make(map[string]*obs.Histogram, 6),
		reqBytes: make(map[string]*obs.Counter, len(codecs)),
		resBytes: make(map[string]*obs.Counter, len(codecs)),
	}
	m.inFlight = reg.Gauge("bccd_http_in_flight_requests",
		"Requests currently being handled.")
	for _, ep := range endpoints {
		m.reqDur[ep] = reg.Histogram("bccd_http_request_duration_seconds",
			"Request handling latency by endpoint.", "endpoint", ep)
		var byClass [len(statusClasses)]*obs.Counter
		for i, class := range statusClasses {
			byClass[i] = reg.Counter("bccd_http_responses_total",
				"Responses by endpoint and status class.", "endpoint", ep, "code", class)
		}
		m.resp[ep] = byClass
	}
	for op := fastbcc.OpConnected; op.Valid(); op++ {
		m.queryDur[op.String()] = reg.Histogram("bccd_http_query_duration_seconds",
			"Scalar query endpoint latency by op.", "op", op.String())
	}
	for _, c := range codecs {
		m.reqBytes[c] = reg.Counter("bccd_http_request_bytes_total",
			"Batch request body bytes read, by codec.", "codec", c)
		m.resBytes[c] = reg.Counter("bccd_http_response_bytes_total",
			"Batch response body bytes written, by codec.", "codec", c)
	}
	m.slow = reg.Counter("bccd_http_slow_queries_total",
		"Batch requests that exceeded the slow-query threshold.")
	return m
}

// statusRecorder captures the response status and body size on the way
// through to the real ResponseWriter. Unwrap keeps the wrapped writer
// reachable for http.ResponseController.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// handle registers an instrumented route: every request through it
// counts toward the in-flight gauge, the endpoint's latency histogram,
// and the endpoint × status-class response counter.
func (s *server) handle(pattern, endpoint string, h http.HandlerFunc) {
	hist := s.metrics.reqDur[endpoint]
	resp := s.metrics.resp[endpoint]
	inFlight := s.metrics.inFlight
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		inFlight.Inc()
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		h(rec, r)
		hist.Observe(time.Since(t0))
		inFlight.Dec()
		if rec.status == 0 {
			// Handler wrote nothing; net/http will send an implicit 200.
			rec.status = http.StatusOK
		}
		if i := rec.status/100 - 2; i >= 0 && i < len(resp) {
			resp[i].Inc()
		}
	})
}

// countingReader counts the bytes a request-body decoder actually
// consumed — the batch endpoint's per-codec ingress accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// handleMetrics serves GET /metrics: the store registry (hot-path,
// build, and reclamation series) merged with the handler's own HTTP
// series, in the Prometheus text exposition format. Scraping is
// read-only and lock-light; it never touches a query hot path.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", promtext.ContentType)
	if err := promtext.Write(w, s.store.Metrics(), s.metrics.reg); err != nil {
		s.log.Warn("writing metrics response", "err", err)
	}
}

// phasesMS is the JSON shape of a build's per-phase breakdown, in
// milliseconds, mirroring the paper's four pipeline phases.
type phasesMS struct {
	FirstCC float64 `json:"first_cc"`
	Rooting float64 `json:"rooting"`
	Tagging float64 `json:"tagging"`
	LastCC  float64 `json:"last_cc"`
}

func toPhasesMS(t fastbcc.PhaseTimes) phasesMS {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return phasesMS{FirstCC: ms(t.FirstCC), Rooting: ms(t.Rooting), Tagging: ms(t.Tagging), LastCC: ms(t.LastCC)}
}

// buildTraceInfo is one build attempt in the trace endpoint's response.
type buildTraceInfo struct {
	Version    int64    `json:"version,omitempty"`
	Algorithm  string   `json:"algorithm"`
	Outcome    string   `json:"outcome"`
	Error      string   `json:"error,omitempty"`
	StartedAt  string   `json:"started_at"`
	DurationMS float64  `json:"duration_ms"`
	Phases     phasesMS `json:"phases_ms"`
}

func toTraceInfo(t fastbcc.BuildTrace) buildTraceInfo {
	return buildTraceInfo{
		Version:    t.Version,
		Algorithm:  t.Algorithm,
		Outcome:    t.Outcome,
		Error:      t.Error,
		StartedAt:  t.StartedAt.UTC().Format(timeFmt),
		DurationMS: float64(t.Duration.Microseconds()) / 1000,
		Phases:     toPhasesMS(t.Phases),
	}
}

// handleTrace serves GET /v1/graphs/{name}/trace: the graph's recent
// build attempts, newest first — versions, outcomes, errors, and the
// per-phase breakdown of each successful build.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	traces, err := s.store.Trace(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	out := make([]buildTraceInfo, len(traces))
	for i, t := range traces {
		out[i] = toTraceInfo(t)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"graph": name, "builds": out})
}
