package bccdhttp

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	fastbcc "repro"
	"repro/internal/wire"
)

// scrape fetches /metrics and parses the Prometheus text exposition into
// a map keyed by the full series identity — `name{labels}` exactly as
// exposed — so assertions match what a real scraper would ingest.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		if _, dup := series[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		series[line[:i]] = v
	}
	return series
}

// TestMetricsExactCounts drives a known mix of requests and asserts the
// scraped counters and histogram counts match it exactly — the
// instrumentation is not sampled, so every driven request must appear.
func TestMetricsExactCounts(t *testing.T) {
	srv := testServer(t)

	if code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d", code)
	}
	if code, _ := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", `{"seed":9}`); code != http.StatusOK {
		t.Fatalf("rebuild: %d", code)
	}

	// 5 good scalar queries (3 connected + 2 biconnected) and one that
	// fails validation after the snapshot acquire (vertex out of range).
	scalars := []string{
		"/v1/graphs/demo/query/connected?u=0&v=6",
		"/v1/graphs/demo/query/connected?u=1&v=2",
		"/v1/graphs/demo/query/connected?u=3&v=5",
		"/v1/graphs/demo/query/biconnected?u=0&v=1",
		"/v1/graphs/demo/query/biconnected?u=0&v=6",
	}
	for _, q := range scalars {
		if code, _ := do(t, http.MethodGet, srv.URL+q, ""); code != http.StatusOK {
			t.Fatalf("%s: %d", q, code)
		}
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0&v=99", ""); code != http.StatusBadRequest {
		t.Fatal("out-of-range query did not 400")
	}

	// Two JSON batches of 4 (3 connected + 1 twoecc each) and one binary
	// batch of 3 bridges queries.
	jsonBatch := `{"queries":[{"op":"connected","u":0,"v":6},{"op":"connected","u":1,"v":2},
		{"op":"connected","u":2,"v":3},{"op":"twoecc","u":3,"v":6}]}`
	for i := 0; i < 2; i++ {
		code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/query/batch", jsonBatch)
		if code != http.StatusOK || body["count"] != float64(4) {
			t.Fatalf("json batch: %d %v", code, body)
		}
	}
	frame := wire.AppendRequest(nil, []fastbcc.Query{
		{Op: fastbcc.OpBridgesOnPath, U: 1, V: 5},
		{Op: fastbcc.OpBridgesOnPath, U: 0, V: 3},
		{Op: fastbcc.OpBridgesOnPath, U: 4, V: 6},
	})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/query/batch", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch: %d", resp.StatusCode)
	}

	// First scrape runs the epoch reclaim scan; the second observes the
	// settled state, so gauge assertions are deterministic.
	scrape(t, srv.URL)
	got := scrape(t, srv.URL)

	want := map[string]float64{
		// Per-endpoint request accounting: exactly what was driven above.
		`bccd_http_request_duration_seconds_count{endpoint="query"}`: 6,
		`bccd_http_request_duration_seconds_count{endpoint="batch"}`: 3,
		`bccd_http_request_duration_seconds_count{endpoint="load"}`:  1,
		`bccd_http_responses_total{endpoint="query",code="2xx"}`:     5,
		`bccd_http_responses_total{endpoint="query",code="4xx"}`:     1,
		`bccd_http_responses_total{endpoint="batch",code="2xx"}`:     3,
		`bccd_http_responses_total{endpoint="rebuild",code="2xx"}`:   1,
		`bccd_http_in_flight_requests`:                               0,

		// Scalar query latency by op: only successful queries observe.
		`bccd_http_query_duration_seconds_count{op="connected"}`:   3,
		`bccd_http_query_duration_seconds_count{op="biconnected"}`: 2,
		`bccd_http_query_duration_seconds_count{op="bridges"}`:     0,

		// Store-side batch accounting: counters only (batch latency is
		// the edge histogram above) — call count and per-op query
		// volume summed across batches.
		`fastbcc_batches_total`:                         3,
		`fastbcc_batch_queries_total{op="connected"}`:   6,
		`fastbcc_batch_queries_total{op="twoecc"}`:      2,
		`fastbcc_batch_queries_total{op="bridges"}`:     3,
		`fastbcc_batch_queries_total{op="biconnected"}`: 0,
		`fastbcc_acquires_total{discipline="epoch"}`:    3,
		// One refcount CAS acquire per scalar query request (the
		// out-of-range one pins before it validates).
		`fastbcc_acquires_total{discipline="refcount"}`: 6,

		// Builds: load + rebuild, both OK, each observing all 4 phases.
		`fastbcc_builds_total{outcome="ok"}`:                           2,
		`fastbcc_builds_total{outcome="error"}`:                        0,
		`fastbcc_builds_total{outcome="canceled"}`:                     0,
		`fastbcc_build_duration_seconds_count`:                         2,
		`fastbcc_build_phase_duration_seconds_count{phase="first_cc"}`: 2,
		`fastbcc_build_phase_duration_seconds_count{phase="rooting"}`:  2,
		`fastbcc_build_phase_duration_seconds_count{phase="tagging"}`:  2,
		`fastbcc_build_phase_duration_seconds_count{phase="last_cc"}`:  2,
		`fastbcc_runs_total`:                                           2,
		`fastbcc_run_errors_total`:                                     0,
		`fastbcc_run_panics_total`:                                     0,

		// Catalog and reclamation state after the settling scrape: one
		// graph, one live snapshot, the superseded v1 reclaimed.
		`fastbcc_graphs`:                    1,
		`fastbcc_live_snapshots`:            1,
		`fastbcc_retired_snapshots`:         0,
		`fastbcc_reclaimed_snapshots_total`: 1,
		`fastbcc_failing_graphs`:            0,
		`fastbcc_inflight_builds`:           0,
		`fastbcc_build_sheds_total`:         0,
		`fastbcc_faultpoints_armed`:         0,
	}
	for series, v := range want {
		g, ok := got[series]
		if !ok {
			// Zero-valued histogram series elide their buckets but must
			// still expose _count; counters always appear.
			t.Errorf("series %s missing from /metrics", series)
			continue
		}
		if g != v {
			t.Errorf("%s = %v, want %v", series, g, v)
		}
	}

	// Byte counters move with the codec actually used.
	if got[`bccd_http_request_bytes_total{codec="json"}`] <= 0 {
		t.Error("json request bytes not counted")
	}
	if got[`bccd_http_request_bytes_total{codec="binary"}`] != float64(len(frame)) {
		t.Errorf("binary request bytes = %v, want %d",
			got[`bccd_http_request_bytes_total{codec="binary"}`], len(frame))
	}
	if got[`bccd_http_response_bytes_total{codec="json"}`] <= 0 {
		t.Error("json response bytes not counted")
	}
	// Binary response: 16-byte header + 4 bytes per answer.
	if got[`bccd_http_response_bytes_total{codec="binary"}`] <= 0 {
		t.Error("binary response bytes not counted")
	}

	// Histograms carry real time: the edge request-latency sum and the
	// store build-duration sum are positive.
	if got[`bccd_http_request_duration_seconds_sum{endpoint="batch"}`] <= 0 {
		t.Error("batch endpoint duration sum is zero")
	}
	if got[`fastbcc_build_duration_seconds_sum`] <= 0 {
		t.Error("build duration sum is zero")
	}
}

// TestTraceEndpoint exercises GET /v1/graphs/{name}/trace: build
// attempts newest-first with versions, outcomes, and phase breakdowns.
func TestTraceEndpoint(t *testing.T) {
	srv := testServer(t)
	if code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatal("load failed")
	}
	if code, _ := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", `{"seed":9}`); code != http.StatusOK {
		t.Fatal("rebuild failed")
	}

	code, body := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/trace", "")
	if code != http.StatusOK {
		t.Fatalf("trace: %d %v", code, body)
	}
	builds, ok := body["builds"].([]any)
	if !ok || len(builds) != 2 {
		t.Fatalf("trace builds: %v", body["builds"])
	}
	first := builds[0].(map[string]any)
	second := builds[1].(map[string]any)
	if first["version"] != float64(2) || second["version"] != float64(1) {
		t.Fatalf("trace not newest-first: %v then %v", first["version"], second["version"])
	}
	for i, b := range []map[string]any{first, second} {
		if b["outcome"] != "ok" {
			t.Errorf("build %d outcome %v, want ok", i, b["outcome"])
		}
		if b["algorithm"] == "" {
			t.Errorf("build %d missing algorithm", i)
		}
		if _, ok := b["phases_ms"].(map[string]any); !ok {
			t.Errorf("build %d missing phases_ms", i)
		}
	}

	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/nosuch/trace", ""); code != http.StatusNotFound {
		t.Fatalf("trace of unknown graph: %d, want 404", code)
	}
}

// TestPprofGating: the pprof surface exists only when explicitly enabled,
// mirroring the -debug-faults discipline.
func TestPprofGating(t *testing.T) {
	store := fastbcc.NewStore(2)
	defer store.Close()

	plain := httptest.NewServer(NewHandler(store, Config{}))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated /debug/pprof/: %d, want 404", resp.StatusCode)
	}

	gated := httptest.NewServer(NewHandler(store, Config{DebugPprof: true}))
	defer gated.Close()
	resp, err = http.Get(gated.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gated /debug/pprof/: %d, want 200", resp.StatusCode)
	}
}

// TestGraphStatsPhases: the per-graph stats response carries the last
// build's phase breakdown.
func TestGraphStatsPhases(t *testing.T) {
	srv := testServer(t)
	if code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatal("load failed")
	}
	code, body := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	phases, ok := body["last_build_phases_ms"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing last_build_phases_ms: %v", body)
	}
	for _, k := range []string{"first_cc", "rooting", "tagging", "last_cc"} {
		if _, ok := phases[k]; !ok {
			t.Errorf("phases missing %q: %v", k, phases)
		}
	}
}
