package bccdhttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fastbcc "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	store := fastbcc.NewStore(2)
	srv := httptest.NewServer(NewHandler(store, Config{}))
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv
}

func do(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// barbell is the test graph: triangle 0-1-2, bridge 2-3, square 3-4-5-6.
const barbell = `{"n":7,"edges":[[0,1],[1,2],[2,0],[2,3],[3,4],[4,5],[5,6],[6,3]]}`

func TestServerEndToEnd(t *testing.T) {
	srv := testServer(t)

	code, body := do(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz: %d %v", code, body)
	}

	code, body = do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell)
	if code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}
	if body["n"] != float64(7) || body["blocks"] != float64(3) ||
		body["cuts"] != float64(2) || body["bridges"] != float64(1) || body["version"] != float64(1) {
		t.Fatalf("load stats: %v", body)
	}

	queries := []struct {
		url  string
		key  string
		want any
	}{
		{"/v1/graphs/demo/query/connected?u=0&v=6", "result", true},
		{"/v1/graphs/demo/query/biconnected?u=0&v=1", "result", true},
		{"/v1/graphs/demo/query/biconnected?u=0&v=6", "result", false},
		{"/v1/graphs/demo/query/twoecc?u=3&v=6", "result", true},
		{"/v1/graphs/demo/query/twoecc?u=2&v=3", "result", false},
		{"/v1/graphs/demo/query/separates?x=2&u=0&v=4", "result", true},
		{"/v1/graphs/demo/query/separates?x=4&u=0&v=3", "result", false},
		{"/v1/graphs/demo/query/cuts?u=0&v=4", "count", float64(2)},
		{"/v1/graphs/demo/query/bridges?u=1&v=5", "count", float64(1)},
	}
	for _, q := range queries {
		code, body := do(t, http.MethodGet, srv.URL+q.url, "")
		if code != http.StatusOK || body[q.key] != q.want {
			t.Errorf("%s: %d %v, want %s=%v", q.url, code, body, q.key, q.want)
		}
	}

	// Enumerating variants.
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/cuts?u=0&v=4&list=1", "")
	if code != http.StatusOK || fmt.Sprint(body["cuts"]) != "[2 3]" {
		t.Fatalf("cuts list: %d %v", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/bridges?u=1&v=5&list=1", "")
	if code != http.StatusOK || fmt.Sprint(body["bridges"]) != "[[2 3]]" {
		t.Fatalf("bridges list: %d %v", code, body)
	}

	// Rebuild refuses graph-defining fields: replacing a graph is PUT's job.
	if code, _ := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", `{"edges":[[0,1]]}`); code != http.StatusBadRequest {
		t.Fatalf("rebuild with edges: %d", code)
	}

	// Rebuild bumps the version; stats agree.
	code, body = do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", `{"seed":9}`)
	if code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("rebuild: %d %v", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("stats: %d %v", code, body)
	}

	// Listing.
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs", "")
	if code != http.StatusOK || len(body["graphs"].([]any)) != 1 {
		t.Fatalf("list: %d %v", code, body)
	}

	// Errors: bad vertex, unknown op, unknown graph, bad body.
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0&v=99", ""); code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: %d", code)
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0", ""); code != http.StatusBadRequest {
		t.Fatalf("missing v: %d", code)
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/nonsense?u=0&v=1", ""); code != http.StatusNotFound {
		t.Fatalf("unknown op: %d", code)
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/nope/query/connected?u=0&v=1", ""); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", code)
	}
	if code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/bad", `{"n":2,"edges":[[0,7]]}`); code != http.StatusBadRequest {
		t.Fatalf("bad edge: %d", code)
	}

	// Remove, then everything 404s.
	if code, _ := do(t, http.MethodDelete, srv.URL+"/v1/graphs/demo", ""); code != http.StatusOK {
		t.Fatalf("remove: %d", code)
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", ""); code != http.StatusNotFound {
		t.Fatalf("stats after remove: %d", code)
	}
}

// TestServerAlgorithmSelection loads the same graph once per registered
// algorithm and checks the decomposition stats and query answers are
// engine-independent, the "algo" field round-trips through stats, and
// rebuilds keep or switch the engine as requested.
func TestServerAlgorithmSelection(t *testing.T) {
	srv := testServer(t)

	// healthz advertises the registry.
	code, body := do(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, body)
	}
	algos, _ := body["algorithms"].([]any)
	if len(algos) < 5 {
		t.Fatalf("healthz algorithms: %v", body["algorithms"])
	}

	for _, a := range fastbcc.Algorithms() {
		name := "algo-" + a.Name
		req := fmt.Sprintf(`{"n":7,"edges":[[0,1],[1,2],[2,0],[2,3],[3,4],[4,5],[5,6],[6,3]],"algo":%q}`, a.Name)
		code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/"+name, req)
		if code != http.StatusOK {
			t.Fatalf("load %s: %d %v", a.Name, code, body)
		}
		if body["algo"] != a.Name {
			t.Fatalf("load %s: algo=%v", a.Name, body["algo"])
		}
		if body["blocks"] != float64(3) || body["cuts"] != float64(2) || body["bridges"] != float64(1) {
			t.Fatalf("%s decomposition differs: %v", a.Name, body)
		}
		code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/"+name+"/query/separates?x=2&u=0&v=4", "")
		if code != http.StatusOK || body["result"] != true {
			t.Fatalf("%s separates query: %d %v", a.Name, code, body)
		}
	}

	// Rebuild with no algo keeps the engine; with algo switches it.
	code, body = do(t, http.MethodPost, srv.URL+"/v1/graphs/algo-sm14/rebuild", "")
	if code != http.StatusOK || body["algo"] != "sm14" || body["version"] != float64(2) {
		t.Fatalf("rebuild keep: %d %v", code, body)
	}
	code, body = do(t, http.MethodPost, srv.URL+"/v1/graphs/algo-sm14/rebuild", `{"algo":"gbbs"}`)
	if code != http.StatusOK || body["algo"] != "gbbs" || body["version"] != float64(3) {
		t.Fatalf("rebuild switch: %d %v", code, body)
	}

	// Unknown algorithms are a client error on load and rebuild.
	if code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/bad-algo", `{"n":2,"edges":[[0,1]],"algo":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("load with unknown algo: %d", code)
	}
	if code, _ := do(t, http.MethodPost, srv.URL+"/v1/graphs/algo-fast/rebuild", `{"algo":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("rebuild with unknown algo: %d", code)
	}
}

// TestServerReorderTransparent loads the same graph with and without
// "reorder": true and requires byte-identical query answers for every op
// — the component reorder is a server-side locality optimization, so
// clients must keep speaking the ids of the edge list they loaded.
func TestServerReorderTransparent(t *testing.T) {
	srv := testServer(t)

	// A graph whose natural ids interleave two components, so the
	// reorder genuinely permutes: even ids form a triangle-bridge-square
	// chain, odd ids an independent cycle.
	g := `{"n":14,"edges":[[0,2],[2,4],[4,0],[4,6],[6,8],[8,10],[10,12],[12,6],[1,3],[3,5],[5,7],[7,9],[9,11],[11,13],[13,1]],"reorder":true}`
	plain := `{"n":14,"edges":[[0,2],[2,4],[4,0],[4,6],[6,8],[8,10],[10,12],[12,6],[1,3],[3,5],[5,7],[7,9],[9,11],[11,13],[13,1]]}`

	code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/reord", g)
	if code != http.StatusOK {
		t.Fatalf("load reordered: %d %v", code, body)
	}
	if body["reordered"] != true {
		t.Fatalf("load response lacks reordered flag: %v", body)
	}
	code, body = do(t, http.MethodPut, srv.URL+"/v1/graphs/orig", plain)
	if code != http.StatusOK {
		t.Fatalf("load original: %d %v", code, body)
	}
	if _, ok := body["reordered"]; ok {
		t.Fatalf("plain load reports reordered: %v", body)
	}

	ops := []string{
		"query/connected?u=%d&v=%d",
		"query/biconnected?u=%d&v=%d",
		"query/twoecc?u=%d&v=%d",
		"query/cuts?u=%d&v=%d&list=1",
		"query/bridges?u=%d&v=%d&list=1",
	}
	for u := 0; u < 14; u++ {
		for v := 0; v < 14; v++ {
			for _, op := range ops {
				q := fmt.Sprintf(op, u, v)
				codeR, r := do(t, http.MethodGet, srv.URL+"/v1/graphs/reord/"+q, "")
				codeO, o := do(t, http.MethodGet, srv.URL+"/v1/graphs/orig/"+q, "")
				if codeR != http.StatusOK || codeO != http.StatusOK {
					t.Fatalf("%s: status %d vs %d", q, codeR, codeO)
				}
				for _, key := range []string{"result", "count", "u", "v"} {
					if fmt.Sprint(r[key]) != fmt.Sprint(o[key]) {
						t.Fatalf("%s: %s = %v reordered vs %v original", q, key, r[key], o[key])
					}
				}
				// Enumerations come back in the client id space; compare
				// as sets.
				if fmt.Sprint(asSet(r["cuts"])) != fmt.Sprint(asSet(o["cuts"])) {
					t.Fatalf("%s: cuts %v vs %v", q, r["cuts"], o["cuts"])
				}
				if fmt.Sprint(asSet(r["bridges"])) != fmt.Sprint(asSet(o["bridges"])) {
					t.Fatalf("%s: bridges %v vs %v", q, r["bridges"], o["bridges"])
				}
			}
			// separates with every x.
			for x := 0; x < 14; x++ {
				q := fmt.Sprintf("query/separates?x=%d&u=%d&v=%d", x, u, v)
				_, r := do(t, http.MethodGet, srv.URL+"/v1/graphs/reord/"+q, "")
				_, o := do(t, http.MethodGet, srv.URL+"/v1/graphs/orig/"+q, "")
				if fmt.Sprint(r["result"]) != fmt.Sprint(o["result"]) {
					t.Fatalf("%s: %v reordered vs %v original", q, r["result"], o["result"])
				}
			}
		}
	}

	// Rebuild keeps the translation; stats keep reporting it.
	code, body = do(t, http.MethodPost, srv.URL+"/v1/graphs/reord/rebuild", "")
	if code != http.StatusOK || body["reordered"] != true {
		t.Fatalf("rebuild lost the reorder flag: %d %v", code, body)
	}
	// Replacing the graph without reorder clears the translation.
	code, body = do(t, http.MethodPut, srv.URL+"/v1/graphs/reord", plain)
	if code != http.StatusOK {
		t.Fatalf("replace: %d %v", code, body)
	}
	if _, ok := body["reordered"]; ok {
		t.Fatalf("replacement load still reports reordered: %v", body)
	}
}

// asSet canonicalizes a JSON list for order-insensitive comparison.
func asSet(v any) map[string]bool {
	out := map[string]bool{}
	list, _ := v.([]any)
	for _, e := range list {
		out[fmt.Sprint(e)] = true
	}
	return out
}
