package bccdhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/wire"
)

// mutateServer is testServer with the Store exposed, so tests can drain
// queued deltas deterministically with FlushDeltas instead of sleeping —
// the hour-long coalesce window keeps the background flusher from
// racing the assertions.
func mutateServer(t *testing.T) (*httptest.Server, *fastbcc.Store) {
	t.Helper()
	store := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers: 2, MutationCoalesce: time.Hour,
	})
	srv := httptest.NewServer(NewHandler(store, Config{}))
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return srv, store
}

func postMutation(t *testing.T, srv *httptest.Server, name, body string) (int, map[string]any) {
	t.Helper()
	return do(t, http.MethodPost, srv.URL+"/v1/graphs/"+name+"/edges", body)
}

// postBinaryMutation sends a bcu1 frame and decodes the bcm1 response.
func postBinaryMutation(t *testing.T, srv *httptest.Server, name string, adds, dels []fastbcc.Edge) (int, fastbcc.MutationResult) {
	t.Helper()
	frame := wire.AppendMutation(nil, adds, dels)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/"+name+"/edges", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.MutationContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fastbcc.MutationResult{}
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.MutationContentType {
		t.Fatalf("binary mutation response Content-Type = %q", ct)
	}
	res, err := wire.ReadMutationResult(resp.Body)
	if err != nil {
		t.Fatalf("decoding binary mutation response: %v", err)
	}
	return resp.StatusCode, res
}

// TestServerMutateJSON drives the full JSON mutation surface on the
// barbell: a fast-path insertion bumps the version synchronously and
// shows up as an overlay edge in stats; a bridge deletion queues, and
// after the coalesced flush the graph is split and the staleness fields
// read clean again.
func TestServerMutateJSON(t *testing.T) {
	srv, store := mutateServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	// Parallel edge inside the triangle: fast class, synchronous version.
	code, body := postMutation(t, srv, "demo", `{"add":[[0,2]]}`)
	if code != http.StatusOK {
		t.Fatalf("fast add: %d %v", code, body)
	}
	if body["fast"] != float64(1) || body["queued"] != float64(0) || body["version"] != float64(2) {
		t.Fatalf("fast add result: %v", body)
	}

	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, body)
	}
	if body["overlay_edges"] != float64(1) || body["m"] != float64(9) {
		t.Fatalf("stats after fast add: overlay_edges=%v m=%v", body["overlay_edges"], body["m"])
	}

	// Deleting the bridge cannot be classified: it queues for the
	// coalesced rebuild and the last-good snapshot keeps serving.
	code, body = postMutation(t, srv, "demo", `{"del":[[2,3]]}`)
	if code != http.StatusOK || body["queued"] != float64(1) || body["pending"] != float64(1) {
		t.Fatalf("bridge delete: %d %v", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0&v=6", "")
	if code != http.StatusOK || body["result"] != true {
		t.Fatalf("query before flush: %d %v (last-good should still serve)", code, body)
	}

	if err := store.FlushDeltas(context.Background(), "demo"); err != nil {
		t.Fatalf("FlushDeltas: %v", err)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0&v=6", "")
	if code != http.StatusOK || body["result"] != false {
		t.Fatalf("query after flush: %d %v (bridge delete should disconnect)", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK {
		t.Fatalf("stats after flush: %d %v", code, body)
	}
	if body["delta_flushes"] != float64(1) || body["pending_deltas"] != nil ||
		body["overlay_edges"] != nil {
		t.Fatalf("staleness after flush: %v", body)
	}
}

// TestServerMutateBinary: the bcu1/bcm1 codec end to end, plus Accept
// negotiation crossing codecs both ways.
func TestServerMutateBinary(t *testing.T) {
	srv, _ := mutateServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	code, res := postBinaryMutation(t, srv, "demo", []fastbcc.Edge{{U: 0, W: 2}}, nil)
	if code != http.StatusOK || res.Fast != 1 || res.Version != 2 || res.Queued != 0 {
		t.Fatalf("binary fast add: %d %+v", code, res)
	}

	// Binary request, JSON accept.
	frame := wire.AppendMutation(nil, []fastbcc.Edge{{U: 1, W: 2}}, nil)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/edges", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.MutationContentType)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("binary request + JSON accept did not produce JSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK || body["fast"] != float64(1) || body["version"] != float64(3) {
		t.Fatalf("negotiated JSON response: %d %v", resp.StatusCode, body)
	}

	// JSON request, binary accept.
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/edges",
		bytes.NewReader([]byte(`{"add":[[0,1]]}`)))
	req.Header.Set("Accept", wire.MutationContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, err = func() (fastbcc.MutationResult, error) { return wire.ReadMutationResult(resp.Body) }()
	if err != nil || res.Version != 4 || res.Fast != 1 {
		t.Fatalf("negotiated binary response: %v %+v", err, res)
	}
}

// TestServerMutateReorderTransparent: mutations against a reordered
// graph speak client ids, and after a flush the reordered and plain
// twins answer every query identically.
func TestServerMutateReorderTransparent(t *testing.T) {
	srv, store := mutateServer(t)
	edges := `[[0,2],[2,4],[4,0],[4,6],[6,8],[8,10],[10,12],[12,6],[1,3],[3,5],[5,7],[7,9],[9,11],[11,13],[13,1]]`
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/reord",
		`{"n":14,"edges":`+edges+`,"reorder":true}`); code != http.StatusOK {
		t.Fatalf("load reordered: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/orig",
		`{"n":14,"edges":`+edges+`}`); code != http.StatusOK {
		t.Fatalf("load original: %d %v", code, body)
	}

	// {0,1} joins the even and odd cycles — unclassifiable (different
	// components), so it queues on both graphs; {2,4} is a fast parallel
	// edge inside the even cycle's block.
	for _, name := range []string{"reord", "orig"} {
		code, body := postMutation(t, srv, name, `{"add":[[0,1],[2,4]]}`)
		if code != http.StatusOK {
			t.Fatalf("%s mutate: %d %v", name, code, body)
		}
		if body["queued"] != float64(1) || body["fast"] != float64(1) {
			t.Fatalf("%s mutate result: %v", name, body)
		}
		if err := store.FlushDeltas(context.Background(), name); err != nil {
			t.Fatalf("%s flush: %v", name, err)
		}
	}

	var qs []fastbcc.Query
	for u := int32(0); u < 14; u++ {
		for v := int32(0); v < 14; v++ {
			for op := fastbcc.OpConnected; op <= fastbcc.OpBridgesOnPath; op++ {
				qs = append(qs, fastbcc.Query{Op: op, U: u, V: v, X: (u + 5) % 14})
			}
		}
	}
	codeR, asR, _ := postBinaryBatch(t, srv, "reord", qs)
	codeO, asO, _ := postBinaryBatch(t, srv, "orig", qs)
	if codeR != http.StatusOK || codeO != http.StatusOK {
		t.Fatalf("batch status: reordered %d, original %d", codeR, codeO)
	}
	for i := range qs {
		if asR[i] != asO[i] {
			t.Fatalf("query %d (%+v): %d reordered vs %d original", i, qs[i], asR[i], asO[i])
		}
	}

	// Client ids out of the reordered map's range are rejected before
	// translation can index anything.
	if code, body := postMutation(t, srv, "reord", `{"add":[[0,99]]}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range client id: %d %v", code, body)
	}
}

// TestMutationMetricsExactCounts drives a known mutation mix and asserts
// the scraped mutation series exactly: the per-class counters, the
// coalesced flush-size histogram (one unit per second, so _sum is the
// delta count), and the pending/staleness gauges before and after the
// flush — aggregate and per-graph.
func TestMutationMetricsExactCounts(t *testing.T) {
	srv, store := mutateServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	// 2 fast (parallel edges in the triangle), 1 collapse (0-4 merges
	// triangle, bridge, and square), 2 rebuild-class deletions.
	for _, m := range []struct {
		body, class string
		n           float64
	}{
		{`{"add":[[0,2],[1,2]]}`, "fast", 2},
		{`{"add":[[0,4]]}`, "collapsed", 1},
		{`{"del":[[5,6],[4,5]]}`, "queued", 2},
	} {
		code, body := postMutation(t, srv, "demo", m.body)
		if code != http.StatusOK || body[m.class] != m.n {
			t.Fatalf("mutation %s: %d %v", m.body, code, body)
		}
	}

	got := scrape(t, srv.URL)
	pending := map[string]float64{
		`fastbcc_mutations_total{class="fast"}`:                       2,
		`fastbcc_mutations_total{class="collapse"}`:                   1,
		`fastbcc_mutations_total{class="rebuild"}`:                    2,
		`fastbcc_mutation_flush_size_count`:                           0,
		`fastbcc_pending_deltas`:                                      2,
		`fastbcc_graph_pending_deltas{graph="demo"}`:                  2,
		`bccd_http_responses_total{endpoint="mutate",code="2xx"}`:     3,
		`bccd_http_request_duration_seconds_count{endpoint="mutate"}`: 3,
	}
	for series, v := range pending {
		if g, ok := got[series]; !ok || g != v {
			t.Errorf("before flush: %s = %v (found %v), want %v", series, g, ok, v)
		}
	}
	if got[`fastbcc_delta_staleness_seconds`] <= 0 ||
		got[`fastbcc_graph_delta_staleness_seconds{graph="demo"}`] <= 0 {
		t.Errorf("staleness gauges not positive with deltas pending: %v / %v",
			got[`fastbcc_delta_staleness_seconds`],
			got[`fastbcc_graph_delta_staleness_seconds{graph="demo"}`])
	}

	if err := store.FlushDeltas(context.Background(), "demo"); err != nil {
		t.Fatalf("FlushDeltas: %v", err)
	}
	got = scrape(t, srv.URL)
	flushed := map[string]float64{
		`fastbcc_mutation_flush_size_count`:                   1,
		`fastbcc_mutation_flush_size_sum`:                     2, // 2 deltas in the one coalesced flush
		`fastbcc_pending_deltas`:                              0,
		`fastbcc_delta_staleness_seconds`:                     0,
		`fastbcc_graph_pending_deltas{graph="demo"}`:          0,
		`fastbcc_graph_delta_staleness_seconds{graph="demo"}`: 0,
	}
	for series, v := range flushed {
		if g, ok := got[series]; !ok || g != v {
			t.Errorf("after flush: %s = %v (found %v), want %v", series, g, ok, v)
		}
	}
}

// TestServerMutateValidation: the error surface — unknown graph,
// out-of-range endpoints, malformed and hostile binary frames.
func TestServerMutateValidation(t *testing.T) {
	srv, _ := mutateServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	if code, _ := postMutation(t, srv, "nope", `{"add":[[0,1]]}`); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", code)
	}
	if code, body := postMutation(t, srv, "demo", `{"add":[[0,7]]}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: %d %v", code, body)
	}
	if code, body := postMutation(t, srv, "demo", `{"add":[[0,`); code != http.StatusBadRequest {
		t.Fatalf("truncated JSON: %d %v", code, body)
	}

	// Truncated binary frame.
	frame := wire.AppendMutation(nil, []fastbcc.Edge{{U: 0, W: 1}}, nil)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/edges", bytes.NewReader(frame[:len(frame)-3]))
	req.Header.Set("Content-Type", wire.MutationContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated binary frame: %d, want 400", resp.StatusCode)
	}

	// Hostile frame declaring more mutations than the cap: 413.
	huge := wire.AppendMutation(nil, nil, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/edges", bytes.NewReader(huge))
	req.Header.Set("Content-Type", wire.MutationContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("hostile length prefix: %d, want 413", resp.StatusCode)
	}

	// An empty batch is legal: it reports the current version.
	code, body := postMutation(t, srv, "demo", `{}`)
	if code != http.StatusOK || body["version"] != float64(1) {
		t.Fatalf("empty mutation: %d %v", code, body)
	}
}
