// Package bccdhttp implements bccd's HTTP API around a fastbcc.Store:
// graph lifecycle (load/rebuild/remove), scalar queries, batched queries
// with JSON/binary content negotiation, health and stats, and the
// optional fault-injection debug endpoints. It lives outside cmd/bccd so
// tests and benchmarks (internal/bench's qbench) can drive the exact
// production handler in-process.
package bccdhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	fastbcc "repro"
	"repro/internal/faultpoint"
	"repro/internal/obs"
)

// maxBodyBytes bounds load-request bodies; a 64 MiB JSON edge list is
// roughly 4M edges, beyond which callers should ship a binary file and
// load it by path.
const maxBodyBytes = 64 << 20

// vertexMap is the id translation installed when a graph is loaded with
// "reorder": true. fwd maps a client (original) vertex id to the served
// (reordered) id; inv is the inverse, applied to vertices the server
// returns (cut/bridge enumerations). Queries and answers therefore always
// speak the client's original ids — the reorder is a pure server-side
// locality optimization.
type vertexMap struct {
	fwd, inv []int32
}

type server struct {
	store *fastbcc.Store
	mux   *http.ServeMux

	// log receives the handler's structured request logs; a nil *Logger
	// discards, so no call site guards. metrics is always non-nil.
	log       *obs.Logger
	metrics   *httpMetrics
	slowQuery time.Duration

	// mu guards remaps: the per-name vertex translation of graphs loaded
	// with "reorder". Absent name = identity. RWMutex so concurrent
	// queries (read-only lookups) never serialize on each other. A query
	// racing its own graph's replacement can observe a snapshot from one
	// load and the mapping from another; remapFor rejects any mapping
	// whose cardinality does not match the acquired snapshot, so the
	// worst outcome of that self-inflicted race is an identity-mapped
	// answer from the transition window — never an out-of-range id.
	mu     sync.RWMutex
	remaps map[string]*vertexMap

	// scratch pools per-request batch state: the decoded query and
	// answer slices, the response frame buffer, and an epoch Handle, so
	// a steady stream of binary batches allocates nothing per request on
	// the store side. A pooled Handle dropped by the GC is never Closed;
	// that leaks only its unpinned 128-byte slot in the epoch domain,
	// which cannot block reclamation.
	scratch sync.Pool
}

// Config tunes a handler beyond its Store: debug surfaces, logging, and
// the slow-query threshold. The zero value is the production default —
// no debug endpoints, silent logger, no slow-query log.
type Config struct {
	// DebugFaults mounts the /debug/faultpoints endpoints (arming
	// fault-injection points over HTTP — test and smoke deployments only).
	DebugFaults bool
	// DebugPprof mounts net/http/pprof under /debug/pprof/ — the
	// profiling surface stays off unless explicitly gated on, same
	// discipline as DebugFaults.
	DebugPprof bool
	// Logger receives the handler's structured request logs (nil
	// discards).
	Logger *obs.Logger
	// SlowQuery is the batch-duration threshold above which a batch
	// request is logged at warn level and counted (0 disables).
	SlowQuery time.Duration
}

// NewHandler wires the HTTP API around a Store; see Config for the
// debug and observability knobs. Every handler exposes its metrics on
// GET /metrics (Prometheus text): its own per-endpoint request series
// merged with the Store's serving/build/reclamation series.
func NewHandler(store *fastbcc.Store, cfg Config) http.Handler {
	s := &server{
		store:     store,
		mux:       http.NewServeMux(),
		remaps:    map[string]*vertexMap{},
		log:       cfg.Logger,
		metrics:   newHTTPMetrics(),
		slowQuery: cfg.SlowQuery,
	}
	s.scratch.New = func() any { return &batchScratch{} }
	s.handle("GET /healthz", "healthz", s.handleHealth)
	s.handle("GET /v1/graphs", "list", s.handleList)
	s.handle("PUT /v1/graphs/{name}", "load", s.handleLoad)
	s.handle("GET /v1/graphs/{name}", "stats", s.handleStats)
	s.handle("DELETE /v1/graphs/{name}", "remove", s.handleRemove)
	s.handle("POST /v1/graphs/{name}/rebuild", "rebuild", s.handleRebuild)
	s.handle("GET /v1/graphs/{name}/query/{op}", "query", s.handleQuery)
	s.handle("POST /v1/graphs/{name}/query/batch", "batch", s.handleQueryBatch)
	s.handle("POST /v1/graphs/{name}/edges", "mutate", s.handleMutate)
	s.handle("GET /v1/graphs/{name}/trace", "trace", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.DebugFaults {
		s.mux.HandleFunc("GET /debug/faultpoints", s.handleFaultList)
		s.mux.HandleFunc("PUT /debug/faultpoints", s.handleFaultSet)
		s.mux.HandleFunc("DELETE /debug/faultpoints", s.handleFaultReset)
	}
	if cfg.DebugPprof {
		// Mounted explicitly on this mux (the pprof import's DefaultServeMux
		// registration is unused), so an ungated server serves 404 here.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.mux
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Almost always the client hanging up mid-response; the request
		// is already answered as far as the server is concerned, so log
		// rather than fail.
		s.log.Warn("writing response", "err", err)
	}
}

func (s *server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statusClientClosedRequest is the conventional (nginx) status for a
// request whose client went away first; the canceled build released its
// slot, but there is no one left to tell.
const statusClientClosedRequest = 499

// writeBuildError maps a failed Load/Rebuild onto the HTTP status that
// tells the client what actually happened — and whether to retry:
//
//	400 bad request    unknown algorithm name (the request is wrong)
//	404 not found      graph never loaded / removed
//	499 (client gone)  the client canceled; the build was abandoned
//	500 internal       engine panic or unexpected build failure; the
//	                   entry keeps serving its last-good snapshot
//	503 unavailable    build admission saturated (Retry-After hints when
//	                   to come back) or the store is shutting down
//	504 timeout        the build exceeded its deadline and was canceled
func (s *server) writeBuildError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, fastbcc.ErrUnknownAlgorithm):
		status = http.StatusBadRequest
	case errors.Is(err, fastbcc.ErrNotLoaded):
		status = http.StatusNotFound
	case errors.Is(err, fastbcc.ErrSaturated):
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	case errors.Is(err, fastbcc.ErrStoreClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	s.writeError(w, status, "%v", err)
}

// buildCtx derives the context bounding one build request: the request's
// own context (a disconnected client cancels the build, freeing its
// admission slot) tightened by the optional per-request timeout_ms.
func buildCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// graphInfo is the stats payload for one snapshot. The failure fields
// (populated from Store.Status on the per-graph stats endpoint) are
// nonzero only while the entry's most recent builds have been failing —
// the snapshot described by the rest of the payload is then the
// last-good version still being served.
type graphInfo struct {
	Name      string  `json:"name"`
	Version   int64   `json:"version"`
	Algo      string  `json:"algo"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Blocks    int     `json:"blocks"`
	Cuts      int     `json:"cuts"`
	Bridges   int     `json:"bridges"`
	TwoECC    int     `json:"two_ecc"`
	Reordered bool    `json:"reordered,omitempty"`
	BuildMS   float64 `json:"build_ms"`
	BuiltAt   string  `json:"built_at"`
	// Phases breaks BuildMS down into the paper's four pipeline phases
	// (first_cc, rooting, tagging, last_cc) for the serving snapshot.
	Phases *phasesMS `json:"last_build_phases_ms,omitempty"`

	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	LastErrorAt         string `json:"last_error_at,omitempty"`

	// Mutation staleness (see Store.ApplyBatch): mutations accepted but
	// not yet reflected by the serving snapshot, the age of the oldest
	// one, fast-path insertions applied but not yet folded into the CSR,
	// and the coalesced delta rebuilds published so far. M above counts
	// overlay edges.
	PendingDeltas int     `json:"pending_deltas,omitempty"`
	StalenessMS   float64 `json:"staleness_ms,omitempty"`
	OverlayEdges  int     `json:"overlay_edges,omitempty"`
	DeltaFlushes  int64   `json:"delta_flushes,omitempty"`

	// Durability state (see fastbcc.StoreConfig.DataDir): set while the
	// graph's most recent snapshot persist or journal append failed.
	// Serving continues; a crash in this state may lose recent mutations.
	DurabilityDegraded bool   `json:"durability_degraded,omitempty"`
	LastPersistError   string `json:"last_persist_error,omitempty"`
	LastPersistErrorAt string `json:"last_persist_error_at,omitempty"`
}

// graphStatusInfo is the stats payload for an entry with no serving
// snapshot: it exists in the catalog but every build so far failed. The
// failure fields say why.
type graphStatusInfo struct {
	Name                string `json:"name"`
	Loaded              bool   `json:"loaded"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	LastErrorAt         string `json:"last_error_at,omitempty"`
}

// remap returns the vertex translation of name, or nil for identity.
func (s *server) remap(name string) *vertexMap {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.remaps[name]
}

// remapFor returns the vertex translation to apply to a query against
// snap, or nil for identity. A mapping whose cardinality does not match
// the snapshot's vertex count belongs to a different load generation
// (the client replaced the graph while querying it) and is rejected —
// applying it could index out of range on either side of the
// translation.
func (s *server) remapFor(snap *fastbcc.Snapshot) *vertexMap {
	vm := s.remap(snap.Name)
	if vm == nil || len(vm.fwd) != snap.Graph.NumVertices() {
		return nil
	}
	return vm
}

// setRemap installs (or, with nil, clears) the vertex translation of name.
func (s *server) setRemap(name string, m *vertexMap) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil {
		delete(s.remaps, name)
	} else {
		s.remaps[name] = m
	}
}

func (s *server) info(snap *fastbcc.Snapshot) graphInfo {
	var phases *phasesMS
	if snap.Result != nil {
		p := toPhasesMS(snap.Result.Times)
		phases = &p
	}
	gi := graphInfo{
		Phases:    phases,
		Name:      snap.Name,
		Version:   snap.Version,
		Algo:      snap.Algorithm,
		N:         snap.Graph.NumVertices(),
		M:         snap.NumEdges(),
		Blocks:    snap.Index.NumBlocks(),
		Cuts:      snap.Index.NumCutVertices(),
		Bridges:   snap.Index.NumBridges(),
		TwoECC:    snap.Index.NumTwoECC(),
		Reordered: s.remapFor(snap) != nil,
		BuildMS:   float64(snap.BuildTime.Microseconds()) / 1000,
		BuiltAt:   snap.BuiltAt.UTC().Format(timeFmt),
	}
	if st, err := s.store.Status(snap.Name); err == nil {
		gi.PendingDeltas = st.PendingDeltas
		gi.StalenessMS = float64(st.DeltaAge.Microseconds()) / 1000
		gi.OverlayEdges = st.OverlayEdges
		gi.DeltaFlushes = st.DeltaFlushes
		gi.DurabilityDegraded = st.DurabilityDegraded
		gi.LastPersistError = st.LastPersistError
		if !st.LastPersistErrorAt.IsZero() {
			gi.LastPersistErrorAt = st.LastPersistErrorAt.UTC().Format(timeFmt)
		}
	}
	return gi
}

// algoInfo is one entry of the healthz "algorithms" list.
type algoInfo struct {
	Name          string `json:"name"`
	ConnectedOnly bool   `json:"connected_only,omitempty"`
	Sequential    bool   `json:"sequential,omitempty"`
	Deterministic bool   `json:"deterministic,omitempty"`
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	algos := make([]algoInfo, 0, 8)
	for _, a := range fastbcc.Algorithms() {
		algos = append(algos, algoInfo{
			Name:          a.Name,
			ConnectedOnly: a.ConnectedOnly,
			Sequential:    a.Sequential,
			Deterministic: a.Deterministic,
		})
	}
	// A degraded catalog — entries whose latest build failed (still
	// serving their last-good snapshot) or whose durability is degraded
	// (still acknowledging mutations, but a crash may lose them) — stays
	// HTTP 200 (the server is up and answering queries) but reports
	// ok:false so health checks and operators see the failure without
	// scraping per-graph stats.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ok":                 st.FailingGraphs == 0 && st.DegradedGraphs == 0,
		"degraded":           st.FailingGraphs > 0 || st.DegradedGraphs > 0,
		"graphs":             st.Graphs,
		"live_snapshots":     st.LiveSnapshots,
		"by_algorithm":       st.ByAlgorithm,
		"failing_graphs":     st.FailingGraphs,
		"build_failures":     st.BuildFailures,
		"in_flight_builds":   st.InFlightBuilds,
		"degraded_graphs":    st.DegradedGraphs,
		"persist_failures":   st.PersistFailures,
		"recovered_graphs":   st.RecoveredGraphs,
		"replayed_mutations": st.ReplayedMutations,
		"algorithms":         algos,
	})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.store.Names()
	out := make([]graphInfo, 0, len(names))
	for _, name := range names {
		snap, err := s.store.Acquire(name)
		if err != nil {
			continue // removed between Names and Acquire
		}
		out = append(out, s.info(snap))
		snap.Release()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

// loadRequest loads a graph from an inline edge list or a binary file
// written by fastbcc.SaveGraph.
type loadRequest struct {
	N           int        `json:"n"`
	Edges       [][2]int32 `json:"edges"`
	Path        string     `json:"path"`
	Algo        string     `json:"algo"`
	Seed        uint64     `json:"seed"`
	Threads     int        `json:"threads"`
	LocalSearch bool       `json:"local_search"`
	Source      int32      `json:"source"`
	// Reorder relabels the graph before serving so each connected
	// component occupies a contiguous CSR range (the paper's locality
	// optimization). Transparent to clients: queries and answers keep
	// using the ids of the loaded edge list.
	Reorder bool `json:"reorder"`
	// TimeoutMS bounds this build; past the deadline it is cooperatively
	// canceled (504) and the entry keeps its previous snapshot. It can
	// only tighten the server-wide -build-timeout, never extend it.
	TimeoutMS int `json:"timeout_ms"`
}

func (s *server) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var g *fastbcc.Graph
	var err error
	switch {
	case req.Path != "" && req.Edges != nil:
		s.writeError(w, http.StatusBadRequest, "give either edges or path, not both")
		return
	case req.Path != "":
		g, err = fastbcc.LoadGraph(req.Path)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "load %q: %v", req.Path, err)
			return
		}
	default:
		edges := make([]fastbcc.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = fastbcc.Edge{U: e[0], W: e[1]}
		}
		g, err = fastbcc.NewGraphFromEdges(req.N, edges)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad graph: %v", err)
			return
		}
	}
	var vm *vertexMap
	if req.Reorder {
		rg, fwd := fastbcc.ReorderByComponent(g, req.Threads)
		inv := make([]int32, len(fwd))
		for v, nv := range fwd {
			inv[nv] = int32(v)
		}
		g = rg
		vm = &vertexMap{fwd: fwd, inv: inv}
	}
	opts := &fastbcc.Options{Algorithm: req.Algo, Seed: req.Seed, Threads: req.Threads, LocalSearch: req.LocalSearch, Source: req.Source}
	ctx, cancel := buildCtx(r, req.TimeoutMS)
	defer cancel()
	snap, err := s.store.Load(ctx, name, g, opts)
	if err != nil {
		s.log.Warn("load failed", "graph", name, "err", err)
		s.writeBuildError(w, err)
		return
	}
	// A load without reorder replacing a reordered entry clears the
	// translation along with the graph it described.
	s.setRemap(name, vm)
	defer snap.Release()
	s.log.Info("graph loaded", "graph", name, "version", snap.Version,
		"algo", snap.Algorithm, "n", snap.Graph.NumVertices(), "m", snap.Graph.NumEdges(),
		"took", snap.BuildTime)
	s.writeJSON(w, http.StatusOK, s.info(snap))
}

func (s *server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req loadRequest // only the option fields apply
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.N != 0 || req.Edges != nil || req.Path != "" {
			s.writeError(w, http.StatusBadRequest,
				"rebuild recomputes the existing graph; to replace it, PUT the graph instead")
			return
		}
	}
	opts := &fastbcc.Options{Algorithm: req.Algo, Seed: req.Seed, Threads: req.Threads, LocalSearch: req.LocalSearch, Source: req.Source}
	ctx, cancel := buildCtx(r, req.TimeoutMS)
	defer cancel()
	snap, err := s.store.Rebuild(ctx, name, opts)
	if err != nil {
		s.log.Warn("rebuild failed", "graph", name, "err", err)
		s.writeBuildError(w, err)
		return
	}
	defer snap.Release()
	s.log.Info("graph rebuilt", "graph", name, "version", snap.Version,
		"algo", snap.Algorithm, "took", snap.BuildTime)
	s.writeJSON(w, http.StatusOK, s.info(snap))
}

const timeFmt = "2006-01-02T15:04:05.000Z"

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	snap, err := s.store.Acquire(name)
	if err != nil {
		// No serving snapshot — but the entry may still exist with
		// recorded build failures (a graph whose initial build never
		// succeeded). Report that instead of a bare 404.
		if st, serr := s.store.Status(name); serr == nil {
			info := graphStatusInfo{
				Name:                name,
				ConsecutiveFailures: st.ConsecutiveFailures,
				LastError:           st.LastError,
			}
			if !st.LastErrorAt.IsZero() {
				info.LastErrorAt = st.LastErrorAt.UTC().Format(timeFmt)
			}
			s.writeJSON(w, http.StatusOK, info)
			return
		}
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer snap.Release()
	info := s.info(snap)
	if st, serr := s.store.Status(name); serr == nil && st.ConsecutiveFailures > 0 {
		info.ConsecutiveFailures = st.ConsecutiveFailures
		info.LastError = st.LastError
		info.LastErrorAt = st.LastErrorAt.UTC().Format(timeFmt)
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.store.Remove(name); err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.log.Info("graph removed", "graph", name)
	s.setRemap(name, nil)
	s.writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}

// queryResponse answers one query; Count/Cuts/Bridges appear only for
// the ops that produce them.
type queryResponse struct {
	Graph   string     `json:"graph"`
	Version int64      `json:"version"`
	Op      string     `json:"op"`
	U       int32      `json:"u"`
	V       int32      `json:"v"`
	X       *int32     `json:"x,omitempty"`
	Result  *bool      `json:"result,omitempty"`
	Count   *int       `json:"count,omitempty"`
	Cuts    []int32    `json:"cuts,omitempty"`
	Bridges [][2]int32 `json:"bridges,omitempty"`
}

var errMissingParam = errors.New("missing parameter")

func vertexParam(r *http.Request, key string, n int) (int32, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("%w %q", errMissingParam, key)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", key, err)
	}
	if v < 0 || v >= int64(n) {
		return 0, fmt.Errorf("vertex %s=%d out of range [0,%d)", key, v, n)
	}
	return int32(v), nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	name, op := r.PathValue("name"), r.PathValue("op")
	snap, err := s.store.Acquire(name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer snap.Release()
	idx := snap.Index
	n := snap.Graph.NumVertices()

	// Reordered graphs: clients keep speaking original ids; fwd maps them
	// to the served CSR and inv maps enumerated vertices back.
	var fwd, inv []int32
	if vm := s.remapFor(snap); vm != nil {
		fwd, inv = vm.fwd, vm.inv
	}
	toServed := func(v int32) int32 {
		if fwd != nil {
			return fwd[v]
		}
		return v
	}
	toClient := func(v int32) int32 {
		if inv != nil {
			return inv[v]
		}
		return v
	}

	u, err := vertexParam(r, "u", n)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := vertexParam(r, "v", n)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The response echoes the client's ids; the index sees served ids.
	resp := queryResponse{Graph: snap.Name, Version: snap.Version, Op: op, U: u, V: v}
	u, v = toServed(u), toServed(v)
	list := r.URL.Query().Get("list") != ""
	setBool := func(b bool) { resp.Result = &b }
	setCount := func(c int) { resp.Count = &c }

	switch op {
	case "connected":
		setBool(idx.Connected(u, v))
	case "biconnected":
		setBool(idx.Biconnected(u, v))
	case "twoecc":
		setBool(idx.TwoEdgeConnected(u, v))
	case "separates":
		x, err := vertexParam(r, "x", n)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.X = &x
		setBool(idx.Separates(toServed(x), u, v))
	case "cuts":
		setCount(idx.NumCutsOnPath(u, v))
		if list {
			cuts := idx.CutsOnPath(u, v)
			if cuts == nil {
				cuts = []int32{}
			}
			for i := range cuts {
				cuts[i] = toClient(cuts[i])
			}
			resp.Cuts = cuts
		}
	case "bridges":
		setCount(idx.NumBridgesOnPath(u, v))
		if list {
			bridges := idx.BridgesOnPath(u, v)
			resp.Bridges = make([][2]int32, len(bridges))
			for i, b := range bridges {
				resp.Bridges[i] = [2]int32{toClient(b.U), toClient(b.W)}
			}
		}
	default:
		s.writeError(w, http.StatusNotFound,
			"unknown op %q (want connected|biconnected|twoecc|separates|cuts|bridges)", op)
		return
	}
	// Answered queries record into the per-op latency histogram (bad
	// requests and unknown ops only count toward the endpoint series).
	if h := s.metrics.queryDur[op]; h != nil {
		h.Observe(time.Since(t0))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// The /debug/faultpoints endpoints (mounted only with -debug-faults)
// expose the fault-injection registry over HTTP, so smoke tests and
// chaos drills can arm faults in a running server without rebuilding it:
//
//	GET    /debug/faultpoints   list armed points with modes and hit counts
//	PUT    /debug/faultpoints   arm from {"spec": "build.error=error:after=1"}
//	                            (the -faultpoints flag grammar)
//	DELETE /debug/faultpoints   disarm everything

func (s *server) handleFaultList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"points": faultpoint.List()})
}

func (s *server) handleFaultSet(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Spec string `json:"spec"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := faultpoint.Set(req.Spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"points": faultpoint.List()})
}

func (s *server) handleFaultReset(w http.ResponseWriter, r *http.Request) {
	faultpoint.Reset()
	s.writeJSON(w, http.StatusOK, map[string]bool{"reset": true})
}
