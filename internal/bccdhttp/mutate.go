package bccdhttp

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	fastbcc "repro"
	"repro/internal/wire"
)

// POST /v1/graphs/{name}/edges mutates a loaded graph in place: a batch
// of edge insertions and deletions applied through Store.ApplyBatch,
// which classifies each insertion against the serving decomposition and
// picks the cheapest exact update (shared-index fast path, bounded
// block-path collapse, or one coalesced background rebuild). Two
// encodings are negotiated by Content-Type, mirroring the batch-query
// endpoint:
//
//   - application/json (default):
//     {"add":[[0,5],[2,3]],"del":[[1,4]],"timeout_ms":50}
//     → {"graph":..,"version":..,"fast":..,"collapsed":..,"queued":..,
//     "pending":..,"delta_age_ms":..}
//   - application/x-fastbcc-mutation: a binary wire frame ("bcu1" in,
//     "bcm1" out; package wire), 8 bytes per edge.
//
// The response encoding follows the request's unless an Accept header
// names the other one. Edges are client (original) vertex ids: on a
// reordered graph the handler translates them through the same forward
// map as queries, so mutation is reorder-transparent. queued > 0 means
// those entries are not yet visible to queries — pending and
// delta_age_ms report the staleness window, which closes when the
// coalesced rebuild publishes.

// jsonMutationRequest is the JSON mutation encoding: edge endpoints as
// [u,w] pairs.
type jsonMutationRequest struct {
	Add       [][2]int32 `json:"add"`
	Del       [][2]int32 `json:"del"`
	TimeoutMS int        `json:"timeout_ms"`
}

type jsonMutationResponse struct {
	Graph      string  `json:"graph"`
	Version    int64   `json:"version"`
	Fast       int     `json:"fast"`
	Collapsed  int     `json:"collapsed"`
	Queued     int     `json:"queued"`
	Pending    int     `json:"pending"`
	DeltaAgeMS float64 `json:"delta_age_ms"`
}

// wantsBinaryMutation is wantsBinary for the mutation codec: an explicit
// Accept for either type wins, otherwise the response mirrors the
// request.
func wantsBinaryMutation(r *http.Request, binaryReq bool) bool {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, wire.MutationContentType):
		return true
	case strings.Contains(accept, "application/json"):
		return false
	}
	return binaryReq
}

// writeMutationError maps a failed ApplyBatch onto its HTTP status:
// 404 for a graph never loaded or removed, 503 for a closing store,
// 504/499 for a deadline or departed client while waiting on the
// entry's build lock, and 400 for everything the request itself got
// wrong (out-of-range endpoints, oversized batch).
func (s *server) writeMutationError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, fastbcc.ErrNotLoaded):
		status = http.StatusNotFound
	case errors.Is(err, fastbcc.ErrStoreClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	}
	s.writeError(w, status, "%v", err)
}

func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sc := s.scratch.Get().(*batchScratch)
	defer s.scratch.Put(sc)

	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), wire.MutationContentType)
	timeoutMS := 0
	reqCodec, respCodec := "json", "json"
	if binaryReq {
		reqCodec = "binary"
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxBodyBytes)}
	rec, _ := w.(*statusRecorder)
	var respStart int64
	if rec != nil {
		respStart = rec.bytes
	}
	defer func() {
		s.metrics.reqBytes[reqCodec].Add(body.n)
		if rec != nil {
			s.metrics.resBytes[respCodec].Add(rec.bytes - respStart)
		}
	}()

	var adds, dels []fastbcc.Edge
	if binaryReq {
		var err error
		adds, dels, err = wire.ReadMutation(body)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, wire.ErrTooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, status, "%v", err)
			return
		}
	} else {
		var req jsonMutationRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if len(req.Add)+len(req.Del) > wire.MaxMutations {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"batch of %d mutations exceeds limit %d",
				len(req.Add)+len(req.Del), wire.MaxMutations)
			return
		}
		timeoutMS = req.TimeoutMS
		toEdges := func(pairs [][2]int32) []fastbcc.Edge {
			if len(pairs) == 0 {
				return nil
			}
			out := make([]fastbcc.Edge, 0, len(pairs))
			for _, p := range pairs {
				out = append(out, fastbcc.Edge{U: p[0], W: p[1]})
			}
			return out
		}
		adds, dels = toEdges(req.Add), toEdges(req.Del)
	}
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, "bad timeout_ms %q", raw)
			return
		}
		timeoutMS = ms
	}

	ctx := r.Context()
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
	}

	// Reordered graphs: mutations speak client ids like queries do, so
	// translate through the same forward map. The snapshot pin only
	// validates the map generation (remapFor rejects a mapping from a
	// different load); it is released before ApplyBatch, which acquires
	// its own view under the entry's build lock.
	if sc.h == nil {
		sc.h = s.store.NewHandle()
	}
	snap, err := sc.h.Acquire(name)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, fastbcc.ErrStoreClosed) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, "%v", err)
		return
	}
	vm := s.remapFor(snap)
	sc.h.Release()
	if vm != nil {
		n := uint32(len(vm.fwd))
		translate := func(kind string, es []fastbcc.Edge) bool {
			for i := range es {
				e := &es[i]
				if uint32(e.U) >= n || uint32(e.W) >= n {
					s.writeError(w, http.StatusBadRequest,
						"%s %d: vertex out of range [0,%d)", kind, i, n)
					return false
				}
				e.U, e.W = vm.fwd[e.U], vm.fwd[e.W]
			}
			return true
		}
		if !translate("add", adds) || !translate("del", dels) {
			return
		}
	}

	res, err := s.store.ApplyBatch(ctx, name, adds, dels)
	if err != nil {
		s.writeMutationError(w, err)
		return
	}
	s.log.Info("mutate", "graph", name, "version", res.Version,
		"fast", res.Fast, "collapsed", res.Collapsed, "queued", res.Queued,
		"pending", res.Pending)

	if wantsBinaryMutation(r, binaryReq) {
		respCodec = "binary"
		sc.buf = wire.AppendMutationResult(sc.buf[:0], res)
		w.Header().Set("Content-Type", wire.MutationContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(sc.buf)))
		if _, err := w.Write(sc.buf); err != nil {
			s.log.Warn("writing mutation response", "graph", name, "err", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, jsonMutationResponse{
		Graph:      name,
		Version:    res.Version,
		Fast:       res.Fast,
		Collapsed:  res.Collapsed,
		Queued:     res.Queued,
		Pending:    res.Pending,
		DeltaAgeMS: float64(res.DeltaAge.Microseconds()) / 1000,
	})
}
