package bccdhttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	fastbcc "repro"
	"repro/internal/wire"
)

// postBatch sends a JSON batch and decodes the JSON response.
func postBatch(t *testing.T, srv *httptest.Server, name, body string) (int, map[string]any) {
	t.Helper()
	return do(t, http.MethodPost, srv.URL+"/v1/graphs/"+name+"/query/batch", body)
}

// postBinaryBatch sends a binary wire frame and decodes a binary
// response (the default mirror negotiation).
func postBinaryBatch(t *testing.T, srv *httptest.Server, name string, qs []fastbcc.Query) (int, []fastbcc.Answer, int64) {
	t.Helper()
	frame := wire.AppendRequest(nil, qs)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/"+name+"/query/batch", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, 0
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("binary batch response Content-Type = %q", ct)
	}
	as, version, err := wire.ReadResponse(resp.Body, nil)
	if err != nil {
		t.Fatalf("decoding binary batch response: %v", err)
	}
	return resp.StatusCode, as, version
}

// TestServerBatchMatchesScalar: every op, JSON batch and binary batch,
// answer-for-answer identical to the scalar endpoints.
func TestServerBatchMatchesScalar(t *testing.T) {
	srv := testServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	var qs []fastbcc.Query
	var jq []string
	var want []fastbcc.Answer
	for u := int32(0); u < 7; u++ {
		for v := int32(0); v < 7; v++ {
			for op := fastbcc.OpConnected; op <= fastbcc.OpBridgesOnPath; op++ {
				x := (u + v) % 7
				qs = append(qs, fastbcc.Query{Op: op, U: u, V: v, X: x})
				jq = append(jq, fmt.Sprintf(`{"op":%q,"u":%d,"v":%d,"x":%d}`, op, u, v, x))

				url := fmt.Sprintf("%s/v1/graphs/demo/query/%s?u=%d&v=%d", srv.URL, op, u, v)
				if op == fastbcc.OpSeparates {
					url += fmt.Sprintf("&x=%d", x)
				}
				code, body := do(t, http.MethodGet, url, "")
				if code != http.StatusOK {
					t.Fatalf("scalar %s: %d %v", url, code, body)
				}
				if op.Counts() {
					want = append(want, fastbcc.Answer(body["count"].(float64)))
				} else if body["result"] == true {
					want = append(want, 1)
				} else {
					want = append(want, 0)
				}
			}
		}
	}

	code, body := postBatch(t, srv, "demo", `{"queries":[`+strings.Join(jq, ",")+`]}`)
	if code != http.StatusOK {
		t.Fatalf("JSON batch: %d %v", code, body)
	}
	if body["count"] != float64(len(qs)) || body["version"] != float64(1) {
		t.Fatalf("JSON batch header: %v", body)
	}
	jsonAs := body["answers"].([]any)
	for i, a := range jsonAs {
		if fastbcc.Answer(a.(float64)) != want[i] {
			t.Fatalf("JSON batch answer %d (%+v): got %v, want %d", i, qs[i], a, want[i])
		}
	}

	code, as, version := postBinaryBatch(t, srv, "demo", qs)
	if code != http.StatusOK {
		t.Fatalf("binary batch: %d", code)
	}
	if version != 1 || len(as) != len(want) {
		t.Fatalf("binary batch: version=%d count=%d", version, len(as))
	}
	for i := range want {
		if as[i] != want[i] {
			t.Fatalf("binary batch answer %d (%+v): got %d, want %d", i, qs[i], as[i], want[i])
		}
	}
}

// TestServerBatchAcceptNegotiation: a binary request with an explicit
// JSON Accept gets a JSON body (the CI smoke test's diff path), and a
// JSON request can ask for a binary answer.
func TestServerBatchAcceptNegotiation(t *testing.T) {
	srv := testServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	frame := wire.AppendRequest(nil, []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 6}})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/query/batch", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("binary request + JSON accept did not produce JSON: %v", err)
	}
	if resp.StatusCode != http.StatusOK || fmt.Sprint(body["answers"]) != "[1]" {
		t.Fatalf("negotiated JSON response: %d %v", resp.StatusCode, body)
	}

	req, _ = http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/query/batch",
		strings.NewReader(`{"queries":[{"op":"connected","u":0,"v":6}]}`))
	req.Header.Set("Accept", wire.ContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	as, version, err := wire.ReadResponse(resp.Body, nil)
	if err != nil || version != 1 || len(as) != 1 || as[0] != 1 {
		t.Fatalf("negotiated binary response: %v as=%v v=%d", err, as, version)
	}
}

// TestServerBatchReorderTransparent: batches against a reordered graph
// speak client ids, exactly like the scalar endpoints.
func TestServerBatchReorderTransparent(t *testing.T) {
	srv := testServer(t)
	g := `{"n":14,"edges":[[0,2],[2,4],[4,0],[4,6],[6,8],[8,10],[10,12],[12,6],[1,3],[3,5],[5,7],[7,9],[9,11],[11,13],[13,1]],"reorder":true}`
	plain := `{"n":14,"edges":[[0,2],[2,4],[4,0],[4,6],[6,8],[8,10],[10,12],[12,6],[1,3],[3,5],[5,7],[7,9],[9,11],[11,13],[13,1]]}`
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/reord", g); code != http.StatusOK {
		t.Fatalf("load reordered: %d %v", code, body)
	}
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/orig", plain); code != http.StatusOK {
		t.Fatalf("load original: %d %v", code, body)
	}

	var qs []fastbcc.Query
	for u := int32(0); u < 14; u++ {
		for v := int32(0); v < 14; v++ {
			for op := fastbcc.OpConnected; op <= fastbcc.OpBridgesOnPath; op++ {
				qs = append(qs, fastbcc.Query{Op: op, U: u, V: v, X: (u + 5) % 14})
			}
		}
	}
	codeR, asR, _ := postBinaryBatch(t, srv, "reord", qs)
	codeO, asO, _ := postBinaryBatch(t, srv, "orig", qs)
	if codeR != http.StatusOK || codeO != http.StatusOK {
		t.Fatalf("batch status: reordered %d, original %d", codeR, codeO)
	}
	for i := range qs {
		if asR[i] != asO[i] {
			t.Fatalf("query %d (%+v): %d reordered vs %d original", i, qs[i], asR[i], asO[i])
		}
	}
}

// TestServerBatchValidation: bad ops and out-of-range vertices fail the
// whole batch with 400 naming the query; oversized batches are shed.
func TestServerBatchValidation(t *testing.T) {
	srv := testServer(t)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	code, body := postBatch(t, srv, "demo", `{"queries":[{"op":"connected","u":0,"v":1},{"op":"nonsense","u":0,"v":1}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "query 1") {
		t.Fatalf("unknown op: %d %v", code, body)
	}

	code, body = postBatch(t, srv, "demo", `{"queries":[{"op":"connected","u":0,"v":1},{"op":"connected","u":0,"v":99}]}`)
	if code != http.StatusBadRequest || !strings.Contains(body["error"].(string), "query 1") {
		t.Fatalf("out-of-range vertex: %d %v", code, body)
	}

	// Binary invalid op: rejected by the engine with the query index
	// (the wire layer passes ops through).
	qs := []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 1}, {Op: fastbcc.QueryOp(99), U: 0, V: 1}}
	if code, _, _ := postBinaryBatch(t, srv, "demo", qs); code != http.StatusBadRequest {
		t.Fatalf("binary invalid op: %d, want 400", code)
	}

	if code, _ := postBatch(t, srv, "nope", `{"queries":[{"op":"connected","u":0,"v":1}]}`); code != http.StatusNotFound {
		t.Fatalf("unknown graph: %d, want 404", code)
	}

	// An empty batch is legal and returns zero answers.
	code, body = postBatch(t, srv, "demo", `{"queries":[]}`)
	if code != http.StatusOK || body["count"] != float64(0) {
		t.Fatalf("empty batch: %d %v", code, body)
	}
}
