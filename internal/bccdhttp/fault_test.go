package bccdhttp

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/faultpoint"
	"repro/internal/wire"
)

// End-to-end fault-tolerance tests: the production handler over a Store
// with fault-injection points armed through the /debug/faultpoints
// endpoint — the same wiring the CI smoke test drives with curl. All of
// them run under -race in CI.

// faultServer is testServer with the debug faultpoint endpoints mounted
// and the Store handle exposed (for deterministic in-flight polling).
func faultServer(t *testing.T, cfg fastbcc.StoreConfig) (*httptest.Server, *fastbcc.Store) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	store := fastbcc.NewStoreWithConfig(cfg)
	srv := httptest.NewServer(NewHandler(store, Config{DebugFaults: true}))
	t.Cleanup(func() {
		faultpoint.Reset()
		srv.Close()
		store.Close()
	})
	return srv, store
}

func arm(t *testing.T, srv *httptest.Server, spec string) {
	t.Helper()
	code, body := do(t, http.MethodPut, srv.URL+"/debug/faultpoints", `{"spec":"`+spec+`"}`)
	if code != http.StatusOK {
		t.Fatalf("arming %q: %d %v", spec, code, body)
	}
}

func disarm(t *testing.T, srv *httptest.Server) {
	t.Helper()
	if code, body := do(t, http.MethodDelete, srv.URL+"/debug/faultpoints", ""); code != http.StatusOK {
		t.Fatalf("reset faultpoints: %d %v", code, body)
	}
}

// TestServerPanicServesLastGood: a rebuild whose engine panics returns
// 500 while queries keep answering from the last-good snapshot at the
// old version; stats and healthz report the degradation; a healthy
// rebuild clears it and bumps the version.
func TestServerPanicServesLastGood(t *testing.T) {
	srv, _ := faultServer(t, fastbcc.StoreConfig{})

	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	arm(t, srv, "build.panic-in-engine=panic")
	code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", "")
	if code != http.StatusInternalServerError {
		t.Fatalf("rebuild with panicking engine: %d %v, want 500", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panicked") {
		t.Fatalf("error body %v does not mention the panic", body)
	}

	// Queries still answer, from version 1.
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/biconnected?u=0&v=1", "")
	if code != http.StatusOK || body["result"] != true || body["version"] != float64(1) {
		t.Fatalf("query after failed rebuild: %d %v, want last-good v1 answer", code, body)
	}

	// The degradation is visible per graph and fleet-wide.
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK || body["consecutive_failures"] != float64(1) || body["version"] != float64(1) {
		t.Fatalf("stats during degradation: %d %v", code, body)
	}
	if _, ok := body["last_error"].(string); !ok {
		t.Fatalf("stats %v missing last_error", body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK || body["ok"] != false || body["degraded"] != true ||
		body["failing_graphs"] != float64(1) || body["build_failures"] != float64(1) {
		t.Fatalf("healthz during degradation: %d %v", code, body)
	}

	// Recovery: disarm, rebuild, and everything clears.
	disarm(t, srv)
	code, body = do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", "")
	if code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("recovery rebuild: %d %v, want v2", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/v1/graphs/demo", "")
	if code != http.StatusOK || body["consecutive_failures"] != nil {
		t.Fatalf("stats after recovery: %d %v, failure state should be gone", code, body)
	}
	code, body = do(t, http.MethodGet, srv.URL+"/healthz", "")
	if code != http.StatusOK || body["ok"] != true || body["degraded"] != false {
		t.Fatalf("healthz after recovery: %d %v", code, body)
	}
}

// TestServerFailedInitialLoad: a graph whose first build fails answers
// 404 to queries (nothing is served) but its stats endpoint reports the
// failure instead of pretending the name is unknown.
func TestServerFailedInitialLoad(t *testing.T) {
	srv, _ := faultServer(t, fastbcc.StoreConfig{})

	arm(t, srv, "build.error=error")
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/bad", barbell); code != http.StatusInternalServerError {
		t.Fatalf("load with injected error: %d %v, want 500", code, body)
	}
	if code, _ := do(t, http.MethodGet, srv.URL+"/v1/graphs/bad/query/connected?u=0&v=1", ""); code != http.StatusNotFound {
		t.Fatalf("query of never-built graph: %d, want 404", code)
	}
	code, body := do(t, http.MethodGet, srv.URL+"/v1/graphs/bad", "")
	if code != http.StatusOK || body["loaded"] != false || body["consecutive_failures"] != float64(1) {
		t.Fatalf("stats of never-built graph: %d %v", code, body)
	}

	disarm(t, srv)
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/bad", barbell); code != http.StatusOK || body["version"] != float64(1) {
		t.Fatalf("retry load: %d %v", code, body)
	}
}

// TestServerBuildTimeout: a build past its per-request timeout_ms comes
// back 504 and the entry keeps serving its previous version; the
// admission slot is freed for the next build.
func TestServerBuildTimeout(t *testing.T) {
	srv, _ := faultServer(t, fastbcc.StoreConfig{MaxConcurrentBuilds: 1})

	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	arm(t, srv, "build.slow=sleep:1h")
	code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", `{"timeout_ms":30}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("over-deadline rebuild: %d %v, want 504", code, body)
	}
	if code, body := do(t, http.MethodGet, srv.URL+"/v1/graphs/demo/query/connected?u=0&v=6", ""); code != http.StatusOK || body["version"] != float64(1) {
		t.Fatalf("query after timeout: %d %v, want last-good v1", code, body)
	}

	// The 1-slot gate must be free again.
	disarm(t, srv)
	if code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", ""); code != http.StatusOK || body["version"] != float64(2) {
		t.Fatalf("rebuild after timeout: %d %v (admission slot leaked?)", code, body)
	}
}

// TestServerSaturation: with the single build slot parked, further
// builds come back 503 + Retry-After while queries keep flowing.
func TestServerSaturation(t *testing.T) {
	srv, store := faultServer(t, fastbcc.StoreConfig{MaxConcurrentBuilds: 1})

	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/served", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	// Park a build: slow load with a timeout so it cleans itself up.
	arm(t, srv, "build.slow=sleep:1h")
	parked := make(chan int, 1)
	go func() {
		code, _ := do(t, http.MethodPut, srv.URL+"/v1/graphs/parked", `{"n":7,"edges":[[0,1],[1,2],[2,0],[2,3],[3,4],[4,5],[5,6],[6,3]],"timeout_ms":1500}`)
		parked <- code
	}()
	deadline := time.Now().Add(10 * time.Second)
	for store.Stats().InFlightBuilds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked build never started")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/served/rebuild", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rebuild on full gate: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	// Queries are never shed.
	for i := 0; i < 20; i++ {
		if code, body := do(t, http.MethodGet, srv.URL+"/v1/graphs/served/query/connected?u=0&v=6", ""); code != http.StatusOK || body["result"] != true {
			t.Fatalf("query during saturation: %d %v", code, body)
		}
	}

	if code := <-parked; code != http.StatusGatewayTimeout {
		t.Fatalf("parked build finished with %d, want 504", code)
	}
	// Gate drained: builds flow again.
	disarm(t, srv)
	if code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/served/rebuild", ""); code != http.StatusOK {
		t.Fatalf("rebuild after drain: %d %v", code, body)
	}
}

// TestServerFaultEndpointGated: without -debug-faults the endpoints do
// not exist.
func TestServerFaultEndpointGated(t *testing.T) {
	srv := testServer(t) // debugFaults = false
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/debug/faultpoints", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug endpoint without -debug-faults: %d, want 404", resp.StatusCode)
	}
}

// TestServerBatchServesLastGoodWhenDegraded: a batch against an entry
// whose latest rebuild failed answers from the last-good snapshot at the
// old version — batches degrade exactly like scalar queries.
func TestServerBatchServesLastGoodWhenDegraded(t *testing.T) {
	srv, _ := faultServer(t, fastbcc.StoreConfig{})
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	arm(t, srv, "build.panic-in-engine=panic")
	if code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", ""); code != http.StatusInternalServerError {
		t.Fatalf("rebuild with panicking engine: %d %v, want 500", code, body)
	}

	qs := []fastbcc.Query{
		{Op: fastbcc.OpConnected, U: 0, V: 6},
		{Op: fastbcc.OpBiconnected, U: 0, V: 6},
		{Op: fastbcc.OpBridgesOnPath, U: 1, V: 5},
	}
	code, as, version := postBinaryBatch(t, srv, "demo", qs)
	if code != http.StatusOK || version != 1 {
		t.Fatalf("batch against degraded entry: %d v%d, want 200 from last-good v1", code, version)
	}
	if as[0] != 1 || as[1] != 0 || as[2] != 1 {
		t.Fatalf("batch answers from last-good snapshot: %v", as)
	}

	disarm(t, srv)
	if code, body := do(t, http.MethodPost, srv.URL+"/v1/graphs/demo/rebuild", ""); code != http.StatusOK {
		t.Fatalf("recovery rebuild: %d %v", code, body)
	}
	if _, _, version := postBinaryBatch(t, srv, "demo", qs); version != 2 {
		t.Fatalf("batch after recovery answers v%d, want v2", version)
	}
}

// TestServerBatchTimeout: a batch past its timeout_ms comes back 504
// (the query.slow point simulates a pathologically large batch), and
// scalar queries — and batches without the fault — keep working.
func TestServerBatchTimeout(t *testing.T) {
	srv, _ := faultServer(t, fastbcc.StoreConfig{})
	if code, body := do(t, http.MethodPut, srv.URL+"/v1/graphs/demo", barbell); code != http.StatusOK {
		t.Fatalf("load: %d %v", code, body)
	}

	arm(t, srv, "query.slow=sleep:1h")
	code, body := postBatch(t, srv, "demo", `{"queries":[{"op":"connected","u":0,"v":6}],"timeout_ms":30}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("over-deadline JSON batch: %d %v, want 504", code, body)
	}
	// Binary requests carry the timeout as a query parameter.
	frame := wire.AppendRequest(nil, []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 6}})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/graphs/demo/query/batch?timeout_ms=30", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-deadline binary batch: %d, want 504", resp.StatusCode)
	}

	disarm(t, srv)
	code, body = postBatch(t, srv, "demo", `{"queries":[{"op":"connected","u":0,"v":6}],"timeout_ms":1000}`)
	if code != http.StatusOK || fmt.Sprint(body["answers"]) != "[1]" {
		t.Fatalf("batch after disarm: %d %v", code, body)
	}
}
