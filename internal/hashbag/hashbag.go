// Package hashbag implements a concurrent insert-only set of int32 values
// with lock-free insertion, used to collect BFS/CC frontiers without
// duplicates.
//
// The paper's optimized connectivity ("hash bag and local search", Sec. 5 /
// Appendix C) uses such a structure as granularity control: when a frontier
// is small, frontier vertices explore multiple hops and dump discoveries
// into a shared bag. Insertion is open addressing with linear probing and
// CAS; the table never resizes (capacity is fixed at construction), which
// matches the bounded-frontier use.
package hashbag

import (
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/prim"
)

const empty = int32(-1)

// Bag is a fixed-capacity concurrent set of non-negative int32 values.
type Bag struct {
	slots []int32
	count atomic.Int64
	mask  uint32
}

// New returns a bag that can hold at least capacity distinct values.
// The table is sized to keep the load factor at or below 1/2.
func New(capacity int) *Bag {
	size := 16
	for size < 2*capacity {
		size <<= 1
	}
	b := &Bag{slots: make([]int32, size), mask: uint32(size - 1)}
	parallel.Fill(b.slots, empty)
	return b
}

// Insert adds v to the bag. It returns true if v was newly inserted and
// false if it was already present. v must be non-negative. Insert panics if
// the table is full (caller exceeded the declared capacity).
func (b *Bag) Insert(v int32) bool {
	if v < 0 {
		panic("hashbag: negative value")
	}
	i := prim.Hash32(uint64(v)) & b.mask
	for probes := uint32(0); probes <= b.mask; probes++ {
		cur := atomic.LoadInt32(&b.slots[i])
		if cur == v {
			return false
		}
		if cur == empty {
			if atomic.CompareAndSwapInt32(&b.slots[i], empty, v) {
				b.count.Add(1)
				return true
			}
			if atomic.LoadInt32(&b.slots[i]) == v {
				return false
			}
			continue // lost race to another value: retry same slot? move on
		}
		i = (i + 1) & b.mask
	}
	panic("hashbag: table full")
}

// Len returns the number of distinct values inserted so far. Stable only
// after all concurrent inserts complete.
func (b *Bag) Len() int { return int(b.count.Load()) }

// Slice returns the values in the bag in table order (parallel pack).
func (b *Bag) Slice() []int32 {
	return prim.PackInt32(b.slots, func(i int) bool { return b.slots[i] != empty })
}

// Reset empties the bag for reuse.
func (b *Bag) Reset() {
	parallel.Fill(b.slots, empty)
	b.count.Store(0)
}
