package hashbag

import (
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
)

func TestInsertBasic(t *testing.T) {
	b := New(10)
	if !b.Insert(5) {
		t.Fatal("first insert must return true")
	}
	if b.Insert(5) {
		t.Fatal("duplicate insert must return false")
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d", b.Len())
	}
	s := b.Slice()
	if len(s) != 1 || s[0] != 5 {
		t.Fatalf("slice = %v", s)
	}
}

func TestInsertNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Insert(-1)
}

func TestConcurrentDistinct(t *testing.T) {
	n := 100000
	b := New(n)
	parallel.For(n, func(i int) {
		if !b.Insert(int32(i)) {
			t.Errorf("value %d reported duplicate", i)
		}
	})
	if b.Len() != n {
		t.Fatalf("len = %d, want %d", b.Len(), n)
	}
	s := b.Slice()
	sort.Slice(s, func(a, c int) bool { return s[a] < s[c] })
	for i, v := range s {
		if v != int32(i) {
			t.Fatalf("missing value around %d (got %d)", i, v)
		}
	}
}

func TestConcurrentDuplicates(t *testing.T) {
	// Insert each of 1000 values 100 times concurrently: exactly one
	// insert per value may return true.
	vals, reps := 1000, 100
	b := New(vals)
	wins := make([]int32, vals)
	parallel.For(vals*reps, func(i int) {
		v := int32(i % vals)
		if b.Insert(v) {
			atomic.AddInt32(&wins[v], 1)
		}
	})
	for v, w := range wins {
		if w != 1 {
			t.Fatalf("value %d won %d times", v, w)
		}
	}
	if b.Len() != vals {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestReset(t *testing.T) {
	b := New(8)
	b.Insert(1)
	b.Insert(2)
	b.Reset()
	if b.Len() != 0 || len(b.Slice()) != 0 {
		t.Fatal("reset did not clear")
	}
	if !b.Insert(1) {
		t.Fatal("insert after reset should succeed")
	}
}

func TestZeroValueAllowed(t *testing.T) {
	b := New(4)
	if !b.Insert(0) || b.Insert(0) {
		t.Fatal("value 0 handling broken")
	}
}
