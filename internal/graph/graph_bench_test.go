package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n*deg/2)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{V(rng.Intn(i)), V(i)}) // connected
	}
	for i := 0; i < n*(deg-2)/2; i++ {
		u, w := V(rng.Intn(n)), V(rng.Intn(n))
		if u != w {
			edges = append(edges, Edge{u, w})
		}
	}
	return MustFromEdges(n, edges)
}

func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	edges := make([]Edge, 1<<20)
	for i := range edges {
		edges[i] = Edge{V(rng.Intn(n)), V(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustFromEdges(n, edges)
	}
}

func BenchmarkBFSLowDiameter(b *testing.B) {
	g := benchGraph(1<<17, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}

func BenchmarkBFSChain(b *testing.B) {
	n := 200000
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{V(i), V(i + 1)}
	}
	g := MustFromEdges(n, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}

func BenchmarkComputeStats(b *testing.B) {
	g := benchGraph(1<<17, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeStats(g)
	}
}
