package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// Failure-injection tests for the binary reader: every malformed input must
// produce an error, never a panic or a silently corrupt graph.

func validBytes(t *testing.T) []byte {
	t.Helper()
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryTruncatedAtEveryPoint(t *testing.T) {
	data := validBytes(t)
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("full data rejected: %v", err)
	}
}

func TestReadBinaryCorruptOffsets(t *testing.T) {
	data := validBytes(t)
	// Offsets start right after the 12-byte header; make them decrease.
	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[12+4:], 100) // offsets[1] = 100 > arcs
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt offsets accepted")
	}
}

func TestReadBinaryOutOfRangeNeighbor(t *testing.T) {
	data := validBytes(t)
	corrupt := append([]byte(nil), data...)
	// Adjacency begins after header (12) + offsets (5*4).
	binary.LittleEndian.PutUint32(corrupt[12+20:], 999)
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []string{
		"",         // empty
		"3",        // missing m
		"3 2\n0 1", // missing edge
		"3 1\n0 x", // non-numeric
		"2 1\n0 5", // endpoint out of range
		"-1 0",     // negative n
	}
	for i, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d (%q) accepted", i, c)
		}
	}
}

func TestReadEdgeListValid(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}
