package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"strings"
	"testing"
)

// Failure-injection tests for the binary reader: every malformed input must
// produce an error, never a panic or a silently corrupt graph.

func validBytes(t *testing.T) []byte {
	t.Helper()
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadBinaryTruncatedAtEveryPoint(t *testing.T) {
	data := validBytes(t)
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("full data rejected: %v", err)
	}
}

func TestReadBinaryCorruptOffsets(t *testing.T) {
	data := validBytes(t)
	// Offsets start right after the 12-byte header; make them decrease.
	corrupt := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(corrupt[12+4:], 100) // offsets[1] = 100 > arcs
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt offsets accepted")
	}
}

func TestReadBinaryOutOfRangeNeighbor(t *testing.T) {
	data := validBytes(t)
	corrupt := append([]byte(nil), data...)
	// Adjacency begins after header (12) + offsets (5*4).
	binary.LittleEndian.PutUint32(corrupt[12+20:], 999)
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
}

func TestReadBinaryMultiChunk(t *testing.T) {
	// More than one 1<<16-entry read chunk of offsets and adjacency, so the
	// incremental-growth path of the hardened reader is exercised.
	n := 1<<16 + 1000
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{int32(i), int32(i + 1)}
	}
	g := MustFromEdges(n, edges)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || len(got.Adj) != len(g.Adj) {
		t.Fatalf("round trip shape: n %d->%d arcs %d->%d", g.N, got.N, len(g.Adj), len(got.Adj))
	}
	for v := range got.Offsets {
		if got.Offsets[v] != g.Offsets[v] {
			t.Fatalf("offsets differ at %d", v)
		}
	}
}

func TestReadBinaryHostileHeader(t *testing.T) {
	// A 12-byte header claiming ~4 billion vertices must fail fast without
	// attempting a header-sized allocation.
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr, 0x42434331)
	binary.LittleEndian.PutUint32(hdr[4:], 0xfffffff0)
	binary.LittleEndian.PutUint32(hdr[8:], 0xfffffff0)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("hostile header accepted")
	}
	// In-int32-range counts with no payload must also fail on the read,
	// having allocated at most one chunk.
	binary.LittleEndian.PutUint32(hdr[4:], 1<<30)
	binary.LittleEndian.PutUint32(hdr[8:], 1<<30)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil {
		t.Fatal("payload-less header accepted")
	}
}

func TestReadBinaryNegativeFirstOffset(t *testing.T) {
	data := validBytes(t)
	corrupt := append([]byte(nil), data...)
	// Offsets[0] = -8: adjacent-monotonicity alone would accept this and
	// Neighbors(0) would slice out of range later.
	binary.LittleEndian.PutUint32(corrupt[12:], 0xfffffff8)
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("negative Offsets[0] accepted")
	}
}

func TestSaveFileReportsWriteErrors(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err := g.SaveFile(t.TempDir() + "/missing-dir/g.bin"); err == nil {
		t.Fatal("create into missing dir succeeded")
	}
	// A write that fails after a successful open must surface its error
	// (the historical double-close variant risked masking it).
	if _, err := os.Stat("/dev/full"); err == nil {
		if err := g.SaveFile("/dev/full"); err == nil {
			t.Fatal("write to /dev/full reported success")
		}
	}
	path := t.TempDir() + "/g.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N {
		t.Fatalf("n = %d", got.N)
	}
}

func TestReadEdgeListHostileHeaders(t *testing.T) {
	cases := []string{
		"3 -7\n",             // negative m: panicked make([]Edge, m) before
		"2 99999999999\n0 1", // m beyond arc capacity
		"99999999999 0\n",    // n beyond int32
		"3 1\n0 1\ntrailing", // garbage after the declared edges
		"3 1\n0 1\n9 9\n",    // extra edge beyond m
	}
	for i, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d (%q) accepted", i, c)
		}
	}
	// A huge m with no payload must not preallocate the claimed size: run
	// it under a tight alloc watch by just checking it errors quickly.
	if _, err := ReadEdgeList(strings.NewReader("4 1000000\n0 1\n")); err == nil {
		t.Fatal("truncated huge-m input accepted")
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []string{
		"",         // empty
		"3",        // missing m
		"3 2\n0 1", // missing edge
		"3 1\n0 x", // non-numeric
		"2 1\n0 5", // endpoint out of range
		"-1 0",     // negative n
	}
	for i, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d (%q) accepted", i, c)
		}
	}
}

func TestReadEdgeListValid(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}
