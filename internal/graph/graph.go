// Package graph provides the compressed-sparse-row (CSR) graph substrate
// shared by every algorithm in this repository: construction from edge
// lists, symmetrization, parallel BFS, component reordering, statistics,
// and a simple binary interchange format.
//
// Vertices are int32 ids in [0, N). Graphs are undirected and stored with
// both arc directions in the adjacency array, matching the paper's setting
// ("for directed graphs, we symmetrize them to test BCC"). Self-loops and
// parallel edges are permitted by the algorithms (they never affect
// biconnectivity beyond the trivial ways) but can be removed with Simplify.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/prim"
)

// V is the vertex id type.
type V = int32

// Edge is an undirected edge between U and W.
type Edge struct {
	U, W V
}

// Graph is an undirected graph in CSR form. Adj[Offsets[v]:Offsets[v+1]]
// lists the neighbors of v. For an undirected edge {u,w} both (u→w) and
// (w→u) arcs are present, so len(Adj) == 2·NumEdges().
type Graph struct {
	N       int32
	Offsets []int32
	Adj     []V
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.N) }

// NumArcs returns the number of directed arcs (2m for a symmetric graph).
func (g *Graph) NumArcs() int { return len(g.Adj) }

// NumEdges returns the number of undirected edges m (arcs/2).
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Neighbors returns the adjacency slice of v.
func (g *Graph) Neighbors(v V) []V {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the degree of v (counting both endpoints of self-loops).
func (g *Graph) Degree(v V) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// FromEdges builds a symmetric CSR graph over n vertices from the given
// undirected edge list. Both arc directions are inserted for every edge.
// Construction is parallel: atomic degree counting, prefix-sum offsets, and
// atomic-cursor scatter. Neighbor lists are then sorted for determinism.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if int64(len(edges))*2 >= int64(1)<<31 {
		return nil, fmt.Errorf("graph: %d edges exceeds int32 arc capacity", len(edges))
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.W < 0 || int(e.W) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.W, n)
		}
	}
	deg := make([]int32, n+1)
	parallel.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&deg[edges[i].U], 1)
			atomic.AddInt32(&deg[edges[i].W], 1)
		}
	})
	total := prim.ExclusiveScanInt32(deg)
	adj := make([]V, total)
	cursor := make([]int32, n)
	parallel.ForBlock(n, parallel.DefaultGrain, func(lo, hi int) {
		copy(cursor[lo:hi], deg[lo:hi])
	})
	parallel.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, w := edges[i].U, edges[i].W
			adj[atomic.AddInt32(&cursor[u], 1)-1] = w
			adj[atomic.AddInt32(&cursor[w], 1)-1] = u
		}
	})
	g := &Graph{N: int32(n), Offsets: deg, Adj: adj}
	g.sortAdjacency()
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; for tests and generators
// whose inputs are valid by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAdjacency sorts each neighbor list so that graph construction is
// deterministic regardless of the parallel scatter order.
func (g *Graph) sortAdjacency() {
	parallel.ForBlock(int(g.N), 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nb := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
		}
	})
}

// Edges returns the undirected edge list (u <= w once per edge; self-loops
// once). Mostly for tests and verification.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				out = append(out, Edge{v, w})
			}
		}
	}
	// Self-loops appear twice in adjacency; emit each once.
	for v := V(0); v < g.N; v++ {
		c := 0
		for _, w := range g.Neighbors(v) {
			if w == v {
				c++
			}
		}
		for i := 0; i < c/2; i++ {
			out = append(out, Edge{v, v})
		}
	}
	return out
}

// Simplify returns a copy of g with self-loops and parallel edges removed.
func (g *Graph) Simplify() *Graph {
	seen := make(map[int64]bool)
	var edges []Edge
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v >= w {
				continue
			}
			key := int64(v)<<32 | int64(w)
			if !seen[key] {
				seen[key] = true
				edges = append(edges, Edge{v, w})
			}
		}
	}
	return MustFromEdges(int(g.N), edges)
}

// HasEdge reports whether the undirected edge {u,w} exists (binary search;
// adjacency lists are sorted).
func (g *Graph) HasEdge(u, w V) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	return i < len(nb) && nb[i] == w
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	var m int64
	for v := V(0); v < g.N; v++ {
		if d := int64(g.Degree(v)); d > m {
			m = d
		}
	}
	return int(m)
}
