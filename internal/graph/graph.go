// Package graph provides the compressed-sparse-row (CSR) graph substrate
// shared by every algorithm in this repository: construction from edge
// lists, symmetrization, parallel BFS, component reordering, statistics,
// and a simple binary interchange format.
//
// Vertices are int32 ids in [0, N). Graphs are undirected and stored with
// both arc directions in the adjacency array, matching the paper's setting
// ("for directed graphs, we symmetrize them to test BCC"). Self-loops and
// parallel edges are permitted by the algorithms (they never affect
// biconnectivity beyond the trivial ways) but can be removed with Simplify.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/prim"
)

// V is the vertex id type.
type V = int32

// Edge is an undirected edge between U and W.
type Edge struct {
	U, W V
}

// Graph is an undirected graph in CSR form. Adj[Offsets[v]:Offsets[v+1]]
// lists the neighbors of v. For an undirected edge {u,w} both (u→w) and
// (w→u) arcs are present, so len(Adj) == 2·NumEdges().
type Graph struct {
	N       int32
	Offsets []int32
	Adj     []V
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.N) }

// NumArcs returns the number of directed arcs (2m for a symmetric graph).
func (g *Graph) NumArcs() int { return len(g.Adj) }

// NumEdges returns the number of undirected edges m (arcs/2).
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Neighbors returns the adjacency slice of v.
func (g *Graph) Neighbors(v V) []V {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the degree of v (counting both endpoints of self-loops).
func (g *Graph) Degree(v V) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// ForArcSegments walks every arc of g in parallel on e with degree-aware
// blocking: the *arc* array is partitioned into blocks of about grain
// arcs — not the vertex range — so a power-law hub with millions of
// neighbors is spread over many blocks (claimed dynamically by the worker
// pool) instead of serializing one vertex block. Each block locates its
// first vertex by binary search on the offset array and then walks arcs
// and vertex boundaries together, invoking seg(v, adj) for each maximal
// run of arcs with source v inside the block (adj is the corresponding
// sub-slice of g.Adj, so the hot per-arc loop lives in the caller with v
// fixed — one indirect call per segment, none per arc). A vertex whose
// arcs span blocks gets one seg call per block.
func (g *Graph) ForArcSegments(e *parallel.Exec, grain int, seg func(v V, adj []V)) {
	nArcs := g.NumArcs()
	if nArcs == 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	nb := (nArcs + grain - 1) / grain
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			alo, ahi := b*grain, (b+1)*grain
			if ahi > nArcs {
				ahi = nArcs
			}
			// First vertex whose arc range contains alo.
			v := V(sort.Search(int(g.N), func(x int) bool {
				return g.Offsets[x+1] > int32(alo)
			}))
			a := alo
			for a < ahi {
				for int(g.Offsets[v+1]) <= a {
					v++
				}
				vEnd := int(g.Offsets[v+1])
				if vEnd > ahi {
					vEnd = ahi
				}
				seg(v, g.Adj[a:vEnd])
				a = vEnd
			}
		}
	})
}

// FromEdges builds a symmetric CSR graph over n vertices from the given
// undirected edge list. Both arc directions are inserted for every edge.
// Equivalent to FromEdgesScratch with a nil arena.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	return FromEdgesScratch(n, edges, nil)
}

// FromEdgesScratch is FromEdges drawing its temporaries from sc (which may
// be nil). Equivalent to FromEdgesIn with a nil execution context.
func FromEdgesScratch(n int, edges []Edge, sc *Scratch) (*Graph, error) {
	return FromEdgesIn(nil, n, edges, sc)
}

// FromEdgesIn is FromEdges running on the execution context e (nil =
// default) and drawing its temporaries from sc (which may be nil).
// Construction is parallel and atomic-free: the edge list is cut
// into one contiguous chunk per worker, each worker counts degrees into a
// private histogram, the histograms are merged by a prefix-sum pass that
// also assigns every worker a disjoint scatter range per vertex, and each
// worker re-scans its chunk writing arcs without synchronization. Neighbor
// lists are then sorted, so the output is deterministic (and identical to
// the historical atomic-scatter construction).
func FromEdgesIn(e *parallel.Exec, n int, edges []Edge, sc *Scratch) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if int64(len(edges))*2 >= int64(1)<<31 {
		return nil, fmt.Errorf("graph: %d edges exceeds int32 arc capacity", len(edges))
	}
	bad := parallel.ReduceIn(e, len(edges), parallel.DefaultGrain, -1,
		func(lo, hi int) int {
			for i := lo; i < hi; i++ {
				e := edges[i]
				if e.U < 0 || int(e.U) >= n || e.W < 0 || int(e.W) >= n {
					return i
				}
			}
			return -1
		},
		func(a, b int) int {
			if a >= 0 {
				return a
			}
			return b
		})
	if bad >= 0 {
		e := edges[bad]
		return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.W, n)
	}
	offsets := make([]int32, n+1)
	if n == 0 || len(edges) == 0 {
		return &Graph{N: int32(n), Offsets: offsets, Adj: []V{}}, nil
	}

	// One contiguous edge chunk per worker. Extra workers each cost an
	// n-sized histogram, so cap their number at what the edge count can
	// amortize (keeps scratch memory O(n + m)) and at a constant. When the
	// cap would strand most workers — a very sparse graph on a many-core
	// machine — the atomic-cursor scatter parallelizes better than a
	// 2-worker histogram pass; take that path instead (the neighbor sort
	// makes the output identical either way).
	p := e.Procs()
	nw := p
	if lim := 1 + len(edges)/n; nw > lim {
		nw = lim
	}
	if nw > 16 {
		nw = 16
	}
	if nw < 1 {
		nw = 1
	}
	if p > 2*nw {
		return fromEdgesAtomic(e, n, edges, offsets), nil
	}
	chunk := (len(edges) + nw - 1) / nw
	nw = (len(edges) + chunk - 1) / chunk

	degW := sc.GetInt32(nw * n)
	parallel.FillIn(e, degW, 0)
	e.ForGrain(nw, 1, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		d := degW[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			d[edges[i].U]++
			d[edges[i].W]++
		}
	})
	// Per-vertex totals, then the offset scan.
	e.For(n, func(v int) {
		var s int32
		for w := 0; w < nw; w++ {
			s += degW[w*n+v]
		}
		offsets[v] = s
	})
	total := prim.ExclusiveScanInt32In(e, offsets)
	// Turn each histogram row into that worker's scatter cursors: worker w
	// writes v's arcs at offsets[v] plus the counts of earlier workers.
	e.For(n, func(v int) {
		run := offsets[v]
		for w := 0; w < nw; w++ {
			idx := w*n + v
			c := degW[idx]
			degW[idx] = run
			run += c
		}
	})
	adj := make([]V, total)
	e.ForGrain(nw, 1, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		cur := degW[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			u, x := edges[i].U, edges[i].W
			adj[cur[u]] = x
			cur[u]++
			adj[cur[x]] = u
			cur[x]++
		}
	})
	sc.PutInt32(degW)
	g := &Graph{N: int32(n), Offsets: offsets, Adj: adj}
	g.sortAdjacency(e)
	return g, nil
}

// fromEdgesAtomic is the fallback CSR construction for the regime where
// per-worker histograms would cap parallelism (Procs far above the
// memory-amortized worker limit): atomic degree counting and atomic-cursor
// scatter over all workers. After the neighbor sort its output is
// identical to the histogram path's. offsets is the caller's zeroed
// (n+1)-array, filled in place.
func fromEdgesAtomic(e *parallel.Exec, n int, edges []Edge, offsets []int32) *Graph {
	e.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&offsets[edges[i].U], 1)
			atomic.AddInt32(&offsets[edges[i].W], 1)
		}
	})
	total := prim.ExclusiveScanInt32In(e, offsets)
	adj := make([]V, total)
	cursor := make([]int32, n)
	e.ForBlock(n, parallel.DefaultGrain, func(lo, hi int) {
		copy(cursor[lo:hi], offsets[lo:hi])
	})
	e.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, w := edges[i].U, edges[i].W
			adj[atomic.AddInt32(&cursor[u], 1)-1] = w
			adj[atomic.AddInt32(&cursor[w], 1)-1] = u
		}
	})
	g := &Graph{N: int32(n), Offsets: offsets, Adj: adj}
	g.sortAdjacency(e)
	return g
}

// MustFromEdges is FromEdges that panics on error; for tests and generators
// whose inputs are valid by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAdjacency sorts each neighbor list so that graph construction is
// deterministic regardless of the parallel scatter order.
func (g *Graph) sortAdjacency(e *parallel.Exec) {
	e.ForBlock(int(g.N), 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			prim.SortInt32Small(g.Adj[g.Offsets[v]:g.Offsets[v+1]])
		}
	})
}

// Edges returns the undirected edge list (u <= w once per edge; self-loops
// once). Mostly for tests and verification.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				out = append(out, Edge{v, w})
			}
		}
	}
	// Self-loops appear twice in adjacency; emit each once.
	for v := V(0); v < g.N; v++ {
		c := 0
		for _, w := range g.Neighbors(v) {
			if w == v {
				c++
			}
		}
		for i := 0; i < c/2; i++ {
			out = append(out, Edge{v, v})
		}
	}
	return out
}

// Simplify returns a copy of g with self-loops and parallel edges removed.
// Adjacency lists are already sorted, so duplicates are adjacent: a single
// count-scan-fill pass builds the simple CSR directly, with no hash map and
// no intermediate edge list.
func (g *Graph) Simplify() *Graph {
	n := int(g.N)
	offsets := make([]int32, n+1)
	parallel.For(n, func(v int) {
		prev := int32(-1)
		var c int32
		for _, w := range g.Neighbors(V(v)) {
			if w != V(v) && w != prev {
				c++
				prev = w
			}
		}
		offsets[v] = c
	})
	total := prim.ExclusiveScanInt32(offsets)
	adj := make([]V, total)
	parallel.For(n, func(v int) {
		o := offsets[v]
		prev := int32(-1)
		for _, w := range g.Neighbors(V(v)) {
			if w != V(v) && w != prev {
				adj[o] = w
				o++
				prev = w
			}
		}
	})
	return &Graph{N: g.N, Offsets: offsets, Adj: adj}
}

// HasEdge reports whether the undirected edge {u,w} exists (binary search;
// adjacency lists are sorted).
func (g *Graph) HasEdge(u, w V) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= w })
	return i < len(nb) && nb[i] == w
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	var m int64
	for v := V(0); v < g.N; v++ {
		if d := int64(g.Degree(v)); d > m {
			m = d
		}
	}
	return int(m)
}
