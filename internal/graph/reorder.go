package graph

import (
	"repro/internal/parallel"
	"repro/internal/prim"
)

// ReorderByComponent relabels vertices so that each connected component
// occupies a contiguous id range (components ordered by their smallest
// original vertex, original order preserved inside each component). The
// paper's implementation performs this CSR reordering after First-CC for
// locality ("re-order the vertices in the CSR format to let each CC be
// contiguous", Sec. 5).
//
// comp[v] must be the component representative of v. It returns the
// reordered graph and the permutation: newID[v] is v's id in the new graph.
// Equivalent to ReorderByComponentIn with a nil execution context.
func ReorderByComponent(g *Graph, comp []int32) (*Graph, []int32) {
	return ReorderByComponentIn(nil, g, comp)
}

// ReorderByComponentIn is ReorderByComponent running on the execution
// context e (nil = the process-global default), so serving callers keep
// the reorder on their own worker budget.
func ReorderByComponentIn(e *parallel.Exec, g *Graph, comp []int32) (*Graph, []int32) {
	n := int(g.N)
	if n == 0 {
		return &Graph{Offsets: []int32{0}}, nil
	}
	// Stable counting sort of vertices by representative gives the new
	// order: components sorted by rep id, members in original order.
	perm, _ := prim.CountingSortByKeyIn(e, n, int32(n), func(i int) int32 { return comp[i] })
	newID := make([]int32, n)
	e.For(n, func(i int) { newID[perm[i]] = int32(i) })

	offsets := make([]int32, n+1)
	e.For(n, func(i int) {
		old := perm[i]
		offsets[i] = g.Offsets[old+1] - g.Offsets[old]
	})
	prim.ExclusiveScanInt32In(e, offsets)
	adj := make([]V, len(g.Adj))
	e.ForBlock(n, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			old := perm[i]
			out := adj[offsets[i]:offsets[i+1]]
			src := g.Adj[g.Offsets[old]:g.Offsets[old+1]]
			for j, w := range src {
				out[j] = newID[w]
			}
		}
	})
	ng := &Graph{N: int32(n), Offsets: offsets, Adj: adj}
	ng.sortAdjacency(e)
	return ng, newID
}
