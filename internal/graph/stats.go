package graph

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// Stats summarizes a graph the way the evaluation tables do.
type Stats struct {
	N, M          int
	MinDeg        int
	MaxDeg        int
	AvgDeg        float64
	Isolated      int // vertices with degree 0
	SelfLoops     int
	ParallelEdges int // extra copies beyond the first per vertex pair
}

// ComputeStats derives summary statistics in one parallel pass.
func ComputeStats(g *Graph) Stats {
	n := int(g.N)
	s := Stats{N: n, M: g.NumEdges(), MinDeg: int(^uint(0) >> 1)}
	if n == 0 {
		s.MinDeg = 0
		return s
	}
	type acc struct {
		min, max, isolated, loops, par int
	}
	res := parallel.Reduce(n, 256, acc{min: int(^uint(0) >> 1)},
		func(lo, hi int) acc {
			a := acc{min: int(^uint(0) >> 1)}
			for v := lo; v < hi; v++ {
				d := g.Degree(V(v))
				if d < a.min {
					a.min = d
				}
				if d > a.max {
					a.max = d
				}
				if d == 0 {
					a.isolated++
				}
				nb := g.Neighbors(V(v))
				for i, w := range nb {
					if w == V(v) {
						a.loops++
					}
					if i > 0 && nb[i] == nb[i-1] && w != V(v) {
						a.par++
					}
				}
			}
			return a
		},
		func(x, y acc) acc {
			if y.min < x.min {
				x.min = y.min
			}
			if y.max > x.max {
				x.max = y.max
			}
			x.isolated += y.isolated
			x.loops += y.loops
			x.par += y.par
			return x
		})
	s.MinDeg, s.MaxDeg = res.min, res.max
	s.Isolated = res.isolated
	s.SelfLoops = res.loops / 2 // each loop contributes two adjacency slots
	s.ParallelEdges = res.par / 2
	if n > 0 {
		s.AvgDeg = float64(len(g.Adj)) / float64(n)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d deg[min=%d avg=%.2f max=%d] isolated=%d loops=%d parallel=%d",
		s.N, s.M, s.MinDeg, s.AvgDeg, s.MaxDeg, s.Isolated, s.SelfLoops, s.ParallelEdges)
}

// DegreeHistogram returns counts of vertices per degree, as (degree,
// count) pairs sorted by degree. Useful for checking the power-law shape
// of the social/web generators.
func DegreeHistogram(g *Graph) [][2]int {
	counts := map[int]int{}
	for v := V(0); v < g.N; v++ {
		counts[g.Degree(v)]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// InducedSubgraph returns the subgraph induced by keep (the vertices with
// keep[v] true), along with the mapping newID (−1 for dropped vertices).
func InducedSubgraph(g *Graph, keep []bool) (*Graph, []int32) {
	n := int(g.N)
	newID := make([]int32, n)
	cnt := int32(0)
	for v := 0; v < n; v++ {
		if keep[v] {
			newID[v] = cnt
			cnt++
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	for v := V(0); v < g.N; v++ {
		if !keep[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if v <= w && keep[w] {
				edges = append(edges, Edge{newID[v], newID[w]})
			}
		}
	}
	// Self-loops were collected twice (both arcs have v <= w); halve them.
	out := edges[:0]
	loopSeen := map[int32]int{}
	for _, e := range edges {
		if e.U == e.W {
			loopSeen[e.U]++
			if loopSeen[e.U]%2 == 0 {
				continue
			}
		}
		out = append(out, e)
	}
	return MustFromEdges(int(cnt), out), newID
}
