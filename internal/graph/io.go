package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
)

// Binary interchange format:
//
//	magic   uint32  = 0x42434331 ("BCC1")
//	n       uint32
//	arcs    uint32  (len(Adj))
//	offsets (n+1) × int32, little endian
//	adj     arcs × int32, little endian
const binaryMagic = 0x42434331

// WriteBinary serializes g to w in the repository's binary CSR format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{binaryMagic, uint32(g.N), uint32(len(g.Adj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	return bw.Flush()
}

// readInt32Chunked reads count little-endian int32 values from r, growing
// the result incrementally so a hostile header cannot force a huge
// allocation before a single byte of payload has been read: a lying count
// fails with a read error after at most one chunk beyond the real data.
func readInt32Chunked(r io.Reader, count int, what string) ([]int32, error) {
	const chunk = 1 << 16
	first := count
	if first > chunk {
		first = chunk
	}
	out := make([]int32, 0, first)
	for len(out) < count {
		c := count - len(out)
		if c > chunk {
			c = chunk
		}
		// Grow amortized-geometrically, but only after the previous
		// chunk's payload actually arrived; the new elements are read
		// into directly, never zeroed first.
		out = slices.Grow(out, c)[:len(out)+c]
		seg := out[len(out)-c:]
		if err := binary.Read(r, binary.LittleEndian, seg); err != nil {
			return nil, fmt.Errorf("graph: reading %s: %w", what, err)
		}
	}
	return out, nil
}

// ReadBinary deserializes a graph written by WriteBinary. Every field of a
// malformed or hostile input is validated: the header's sizes are bounded
// before they drive allocation, offsets must start at 0 and be
// non-decreasing, and neighbors must be in range — a corrupt file yields
// an error, never a panic, an OOM-sized allocation, or a graph whose
// accessors can fault later.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	// The on-disk counts are uint32; vertex ids and offsets are int32, so
	// anything beyond int32 range is corrupt by construction. Checked
	// before allocating: the header must never size an allocation the
	// format itself cannot represent.
	const maxI32 = 1<<31 - 1
	n, arcs := int64(hdr[1]), int64(hdr[2])
	if n >= maxI32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds int32 range", n)
	}
	if arcs > maxI32 {
		return nil, fmt.Errorf("graph: arc count %d exceeds int32 range", arcs)
	}
	offsets, err := readInt32Chunked(br, int(n)+1, "offsets")
	if err != nil {
		return nil, err
	}
	adj, err := readInt32Chunked(br, int(arcs), "adjacency")
	if err != nil {
		return nil, err
	}
	g := &Graph{N: int32(n), Offsets: offsets, Adj: adj}
	if g.Offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets start at %d, want 0", g.Offsets[0])
	}
	if int64(g.Offsets[n]) != arcs {
		return nil, fmt.Errorf("graph: offsets end %d != arcs %d", g.Offsets[n], arcs)
	}
	for v := int64(0); v < n; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return nil, fmt.Errorf("graph: decreasing offsets at %d", v)
		}
	}
	for _, w := range g.Adj {
		if w < 0 || int64(w) >= n {
			return nil, fmt.Errorf("graph: neighbor %d out of range", w)
		}
	}
	return g, nil
}

// SaveFile writes g to path in binary format. The file handle is closed
// exactly once, so close errors (the write may only surface on close with
// buffered filesystems) are reported, not swallowed by a duplicate close.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from a binary file written by SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteEdgeList writes the graph as "n m" header plus one "u w" line per
// undirected edge, a common text interchange format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList. The header
// counts are validated before they drive allocation (a negative or absurd
// m must not panic make or reserve gigabytes on a one-line input), the
// edge slice grows incrementally as edges actually parse, and input after
// the declared m edges is rejected so silently truncated headers cannot
// masquerade as success.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var n, m int64
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: reading edge-list header: %w", err)
	}
	if n < 0 || n >= 1<<31 {
		return nil, fmt.Errorf("graph: vertex count %d out of range", n)
	}
	if m < 0 || m >= 1<<30 { // 2m arcs must fit int32
		return nil, fmt.Errorf("graph: edge count %d out of range", m)
	}
	// Cap the speculative allocation: the header's claim is only trusted
	// up to a chunk, the rest is earned by edges that actually parse.
	capHint := m
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	edges := make([]Edge, 0, capHint)
	for i := int64(0); i < m; i++ {
		var e Edge
		if _, err := fmt.Fscan(br, &e.U, &e.W); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		edges = append(edges, e)
	}
	var trailing string
	switch _, err := fmt.Fscan(br, &trailing); err {
	case io.EOF: // clean end of input
	case nil:
		return nil, fmt.Errorf("graph: trailing data %q after %d edges", trailing, m)
	default:
		return nil, fmt.Errorf("graph: reading after %d edges: %w", m, err)
	}
	return FromEdges(int(n), edges)
}
