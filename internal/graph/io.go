package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary interchange format:
//
//	magic   uint32  = 0x42434331 ("BCC1")
//	n       uint32
//	arcs    uint32  (len(Adj))
//	offsets (n+1) × int32, little endian
//	adj     arcs × int32, little endian
const binaryMagic = 0x42434331

// WriteBinary serializes g to w in the repository's binary CSR format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint32{binaryMagic, uint32(g.N), uint32(len(g.Adj))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, arcs := int(hdr[1]), int(hdr[2])
	g := &Graph{
		N:       int32(n),
		Offsets: make([]int32, n+1),
		Adj:     make([]V, arcs),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	if int(g.Offsets[n]) != arcs {
		return nil, fmt.Errorf("graph: offsets end %d != arcs %d", g.Offsets[n], arcs)
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return nil, fmt.Errorf("graph: decreasing offsets at %d", v)
		}
	}
	for _, w := range g.Adj {
		if w < 0 || int(w) >= n {
			return nil, fmt.Errorf("graph: neighbor %d out of range", w)
		}
	}
	return g, nil
}

// SaveFile writes g to path in binary format.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from a binary file written by SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteEdgeList writes the graph as "n m" header plus one "u w" line per
// undirected edge, a common text interchange format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: reading edge-list header: %w", err)
	}
	edges := make([]Edge, m)
	for i := 0; i < m; i++ {
		if _, err := fmt.Fscan(br, &edges[i].U, &edges[i].W); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
	}
	return FromEdges(n, edges)
}
