package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{V(i), V(i + 1)})
	}
	return MustFromEdges(n, edges)
}

func cycleGraph(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{V(i), V((i + 1) % n)})
	}
	return MustFromEdges(n, edges)
}

func TestFromEdgesBasic(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if g.NumVertices() != 4 || g.NumEdges() != 5 || g.NumArcs() != 10 {
		t.Fatalf("n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if g.Degree(0) != 3 || g.Degree(1) != 2 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	nb := g.Neighbors(0)
	if len(nb) != 3 || nb[0] != 1 || nb[1] != 2 || nb[2] != 3 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := MustFromEdges(0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph wrong")
	}
	g = MustFromEdges(5, nil)
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatal("edgeless graph wrong")
	}
	for v := V(0); v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := FromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := FromEdges(3, []Edge{{-1, 0}}); err == nil {
		t.Fatal("negative endpoint accepted")
	}
}

func TestSelfLoopAndMultiEdge(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 0}, {0, 1}, {0, 1}})
	if g.Degree(0) != 4 { // self-loop counts twice + two multi-edges
		t.Fatalf("degree(0) = %d, want 4", g.Degree(0))
	}
	s := g.Simplify()
	if s.NumEdges() != 1 || s.Degree(0) != 1 {
		t.Fatalf("simplify: m=%d deg0=%d", s.NumEdges(), s.Degree(0))
	}
}

func TestHasEdge(t *testing.T) {
	g := cycleGraph(10)
	if !g.HasEdge(0, 1) || !g.HasEdge(9, 0) {
		t.Fatal("missing cycle edges")
	}
	if g.HasEdge(0, 5) {
		t.Fatal("phantom edge")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 50
	var edges []Edge
	for i := 0; i < 120; i++ {
		u, w := V(rng.Intn(n)), V(rng.Intn(n))
		if u > w {
			u, w = w, u
		}
		if u != w {
			edges = append(edges, Edge{u, w})
		}
	}
	g := MustFromEdges(n, edges)
	back := g.Edges()
	if len(back) != len(edges) {
		t.Fatalf("edge count: got %d want %d", len(back), len(edges))
	}
	g2 := MustFromEdges(n, back)
	if g2.NumArcs() != g.NumArcs() {
		t.Fatal("round trip changed arc count")
	}
	for v := V(0); v < V(n); v++ {
		nb1, nb2 := g.Neighbors(v), g2.Neighbors(v)
		if len(nb1) != len(nb2) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range nb1 {
			if nb1[i] != nb2[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if MustFromEdges(3, nil).MaxDegree() != 0 {
		t.Fatal("empty MaxDegree != 0")
	}
}

func TestBFSPath(t *testing.T) {
	n := 1000
	g := pathGraph(n)
	r := BFS(g, 0)
	if r.Depth != int32(n-1) {
		t.Fatalf("depth = %d, want %d", r.Depth, n-1)
	}
	for v := 0; v < n; v++ {
		if r.Level[v] != int32(v) {
			t.Fatalf("level[%d] = %d", v, r.Level[v])
		}
		if v > 0 && r.Parent[v] != V(v-1) {
			t.Fatalf("parent[%d] = %d", v, r.Parent[v])
		}
	}
	if r.Parent[0] != 0 {
		t.Fatal("source parent must be itself")
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}})
	r := BFS(g, 0)
	if r.Parent[2] != -1 || r.Level[3] != -1 {
		t.Fatal("unreachable vertices must stay -1")
	}
	if ConnectedBFS(g) {
		t.Fatal("graph is disconnected")
	}
	if !ConnectedBFS(cycleGraph(5)) {
		t.Fatal("cycle is connected")
	}
}

func TestBFSLevelsValid(t *testing.T) {
	// Property: for every edge (u,w) in a connected graph, |level u - level w| <= 1.
	rng := rand.New(rand.NewSource(2))
	n := 300
	edges := make([]Edge, 0, 3*n)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{V(rng.Intn(i)), V(i)}) // random tree: connected
	}
	for i := 0; i < 2*n; i++ {
		edges = append(edges, Edge{V(rng.Intn(n)), V(rng.Intn(n))})
	}
	g := MustFromEdges(n, edges)
	r := BFS(g, 0)
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			d := r.Level[v] - r.Level[w]
			if d < -1 || d > 1 {
				t.Fatalf("edge (%d,%d) levels %d,%d", v, w, r.Level[v], r.Level[w])
			}
		}
		if v != 0 {
			p := r.Parent[v]
			if r.Level[v] != r.Level[p]+1 {
				t.Fatalf("parent level broken at %d", v)
			}
			if !g.HasEdge(v, p) {
				t.Fatalf("parent edge (%d,%d) not in graph", v, p)
			}
		}
	}
}

func TestApproxDiameter(t *testing.T) {
	if d := ApproxDiameter(pathGraph(100), 50); d != 99 {
		t.Fatalf("path diameter = %d, want 99", d)
	}
	if d := ApproxDiameter(cycleGraph(10), 0); d != 5 {
		t.Fatalf("cycle diameter = %d, want 5", d)
	}
	empty := MustFromEdges(0, nil)
	if d := ApproxDiameter(empty, 0); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := cycleGraph(123)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || len(g2.Adj) != len(g.Adj) {
		t.Fatal("shape mismatch")
	}
	for i := range g.Adj {
		if g.Adj[i] != g2.Adj[i] {
			t.Fatalf("adj mismatch at %d", i)
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 6 || g2.NumEdges() != 5 {
		t.Fatalf("round trip: n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
	if !g2.HasEdge(5, 3) || g2.HasEdge(0, 5) {
		t.Fatal("edges corrupted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := pathGraph(10)
	path := t.TempDir() + "/g.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 9 {
		t.Fatal("file round trip lost edges")
	}
}

func TestBFSQuickTreeDepth(t *testing.T) {
	// On a random tree, depth from root 0 equals the max sequentially
	// computed distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		parent := make([]int, n)
		edges := make([]Edge, 0, n-1)
		for i := 1; i < n; i++ {
			parent[i] = rng.Intn(i)
			edges = append(edges, Edge{V(parent[i]), V(i)})
		}
		g := MustFromEdges(n, edges)
		depth := make([]int32, n)
		var maxD int32
		for i := 1; i < n; i++ {
			depth[i] = depth[parent[i]] + 1
			if depth[i] > maxD {
				maxD = depth[i]
			}
		}
		r := BFS(g, 0)
		if r.Depth != maxD {
			return false
		}
		for i := 0; i < n; i++ {
			if r.Level[i] != depth[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
