package graph

import (
	"strings"
	"testing"
)

func TestComputeStatsBasic(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}})
	s := ComputeStats(g)
	if s.N != 5 || s.M != 3 {
		t.Fatalf("n=%d m=%d", s.N, s.M)
	}
	if s.MinDeg != 0 || s.MaxDeg != 2 {
		t.Fatalf("deg range [%d,%d]", s.MinDeg, s.MaxDeg)
	}
	if s.Isolated != 1 {
		t.Fatalf("isolated = %d", s.Isolated)
	}
	if s.SelfLoops != 0 || s.ParallelEdges != 0 {
		t.Fatalf("loops=%d par=%d", s.SelfLoops, s.ParallelEdges)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatal("String() broken")
	}
}

func TestComputeStatsMultigraph(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 2}})
	s := ComputeStats(g)
	if s.SelfLoops != 1 {
		t.Fatalf("self loops = %d", s.SelfLoops)
	}
	if s.ParallelEdges != 1 {
		t.Fatalf("parallel = %d", s.ParallelEdges)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(MustFromEdges(0, nil))
	if s.N != 0 || s.MinDeg != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	h := DegreeHistogram(g)
	// degrees: 3,1,1,1 → (1,3),(3,1)
	if len(h) != 2 || h[0] != [2]int{1, 3} || h[1] != [2]int{3, 1} {
		t.Fatalf("histogram = %v", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	keep := []bool{true, true, true, false, false, true}
	sub, id := InducedSubgraph(g, keep)
	if sub.NumVertices() != 4 {
		t.Fatalf("n = %d", sub.NumVertices())
	}
	// Kept edges: (0,1),(1,2),(5,0) → new ids (0,1),(1,2),(3,0)
	if sub.NumEdges() != 3 {
		t.Fatalf("m = %d", sub.NumEdges())
	}
	if id[3] != -1 || id[4] != -1 {
		t.Fatal("dropped vertices must map to -1")
	}
	if !sub.HasEdge(id[0], id[1]) || !sub.HasEdge(id[5], id[0]) {
		t.Fatal("edges lost")
	}
	if sub.HasEdge(id[1], id[5]) {
		t.Fatal("phantom edge")
	}
}

func TestInducedSubgraphSelfLoop(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 0}, {0, 1}})
	sub, _ := InducedSubgraph(g, []bool{true, false})
	if sub.NumVertices() != 1 || sub.NumEdges() != 1 {
		t.Fatalf("n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if sub.Degree(0) != 2 { // self-loop counts twice
		t.Fatalf("degree = %d", sub.Degree(0))
	}
}

func TestInducedSubgraphKeepAll(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}})
	keep := []bool{true, true, true, true, true}
	sub, id := InducedSubgraph(g, keep)
	if sub.NumEdges() != g.NumEdges() || sub.NumVertices() != g.NumVertices() {
		t.Fatal("keep-all changed the graph")
	}
	for v := range id {
		if id[v] != int32(v) {
			t.Fatal("keep-all should preserve ids")
		}
	}
}
