package graph

import (
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/prim"
)

// BFSResult holds the output of a breadth-first search.
type BFSResult struct {
	Parent []V     // Parent[v] = BFS-tree parent, source's parent = source, -1 if unreached
	Level  []int32 // Level[v] = hop distance from source, -1 if unreached
	Depth  int32   // number of levels minus one (eccentricity of source)
}

// BFS runs a parallel frontier-based breadth-first search from src on the
// default execution context.
func BFS(g *Graph, src V) *BFSResult { return BFSIn(nil, g, src) }

// BFSIn runs a parallel frontier-based breadth-first search from src on
// the execution context e (nil = the process-global default).
// Frontiers are expanded level by level, so the span is proportional to the
// source's eccentricity — this is exactly the weakness of BFS-based BCC
// skeletons the paper targets, and the baselines here inherit it.
func BFSIn(e *parallel.Exec, g *Graph, src V) *BFSResult {
	n := int(g.N)
	res := &BFSResult{
		Parent: make([]V, n),
		Level:  make([]int32, n),
	}
	parallel.FillIn(e, res.Parent, -1)
	parallel.FillIn(e, res.Level, -1)
	res.Parent[src] = src
	res.Level[src] = 0
	frontier := []V{src}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		next := bfsExpand(e, g, frontier, res.Parent, res.Level, level)
		frontier = next
	}
	res.Depth = level - 1
	return res
}

// bfsExpand claims the unvisited neighbors of the frontier via CAS on
// Parent and returns the next frontier (deduplicated by the CAS).
func bfsExpand(e *parallel.Exec, g *Graph, frontier []V, parent []V, lvl []int32, level int32) []V {
	// Per-block output buffers stitched together with a scan keep the
	// result deterministic in size (order varies but is sorted afterwards
	// only where needed by callers).
	type block struct{ out []V }
	nb := (len(frontier) + 255) / 256
	blocks := make([]block, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*256, (b+1)*256
			if hi > len(frontier) {
				hi = len(frontier)
			}
			var out []V
			for i := lo; i < hi; i++ {
				u := frontier[i]
				for _, w := range g.Neighbors(u) {
					if atomic.LoadInt32(&parent[w]) == -1 &&
						atomic.CompareAndSwapInt32(&parent[w], -1, u) {
						lvl[w] = level
						out = append(out, w)
					}
				}
			}
			blocks[b].out = out
		}
	})
	sizes := make([]int32, nb)
	for b := range blocks {
		sizes[b] = int32(len(blocks[b].out))
	}
	total := prim.ExclusiveScanInt32In(e, sizes)
	next := make([]V, total)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			copy(next[sizes[b]:], blocks[b].out)
		}
	})
	return next
}

// ApproxDiameter estimates the diameter with a double-sweep BFS: BFS from
// src, then BFS from the farthest vertex found. The result lower-bounds the
// true diameter and is exact on trees.
func ApproxDiameter(g *Graph, src V) int32 {
	if g.N == 0 {
		return 0
	}
	r1 := BFS(g, src)
	far := src
	for v := V(0); v < g.N; v++ {
		if r1.Level[v] > r1.Level[far] {
			far = v
		}
	}
	r2 := BFS(g, far)
	return r2.Depth
}

// ConnectedBFS reports whether g is connected, via a single BFS from 0.
func ConnectedBFS(g *Graph) bool {
	if g.N == 0 {
		return true
	}
	r := BFS(g, 0)
	for v := V(0); v < g.N; v++ {
		if r.Parent[v] == -1 {
			return false
		}
	}
	return true
}
