package graph

import "sync"

// Scratch is a reusable arena for the large []int32 and []Edge temporaries
// the BCC pipeline allocates: tag arrays, Euler tour state, connectivity
// labels, union-find parents, CSR construction cursors. A single FAST-BCC
// run touches roughly 16n int32 of such scratch; a serving process that
// answers many decompositions in a row re-pays that allocation (and the GC
// pressure behind it) on every call unless the buffers are recycled.
//
// Get* methods return a buffer with *arbitrary contents* — callers must
// initialize what they read. Put* methods return buffers to the arena; a
// buffer must not be used, or Put a second time, after it is Put. All
// methods are safe for concurrent use, and every method accepts a nil
// receiver: a nil *Scratch degrades to plain allocation, so pipeline code
// threads the pointer unconditionally.
type Scratch struct {
	ints  freelist[int32]
	edges freelist[Edge]
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// GetInt32 returns an int32 buffer of length n with arbitrary contents.
func (s *Scratch) GetInt32(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	return s.ints.get(n)
}

// PutInt32 returns int32 buffers to the arena. Nil and zero-capacity
// buffers are ignored.
func (s *Scratch) PutInt32(bufs ...[]int32) {
	if s != nil {
		s.ints.put(bufs)
	}
}

// GetEdges returns an Edge buffer of length n with arbitrary contents.
func (s *Scratch) GetEdges(n int) []Edge {
	if s == nil {
		return make([]Edge, n)
	}
	return s.edges.get(n)
}

// PutEdges returns Edge buffers to the arena.
func (s *Scratch) PutEdges(bufs ...[]Edge) {
	if s != nil {
		s.edges.put(bufs)
	}
}

// freelist is a mutex-guarded best-fit buffer pool for one element type.
type freelist[T any] struct {
	mu   sync.Mutex
	bufs [][]T
}

// roundUpPow2 rounds n up to a power of two so buffers from slightly
// different graph sizes still hit the freelist.
func roundUpPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// get returns a buffer of length n with arbitrary contents, taking the
// smallest pooled buffer with cap >= n or allocating a power-of-two one.
func (f *freelist[T]) get(n int) []T {
	if n == 0 {
		return make([]T, 0)
	}
	f.mu.Lock()
	best := -1
	for i, b := range f.bufs {
		if cap(b) >= n && (best < 0 || cap(b) < cap(f.bufs[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := f.bufs[best]
		last := len(f.bufs) - 1
		f.bufs[best] = f.bufs[last]
		f.bufs[last] = nil
		f.bufs = f.bufs[:last]
		f.mu.Unlock()
		return b[:n]
	}
	f.mu.Unlock()
	return make([]T, n, roundUpPow2(n))
}

// put returns buffers to the pool, ignoring nil and zero-capacity ones.
func (f *freelist[T]) put(bufs [][]T) {
	f.mu.Lock()
	for _, b := range bufs {
		if cap(b) > 0 {
			f.bufs = append(f.bufs, b[:cap(b)])
		}
	}
	f.mu.Unlock()
}
