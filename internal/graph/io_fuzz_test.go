package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
)

// Fuzz targets for the two parsers: arbitrary input must produce either a
// structurally valid graph or an error — never a panic, an unbounded
// allocation, or a graph whose accessors can fault later.

// checkGraphInvariants verifies everything the rest of the repository
// assumes about a parsed graph.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if g.N < 0 {
		t.Fatalf("negative N %d", g.N)
	}
	if len(g.Offsets) != int(g.N)+1 {
		t.Fatalf("len(Offsets) = %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 {
		t.Fatalf("Offsets[0] = %d", g.Offsets[0])
	}
	for v := 0; v < int(g.N); v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			t.Fatalf("decreasing offsets at %d", v)
		}
	}
	if int(g.Offsets[g.N]) != len(g.Adj) {
		t.Fatalf("Offsets[N] = %d, len(Adj) = %d", g.Offsets[g.N], len(g.Adj))
	}
	for _, w := range g.Adj {
		if w < 0 || w >= g.N {
			t.Fatalf("neighbor %d out of range [0, %d)", w, g.N)
		}
	}
	// Every accessor the pipeline uses must be safe on an accepted graph
	// (bounded sweep: offsets and adjacency are already fully validated).
	sweep := g.N
	if sweep > 1<<14 {
		sweep = 1 << 14
	}
	for v := V(0); v < sweep; v++ {
		_ = g.Neighbors(v)
		_ = g.Degree(v)
	}
}

func fuzzSeedGraph() *Graph {
	return MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 3}, {0, 3}})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedGraph().WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:8])
	// Header claiming gigantic n/arcs with no payload behind it.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge, 0x42434331)
	binary.LittleEndian.PutUint32(huge[4:], 0xfffffff0)
	binary.LittleEndian.PutUint32(huge[8:], 0xfffffff0)
	f.Add(huge)
	// Negative first offset.
	negOff := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(negOff[12:], 0x80000008)
	f.Add(negOff)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
		// Round-trip: an accepted graph re-serializes to a graph that is
		// accepted and identical.
		var out bytes.Buffer
		if err := g.WriteBinary(&out); err != nil {
			t.Fatalf("rewriting accepted graph: %v", err)
		}
		g2, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("rereading rewritten graph: %v", err)
		}
		if g2.N != g.N || len(g2.Adj) != len(g.Adj) {
			t.Fatalf("round trip changed shape: n %d->%d arcs %d->%d", g.N, g2.N, len(g.Adj), len(g2.Adj))
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedGraph().WriteEdgeList(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("3 -7\n")             // negative m must not panic make
	f.Add("2 99999999999\n0 1") // huge m must not preallocate unboundedly
	f.Add("3 1\n0 1\n1 2\n")    // trailing garbage
	f.Add("-5 0\n")
	f.Add("1000000 1\n0 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		if len(data) > 1<<16 {
			return // bound parse cost, not coverage
		}
		// A header declaring millions of vertices is valid input (the graph
		// is mostly isolated vertices) but would dominate fuzz time in
		// allocation; the parser's bounds are exercised by the seeds above.
		var n, m int64
		if _, err := fmt.Sscan(data, &n, &m); err == nil && n > 1<<22 {
			return
		}
		g, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
		// Round-trip through the writer must be accepted again.
		var out bytes.Buffer
		if err := g.WriteEdgeList(&out); err != nil {
			t.Fatalf("rewriting accepted graph: %v", err)
		}
		g2, err := ReadEdgeList(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("rereading rewritten graph: %v", err)
		}
		if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: n %d->%d m %d->%d", g.N, g2.N, g.NumEdges(), g2.NumEdges())
		}
	})
}
