package graph

import (
	"math/rand"
	"testing"

	"repro/internal/uf"
)

func compOf(g *Graph) []int32 {
	s := uf.NewSeq(g.NumVertices())
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			s.Union(v, w)
		}
	}
	comp := make([]int32, g.NumVertices())
	// Representative = smallest vertex in the set, to satisfy the
	// comp[r] == r convention with deterministic reps.
	min := make([]int32, g.NumVertices())
	for v := range min {
		min[v] = int32(v)
	}
	for v := 0; v < g.NumVertices(); v++ {
		r := s.Find(int32(v))
		if int32(v) < min[r] {
			min[r] = int32(v)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		comp[v] = min[s.Find(int32(v))]
	}
	return comp
}

func TestReorderByComponentContiguous(t *testing.T) {
	// Two interleaved components: evens form a path, odds form a path.
	n := 20
	var edges []Edge
	for i := 0; i+2 < n; i += 2 {
		edges = append(edges, Edge{V(i), V(i + 2)})
		edges = append(edges, Edge{V(i + 1), V(i + 3)})
	}
	g := MustFromEdges(n, edges)
	comp := compOf(g)
	ng, newID := ReorderByComponent(g, comp)
	if ng.NumVertices() != n || ng.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: n=%d m=%d", ng.NumVertices(), ng.NumEdges())
	}
	// Components must be contiguous in the new numbering.
	ncomp := compOf(ng)
	for v := 1; v < n; v++ {
		if ncomp[v] < ncomp[v-1] {
			t.Fatalf("component ids not monotone at %d", v)
		}
	}
	// Permutation is a bijection preserving adjacency.
	seen := make([]bool, n)
	for _, id := range newID {
		if seen[id] {
			t.Fatal("newID not a bijection")
		}
		seen[id] = true
	}
	for v := V(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if !ng.HasEdge(newID[v], newID[w]) {
				t.Fatalf("edge (%d,%d) lost in reorder", v, w)
			}
		}
	}
}

func TestReorderEmptyAndSingle(t *testing.T) {
	g := MustFromEdges(0, nil)
	ng, _ := ReorderByComponent(g, nil)
	if ng.NumVertices() != 0 {
		t.Fatal("empty reorder wrong")
	}
	g = MustFromEdges(1, nil)
	ng, id := ReorderByComponent(g, []int32{0})
	if ng.NumVertices() != 1 || id[0] != 0 {
		t.Fatal("singleton reorder wrong")
	}
}

func TestReorderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(80)
		m := rng.Intn(2 * n)
		var edges []Edge
		for i := 0; i < m; i++ {
			u, w := V(rng.Intn(n)), V(rng.Intn(n))
			if u != w {
				edges = append(edges, Edge{u, w})
			}
		}
		g := MustFromEdges(n, edges)
		comp := compOf(g)
		ng, newID := ReorderByComponent(g, comp)
		for v := V(0); v < g.N; v++ {
			if g.Degree(v) != ng.Degree(newID[v]) {
				t.Fatalf("degree changed for %d", v)
			}
		}
	}
}
