package graph

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/parallel"
	"repro/internal/prim"
)

// fromEdgesAtomicReference is the historical CSR construction — atomic
// degree counting, prefix-sum offsets, atomic-cursor scatter, sorted
// neighbor lists — kept here as the specification the atomic-free
// construction must reproduce bit-for-bit.
func fromEdgesAtomicReference(n int, edges []Edge) *Graph {
	deg := make([]int32, n+1)
	parallel.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&deg[edges[i].U], 1)
			atomic.AddInt32(&deg[edges[i].W], 1)
		}
	})
	total := prim.ExclusiveScanInt32(deg)
	adj := make([]V, total)
	cursor := make([]int32, n)
	copy(cursor, deg[:n])
	parallel.ForBlock(len(edges), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, w := edges[i].U, edges[i].W
			adj[atomic.AddInt32(&cursor[u], 1)-1] = w
			adj[atomic.AddInt32(&cursor[w], 1)-1] = u
		}
	})
	g := &Graph{N: int32(n), Offsets: deg, Adj: adj}
	parallel.ForBlock(n, 256, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nb := g.Adj[g.Offsets[v]:g.Offsets[v+1]]
			sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
		}
	})
	return g
}

func equalGraphs(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N: got %d want %d", got.N, want.N)
	}
	for v := 0; v <= int(got.N); v++ {
		if got.Offsets[v] != want.Offsets[v] {
			t.Fatalf("Offsets[%d]: got %d want %d", v, got.Offsets[v], want.Offsets[v])
		}
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("Adj[%d]: got %d want %d", i, got.Adj[i], want.Adj[i])
		}
	}
}

// TestFromEdgesMatchesAtomicReference checks, on random multigraphs (with
// self-loops and parallel edges), that the atomic-free construction is
// deterministic and equal to the old atomic-scatter output. Run under
// -race this also exercises the per-worker scatter ranges for overlap.
func TestFromEdgesMatchesAtomicReference(t *testing.T) {
	old := parallel.SetProcs(4)
	defer parallel.SetProcs(old)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2000)
		m := rng.Intn(4 * n)
		edges := make([]Edge, m)
		for i := range edges {
			u := V(rng.Intn(n))
			w := V(rng.Intn(n))
			if rng.Intn(10) == 0 {
				w = u // self-loop
			}
			edges[i] = Edge{u, w}
			if i > 0 && rng.Intn(8) == 0 {
				edges[i] = edges[rng.Intn(i)] // parallel edge
			}
		}
		want := fromEdgesAtomicReference(n, edges)
		got := MustFromEdges(n, edges)
		equalGraphs(t, got, want)
		// Repeat with a shared arena: contents must be identical again
		// (scratch buffers are dirty on reuse).
		sc := NewScratch()
		for r := 0; r < 3; r++ {
			g2, err := FromEdgesScratch(n, edges, sc)
			if err != nil {
				t.Fatal(err)
			}
			equalGraphs(t, g2, want)
		}
	}
}

// TestFromEdgesAtomicFallback drives the sparse-graph/many-workers regime
// where FromEdgesScratch dispatches to the atomic-cursor fallback (worker
// cap 1+m/n far below Procs) and checks it still matches the reference.
func TestFromEdgesAtomicFallback(t *testing.T) {
	old := parallel.SetProcs(16)
	defer parallel.SetProcs(old)
	rng := rand.New(rand.NewSource(11))
	n := 5000
	edges := make([]Edge, n/4) // m << n → nw == 1 → fallback
	for i := range edges {
		edges[i] = Edge{V(rng.Intn(n)), V(rng.Intn(n))}
	}
	want := fromEdgesAtomicReference(n, edges)
	equalGraphs(t, MustFromEdges(n, edges), want)
	sc := NewScratch()
	for r := 0; r < 2; r++ {
		g, err := FromEdgesScratch(n, edges, sc)
		if err != nil {
			t.Fatal(err)
		}
		equalGraphs(t, g, want)
	}
}

func TestFromEdgesScratchReusesBuffers(t *testing.T) {
	sc := NewScratch()
	edges := []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	g1, err := FromEdgesScratch(4, edges, sc)
	if err != nil {
		t.Fatal(err)
	}
	b := sc.GetInt32(4)
	for i := range b {
		b[i] = -7 // dirty the buffer the next build will reuse
	}
	sc.PutInt32(b)
	g2, err := FromEdgesScratch(4, edges, sc)
	if err != nil {
		t.Fatal(err)
	}
	equalGraphs(t, g2, g1)
}
