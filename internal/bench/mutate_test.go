package bench

import (
	"io"
	"testing"
)

// TestRunMutationChurnSmoke runs the mutation-churn section once and
// asserts the acceptance bounds: fast-path p50 at most 1ms and at least
// 50x under a from-scratch rebuild, and a 100-mutation burst coalescing
// into at most 3 rebuilds. The recorded BENCH_*.json numbers are far
// inside these bounds; the test guards the mechanism, not the exact
// figure.
func TestRunMutationChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation churn bench in -short mode")
	}
	rep := RunMutationChurn(io.Discard)
	if rep == nil {
		t.Fatal("RunMutationChurn returned nil")
	}
	if rep.Fast.Count == 0 || rep.Fast.P50Micros <= 0 {
		t.Fatalf("fast path unmeasured: %+v", rep.Fast)
	}
	if rep.Fast.P50Micros > 1000 {
		t.Errorf("fast-path p50 = %.1fµs, acceptance bound 1ms", rep.Fast.P50Micros)
	}
	if rep.FastSpeedup < 50 {
		t.Errorf("fast-path speedup = %.1fx over rebuild, acceptance bound 50x", rep.FastSpeedup)
	}
	if rep.Collapse.Count == 0 {
		t.Error("no collapse samples on RMAT-16-8")
	}
	if rep.BurstFlushes < 1 || rep.BurstFlushes > 3 {
		t.Errorf("burst of %d mutations drained in %d flushes, want 1..3",
			rep.BurstMutations, rep.BurstFlushes)
	}
	if rep.ChurnQueriesPerSec <= 0 || rep.ChurnMutationsPerSec <= 0 {
		t.Errorf("churn mode idle: %.0f queries/s, %.0f mutations/s",
			rep.ChurnQueriesPerSec, rep.ChurnMutationsPerSec)
	}
}
