package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/gen"
)

// The mutation-churn section of qbench: what Store.ApplyBatch's
// classification buys over the rebuild-per-mutation baseline, measured
// on the same RMAT family as the serving benchmarks. Three numbers
// matter: the fast-path latency (intra-block insertion, publishes a
// snapshot sharing the index — the headline speedup over a rebuild),
// the collapse latency (block-path merge + index derivation, still far
// under a rebuild), and the coalescing ratio (a burst of N
// unclassifiable mutations costs O(1) rebuilds, with queries serving
// the last-good snapshot throughout).

// MutateLat is one mutation class's latency measurement.
type MutateLat struct {
	Name      string  `json:"name"`
	Count     int     `json:"count"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// MutateReport is the mutation-churn section of BENCH_*.json.
type MutateReport struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	// RebuildP50Micros is the naive baseline: a full from-scratch build,
	// which is what every mutation would cost without classification.
	RebuildP50Micros float64 `json:"rebuild_p50_us"`
	// Fast and Collapse are the classified insertion paths.
	Fast     MutateLat `json:"fast"`
	Collapse MutateLat `json:"collapse"`
	// FastSpeedup is RebuildP50Micros / Fast.P50Micros — how much the
	// O(1)-classified intra-block path beats rebuild-per-mutation.
	FastSpeedup float64 `json:"fast_speedup"`
	// FastAllocsPerOp is exact (testing.AllocsPerRun), the
	// regression-guard number for the fast path.
	FastAllocsPerOp float64 `json:"fast_allocs_per_op"`
	// BurstMutations unclassifiable mutations were fired back to back;
	// BurstFlushes coalesced rebuilds drained all of them.
	BurstMutations int   `json:"burst_mutations"`
	BurstFlushes   int64 `json:"burst_flushes"`
	// Query service under mutation churn: batch queries/s sustained
	// while a writer streams mutations (mutations/s alongside), proving
	// readers never block on the mutation path.
	ChurnQueriesPerSec   float64 `json:"churn_queries_per_sec"`
	ChurnMutationsPerSec float64 `json:"churn_mutations_per_sec"`
	ChurnMutateP50Micros float64 `json:"churn_mutate_p50_us"`
}

// pctUs converts sorted nanosecond samples to a microsecond percentile.
func pctUs(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[min(int(p*float64(len(sorted))), len(sorted)-1)]) / 1e3
}

// RunMutationChurn measures the mutation pipeline on RMAT-16-8 (fixed:
// the acceptance numbers are quoted against this instance regardless of
// -scale).
func RunMutationChurn(out io.Writer) *MutateReport {
	g := gen.RMAT(16, 8, 0xBC)
	store := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{
		Workers:          0,
		MutationCoalesce: 10 * time.Millisecond,
	})
	defer store.Close()
	ctx := context.Background()
	snap, err := store.Load(ctx, "mut", g, nil)
	if err != nil {
		fmt.Fprintf(out, "mutate-bench: %v\n", err)
		return nil
	}
	rep := &MutateReport{Graph: "RMAT-16-8", N: g.NumVertices(), M: g.NumEdges()}
	fmt.Fprintf(out, "# mutate: %s n=%d m=%d\n", rep.Graph, rep.N, rep.M)

	// Baseline: the full rebuild every mutation would cost without
	// classification.
	rebuildLats := make([]int64, 0, 5)
	for seed := uint64(1); seed <= 5; seed++ {
		t0 := time.Now()
		s, err := store.Rebuild(ctx, "mut", &fastbcc.Options{Seed: seed})
		if err != nil {
			continue
		}
		s.Release()
		rebuildLats = append(rebuildLats, time.Since(t0).Nanoseconds())
	}
	sort.Slice(rebuildLats, func(i, j int) bool { return rebuildLats[i] < rebuildLats[j] })
	rep.RebuildP50Micros = pctUs(rebuildLats, 0.50)
	snap.Release()

	// findPair scans the current snapshot for an endpoint pair of the
	// wanted class; fast wants 2ECC (parallel edges stay fast forever),
	// collapse wants connected-but-not-biconnected (the insertion merges
	// the block path between them).
	findPair := func(idx *fastbcc.Index, n int32, collapse bool) (int32, int32, bool) {
		for a := int32(0); a < n; a++ {
			for b := a + 1; b < a+64 && b < n; b++ {
				if collapse {
					if idx.Connected(a, b) && !idx.Biconnected(a, b) {
						return a, b, true
					}
				} else if idx.Biconnected(a, b) && idx.TwoEdgeConnected(a, b) {
					return a, b, true
				}
			}
		}
		return 0, 0, false
	}
	n := int32(g.NumVertices())

	// Fast path: one parallel edge inside a 2ECC block, repeated.
	s, err := store.Acquire("mut")
	if err != nil {
		return rep
	}
	fu, fw, ok := findPair(s.Index, n, false)
	s.Release()
	if !ok {
		fmt.Fprintf(out, "mutate-bench: no 2ECC pair on %s\n", rep.Graph)
		return rep
	}
	adds := []fastbcc.Edge{{U: fu, W: fw}}
	const fastIters = 300
	fastLats := make([]int64, 0, fastIters)
	for i := 0; i < fastIters; i++ {
		t0 := time.Now()
		res, err := store.ApplyBatch(ctx, "mut", adds, nil)
		if err != nil || res.Fast != 1 {
			fmt.Fprintf(out, "mutate-bench: fast add degraded: %+v %v\n", res, err)
			return rep
		}
		fastLats = append(fastLats, time.Since(t0).Nanoseconds())
	}
	sort.Slice(fastLats, func(i, j int) bool { return fastLats[i] < fastLats[j] })
	rep.Fast = MutateLat{Name: "fast", Count: fastIters,
		P50Micros: pctUs(fastLats, 0.50), P99Micros: pctUs(fastLats, 0.99)}
	rep.FastAllocsPerOp = testing.AllocsPerRun(50, func() {
		store.ApplyBatch(ctx, "mut", adds, nil)
	})
	if rep.Fast.P50Micros > 0 {
		rep.FastSpeedup = rep.RebuildP50Micros / rep.Fast.P50Micros
	}

	// Collapse: each insertion merges the block path between two
	// vertices that share a component but not a block, so every sample
	// needs a fresh pair from the current decomposition.
	const collapseIters = 30
	collapseLats := make([]int64, 0, collapseIters)
	for i := 0; i < collapseIters; i++ {
		s, err := store.Acquire("mut")
		if err != nil {
			break
		}
		cu, cw, ok := findPair(s.Index, n, true)
		s.Release()
		if !ok {
			break
		}
		t0 := time.Now()
		res, err := store.ApplyBatch(ctx, "mut", []fastbcc.Edge{{U: cu, W: cw}}, nil)
		if err != nil || res.Collapsed != 1 {
			break
		}
		collapseLats = append(collapseLats, time.Since(t0).Nanoseconds())
	}
	sort.Slice(collapseLats, func(i, j int) bool { return collapseLats[i] < collapseLats[j] })
	rep.Collapse = MutateLat{Name: "collapse", Count: len(collapseLats),
		P50Micros: pctUs(collapseLats, 0.50), P99Micros: pctUs(collapseLats, 0.99)}

	// Burst coalescing: 100 unclassifiable mutations (deleting absent
	// edges) fired back to back land in O(1) rebuilds.
	flushes0 := mustStatus(store, "mut").DeltaFlushes
	const burst = 100
	for i := 0; i < burst; i++ {
		e := fastbcc.Edge{U: int32(i % int(n)), W: int32((i*7 + 1) % int(n))}
		if _, err := store.ApplyBatch(ctx, "mut", nil, []fastbcc.Edge{e}); err != nil {
			fmt.Fprintf(out, "mutate-bench: burst: %v\n", err)
			return rep
		}
	}
	if err := store.FlushDeltas(ctx, "mut"); err != nil {
		fmt.Fprintf(out, "mutate-bench: burst flush: %v\n", err)
		return rep
	}
	rep.BurstMutations = burst
	rep.BurstFlushes = mustStatus(store, "mut").DeltaFlushes - flushes0

	// Query service under mutation churn: readers run store batches
	// while one writer streams queued mutations, the coalesced flusher
	// rebuilding continuously behind the epoch swap.
	const qn = 1 << 10
	qs := make([]fastbcc.Query, qn)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() int32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int32(rng % uint64(n))
	}
	for i := range qs {
		qs[i] = fastbcc.Query{Op: fastbcc.OpConnected + fastbcc.QueryOp(i%6), U: next(), V: next(), X: next()}
	}
	const batch = 256
	readers := 4
	dur := time.Second
	stop := make(chan struct{})
	var queries, mutations atomic.Int64
	var mutLats []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := fastbcc.Edge{U: int32(i % int(n)), W: int32((i*13 + 5) % int(n))}
			t0 := time.Now()
			if _, err := store.ApplyBatch(ctx, "mut", nil, []fastbcc.Edge{e}); err == nil {
				mutations.Add(1)
				if len(mutLats) < 1<<14 {
					mutLats = append(mutLats, time.Since(t0).Nanoseconds())
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	t0 := time.Now()
	deadline := t0.Add(dur)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := store.NewHandle()
			defer h.Close()
			dst := make([]fastbcc.Answer, 0, batch)
			for i := r; time.Now().Before(deadline); i++ {
				c := i % (qn / batch)
				out, _, err := store.QueryBatch(ctx, h, "mut", qs[c*batch:(c+1)*batch], dst)
				if err != nil {
					continue
				}
				dst = out
				queries.Add(batch)
			}
		}(r)
	}
	for time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	el := time.Since(t0)
	store.FlushDeltas(ctx, "mut") // quiesce the coalesced flusher before Close
	rep.ChurnQueriesPerSec = float64(queries.Load()) / el.Seconds()
	rep.ChurnMutationsPerSec = float64(mutations.Load()) / el.Seconds()
	sort.Slice(mutLats, func(i, j int) bool { return mutLats[i] < mutLats[j] })
	rep.ChurnMutateP50Micros = pctUs(mutLats, 0.50)

	fmt.Fprintf(out, "# mutate: rebuild p50 %.0fµs | fast p50 %.1fµs p99 %.1fµs (%.0fx, %.0f allocs) | collapse p50 %.0fµs (%d samples)\n",
		rep.RebuildP50Micros, rep.Fast.P50Micros, rep.Fast.P99Micros,
		rep.FastSpeedup, rep.FastAllocsPerOp, rep.Collapse.P50Micros, rep.Collapse.Count)
	fmt.Fprintf(out, "# mutate: burst %d -> %d coalesced flushes | under churn %.2fM queries/s with %.0f mutations/s (mutate p50 %.0fµs)\n",
		rep.BurstMutations, rep.BurstFlushes, rep.ChurnQueriesPerSec/1e6,
		rep.ChurnMutationsPerSec, rep.ChurnMutateP50Micros)
	return rep
}

// mustStatus is Status with errors collapsed to the zero value (the
// bench owns the store; the graph cannot disappear mid-run).
func mustStatus(store *fastbcc.Store, name string) fastbcc.GraphStatus {
	st, _ := store.Status(name)
	return st
}
