package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/seqbcc"
)

func TestSuiteHas27Instances(t *testing.T) {
	s := Suite()
	if len(s) != 27 {
		t.Fatalf("suite has %d instances, want 27", len(s))
	}
	seen := map[string]bool{}
	for _, ins := range s {
		if seen[ins.Name] {
			t.Fatalf("duplicate instance %s", ins.Name)
		}
		seen[ins.Name] = true
		found := false
		for _, c := range Categories() {
			if ins.Category == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("instance %s has unknown category %q", ins.Name, ins.Category)
		}
	}
}

func TestSuiteCategoryCounts(t *testing.T) {
	want := map[string]int{"Social": 5, "Web": 5, "Road": 3, "k-NN": 8, "Synthetic": 6}
	got := map[string]int{}
	for _, ins := range Suite() {
		got[ins.Category]++
	}
	for c, n := range want {
		if got[c] != n {
			t.Fatalf("category %s has %d instances, want %d", c, got[c], n)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("SQR"); !ok {
		t.Fatal("SQR missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom instance")
	}
}

func TestSmallInstancesBuildAndAreCorrect(t *testing.T) {
	// Building all 27 small instances and verifying #BCC against SEQ also
	// serves as an end-to-end smoke test of the harness path.
	for _, ins := range Suite() {
		ins := ins
		t.Run(ins.Name, func(t *testing.T) {
			g := ins.Build(Small)
			if g.NumVertices() == 0 {
				t.Fatal("empty instance")
			}
			meta := ComputeMeta(ins, g)
			ref := seqbcc.BCC(g)
			if meta.NumBCC != ref.NumBCC() {
				t.Fatalf("meta NumBCC %d != seq %d", meta.NumBCC, ref.NumBCC())
			}
			if meta.BCC1Pct < 0 || meta.BCC1Pct > 100 {
				t.Fatalf("BCC1 pct %f out of range", meta.BCC1Pct)
			}
		})
	}
}

func TestDiameterClasses(t *testing.T) {
	// The suite must preserve the paper's diameter classes: synthetic grid
	// and chain instances have large diameters, social ones small.
	chain, _ := ByName("Chn7")
	social, _ := ByName("OK")
	gc := chain.Build(Small)
	gs := social.Build(Small)
	mc := ComputeMeta(chain, gc)
	ms := ComputeMeta(social, gs)
	if mc.Diam < 100*ms.Diam {
		t.Fatalf("chain diam %d vs social diam %d — classes not separated", mc.Diam, ms.Diam)
	}
}

func TestRunRowAndRenderers(t *testing.T) {
	ins, _ := ByName("SQR")
	g := ins.Build(Small)
	row := RunRow(ins, g, 1)
	if row.OursPar <= 0 || row.Seq <= 0 || row.TVPar <= 0 {
		t.Fatal("timings missing")
	}
	if row.NumBCC <= 0 {
		t.Fatal("meta missing")
	}
	if !row.SMSupported {
		t.Fatal("SQR is connected; SM should be supported")
	}
	rows := []Row{row}
	for name, render := range map[string]func(){
		"tab2": func() { RenderTable2(&bytes.Buffer{}, rows) },
		"fig1": func() { RenderFig1(&bytes.Buffer{}, rows) },
		"fig5": func() { RenderFig5(&bytes.Buffer{}, rows) },
		"fig6": func() { RenderFig6(&bytes.Buffer{}, rows) },
		"fig7": func() { RenderFig7(&bytes.Buffer{}, rows) },
		"tab3": func() { RenderTable3(&bytes.Buffer{}, rows) },
	} {
		t.Run(name, func(t *testing.T) { render() })
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "SQR") {
		t.Fatal("table must mention the instance")
	}
}

func TestRunFig4Smoke(t *testing.T) {
	pts := RunFig4(Small, []int{1, 2}, nil)
	if len(pts) != 2*len(Fig4Graphs()) {
		t.Fatalf("fig4 points = %d", len(pts))
	}
	var buf bytes.Buffer
	RenderFig4(&buf, pts)
	if !strings.Contains(buf.String(), "USA") {
		t.Fatal("fig4 output missing USA")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean = %f", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
	if g := geomean([]float64{0, 4}); g != 4 {
		t.Fatalf("geomean skips zeros: %f", g)
	}
}

func TestParseScale(t *testing.T) {
	if ParseScale("medium") != Medium || ParseScale("large") != Large || ParseScale("small") != Small {
		t.Fatal("ParseScale broken")
	}
	if ParseScale("") != Small {
		t.Fatal("default scale should be Small")
	}
}
