package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/bfsbcc"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/seqbcc"
	"repro/internal/smbcc"
	"repro/internal/tv"
)

// Meta summarizes one instance the way Tab. 2's left half does.
type Meta struct {
	Name, Category string
	N, M           int
	Diam           int32
	NumBCC         int
	BCC1Pct        float64 // size of the largest BCC / n
}

// ComputeMeta derives the Tab. 2 metadata columns for g.
func ComputeMeta(ins Instance, g *graph.Graph) Meta {
	res := core.BCC(g, core.Options{Seed: 1})
	counts := make([]int32, res.NumLabels)
	for v, l := range res.Label {
		if res.Parent[v] != -1 {
			counts[l]++
		}
	}
	var largest int32
	for l, c := range counts {
		if res.Head[l] != -1 && c+1 > largest {
			largest = c + 1 // members plus head
		}
	}
	pct := 0.0
	if g.NumVertices() > 0 {
		pct = 100 * float64(largest) / float64(g.NumVertices())
	}
	return Meta{
		Name:     ins.Name,
		Category: ins.Category,
		N:        g.NumVertices(),
		M:        g.NumEdges(),
		Diam:     graph.ApproxDiameter(g, 0),
		NumBCC:   res.NumBCC,
		BCC1Pct:  pct,
	}
}

// timeMedian runs f reps times and returns the median duration.
func timeMedian(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	ts := make([]time.Duration, reps)
	for i := range ts {
		runtime.GC()
		t0 := time.Now()
		f()
		ts[i] = time.Since(t0)
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	return ts[reps/2]
}

// withProcs runs f with the worker count temporarily set to p.
func withProcs(p int, f func()) {
	old := parallel.SetProcs(p)
	defer parallel.SetProcs(old)
	f()
}

// Row is one line of Tab. 2: times for every algorithm on one graph.
type Row struct {
	Meta
	OursPar, OursSeq time.Duration
	GBBSPar, GBBSSeq time.Duration
	SMPar            time.Duration // zero if unsupported
	SMSupported      bool
	Seq              time.Duration
	TVPar            time.Duration
	OursSteps        core.StepTimes
	GBBSSteps        core.StepTimes
	OursOptPar       time.Duration // LocalSearch variant ("Opt", Fig. 6)
	OursOptSteps     core.StepTimes
	OursAux, GBBSAux int64
	TVAux            int64
}

// RunRow measures all algorithms on one instance.
func RunRow(ins Instance, g *graph.Graph, reps int) Row {
	row := Row{Meta: ComputeMeta(ins, g)}

	var cres *core.Result
	row.OursPar = timeMedian(reps, func() { cres = core.BCC(g, core.Options{Seed: 7}) })
	row.OursSteps = cres.Times
	row.OursAux = cres.AuxBytes
	withProcs(1, func() {
		row.OursSeq = timeMedian(1, func() { core.BCC(g, core.Options{Seed: 7}) })
	})

	var copt *core.Result
	row.OursOptPar = timeMedian(reps, func() {
		copt = core.BCC(g, core.Options{Seed: 7, LocalSearch: true})
	})
	row.OursOptSteps = copt.Times

	var gres *core.Result
	row.GBBSPar = timeMedian(reps, func() { gres = bfsbcc.BCC(g, bfsbcc.Options{Seed: 7}) })
	row.GBBSSteps = gres.Times
	row.GBBSAux = gres.AuxBytes
	withProcs(1, func() {
		row.GBBSSeq = timeMedian(1, func() { bfsbcc.BCC(g, bfsbcc.Options{Seed: 7}) })
	})

	row.Seq = timeMedian(reps, func() { seqbcc.BCC(g) })

	if _, err := smbcc.BCC(g, smbcc.Options{}); err == nil {
		row.SMSupported = true
		row.SMPar = timeMedian(reps, func() { smbcc.BCC(g, smbcc.Options{}) })
	}

	var tres *tv.Result
	row.TVPar = timeMedian(reps, func() { tres = tv.BCC(g, tv.Options{Seed: 7}) })
	row.TVAux = tres.AuxBytes
	return row
}

// RunSuite measures every instance of the suite at the given scale.
func RunSuite(sc Scale, reps int, progress io.Writer) []Row {
	var rows []Row
	for _, ins := range Suite() {
		if progress != nil {
			fmt.Fprintf(progress, "# building %s ...\n", ins.Name)
		}
		g := ins.Build(sc)
		if progress != nil {
			fmt.Fprintf(progress, "# running %s (n=%d m=%d)\n", ins.Name, g.NumVertices(), g.NumEdges())
		}
		rows = append(rows, RunRow(ins, g, reps))
	}
	return rows
}

func secs(d time.Duration) string {
	if d == 0 {
		return "n"
	}
	return fmt.Sprintf("%.3f", d.Seconds())
}

func speedup(seq, par time.Duration) float64 {
	if par == 0 {
		return 0
	}
	return float64(seq) / float64(par)
}

// geomean of positive values; zero values are skipped.
func geomean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// RenderTable2 prints the Tab. 2 analogue.
func RenderTable2(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tn\tm\tD\t#BCC\t|BCC1|%\tours-par\tours-seq\tours-spd\tgbbs-par\tgbbs-seq\tgbbs-spd\tsm14\tseq\tTbest/ours")
	cat := ""
	for _, r := range rows {
		if r.Category != cat {
			cat = r.Category
			fmt.Fprintf(tw, "[%s]\t\t\t\t\t\t\t\t\t\t\t\t\t\t\n", cat)
		}
		sm := "n"
		best := r.Seq
		if r.GBBSPar < best {
			best = r.GBBSPar
		}
		if r.SMSupported {
			sm = secs(r.SMPar)
			if r.SMPar < best {
				best = r.SMPar
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2f\t%s\t%s\t%.1f\t%s\t%s\t%.1f\t%s\t%s\t%.2f\n",
			r.Name, r.N, r.M, r.Diam, r.NumBCC, r.BCC1Pct,
			secs(r.OursPar), secs(r.OursSeq), speedup(r.OursSeq, r.OursPar),
			secs(r.GBBSPar), secs(r.GBBSSeq), speedup(r.GBBSSeq, r.GBBSPar),
			sm, secs(r.Seq), speedup(best, r.OursPar))
	}
	tw.Flush()
}

// RenderFig1 prints the Fig. 1 heatmap analogue: speedups over SEQ, with
// per-category and total geometric means.
func RenderFig1(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tOurs\tGBBS\tSM'14\tSEQ")
	perCat := map[string][3][]float64{}
	var tot [3][]float64
	cat := ""
	flushCat := func() {
		if cat == "" {
			return
		}
		v := perCat[cat]
		fmt.Fprintf(tw, "MEAN(%s)\t%.2f\t%.2f\t%.2f\t1.00\n", cat,
			geomean(v[0]), geomean(v[1]), geomean(v[2]))
	}
	for _, r := range rows {
		if r.Category != cat {
			flushCat()
			cat = r.Category
		}
		ours := speedup(r.Seq, r.OursPar)
		gbbs := speedup(r.Seq, r.GBBSPar)
		sm := 0.0
		smStr := "n"
		if r.SMSupported {
			sm = speedup(r.Seq, r.SMPar)
			smStr = fmt.Sprintf("%.2f", sm)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t1.00\n", r.Name, ours, gbbs, smStr)
		v := perCat[cat]
		v[0] = append(v[0], ours)
		v[1] = append(v[1], gbbs)
		v[2] = append(v[2], sm)
		perCat[cat] = v
		tot[0] = append(tot[0], ours)
		tot[1] = append(tot[1], gbbs)
		tot[2] = append(tot[2], sm)
	}
	flushCat()
	fmt.Fprintf(tw, "TOTAL MEAN\t%.2f\t%.2f\t%.2f\t1.00\n",
		geomean(tot[0]), geomean(tot[1]), geomean(tot[2]))
	tw.Flush()
}

// Fig4Graphs are the five scalability instances of Fig. 4.
func Fig4Graphs() []string { return []string{"TW", "SD", "USA", "GL5", "REC"} }

// Fig4Point is one scalability measurement.
type Fig4Point struct {
	Graph   string
	Threads int
	Ours    float64 // speedup over SEQ
	GBBS    float64
	SM      float64 // 0 if unsupported
	TV      float64
}

// RunFig4 sweeps thread counts on the Fig. 4 graphs.
func RunFig4(sc Scale, threads []int, progress io.Writer) []Fig4Point {
	var pts []Fig4Point
	for _, name := range Fig4Graphs() {
		ins, ok := ByName(name)
		if !ok {
			continue
		}
		g := ins.Build(sc)
		if progress != nil {
			fmt.Fprintf(progress, "# fig4 %s (n=%d m=%d)\n", name, g.NumVertices(), g.NumEdges())
		}
		seq := timeMedian(1, func() { seqbcc.BCC(g) })
		smOK := false
		if _, err := smbcc.BCC(g, smbcc.Options{}); err == nil {
			smOK = true
		}
		for _, p := range threads {
			pt := Fig4Point{Graph: name, Threads: p}
			withProcs(p, func() {
				ours := timeMedian(1, func() { core.BCC(g, core.Options{Seed: 7}) })
				gbbs := timeMedian(1, func() { bfsbcc.BCC(g, bfsbcc.Options{Seed: 7}) })
				tvt := timeMedian(1, func() { tv.BCC(g, tv.Options{Seed: 7}) })
				pt.Ours = speedup(seq, ours)
				pt.GBBS = speedup(seq, gbbs)
				pt.TV = speedup(seq, tvt)
				if smOK {
					smt := timeMedian(1, func() { smbcc.BCC(g, smbcc.Options{}) })
					pt.SM = speedup(seq, smt)
				}
			})
			pts = append(pts, pt)
		}
	}
	return pts
}

// RenderFig4 prints the scalability series.
func RenderFig4(w io.Writer, pts []Fig4Point) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tthreads\tOurs\tGBBS\tSM'14\tTV'85")
	for _, p := range pts {
		sm := "n"
		if p.SM > 0 {
			sm = fmt.Sprintf("%.2f", p.SM)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%s\t%.2f\n", p.Graph, p.Threads, p.Ours, p.GBBS, sm, p.TV)
	}
	tw.Flush()
}

// RenderFig5 prints the per-step breakdown of FAST-BCC vs the GBBS-style
// baseline (Fig. 5).
func RenderFig5(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\talg\tFirstCC\tRooting\tTagging\tLastCC\ttotal")
	for _, r := range rows {
		o, g := r.OursSteps, r.GBBSSteps
		fmt.Fprintf(tw, "%s\tOurs\t%s\t%s\t%s\t%s\t%s\n", r.Name,
			secs(o.FirstCC), secs(o.Rooting), secs(o.Tagging), secs(o.LastCC), secs(o.Total()))
		fmt.Fprintf(tw, "%s\tGBBS\t%s\t%s\t%s\t%s\t%s\n", r.Name,
			secs(g.FirstCC), secs(g.Rooting), secs(g.Tagging), secs(g.LastCC), secs(g.Total()))
	}
	tw.Flush()
}

// RenderFig6 prints the Orig vs Opt (hash bag + local search) ablation.
func RenderFig6(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tvariant\tFirstCC\tRooting\tTagging\tLastCC\ttotal\tOrig/Opt")
	var ratios []float64
	for _, r := range rows {
		o, p := r.OursSteps, r.OursOptSteps
		ratio := speedup(r.OursPar, r.OursOptPar)
		ratios = append(ratios, ratio)
		fmt.Fprintf(tw, "%s\tOrig\t%s\t%s\t%s\t%s\t%s\t\n", r.Name,
			secs(o.FirstCC), secs(o.Rooting), secs(o.Tagging), secs(o.LastCC), secs(o.Total()))
		fmt.Fprintf(tw, "%s\tOpt\t%s\t%s\t%s\t%s\t%s\t%.2f\n", r.Name,
			secs(p.FirstCC), secs(p.Rooting), secs(p.Tagging), secs(p.LastCC), secs(p.Total()), ratio)
	}
	fmt.Fprintf(tw, "MEAN\t\t\t\t\t\t\t%.2f\n", geomean(ratios))
	tw.Flush()
}

// RenderFig7 prints relative space usage (normalized to the smallest),
// reproducing Fig. 7's comparison of FAST-BCC, GBBS, and Tarjan–Vishkin.
func RenderFig7(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tFAST-BCC\tGBBS\tTarjan-Vishkin")
	for _, r := range rows {
		minB := r.OursAux
		if r.GBBSAux < minB {
			minB = r.GBBSAux
		}
		if r.TVAux < minB {
			minB = r.TVAux
		}
		if minB == 0 {
			minB = 1
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", r.Name,
			float64(r.OursAux)/float64(minB),
			float64(r.GBBSAux)/float64(minB),
			float64(r.TVAux)/float64(minB))
	}
	tw.Flush()
}

// RenderTable3 prints Tab. 3: Tarjan–Vishkin vs the others.
func RenderTable3(w io.Writer, rows []Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tOurs\tGBBS\tTV\tSEQ")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Name,
			secs(r.OursPar), secs(r.GBBSPar), secs(r.TVPar), secs(r.Seq))
	}
	tw.Flush()
}
