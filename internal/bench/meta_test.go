package bench

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/seqbcc"
)

// These tests pin the qualitative Table 2 metadata claims the suite must
// preserve (the paper's analysis keys off them): block structure per
// category and the GL2→GL20 fusion progression.

func metaOf(t *testing.T, name string) (Meta, *graph.Graph) {
	t.Helper()
	ins, ok := ByName(name)
	if !ok {
		t.Fatalf("missing %s", name)
	}
	g := ins.Build(Small)
	return ComputeMeta(ins, g), g
}

func TestSocialHasGiantBlockAndFringe(t *testing.T) {
	m, _ := metaOf(t, "OK")
	if m.BCC1Pct < 40 {
		t.Fatalf("OK giant block %.1f%%, want ≥ 40%%", m.BCC1Pct)
	}
	if m.NumBCC < 100 {
		t.Fatalf("OK #BCC = %d, want a pendant fringe", m.NumBCC)
	}
	if m.Diam > 30 {
		t.Fatalf("OK diameter %d, want low", m.Diam)
	}
}

func TestChainIsAllBridges(t *testing.T) {
	m, g := metaOf(t, "Chn7")
	if m.NumBCC != g.NumVertices()-1 {
		t.Fatalf("chain #BCC = %d, want %d", m.NumBCC, g.NumVertices()-1)
	}
	if m.BCC1Pct > 1 {
		t.Fatalf("chain |BCC1| = %.2f%%, want ~0", m.BCC1Pct)
	}
}

func TestGridIsOneBlock(t *testing.T) {
	for _, name := range []string{"SQR", "REC"} {
		m, _ := metaOf(t, name)
		if m.NumBCC != 1 || m.BCC1Pct < 99.9 {
			t.Fatalf("%s: #BCC=%d |BCC1|=%.2f%%, want single block", name, m.NumBCC, m.BCC1Pct)
		}
	}
}

func TestGLProgressionFuses(t *testing.T) {
	// Paper: GL2 fragments into ~11M blocks (0.03%% giant); GL20 is 94%%
	// giant. The scaled analogs must preserve the monotone fusion.
	m2, _ := metaOf(t, "GL2")
	m20, _ := metaOf(t, "GL20")
	if m2.NumBCC <= m20.NumBCC {
		t.Fatalf("#BCC must shrink with k: GL2=%d GL20=%d", m2.NumBCC, m20.NumBCC)
	}
	if m2.BCC1Pct >= m20.BCC1Pct {
		t.Fatalf("|BCC1| must grow with k: GL2=%.2f GL20=%.2f", m2.BCC1Pct, m20.BCC1Pct)
	}
	if m20.BCC1Pct < 90 {
		t.Fatalf("GL20 giant block %.1f%%, want ≥ 90%%", m20.BCC1Pct)
	}
}

func TestSampledGridFragments(t *testing.T) {
	full, _ := metaOf(t, "SQR")
	sampled, _ := metaOf(t, "SQR'")
	if sampled.NumBCC <= full.NumBCC {
		t.Fatal("sampling must fragment the grid")
	}
	if sampled.BCC1Pct < 30 || sampled.BCC1Pct > 95 {
		t.Fatalf("SQR' giant block %.1f%%, want the paper's ~70%% regime", sampled.BCC1Pct)
	}
}

func TestMetaNumBCCAgainstSeqOnAllCategories(t *testing.T) {
	for _, name := range []string{"YT", "SD", "CA", "HH5", "REC'"} {
		m, g := metaOf(t, name)
		if got := seqbcc.BCC(g).NumBCC(); got != m.NumBCC {
			t.Fatalf("%s: meta #BCC %d != seq %d", name, m.NumBCC, got)
		}
	}
}

func TestRoadDiameterClass(t *testing.T) {
	m, _ := metaOf(t, "USA")
	if m.Diam < 100 {
		t.Fatalf("USA diameter %d, want large-diameter class", m.Diam)
	}
}
