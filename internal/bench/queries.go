package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/bccdhttp"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/wire"
)

// QBenchResult is one serving-path mode's measurement: requests/s and
// queries/s under concurrent rebuild churn, request latency percentiles
// from the same run, and allocations per request measured churn-free
// (allocation counters are exact; mixing the churn writer's build
// allocations into them would make the store paths' zeros unreadable).
type QBenchResult struct {
	// Name identifies the mode: store/scalar (CAS-refcount Acquire per
	// query), store/batch (epoch handle + QueryBatch), http/json-scalar
	// (one GET per query — the pre-batch client's path), http/json-batch,
	// http/binary-batch (the wire protocol).
	Name string `json:"name"`
	// Queries is the scalar queries answered during the timed run;
	// Requests is the serving round-trips that carried them (equal for
	// scalar modes, Queries/batch for batch modes).
	Queries  int64 `json:"queries"`
	Requests int64 `json:"requests"`
	// QueriesPerSec is the headline throughput under churn.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// P50/P99 are request latencies (a batch request is one sample).
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	// AllocsPerRequest is measured without churn on a single goroutine.
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// ObsOverheadReport quantifies what the always-on instrumentation costs
// the store hot paths: the same scalar hop and batch measured churn-free
// on one store with recording toggled off and on (SetMetricsEnabled),
// plus the raw price of one histogram record and one sharded counter
// add.
type ObsOverheadReport struct {
	// ScalarOnQPS / ScalarOffQPS: single-goroutine Acquire→query→Release
	// throughput with metrics on (default) and off. The whole hop is
	// ~45ns churn-free, so the one sharded counter add it records (~9ns,
	// the floor for counting an event across goroutines) reads as
	// ~10-15% here; at qbench's store/scalar context throughput the same
	// add is ~2-3%. The <5% acceptance bound binds on the batch path.
	ScalarOnQPS       float64 `json:"scalar_on_qps"`
	ScalarOffQPS      float64 `json:"scalar_off_qps"`
	ScalarOverheadPct float64 `json:"scalar_overhead_pct"`
	// BatchOnQPS / BatchOffQPS: queries/s through a full QueryBatch.
	// With metrics on the whole record is one counter-bank flush (epoch
	// pin + per-op volume + call count on one cacheline) that replaces
	// the two plain stat atomics the off path pays, so the delta is
	// near-zero; batch latency is recorded at the HTTP edge, not here.
	BatchOnQPS       float64 `json:"batch_on_qps"`
	BatchOffQPS      float64 `json:"batch_off_qps"`
	BatchOverheadPct float64 `json:"batch_overhead_pct"`
	// HistogramRecordNs / CounterAddNs: one obs.Histogram.ObserveNs and
	// one obs.Counter.Add, in isolation.
	HistogramRecordNs float64 `json:"histogram_record_ns"`
	CounterAddNs      float64 `json:"counter_add_ns"`
}

// QBenchReport is the qbench section of BENCH_*.json.
type QBenchReport struct {
	Graph     string  `json:"graph"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Readers   int     `json:"readers"`
	BatchSize int     `json:"batch_size"`
	ModeSecs  float64 `json:"mode_secs"`
	// Rebuilds is the total rebuild-churn count across all modes; every
	// rebuild retires a snapshot into the epoch domain mid-run.
	Rebuilds int64 `json:"rebuilds"`
	// LiveSnapshotHighWater is the maximum of the store's live-snapshot
	// gauge observed by a 2ms sampler across the whole run — how deep
	// the epoch-deferred reclamation ever got behind.
	LiveSnapshotHighWater int64 `json:"live_snapshot_high_water"`
	// LiveSnapshotsFinal is the gauge after the run quiesced (steady
	// state is 1: just the current snapshot).
	LiveSnapshotsFinal int64 `json:"live_snapshots_final"`
	// BatchSpeedup is QueriesPerSec(http/binary-batch) over
	// QueriesPerSec(http/json-scalar): what batching + the binary codec
	// buy an HTTP client end to end.
	BatchSpeedup float64        `json:"batch_speedup"`
	Results      []QBenchResult `json:"results"`
	// Obs is the instrumentation-overhead A/B (metrics on vs
	// StoreConfig.DisableMetrics).
	Obs *ObsOverheadReport `json:"obs_overhead,omitempty"`
	// Mutate is the mutation-churn section: classified ApplyBatch
	// latencies vs the rebuild baseline, burst coalescing, and query
	// throughput under a mutation stream (always RMAT-16-8).
	Mutate *MutateReport `json:"mutate,omitempty"`
}

// RunQueryThroughput measures online query throughput through the
// serving stack at five points — store-direct scalar and batch, and
// HTTP scalar-JSON, batch-JSON, batch-binary through the production
// bccd handler — each under concurrent rebuild churn, demonstrating
// that queries never block recomputation and quantifying what the
// epoch/batch/wire path buys. batch is the queries per batch request
// (<= 0 selects 256).
func RunQueryThroughput(sc Scale, batch int, out io.Writer) *QBenchReport {
	if batch <= 0 {
		batch = 256
	}
	scale := pick(sc, 14, 16, 18)
	g := gen.RMAT(scale, 8, 0xBC)
	store := fastbcc.NewStore(0)
	defer store.Close()
	if snap, err := store.Load(context.Background(), "bench", g, nil); err != nil {
		fmt.Fprintf(out, "qbench: %v\n", err)
		return nil
	} else {
		snap.Release()
	}
	srv := httptest.NewServer(bccdhttp.NewHandler(store, bccdhttp.Config{}))
	defer srv.Close()

	readers := min(runtime.GOMAXPROCS(0), 8)
	rep := &QBenchReport{
		Graph:     fmt.Sprintf("RMAT-%d-8", scale),
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		Readers:   readers,
		BatchSize: batch,
		ModeSecs:  float64(pick(sc, 1, 2, 3)),
	}
	fmt.Fprintf(out, "# qbench: %s n=%d m=%d, %d readers, batch=%d, concurrent rebuilds\n",
		rep.Graph, rep.N, rep.M, readers, batch)

	// The shared query stream: mixed ops, fixed endpoints, so every mode
	// answers the same workload.
	n := int32(g.NumVertices())
	const qn = 1 << 12
	qs := make([]fastbcc.Query, qn)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() int32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int32(rng % uint64(n))
	}
	for i := range qs {
		qs[i] = fastbcc.Query{Op: fastbcc.OpConnected + fastbcc.QueryOp(i%6), U: next(), V: next(), X: next()}
	}
	// Pre-encoded request bodies and URLs, so the client side of the
	// HTTP modes is I/O, not encoding.
	nChunks := qn / batch
	binFrames := make([][]byte, nChunks)
	jsonBodies := make([][]byte, nChunks)
	for c := 0; c < nChunks; c++ {
		chunk := qs[c*batch : (c+1)*batch]
		binFrames[c] = wire.AppendRequest(nil, chunk)
		var b bytes.Buffer
		b.WriteString(`{"queries":[`)
		for i, q := range chunk {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"op":%q,"u":%d,"v":%d,"x":%d}`, q.Op, q.U, q.V, q.X)
		}
		b.WriteString(`]}`)
		jsonBodies[c] = b.Bytes()
	}
	scalarURLs := make([]string, qn)
	for i, q := range qs {
		u := fmt.Sprintf("%s/v1/graphs/bench/query/%s?u=%d&v=%d", srv.URL, q.Op, q.U, q.V)
		if q.Op == fastbcc.OpSeparates {
			u += fmt.Sprintf("&x=%d", q.X)
		}
		scalarURLs[i] = u
	}

	// Run-wide samplers: rebuild churn is started per timed mode; the
	// live-snapshot sampler watches the entire run.
	var highWater atomic.Int64
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tick.C:
				if live := store.Stats().LiveSnapshots; live > highWater.Load() {
					highWater.Store(live)
				}
			}
		}
	}()

	churn := func(stop chan struct{}) *sync.WaitGroup {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := uint64(1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				if s, err := store.Rebuild(context.Background(), "bench", &fastbcc.Options{Seed: seed}); err == nil {
					s.Release()
					rep.Rebuilds++
				}
			}
		}()
		return &wg
	}

	// runMode: readers goroutines each looping op(reader, i) until the
	// deadline, with rebuild churn behind them; latencies are sampled
	// per request. op returns the scalar queries its request answered.
	dur := time.Duration(rep.ModeSecs * float64(time.Second))
	runMode := func(name string, op func(r, i int) int) QBenchResult {
		stop := make(chan struct{})
		churnWG := churn(stop)
		samplesPer := 1 << 16
		lats := make([][]int64, readers)
		for r := range lats {
			lats[r] = make([]int64, 0, samplesPer)
		}
		var queries, requests atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		deadline := t0.Add(dur)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				q, reqs := int64(0), int64(0)
				for i := r; time.Now().Before(deadline); i++ {
					s0 := time.Now()
					q += int64(op(r, i))
					if len(lats[r]) < samplesPer {
						lats[r] = append(lats[r], time.Since(s0).Nanoseconds())
					}
					reqs++
				}
				queries.Add(q)
				requests.Add(reqs)
			}(r)
		}
		wg.Wait()
		el := time.Since(t0)
		close(stop)
		churnWG.Wait()

		all := lats[0]
		for _, l := range lats[1:] {
			all = append(all, l...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pct := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			return float64(all[min(int(p*float64(len(all))), len(all)-1)]) / 1e3
		}
		// Allocations per request, churn-free and single-threaded:
		// counters are exact, so this is the regression-guard number.
		allocs := testing.AllocsPerRun(50, func() { op(0, 0) })
		res := QBenchResult{
			Name:             name,
			Queries:          queries.Load(),
			Requests:         requests.Load(),
			QueriesPerSec:    float64(queries.Load()) / el.Seconds(),
			P50Micros:        pct(0.50),
			P99Micros:        pct(0.99),
			AllocsPerRequest: allocs,
		}
		fmt.Fprintf(out, "%-18s %10.3f M queries/s   p50 %8.1fµs  p99 %8.1fµs   %6.1f allocs/req\n",
			name, res.QueriesPerSec/1e6, res.P50Micros, res.P99Micros, res.AllocsPerRequest)
		rep.Results = append(rep.Results, res)
		return res
	}

	ctx := context.Background()

	// store/scalar: the pre-epoch serving hop — CAS retain, one query,
	// CAS release — once per query.
	runMode("store/scalar", func(r, i int) int {
		snap, err := store.Acquire("bench")
		if err != nil {
			return 0
		}
		q := &qs[i&(qn-1)]
		switch q.Op {
		case fastbcc.OpConnected:
			snap.Index.Connected(q.U, q.V)
		case fastbcc.OpBiconnected:
			snap.Index.Biconnected(q.U, q.V)
		case fastbcc.OpTwoEdgeConnected:
			snap.Index.TwoEdgeConnected(q.U, q.V)
		case fastbcc.OpSeparates:
			snap.Index.Separates(q.X, q.U, q.V)
		case fastbcc.OpCutsOnPath:
			snap.Index.NumCutsOnPath(q.U, q.V)
		case fastbcc.OpBridgesOnPath:
			snap.Index.NumBridgesOnPath(q.U, q.V)
		}
		snap.Release()
		return 1
	})

	// store/batch: one epoch pin + batch execution per request.
	handles := make([]*fastbcc.Handle, readers)
	dsts := make([][]fastbcc.Answer, readers)
	for r := range handles {
		handles[r] = store.NewHandle()
		dsts[r] = make([]fastbcc.Answer, 0, batch)
	}
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	runMode("store/batch", func(r, i int) int {
		c := i % nChunks
		out, _, err := store.QueryBatch(ctx, handles[r], "bench", qs[c*batch:(c+1)*batch], dsts[r])
		if err != nil {
			return 0
		}
		dsts[r] = out
		return batch
	})

	// The HTTP modes drive the production handler end to end.
	clients := make([]*http.Client, readers)
	for r := range clients {
		clients[r] = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	defer func() {
		for _, c := range clients {
			c.CloseIdleConnections()
		}
	}()
	discard := make([]byte, 1<<12)
	drain := func(resp *http.Response) {
		for {
			if _, err := resp.Body.Read(discard); err != nil {
				break
			}
		}
		resp.Body.Close()
	}
	jsonScalar := runMode("http/json-scalar", func(r, i int) int {
		resp, err := clients[r].Get(scalarURLs[i&(qn-1)])
		if err != nil {
			return 0
		}
		drain(resp)
		return 1
	})
	batchURL := srv.URL + "/v1/graphs/bench/query/batch"
	runMode("http/json-batch", func(r, i int) int {
		resp, err := clients[r].Post(batchURL, "application/json", bytes.NewReader(jsonBodies[i%nChunks]))
		if err != nil {
			return 0
		}
		drain(resp)
		return batch
	})
	binDsts := make([][]fastbcc.Answer, readers)
	binBatch := runMode("http/binary-batch", func(r, i int) int {
		resp, err := clients[r].Post(batchURL, wire.ContentType, bytes.NewReader(binFrames[i%nChunks]))
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		as, _, err := wire.ReadResponse(resp.Body, binDsts[r])
		if err != nil {
			return 0
		}
		binDsts[r] = as
		return batch
	})

	close(sampleStop)
	sampleWG.Wait()
	rep.LiveSnapshotHighWater = highWater.Load()
	rep.LiveSnapshotsFinal = store.Stats().LiveSnapshots
	if jsonScalar.QueriesPerSec > 0 {
		rep.BatchSpeedup = binBatch.QueriesPerSec / jsonScalar.QueriesPerSec
	}
	fmt.Fprintf(out, "# binary batch vs scalar JSON: %.1fx queries/s; %d rebuilds behind the readers; live snapshots peak %d, final %d\n",
		rep.BatchSpeedup, rep.Rebuilds, rep.LiveSnapshotHighWater, rep.LiveSnapshotsFinal)

	rep.Obs = measureObsOverhead(g, qs, batch, out)
	rep.Mutate = RunMutationChurn(out)
	return rep
}

// measureObsOverhead runs the instrumentation A/B: the store-direct
// scalar hop and batch, churn-free on one goroutine, with recording
// toggled on and off via Store.SetMetricsEnabled on ONE store instance.
// One instance matters: two separately built stores differ in index and
// heap layout, and a null experiment (both arms metrics-off, two
// instances) shows that layout luck alone moves the measured ratio by
// a few percent — more than the ~100ns-per-batch delta under test. Also
// prices one histogram record and one counter add in isolation.
func measureObsOverhead(g *fastbcc.Graph, qs []fastbcc.Query, batch int, out io.Writer) *ObsOverheadReport {
	ctx := context.Background()
	pct := func(on, off float64) float64 {
		if off <= 0 {
			return 0
		}
		return (on - off) / off * 100
	}

	// One store, both arms; the toggle is the only difference.
	st := fastbcc.NewStore(0)
	defer st.Close()
	snap, err := st.Load(ctx, "ab", g, nil)
	if err != nil {
		return nil
	}
	snap.Release()

	// abNs times `rounds` interleaved on/off burst pairs (the toggle
	// flips around each burst; the arm order alternates round to round;
	// 2 warmup rounds) and returns the arms' per-op costs. The off floor
	// (minimum across rounds) anchors absolute throughput; the on arm is
	// that floor scaled by the median per-round on/off ratio. The two
	// arms of one round run back to back under the same frequency and
	// scheduler regime, so their ratio is invariant to the
	// multi-millisecond CPU-speed swings of a shared container — swings
	// that make independently taken minima (or 1s-scale benchmark runs)
	// lie by more than the delta being measured.
	abNs := func(burst func(), opsPerBurst, rounds int) (onNs, offNs float64) {
		arm := func(on bool) time.Duration {
			st.SetMetricsEnabled(on)
			t0 := time.Now()
			burst()
			return time.Since(t0)
		}
		offFloor := math.Inf(1)
		ratios := make([]float64, 0, rounds)
		for r := 0; r < rounds+2; r++ {
			var dOn, dOff time.Duration
			if r&1 == 0 {
				dOn = arm(true)
				dOff = arm(false)
			} else {
				dOff = arm(false)
				dOn = arm(true)
			}
			if r < 2 || dOff <= 0 {
				continue
			}
			offFloor = math.Min(offFloor, float64(dOff.Nanoseconds())/float64(opsPerBurst))
			ratios = append(ratios, float64(dOn.Nanoseconds())/float64(dOff.Nanoseconds()))
		}
		st.SetMetricsEnabled(true)
		if len(ratios) == 0 || math.IsInf(offFloor, 1) {
			return 0, 0
		}
		sort.Float64s(ratios)
		return offFloor * ratios[len(ratios)/2], offFloor
	}

	scalarBurst := func() func() {
		i := 0
		return func() {
			for k := 0; k < 1<<14; k++ {
				s, err := st.Acquire("ab")
				if err != nil {
					return
				}
				q := &qs[i&(len(qs)-1)]
				s.Index.Connected(q.U, q.V)
				s.Release()
				i++
			}
		}
	}
	nChunks := len(qs) / batch
	batchBurst := func() (func(), func()) {
		h := st.NewHandle()
		dst := make([]fastbcc.Answer, 0, batch)
		i := 0
		return func() {
			for k := 0; k < 512; k++ {
				c := i % nChunks
				out, _, err := st.QueryBatch(ctx, h, "ab", qs[c*batch:(c+1)*batch], dst)
				if err != nil {
					return
				}
				dst = out
				i++
			}
		}, h.Close
	}

	o := &ObsOverheadReport{}
	scalarOn, scalarOff := abNs(scalarBurst(), 1<<14, 50)
	bBurst, bClose := batchBurst()
	batchOn, batchOff := abNs(bBurst, 512, 50)
	bClose()
	if scalarOn > 0 && scalarOff > 0 {
		o.ScalarOnQPS = 1e9 / scalarOn
		o.ScalarOffQPS = 1e9 / scalarOff
		o.ScalarOverheadPct = pct(scalarOn, scalarOff)
	}
	if batchOn > 0 && batchOff > 0 {
		o.BatchOnQPS = float64(batch) * 1e9 / batchOn
		o.BatchOffQPS = float64(batch) * 1e9 / batchOff
		o.BatchOverheadPct = pct(batchOn, batchOff)
	}

	microNs := func(f func(i int)) float64 {
		best := math.Inf(1)
		for r := 0; r < 12; r++ {
			t0 := time.Now()
			for i := 0; i < 1<<16; i++ {
				f(i)
			}
			d := float64(time.Since(t0).Nanoseconds()) / float64(1<<16)
			if r >= 2 {
				best = math.Min(best, d)
			}
		}
		return best
	}
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_ab_seconds", "instrumentation self-benchmark")
	c := reg.Counter("bench_ab_total", "instrumentation self-benchmark")
	o.HistogramRecordNs = microNs(func(i int) { h.ObserveNs(int64(i)<<8 + 1) })
	o.CounterAddNs = microNs(func(i int) { c.Add(1) })

	fmt.Fprintf(out, "# obs overhead: scalar %+.1f%% (%.2fM vs %.2fM q/s), batch %+.1f%% (%.1fM vs %.1fM q/s); histogram record %.1fns, counter add %.1fns\n",
		o.ScalarOverheadPct, o.ScalarOnQPS/1e6, o.ScalarOffQPS/1e6,
		o.BatchOverheadPct, o.BatchOnQPS/1e6, o.BatchOffQPS/1e6,
		o.HistogramRecordNs, o.CounterAddNs)
	return o
}
