package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	fastbcc "repro"
	"repro/internal/gen"
)

// RunQueryThroughput measures online query throughput through the full
// serving path (Store snapshot acquire → Index query → release), the
// workload cmd/bccd puts on the subsystem: GOMAXPROCS reader goroutines
// fire mixed queries against one snapshot while a writer rebuilds it in
// the background, demonstrating that queries never block recomputation.
func RunQueryThroughput(sc Scale, out io.Writer) {
	scale := pick(sc, 14, 16, 18)
	g := gen.RMAT(scale, 8, 0xBC)
	store := fastbcc.NewStore(0)
	defer store.Close()
	snap, err := store.Load(context.Background(), "bench", g, nil)
	if err != nil {
		fmt.Fprintf(out, "qbench: %v\n", err)
		return
	}
	snap.Release()

	readers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(out, "# query throughput: RMAT-%d-8 n=%d m=%d, %d reader goroutines, concurrent rebuilds\n",
		scale, g.NumVertices(), g.NumEdges(), readers)

	const opsPerReader = 1 << 19
	run := func(name string, q func(idx *fastbcc.Index, u, v, x int32) bool) {
		stop := make(chan struct{})
		var rebuilds atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // background writer: the serving pattern under churn
			defer wg.Done()
			for seed := uint64(1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				if s, err := store.Rebuild(context.Background(), "bench", &fastbcc.Options{Seed: seed}); err == nil {
					s.Release()
					rebuilds.Add(1)
				}
			}
		}()
		var hits atomic.Int64
		t0 := time.Now()
		var rg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rg.Add(1)
			go func(seed uint64) {
				defer rg.Done()
				rng := seed*0x9E3779B97F4A7C15 + 1
				next := func(n int32) int32 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return int32(rng % uint64(n))
				}
				n := int32(g.NumVertices())
				h := int64(0)
				for i := 0; i < opsPerReader; i++ {
					snap, err := store.Acquire("bench")
					if err != nil {
						break
					}
					if q(snap.Index, next(n), next(n), next(n)) {
						h++
					}
					snap.Release()
				}
				hits.Add(h)
			}(uint64(r + 1))
		}
		rg.Wait()
		el := time.Since(t0)
		close(stop)
		wg.Wait()
		qps := float64(opsPerReader*readers) / el.Seconds()
		fmt.Fprintf(out, "%-18s %10.2f M queries/s   (%d rebuilds behind the readers, %d hits)\n",
			name, qps/1e6, rebuilds.Load(), hits.Load())
	}

	run("connected", func(idx *fastbcc.Index, u, v, _ int32) bool { return idx.Connected(u, v) })
	run("biconnected", func(idx *fastbcc.Index, u, v, _ int32) bool { return idx.Biconnected(u, v) })
	run("twoecc", func(idx *fastbcc.Index, u, v, _ int32) bool { return idx.TwoEdgeConnected(u, v) })
	run("separates", func(idx *fastbcc.Index, u, v, x int32) bool { return idx.Separates(x, u, v) })
	run("cuts-on-path", func(idx *fastbcc.Index, u, v, _ int32) bool { return idx.NumCutsOnPath(u, v) > 0 })
	run("bridges-on-path", func(idx *fastbcc.Index, u, v, _ int32) bool { return idx.NumBridgesOnPath(u, v) > 0 })
}
