package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// MicroResult is one micro-benchmark measurement, mirroring the columns of
// `go test -bench -benchmem`.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroReport is the checked-in BENCH_*.json schema: the hot-path
// micro-benchmarks of the current tree, optionally next to recorded
// baseline numbers from an earlier tree for before/after comparison.
type MicroReport struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Note       string        `json:"note,omitempty"`
	Results    []MicroResult `json:"results"`
	Baseline   []MicroResult `json:"baseline,omitempty"`
}

// RunMicro measures the hot paths the execution substrate optimizes: CSR
// construction (fresh and arena-backed) and repeated full BCC runs (fresh
// and arena-backed). Workloads intentionally match the checked-in Go
// benchmarks (BenchmarkFromEdges, BenchmarkBCC*) so `go test -bench`
// numbers and BENCH_*.json entries are directly comparable.
func RunMicro() *MicroReport {
	rep := &MicroReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, MicroResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// Same workload as BenchmarkFromEdges.
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	edges := make([]graph.Edge, 1<<20)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))}
	}
	add("FromEdges/n=262144,m=1048576", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.MustFromEdges(n, edges)
		}
	})
	sc := graph.NewScratch()
	add("FromEdgesScratch/n=262144,m=1048576", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.FromEdgesScratch(n, edges, sc); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Same workload as BenchmarkBCC / BenchmarkBCCScratch.
	g := gen.RMAT(16, 8, 0xBC)
	add("BCC/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BCC(g, core.Options{Seed: 7})
		}
	})
	sc2 := graph.NewScratch()
	core.BCC(g, core.Options{Seed: 7, Scratch: sc2}) // warm the arena
	add("BCCScratch/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BCC(g, core.Options{Seed: 7, Scratch: sc2})
		}
	})
	return rep
}

// WriteJSON writes the report to path, indented for diff-friendliness.
func (r *MicroReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
