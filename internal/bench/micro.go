package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	fastbcc "repro"
	"repro/internal/bctree"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// MicroResult is one micro-benchmark measurement, mirroring the columns of
// `go test -bench -benchmem`.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroReport is the checked-in BENCH_*.json schema: the hot-path
// micro-benchmarks of the current tree, optionally next to recorded
// baseline numbers from an earlier tree for before/after comparison.
type MicroReport struct {
	Timestamp  string        `json:"timestamp"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Note       string        `json:"note,omitempty"`
	Results    []MicroResult `json:"results"`
	Baseline   []MicroResult `json:"baseline,omitempty"`
	// QBench is the serving-path throughput section (bccbench -qbench
	// combined with -micro): batched and scalar query modes under
	// rebuild churn, with latency percentiles and reclamation gauges.
	QBench *QBenchReport `json:"qbench,omitempty"`
}

// RunMicro measures the hot paths the execution substrate optimizes: CSR
// construction (fresh and arena-backed) and repeated full BCC runs (fresh
// and arena-backed), plus one construction row per registered BCC engine
// (the algorithm-registry matrix; engineNames selects a subset, nil = all
// registered). Workloads intentionally match the checked-in Go benchmarks
// (BenchmarkFromEdges, BenchmarkBCC*) so `go test -bench` numbers and
// BENCH_*.json entries are directly comparable.
func RunMicro(engineNames []string) (*MicroReport, error) {
	// Resolve the engine subset up front so a typo fails fast instead of
	// after the expensive construction rows have already run.
	if engineNames == nil {
		engineNames = engine.Names()
	}
	engines := make([]engine.Algorithm, len(engineNames))
	for i, name := range engineNames {
		a, err := engine.Get(name)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		engines[i] = a
	}
	rep := &MicroReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		rep.Results = append(rep.Results, MicroResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// Same workload as BenchmarkFromEdges.
	rng := rand.New(rand.NewSource(1))
	n := 1 << 18
	edges := make([]graph.Edge, 1<<20)
	for i := range edges {
		edges[i] = graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))}
	}
	add("FromEdges/n=262144,m=1048576", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.MustFromEdges(n, edges)
		}
	})
	sc := graph.NewScratch()
	add("FromEdgesScratch/n=262144,m=1048576", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := graph.FromEdgesScratch(n, edges, sc); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Same workload as BenchmarkBCC / BenchmarkBCCScratch.
	g := gen.RMAT(16, 8, 0xBC)
	add("BCC/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BCC(g, core.Options{Seed: 7})
		}
	})
	sc2 := graph.NewScratch()
	core.BCC(g, core.Options{Seed: 7, Scratch: sc2}) // warm the arena
	add("BCCScratch/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.BCC(g, core.Options{Seed: 7, Scratch: sc2})
		}
	})

	// Per-engine construction on the same instance: the registry matrix.
	// "fast" duplicates the BCC row by design — it pins the registry
	// dispatch to the direct-path number.
	for _, a := range engines {
		a := a
		add("Engine/"+a.Name()+"/RMAT-16-8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(g, engine.RunOptions{Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The serving path: query-index construction and per-query costs over
	// the same instance. Query endpoints are pre-drawn so the measured op
	// is the query alone; Sink defeats dead-code elimination.
	res := core.BCC(g, core.Options{Seed: 7})
	add("IndexBuild/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bctree.New(g, res)
		}
	})
	idx := bctree.New(g, res)
	nv := g.NumVertices()
	const qn = 1 << 12
	qu := make([]int32, qn)
	qv := make([]int32, qn)
	qx := make([]int32, qn)
	for i := 0; i < qn; i++ {
		qu[i] = int32(rng.Intn(nv))
		qv[i] = int32(rng.Intn(nv))
		qx[i] = int32(rng.Intn(nv))
	}
	query := func(name string, f func(j int) bool) {
		add("Query/"+name+"/RMAT-16-8", func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				if f(i & (qn - 1)) {
					s++
				}
			}
			Sink += s
		})
	}
	query("Connected", func(j int) bool { return idx.Connected(qu[j], qv[j]) })
	query("Biconnected", func(j int) bool { return idx.Biconnected(qu[j], qv[j]) })
	query("TwoEdgeConnected", func(j int) bool { return idx.TwoEdgeConnected(qu[j], qv[j]) })
	query("Separates", func(j int) bool { return idx.Separates(qx[j], qu[j], qv[j]) })
	query("NumCutsOnPath", func(j int) bool { return idx.NumCutsOnPath(qu[j], qv[j]) > 0 })
	query("NumBridgesOnPath", func(j int) bool { return idx.NumBridgesOnPath(qu[j], qv[j]) > 0 })

	// One full serving hop: snapshot acquire + a mixed query + release,
	// through the Store (the path cmd/bccd sits on).
	st := fastbcc.NewStore(0)
	if snap, err := st.Load(context.Background(), "bench", g, &fastbcc.Options{Seed: 7}); err == nil {
		snap.Release()
	}
	add("Store/AcquireQueryRelease/RMAT-16-8", func(b *testing.B) {
		b.ReportAllocs()
		s := 0
		for i := 0; i < b.N; i++ {
			snap, err := st.Acquire("bench")
			if err != nil {
				b.Fatal(err)
			}
			j := i & (qn - 1)
			if snap.Index.Separates(qx[j], qu[j], qv[j]) {
				s++
			}
			snap.Release()
		}
		Sink += s
	})
	st.Close()

	// Durability (see durable.go): SnapshotSave is one synchronous
	// persist of the serving snapshot — encode, checksummed write, fsync,
	// rename, journal truncation; SnapshotLoad is the full restart path —
	// a fresh store recovering the graph from the mapped snapshot. The
	// pair quantifies the mmap-load-vs-rebuild gap next to the BCC rows
	// above.
	if dir, err := os.MkdirTemp("", "fastbcc-bench-*"); err == nil {
		defer os.RemoveAll(dir)
		std := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{DataDir: dir})
		if snap, err := std.Load(context.Background(), "bench", g, &fastbcc.Options{Seed: 7}); err == nil {
			snap.Release()
			add("Persist/SnapshotSave/RMAT-16-8", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := std.Persist("bench"); err != nil {
						b.Fatal(err)
					}
				}
			})
			add("Persist/SnapshotLoad/RMAT-16-8", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sr := fastbcc.NewStoreWithConfig(fastbcc.StoreConfig{DataDir: dir})
					rec, err := sr.Recover(context.Background())
					if err != nil || len(rec.Graphs) != 1 {
						b.Fatalf("recover: %v, %+v", err, rec)
					}
					sr.Close()
				}
			})
		}
		std.Close()
	}
	return rep, nil
}

// Sink keeps query results observable so benchmarked calls cannot be
// optimized away.
var Sink int

// WriteJSON writes the report to path, indented for diff-friendliness.
func (r *MicroReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
