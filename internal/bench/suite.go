// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. 6) at laptop scale.
//
// The paper's 27 graphs (Tab. 2) are mapped to deterministic generator
// instances that preserve each graph's *category*: edge distribution
// (power-law vs. mesh vs. chain), diameter class, and edge/vertex ratio.
// Absolute sizes are scaled down (the originals reach 226B edges); the
// claims under reproduction are relative — who wins on which category, and
// by roughly what factor.
package bench

import (
	"repro/internal/gen"
	"repro/internal/graph"
)

// Scale selects instance sizes.
type Scale int

const (
	// Small runs in seconds; used by the checked-in Go benchmarks and CI.
	Small Scale = iota
	// Medium is the default for cmd/bccbench (minutes for the full suite).
	Medium
	// Large approaches memory limits of a laptop; use selectively.
	Large
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) Scale {
	switch s {
	case "medium":
		return Medium
	case "large":
		return Large
	default:
		return Small
	}
}

// Instance is one benchmark graph.
type Instance struct {
	// Name matches the paper's abbreviation (YT, OK, ..., Chn8).
	Name string
	// Category is one of Social, Web, Road, k-NN, Synthetic.
	Category string
	// Paper describes the original graph this instance stands in for.
	Paper string
	// SMSupported mirrors Tab. 2's "n = no support": SM'14 runs only on
	// connected graphs; the paper reports it on these instances.
	SMSupported bool
	// Build constructs the graph at the given scale.
	Build func(sc Scale) *graph.Graph
}

// pick returns a, b, or c depending on scale.
func pick(sc Scale, a, b, c int) int {
	switch sc {
	case Medium:
		return b
	case Large:
		return c
	default:
		return a
	}
}

// Suite returns the 27 instances of Tab. 2 in the paper's order.
func Suite() []Instance {
	return []Instance{
		// ---- Social: power-law, low diameter -------------------------------
		{"YT", "Social", "com-youtube", true, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 5, 0xA1)
		}},
		{"OK", "Social", "com-orkut", true, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 11, 14, 16), 38, 0xA2)
		}},
		{"LJ", "Social", "soc-LiveJournal1", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 9, 0xA3)
		}},
		{"TW", "Social", "Twitter", true, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 11, 14, 16), 29, 0xA4)
		}},
		{"FT", "Social", "Friendster", true, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 27, 0xA5)
		}},
		// ---- Web: power-law, slightly deeper -------------------------------
		{"GG", "Web", "web-Google", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 5, 0xB1)
		}},
		{"SD", "Web", "sd_arc", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 11, 14, 16), 22, 0xB2)
		}},
		{"CW", "Web", "ClueWeb", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 11, 14, 16), 38, 0xB3)
		}},
		{"HL14", "Web", "Hyperlink14", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 36, 0xB4)
		}},
		{"HL12", "Web", "Hyperlink12", false, func(sc Scale) *graph.Graph {
			return gen.RMAT(pick(sc, 12, 15, 17), 32, 0xB5)
		}},
		// ---- Road: mesh-like, low degree, large diameter --------------------
		{"CA", "Road", "roadnet-CA", false, func(sc Scale) *graph.Graph {
			d := pick(sc, 64, 350, 700)
			return gen.RoadLike(d, d, 0.15, 0xC1)
		}},
		{"USA", "Road", "RoadUSA", true, func(sc Scale) *graph.Graph {
			return gen.RoadLike(pick(sc, 160, 1200, 2400), pick(sc, 32, 200, 400), 0.1, 0xC2)
		}},
		{"GE", "Road", "Germany", true, func(sc Scale) *graph.Graph {
			return gen.RoadLike(pick(sc, 96, 600, 1200), pick(sc, 48, 300, 600), 0.12, 0xC3)
		}},
		// ---- k-NN: geometric, moderate-to-large diameter --------------------
		{"HH5", "k-NN", "Household, k=5", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 4000, 120000, 500000), 5, 0xD1)
		}},
		{"CH5", "k-NN", "CHEM, k=5", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 5000, 150000, 600000), 5, 0xD2)
		}},
		{"GL2", "k-NN", "GeoLife, k=2", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 6000, 200000, 800000), 2, 0xD3)
		}},
		{"GL5", "k-NN", "GeoLife, k=5", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 6000, 200000, 800000), 5, 0xD3)
		}},
		{"GL10", "k-NN", "GeoLife, k=10", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 6000, 200000, 800000), 10, 0xD3)
		}},
		{"GL15", "k-NN", "GeoLife, k=15", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 6000, 200000, 800000), 15, 0xD3)
		}},
		{"GL20", "k-NN", "GeoLife, k=20", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 6000, 200000, 800000), 20, 0xD3)
		}},
		{"COS5", "k-NN", "Cosmo50, k=5", false, func(sc Scale) *graph.Graph {
			return gen.KNN(pick(sc, 8000, 300000, 1200000), 5, 0xD4)
		}},
		// ---- Synthetic: grids and chains, exactly as in Sec. 6 --------------
		{"SQR", "Synthetic", "2D grid 10^4×10^4 (circular)", true, func(sc Scale) *graph.Graph {
			d := pick(sc, 80, 500, 1000)
			return gen.Grid2D(d, d, true)
		}},
		{"REC", "Synthetic", "2D grid 10^3×10^5 (circular)", true, func(sc Scale) *graph.Graph {
			return gen.Grid2D(pick(sc, 20, 100, 200), pick(sc, 320, 2500, 5000), true)
		}},
		{"SQR'", "Synthetic", "sampled SQR (p=0.6)", false, func(sc Scale) *graph.Graph {
			d := pick(sc, 80, 500, 1000)
			return gen.SampledGrid(d, d, 0.6, 0xE1)
		}},
		{"REC'", "Synthetic", "sampled REC (p=0.6)", false, func(sc Scale) *graph.Graph {
			return gen.SampledGrid(pick(sc, 20, 100, 200), pick(sc, 320, 2500, 5000), 0.6, 0xE2)
		}},
		{"Chn7", "Synthetic", "chain of 10^7", true, func(sc Scale) *graph.Graph {
			return gen.Chain(pick(sc, 30000, 1000000, 4000000))
		}},
		{"Chn8", "Synthetic", "chain of 10^8", true, func(sc Scale) *graph.Graph {
			return gen.Chain(pick(sc, 100000, 3000000, 10000000))
		}},
	}
}

// ByName returns the instance with the given name, or false.
func ByName(name string) (Instance, bool) {
	for _, ins := range Suite() {
		if ins.Name == name {
			return ins, true
		}
	}
	return Instance{}, false
}

// Categories in the paper's order.
func Categories() []string {
	return []string{"Social", "Web", "Road", "k-NN", "Synthetic"}
}
