package uf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestUFBasic(t *testing.T) {
	u := New(5)
	if u.Len() != 5 {
		t.Fatal("len wrong")
	}
	if !u.Union(0, 1) {
		t.Fatal("first union must merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union must not merge")
	}
	if !u.SameSet(0, 1) || u.SameSet(0, 2) {
		t.Fatal("membership wrong")
	}
	if !u.Union(2, 3) || !u.Union(0, 3) {
		t.Fatal("unions failed")
	}
	if !u.SameSet(1, 2) {
		t.Fatal("transitive membership broken")
	}
	if u.SameSet(4, 0) {
		t.Fatal("4 should be alone")
	}
}

func TestUFMatchesSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	u, s := New(n), NewSeq(n)
	for i := 0; i < 3000; i++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		gotU := u.Union(x, y)
		gotS := s.Union(x, y)
		if gotU != gotS {
			t.Fatalf("union(%d,%d): concurrent=%v seq=%v", x, y, gotU, gotS)
		}
	}
	for i := 0; i < 2000; i++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("sameset(%d,%d) disagree", x, y)
		}
	}
}

func TestUFConcurrentChainMerge(t *testing.T) {
	// Union i with i+1 for all i concurrently: exactly n-1 successful
	// unions, and everything ends in one set.
	n := 100000
	u := New(n)
	var succ = make([]bool, n-1)
	parallel.For(n-1, func(i int) {
		succ[i] = u.Union(int32(i), int32(i+1))
	})
	count := 0
	for _, b := range succ {
		if b {
			count++
		}
	}
	if count != n-1 {
		t.Fatalf("successful unions = %d, want %d", count, n-1)
	}
	root := u.Find(0)
	for i := 1; i < n; i += 997 {
		if u.Find(int32(i)) != root {
			t.Fatalf("element %d not merged", i)
		}
	}
}

func TestUFConcurrentRandomSpanningForestCount(t *testing.T) {
	// Property: number of successful unions == n - (#components), i.e.
	// successful-union edges form a spanning forest.
	rng := rand.New(rand.NewSource(2))
	n := 5000
	m := 20000
	type pair struct{ x, y int32 }
	edges := make([]pair, m)
	for i := range edges {
		edges[i] = pair{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	u := New(n)
	succ := make([]bool, m)
	parallel.For(m, func(i int) {
		succ[i] = u.Union(edges[i].x, edges[i].y)
	})
	// Reference component count.
	s := NewSeq(n)
	for _, e := range edges {
		s.Union(e.x, e.y)
	}
	wantMerges := n - s.NumSets()
	got := 0
	for _, b := range succ {
		if b {
			got++
		}
	}
	if got != wantMerges {
		t.Fatalf("successful unions = %d, want %d", got, wantMerges)
	}
	// And the successful edges alone must reproduce the same partition.
	s2 := NewSeq(n)
	for i, e := range edges {
		if succ[i] {
			s2.Union(e.x, e.y)
		}
	}
	for i := 0; i < 2000; i++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		if s.SameSet(x, y) != s2.SameSet(x, y) {
			t.Fatal("successful-union edges are not a spanning forest")
		}
	}
}

func TestUFFlatten(t *testing.T) {
	u := New(10)
	for i := 0; i < 9; i++ {
		u.Union(int32(i), int32(i+1))
	}
	u.Flatten()
	root := u.parent[0]
	for i := range u.parent {
		if u.parent[i] != root {
			t.Fatalf("flatten left parent[%d] = %d", i, u.parent[i])
		}
	}
}

func TestSeqNumSets(t *testing.T) {
	s := NewSeq(6)
	if s.NumSets() != 6 {
		t.Fatal("initial sets wrong")
	}
	s.Union(0, 1)
	s.Union(2, 3)
	s.Union(0, 3)
	if s.NumSets() != 3 {
		t.Fatalf("sets = %d, want 3", s.NumSets())
	}
	s.Union(1, 2) // already same
	if s.NumSets() != 3 {
		t.Fatal("no-op union changed count")
	}
}

func TestSeqQuickTransitivity(t *testing.T) {
	f := func(ops []uint16) bool {
		n := 64
		s := NewSeq(n)
		for _, op := range ops {
			s.Union(int32(op%uint16(n)), int32((op/uint16(n))%uint16(n)))
		}
		// Transitivity spot check.
		for a := int32(0); a < 8; a++ {
			for b := int32(0); b < 8; b++ {
				for c := int32(0); c < 8; c++ {
					if s.SameSet(a, b) && s.SameSet(b, c) && !s.SameSet(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUFSingleton(t *testing.T) {
	u := New(1)
	if u.Find(0) != 0 {
		t.Fatal("singleton find broken")
	}
	if u.Union(0, 0) {
		t.Fatal("self union must be false")
	}
}
