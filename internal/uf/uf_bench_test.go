package uf

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func benchEdges(n, m int, seed int64) [][2]int32 {
	rng := rand.New(rand.NewSource(seed))
	es := make([][2]int32, m)
	for i := range es {
		es[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	return es
}

func BenchmarkConcurrentUnion(b *testing.B) {
	n, m := 1<<18, 1<<20
	es := benchEdges(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		parallel.ForBlock(m, 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				u.Union(es[j][0], es[j][1])
			}
		})
	}
}

func BenchmarkSeqUnion(b *testing.B) {
	n, m := 1<<18, 1<<20
	es := benchEdges(n, m, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSeq(n)
		for _, e := range es {
			s.Union(e[0], e[1])
		}
	}
}

func BenchmarkFindAfterFlatten(b *testing.B) {
	n := 1 << 18
	u := New(n)
	for i := 0; i < n-1; i++ {
		u.Union(int32(i), int32(i+1))
	}
	u.Flatten()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Find(int32(i & (n - 1)))
	}
}
