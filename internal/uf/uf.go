// Package uf provides union-find (disjoint sets) structures.
//
// UF is a lock-free concurrent union-find in the style of Jayanti, Tarjan,
// and Boix-Adserà ("Randomized concurrent set union and generalized
// wake-up", PODC 2019): finds use path halving with CAS writes, and unions
// link roots with a CAS so that every successful link merges two previously
// disjoint sets. This is the structure the LDD-UF-JTB connectivity
// algorithm of the paper (Thm. 5.1) relies on.
//
// Seq is the classic sequential union-by-size structure used by the
// verifiers and baselines.
package uf

import "sync/atomic"

// UF is a concurrent union-find over elements 0..n-1. All methods are safe
// for concurrent use.
type UF struct {
	parent []int32
}

// New returns a concurrent union-find with n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Wrap returns a concurrent union-find backed by the caller's buffer, which
// must already hold parent[i] == i for every i (callers with a parallel
// iota primitive initialize it themselves to recycle scratch memory). The
// buffer is owned by the UF until the caller is done with all operations.
func Wrap(parent []int32) *UF { return &UF{parent: parent} }

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Find returns the representative of x's set, compressing the path by
// halving. Concurrent finds and unions may run simultaneously.
func (u *UF) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&u.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&u.parent[p])
		if gp == p {
			return p
		}
		// Path halving: splice x to its grandparent. A failed CAS just
		// means someone else already improved the path.
		atomic.CompareAndSwapInt32(&u.parent[x], p, gp)
		x = gp
	}
}

// Union merges the sets of x and y. It returns true iff this call performed
// the link that merged two previously distinct sets — under concurrency,
// exactly one Union call returns true per merged pair of sets, which lets
// callers harvest a spanning forest from the edges whose Union succeeded.
func (u *UF) Union(x, y int32) bool {
	for {
		rx, ry := u.Find(x), u.Find(y)
		if rx == ry {
			return false
		}
		// Deterministic linking order (smaller root under larger) avoids
		// livelock: concurrent links agree on direction.
		if rx > ry {
			rx, ry = ry, rx
		}
		if atomic.CompareAndSwapInt32(&u.parent[rx], rx, ry) {
			return true
		}
	}
}

// SameSet reports whether x and y are currently in the same set. Only
// meaningful once all concurrent unions are complete.
func (u *UF) SameSet(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Flatten fully compresses all paths in parallel-safe single calls so that
// subsequent Finds are O(1). Call after the union phase.
func (u *UF) Flatten() {
	for i := range u.parent {
		u.parent[i] = u.Find(int32(i))
	}
}

// Seq is a sequential union-find with union by size and path compression.
type Seq struct {
	parent []int32
	size   []int32
	sets   int
}

// NewSeq returns a sequential union-find with n singleton sets.
func NewSeq(n int) *Seq {
	s := &Seq{parent: make([]int32, n), size: make([]int32, n), sets: n}
	for i := range s.parent {
		s.parent[i] = int32(i)
		s.size[i] = 1
	}
	return s
}

// Find returns the representative of x's set.
func (s *Seq) Find(x int32) int32 {
	root := x
	for s.parent[root] != root {
		root = s.parent[root]
	}
	for s.parent[x] != root {
		s.parent[x], x = root, s.parent[x]
	}
	return root
}

// Union merges the sets of x and y; returns true if they were distinct.
func (s *Seq) Union(x, y int32) bool {
	rx, ry := s.Find(x), s.Find(y)
	if rx == ry {
		return false
	}
	if s.size[rx] < s.size[ry] {
		rx, ry = ry, rx
	}
	s.parent[ry] = rx
	s.size[rx] += s.size[ry]
	s.sets--
	return true
}

// NumSets returns the current number of disjoint sets.
func (s *Seq) NumSets() int { return s.sets }

// SameSet reports whether x and y are in the same set.
func (s *Seq) SameSet(x, y int32) bool { return s.Find(x) == s.Find(y) }
