// Package tags computes the per-vertex tag arrays of the paper's Tagging
// step (Sec. 4.1): w1/w2 folded over non-tree edges, and low/high obtained
// from 1-D range min/max queries over the Euler-tour-ordered w1/w2 arrays.
// Both FAST-BCC and the faithful Tarjan–Vishkin implementation build on it.
package tags

import (
	"repro/internal/etour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/rmq"
)

// Tags bundles the vertex tags of Alg. 1 together with the edge-type
// predicates derived from them.
type Tags struct {
	// Parent[v] is v's parent in the rooted spanning forest (-1 for roots).
	Parent []int32
	// First/Last are Euler tour first/last appearance positions.
	First, Last []int32
	// Low/High are the range min/max of w1/w2 over each subtree (Sec. 3.2).
	Low, High []int32
}

// Compute derives the tags from a rooted forest. g supplies the non-tree
// edges folded into w1/w2; parallel copies of tree edges are classified as
// tree edges, which provably leaves every fence predicate unchanged.
// Equivalent to ComputeScratch with a nil arena.
func Compute(g *graph.Graph, rt *etour.Rooted) *Tags {
	return ComputeScratch(g, rt, nil)
}

// ComputeScratch is Compute drawing its temporaries — and the returned Low
// and High arrays — from sc (which may be nil). The caller owns the
// arena-backed Low/High; First/Last/Parent alias the Rooted input.
// Equivalent to ComputeIn with a nil execution context.
func ComputeScratch(g *graph.Graph, rt *etour.Rooted, sc *graph.Scratch) *Tags {
	return ComputeIn(nil, g, rt, sc)
}

// ComputeIn is ComputeScratch running on the execution context e (nil =
// the process-global default).
func ComputeIn(e *parallel.Exec, g *graph.Graph, rt *etour.Rooted, sc *graph.Scratch) *Tags {
	n := int(g.N)
	first, last, parent := rt.First, rt.Last, rt.Parent
	w1 := sc.GetInt32(n)
	w2 := sc.GetInt32(n)
	parallel.CopyIn(e, w1, first)
	parallel.CopyIn(e, w2, first)
	e.ForBlock(n, 256, func(lo, hi int) {
		for v := int32(lo); v < int32(hi); v++ {
			for _, w := range g.Neighbors(v) {
				if w == v || parent[w] == v || parent[v] == w {
					continue // self-loop or tree edge
				}
				prim.WriteMin(&w1[v], first[w])
				prim.WriteMax(&w2[v], first[w])
			}
		}
	})
	a1 := sc.GetInt32(len(rt.Tour))
	a2 := sc.GetInt32(len(rt.Tour))
	e.For(len(rt.Tour), func(t int) {
		v := rt.Tour[t]
		a1[t] = w1[v]
		a2[t] = w2[v]
	})
	qmin := rmq.NewMinArena(e, a1, sc)
	qmax := rmq.NewMaxArena(e, a2, sc)
	low := sc.GetInt32(n)
	high := sc.GetInt32(n)
	e.For(n, func(v int) {
		low[v] = qmin.Query(int(first[v]), int(last[v]))
		high[v] = qmax.Query(int(first[v]), int(last[v]))
	})
	// The RMQ structures (and their references into a1/a2) die here; the
	// last queries above have completed, so the tables and buffers can
	// recirculate through the arena.
	qmin.Free(sc)
	qmax.Free(sc)
	sc.PutInt32(w1, w2, a1, a2)
	return &Tags{Parent: parent, First: first, Last: last, Low: low, High: high}
}

// IsTreeEdge reports whether {u,v} parallels a spanning tree edge.
func (t *Tags) IsTreeEdge(u, v int32) bool {
	return t.Parent[v] == u || t.Parent[u] == v
}

// Fence implements Alg. 1 line 11: for a tree edge evaluated as if u were
// the parent of v, it holds iff no edge from v's subtree escapes u's
// subtree. Called with the child in the u position it is always false, so
// Fence(u,v) || Fence(v,u) tests "is a fence edge" without knowing the
// orientation.
func (t *Tags) Fence(u, v int32) bool {
	return t.First[u] <= t.Low[v] && t.Last[u] >= t.High[v]
}

// Back implements Alg. 1 line 13: for a non-tree edge it holds iff u is an
// ancestor of v.
func (t *Tags) Back(u, v int32) bool {
	return t.First[u] <= t.First[v] && t.Last[u] >= t.First[v]
}

// Ancestor reports whether u is an ancestor of v (u == v included), via
// the interval nesting of Euler tour positions.
func (t *Tags) Ancestor(u, v int32) bool {
	return t.First[u] <= t.First[v] && t.Last[u] >= t.Last[v]
}

// InSkeleton implements Alg. 1 line 7: the edge {u,v} of G is in the
// skeleton G' iff it is a plain (non-fence) tree edge or a cross edge.
func (t *Tags) InSkeleton(u, v int32) bool {
	if t.IsTreeEdge(u, v) {
		return !t.Fence(u, v) && !t.Fence(v, u)
	}
	return !t.Back(u, v) && !t.Back(v, u)
}
