package tags

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/conn"
	"repro/internal/etour"
	"repro/internal/gen"
	"repro/internal/graph"
)

// computeTags runs First-CC + Rooting + Tagging on g.
func computeTags(g *graph.Graph, seed uint64) *Tags {
	cc := conn.Connectivity(g, conn.Options{Seed: seed, WantForest: true})
	rt := etour.Root(g.NumVertices(), cc.Forest, cc.Comp)
	return Compute(g, rt)
}

// refLowHigh computes low/high by brute force: for every vertex, scan its
// whole subtree and all incident non-tree edges.
func refLowHigh(g *graph.Graph, t *Tags) (low, high []int32) {
	n := g.NumVertices()
	low = make([]int32, n)
	high = make([]int32, n)
	// children lists
	children := make([][]int32, n)
	for v := 0; v < n; v++ {
		if p := t.Parent[v]; p != -1 {
			children[p] = append(children[p], int32(v))
		}
	}
	var dfs func(v int32) (int32, int32)
	dfs = func(v int32) (int32, int32) {
		lo, hi := t.First[v], t.First[v]
		for _, w := range g.Neighbors(v) {
			if w == v || t.Parent[w] == v || t.Parent[v] == w {
				continue
			}
			if t.First[w] < lo {
				lo = t.First[w]
			}
			if t.First[w] > hi {
				hi = t.First[w]
			}
		}
		for _, c := range children[v] {
			cl, ch := dfs(c)
			if cl < lo {
				lo = cl
			}
			if ch > hi {
				hi = ch
			}
		}
		low[v], high[v] = lo, hi
		return lo, hi
	}
	for v := 0; v < n; v++ {
		if t.Parent[v] == -1 {
			dfs(int32(v))
		}
	}
	return low, high
}

func assertTagsMatchRef(t *testing.T, g *graph.Graph, seed uint64) {
	t.Helper()
	tg := computeTags(g, seed)
	low, high := refLowHigh(g, tg)
	for v := 0; v < g.NumVertices(); v++ {
		if tg.Low[v] != low[v] {
			t.Fatalf("low[%d] = %d, want %d", v, tg.Low[v], low[v])
		}
		if tg.High[v] != high[v] {
			t.Fatalf("high[%d] = %d, want %d", v, tg.High[v], high[v])
		}
	}
}

func TestLowHighAgainstBruteForce(t *testing.T) {
	cases := []*graph.Graph{
		gen.Cycle(30),
		gen.Chain(25),
		gen.Clique(8),
		gen.Grid2D(5, 6, true),
		gen.Star(10),
		gen.Barbell(4, 2),
		gen.ER(60, 120, 3),
		gen.Disjoint(gen.Cycle(8), gen.Chain(5), gen.Clique(4)),
	}
	for i, g := range cases {
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			assertTagsMatchRef(t, g, uint64(i))
		})
	}
}

func TestLowHighQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		tg := computeTags(g, uint64(seed))
		low, high := refLowHigh(g, tg)
		for v := 0; v < n; v++ {
			if tg.Low[v] != low[v] || tg.High[v] != high[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackPredicateIsAncestorTest(t *testing.T) {
	g := gen.RandomTree(100, 5)
	tg := computeTags(g, 1)
	anc := func(u, v int32) bool {
		x := v
		for x != -1 {
			if x == u {
				return true
			}
			x = tg.Parent[x]
		}
		return false
	}
	for u := int32(0); u < 100; u += 3 {
		for v := int32(0); v < 100; v += 7 {
			if tg.Back(u, v) != anc(u, v) {
				t.Fatalf("Back(%d,%d) = %v, ancestry = %v", u, v, tg.Back(u, v), anc(u, v))
			}
		}
	}
}

func TestFenceOnBridgeAndCycle(t *testing.T) {
	// Chain: every tree edge is a fence edge. Cycle: no tree edge is.
	chain := gen.Chain(20)
	tg := computeTags(chain, 2)
	for v := int32(0); v < 20; v++ {
		if p := tg.Parent[v]; p != -1 {
			if !tg.Fence(p, v) {
				t.Fatalf("chain edge (%d,%d) should be a fence edge", p, v)
			}
			if tg.InSkeleton(p, v) {
				t.Fatalf("chain edge (%d,%d) must not be in skeleton", p, v)
			}
		}
	}
	cyc := gen.Cycle(20)
	tg = computeTags(cyc, 3)
	for v := int32(0); v < 20; v++ {
		if p := tg.Parent[v]; p != -1 && tg.Parent[p] != -1 {
			// Non-root tree edges of a cycle are plain.
			if tg.Fence(p, v) {
				t.Fatalf("cycle edge (%d,%d) should be plain", p, v)
			}
		}
	}
}

func TestRootEdgesAlwaysFenced(t *testing.T) {
	// Every tree edge incident to a root is a fence edge (the root is
	// always a singleton in the skeleton).
	g := gen.ER(80, 200, 9)
	tg := computeTags(g, 4)
	for v := int32(0); v < g.N; v++ {
		p := tg.Parent[v]
		if p == -1 || tg.Parent[p] != -1 {
			continue
		}
		_ = p
	}
	// Root detection: parent == -1.
	for v := int32(0); v < g.N; v++ {
		if tg.Parent[v] != -1 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if tg.Parent[w] == v {
				if tg.InSkeleton(v, w) {
					t.Fatalf("root edge (%d,%d) in skeleton", v, w)
				}
			}
		}
	}
}

func TestIsTreeEdge(t *testing.T) {
	g := gen.Chain(5)
	tg := computeTags(g, 5)
	for v := int32(0); v < 4; v++ {
		if !tg.IsTreeEdge(v, v+1) || !tg.IsTreeEdge(v+1, v) {
			t.Fatalf("chain edge (%d,%d) not recognized as tree edge", v, v+1)
		}
	}
	if tg.IsTreeEdge(0, 4) {
		t.Fatal("non-edge flagged as tree edge")
	}
}

func TestAncestorSelf(t *testing.T) {
	g := gen.RandomTree(30, 6)
	tg := computeTags(g, 6)
	for v := int32(0); v < 30; v++ {
		if !tg.Ancestor(v, v) {
			t.Fatalf("Ancestor(%d,%d) must be true", v, v)
		}
	}
}
