// Package tv is a faithful implementation of the Tarjan–Vishkin parallel
// biconnectivity algorithm (SIAM J. Comput. 1985), as described in
// Appendix A of the paper.
//
// Like FAST-BCC it computes a spanning forest, roots it with the Euler
// tour technique, and computes the first/last/low/high tags. Unlike
// FAST-BCC it then *materializes* the auxiliary skeleton graph
// G' = (E, E'): one G'-vertex per edge of G and an explicit E' edge list
// built from the three rules of the original paper. Connected components of
// G' (by union-find over edge ids) are the biconnected components of G.
//
// The point of carrying this baseline is Fig. 7 and Tab. 3: |E'| = O(m)
// makes TV space-hungry — the paper measures 1.2–10.8× the memory of
// FAST-BCC and out-of-memory failures on its largest inputs — while its
// polylogarithmic span still beats BFS-based baselines on large-diameter
// graphs.
package tv

import (
	"sort"
	"time"

	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/etour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/tags"
	"repro/internal/uf"
)

// Options configures the TV run.
type Options struct {
	Seed        uint64
	LocalSearch bool
	// Exec is the execution context every parallel loop of the run uses
	// (nil = the process-global default).
	Exec *parallel.Exec
}

// Result is the Tarjan–Vishkin decomposition. BCCs are reported per *edge*
// of G (the natural output of the algorithm); vertex blocks are derived.
type Result struct {
	// EdgeComp[i] is the dense BCC id of edge i (indices into Edges).
	EdgeComp []int32
	// Edges is the indexed undirected edge list of G used by the run.
	Edges []graph.Edge
	// NumBCC is the number of biconnected components.
	NumBCC int
	// SkeletonEdges is |E'|, the size of the materialized auxiliary graph —
	// the O(m) term that dominates TV's footprint.
	SkeletonEdges int
	// AuxBytes estimates peak auxiliary memory in bytes.
	AuxBytes int64
	// Times is the step breakdown (skeleton construction counted under
	// Tagging, CC on G' under LastCC).
	Times core.StepTimes
}

// BCC runs Tarjan–Vishkin on g.
func BCC(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	e := opt.Exec
	res := &Result{}

	// Step 1: spanning forest via connectivity.
	t0 := time.Now()
	cc := conn.Connectivity(g, conn.Options{
		Seed:        opt.Seed,
		LocalSearch: opt.LocalSearch,
		WantForest:  true,
		Exec:        e,
	})
	res.Times.FirstCC = time.Since(t0)

	// Step 2: root with ETT.
	t0 = time.Now()
	rt := etour.RootIn(e, n, cc.Forest, cc.Comp, nil)
	res.Times.Rooting = time.Since(t0)

	// Step 3: tags + explicit skeleton construction.
	t0 = time.Now()
	tg := tags.ComputeIn(e, g, rt, nil)
	parent, first, last := tg.Parent, tg.First, tg.Last

	// Indexed edge list (each parallel copy is its own G'-vertex).
	edges := indexEdges(e, g)
	res.Edges = edges
	m := len(edges)

	// treeEdgeOf[v] = the edge index serving as (p(v), v); parallel copies
	// lose the claim and are treated as back edges, as in the original
	// algorithm where T is a set of edge instances.
	treeEdgeOf := make([]int32, n)
	parallel.FillIn(e, treeEdgeOf, -1)
	e.ForBlock(m, parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if parent[e.W] == e.U {
				claim(&treeEdgeOf[e.W], int32(i))
			} else if parent[e.U] == e.W {
				claim(&treeEdgeOf[e.U], int32(i))
			}
		}
	})
	isTree := func(i int) bool {
		e := edges[i]
		return treeEdgeOf[e.W] == int32(i) || treeEdgeOf[e.U] == int32(i)
	}

	// E' per the three rules of Appendix A. Built as an explicit pair list —
	// the deliberate O(m) materialization.
	type gedge struct{ a, b int32 }
	nb := (m + 2047) / 2048
	outs := make([][]gedge, nb)
	e.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*2048, (b+1)*2048
			if hi > m {
				hi = m
			}
			var out []gedge
			for i := lo; i < hi; i++ {
				e := edges[i]
				u, w := e.U, e.W
				if u == w {
					continue // self-loop: isolated G'-vertex
				}
				if isTree(i) {
					// Rule 3: (u,p(u)) — (p(u),p(p(u))) when u's subtree
					// escapes p(u)'s subtree.
					c := w // child endpoint
					if treeEdgeOf[e.W] != int32(i) {
						c = u
					}
					p := parent[c]
					if gp := parent[p]; gp != -1 {
						if tg.Low[c] < first[p] || tg.High[c] > last[p] {
							out = append(out, gedge{int32(i), treeEdgeOf[p]})
						}
					}
					continue
				}
				// Non-tree edge: orient so first[b2] < first[a2].
				a2, b2 := u, w
				if first[a2] < first[b2] {
					a2, b2 = b2, a2
				}
				// Rule 1: (a2, p(a2)) — (u,w).
				out = append(out, gedge{int32(i), treeEdgeOf[a2]})
				// Rule 2: cross edges also connect the two tree edges.
				if !tg.Ancestor(b2, a2) {
					out = append(out, gedge{treeEdgeOf[u], treeEdgeOf[w]})
				}
			}
			outs[b] = out
		}
	})
	var eprime []gedge
	for _, o := range outs {
		eprime = append(eprime, o...)
	}
	res.SkeletonEdges = len(eprime)
	res.Times.Tagging = time.Since(t0)

	// Step 4: CC on G' by union-find over edge ids.
	t0 = time.Now()
	u := uf.New(m)
	e.ForBlock(len(eprime), parallel.DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u.Union(eprime[i].a, eprime[i].b)
		}
	})
	comp := make([]int32, m)
	e.For(m, func(i int) { comp[i] = u.Find(int32(i)) })
	// Dense ids; self-loop edges keep a component but do not form blocks
	// beyond their vertex, matching vertex-set BCC semantics elsewhere.
	dense := make([]int32, m)
	isRoot := make([]int32, m)
	e.For(m, func(i int) {
		if comp[i] == int32(i) {
			isRoot[i] = 1
		}
	})
	numComp := int(prim.ExclusiveScanInt32In(e, isRoot))
	e.For(m, func(i int) { dense[i] = isRoot[comp[i]] })
	res.EdgeComp = dense
	nBCC := numComp
	// Subtract components made solely of self-loop edges.
	selfOnly := make([]bool, numComp)
	for i := range selfOnly {
		selfOnly[i] = true
	}
	for i, e := range edges {
		if e.U != e.W {
			selfOnly[dense[i]] = false
		}
	}
	for _, s := range selfOnly {
		if s {
			nBCC--
		}
	}
	res.NumBCC = nBCC
	res.Times.LastCC = time.Since(t0)

	// Aux memory: edge list (2m), E' (2·|E'|), UF over edges (m), edge comp
	// arrays (3m), plus the same per-vertex tags as FAST-BCC (~16n) — the
	// O(m) terms dominate, exactly the paper's point.
	res.AuxBytes = int64(4) * (int64(2*m) + int64(2*len(eprime)) + int64(4*m) + int64(16*n))
	return res
}

// Blocks materializes the blocks as sorted vertex sets (for verification).
func (r *Result) Blocks() [][]int32 {
	nc := 0
	for _, c := range r.EdgeComp {
		if int(c)+1 > nc {
			nc = int(c) + 1
		}
	}
	buckets := make([][]int32, nc)
	for i, e := range r.Edges {
		if e.U == e.W {
			continue
		}
		buckets[r.EdgeComp[i]] = append(buckets[r.EdgeComp[i]], e.U, e.W)
	}
	var blocks [][]int32
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		out := b[:1]
		for _, v := range b[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		blocks = append(blocks, out)
	}
	return blocks
}

// claim deterministically resolves parallel-copy races: the largest edge
// index wins, independent of scheduling.
func claim(p *int32, v int32) {
	prim.WriteMax(p, v) // p starts at -1; any index >= 0 wins; ties by max
}

// indexEdges builds the undirected edge list (one entry per parallel copy,
// self-loops included once each) in parallel.
func indexEdges(e *parallel.Exec, g *graph.Graph) []graph.Edge {
	n := int(g.N)
	cnt := make([]int32, n+1)
	e.For(n, func(v int) {
		c := int32(0)
		for _, w := range g.Neighbors(int32(v)) {
			if int32(v) < w {
				c++
			} else if int32(v) == w {
				c++ // each self-loop contributes two arcs; count one of two
			}
		}
		// Self-loops appear twice in the adjacency; halve their count.
		loops := int32(0)
		for _, w := range g.Neighbors(int32(v)) {
			if int32(v) == w {
				loops++
			}
		}
		cnt[v] = c - loops/2
	})
	total := prim.ExclusiveScanInt32In(e, cnt)
	edges := make([]graph.Edge, total)
	e.For(n, func(v int) {
		off := cnt[v]
		loopSeen := int32(0)
		for _, w := range g.Neighbors(int32(v)) {
			switch {
			case int32(v) < w:
				edges[off] = graph.Edge{U: int32(v), W: w}
				off++
			case int32(v) == w:
				loopSeen++
				if loopSeen%2 == 1 { // emit every other arc copy
					edges[off] = graph.Edge{U: int32(v), W: w}
					off++
				}
			}
		}
	})
	return edges
}
