package tv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

func assertMatchesSeq(t *testing.T, g *graph.Graph) *Result {
	t.Helper()
	res := BCC(g, Options{Seed: 17})
	ref := seqbcc.BCC(g)
	if res.NumBCC != ref.NumBCC() {
		t.Fatalf("NumBCC = %d, want %d", res.NumBCC, ref.NumBCC())
	}
	if !check.Equal(res.Blocks(), ref.Blocks) {
		t.Fatalf("blocks differ:\n  tv: %s\n seq: %s",
			check.Describe(res.Blocks()), check.Describe(ref.Blocks))
	}
	return res
}

func TestStructuredGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", gen.Clique(3)},
		{"clique", gen.Clique(7)},
		{"chain", gen.Chain(60)},
		{"cycle", gen.Cycle(45)},
		{"star", gen.Star(20)},
		{"barbell", gen.Barbell(5, 2)},
		{"cliquechain", gen.CliqueChain(4, 4)},
		{"grid", gen.Grid2D(6, 9, false)},
		{"torus", gen.Grid2D(6, 9, true)},
		{"tree", gen.RandomTree(80, 4)},
		{"er", gen.ER(100, 220, 5)},
		{"disjoint", gen.Disjoint(gen.Cycle(12), gen.Chain(9), gen.Clique(5))},
		{"edgeless", graph.MustFromEdges(6, nil)},
		{"empty", graph.MustFromEdges(0, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertMatchesSeq(t, tc.g)
		})
	}
}

func TestMultigraph(t *testing.T) {
	cases := [][]graph.Edge{
		{{U: 0, W: 1}, {U: 0, W: 1}},
		{{U: 0, W: 0}},
		{{U: 0, W: 0}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 1, W: 2}},
	}
	for i, edges := range cases {
		g := graph.MustFromEdges(3, edges)
		res := BCC(g, Options{Seed: 3})
		ref := seqbcc.BCC(g)
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("case %d: %s != %s", i,
				check.Describe(res.Blocks()), check.Describe(ref.Blocks))
		}
	}
}

func TestQuickRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(70)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(seed)})
		return check.Equal(res.Blocks(), seqbcc.BCC(g).Blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonIsLinearInM(t *testing.T) {
	// The defining property of TV: |E'| = Θ(m), much larger than the O(n)
	// auxiliary state of FAST-BCC on dense graphs.
	g := gen.RMAT(11, 16, 6)
	res := BCC(g, Options{Seed: 1})
	m := g.NumEdges()
	if res.SkeletonEdges < m/2 {
		t.Fatalf("skeleton edges %d suspiciously small for m=%d", res.SkeletonEdges, m)
	}
	if res.SkeletonEdges > 3*m {
		t.Fatalf("skeleton edges %d too large for m=%d", res.SkeletonEdges, m)
	}
}

func TestSpaceAccountingGrowsWithDensity(t *testing.T) {
	sparse := BCC(gen.Grid2D(40, 40, true), Options{Seed: 2})
	dense := BCC(gen.RMAT(10, 20, 2), Options{Seed: 2})
	ratioSparse := float64(sparse.AuxBytes) / float64(1600)
	ratioDense := float64(dense.AuxBytes) / float64(1024)
	if ratioDense <= ratioSparse {
		t.Fatalf("per-vertex aux bytes should grow with density: sparse %.0f dense %.0f",
			ratioSparse, ratioDense)
	}
}

func TestLocalSearchVariant(t *testing.T) {
	g := gen.Chain(3000)
	res := BCC(g, Options{Seed: 4, LocalSearch: true})
	if res.NumBCC != 2999 {
		t.Fatalf("chain NumBCC = %d", res.NumBCC)
	}
}
