// Package epoch implements epoch-based reclamation (EBR/QSBR-style) for
// immutable objects published through atomic pointers — the Go analog of
// the reservation schemes PPoPP'25 "Publish on Ping" benchmarks against
// hazard pointers: readers publish into private slots, writers only scan
// on reclaim.
//
// The problem it solves in this repository: the Store used to retain a
// shared refcount on every Acquire, so "millions of users" worth of
// readers all CAS the same cacheline per query hop. With an epoch
// Domain, each reader owns a cacheline-padded slot and a hop is two
// uncontended atomic stores (pin, unpin):
//
//	h := dom.NewHandle()          // once per goroutine / connection
//	h.Pin()                       // publish: slot ← global epoch
//	p := published.Load()         // any pointer read after Pin is safe
//	... read p freely ...
//	h.Unpin()                     // slot ← 0; p must not be used after
//
// Writers replace the published pointer first (Swap), then hand the old
// object to Retire, which stamps it with the current global epoch,
// advances the epoch, and reclaims: a retired object is freed only once
// every pinned slot carries an epoch strictly greater than its stamp.
// Readers pinned at or before the stamp may still hold the object and
// block its reclamation; readers pinned after the stamp read the global
// epoch after the writer advanced it, which is after the writer
// unpublished the object, so their subsequent pointer loads cannot
// observe it.
//
// The scan cost lives entirely on the reclaim path (one load per slot,
// under the Domain mutex); the reader fast path never takes a lock,
// never allocates, and never writes shared memory.
//
// A Handle is not safe for concurrent use — it is the per-goroutine
// (or per-connection) reservation slot. The Domain is safe for
// concurrent use by any number of handles, retirers, and reclaimers.
package epoch

import (
	"math"
	"sync"
	"sync/atomic"
)

// slot is one reader's published reservation: 0 when the reader is
// quiescent, otherwise the global epoch observed at Pin. Each slot is
// padded out to 128 bytes (a cacheline pair, covering the adjacent-line
// prefetcher) so concurrent readers' pins never false-share.
type slot struct {
	epoch atomic.Uint64
	_     [120]byte
}

// retiree is one unpublished object awaiting reclamation.
type retiree struct {
	stamp uint64 // global epoch observed after the object was unpublished
	free  func()
}

// Domain is one reclamation scope: a set of reader slots, a global
// epoch, and the retired list. All methods are safe for concurrent use.
// The zero value is not usable; construct with NewDomain.
type Domain struct {
	global atomic.Uint64
	nret   atomic.Int64 // len(retired), readable without mu
	nfreed atomic.Int64 // objects reclaimed over the domain's lifetime

	mu      sync.Mutex
	slots   []*slot // every slot ever created (grow-only; scanned on reclaim)
	free    []*slot // closed handles' slots, recycled by NewHandle
	retired []retiree
}

// NewDomain returns an empty reclamation domain. The global epoch starts
// at 1 so a pinned slot is always distinguishable from a quiescent one
// (epoch 0).
func NewDomain() *Domain {
	d := &Domain{}
	d.global.Store(1)
	return d
}

// Handle is one reader's registration in a Domain. Acquire one per
// goroutine (or pool them per connection) and reuse it: creation takes
// the Domain lock, but Pin/Unpin afterwards are single uncontended
// atomic stores. A Handle must not be used concurrently.
type Handle struct {
	d     *Domain
	s     *slot
	depth int // nested Pin count; the slot publishes the outermost epoch
}

// NewHandle registers a reader slot, reusing one returned by a previous
// Handle.Close when available.
func (d *Domain) NewHandle() *Handle {
	d.mu.Lock()
	var s *slot
	if n := len(d.free); n > 0 {
		s = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
	} else {
		s = new(slot)
		d.slots = append(d.slots, s)
	}
	d.mu.Unlock()
	return &Handle{d: d, s: s}
}

// Pin publishes the current global epoch into the handle's slot. Every
// pointer loaded after Pin returns is protected until the matching
// Unpin: it cannot be reclaimed even if the writer unpublishes it.
// Pins nest; the slot keeps the outermost (oldest, and therefore most
// conservative) epoch until the last Unpin.
func (h *Handle) Pin() {
	if h.depth == 0 {
		h.s.epoch.Store(h.d.global.Load())
	}
	h.depth++
}

// Unpin ends the protection started by the matching Pin. Objects read
// under the pin must not be used after the outermost Unpin returns.
func (h *Handle) Unpin() {
	if h.depth <= 0 {
		panic("epoch: Unpin without matching Pin")
	}
	h.depth--
	if h.depth == 0 {
		h.s.epoch.Store(0)
	}
}

// Pinned reports whether the handle currently publishes a reservation.
func (h *Handle) Pinned() bool { return h.depth > 0 }

// Close unpins (if pinned) and returns the slot to the Domain for
// reuse. The Handle must not be used afterwards. Close is idempotent.
func (h *Handle) Close() {
	if h.s == nil {
		return
	}
	h.s.epoch.Store(0)
	h.depth = 0
	h.d.mu.Lock()
	h.d.free = append(h.d.free, h.s)
	h.d.mu.Unlock()
	h.s = nil
}

// Retire schedules free to run once no pinned reader can still hold the
// object. The caller must have already unpublished the object (swapped
// it out of every shared pointer) before calling Retire — the stamp is
// only a correct upper bound on the pins that may hold the object if no
// new reader can reach it. Retire advances the global epoch and then
// attempts an immediate Reclaim, so steady rebuild churn reclaims its
// own garbage; free runs outside the Domain lock and must not call back
// into the Domain.
func (d *Domain) Retire(free func()) {
	d.mu.Lock()
	// The stamp is read after the caller's unpublish: any reader that
	// could have loaded the object pinned before the unpublish, with an
	// epoch observed earlier still — monotonicity makes every such pin
	// ≤ stamp, and Reclaim frees only below the minimum pinned epoch.
	d.retired = append(d.retired, retiree{stamp: d.global.Load(), free: free})
	d.nret.Store(int64(len(d.retired)))
	d.mu.Unlock()
	// Advance so future pins observe a strictly larger epoch than the
	// stamp: once current pins drain, the object becomes reclaimable.
	d.global.Add(1)
	d.Reclaim()
}

// Reclaim scans the reader slots and frees every retired object whose
// stamp is strictly below the minimum pinned epoch, returning how many
// were freed. It is called automatically by Retire; callers that want
// retired objects to drain without further writes (a gauge read, a
// shutdown path) can invoke it directly.
func (d *Domain) Reclaim() int {
	d.mu.Lock()
	if len(d.retired) == 0 {
		d.mu.Unlock()
		return 0
	}
	min := uint64(math.MaxUint64)
	for _, s := range d.slots {
		if e := s.epoch.Load(); e != 0 && e < min {
			min = e
		}
	}
	var ready []func()
	kept := d.retired[:0]
	for _, r := range d.retired {
		if r.stamp < min {
			ready = append(ready, r.free)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(d.retired); i++ {
		d.retired[i] = retiree{} // let the GC take the freed closures
	}
	d.retired = kept
	d.nret.Store(int64(len(kept)))
	d.mu.Unlock()
	for _, f := range ready {
		f()
	}
	d.nfreed.Add(int64(len(ready)))
	return len(ready)
}

// Reclaimed reports how many retired objects have been freed over the
// domain's lifetime — the monotone companion to the Retired gauge. It
// does not take the Domain lock.
func (d *Domain) Reclaimed() int64 { return d.nfreed.Load() }

// Retired reports how many retired objects await reclamation — the
// domain's garbage gauge. It does not take the Domain lock.
func (d *Domain) Retired() int { return int(d.nret.Load()) }
