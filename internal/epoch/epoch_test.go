package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// object is the stand-in for a published snapshot: a payload readers
// check for integrity and a freed flag the retire callback sets.
type object struct {
	payload uint64
	freed   atomic.Bool
}

func TestPinUnpinNesting(t *testing.T) {
	d := NewDomain()
	h := d.NewHandle()
	defer h.Close()
	if h.Pinned() {
		t.Fatal("fresh handle reports pinned")
	}
	h.Pin()
	outer := h.s.epoch.Load()
	if outer == 0 {
		t.Fatal("pin did not publish an epoch")
	}
	// A retire between nested pins advances the global epoch; the slot
	// must keep the outermost (older) reservation.
	d.Retire(func() {})
	h.Pin()
	if got := h.s.epoch.Load(); got != outer {
		t.Fatalf("nested pin moved the published epoch: %d -> %d", outer, got)
	}
	h.Unpin()
	if !h.Pinned() {
		t.Fatal("inner unpin ended the reservation")
	}
	h.Unpin()
	if h.Pinned() || h.s.epoch.Load() != 0 {
		t.Fatal("outer unpin did not clear the slot")
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin without Pin did not panic")
		}
	}()
	h := NewDomain().NewHandle()
	h.Unpin()
}

func TestRetireWithoutReadersFreesImmediately(t *testing.T) {
	d := NewDomain()
	o := &object{}
	d.Retire(func() { o.freed.Store(true) })
	if !o.freed.Load() {
		t.Fatal("retire with no pinned readers did not free")
	}
	if d.Retired() != 0 {
		t.Fatalf("retired gauge: %d, want 0", d.Retired())
	}
}

func TestPinnedReaderBlocksReclaim(t *testing.T) {
	d := NewDomain()
	h := d.NewHandle()
	defer h.Close()

	h.Pin()
	o := &object{}
	d.Retire(func() { o.freed.Store(true) })
	if o.freed.Load() {
		t.Fatal("retired object freed while a reader was pinned at the stamp epoch")
	}
	if d.Retired() != 1 {
		t.Fatalf("retired gauge: %d, want 1", d.Retired())
	}
	// More retires while still pinned: nothing may drain.
	o2 := &object{}
	d.Retire(func() { o2.freed.Store(true) })
	if o.freed.Load() || o2.freed.Load() {
		t.Fatal("reclaimed past a pinned reservation")
	}
	h.Unpin()
	if n := d.Reclaim(); n != 2 {
		t.Fatalf("reclaim after unpin freed %d, want 2", n)
	}
	if !o.freed.Load() || !o2.freed.Load() {
		t.Fatal("unpinned objects not freed")
	}
}

// TestReaderPinnedAfterRetireDoesNotBlock: a reader that pins after the
// writer advanced the epoch cannot hold the retired object, so it must
// not delay its reclamation.
func TestReaderPinnedAfterRetireDoesNotBlock(t *testing.T) {
	d := NewDomain()
	blocker := d.NewHandle()
	defer blocker.Close()
	blocker.Pin()

	o := &object{}
	d.Retire(func() { o.freed.Store(true) }) // blocked by blocker

	late := d.NewHandle()
	defer late.Close()
	late.Pin() // observes the advanced epoch: cannot hold o

	blocker.Unpin()
	d.Reclaim()
	if !o.freed.Load() {
		t.Fatal("late pin (after the epoch advance) blocked reclamation")
	}
	late.Unpin()
}

func TestHandleSlotReuse(t *testing.T) {
	d := NewDomain()
	h1 := d.NewHandle()
	s1 := h1.s
	h1.Pin()
	h1.Close() // close while pinned: slot must come back clean
	h2 := d.NewHandle()
	if h2.s != s1 {
		t.Fatal("closed slot not recycled")
	}
	if h2.s.epoch.Load() != 0 {
		t.Fatal("recycled slot still pinned")
	}
	if len(d.slots) != 1 {
		t.Fatalf("slots grew on reuse: %d", len(d.slots))
	}
	h2.Close()
	if h2.s != nil {
		t.Fatal("close did not detach the slot")
	}
	h2.Close() // idempotent
}

func TestPinUnpinAllocationFree(t *testing.T) {
	d := NewDomain()
	h := d.NewHandle()
	defer h.Close()
	if avg := testing.AllocsPerRun(100, func() {
		h.Pin()
		h.Unpin()
	}); avg != 0 {
		t.Fatalf("pin/unpin allocates %.1f/op, want 0", avg)
	}
}

// TestStressNoReclaimWhilePinned is the package-level half of the issue's
// reclamation stress test: readers pin, load the published object, and
// verify on every access that it has not been freed under them, while a
// writer continuously swaps and retires versions. Run with -race.
func TestStressNoReclaimWhilePinned(t *testing.T) {
	d := NewDomain()
	var published atomic.Pointer[object]
	first := &object{payload: 0xA5A5A5A5A5A5A5A5}
	published.Store(first)

	const (
		readers  = 8
		versions = 2000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.NewHandle()
			defer h.Close()
			for !stop.Load() {
				h.Pin()
				o := published.Load()
				if o.freed.Load() {
					t.Error("pinned reader observed a freed object")
					h.Unpin()
					return
				}
				if o.payload != 0xA5A5A5A5A5A5A5A5 {
					t.Errorf("pinned reader observed corrupt payload %x", o.payload)
					h.Unpin()
					return
				}
				// Re-check after some spinning: the object must stay
				// valid for the whole pinned window, not just at load.
				for i := 0; i < 32; i++ {
					runtime.Gosched()
				}
				if o.freed.Load() {
					t.Error("object freed inside a pinned window")
					h.Unpin()
					return
				}
				h.Unpin()
			}
		}()
	}

	for v := 0; v < versions; v++ {
		next := &object{payload: 0xA5A5A5A5A5A5A5A5}
		old := published.Swap(next)
		d.Retire(func() { old.freed.Store(true) })
	}
	stop.Store(true)
	wg.Wait()

	// Eventual reclamation: with every reader quiescent, one scan must
	// drain everything except the still-published object.
	d.Reclaim()
	if d.Retired() != 0 {
		t.Fatalf("retired objects not drained after readers quiesced: %d", d.Retired())
	}
}
