package promtext

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestWriteGolden pins the exact exposition text for a registry covering
// every metric kind: counters with and without labels, int and float
// gauges, func-backed series, and a histogram with elided empty buckets.
func TestWriteGolden(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("app_requests_total", "Requests served.", "endpoint", "query").Add(3)
	r.Counter("app_requests_total", "Requests served.", "endpoint", "batch").Add(1)
	r.CounterFunc("app_builds_total", "Builds run.", func() int64 { return 7 })
	r.Gauge("app_in_flight", "In-flight requests.").Set(2)
	r.GaugeFunc("app_load", "Load average.", func() float64 { return 0.5 })
	h := r.Histogram("app_latency_seconds", "Request latency.")
	h.ObserveNs(1)    // bucket 1, le=2e-09
	h.ObserveNs(1)    // bucket 1
	h.ObserveNs(900)  // bucket 10, le=1.024e-06
	h.ObserveNs(3000) // bucket 12, le=4.096e-06

	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP app_builds_total Builds run.",
		"# TYPE app_builds_total counter",
		"app_builds_total 7",
		"# HELP app_in_flight In-flight requests.",
		"# TYPE app_in_flight gauge",
		"app_in_flight 2",
		"# HELP app_latency_seconds Request latency.",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="2e-09"} 2`,
		`app_latency_seconds_bucket{le="1.024e-06"} 3`,
		`app_latency_seconds_bucket{le="4.096e-06"} 4`,
		`app_latency_seconds_bucket{le="+Inf"} 4`,
		"app_latency_seconds_sum 3.902e-06",
		"app_latency_seconds_count 4",
		"# HELP app_load Load average.",
		"# TYPE app_load gauge",
		"app_load 0.5",
		"# HELP app_requests_total Requests served.",
		"# TYPE app_requests_total counter",
		`app_requests_total{endpoint="batch"} 1`,
		`app_requests_total{endpoint="query"} 3`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWriteMergesRegistries checks that families from multiple
// registries interleave into one sorted stream — the /metrics endpoint
// merges the store registry with the HTTP registry.
func TestWriteMergesRegistries(t *testing.T) {
	a := obs.NewRegistry()
	a.Counter("zz_total", "Z.").Add(1)
	a.Counter("mm_total", "M.", "src", "a").Add(2)
	b := obs.NewRegistry()
	b.Counter("aa_total", "A.").Add(3)
	b.Counter("mm_total", "M.", "src", "b").Add(4)

	var buf bytes.Buffer
	if err := Write(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP aa_total A.",
		"# TYPE aa_total counter",
		"aa_total 3",
		"# HELP mm_total M.",
		"# TYPE mm_total counter",
		`mm_total{src="a"} 2`,
		`mm_total{src="b"} 4`,
		"# HELP zz_total Z.",
		"# TYPE zz_total counter",
		"zz_total 1",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("merge mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramLabelsCombineWithLe checks series labels merge with the
// le label inside one brace block.
func TestHistogramLabelsCombineWithLe(t *testing.T) {
	r := obs.NewRegistry()
	r.Histogram("d_seconds", "D.", "op", "connected").ObserveNs(1)

	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`d_seconds_bucket{op="connected",le="2e-09"} 1`,
		`d_seconds_bucket{op="connected",le="+Inf"} 1`,
		`d_seconds_sum{op="connected"} 1e-09`,
		`d_seconds_count{op="connected"} 1`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Fatalf("missing line %q in:\n%s", want, buf.String())
		}
	}
}
