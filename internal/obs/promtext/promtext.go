// Package promtext renders obs registries in the Prometheus text
// exposition format (version 0.0.4), hand-rolled so the serving stack's
// /metrics endpoint needs no external dependency:
//
//	# HELP name help text
//	# TYPE name counter
//	name{label="v"} 12
//
// Histograms render as cumulative _bucket series with le upper bounds in
// seconds (the power-of-two nanosecond buckets of obs.Histogram), plus
// _sum and _count. Empty buckets are elided — cumulative counts stay
// correct at every emitted boundary and scrapers accept sparse bucket
// sets — so a histogram costs output proportional to the latencies it
// actually saw, not its 64-bucket range.
package promtext

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// ContentType is the exposition content type /metrics should answer with.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Write renders the registries' metrics to w, families merged across
// registries and sorted by name, series sorted by label block. It
// returns the first write error.
func Write(w io.Writer, regs ...*obs.Registry) error {
	byName := map[string]*obs.FamilySnapshot{}
	var names []string
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, f := range r.Gather() {
			f := f
			if cur := byName[f.Name]; cur != nil {
				cur.Series = append(cur.Series, f.Series...)
				sort.Slice(cur.Series, func(i, j int) bool { return cur.Series[i].Labels < cur.Series[j].Labels })
				continue
			}
			byName[f.Name] = &f
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		writeFamily(bw, byName[name])
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, f *obs.FamilySnapshot) {
	if f.Help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.Name)
		w.WriteByte(' ')
		w.WriteString(f.Help)
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.Name)
	w.WriteByte(' ')
	w.WriteString(f.Type)
	w.WriteByte('\n')
	for _, s := range f.Series {
		if s.Hist != nil {
			writeHistogram(w, f.Name, s.Labels, s.Hist)
			continue
		}
		w.WriteString(f.Name)
		if s.Labels != "" {
			w.WriteByte('{')
			w.WriteString(s.Labels)
			w.WriteByte('}')
		}
		w.WriteByte(' ')
		w.WriteString(formatValue(s.Value, s.IsInt))
		w.WriteByte('\n')
	}
}

func writeHistogram(w *bufio.Writer, name, labels string, h *obs.HistSnapshot) {
	var cum uint64
	for b, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if upper := obs.BucketUpper(b); !math.IsInf(upper, 1) {
			writeSample(w, name+"_bucket", labels, `le="`+formatFloat(upper)+`"`, strconv.FormatUint(cum, 10))
		}
	}
	writeSample(w, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(h.Count, 10))
	writeSample(w, name+"_sum", labels, "", formatFloat(float64(h.SumNs)/1e9))
	writeSample(w, name+"_count", labels, "", strconv.FormatUint(h.Count, 10))
}

// writeSample writes one sample line, merging the series labels with an
// optional extra label (the histogram le).
func writeSample(w *bufio.Writer, name, labels, extra, value string) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatValue(v float64, isInt bool) string {
	if isInt {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatFloat(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
