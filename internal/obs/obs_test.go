package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterExact(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

// TestCounterConcurrentMonotone drives concurrent recorders against a
// concurrent scraper: every scraped value must be monotonically
// non-decreasing and never exceed what has been handed to Add, and the
// final total must be exact — the contract that makes /metrics counters
// trustworthy mid-traffic.
func TestCounterConcurrentMonotone(t *testing.T) {
	const (
		writers = 8
		perW    = 5000
	)
	var c Counter
	var handed atomic.Int64 // incremented BEFORE the Add it describes
	stop := make(chan struct{})
	var scrapeErr atomic.Value
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		last := int64(0)
		for {
			v := c.Value()
			if v < last {
				scrapeErr.Store("counter went backwards")
				return
			}
			last = v
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				handed.Add(1)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()
	if e := scrapeErr.Load(); e != nil {
		t.Fatal(e)
	}
	if got := c.Value(); got != writers*perW {
		t.Fatalf("final Value = %d, want %d", got, writers*perW)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 1ns → bucket 1 ([1,2)), 1000ns → bucket 10 ([512,1024)),
	// 0 → bucket 0, negative clamps to 0.
	h.ObserveNs(0)
	h.ObserveNs(-5)
	h.ObserveNs(1)
	h.ObserveNs(1000)
	h.Observe(time.Microsecond) // 1000ns again
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.SumNs != 2001 {
		t.Fatalf("SumNs = %d, want 2001", s.SumNs)
	}
	want := map[int]uint64{0: 2, 1: 1, 10: 2}
	for b, n := range s.Buckets {
		if n != want[b] {
			t.Fatalf("bucket %d = %d, want %d", b, n, want[b])
		}
	}
}

func TestHistogramConcurrentExact(t *testing.T) {
	const (
		writers = 8
		perW    = 4000
	)
	var h Histogram
	stop := make(chan struct{})
	var scrapeErr atomic.Value
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		last := uint64(0)
		for {
			s := h.Snapshot()
			if s.Count < last {
				scrapeErr.Store("histogram count went backwards")
				return
			}
			last = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.ObserveNs(int64(1) << uint(w%16)) // bucket w%16 + 1
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraperWG.Wait()
	if e := scrapeErr.Load(); e != nil {
		t.Fatal(e)
	}
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perW)
	}
	var bucketTotal uint64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketTotal, s.Count)
	}
}

func TestBucketUpper(t *testing.T) {
	if got := BucketUpper(0); got != 1e-9 {
		t.Fatalf("BucketUpper(0) = %g, want 1e-09", got)
	}
	if got := BucketUpper(10); got != 1024e-9 {
		t.Fatalf("BucketUpper(10) = %g, want 1.024e-06", got)
	}
	if !math.IsInf(BucketUpper(NumBuckets-1), 1) {
		t.Fatal("overflow bucket upper bound should be +Inf")
	}
}

// TestRecordAllocFree pins the hot-path contract: recording into any
// primitive allocates nothing, so instrumented query paths keep their
// 0 allocs/op guarantee.
func TestCounterBankExact(t *testing.T) {
	var b CounterBank
	b.Flush(&[BankSlots]int64{0, 3, 0, 7, 0, 0, 0, 1})
	b.Flush(&[BankSlots]int64{0, 2, 0, 0, 0, 0, 0, 0})
	want := [BankSlots]int64{0, 5, 0, 7, 0, 0, 0, 1}
	for i, w := range want {
		if got := b.Value(i); got != w {
			t.Fatalf("slot %d = %d, want %d", i, got, w)
		}
	}
}

func TestCounterBankConcurrent(t *testing.T) {
	var b CounterBank
	const writers, rounds = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b.Flush(&[BankSlots]int64{1, 0, 2, 0, 0, 0, 0, 1})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for i := 0; i < 2000; i++ {
			v := b.Value(0)
			if v < last {
				t.Errorf("slot 0 went backwards: %d then %d", last, v)
				return
			}
			last = v
		}
	}()
	wg.Wait()
	<-done
	for slot, want := range map[int]int64{0: writers * rounds, 2: 2 * writers * rounds, 7: writers * rounds, 1: 0} {
		if got := b.Value(slot); got != want {
			t.Fatalf("slot %d = %d, want %d", slot, got, want)
		}
	}
}

func TestRecordAllocFree(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	var b CounterBank
	vals := [BankSlots]int64{1, 0, 2, 0, 0, 0, 0, 1}
	if avg := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.ObserveNs(12345)
		b.Flush(&vals)
	}); avg != 0 {
		t.Fatalf("record path: %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		sp := StartSpan(&h)
		sp.End()
	}); avg != 0 {
		t.Fatalf("span: %.2f allocs/op, want 0", avg)
	}
}

func TestSpan(t *testing.T) {
	var h Histogram
	sp := StartSpan(&h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span measured %v, want >= 1ms", d)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.SumNs < int64(time.Millisecond) {
		t.Fatalf("histogram after span: count=%d sum=%dns", s.Count, s.SumNs)
	}
	// Nil-histogram span is a pure stopwatch.
	if d := StartSpan(nil).End(); d < 0 {
		t.Fatalf("stopwatch span returned %v", d)
	}
}

func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "Z.", "op", "a")
	r.Counter("zz_total", "Z.", "op", "b").Add(2)
	c.Add(1)
	r.Gauge("aa_gauge", "A.").Set(-3)
	r.GaugeFunc("ff_gauge", "F.", func() float64 { return 1.5 })
	r.CounterFunc("cf_total", "CF.", func() int64 { return 9 })
	r.Histogram("hh_seconds", "H.").ObserveNs(1)

	fams := r.Gather()
	if len(fams) != 5 {
		t.Fatalf("got %d families, want 5", len(fams))
	}
	// Sorted by name: aa_gauge, cf_total, ff_gauge, hh_seconds, zz_total.
	if fams[0].Name != "aa_gauge" || fams[4].Name != "zz_total" {
		t.Fatalf("family order wrong: %s ... %s", fams[0].Name, fams[4].Name)
	}
	zz := fams[4]
	if len(zz.Series) != 2 || zz.Series[0].Labels != `op="a"` || zz.Series[0].Value != 1 {
		t.Fatalf("zz series: %+v", zz.Series)
	}
	if fams[3].Series[0].Hist == nil || fams[3].Series[0].Hist.Count != 1 {
		t.Fatalf("histogram series: %+v", fams[3].Series[0])
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x_total", "X.")
	mustPanic("duplicate series", func() { r.Counter("x_total", "X.") })
	mustPanic("type mismatch", func() { r.Gauge("x_total", "X.") })
	mustPanic("odd labels", func() { r.Counter("y_total", "Y.", "op") })
}

func TestLabelEscaping(t *testing.T) {
	got := labelString([]string{"k", `a"b\c` + "\n"})
	want := `k="a\"b\\c\n"`
	if got != want {
		t.Fatalf("labelString = %s, want %s", got, want)
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.core.now = func() time.Time { return time.Date(2026, 8, 7, 1, 2, 3, 4e6, time.UTC) }
	l.Debug("hidden")
	l.Info("graph loaded", "graph", "road net", "version", 3, "took", 1500*time.Millisecond)
	got := buf.String()
	want := `ts=2026-08-07T01:02:03.004Z level=info msg="graph loaded" graph="road net" version=3 took=1.5s` + "\n"
	if got != want {
		t.Fatalf("line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	l.SetLevel(LevelError)
	l.Warn("still hidden")
	l.Error("boom", "err", strings.Repeat("x", 3))
	if !strings.Contains(buf.String(), "level=error msg=boom err=xxx") {
		t.Fatalf("error line: %q", buf.String())
	}
	if strings.Contains(buf.String(), "still hidden") {
		t.Fatal("warn leaked past error level")
	}
}

func TestLoggerWithAndNil(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.core.now = func() time.Time { return time.Unix(0, 0).UTC() }
	rl := l.With("graph", "g1", "op", "connected")
	rl.Info("q")
	if !strings.Contains(buf.String(), "msg=q graph=g1 op=connected") {
		t.Fatalf("with-fields line: %q", buf.String())
	}
	// Derived loggers share the parent's level.
	l.SetLevel(LevelError)
	if rl.Enabled(LevelInfo) {
		t.Fatal("derived logger ignored SetLevel on parent")
	}
	// A nil logger is safe everywhere.
	var nilL *Logger
	nilL.Info("ignored", "k", "v")
	nilL.With("a", 1).Error("ignored")
	if nilL.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Info("line", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, "level=info") {
			t.Fatalf("mangled line: %q", ln)
		}
	}
}
