package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are
// discarded before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's name as it appears in output and flags.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a level name ("debug", "info", "warn", "error") —
// the grammar of bccd's -log-level flag.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// loggerCore is the state shared by a Logger and everything derived from
// it with With: one writer, one mutex serializing lines, one level.
type loggerCore struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	// now is the clock, swappable by tests for deterministic output.
	now func() time.Time
}

// Logger writes leveled, structured key=value lines:
//
//	ts=2026-08-07T10:11:12.345Z level=info msg="graph loaded" graph=road version=3
//
// Fields are given as key, value pairs (slog-style); With returns a
// derived logger carrying pre-rendered fields, sharing the parent's
// writer and level. A nil *Logger discards everything, so optional
// loggers need no guards at call sites. All methods are safe for
// concurrent use.
type Logger struct {
	core   *loggerCore
	fields string // pre-rendered " k=v" block from With
}

// NewLogger returns a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, min Level) *Logger {
	c := &loggerCore{w: w, now: time.Now}
	c.min.Store(int32(min))
	return &Logger{core: c}
}

// SetLevel changes the minimum level, effective immediately for every
// logger sharing this core (including With-derived ones).
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.core.min.Store(int32(min))
	}
}

// Enabled reports whether a message at lvl would be written — for
// callers that want to skip expensive argument construction.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl >= Level(l.core.min.Load())
}

// With returns a logger that appends the given key, value pairs to every
// line it writes. The fields render once, here, not per line.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	var b strings.Builder
	appendFields(&b, kv)
	return &Logger{core: l.core, fields: l.fields + b.String()}
}

// Debug logs at LevelDebug with optional key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []any) {
	if !l.Enabled(lvl) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.core.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	b.WriteString(l.fields)
	appendFields(&b, kv)
	b.WriteByte('\n')
	l.core.mu.Lock()
	io.WriteString(l.core.w, b.String())
	l.core.mu.Unlock()
}

// appendFields renders key, value pairs as " k=v" runs. A trailing
// unpaired key renders with an empty value rather than being dropped —
// a visible bug beats a silent one.
func appendFields(b *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(' ')
		if k, ok := kv[i].(string); ok {
			b.WriteString(k)
		} else {
			b.WriteString(fmt.Sprint(kv[i]))
		}
		b.WriteByte('=')
		if i+1 < len(kv) {
			b.WriteString(formatValue(kv[i+1]))
		}
	}
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return quoteIfNeeded(x)
	case error:
		return quoteIfNeeded(x.Error())
	case time.Duration:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	return quoteIfNeeded(fmt.Sprint(v))
}

// quoteIfNeeded quotes values that would break the key=value grammar;
// bare words stay bare so the output is grep-friendly.
func quoteIfNeeded(s string) string {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '"' || c == '=' || c < 0x20 || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	if s == "" {
		return `""`
	}
	return s
}
