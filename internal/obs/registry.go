package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metric types, matching the Prometheus exposition TYPE keywords.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one labeled sample set within a family. Exactly one of the
// value fields is set, matching the family's type.
type series struct {
	labels    string // rendered `k="v",k2="v2"` block, "" for none
	counter   *Counter
	gauge     *Gauge
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series registered under one metric name; name,
// help, and type are shared (re-registering a name with a different type
// or help is a programmer error and panics).
type family struct {
	name, help, typ string
	series          []*series
}

// Registry is a set of named metrics rendered together at scrape time
// (see promtext). Registration takes a lock and may allocate; the
// returned Counter/Gauge/Histogram pointers are then recorded into
// lock- and allocation-free. Metrics are identified by name plus an
// optional fixed label set given as key, value pairs:
//
//	reg := obs.NewRegistry()
//	hits := reg.Counter("requests_total", "Requests served.", "endpoint", "query")
//	lat := reg.Histogram("request_duration_seconds", "Request latency.")
//
// All methods are safe for concurrent use. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// labelString renders key, value pairs into a deterministic label block.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key, value pairs)", kv))
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// register adds one series, creating or extending its family. Duplicate
// (name, labels) pairs and type mismatches panic: both are wiring bugs a
// test hits on its first scrape, not runtime conditions.
func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, old := range f.series {
		if old.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, &series{labels: labelString(labels), counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for exposing totals an existing atomic already maintains
// without double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	r.register(name, help, TypeCounter, &series{labels: labelString(labels), counterFn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, &series{labels: labelString(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn may take locks (it runs on the scraper, never on a recording
// hot path) but must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, TypeGauge, &series{labels: labelString(labels), gaugeFn: fn})
}

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := &Histogram{}
	r.register(name, help, TypeHistogram, &series{labels: labelString(labels), hist: h})
	return h
}

// SeriesSnapshot is one series' scrape-time view.
type SeriesSnapshot struct {
	// Labels is the rendered label block without braces ("" for none).
	Labels string
	// Value is the sample for counter/gauge series; IsInt reports whether
	// it is an exact integer (rendered without a decimal point).
	Value float64
	IsInt bool
	// Hist is set for histogram series instead of Value.
	Hist *HistSnapshot
}

// FamilySnapshot is one metric family's scrape-time view.
type FamilySnapshot struct {
	Name, Help, Type string
	Series           []SeriesSnapshot
}

// Gather snapshots every registered metric, families sorted by name and
// series by label block — the deterministic order the text exposition
// renders in.
func (r *Registry) Gather() []FamilySnapshot {
	// Copy the series lists under the lock: registration may happen at
	// any time (per-graph series register lazily on first use), and the
	// value callbacks below must run unlocked (they may take other
	// locks).
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, &family{
			name: f.name, help: f.help, typ: f.typ,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		ss := f.series
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			snap := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.counter != nil:
				snap.Value, snap.IsInt = float64(s.counter.Value()), true
			case s.counterFn != nil:
				snap.Value, snap.IsInt = float64(s.counterFn()), true
			case s.gauge != nil:
				snap.Value, snap.IsInt = float64(s.gauge.Value()), true
			case s.gaugeFn != nil:
				snap.Value = s.gaugeFn()
			case s.hist != nil:
				h := s.hist.Snapshot()
				snap.Hist = &h
			}
			fs.Series = append(fs.Series, snap)
		}
		out = append(out, fs)
	}
	return out
}
