// Package obs is the repository's dependency-free observability core:
// monotonic counters, gauges, lock-free log-bucketed latency histograms,
// a span primitive for phase tracing, a metric registry rendered by the
// sibling package promtext (Prometheus text exposition), and a leveled
// structured logger.
//
// The design constraint is the same one the serving stack lives under:
// the instrumented scalar and batched query paths must stay zero
// allocations per operation, so every record primitive here is
// allocation-free and cheap enough to sit on a nanosecond-scale hot path
// (a histogram observation is two uncontended atomic adds, ~10–20ns; a
// counter add is one). Like internal/epoch's reader slots, the mutable
// cells are sharded and padded out to 128 bytes so concurrent recorders
// never false-share a cacheline; merging across shards happens only at
// scrape time, which is the pop_setbench discipline — measurement cost
// lives on the (rare) observer, not the (hot) observed.
//
// Histograms bucket by powers of two over nanoseconds: an observation of
// d nanoseconds lands in bucket bits.Len64(d), i.e. bucket b spans
// [2^(b-1), 2^b). 64 finite buckets cover 1ns through ~292 years, which
// is every latency this repository can produce, with no configuration
// and a branch-free bucket computation.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards is the recorder shard count, a power of two. Shards exist to
// keep concurrent recorders off each other's cachelines; eight covers
// the container fleet's core counts without bloating scrape-time merges.
const numShards = 8

// shardIdx picks a recorder's shard from the address of its stack frame:
// distinct goroutines run on distinct stacks, so hashing a frame address
// spreads concurrent recorders across shards with zero per-goroutine
// state and zero allocations. The value is only a placement hint — any
// index is correct, collisions merely share a cacheline — so a goroutine
// whose stack moves simply starts using another shard.
func shardIdx() int {
	var x byte
	a := uintptr(unsafe.Pointer(&x))
	return int((uint64(a>>4) * 0x9E3779B97F4A7C15) >> 61)
}

// cell is one shard of a Counter: a 128-byte-padded atomic so recorders
// on different shards never false-share (the padding covers the
// adjacent-line prefetcher, like internal/epoch's reader slots).
type cell struct {
	n atomic.Int64
	_ [120]byte
}

// Counter is a monotonic counter, sharded so concurrent Add calls on
// different goroutines do not contend. The zero value is ready to use;
// register it with a Registry to expose it. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	cells [numShards]cell
}

// Inc adds one.
func (c *Counter) Inc() { c.cells[shardIdx()].n.Add(1) }

// Add adds n, which must be non-negative (counters are monotone; the
// scrape-side merge does not defend against negative deltas).
func (c *Counter) Add(n int64) { c.cells[shardIdx()].n.Add(n) }

// Value returns the current total across shards. Concurrent readers see
// monotonically non-decreasing values that converge to the exact total
// once recorders quiesce.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// BankSlots is the slot count of a CounterBank.
const BankSlots = 8

// bankShard is one shard of a CounterBank: eight counters on a single
// 64-byte line, padded to 128 like cell.
type bankShard struct {
	v [BankSlots]atomic.Int64
	_ [64]byte
}

// CounterBank is up to eight monotonic counters that are flushed
// together: one shard pick, then one atomic add per non-zero slot, all
// landing on a single cacheline. It exists for hot paths that update a
// small family of related counters per event — a batch flushing six
// per-op volumes through six separate Counters would pay six shard
// hashes and dirty six cachelines; through a bank it pays one and one.
// The zero value is ready to use; expose each slot with
// Registry.CounterFunc over Value.
type CounterBank struct {
	shards [numShards]bankShard
}

// Flush adds each non-negative vals[i] to slot i. Zero slots cost one
// register test each.
func (b *CounterBank) Flush(vals *[BankSlots]int64) {
	sh := &b.shards[shardIdx()]
	for i, v := range vals {
		if v != 0 {
			sh.v[i].Add(v)
		}
	}
}

// Value returns slot i's total across shards, with the same monotone
// convergence as Counter.Value.
func (b *CounterBank) Value(i int) int64 {
	var t int64
	for s := range b.shards {
		t += b.shards[s].v[i].Load()
	}
	return t
}

// Gauge is a settable instantaneous value. The zero value is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the number of histogram buckets: 64 finite power-of-two
// buckets over nanoseconds plus one overflow (+Inf) bucket at index 64.
const NumBuckets = 65

// histShard is one shard of a Histogram, padded to a multiple of 128
// bytes so shards never share a cacheline pair.
type histShard struct {
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
	_       [112]byte
}

// Histogram is a lock-free latency histogram with power-of-two buckets
// over nanoseconds, sharded like Counter. Observations are two atomic
// adds on a private shard; the merge across shards happens only in
// Snapshot (scrape time). The zero value is ready to use; all methods
// are safe for concurrent use and allocation-free.
type Histogram struct {
	shards [numShards]histShard
}

// Observe records one duration. Negative durations (clock steps) record
// as zero rather than corrupting a bucket index.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s := &h.shards[shardIdx()]
	s.buckets[bits.Len64(uint64(ns))].Add(1)
	s.sum.Add(ns)
}

// HistSnapshot is a merged point-in-time view of a Histogram.
type HistSnapshot struct {
	// Buckets[b] counts observations in [2^(b-1), 2^b) ns; Buckets[64]
	// is the overflow bucket (>= 2^63 ns).
	Buckets [NumBuckets]uint64
	// Count is the total number of observations (the sum of Buckets).
	Count uint64
	// SumNs is the sum of all observed durations in nanoseconds.
	SumNs int64
}

// Snapshot merges the shards into one view. Concurrent with recorders it
// is a consistent-enough read for monitoring: counts are monotone across
// successive snapshots and exact once recorders quiesce (an in-flight
// observation may be counted in a bucket before its sum lands, or vice
// versa, for the duration of that observation only).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.shards {
		sh := &h.shards[i]
		s.SumNs += sh.sum.Load()
		for b := range sh.buckets {
			n := sh.buckets[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
	}
	return s
}

// BucketUpper returns bucket b's inclusive upper bound in seconds:
// 2^b nanoseconds for the finite buckets (every integer duration in the
// bucket is strictly below it), +Inf for the overflow bucket.
func BucketUpper(b int) float64 {
	if b >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(b)) / 1e9
}

// Span measures one operation into an optional Histogram — the
// phase-tracing primitive. A Span is a value (no allocation):
//
//	sp := obs.StartSpan(buildHist)
//	... do the work ...
//	d := sp.End() // records into buildHist and returns the duration
//
// A nil histogram makes End a pure stopwatch, which is how callers time
// phases they record elsewhere (e.g. the build trace ring buffer).
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan starts a span recording into h (nil = stopwatch only).
func StartSpan(h *Histogram) Span { return Span{h: h, t0: time.Now()} }

// End stops the span, records the elapsed time into the histogram (if
// any), and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.t0)
	if s.h != nil {
		s.h.Observe(d)
	}
	return d
}
