package bctree

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func build(t *testing.T, g *graph.Graph, seed uint64) *Index {
	t.Helper()
	return New(g, core.BCC(g, core.Options{Seed: seed}))
}

func TestPathGraph(t *testing.T) {
	// 0-1-2-3-4: every internal vertex is a cut, every edge a bridge.
	g := gen.Chain(5)
	x := build(t, g, 1)
	if x.NumBlocks() != 4 || x.NumCutVertices() != 3 || x.NumBridges() != 4 || x.NumTwoECC() != 5 {
		t.Fatalf("blocks=%d cuts=%d bridges=%d 2ecc=%d",
			x.NumBlocks(), x.NumCutVertices(), x.NumBridges(), x.NumTwoECC())
	}
	if !x.Connected(0, 4) || x.Biconnected(0, 4) || x.TwoEdgeConnected(0, 4) {
		t.Fatal("end-to-end classification wrong")
	}
	if !x.Biconnected(0, 1) {
		t.Fatal("bridge endpoints share a block")
	}
	if got := x.CutsOnPath(0, 4); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("CutsOnPath(0,4) = %v", got)
	}
	if got := x.NumCutsOnPath(0, 4); got != 3 {
		t.Fatalf("NumCutsOnPath(0,4) = %d", got)
	}
	// Endpoints are excluded even when they are cuts themselves.
	if got := x.CutsOnPath(1, 4); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CutsOnPath(1,4) = %v", got)
	}
	if got := x.NumCutsOnPath(1, 4); got != 2 {
		t.Fatalf("NumCutsOnPath(1,4) = %d", got)
	}
	if got := x.NumCutsOnPath(1, 2); got != 0 {
		t.Fatalf("NumCutsOnPath(1,2) = %d (adjacent pair)", got)
	}
	if !x.Separates(2, 0, 4) || x.Separates(2, 0, 1) || x.Separates(0, 1, 4) || x.Separates(1, 1, 4) {
		t.Fatal("Separates wrong on the path")
	}
	if got := x.NumBridgesOnPath(0, 4); got != 4 {
		t.Fatalf("NumBridgesOnPath(0,4) = %d", got)
	}
	br := x.BridgesOnPath(1, 3)
	if len(br) != 2 || br[0] != (graph.Edge{U: 1, W: 2}) || br[1] != (graph.Edge{U: 2, W: 3}) {
		t.Fatalf("BridgesOnPath(1,3) = %v", br)
	}
}

func TestCycleGraph(t *testing.T) {
	g := gen.Cycle(8)
	x := build(t, g, 2)
	if x.NumBlocks() != 1 || x.NumCutVertices() != 0 || x.NumBridges() != 0 || x.NumTwoECC() != 1 {
		t.Fatalf("cycle: blocks=%d cuts=%d bridges=%d 2ecc=%d",
			x.NumBlocks(), x.NumCutVertices(), x.NumBridges(), x.NumTwoECC())
	}
	if !x.Biconnected(0, 5) || !x.TwoEdgeConnected(0, 5) || x.NumCutsOnPath(0, 5) != 0 {
		t.Fatal("cycle pair misclassified")
	}
	if x.Separates(3, 0, 5) {
		t.Fatal("no vertex separates a cycle")
	}
}

func TestBarbell(t *testing.T) {
	// Triangle 0-1-2, bridge 2-3, square 3-4-5-6.
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0},
		{U: 2, W: 3},
		{U: 3, W: 4}, {U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 3},
	})
	x := build(t, g, 3)
	if x.NumBlocks() != 3 || x.NumCutVertices() != 2 || x.NumBridges() != 1 || x.NumTwoECC() != 2 {
		t.Fatalf("barbell: blocks=%d cuts=%d bridges=%d 2ecc=%d",
			x.NumBlocks(), x.NumCutVertices(), x.NumBridges(), x.NumTwoECC())
	}
	if got := x.CutsOnPath(0, 5); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CutsOnPath(0,5) = %v", got)
	}
	if br := x.BridgesOnPath(1, 6); len(br) != 1 || br[0] != (graph.Edge{U: 2, W: 3}) {
		t.Fatalf("BridgesOnPath(1,6) = %v", br)
	}
	if !x.TwoEdgeConnected(3, 5) || x.TwoEdgeConnected(2, 3) {
		t.Fatal("2ECC sides wrong")
	}
	if !x.Separates(2, 0, 3) || !x.Separates(3, 2, 4) || x.Separates(4, 3, 5) {
		t.Fatal("Separates wrong on the barbell")
	}
}

func TestDisconnectedAndIsolated(t *testing.T) {
	// A triangle, an isolated vertex, and a 2-path.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0},
		{U: 4, W: 5},
	})
	x := build(t, g, 4)
	if x.Connected(0, 3) || x.Connected(0, 4) || !x.Connected(4, 5) || !x.Connected(3, 3) {
		t.Fatal("component classification wrong")
	}
	if x.Biconnected(0, 4) || x.TwoEdgeConnected(0, 3) || x.NumCutsOnPath(0, 4) != 0 {
		t.Fatal("cross-component queries must be negative")
	}
	if x.Separates(1, 0, 4) {
		t.Fatal("nothing separates an already-disconnected pair")
	}
	if x.BridgesOnPath(0, 4) != nil || x.CutsOnPath(0, 4) != nil {
		t.Fatal("cross-component enumerations must be empty")
	}
}

func TestMultigraph(t *testing.T) {
	// 0=1-2 with the 0-1 edge doubled and a self-loop on 2: the doubled
	// edge is not a bridge, so 0,1 are 2-edge-connected; 1-2 is a bridge.
	g := graph.MustFromEdges(3, []graph.Edge{
		{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 2},
	})
	x := build(t, g, 5)
	if !x.TwoEdgeConnected(0, 1) || x.TwoEdgeConnected(1, 2) {
		t.Fatal("parallel edge must not be a bridge")
	}
	if x.NumBridges() != 1 || x.NumBridgesOnPath(0, 2) != 1 {
		t.Fatalf("bridges=%d onPath=%d", x.NumBridges(), x.NumBridgesOnPath(0, 2))
	}
	if !x.Separates(1, 0, 2) {
		t.Fatal("1 separates 0 from 2")
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := graph.MustFromEdges(n, nil)
		x := build(t, g, 6)
		if x.NumBlocks() != 0 || x.NumBridges() != 0 || x.NumCutVertices() != 0 {
			t.Fatalf("n=%d: edgeless graph has no blocks/cuts/bridges", n)
		}
		if n >= 2 && (x.Connected(0, 1) || x.NumCutsOnPath(0, 1) != 0) {
			t.Fatalf("n=%d: isolated vertices are not connected", n)
		}
	}
}

// TestScalarQueriesDoNotAllocate is the acceptance criterion: every
// non-enumerating query must perform zero per-query allocations.
func TestScalarQueriesDoNotAllocate(t *testing.T) {
	g := gen.CliqueChain(6, 5)
	x := build(t, g, 7)
	n := int32(g.NumVertices())
	checks := map[string]func(){
		"Connected":        func() { x.Connected(0, n-1) },
		"Biconnected":      func() { x.Biconnected(0, n-1) },
		"TwoEdgeConnected": func() { x.TwoEdgeConnected(0, n-1) },
		"Separates":        func() { x.Separates(n/2, 0, n-1) },
		"NumCutsOnPath":    func() { x.NumCutsOnPath(0, n-1) },
		"NumBridgesOnPath": func() { x.NumBridgesOnPath(0, n-1) },
		"IsCutVertex":      func() { x.IsCutVertex(n / 2) },
	}
	for name, f := range checks {
		if avg := testing.AllocsPerRun(100, f); avg != 0 {
			t.Errorf("%s allocates %.1f per query, want 0", name, avg)
		}
	}
}
