package bctree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// naiveRef answers every Index query by brute force on the edge list:
// BFS with a vertex or a single edge occurrence removed. It is the
// definitional reference — "does removing x disconnect u from v" is
// literally recomputed per query.
type naiveRef struct {
	n     int
	edges []graph.Edge
	adj   [][]arcRef // adj[v] = (neighbor, edge index)
	seen  []int32    // BFS epoch marks, reused across queries
	epoch int32
	queue []int32
}

type arcRef struct {
	to  int32
	idx int32
}

func newNaive(n int, edges []graph.Edge) *naiveRef {
	na := &naiveRef{n: n, edges: edges, adj: make([][]arcRef, n), seen: make([]int32, n)}
	for i, e := range edges {
		na.adj[e.U] = append(na.adj[e.U], arcRef{e.W, int32(i)})
		if e.U != e.W {
			na.adj[e.W] = append(na.adj[e.W], arcRef{e.U, int32(i)})
		}
	}
	return na
}

// reach reports whether v is reachable from u with vertex skipV (-1 =
// none) and edge occurrence skipE (-1 = none) removed.
func (na *naiveRef) reach(u, v, skipV int32, skipE int32) bool {
	if u == skipV || v == skipV {
		return false
	}
	if u == v {
		return true
	}
	na.epoch++
	na.seen[u] = na.epoch
	na.queue = append(na.queue[:0], u)
	for len(na.queue) > 0 {
		w := na.queue[len(na.queue)-1]
		na.queue = na.queue[:len(na.queue)-1]
		for _, a := range na.adj[w] {
			if a.to == skipV || a.idx == skipE || na.seen[a.to] == na.epoch {
				continue
			}
			if a.to == v {
				return true
			}
			na.seen[a.to] = na.epoch
			na.queue = append(na.queue, a.to)
		}
	}
	return false
}

func (na *naiveRef) connected(u, v int32) bool { return na.reach(u, v, -1, -1) }

func (na *naiveRef) separates(x, u, v int32) bool {
	return x != u && x != v && u != v && na.reach(u, v, -1, -1) && !na.reach(u, v, x, -1)
}

func (na *naiveRef) cutsOnPath(u, v int32) []int32 {
	var out []int32
	if u == v || !na.reach(u, v, -1, -1) {
		return out
	}
	for x := int32(0); x < int32(na.n); x++ {
		if x != u && x != v && !na.reach(u, v, x, -1) {
			out = append(out, x)
		}
	}
	return out
}

// biconnected: u != v share a block iff they are connected and no third
// vertex separates them.
func (na *naiveRef) biconnected(u, v int32) bool {
	if u == v || !na.reach(u, v, -1, -1) {
		return false
	}
	for x := int32(0); x < int32(na.n); x++ {
		if x != u && x != v && !na.reach(u, v, x, -1) {
			return false
		}
	}
	return true
}

func (na *naiveRef) twoEdgeConnected(u, v int32) bool {
	if u == v {
		return true
	}
	if !na.reach(u, v, -1, -1) {
		return false
	}
	for i := range na.edges {
		if !na.reach(u, v, -1, int32(i)) {
			return false
		}
	}
	return true
}

func (na *naiveRef) bridgesOnPath(u, v int32) []graph.Edge {
	var out []graph.Edge
	if u == v || !na.reach(u, v, -1, -1) {
		return out
	}
	for i, e := range na.edges {
		if !na.reach(u, v, -1, int32(i)) {
			b := e
			if b.U > b.W {
				b.U, b.W = b.W, b.U
			}
			out = append(out, b)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].W < out[b].W
	})
	return out
}

// randomInstance draws one test graph. The mix deliberately includes
// forests, multigraphs (parallel edges and self-loops), disconnected
// graphs, and the degenerate shapes.
func randomInstance(rng *rand.Rand, trial int) (int, []graph.Edge) {
	switch trial % 6 {
	case 0: // sparse random multigraph
		n := 2 + rng.Intn(40)
		m := rng.Intn(2 * n)
		return n, randomEdges(rng, n, m, true)
	case 1: // denser random simple-ish graph
		n := 2 + rng.Intn(30)
		m := rng.Intn(4 * n)
		return n, randomEdges(rng, n, m, false)
	case 2: // forest: random tree minus some edges, plus isolated vertices
		n := 2 + rng.Intn(40)
		tree := gen.RandomTree(n, uint64(trial)).Edges()
		keep := tree[:rng.Intn(len(tree)+1)]
		return n + rng.Intn(3), append([]graph.Edge{}, keep...)
	case 3: // disjoint union of small shapes
		g := gen.Disjoint(gen.Cycle(3+rng.Intn(5)), gen.Chain(2+rng.Intn(6)), gen.Star(2+rng.Intn(5)))
		return g.NumVertices() + 1, g.Edges()
	case 4: // clique chain (many cuts, no bridges)
		g := gen.CliqueChain(2+rng.Intn(3), 3+rng.Intn(3))
		return g.NumVertices(), g.Edges()
	default: // doubled-edge path: parallel edges shadowing bridges
		n := 3 + rng.Intn(10)
		var edges []graph.Edge
		for v := 0; v < n-1; v++ {
			edges = append(edges, graph.Edge{U: int32(v), W: int32(v + 1)})
			if rng.Intn(2) == 0 {
				edges = append(edges, graph.Edge{U: int32(v), W: int32(v + 1)})
			}
		}
		return n, edges
	}
}

func randomEdges(rng *rand.Rand, n, m int, multi bool) []graph.Edge {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
		if !multi && u == w {
			continue
		}
		edges = append(edges, graph.Edge{U: u, W: w})
	}
	if multi {
		for i := 0; i+1 < len(edges) && i < 3; i++ {
			edges = append(edges, edges[rng.Intn(len(edges))]) // parallel copies
		}
	}
	return edges
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalEdges(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkPair cross-checks every Index query for one vertex pair against
// the naive reference.
func checkPair(t *testing.T, x *Index, na *naiveRef, u, v int32, rng *rand.Rand) {
	t.Helper()
	if got, want := x.Connected(u, v), na.connected(u, v); got != want {
		t.Fatalf("Connected(%d,%d) = %v, want %v", u, v, got, want)
	}
	if got, want := x.TwoEdgeConnected(u, v), na.twoEdgeConnected(u, v); got != want {
		t.Fatalf("TwoEdgeConnected(%d,%d) = %v, want %v", u, v, got, want)
	}
	if u != v {
		if got, want := x.Biconnected(u, v), na.biconnected(u, v); got != want {
			t.Fatalf("Biconnected(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
	wantCuts := na.cutsOnPath(u, v)
	if got := x.CutsOnPath(u, v); !equalInt32(got, wantCuts) {
		t.Fatalf("CutsOnPath(%d,%d) = %v, want %v", u, v, got, wantCuts)
	}
	if got := x.NumCutsOnPath(u, v); got != len(wantCuts) {
		t.Fatalf("NumCutsOnPath(%d,%d) = %d, want %d", u, v, got, len(wantCuts))
	}
	wantBridges := na.bridgesOnPath(u, v)
	if got := x.BridgesOnPath(u, v); !equalEdges(got, wantBridges) {
		t.Fatalf("BridgesOnPath(%d,%d) = %v, want %v", u, v, got, wantBridges)
	}
	if got := x.NumBridgesOnPath(u, v); got != len(wantBridges) {
		t.Fatalf("NumBridgesOnPath(%d,%d) = %d, want %d", u, v, got, len(wantBridges))
	}
	// Separates against a random third vertex and against known cuts.
	c := int32(rng.Intn(x.NumVertices()))
	if got, want := x.Separates(c, u, v), na.separates(c, u, v); got != want {
		t.Fatalf("Separates(%d,%d,%d) = %v, want %v", c, u, v, got, want)
	}
	for _, c := range wantCuts {
		if !x.Separates(c, u, v) {
			t.Fatalf("Separates(%d,%d,%d) = false for an on-path cut", c, u, v)
		}
	}
}

// TestCrossRandom is the randomized cross-test: every Index query answer
// is checked against a naive BFS/recompute reference on random graphs
// including forests, multigraphs, and disconnected inputs. Run it under
// -race with GOMAXPROCS=4 (the CI race shard does) to interrogate the
// parallel build.
func TestCrossRandom(t *testing.T) {
	trials := 36
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			n, edges := randomInstance(rng, trial)
			g := graph.MustFromEdges(n, edges)
			res := core.BCC(g, core.Options{Seed: uint64(trial)})
			x := New(g, res)
			na := newNaive(n, edges)

			// Aggregate invariants.
			if x.NumBlocks() != res.NumBCC {
				t.Fatalf("NumBlocks %d != NumBCC %d", x.NumBlocks(), res.NumBCC)
			}
			if got, want := x.NumCutVertices(), len(res.ArticulationPoints()); got != want {
				t.Fatalf("NumCutVertices %d != %d", got, want)
			}
			if got, want := x.NumBridges(), len(res.Bridges(g)); got != want {
				t.Fatalf("NumBridges %d != %d", got, want)
			}

			pairs := 30
			if n < 8 {
				pairs = n * n
			}
			for p := 0; p < pairs; p++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				if p == 0 {
					v = u // always exercise the diagonal
				}
				checkPair(t, x, na, u, v, rng)
			}
		})
	}
}

// TestConcurrentQueries hammers one shared Index from many goroutines;
// under -race this proves queries are read-only and the index is safe to
// serve concurrently.
func TestConcurrentQueries(t *testing.T) {
	g := gen.Disjoint(gen.CliqueChain(4, 5), gen.Chain(30))
	x := build(t, g, 42)
	n := x.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				c := int32(rng.Intn(n))
				x.Connected(u, v)
				x.Biconnected(u, v)
				x.TwoEdgeConnected(u, v)
				x.Separates(c, u, v)
				x.NumCutsOnPath(u, v)
				x.NumBridgesOnPath(u, v)
				x.CutsOnPath(u, v)
				x.BridgesOnPath(u, v)
			}
		}(int64(w))
	}
	wg.Wait()
}
