package bctree

import (
	"repro/internal/core"
	"repro/internal/rmq"
)

// Parts is the flat-array decomposition of an Index for serialization:
// every slice the query paths touch, in a form the persist layer can
// write as snapshot sections and map back without rebuilding. The two
// sparse-table LCA structures are excluded on purpose — they are derived
// from the tour-depth arrays in O(m) with tiny constants, so FromParts
// rebuilds them instead of paying their ~2×log(m) footprint on disk.
type Parts struct {
	NodeOf      []int32
	BCPar       []int32
	BCFirst     []int32
	BCLast      []int32
	BCDepth     []int32
	BCTourDepth []int32

	ECC         []int32
	NumBridges  int
	BRComp      []int32
	BRPar       []int32
	BRFirst     []int32
	BRDepth     []int32
	BRTourDepth []int32
	BREdgeU     []int32
	BREdgeW     []int32
}

// Parts returns the index's flat arrays. The slices alias the index —
// treat them as read-only and keep the index alive while serializing.
func (x *Index) Parts() Parts {
	return Parts{
		NodeOf:      x.nodeOf,
		BCPar:       x.bcPar,
		BCFirst:     x.bcFirst,
		BCLast:      x.bcLast,
		BCDepth:     x.bcDepth,
		BCTourDepth: x.bcTourDepth,
		ECC:         x.ecc,
		NumBridges:  x.numBridges,
		BRComp:      x.brComp,
		BRPar:       x.brPar,
		BRFirst:     x.brFirst,
		BRDepth:     x.brDepth,
		BRTourDepth: x.brTourDepth,
		BREdgeU:     x.brEdgeU,
		BREdgeW:     x.brEdgeW,
	}
}

// FromParts reassembles an Index over a restored decomposition — the
// restart path. r must already carry its topology caches (see
// core.RestoreResult); p's slices are adopted as-is (for mmap-backed
// restores they alias the mapping, which must outlive the index). Only
// the two LCA sparse tables are rebuilt, from the tour depths.
func FromParts(r *core.Result, p Parts) *Index {
	return &Index{
		res:         r,
		t:           r.BlockCutTree(),
		nodeOf:      p.NodeOf,
		bcPar:       p.BCPar,
		bcFirst:     p.BCFirst,
		bcLast:      p.BCLast,
		bcDepth:     p.BCDepth,
		bcTourDepth: p.BCTourDepth,
		bcLCA:       rmq.NewMinIn(nil, p.BCTourDepth),
		ecc:         p.ECC,
		numBridges:  p.NumBridges,
		brComp:      p.BRComp,
		brPar:       p.BRPar,
		brFirst:     p.BRFirst,
		brDepth:     p.BRDepth,
		brTourDepth: p.BRTourDepth,
		brLCA:       rmq.NewMinIn(nil, p.BRTourDepth),
		brEdgeU:     p.BREdgeU,
		brEdgeW:     p.BREdgeW,
	}
}
