package bctree

// PathBlockLabels returns the decomposition labels (core.Result label
// ids) of the blocks on the block-cut tree path between u's and v's
// nodes — the blocks that merge into one when the edge {u, v} is added
// (Westbrook–Tarjan incremental biconnectivity). It walks the tree path
// like CutsOnPath, so it runs in O(path length) plus one scan over the
// labels to invert BlockOf.
//
// Returns nil when there is nothing to merge: u == v, u and v not
// connected, or fewer than two blocks on the path (u and v already
// biconnected). Callers treat nil as "fall back to a full rebuild".
func (x *Index) PathBlockLabels(u, v int32) []int32 {
	if u == v || !x.Connected(u, v) {
		return nil
	}
	a, b := x.nodeOf[u], x.nodeOf[v]
	if a == -1 || b == -1 || a == b {
		return nil
	}
	dl := x.lcaDepthBC(a, b)
	var nodes []int32
	collect := func(node int32) {
		if !x.isCutNode(node) {
			nodes = append(nodes, node)
		}
	}
	for x.bcDepth[a] > dl {
		collect(a)
		a = x.bcPar[a]
	}
	for x.bcDepth[b] > dl {
		collect(b)
		b = x.bcPar[b]
	}
	collect(a) // a == b == the LCA
	if len(nodes) < 2 {
		return nil
	}
	// Invert BlockOf for the path nodes. The path is short (its length
	// bounds the work everywhere else), so a small set + one label scan
	// beats materializing a full node→label array per index.
	set := make(map[int32]struct{}, len(nodes))
	for _, node := range nodes {
		set[node] = struct{}{}
	}
	labels := make([]int32, 0, len(nodes))
	for l := 0; l < x.res.NumLabels; l++ {
		if bn := x.t.BlockOf[l]; bn != -1 {
			if _, ok := set[bn]; ok {
				labels = append(labels, int32(l))
			}
		}
	}
	if len(labels) != len(nodes) {
		return nil
	}
	return labels
}
