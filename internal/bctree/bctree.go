// Package bctree builds an immutable connectivity-query index over a
// biconnectivity decomposition (core.Result) — the online half of the
// paper's pipeline. Computing BCC fast is the means; the block-cut tree
// is the standard substrate the applications actually query, and this
// package turns it into O(1)/O(log n) answers.
//
// The index is two rooted forests, both flattened to arrays:
//
//   - The block-cut forest (one node per block, one per articulation
//     point) answers vertex-removal questions: does deleting x disconnect
//     u from v, and which articulation points lie between them.
//   - The bridge forest (one node per 2-edge-connected component, one
//     edge per bridge) answers edge-removal questions: how many bridges
//     separate u from v, and whether they are 2-edge-connected.
//
// Construction is parallel and reuses the pipeline's own machinery: the
// forests are rooted with the Euler tour technique (internal/etour), per
// tree-node depths come from a parallel prefix sum over the tour's ±1
// depth deltas, and lowest-common-ancestor queries reduce to a range
// minimum over the tour-ordered depth array (internal/rmq) — the same
// structure the Tagging step uses for low/high. Total work is O(n + m);
// the index retains O(n) words and never aliases scratch memory.
//
// All query methods are safe for concurrent use (the index is immutable
// after New) and the scalar queries perform no allocations. Vertex
// arguments must be in [0, NumVertices()); out-of-range ids panic like an
// out-of-range slice index.
package bctree

import (
	"sort"
	"sync/atomic"

	"repro/internal/conn"
	"repro/internal/core"
	"repro/internal/etour"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/rmq"
)

// Index answers connectivity queries over one graph's decomposition.
type Index struct {
	res *core.Result
	t   *core.BlockCutTree

	// Block-cut forest, rooted. Node ids follow core.BlockCutTree: blocks
	// first, then cuts. nodeOf maps a vertex to the node representing it
	// on tree paths (its cut node if it is an articulation point, else
	// the node of the single block containing it), or -1 for vertices in
	// no block (isolated vertices).
	nodeOf      []int32
	bcPar       []int32
	bcFirst     []int32
	bcLast      []int32
	bcDepth     []int32
	bcTourDepth []int32
	bcLCA       *rmq.Min

	// Bridge forest over the 2-edge-connected components. ecc is the
	// dense 2ECC label per vertex; node ids are ecc labels. brEdgeU/W
	// record, per non-root node, the graph endpoints of the bridge to its
	// parent (-1 for roots).
	ecc         []int32
	numBridges  int
	brComp      []int32
	brPar       []int32
	brFirst     []int32
	brDepth     []int32
	brTourDepth []int32
	brLCA       *rmq.Min
	brEdgeU     []int32
	brEdgeW     []int32
}

// New builds the index for g's decomposition r. Equivalent to NewIn with
// a nil execution context.
func New(g *graph.Graph, r *core.Result) *Index { return NewIn(nil, g, r) }

// NewIn is New running on the execution context e (nil = the
// process-global default). r must be the decomposition of g.
func NewIn(e *parallel.Exec, g *graph.Graph, r *core.Result) *Index {
	n := int(g.N)
	if len(r.Label) != n {
		panic("bctree: result does not match graph (vertex counts differ)")
	}
	// Populate the Result's lazy topology caches on this build's context
	// (no-op when a serving constructor precomputed them already): the
	// index shares the cached tree, and a published snapshot must never
	// hit the lazy compute path from a query.
	r.PrecomputeTopologyIn(e)
	x := &Index{res: r, t: r.BlockCutTree()}
	t := x.t

	// ---- Block-cut forest: root, tour depths, LCA -----------------------
	nodes := t.NumNodes()
	forest := t.ForestEdges()
	cc := conn.Connectivity(t.AsGraph(), conn.Options{Seed: 0xbc7, Exec: e})
	rt := etour.RootIn(e, nodes, forest, cc.Comp, nil)
	x.bcPar, x.bcFirst, x.bcLast = rt.Parent, rt.First, rt.Last
	x.bcTourDepth = tourDepths(e, rt)
	x.bcDepth = nodeDepths(e, nodes, rt.First, x.bcTourDepth)
	x.bcLCA = rmq.NewMinIn(e, x.bcTourDepth)

	// nodeOf: cut vertices map to their cut node; non-cut non-roots to the
	// block of their label; non-cut roots to the single block they head
	// (concurrent same-head writes only happen for cut heads, whose
	// headBlock entry is never read — stored atomically to stay defined).
	x.nodeOf = make([]int32, n)
	headBlock := make([]int32, n)
	parallel.FillIn(e, headBlock, -1)
	e.For(r.NumLabels, func(l int) {
		if h := r.Head[l]; h != -1 {
			atomic.StoreInt32(&headBlock[h], t.BlockOf[l])
		}
	})
	e.For(n, func(v int) {
		switch {
		case t.CutNode[v] != -1:
			x.nodeOf[v] = t.CutNode[v]
		case r.Parent[v] != -1:
			x.nodeOf[v] = t.BlockOf[r.Label[v]]
		default:
			x.nodeOf[v] = headBlock[v]
		}
	})

	// ---- Bridge forest: 2ECC labels, root, tour depths, LCA --------------
	x.ecc = r.TwoECCIn(e, g)
	numEcc := int(prim.MaxInt32In(e, x.ecc, -1)) + 1
	bridges := r.Bridges(g)
	x.numBridges = len(bridges)
	brEdges := make([]graph.Edge, len(bridges))
	e.For(len(bridges), func(i int) {
		b := bridges[i]
		brEdges[i] = graph.Edge{U: x.ecc[b.U], W: x.ecc[b.W]}
	})
	// Contracting each 2ECC to a node and keeping one edge per bridge
	// yields a forest (a cycle through k >= 2 components would make each
	// participating bridge non-bridging).
	bg, err := graph.FromEdgesIn(e, numEcc, brEdges, nil)
	if err != nil {
		panic("bctree: bridge-tree edges out of range: " + err.Error())
	}
	bcc := conn.Connectivity(bg, conn.Options{Seed: 0xb21d, Exec: e})
	x.brComp = bcc.Comp
	rt2 := etour.RootIn(e, numEcc, brEdges, bcc.Comp, nil)
	x.brPar, x.brFirst = rt2.Parent, rt2.First
	x.brTourDepth = tourDepths(e, rt2)
	x.brDepth = nodeDepths(e, numEcc, rt2.First, x.brTourDepth)
	x.brLCA = rmq.NewMinIn(e, x.brTourDepth)
	x.brEdgeU = make([]int32, numEcc)
	x.brEdgeW = make([]int32, numEcc)
	parallel.FillIn(e, x.brEdgeU, -1)
	parallel.FillIn(e, x.brEdgeW, -1)
	e.For(len(bridges), func(i int) {
		// Each bridge is one tree edge; distinct bridges have distinct
		// child nodes, so the writes never collide.
		b := bridges[i]
		cu, cw := x.ecc[b.U], x.ecc[b.W]
		if x.brPar[cu] == cw {
			x.brEdgeU[cu], x.brEdgeW[cu] = b.U, b.W
		} else {
			x.brEdgeU[cw], x.brEdgeW[cw] = b.U, b.W
		}
	})
	return x
}

// tourDepths turns an Euler tour into per-position depths: a first
// occurrence descends (+1, or 0 at a tree root), a revisit returns to the
// parent (-1). Each tree's tour starts and ends at its root, so the
// running sum re-zeroes exactly at every tree boundary and one global
// parallel prefix sum handles the whole concatenated tour.
func tourDepths(e *parallel.Exec, rt *etour.Rooted) []int32 {
	m := len(rt.Tour)
	d := make([]int32, m)
	e.For(m, func(i int) { d[i] = tourDelta(rt, i) })
	prim.ExclusiveScanInt32In(e, d)
	e.For(m, func(i int) { d[i] += tourDelta(rt, i) })
	return d
}

func tourDelta(rt *etour.Rooted, i int) int32 {
	v := rt.Tour[i]
	if int(rt.First[v]) != i {
		return -1
	}
	if rt.Parent[v] == -1 {
		return 0
	}
	return 1
}

func nodeDepths(e *parallel.Exec, nodes int, first, tourDepth []int32) []int32 {
	d := make([]int32, nodes)
	e.For(nodes, func(v int) { d[v] = tourDepth[first[v]] })
	return d
}

// NumVertices returns the vertex count of the indexed graph.
func (x *Index) NumVertices() int { return len(x.nodeOf) }

// Result returns the decomposition the index was built from.
func (x *Index) Result() *core.Result { return x.res }

// Tree returns the underlying block-cut tree (shared, immutable).
func (x *Index) Tree() *core.BlockCutTree { return x.t }

// NumBlocks returns the number of biconnected components.
func (x *Index) NumBlocks() int { return x.t.NumBlocks }

// NumCutVertices returns the number of articulation points.
func (x *Index) NumCutVertices() int { return len(x.t.Cuts) }

// NumBridges returns the number of bridge edges.
func (x *Index) NumBridges() int { return x.numBridges }

// NumTwoECC returns the number of 2-edge-connected components.
func (x *Index) NumTwoECC() int { return len(x.brPar) }

// IsCutVertex reports whether v is an articulation point, in O(1).
func (x *Index) IsCutVertex(v int32) bool { return x.t.CutNode[v] != -1 }

// TwoECCLabel returns v's dense 2-edge-connected-component label.
func (x *Index) TwoECCLabel(v int32) int32 { return x.ecc[v] }

// Connected reports whether u and v are in the same connected component,
// in O(1): the bridge forest contracts every 2ECC, so two vertices are
// connected iff their 2ECC nodes share a bridge tree.
func (x *Index) Connected(u, v int32) bool {
	if u == v {
		return true
	}
	return x.brComp[x.ecc[u]] == x.brComp[x.ecc[v]]
}

// Biconnected reports whether u and v lie in a common block, in O(1).
func (x *Index) Biconnected(u, v int32) bool { return x.res.Biconnected(u, v) }

// TwoEdgeConnected reports whether u and v are 2-edge-connected (no
// single edge removal disconnects them), in O(1). True for u == v.
func (x *Index) TwoEdgeConnected(u, v int32) bool { return x.ecc[u] == x.ecc[v] }

// lcaDepthBC returns the depth of the lowest common ancestor of tree
// nodes a and b (which must be in the same block-cut tree): the minimum
// tour depth between their first occurrences.
func (x *Index) lcaDepthBC(a, b int32) int32 {
	fa, fb := x.bcFirst[a], x.bcFirst[b]
	if fa > fb {
		fa, fb = fb, fa
	}
	return x.bcLCA.Query(int(fa), int(fb))
}

func (x *Index) lcaDepthBR(a, b int32) int32 {
	fa, fb := x.brFirst[a], x.brFirst[b]
	if fa > fb {
		fa, fb = fb, fa
	}
	return x.brLCA.Query(int(fa), int(fb))
}

func (x *Index) isCutNode(node int32) bool { return int(node) >= x.t.NumBlocks }

// isAncBC reports whether block-cut node anc is an ancestor of node d
// (inclusive). Subtrees are contiguous tour ranges, and different trees
// occupy disjoint ranges, so this is also a same-tree test.
func (x *Index) isAncBC(anc, d int32) bool {
	return x.bcFirst[anc] <= x.bcFirst[d] && x.bcLast[d] <= x.bcLast[anc]
}

// segCuts counts the cut nodes on a k-edge tree path that starts at a
// node of the given kind and walks rootward: block and cut nodes strictly
// alternate along any block-cut tree path.
func segCuts(k int32, startIsCut bool) int32 {
	if startIsCut {
		return k/2 + 1
	}
	return (k + 1) / 2
}

// Separates reports whether removing vertex c disconnects u from v, in
// O(1): true iff c is an articulation point whose cut node lies on the
// block-cut tree path between u's and v's nodes. False when c is u or v,
// when u == v, or when u and v are not connected to begin with.
func (x *Index) Separates(c, u, v int32) bool {
	if c == u || c == v || u == v {
		return false
	}
	cn := x.t.CutNode[c]
	if cn == -1 || !x.Connected(u, v) {
		return false
	}
	a, b := x.nodeOf[u], x.nodeOf[v]
	if x.bcDepth[cn] < x.lcaDepthBC(a, b) {
		return false
	}
	return x.isAncBC(cn, a) || x.isAncBC(cn, b)
}

// NumCutsOnPath counts the articulation points other than u and v whose
// removal disconnects u from v, in O(1): the cut nodes on the block-cut
// tree path between their nodes, counted arithmetically from the path's
// endpoint depths, its LCA depth, and the strict block/cut alternation.
// 0 when u == v or when u and v are not connected.
func (x *Index) NumCutsOnPath(u, v int32) int {
	if u == v || !x.Connected(u, v) {
		return 0
	}
	a, b := x.nodeOf[u], x.nodeOf[v]
	dl := x.lcaDepthBC(a, b)
	ka, kb := x.bcDepth[a]-dl, x.bcDepth[b]-dl
	cnt := segCuts(ka, x.isCutNode(a)) + segCuts(kb, x.isCutNode(b))
	if x.isCutNode(a) == (ka%2 == 0) {
		cnt-- // the LCA is a cut node, counted by both segments
	}
	if x.t.CutNode[u] != -1 {
		cnt--
	}
	if x.t.CutNode[v] != -1 {
		cnt--
	}
	return int(cnt)
}

// CutsOnPath enumerates, in increasing vertex order, the articulation
// points NumCutsOnPath counts. It walks the tree path, so it runs in
// O(path length) and allocates only the output.
func (x *Index) CutsOnPath(u, v int32) []int32 {
	if u == v || !x.Connected(u, v) {
		return nil
	}
	a, b := x.nodeOf[u], x.nodeOf[v]
	dl := x.lcaDepthBC(a, b)
	var out []int32
	collect := func(node int32) {
		if x.isCutNode(node) {
			if w := x.t.Cuts[int(node)-x.t.NumBlocks]; w != u && w != v {
				out = append(out, w)
			}
		}
	}
	for x.bcDepth[a] > dl {
		collect(a)
		a = x.bcPar[a]
	}
	for x.bcDepth[b] > dl {
		collect(b)
		b = x.bcPar[b]
	}
	collect(a) // a == b == the LCA
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumBridgesOnPath counts the bridges every u–v route must cross — the
// edges whose removal disconnects u from v — in O(1): the length of the
// bridge-forest path between their 2ECC nodes. 0 when u == v or when u
// and v are not connected.
func (x *Index) NumBridgesOnPath(u, v int32) int {
	if u == v || !x.Connected(u, v) {
		return 0
	}
	a, b := x.ecc[u], x.ecc[v]
	return int(x.brDepth[a] + x.brDepth[b] - 2*x.lcaDepthBR(a, b))
}

// BridgesOnPath enumerates the bridges NumBridgesOnPath counts as graph
// edges (U < W), sorted. It walks the bridge-forest path, so it runs in
// O(path length) and allocates only the output.
func (x *Index) BridgesOnPath(u, v int32) []graph.Edge {
	if u == v || !x.Connected(u, v) {
		return nil
	}
	a, b := x.ecc[u], x.ecc[v]
	dl := x.lcaDepthBR(a, b)
	var out []graph.Edge
	for x.brDepth[a] > dl {
		out = append(out, graph.Edge{U: x.brEdgeU[a], W: x.brEdgeW[a]})
		a = x.brPar[a]
	}
	for x.brDepth[b] > dl {
		out = append(out, graph.Edge{U: x.brEdgeU[b], W: x.brEdgeW[b]})
		b = x.brPar[b]
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].W < out[j].W
	})
	return out
}
