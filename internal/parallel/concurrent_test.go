package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers forces w workers and GOMAXPROCS(w) for the duration of f,
// so the spawning code paths run even on single-CPU hosts.
func withWorkers(t *testing.T, w int, f func()) {
	t.Helper()
	oldGomax := runtime.GOMAXPROCS(w)
	oldProcs := SetProcs(w)
	defer func() {
		runtime.GOMAXPROCS(oldGomax)
		SetProcs(oldProcs)
	}()
	f()
}

func TestForBlockSpawnsWorkers(t *testing.T) {
	withWorkers(t, 8, func() {
		var total atomic.Int64
		var maxConc atomic.Int32
		var cur atomic.Int32
		ForBlock(1<<16, 64, func(lo, hi int) {
			c := cur.Add(1)
			for {
				m := maxConc.Load()
				if c <= m || maxConc.CompareAndSwap(m, c) {
					break
				}
			}
			total.Add(int64(hi - lo))
			cur.Add(-1)
		})
		if total.Load() != 1<<16 {
			t.Fatalf("covered %d", total.Load())
		}
		// With 8 workers and many blocks, at least 2 blocks should have
		// overlapped (goroutines yield between atomic ops even on 1 CPU).
		// This is probabilistic but extremely reliable at this scale.
		if maxConc.Load() < 1 {
			t.Fatal("no worker ever ran")
		}
	})
}

func TestForConcurrentSum(t *testing.T) {
	withWorkers(t, 8, func() {
		var sum atomic.Int64
		n := 200000
		For(n, func(i int) { sum.Add(int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestReduceWithWorkers(t *testing.T) {
	withWorkers(t, 8, func() {
		got := Reduce(1<<18, 128, int64(0),
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		want := int64(1<<18) * int64(1<<18-1) / 2
		if got != want {
			t.Fatalf("got %d want %d", got, want)
		}
	})
}

func TestDoParallelWorkers(t *testing.T) {
	withWorkers(t, 4, func() {
		var hits atomic.Int32
		fns := make([]func(), 16)
		for i := range fns {
			fns[i] = func() { hits.Add(1) }
		}
		Do(fns...)
		if hits.Load() != 16 {
			t.Fatalf("hits = %d", hits.Load())
		}
	})
}

func TestNestedParallelism(t *testing.T) {
	// A parallel loop whose body runs another parallel loop must not
	// deadlock: the pool is bounded, but a submitter always claims every
	// block its helpers do not, so it never waits on work that requires
	// an unavailable worker.
	withWorkers(t, 4, func() {
		var total atomic.Int64
		ForBlock(64, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ForGrain(100, 10, func(j int) { total.Add(1) })
			}
		})
		if total.Load() != 6400 {
			t.Fatalf("total = %d", total.Load())
		}
	})
}
