package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// trackConc runs a loop of n blocks on e recording the peak number of
// concurrently-executing blocks, and returns (covered iterations, peak).
func trackConc(e *Exec, n int) (int64, int32) {
	var total atomic.Int64
	var cur, peak atomic.Int32
	e.ForBlock(n, 1, func(lo, hi int) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		for i := lo; i < hi; i++ {
			total.Add(1)
		}
		cur.Add(-1)
	})
	return total.Load(), peak.Load()
}

func TestExecPrivatePool(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	e := NewExec(4)
	defer e.Close()
	if e.Procs() != 4 {
		t.Fatalf("Procs() = %d, want 4", e.Procs())
	}
	covered, _ := trackConc(e, 1000)
	if covered != 1000 {
		t.Fatalf("covered %d iterations, want 1000", covered)
	}
}

func TestExecLimitCapsWorkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	e := NewExec(8)
	defer e.Close()
	for _, k := range []int{1, 2, 3} {
		le := e.Limit(k)
		if le.Procs() != k {
			t.Fatalf("Limit(%d).Procs() = %d", k, le.Procs())
		}
		covered, peak := trackConc(le, 500)
		if covered != 500 {
			t.Fatalf("Limit(%d): covered %d", k, covered)
		}
		// The cap is a hard bound: at most k blocks of one loop in flight.
		if int(peak) > k {
			t.Fatalf("Limit(%d): observed %d concurrent blocks", k, peak)
		}
	}
	// Limit can only shrink: a larger or non-positive k returns e itself.
	if e.Limit(100) != e || e.Limit(0) != e || e.Limit(-3) != e {
		t.Fatal("Limit failed to return the receiver for non-shrinking caps")
	}
}

func TestLimitOfDefaultContext(t *testing.T) {
	withWorkers(t, 8, func() {
		before := Procs()
		le := Limit(2)
		if le.Procs() != 2 {
			t.Fatalf("Limit(2).Procs() = %d", le.Procs())
		}
		covered, peak := trackConc(le, 500)
		if covered != 500 {
			t.Fatalf("covered %d", covered)
		}
		if peak > 2 {
			t.Fatalf("observed %d concurrent blocks under Limit(2)", peak)
		}
		if Procs() != before {
			t.Fatalf("Limit mutated global Procs: %d -> %d", before, Procs())
		}
	})
}

func TestExecCloseRunsInline(t *testing.T) {
	e := NewExec(4)
	e.Close()
	e.Close() // idempotent
	var sum atomic.Int64
	e.For(1000, func(i int) { sum.Add(int64(i)) })
	if want := int64(1000*999) / 2; sum.Load() != want {
		t.Fatalf("sum after Close = %d, want %d", sum.Load(), want)
	}
	if e.Procs() != 4 {
		// Procs reports the budget; Close only releases the goroutines.
		t.Fatalf("Procs after Close = %d", e.Procs())
	}
}

func TestExecSingleWorkerInline(t *testing.T) {
	e := NewExec(1)
	defer e.Close()
	var sum int64 // intentionally unsynchronized: must run inline
	e.ForBlock(10000, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += int64(i)
		}
	})
	if want := int64(10000*9999) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestConcurrentExecsIsolated runs several contexts of different sizes at
// once — private pools, Limit views of private pools, Limit views of the
// default pool — each with nested loops and generic primitives, under
// -race. This is the serving pattern the old single-global-pool substrate
// could not express.
func TestConcurrentExecsIsolated(t *testing.T) {
	withWorkers(t, 4, func() {
		priv := NewExec(3)
		defer priv.Close()
		execs := []*Exec{
			nil,           // default context
			Limit(2),      // capped view of the default pool
			priv,          // private pool
			priv.Limit(2), // capped view of the private pool
			NewExec(2),    // second private pool
		}
		defer execs[4].Close()
		const n = 20000
		var wg sync.WaitGroup
		for gi := 0; gi < 8; gi++ {
			e := execs[gi%len(execs)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					buf := make([]int32, n)
					FillIn(e, buf, 1)
					got := ReduceIn(e, n, 64, int64(0),
						func(lo, hi int) int64 {
							var s int64
							for i := lo; i < hi; i++ {
								s += int64(buf[i])
							}
							return s
						},
						func(a, b int64) int64 { return a + b })
					if got != n {
						t.Errorf("reduce = %d, want %d", got, n)
						return
					}
					// Nested loop on the same context.
					var inner atomic.Int64
					e.ForBlock(40, 1, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							e.ForGrain(50, 10, func(int) { inner.Add(1) })
						}
					})
					if inner.Load() != 2000 {
						t.Errorf("nested total = %d", inner.Load())
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}

// TestExecConcurrentWithSetProcs checks that per-run contexts stay correct
// while the default pool is being resized underneath the Limit views.
func TestExecConcurrentWithSetProcs(t *testing.T) {
	withWorkers(t, 4, func() {
		stop := make(chan struct{})
		var resizer sync.WaitGroup
		resizer.Add(1)
		go func() {
			defer resizer.Done()
			sizes := []int{2, 4, 1, 3}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					SetProcs(sizes[i%len(sizes)])
				}
			}
		}()
		var wg sync.WaitGroup
		for gi := 0; gi < 4; gi++ {
			k := gi%3 + 1
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 50; rep++ {
					covered, peak := trackConc(Limit(k), 300)
					if covered != 300 {
						t.Errorf("covered %d", covered)
						return
					}
					if int(peak) > k {
						t.Errorf("cap %d exceeded: %d", k, peak)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(stop)
		resizer.Wait()
	})
}
