package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestWithContextBackgroundIsFree: a background (never-cancellable)
// context must not derive a new Exec — the happy path stays the exact
// same code the pre-cancellation loops ran.
func TestWithContextBackgroundIsFree(t *testing.T) {
	if e := WithContext(context.Background()); e != nil {
		t.Fatalf("WithContext(Background) on the default context = %v, want nil", e)
	}
	ex := NewExec(4)
	defer ex.Close()
	if d := ex.WithContext(context.TODO()); d != ex {
		t.Fatal("WithContext(TODO) must return the receiver")
	}
	if d := ex.WithContext(nil); d != ex {
		t.Fatal("WithContext(nil) must return the receiver")
	}
}

// TestForBlockCancelInline: on a 1-worker context the loop runs inline
// but must still honor block-granularity cancellation deterministically.
func TestForBlockCancelInline(t *testing.T) {
	ex := NewExec(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := ex.WithContext(ctx)

	var blocks int
	e.ForBlock(10_000, 100, func(lo, hi int) {
		blocks++
		if blocks == 3 {
			cancel()
		}
	})
	if blocks != 3 {
		t.Fatalf("executed %d blocks after cancel at block 3, want exactly 3", blocks)
	}
	if !e.Canceled() || e.Err() == nil {
		t.Fatal("Canceled/Err must report the cancellation")
	}
	// A fresh loop on the already-canceled context runs nothing.
	ran := false
	e.ForBlock(50, 10, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("loop on canceled context must not run any block")
	}
}

// TestForBlockCancelPooled: cancellation mid-loop on a real pool stops
// the remaining blocks (bounded by the workers already mid-block).
func TestForBlockCancelPooled(t *testing.T) {
	ex := NewExec(4)
	defer ex.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := ex.WithContext(ctx)

	var executed atomic.Int32
	// 16 blocks (4 workers x4); cancel on the very first executed block.
	// At most the blocks already claimed by the 4 concurrent workers can
	// still run, so well under half of the loop executes.
	e.ForBlock(16, 1, func(lo, hi int) {
		if executed.Add(1) == 1 {
			cancel()
		}
	})
	if got := executed.Load(); got > 8 {
		t.Fatalf("executed %d of 16 blocks after first-block cancel", got)
	}
	if err := e.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

// TestCancelDeadline: a deadline context reports DeadlineExceeded, the
// error serving layers map to 504.
func TestCancelDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	e := WithContext(ctx)
	<-ctx.Done()
	ran := false
	e.ForBlock(1_000_000, 1, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("expired deadline must skip the loop entirely")
	}
	if err := e.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want DeadlineExceeded", err)
	}
}

// TestLimitKeepsContext: worker-cap derivation must not drop the
// cancellation context (the Runner stacks Limit over WithContext).
func TestLimitKeepsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := WithContext(ctx).Limit(2)
	if !e.Canceled() {
		t.Fatal("Limit dropped the context")
	}
}

// TestLoopPanicPropagates: a panic in a body block — typically on a pool
// worker goroutine — must not kill the process or deadlock the join; the
// submitter re-panics a *Panic carrying the original value.
func TestLoopPanicPropagates(t *testing.T) {
	ex := NewExec(4)
	defer ex.Close()

	got := catchPanic(t, func() {
		ex.ForBlock(64, 1, func(lo, hi int) {
			if lo == 16 {
				panic("boom-16")
			}
		})
	})
	p, ok := got.(*Panic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *parallel.Panic", got, got)
	}
	if p.Value != "boom-16" {
		t.Fatalf("Panic.Value = %v, want boom-16", p.Value)
	}
	if len(p.Stack) == 0 {
		t.Fatal("Panic.Stack empty")
	}

	// The pool must remain fully serviceable after a captured panic.
	var n atomic.Int32
	ex.ForBlock(128, 1, func(lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 128 {
		t.Fatalf("pool broken after panic: %d/128 iterations", n.Load())
	}
}

// TestLoopPanicStopsRemainingBlocks: once a block panics the rest of the
// loop is skipped, so a poisoned build stops burning workers.
func TestLoopPanicStopsRemainingBlocks(t *testing.T) {
	ex := NewExec(2)
	defer ex.Close()
	var executed atomic.Int32
	catchPanic(t, func() {
		ex.ForBlock(16, 1, func(lo, hi int) {
			if executed.Add(1) == 1 {
				panic("first block")
			}
		})
	})
	if got := executed.Load(); got > 4 {
		t.Fatalf("executed %d of 16 blocks after first-block panic", got)
	}
}

// TestNestedLoopPanic: a panic inside a nested parallel loop unwinds
// through both joins to the outermost submitter.
func TestNestedLoopPanic(t *testing.T) {
	ex := NewExec(4)
	defer ex.Close()
	got := catchPanic(t, func() {
		ex.ForBlock(8, 1, func(lo, hi int) {
			ex.ForBlock(8, 1, func(ilo, ihi int) {
				if lo == 2 && ilo == 2 {
					panic("nested")
				}
			})
		})
	})
	if got == nil {
		t.Fatal("nested panic did not propagate")
	}
}

// TestInlinePanicPropagates: the inline (1-worker / small-n) paths keep
// ordinary panic semantics on the submitting goroutine.
func TestInlinePanicPropagates(t *testing.T) {
	ex := NewExec(1)
	got := catchPanic(t, func() {
		ex.ForBlock(8, 1, func(lo, hi int) { panic("inline") })
	})
	if got == nil {
		t.Fatal("inline panic did not propagate")
	}
}

func catchPanic(t *testing.T, f func()) (recovered any) {
	t.Helper()
	defer func() { recovered = recover() }()
	f()
	t.Fatal("function did not panic")
	return nil
}
