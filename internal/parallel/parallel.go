// Package parallel provides the fork-join execution layer used by every
// algorithm in this repository.
//
// The paper assumes the binary-forking work-span model with a randomized
// work-stealing scheduler (ParlayLib). Goroutines are too heavy for
// per-element binary forking, so this package exposes *chunked* fork-join:
// loops are split into blocks of at least a grain size and blocks are
// distributed over GOMAXPROCS workers with an atomic work counter (a simple
// form of dynamic load balancing). This preserves work-efficiency and keeps
// span within logarithmic factors of the model for the loop shapes used here.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// procs is the number of workers used by the primitives in this package.
// It defaults to runtime.GOMAXPROCS(0) and can be lowered for scalability
// experiments (Fig. 4 of the paper).
var procs atomic.Int32

func init() {
	procs.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetProcs sets the number of parallel workers. p < 1 resets to GOMAXPROCS.
// It returns the previous value.
func SetProcs(p int) int {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	return int(procs.Swap(int32(p)))
}

// Procs reports the current number of parallel workers.
func Procs() int { return int(procs.Load()) }

// DefaultGrain is the per-block minimum number of loop iterations. It is
// sized so that the per-block scheduling overhead (~hundreds of ns) is
// amortized over enough work.
const DefaultGrain = 1024

// For runs body(i) for every i in [0, n) in parallel with the default grain.
func For(n int, body func(i int)) {
	ForGrain(n, DefaultGrain, body)
}

// ForGrain runs body(i) for every i in [0, n) in parallel. Blocks have at
// least grain iterations; a loop with n <= grain runs sequentially inline.
func ForGrain(n, grain int, body func(i int)) {
	ForBlock(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock partitions [0, n) into blocks of at least grain iterations and
// runs body on each block in parallel. Workers claim blocks dynamically via
// an atomic counter, so irregular per-block costs are load balanced.
func ForBlock(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	nBlocks := (n + grain - 1) / grain
	// Use ~4 blocks per worker so dynamic claiming can balance load
	// without making blocks so small that scheduling dominates.
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	if nBlocks < 2 {
		body(0, n)
		return
	}
	workers := p
	if workers > nBlocks {
		workers = nBlocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo := b * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Do runs the given functions in parallel and waits for all of them.
// It is the n-ary analogue of the model's binary fork.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Procs() == 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, f := range fns[1:] {
		go func() {
			defer wg.Done()
			f()
		}()
	}
	fns[0]()
	wg.Wait()
}

// Reduce computes merge over leaf values of the blocks of [0, n).
// id is the identity of merge. merge must be associative.
func Reduce[T any](n, grain int, id T, leaf func(lo, hi int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		return merge(id, leaf(0, n))
	}
	nBlocks := (n + grain - 1) / grain
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	partial := make([]T, nBlocks)
	ForBlock(nBlocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			partial[b] = leaf(lo, hi)
		}
	})
	out := id
	for _, v := range partial {
		out = merge(out, v)
	}
	return out
}

// MapInt32 fills dst[i] = f(i) for i in [0, n) in parallel.
func MapInt32(dst []int32, f func(i int) int32) {
	For(len(dst), func(i int) { dst[i] = f(i) })
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](dst []T, v T) {
	ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota fills dst[i] = base + i in parallel.
func Iota(dst []int32, base int32) {
	For(len(dst), func(i int) { dst[i] = base + int32(i) })
}

// Copy copies src into dst in parallel. Panics if lengths differ.
func Copy[T any](dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel.Copy: length mismatch")
	}
	ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
