// Package parallel provides the fork-join execution layer used by every
// algorithm in this repository.
//
// The paper assumes the binary-forking work-span model with a randomized
// work-stealing scheduler (ParlayLib). Goroutines are too heavy for
// per-element binary forking, so this package exposes *chunked* fork-join:
// loops are split into blocks of at least a grain size and blocks are
// claimed dynamically over an atomic work counter (a simple form of dynamic
// load balancing). This preserves work-efficiency and keeps span within
// logarithmic factors of the model for the loop shapes used here.
//
// # Persistent worker pool
//
// Blocks are executed by a lazily-started persistent pool of Procs()-1
// worker goroutines (the submitting goroutine is always the remaining
// worker). Workers park on a buffered channel that doubles as a wake-up
// semaphore: submitting a loop enqueues at most min(pool size, blocks-1)
// wake tokens carrying the task descriptor, so a parked worker is woken
// with one channel receive instead of a fresh goroutine spawn and stack.
// Task descriptors are recycled through a sync.Pool guarded by a reference
// count, so a parallel loop costs O(1) allocations and zero goroutine
// creations in steady state — the scheduling overhead the paper's ParlayLib
// baseline never pays, removed.
//
// The pool is generational: SetProcs retires the current generation (its
// workers exit once idle) and the next parallel loop lazily starts a new
// one with the updated size. Loops already in flight on a retired
// generation stay correct — the submitter claims every block its helpers
// do not — so SetProcs may be called concurrently with running loops.
// SetProcs(1) stops the pool entirely; all primitives then run inline.
//
// # Work/span accounting
//
// For a loop of n iterations over p workers, claiming is O(n/grain) atomic
// adds of shared-counter work and the span is O(n·grain/p + grain) plus a
// constant number of channel operations; with the default ~4·p blocks per
// loop the span stays within a constant factor of n/p while still load
// balancing irregular blocks. Nested parallel loops are deadlock-free by
// construction: a submitter never waits on work it could not finish itself,
// because it participates in its own task until the block counter is
// exhausted, and parked workers may adopt nested tasks.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// procs is the number of workers used by the primitives in this package.
// It defaults to runtime.GOMAXPROCS(0) and can be lowered for scalability
// experiments (Fig. 4 of the paper).
var procs atomic.Int32

func init() {
	procs.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetProcs sets the number of parallel workers. p < 1 resets to GOMAXPROCS.
// It returns the previous value. The worker pool is resized lazily: the
// current generation of workers is told to retire and the next parallel
// loop starts a fresh one. Safe to call while loops are running.
func SetProcs(p int) int {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	prev := int(procs.Swap(int32(p)))
	if prev != p {
		poolMu.Lock()
		if pl := curPool.Load(); pl != nil && pl.size != p-1 {
			close(pl.stop)
			curPool.Store(nil)
		}
		poolMu.Unlock()
	}
	return prev
}

// Procs reports the current number of parallel workers.
func Procs() int { return int(procs.Load()) }

// DefaultGrain is the per-block minimum number of loop iterations. It is
// sized so that the per-block scheduling overhead (~hundreds of ns) is
// amortized over enough work.
const DefaultGrain = 1024

// task is one parallel loop in flight: a body, a partition of [0, n) into
// nBlocks blocks of grain iterations, and an atomic claim counter. Tasks
// are recycled via taskPool; refs counts the goroutines (submitter plus
// woken workers) still holding the descriptor so it is only recycled after
// the last one lets go.
type task struct {
	body    func(lo, hi int)
	n       int
	grain   int
	nBlocks int32
	next    atomic.Int32
	wg      sync.WaitGroup
	refs    atomic.Int32
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// run claims and executes blocks until the counter is exhausted.
func (t *task) run() {
	for {
		b := t.next.Add(1) - 1
		if b >= t.nBlocks {
			return
		}
		lo := int(b) * t.grain
		hi := lo + t.grain
		if hi > t.n {
			hi = t.n
		}
		t.body(lo, hi)
		t.wg.Done()
	}
}

// release drops one reference; the last holder recycles the descriptor.
func (t *task) release() {
	if t.refs.Add(-1) == 0 {
		t.body = nil
		taskPool.Put(t)
	}
}

// pool is one generation of persistent workers. tasks is both the job
// queue and the wake-up semaphore; stop is closed to retire the
// generation.
type pool struct {
	size  int
	tasks chan *task
	stop  chan struct{}
}

var (
	poolMu  sync.Mutex
	curPool atomic.Pointer[pool]
)

// getPool returns a pool of p-1 workers, lazily (re)starting it when the
// size changed since the last parallel loop. It returns nil when the
// worker count is (concurrently) 1 — the caller then runs inline. p is
// the caller's stale Procs() read; the authoritative value is re-read
// under the lock so a racing SetProcs(1) can never have its shutdown
// undone by a pool resurrection (which would leak parked workers).
func getPool(p int) *pool {
	if pl := curPool.Load(); pl != nil && pl.size == p-1 {
		return pl
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	want := Procs() - 1
	if want < 1 {
		return nil
	}
	if pl := curPool.Load(); pl != nil {
		if pl.size == want {
			return pl
		}
		close(pl.stop)
	}
	pl := &pool{
		size:  want,
		tasks: make(chan *task, 4*want+16),
		stop:  make(chan struct{}),
	}
	for i := 0; i < want; i++ {
		go pl.worker()
	}
	curPool.Store(pl)
	return pl
}

// worker parks on the task channel and helps whatever loop wakes it.
func (pl *pool) worker() {
	for {
		select {
		case t := <-pl.tasks:
			t.run()
			t.release()
		case <-pl.stop:
			return
		}
	}
}

// For runs body(i) for every i in [0, n) in parallel with the default grain.
func For(n int, body func(i int)) {
	ForGrain(n, DefaultGrain, body)
}

// ForGrain runs body(i) for every i in [0, n) in parallel. Blocks have at
// least grain iterations; a loop with n <= grain runs sequentially inline.
func ForGrain(n, grain int, body func(i int)) {
	ForBlock(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock partitions [0, n) into blocks of at least grain iterations and
// runs body on each block in parallel. Workers claim blocks dynamically via
// an atomic counter, so irregular per-block costs are load balanced.
func ForBlock(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	nBlocks := (n + grain - 1) / grain
	// Use ~4 blocks per worker so dynamic claiming can balance load
	// without making blocks so small that scheduling dominates.
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	if nBlocks < 2 {
		body(0, n)
		return
	}
	pl := getPool(p)
	if pl == nil { // SetProcs(1) raced the Procs() read above: run inline
		body(0, n)
		return
	}
	t := taskPool.Get().(*task)
	t.body = body
	t.n = n
	t.grain = grain
	t.nBlocks = int32(nBlocks)
	t.next.Store(0)
	t.wg.Add(nBlocks)
	wakes := pl.size
	if wakes > nBlocks-1 {
		wakes = nBlocks - 1
	}
	// Publish before waking: a woken worker may finish and release its
	// reference before the loop below sends the next token.
	t.refs.Store(int32(wakes) + 1)
	sent := 0
	for sent < wakes {
		select {
		case pl.tasks <- t:
			sent++
			continue
		default:
		}
		// Queue full: every worker is already busy, so extra wake-up
		// tokens would only go stale. The submitter absorbs the work.
		break
	}
	if sent < wakes {
		t.refs.Add(int32(sent - wakes))
	}
	t.run()
	t.wg.Wait()
	t.release()
}

// Do runs the given functions with fork-join semantics and waits for all
// of them: the n-ary analogue of the model's binary fork. Like a fork in
// the work-span model, it permits but does not guarantee concurrency —
// when no pool worker is free the submitter runs every function itself,
// sequentially — so the functions must not synchronize with one another.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Procs() == 1 {
		for _, f := range fns {
			f()
		}
		return
	}
	ForBlock(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}

// Reduce computes merge over leaf values of the blocks of [0, n).
// id is the identity of merge. merge must be associative.
func Reduce[T any](n, grain int, id T, leaf func(lo, hi int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	if grain < 1 {
		grain = 1
	}
	p := Procs()
	if p == 1 || n <= grain {
		return merge(id, leaf(0, n))
	}
	nBlocks := (n + grain - 1) / grain
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	partial := make([]T, nBlocks)
	ForBlock(nBlocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			partial[b] = leaf(lo, hi)
		}
	})
	out := id
	for _, v := range partial {
		out = merge(out, v)
	}
	return out
}

// MapInt32 fills dst[i] = f(i) for i in [0, n) in parallel.
func MapInt32(dst []int32, f func(i int) int32) {
	For(len(dst), func(i int) { dst[i] = f(i) })
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](dst []T, v T) {
	ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// Iota fills dst[i] = base + i in parallel.
func Iota(dst []int32, base int32) {
	For(len(dst), func(i int) { dst[i] = base + int32(i) })
}

// Copy copies src into dst in parallel. Panics if lengths differ.
func Copy[T any](dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel.Copy: length mismatch")
	}
	ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
