// Package parallel provides the fork-join execution layer used by every
// algorithm in this repository.
//
// The paper assumes the binary-forking work-span model with a randomized
// work-stealing scheduler (ParlayLib). Goroutines are too heavy for
// per-element binary forking, so this package exposes *chunked* fork-join:
// loops are split into blocks of at least a grain size and blocks are
// claimed dynamically over an atomic work counter (a simple form of dynamic
// load balancing). This preserves work-efficiency and keeps span within
// logarithmic factors of the model for the loop shapes used here.
//
// # Execution contexts
//
// Every primitive exists in two forms: a package-level function (For,
// ForBlock, Do, Reduce, Fill, ...) that runs on the process-global default
// context, and a form bound to an *Exec handle (methods for the monomorphic
// primitives, *In functions for the generic ones). An Exec owns a worker
// budget:
//
//   - A nil *Exec is the default context: loops run on the process-global
//     pool sized by Procs()/SetProcs. All package-level functions are thin
//     wrappers over the nil context.
//   - NewExec(p) returns a context owning a private pool of p-1 workers,
//     isolated from the global pool and from every other Exec. Close
//     releases the workers; a closed context runs loops inline.
//   - e.Limit(k) derives a context sharing e's pool but capping any one
//     loop at k workers (submitter included). Limit allocates no goroutines,
//     so a per-request worker cap costs nothing: concurrent submitters
//     share the underlying pool's workers fairly (blocks are claimed
//     dynamically) while each stays within its own cap.
//
// This is what makes concurrent serving safe: two simultaneous runs with
// different worker caps never mutate global state, never restart a pool,
// and never observe each other's cap.
//
// # Persistent worker pool
//
// Blocks are executed by a lazily-started persistent pool of workers (the
// submitting goroutine is always one additional worker). Workers park on a
// buffered channel that doubles as a wake-up semaphore: submitting a loop
// enqueues at most min(available workers, blocks-1) wake tokens carrying
// the task descriptor, so a parked worker is woken with one channel receive
// instead of a fresh goroutine spawn and stack. Task descriptors are
// recycled through a sync.Pool guarded by a reference count, so a parallel
// loop costs O(1) allocations and zero goroutine creations in steady state
// — the scheduling overhead the paper's ParlayLib baseline never pays,
// removed.
//
// The global pool is generational: SetProcs retires the current generation
// (its workers exit once idle) and the next parallel loop lazily starts a
// new one with the updated size. Loops already in flight on a retired
// generation stay correct — the submitter claims every block its helpers
// do not — so SetProcs may be called concurrently with running loops.
// SetProcs(1) stops the pool entirely; all primitives then run inline.
// Private pools (NewExec) are fixed-size and have no generations.
//
// # Cancellation and panics
//
// Loops are cooperatively cancellable at block granularity: WithContext
// derives a context-carrying Exec, and every loop on it checks the
// context between blocks, skipping the remaining blocks once it is
// canceled. The check is free on the happy path — an Exec without a
// context (the default) performs no per-block work, and a loop that
// finishes before cancellation behaves identically either way. A
// canceled loop returns early with its work only partially done, so the
// caller must treat every output as invalid and check Err after the
// last loop of a pipeline (the serving Runner does).
//
// A panic in a loop body — on a pool worker or the submitter — no
// longer crashes the process or deadlocks the join: the first panic is
// captured, the loop's remaining blocks are skipped, and after the join
// the submitting goroutine re-panics with a *Panic carrying the
// original value and the panicking goroutine's stack. Serving layers
// recover it once at the top of a build and convert it to an error.
//
// # Work/span accounting
//
// For a loop of n iterations over p workers, claiming is O(n/grain) atomic
// adds of shared-counter work and the span is O(n·grain/p + grain) plus a
// constant number of channel operations; with the default ~4·p blocks per
// loop the span stays within a constant factor of n/p while still load
// balancing irregular blocks. Nested parallel loops are deadlock-free by
// construction: a submitter never waits on work it could not finish itself,
// because it participates in its own task until the block counter is
// exhausted, and parked workers may adopt nested tasks.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// procs is the number of workers used by the default context. It defaults
// to runtime.GOMAXPROCS(0) and can be lowered for scalability experiments
// (Fig. 4 of the paper).
var procs atomic.Int32

func init() {
	procs.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetProcs sets the number of workers of the default context. p < 1 resets
// to GOMAXPROCS. It returns the previous value. The global worker pool is
// resized lazily: the current generation of workers is told to retire and
// the next parallel loop starts a fresh one. Safe to call while loops are
// running, but note that it mutates process-global state — concurrent
// servers should use per-run contexts (NewExec, Limit) instead.
func SetProcs(p int) int {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	prev := int(procs.Swap(int32(p)))
	if prev != p {
		poolMu.Lock()
		if pl := curPool.Load(); pl != nil && pl.size != p-1 {
			close(pl.stop)
			curPool.Store(nil)
		}
		poolMu.Unlock()
	}
	return prev
}

// Procs reports the number of workers of the default context.
func Procs() int { return int(procs.Load()) }

// DefaultGrain is the per-block minimum number of loop iterations. It is
// sized so that the per-block scheduling overhead (~hundreds of ns) is
// amortized over enough work.
const DefaultGrain = 1024

// Exec is an execution context: a worker budget plus the pool that supplies
// the workers. The zero value for a *pointer* — a nil *Exec — is the
// default context backed by the process-global pool; see the package
// comment for NewExec and Limit. All methods are safe for concurrent use,
// including concurrent loops on one Exec, which share its workers fairly.
type Exec struct {
	// limit is the maximum number of workers one loop may use, submitter
	// included. Always >= 1.
	limit int
	// priv is the owning pool; nil means the process-global pool.
	priv *privPool
	// ctx, when non-nil, makes every loop on this context cooperatively
	// cancellable at block granularity (see WithContext). nil — the
	// default — costs nothing per block.
	ctx context.Context
}

// NewExec returns an execution context owning a private pool of p-1 worker
// goroutines (the submitting goroutine is the p-th worker). p < 1 selects
// runtime.GOMAXPROCS(0). The workers are started lazily by the first
// parallel loop and released by Close.
func NewExec(p int) *Exec {
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	e := &Exec{limit: p}
	if p > 1 {
		e.priv = &privPool{size: p - 1}
	}
	return e
}

// Limit returns a context that runs loops on e's pool but uses at most k
// workers per loop (submitter included). k < 1 or k >= e's budget returns e
// itself. The derived context shares e's workers — Close on either affects
// both — and allocates no goroutines, so deriving per-request caps is free.
func (e *Exec) Limit(k int) *Exec {
	if k < 1 {
		return e
	}
	if e == nil {
		return &Exec{limit: k}
	}
	if k >= e.limit {
		return e
	}
	return &Exec{limit: k, priv: e.priv, ctx: e.ctx}
}

// Limit returns a view of the default context capped at k workers per loop,
// with no global mutation and no pool restart: Limit(k).ForBlock runs on
// the same process-global pool as ForBlock, waking at most k-1 helpers.
func Limit(k int) *Exec { return (*Exec)(nil).Limit(k) }

// noLimit is the worker cap of a derived context that adds no cap of its
// own; Procs() folds it with the pool's real size.
const noLimit = 1 << 30

// WithContext returns a view of e whose loops are cooperatively
// cancellable by ctx: once ctx is done, every loop on the returned
// context skips its remaining blocks and returns early (work already
// running on claimed blocks completes). The derived context shares e's
// pool and worker cap and allocates no goroutines. A nil or
// never-cancellable ctx (context.Background, context.TODO) returns e
// itself, so threading a background context through a hot path costs
// nothing.
//
// Cancellation is cooperative and block-granular: a canceled loop
// returns with its work partially done, so after cancellation every
// value the loops produced is invalid. Pipelines must check Err (or the
// ctx) after their last loop and discard the result.
func (e *Exec) WithContext(ctx context.Context) *Exec {
	if ctx == nil || ctx.Done() == nil {
		return e
	}
	if e == nil {
		return &Exec{limit: noLimit, ctx: ctx}
	}
	return &Exec{limit: e.limit, priv: e.priv, ctx: ctx}
}

// WithContext returns a view of the default context cancellable by ctx;
// see (*Exec).WithContext.
func WithContext(ctx context.Context) *Exec { return (*Exec)(nil).WithContext(ctx) }

// Canceled reports whether e's context is done. Always false for a
// context-free Exec (including nil).
func (e *Exec) Canceled() bool {
	if e == nil || e.ctx == nil {
		return false
	}
	select {
	case <-e.ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns the context's cancellation cause (context.Canceled or
// context.DeadlineExceeded) once e is canceled, and nil otherwise —
// the post-pipeline validity check the package comment's cancellation
// section describes.
func (e *Exec) Err() error {
	if e == nil || e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// done returns the cancellation channel, nil when not cancellable.
func (e *Exec) done() <-chan struct{} {
	if e == nil || e.ctx == nil {
		return nil
	}
	return e.ctx.Done()
}

// canceled is the channel-level form of Canceled for the loop internals.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Panic is the value the submitting goroutine re-panics with when a
// parallel loop body panics: the original panic value plus the stack of
// the goroutine (pool worker or submitter) that panicked. Capturing the
// panic in the worker and re-raising it at the join point is what keeps
// an engine bug from killing an unrelated pool goroutine — and with it
// the whole serving process; the Runner recovers the re-raised value
// once per build and converts it to an error.
type Panic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("panic in parallel loop: %v", p.Value)
}

// Close releases the context's private workers. Loops submitted after
// Close run inline (sequentially). Close on the default context or on a
// context without a private pool is a no-op; a context derived with Limit
// shares its parent's pool, so closing either closes both.
func (e *Exec) Close() {
	if e != nil && e.priv != nil {
		e.priv.close()
	}
}

// Procs reports the maximum number of workers a loop on e may use. For the
// default (nil) context this is Procs(); for others it is the construction
// budget folded with any Limit caps.
func (e *Exec) Procs() int {
	if e == nil {
		return Procs()
	}
	p := e.limit
	if e.priv == nil {
		// A Limit view of the default context: the global pool bounds it.
		if g := Procs(); g < p {
			p = g
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// getPoolFor returns the pool e's loops run on, or nil to run inline.
func (e *Exec) getPoolFor() *pool {
	if e == nil || e.priv == nil {
		return getPool(Procs())
	}
	return e.priv.get()
}

// task is one parallel loop in flight: a body, a partition of [0, n) into
// nBlocks blocks of grain iterations, and an atomic claim counter. Tasks
// are recycled via taskPool; refs counts the goroutines (submitter plus
// woken workers) still holding the descriptor so it is only recycled after
// the last one lets go.
type task struct {
	body    func(lo, hi int)
	n       int
	grain   int
	nBlocks int32
	next    atomic.Int32
	wg      sync.WaitGroup
	refs    atomic.Int32
	// done, when non-nil, is the submitting Exec's cancellation channel:
	// once closed, remaining blocks are claimed but skipped.
	done <-chan struct{}
	// pv holds the first panic captured from a block body. Once set, the
	// remaining blocks are skipped and the submitter re-panics it after
	// the join.
	pv atomic.Pointer[Panic]
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

// run claims and executes blocks until the counter is exhausted. After a
// cancellation or a captured panic the remaining blocks are still
// claimed — their wg slots must drain for the submitter's join — but
// their bodies are skipped.
func (t *task) run() {
	for {
		b := t.next.Add(1) - 1
		if b >= t.nBlocks {
			return
		}
		if t.pv.Load() == nil && !canceled(t.done) {
			lo := int(b) * t.grain
			hi := lo + t.grain
			if hi > t.n {
				hi = t.n
			}
			t.runBlock(lo, hi)
		}
		t.wg.Done()
	}
}

// runBlock executes one block, capturing a panic instead of letting it
// unwind a pool worker (which would kill the process and leave the
// submitter's join waiting forever).
func (t *task) runBlock(lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			t.pv.CompareAndSwap(nil, &Panic{Value: r, Stack: debug.Stack()})
		}
	}()
	t.body(lo, hi)
}

// release drops one reference; the last holder recycles the descriptor.
func (t *task) release() {
	if t.refs.Add(-1) == 0 {
		t.body = nil
		t.done = nil
		taskPool.Put(t)
	}
}

// pool is one set of persistent workers. tasks is both the job queue and
// the wake-up semaphore; stop is closed to retire the workers.
type pool struct {
	size  int
	tasks chan *task
	stop  chan struct{}
}

var (
	poolMu  sync.Mutex
	curPool atomic.Pointer[pool]
)

// getPool returns the global pool of p-1 workers, lazily (re)starting it
// when the size changed since the last parallel loop. It returns nil when
// the worker count is (concurrently) 1 — the caller then runs inline. p is
// the caller's stale Procs() read; the authoritative value is re-read
// under the lock so a racing SetProcs(1) can never have its shutdown
// undone by a pool resurrection (which would leak parked workers).
func getPool(p int) *pool {
	if pl := curPool.Load(); pl != nil && pl.size == p-1 {
		return pl
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	want := Procs() - 1
	if want < 1 {
		return nil
	}
	if pl := curPool.Load(); pl != nil {
		if pl.size == want {
			return pl
		}
		close(pl.stop)
	}
	pl := newPool(want)
	curPool.Store(pl)
	return pl
}

func newPool(size int) *pool {
	pl := &pool{
		size:  size,
		tasks: make(chan *task, 4*size+16),
		stop:  make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go pl.worker()
	}
	return pl
}

// privPool is the fixed-size lazily-started pool behind NewExec contexts.
type privPool struct {
	size   int
	mu     sync.Mutex
	closed bool
	cur    atomic.Pointer[pool]
}

// get returns the pool, starting its workers on first use; nil after close.
func (pp *privPool) get() *pool {
	if pl := pp.cur.Load(); pl != nil {
		return pl
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.closed {
		return nil
	}
	if pl := pp.cur.Load(); pl != nil {
		return pl
	}
	pl := newPool(pp.size)
	pp.cur.Store(pl)
	return pl
}

func (pp *privPool) close() {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	pp.closed = true
	if pl := pp.cur.Load(); pl != nil {
		close(pl.stop)
		pp.cur.Store(nil)
	}
}

// worker parks on the task channel and helps whatever loop wakes it.
func (pl *pool) worker() {
	for {
		select {
		case t := <-pl.tasks:
			t.run()
			t.release()
		case <-pl.stop:
			return
		}
	}
}

// For runs body(i) for every i in [0, n) in parallel on e with the default
// grain.
func (e *Exec) For(n int, body func(i int)) {
	e.ForGrain(n, DefaultGrain, body)
}

// ForGrain runs body(i) for every i in [0, n) in parallel on e. Blocks have
// at least grain iterations; a loop with n <= grain runs sequentially
// inline.
func (e *Exec) ForGrain(n, grain int, body func(i int)) {
	e.ForBlock(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlock partitions [0, n) into blocks of at least grain iterations and
// runs body on each block in parallel on e. Workers claim blocks
// dynamically via an atomic counter, so irregular per-block costs are load
// balanced.
func (e *Exec) ForBlock(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := e.Procs()
	if p == 1 || n <= grain {
		e.runInline(n, grain, body)
		return
	}
	nBlocks := (n + grain - 1) / grain
	// Use ~4 blocks per worker so dynamic claiming can balance load
	// without making blocks so small that scheduling dominates.
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	if nBlocks < 2 {
		e.runInline(n, grain, body)
		return
	}
	pl := e.getPoolFor()
	if pl == nil { // worker count is 1, or the context was closed: inline
		e.runInline(n, grain, body)
		return
	}
	t := taskPool.Get().(*task)
	t.body = body
	t.n = n
	t.grain = grain
	t.nBlocks = int32(nBlocks)
	t.next.Store(0)
	t.done = e.done()
	t.pv.Store(nil)
	t.wg.Add(nBlocks)
	// The cap p bounds this loop's workers (submitter included) even when
	// the underlying pool is larger — the Limit contract.
	wakes := p - 1
	if wakes > pl.size {
		wakes = pl.size
	}
	if wakes > nBlocks-1 {
		wakes = nBlocks - 1
	}
	// Publish before waking: a woken worker may finish and release its
	// reference before the loop below sends the next token.
	t.refs.Store(int32(wakes) + 1)
	sent := 0
	for sent < wakes {
		select {
		case pl.tasks <- t:
			sent++
			continue
		default:
		}
		// Queue full: every worker is already busy, so extra wake-up
		// tokens would only go stale. The submitter absorbs the work.
		break
	}
	if sent < wakes {
		t.refs.Add(int32(sent - wakes))
	}
	t.run()
	t.wg.Wait()
	pv := t.pv.Load()
	t.release()
	if pv != nil {
		// Re-raise the captured panic on the submitting goroutine, the
		// model's join-point semantics; callers that must survive engine
		// bugs recover the *Panic once at the top of the pipeline.
		panic(pv)
	}
}

// runInline executes the loop on the submitting goroutine. With no
// cancellation context this is a single body call (the historical fast
// path); with one, the range is walked block by block with a cancel
// check between blocks, so even a 1-worker (or pool-less) loop honors
// the block-granularity cancellation contract.
func (e *Exec) runInline(n, grain int, body func(lo, hi int)) {
	done := e.done()
	if done == nil {
		body(0, n)
		return
	}
	if canceled(done) {
		return
	}
	if n <= grain {
		body(0, n)
		return
	}
	for lo := 0; lo < n; lo += grain {
		if canceled(done) {
			return
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		body(lo, hi)
	}
}

// Do runs the given functions on e with fork-join semantics and waits for
// all of them: the n-ary analogue of the model's binary fork. Like a fork
// in the work-span model, it permits but does not guarantee concurrency —
// when no pool worker is free the submitter runs every function itself,
// sequentially — so the functions must not synchronize with one another.
func (e *Exec) Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if e.Procs() == 1 {
		for _, f := range fns {
			if e.Canceled() {
				return
			}
			f()
		}
		return
	}
	e.ForBlock(len(fns), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fns[i]()
		}
	})
}

// Iota fills dst[i] = base + i in parallel on e.
func (e *Exec) Iota(dst []int32, base int32) {
	e.For(len(dst), func(i int) { dst[i] = base + int32(i) })
}

// ReduceIn computes merge over leaf values of the blocks of [0, n) on e.
// id is the identity of merge. merge must be associative. (A function
// rather than an Exec method because Go methods cannot be generic.)
func ReduceIn[T any](e *Exec, n, grain int, id T, leaf func(lo, hi int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	if grain < 1 {
		grain = 1
	}
	p := e.Procs()
	if p == 1 || n <= grain {
		return merge(id, leaf(0, n))
	}
	nBlocks := (n + grain - 1) / grain
	if nBlocks > 4*p {
		grain = (n + 4*p - 1) / (4 * p)
		nBlocks = (n + grain - 1) / grain
	}
	partial := make([]T, nBlocks)
	e.ForBlock(nBlocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			partial[b] = leaf(lo, hi)
		}
	})
	out := id
	for _, v := range partial {
		out = merge(out, v)
	}
	return out
}

// SumInt64In computes the sum of leaf over the blocks of [0, n) on e.
// Because addition is commutative as well as associative, the partial
// results are folded into one atomic accumulator instead of the per-block
// buffer ReduceIn needs — the loop performs no allocation, which is what
// the hot-path counting passes (connectivity root counts, finalization)
// want from a reduce.
func SumInt64In(e *Exec, n, grain int, leaf func(lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	if e.Procs() == 1 || n <= grain {
		return leaf(0, n)
	}
	var acc atomic.Int64
	e.ForBlock(n, grain, func(lo, hi int) {
		acc.Add(leaf(lo, hi))
	})
	return acc.Load()
}

// FillIn sets every element of dst to v in parallel on e.
func FillIn[T any](e *Exec, dst []T, v T) {
	e.ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = v
		}
	})
}

// CopyIn copies src into dst in parallel on e. Panics if lengths differ.
func CopyIn[T any](e *Exec, dst, src []T) {
	if len(dst) != len(src) {
		panic("parallel.Copy: length mismatch")
	}
	e.ForBlock(len(dst), DefaultGrain, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// For runs body(i) for every i in [0, n) in parallel with the default grain
// on the default context.
func For(n int, body func(i int)) {
	(*Exec)(nil).ForGrain(n, DefaultGrain, body)
}

// ForGrain runs body(i) for every i in [0, n) in parallel on the default
// context. Blocks have at least grain iterations; a loop with n <= grain
// runs sequentially inline.
func ForGrain(n, grain int, body func(i int)) {
	(*Exec)(nil).ForGrain(n, grain, body)
}

// ForBlock partitions [0, n) into blocks of at least grain iterations and
// runs body on each block in parallel on the default context.
func ForBlock(n, grain int, body func(lo, hi int)) {
	(*Exec)(nil).ForBlock(n, grain, body)
}

// Do runs the given functions with fork-join semantics on the default
// context; see (*Exec).Do for the concurrency contract.
func Do(fns ...func()) {
	(*Exec)(nil).Do(fns...)
}

// Reduce computes merge over leaf values of the blocks of [0, n) on the
// default context. id is the identity of merge. merge must be associative.
func Reduce[T any](n, grain int, id T, leaf func(lo, hi int) T, merge func(a, b T) T) T {
	return ReduceIn(nil, n, grain, id, leaf, merge)
}

// MapInt32 fills dst[i] = f(i) for i in [0, n) in parallel.
func MapInt32(dst []int32, f func(i int) int32) {
	For(len(dst), func(i int) { dst[i] = f(i) })
}

// Fill sets every element of dst to v in parallel.
func Fill[T any](dst []T, v T) {
	FillIn(nil, dst, v)
}

// Iota fills dst[i] = base + i in parallel.
func Iota(dst []int32, base int32) {
	(*Exec)(nil).Iota(dst, base)
}

// Copy copies src into dst in parallel. Panics if lengths differ.
func Copy[T any](dst, src []T) {
	CopyIn(nil, dst, src)
}
