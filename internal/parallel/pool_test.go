package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetProcsRacedWithLoops hammers SetProcs from one goroutine while
// others run parallel loops. Every loop must still cover its index space
// exactly once regardless of which pool generation executes it.
func TestSetProcsRacedWithLoops(t *testing.T) {
	old := Procs()
	defer SetProcs(old)
	SetProcs(4)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 4, 8, 3}
		for i := 0; !stop.Load(); i++ {
			SetProcs(sizes[i%len(sizes)])
		}
	}()

	const loops = 200
	const n = 10000
	for l := 0; l < loops; l++ {
		var sum atomic.Int64
		ForGrain(n, 64, func(i int) { sum.Add(int64(i)) })
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			t.Fatalf("loop %d: sum = %d, want %d", l, sum.Load(), want)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestPoolRestartAfterSetProcsOne checks that SetProcs(1) stops the pool
// (loops run inline and in order) and that raising the worker count
// afterwards lazily starts a fresh generation that executes correctly.
func TestPoolRestartAfterSetProcsOne(t *testing.T) {
	old := Procs()
	defer SetProcs(old)

	SetProcs(4)
	var sum atomic.Int64
	ForGrain(1<<14, 16, func(i int) { sum.Add(int64(i)) })
	want := int64(1<<14) * (1<<14 - 1) / 2
	if sum.Load() != want {
		t.Fatalf("pre-restart sum = %d, want %d", sum.Load(), want)
	}

	SetProcs(1)
	if pl := curPool.Load(); pl != nil {
		t.Fatal("SetProcs(1) should retire the pool")
	}
	order := make([]int, 0, 100)
	For(100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline execution out of order at %d: %d", i, v)
		}
	}

	SetProcs(4)
	sum.Store(0)
	ForGrain(1<<14, 16, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != want {
		t.Fatalf("post-restart sum = %d, want %d", sum.Load(), want)
	}
	if pl := curPool.Load(); pl == nil || pl.size != 3 {
		t.Fatalf("pool did not restart at the new size: %+v", pl)
	}
}

// TestNestedForBlockInsideDo runs parallel loops from inside Do branches:
// the submitter of each inner loop must be able to finish it even when
// every pool worker is tied up in the outer fork.
func TestNestedForBlockInsideDo(t *testing.T) {
	old := Procs()
	defer SetProcs(old)
	SetProcs(4)

	var a, b atomic.Int64
	Do(
		func() {
			ForBlock(5000, 8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a.Add(int64(i))
				}
			})
		},
		func() {
			ForBlock(3000, 8, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					b.Add(int64(i))
				}
			})
		},
		func() {
			Do(
				func() { ForGrain(100, 1, func(i int) { a.Add(1) }) },
				func() { ForGrain(100, 1, func(i int) { b.Add(1) }) },
			)
		},
	)
	wantA := int64(5000)*(5000-1)/2 + 100
	wantB := int64(3000)*(3000-1)/2 + 100
	if a.Load() != wantA || b.Load() != wantB {
		t.Fatalf("a=%d (want %d), b=%d (want %d)", a.Load(), wantA, b.Load(), wantB)
	}
}

// TestStaleWakeTokens drains a scenario where wake tokens for finished
// loops linger in the queue: many tiny loops in a row must not corrupt
// each other's recycled task descriptors.
func TestStaleWakeTokens(t *testing.T) {
	old := Procs()
	defer SetProcs(old)
	SetProcs(8)
	for l := 0; l < 500; l++ {
		var sum atomic.Int64
		n := 2 + l%64
		ForGrain(n, 1, func(i int) { sum.Add(int64(i)) })
		if want := int64(n) * int64(n-1) / 2; sum.Load() != want {
			t.Fatalf("loop %d: sum=%d want %d", l, sum.Load(), want)
		}
	}
}
