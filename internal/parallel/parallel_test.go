package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSetProcs(t *testing.T) {
	old := Procs()
	defer SetProcs(old)
	if got := SetProcs(3); got != old {
		t.Fatalf("SetProcs returned %d, want previous %d", got, old)
	}
	if Procs() != 3 {
		t.Fatalf("Procs() = %d, want 3", Procs())
	}
	SetProcs(0)
	if Procs() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetProcs(0) should reset to GOMAXPROCS")
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023, 1024, 1025, 100000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForGrainSmallGrain(t *testing.T) {
	n := 5000
	var sum atomic.Int64
	ForGrain(n, 7, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForBlockPartition(t *testing.T) {
	for _, n := range []int{0, 1, 10, 4096, 99999} {
		var total atomic.Int64
		ForBlock(n, 64, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
			}
			total.Add(int64(hi - lo))
		})
		if total.Load() != int64(n) {
			t.Fatalf("n=%d: covered %d iterations", n, total.Load())
		}
	}
}

func TestForBlockZeroGrain(t *testing.T) {
	var total atomic.Int64
	ForBlock(100, 0, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if total.Load() != 100 {
		t.Fatalf("covered %d, want 100", total.Load())
	}
}

func TestForSingleProc(t *testing.T) {
	old := SetProcs(1)
	defer SetProcs(old)
	order := make([]int, 0, 100)
	For(100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-proc For must run in order; got %v at %d", v, i)
		}
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do()
	Do(func() { a.Store(1) })
	Do(func() { a.Add(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 2 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Do results: a=%d b=%d c=%d", a.Load(), b.Load(), c.Load())
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 123456} {
		got := Reduce(n, 100, int64(0),
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(i)
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		want := int64(n) * int64(n-1) / 2
		if got != want {
			t.Fatalf("n=%d: Reduce = %d, want %d", n, got, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	vals := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	got := Reduce(len(vals), 3, -1,
		func(lo, hi int) int {
			m := -1
			for i := lo; i < hi; i++ {
				if vals[i] > m {
					m = vals[i]
				}
			}
			return m
		},
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
	if got != 9 {
		t.Fatalf("Reduce max = %d, want 9", got)
	}
}

func TestFillIotaCopy(t *testing.T) {
	n := 10000
	a := make([]int32, n)
	Fill(a, int32(7))
	for i, v := range a {
		if v != 7 {
			t.Fatalf("Fill: a[%d]=%d", i, v)
		}
	}
	Iota(a, 5)
	for i, v := range a {
		if v != int32(i+5) {
			t.Fatalf("Iota: a[%d]=%d", i, v)
		}
	}
	b := make([]int32, n)
	Copy(b, a)
	for i := range b {
		if b[i] != a[i] {
			t.Fatalf("Copy mismatch at %d", i)
		}
	}
}

func TestCopyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy(make([]int, 3), make([]int, 4))
}

func TestMapInt32(t *testing.T) {
	dst := make([]int32, 777)
	MapInt32(dst, func(i int) int32 { return int32(i * 2) })
	for i, v := range dst {
		if v != int32(2*i) {
			t.Fatalf("MapInt32: dst[%d]=%d", i, v)
		}
	}
}

func TestReduceMatchesSequentialQuick(t *testing.T) {
	f := func(xs []int32) bool {
		var want int64
		for _, x := range xs {
			want += int64(x)
		}
		got := Reduce(len(xs), 4, int64(0),
			func(lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(xs[i])
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
