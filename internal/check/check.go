// Package check provides cross-algorithm verification utilities: a
// canonical form for block decompositions, equality testing, and an
// independent recursive reference implementation of biconnected components
// used as a second oracle besides seqbcc (the two share no code, so
// agreement is strong evidence of correctness).
package check

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Canonical sorts each block and then the list of blocks, producing a
// canonical form suitable for equality comparison.
func Canonical(blocks [][]int32) [][]int32 {
	out := make([][]int32, len(blocks))
	for i, b := range blocks {
		c := append([]int32(nil), b...)
		sort.Slice(c, func(x, y int) bool { return c[x] < c[y] })
		out[i] = c
	}
	sort.Slice(out, func(x, y int) bool { return lessBlock(out[x], out[y]) })
	return out
}

func lessBlock(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports whether two block decompositions are identical up to
// ordering. Inputs need not be canonical.
func Equal(a, b [][]int32) bool {
	ca, cb := Canonical(a), Canonical(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			return false
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				return false
			}
		}
	}
	return true
}

// Describe renders a canonical decomposition compactly for test failures.
func Describe(blocks [][]int32) string {
	return fmt.Sprint(Canonical(blocks))
}

// NaiveBCC is a recursive textbook Hopcroft–Tarjan implementation used as
// an independent oracle in tests. It must only be called on small graphs
// (recursion depth is O(n)).
func NaiveBCC(g *graph.Graph) [][]int32 {
	n := int(g.N)
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	var timer int32
	var estack []graph.Edge
	var blocks [][]int32
	var dfs func(v, parent int32)
	dfs = func(v, parent int32) {
		disc[v] = timer
		low[v] = timer
		timer++
		skipped := false
		for _, w := range g.Neighbors(v) {
			if w == v {
				continue
			}
			if w == parent && !skipped {
				skipped = true
				continue
			}
			if disc[w] == -1 {
				estack = append(estack, graph.Edge{U: v, W: w})
				dfs(w, v)
				if low[w] < low[v] {
					low[v] = low[w]
				}
				if low[w] >= disc[v] {
					// pop to (v,w)
					i := len(estack) - 1
					for estack[i].U != v || estack[i].W != w {
						i--
					}
					blocks = append(blocks, vertsOf(estack[i:]))
					estack = estack[:i]
				}
			} else if disc[w] < disc[v] {
				estack = append(estack, graph.Edge{U: v, W: w})
				if disc[w] < low[v] {
					low[v] = disc[w]
				}
			}
		}
	}
	for s := int32(0); s < int32(n); s++ {
		if disc[s] == -1 {
			dfs(s, -1)
		}
	}
	return blocks
}

func vertsOf(es []graph.Edge) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, e := range es {
		if !seen[e.U] {
			seen[e.U] = true
			out = append(out, e.U)
		}
		if !seen[e.W] {
			seen[e.W] = true
			out = append(out, e.W)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
