package check

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestCanonicalSortsBlocksAndLists(t *testing.T) {
	in := [][]int32{{3, 1, 2}, {0, 5}, {4}}
	out := Canonical(in)
	if len(out) != 3 {
		t.Fatal("length changed")
	}
	if out[0][0] != 0 || out[1][0] != 1 || out[2][0] != 4 {
		t.Fatalf("ordering wrong: %v", out)
	}
	if out[1][0] != 1 || out[1][1] != 2 || out[1][2] != 3 {
		t.Fatalf("inner sort wrong: %v", out[1])
	}
	// Input untouched.
	if in[0][0] != 3 {
		t.Fatal("canonical mutated input")
	}
}

func TestEqual(t *testing.T) {
	a := [][]int32{{1, 2, 3}, {4, 5}}
	b := [][]int32{{5, 4}, {3, 2, 1}}
	if !Equal(a, b) {
		t.Fatal("permuted decompositions must be equal")
	}
	c := [][]int32{{1, 2}, {4, 5}}
	if Equal(a, c) {
		t.Fatal("different decompositions must differ")
	}
	d := [][]int32{{1, 2, 3}}
	if Equal(a, d) {
		t.Fatal("different counts must differ")
	}
	if !Equal(nil, nil) {
		t.Fatal("empty decompositions are equal")
	}
}

func TestEqualPrefixBlocks(t *testing.T) {
	a := [][]int32{{1, 2}}
	b := [][]int32{{1, 2, 3}}
	if Equal(a, b) {
		t.Fatal("prefix blocks must not be equal")
	}
}

func TestNaiveBCCKnownShapes(t *testing.T) {
	if got := NaiveBCC(gen.Cycle(7)); len(got) != 1 || len(got[0]) != 7 {
		t.Fatalf("cycle: %v", got)
	}
	if got := NaiveBCC(gen.Chain(5)); len(got) != 4 {
		t.Fatalf("chain: %v", got)
	}
	if got := NaiveBCC(gen.Star(6)); len(got) != 5 {
		t.Fatalf("star: %v", got)
	}
	if got := NaiveBCC(graph.MustFromEdges(3, nil)); len(got) != 0 {
		t.Fatalf("edgeless: %v", got)
	}
}

func TestDescribeStable(t *testing.T) {
	a := Describe([][]int32{{2, 1}, {0, 3}})
	b := Describe([][]int32{{3, 0}, {1, 2}})
	if a != b {
		t.Fatalf("describe not canonical: %q vs %q", a, b)
	}
}
