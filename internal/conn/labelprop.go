package conn

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// LabelProp is classic min-label propagation connectivity: every vertex
// starts with its own id and repeatedly adopts the minimum label among its
// neighbors until a fixpoint. Span is O(D log n) — it is one of the simple
// ConnectIt-family algorithms the paper contrasts with LDD-UF-JTB ("no one
// is constantly faster, and the relative performance is decided by the
// input graph properties", Sec. 5). Provided for the connectivity ablation
// benches; it does not produce a spanning forest, so FAST-BCC's First-CC
// cannot use it (Connectivity falls back to LDD-UF-JTB when a forest is
// requested).
const LabelProp Algorithm = 2

func connLabelProp(g *graph.Graph, opt Options) *Result {
	if opt.WantForest {
		// Label propagation cannot harvest forest edges; preserve the
		// caller's contract by delegating.
		o := opt
		o.Algorithm = LDDUFJTB
		return connLDD(g, o)
	}
	n := int(g.N)
	e := opt.Exec
	comp := make([]int32, n)
	e.Iota(comp, 0)
	if n == 0 {
		return &Result{Comp: comp}
	}
	changed := int32(1)
	for changed != 0 {
		changed = 0
		e.ForBlock(n, 512, func(lo, hi int) {
			local := int32(0)
			for v := int32(lo); v < int32(hi); v++ {
				for _, w := range g.Neighbors(v) {
					if opt.Filter != nil && !opt.Filter(v, w) {
						continue
					}
					lw := atomic.LoadInt32(&comp[w])
					if prim.WriteMin(&comp[v], lw) {
						local = 1
					}
					lv := atomic.LoadInt32(&comp[v])
					if prim.WriteMin(&comp[w], lv) {
						local = 1
					}
				}
			}
			if local != 0 {
				atomic.StoreInt32(&changed, 1)
			}
		})
		// Pointer-jump labels toward their roots to accelerate convergence
		// (shortcutting, as in the hook-and-compress family). Loads and
		// stores are atomic: jumps race with each other across workers.
		e.For(n, func(v int) {
			for {
				l := atomic.LoadInt32(&comp[v])
				ll := atomic.LoadInt32(&comp[l])
				if l == ll {
					break
				}
				atomic.StoreInt32(&comp[v], ll)
			}
		})
	}
	// Labels are now component minima; minima are fixed points (comp[r]==r).
	var roots atomic.Int64
	e.ForBlock(n, parallel.DefaultGrain, func(lo, hi int) {
		c := 0
		for v := lo; v < hi; v++ {
			if comp[v] == int32(v) {
				c++
			}
		}
		roots.Add(int64(c))
	})
	return &Result{Comp: comp, NumComp: int(roots.Load())}
}
