package conn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/uf"
)

// refComponents computes components with a sequential union-find.
func refComponents(g *graph.Graph, filter func(u, w int32) bool) *uf.Seq {
	s := uf.NewSeq(g.NumVertices())
	for v := int32(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w && (filter == nil || filter(v, w)) {
				s.Union(v, w)
			}
		}
	}
	return s
}

func checkAgainstRef(t *testing.T, g *graph.Graph, opt Options) *Result {
	t.Helper()
	res := Connectivity(g, opt)
	ref := refComponents(g, opt.Filter)
	if res.NumComp != ref.NumSets() {
		t.Fatalf("NumComp = %d, want %d", res.NumComp, ref.NumSets())
	}
	for v := int32(0); v < g.N; v++ {
		for w := v + 1; w < g.N && w < v+50; w++ {
			if (res.Comp[v] == res.Comp[w]) != ref.SameSet(v, w) {
				t.Fatalf("components disagree for (%d,%d)", v, w)
			}
		}
	}
	if opt.WantForest {
		checkForest(t, g, res, opt.Filter)
	}
	return res
}

func checkForest(t *testing.T, g *graph.Graph, res *Result, filter func(u, w int32) bool) {
	t.Helper()
	n := g.NumVertices()
	if len(res.Forest) != n-res.NumComp {
		t.Fatalf("forest has %d edges, want %d", len(res.Forest), n-res.NumComp)
	}
	s := uf.NewSeq(n)
	for _, e := range res.Forest {
		if !g.HasEdge(e.U, e.W) {
			t.Fatalf("forest edge (%d,%d) not in graph", e.U, e.W)
		}
		if filter != nil && !filter(e.U, e.W) {
			t.Fatalf("forest edge (%d,%d) violates filter", e.U, e.W)
		}
		if !s.Union(e.U, e.W) {
			t.Fatalf("forest edge (%d,%d) creates a cycle", e.U, e.W)
		}
	}
	// The forest must reproduce the same partition.
	for v := int32(0); v < g.N; v++ {
		if (s.Find(v) == s.Find(res.Comp[v])) == false {
			t.Fatalf("forest does not span component of %d", v)
		}
	}
}

var testGraphs = []struct {
	name string
	g    func() *graph.Graph
}{
	{"chain", func() *graph.Graph { return gen.Chain(3000) }},
	{"cycle", func() *graph.Graph { return gen.Cycle(2048) }},
	{"grid", func() *graph.Graph { return gen.Grid2D(40, 50, true) }},
	{"rmat", func() *graph.Graph { return gen.RMAT(11, 8, 1) }},
	{"disjoint", func() *graph.Graph {
		return gen.Disjoint(gen.Cycle(100), gen.Chain(200), gen.Clique(30), gen.Star(50))
	}},
	{"isolated", func() *graph.Graph {
		return graph.MustFromEdges(100, []graph.Edge{{U: 0, W: 1}, {U: 50, W: 51}})
	}},
	{"empty", func() *graph.Graph { return graph.MustFromEdges(0, nil) }},
	{"singleton", func() *graph.Graph { return graph.MustFromEdges(1, nil) }},
	{"sampledgrid", func() *graph.Graph { return gen.SampledGrid(40, 40, 0.55, 3) }},
}

func TestLDDUFJTBAllGraphs(t *testing.T) {
	for _, tc := range testGraphs {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstRef(t, tc.g(), Options{Algorithm: LDDUFJTB, Seed: 1, WantForest: true})
		})
	}
}

func TestUFAsyncAllGraphs(t *testing.T) {
	for _, tc := range testGraphs {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstRef(t, tc.g(), Options{Algorithm: UFAsync, WantForest: true})
		})
	}
}

func TestLocalSearchAllGraphs(t *testing.T) {
	for _, tc := range testGraphs {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstRef(t, tc.g(), Options{Algorithm: LDDUFJTB, Seed: 2, LocalSearch: true, WantForest: true})
		})
	}
}

func TestFilteredConnectivity(t *testing.T) {
	// Cycle with two opposite edges filtered out: splits into 2 components.
	n := 100
	g := gen.Cycle(n)
	banned := map[[2]int32]bool{
		{0, 1}:                         true,
		{int32(n / 2), int32(n/2 + 1)}: true,
	}
	filter := func(u, w int32) bool {
		if u > w {
			u, w = w, u
		}
		return !banned[[2]int32{u, w}]
	}
	for _, alg := range []Algorithm{LDDUFJTB, UFAsync} {
		res := checkAgainstRef(t, g, Options{Algorithm: alg, Filter: filter, Seed: 3, WantForest: true})
		if res.NumComp != 2 {
			t.Fatalf("alg %v: NumComp = %d, want 2", alg, res.NumComp)
		}
	}
}

func TestFilterAllEdges(t *testing.T) {
	g := gen.Clique(20)
	res := Connectivity(g, Options{Filter: func(u, w int32) bool { return false }, WantForest: true})
	if res.NumComp != 20 || len(res.Forest) != 0 {
		t.Fatalf("all-filtered: comp=%d forest=%d", res.NumComp, len(res.Forest))
	}
}

func TestNormalize(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(10), gen.Cycle(10), gen.Cycle(10))
	res := Connectivity(g, Options{Seed: 4})
	dense := res.Normalize()
	seen := map[int32]bool{}
	for _, d := range dense {
		if d < 0 || int(d) >= res.NumComp {
			t.Fatalf("dense label %d out of range [0,%d)", d, res.NumComp)
		}
		seen[d] = true
	}
	if len(seen) != res.NumComp {
		t.Fatalf("dense labels used %d of %d", len(seen), res.NumComp)
	}
	for v := 0; v < len(dense); v++ {
		for w := v + 1; w < len(dense); w++ {
			if (dense[v] == dense[w]) != (res.Comp[v] == res.Comp[w]) {
				t.Fatal("normalize changed the partition")
			}
		}
	}
}

func TestConnectivityQuickRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := Connectivity(g, Options{Seed: uint64(seed), WantForest: true})
		ref := refComponents(g, nil)
		if res.NumComp != ref.NumSets() {
			return false
		}
		s := uf.NewSeq(n)
		for _, e := range res.Forest {
			if !s.Union(e.U, e.W) {
				return false // cycle in forest
			}
		}
		for v := int32(0); v < g.N; v++ {
			for w := v + 1; w < g.N; w++ {
				if ref.SameSet(v, w) != (res.Comp[v] == res.Comp[w]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, W: 0}, {U: 1, W: 2}})
	res := Connectivity(g, Options{WantForest: true})
	if res.NumComp != 2 {
		t.Fatalf("NumComp = %d, want 2", res.NumComp)
	}
	if len(res.Forest) != 1 {
		t.Fatalf("forest = %v", res.Forest)
	}
}

func TestParallelEdges(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}, {U: 0, W: 1}, {U: 0, W: 1}})
	res := Connectivity(g, Options{WantForest: true})
	if res.NumComp != 1 || len(res.Forest) != 1 {
		t.Fatalf("parallel edges: comp=%d forest=%d", res.NumComp, len(res.Forest))
	}
}
