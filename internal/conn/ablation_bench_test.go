package conn

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Ablation benches for the connectivity design choices DESIGN.md calls out:
// the algorithm (LDD-UF-JTB vs plain UF-Async), the LDD rate β, and the
// local-search optimization. The paper notes (Sec. 5) that no CC algorithm
// wins everywhere and the choice is input-dependent; these benches make the
// trade-off measurable per graph category.

func ablationGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":  gen.RMAT(14, 8, 1),
		"grid":  gen.Grid2D(160, 160, true),
		"chain": gen.Chain(100000),
	}
}

func BenchmarkConnAlgorithm(b *testing.B) {
	for name, g := range ablationGraphs() {
		for algName, alg := range map[string]Algorithm{"LDDUFJTB": LDDUFJTB, "UFAsync": UFAsync} {
			b.Run(name+"/"+algName, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Connectivity(g, Options{Algorithm: alg, Seed: 7})
				}
			})
		}
	}
}

func BenchmarkConnBeta(b *testing.B) {
	for name, g := range ablationGraphs() {
		for _, beta := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
			b.Run(fmt.Sprintf("%s/beta=%.2f", name, beta), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Connectivity(g, Options{Beta: beta, Seed: 7})
				}
			})
		}
	}
}

func BenchmarkConnLocalSearch(b *testing.B) {
	for name, g := range ablationGraphs() {
		for _, ls := range []bool{false, true} {
			label := "orig"
			if ls {
				label = "opt"
			}
			b.Run(name+"/"+label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Connectivity(g, Options{LocalSearch: ls, Seed: 7})
				}
			})
		}
	}
}

func BenchmarkConnSpanningForest(b *testing.B) {
	// Cost of harvesting the spanning forest (needed by First-CC but not
	// Last-CC).
	g := gen.RMAT(14, 8, 2)
	for _, want := range []bool{false, true} {
		label := "labels-only"
		if want {
			label = "with-forest"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Connectivity(g, Options{Seed: 7, WantForest: want})
			}
		})
	}
}
