package conn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestLabelPropAllGraphs(t *testing.T) {
	for _, tc := range testGraphs {
		t.Run(tc.name, func(t *testing.T) {
			checkAgainstRef(t, tc.g(), Options{Algorithm: LabelProp})
		})
	}
}

func TestLabelPropLabelsAreMinima(t *testing.T) {
	g := gen.Disjoint(gen.Cycle(10), gen.Chain(7), gen.Clique(5))
	res := Connectivity(g, Options{Algorithm: LabelProp})
	// With min-propagation, every component's label is its smallest vertex.
	ref := refComponents(g, nil)
	for v := int32(0); v < g.N; v++ {
		smallest := v
		for u := int32(0); u < g.N; u++ {
			if ref.SameSet(u, v) && u < smallest {
				smallest = u
			}
		}
		if res.Comp[v] != smallest {
			t.Fatalf("comp[%d] = %d, want %d", v, res.Comp[v], smallest)
		}
	}
}

func TestLabelPropWithFilter(t *testing.T) {
	g := gen.Cycle(40)
	filter := func(u, w int32) bool {
		// Remove edges (0,1) and (20,21): two components.
		if (u == 0 && w == 1) || (u == 1 && w == 0) {
			return false
		}
		if (u == 20 && w == 21) || (u == 21 && w == 20) {
			return false
		}
		return true
	}
	res := Connectivity(g, Options{Algorithm: LabelProp, Filter: filter})
	if res.NumComp != 2 {
		t.Fatalf("NumComp = %d, want 2", res.NumComp)
	}
}

func TestLabelPropForestFallsBack(t *testing.T) {
	g := gen.Grid2D(12, 12, true)
	res := Connectivity(g, Options{Algorithm: LabelProp, WantForest: true, Seed: 1})
	if len(res.Forest) != g.NumVertices()-res.NumComp {
		t.Fatalf("fallback forest has %d edges", len(res.Forest))
	}
}

func TestLabelPropQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := Connectivity(g, Options{Algorithm: LabelProp})
		ref := refComponents(g, nil)
		if res.NumComp != ref.NumSets() {
			return false
		}
		for v := int32(0); v < g.N; v++ {
			for w := v + 1; w < g.N; w++ {
				if ref.SameSet(v, w) != (res.Comp[v] == res.Comp[w]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
