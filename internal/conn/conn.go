// Package conn implements parallel graph connectivity.
//
// The primary algorithm is LDD-UF-JTB (Thm. 5.1 of the paper): a low-
// diameter decomposition shrinks the graph into clusters with O(βm) cut
// edges, then a concurrent union-find (Jayanti–Tarjan–Boix-Adserà style)
// unions the cut edges. With β = Θ(1/log n) this gives O(n+m) expected work
// and polylog span. FAST-BCC runs it twice: on the input graph (First-CC,
// producing a spanning forest) and on the implicit skeleton (Last-CC,
// via the edge Filter, never materializing the skeleton).
//
// A plain union-find algorithm (UFAsync, the variant GBBS uses) is provided
// for baselines, and both support the hash-bag/local-search optimization
// toggle the paper ablates in Fig. 6.
package conn

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/uf"
)

// Algorithm selects the connectivity implementation.
type Algorithm int

const (
	// LDDUFJTB is the theoretically-efficient algorithm of Thm. 5.1.
	LDDUFJTB Algorithm = iota
	// UFAsync unions every edge directly with the concurrent union-find.
	UFAsync
)

// Options configures Connectivity.
type Options struct {
	Algorithm Algorithm
	// Beta is the LDD rate (0 = default 0.2). Ignored by UFAsync.
	Beta float64
	// Seed drives LDD shifts.
	Seed uint64
	// LocalSearch enables the hash-bag/local-search LDD optimization
	// (the paper's "Opt" variant).
	LocalSearch bool
	// Filter, when non-nil, restricts connectivity to edges with
	// Filter(u,w) true. Must be symmetric.
	Filter func(u, w int32) bool
	// WantForest requests a spanning forest of the (filtered) graph.
	WantForest bool
	// Scratch, when non-nil, supplies the large temporaries (union-find
	// parents, component labels, LDD state, the forest buffer). The
	// returned Result's Comp and Forest slices are then arena-backed:
	// the caller owns them and is responsible for returning them.
	Scratch *graph.Scratch
	// Exec is the execution context parallel loops run on (nil = the
	// process-global default).
	Exec *parallel.Exec
}

// Result is the output of Connectivity.
type Result struct {
	// Comp[v] is the component representative of v (Comp[r] == r).
	Comp []int32
	// NumComp is the number of connected components.
	NumComp int
	// Forest holds spanning forest edges when requested: exactly
	// n - NumComp edges, forming a forest that spans every component.
	Forest []graph.Edge
}

// Connectivity computes the connected components of g under opt.
func Connectivity(g *graph.Graph, opt Options) *Result {
	switch opt.Algorithm {
	case UFAsync:
		return connUF(g, opt)
	case LabelProp:
		return connLabelProp(g, opt)
	default:
		return connLDD(g, opt)
	}
}

func connLDD(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	e := opt.Exec
	dec := ldd.Decompose(g, ldd.Options{
		Beta:        opt.Beta,
		Seed:        opt.Seed,
		LocalSearch: opt.LocalSearch,
		Filter:      opt.Filter,
		Scratch:     sc,
		Exec:        e,
	})
	ufbuf := sc.GetInt32(n)
	e.Iota(ufbuf, 0)
	u := uf.Wrap(ufbuf)
	// Forest edges are collected into one arena buffer through an atomic
	// write cursor (a spanning forest has at most n-1 edges); with one
	// worker the loops run inline, so the sequential edge order is the
	// historical one (cluster trees first, then cross edges).
	forest, cur := forestBuf(sc, n, opt.WantForest)
	// Cluster parent edges connect each cluster; they are tree edges by
	// construction (each union merges two distinct sets regardless of
	// order), so all of them join the forest.
	e.For(n, func(v int) {
		if p := dec.Parent[v]; p != -1 {
			u.Union(int32(v), p)
			if forest != nil {
				forest[cur.Add(1)-1] = graph.Edge{U: p, W: int32(v)}
			}
		}
	})
	// Union cut edges (endpoints in different clusters); the edges whose
	// union merged two sets join the forest.
	unionEdges(g, u, opt, func(v, w int32) bool {
		return dec.Center[v] != dec.Center[w]
	}, forest, cur)
	res := finish(e, g, u, sc)
	if opt.WantForest {
		res.Forest = forest[:cur.Load()]
	}
	sc.PutInt32(ufbuf, dec.Center, dec.Parent)
	return res
}

func connUF(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	sc := opt.Scratch
	e := opt.Exec
	ufbuf := sc.GetInt32(n)
	e.Iota(ufbuf, 0)
	u := uf.Wrap(ufbuf)
	forest, cur := forestBuf(sc, n, opt.WantForest)
	unionEdges(g, u, opt, nil, forest, cur)
	res := finish(e, g, u, sc)
	if opt.WantForest {
		res.Forest = forest[:cur.Load()]
	}
	sc.PutInt32(ufbuf)
	return res
}

// forestBuf returns the cursor-collected forest buffer for a graph of n
// vertices, or nil when no forest is wanted. The buffer is arena-backed;
// its ownership passes to the caller with the Forest result.
func forestBuf(sc *graph.Scratch, n int, want bool) ([]graph.Edge, *atomic.Int64) {
	if !want {
		return nil, new(atomic.Int64)
	}
	size := n - 1
	if size < 0 {
		size = 0
	}
	return sc.GetEdges(size), new(atomic.Int64)
}

// unionEdges unions every undirected edge passing opt.Filter (and the extra
// predicate, when non-nil). Edges whose Union succeeded — a spanning forest
// of the processed edge set relative to the current union-find state — are
// written through the atomic cursor cur into forest when it is non-nil.
// The traversal is the degree-aware blocked arc walk of
// graph.ForArcSegments, so hubs never serialize one vertex block.
func unionEdges(g *graph.Graph, u *uf.UF, opt Options, extra func(v, w int32) bool, forest []graph.Edge, cur *atomic.Int64) {
	collect := opt.WantForest && forest != nil
	const arcGrain = 4096
	g.ForArcSegments(opt.Exec, arcGrain, func(v int32, adj []int32) {
		// Tight per-vertex segment: v is fixed for the range.
		for _, w := range adj {
			if v >= w { // each undirected edge once; skips self-loops
				continue
			}
			if extra != nil && !extra(v, w) {
				continue
			}
			if opt.Filter != nil && !opt.Filter(v, w) {
				continue
			}
			if u.Union(v, w) && collect {
				forest[cur.Add(1)-1] = graph.Edge{U: v, W: w}
			}
		}
	})
}

// finish flattens the union-find into component labels.
func finish(e *parallel.Exec, g *graph.Graph, u *uf.UF, sc *graph.Scratch) *Result {
	n := int(g.N)
	comp := sc.GetInt32(n)
	e.For(n, func(v int) {
		comp[v] = u.Find(int32(v))
	})
	roots := parallel.SumInt64In(e, n, parallel.DefaultGrain, func(lo, hi int) int64 {
		c := int64(0)
		for v := lo; v < hi; v++ {
			if comp[v] == int32(v) {
				c++
			}
		}
		return c
	})
	return &Result{Comp: comp, NumComp: int(roots)}
}

// Normalize remaps component representatives to dense ids 0..NumComp-1 and
// returns the dense labels. The mapping is by increasing representative id,
// so it is deterministic.
func (r *Result) Normalize() []int32 { return r.NormalizeIn(nil) }

// NormalizeIn is Normalize running on the execution context e.
func (r *Result) NormalizeIn(e *parallel.Exec) []int32 {
	n := len(r.Comp)
	dense := make([]int32, n)
	isRoot := make([]int32, n)
	e.For(n, func(v int) {
		if r.Comp[v] == int32(v) {
			isRoot[v] = 1
		}
	})
	prim.ExclusiveScanInt32In(e, isRoot)
	e.For(n, func(v int) {
		dense[v] = isRoot[r.Comp[v]]
	})
	return dense
}
