// Package conn implements parallel graph connectivity.
//
// The primary algorithm is LDD-UF-JTB (Thm. 5.1 of the paper): a low-
// diameter decomposition shrinks the graph into clusters with O(βm) cut
// edges, then a concurrent union-find (Jayanti–Tarjan–Boix-Adserà style)
// unions the cut edges. With β = Θ(1/log n) this gives O(n+m) expected work
// and polylog span. FAST-BCC runs it twice: on the input graph (First-CC,
// producing a spanning forest) and on the implicit skeleton (Last-CC,
// via the edge Filter, never materializing the skeleton).
//
// A plain union-find algorithm (UFAsync, the variant GBBS uses) is provided
// for baselines, and both support the hash-bag/local-search optimization
// toggle the paper ablates in Fig. 6.
package conn

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/parallel"
	"repro/internal/prim"
	"repro/internal/uf"
)

// Algorithm selects the connectivity implementation.
type Algorithm int

const (
	// LDDUFJTB is the theoretically-efficient algorithm of Thm. 5.1.
	LDDUFJTB Algorithm = iota
	// UFAsync unions every edge directly with the concurrent union-find.
	UFAsync
)

// Options configures Connectivity.
type Options struct {
	Algorithm Algorithm
	// Beta is the LDD rate (0 = default 0.2). Ignored by UFAsync.
	Beta float64
	// Seed drives LDD shifts.
	Seed uint64
	// LocalSearch enables the hash-bag/local-search LDD optimization
	// (the paper's "Opt" variant).
	LocalSearch bool
	// Filter, when non-nil, restricts connectivity to edges with
	// Filter(u,w) true. Must be symmetric.
	Filter func(u, w int32) bool
	// WantForest requests a spanning forest of the (filtered) graph.
	WantForest bool
}

// Result is the output of Connectivity.
type Result struct {
	// Comp[v] is the component representative of v (Comp[r] == r).
	Comp []int32
	// NumComp is the number of connected components.
	NumComp int
	// Forest holds spanning forest edges when requested: exactly
	// n - NumComp edges, forming a forest that spans every component.
	Forest []graph.Edge
}

// Connectivity computes the connected components of g under opt.
func Connectivity(g *graph.Graph, opt Options) *Result {
	switch opt.Algorithm {
	case UFAsync:
		return connUF(g, opt)
	case LabelProp:
		return connLabelProp(g, opt)
	default:
		return connLDD(g, opt)
	}
}

func connLDD(g *graph.Graph, opt Options) *Result {
	n := int(g.N)
	dec := ldd.Decompose(g, ldd.Options{
		Beta:        opt.Beta,
		Seed:        opt.Seed,
		LocalSearch: opt.LocalSearch,
		Filter:      opt.Filter,
	})
	u := uf.New(n)
	// Cluster parent edges connect each cluster; they are tree edges by
	// construction, so all of them join the forest.
	parallel.For(n, func(v int) {
		if p := dec.Parent[v]; p != -1 {
			u.Union(int32(v), p)
		}
	})
	// Union cut edges (endpoints in different clusters); harvest the edges
	// whose union merged two sets as forest edges.
	forestCross := unionEdges(g, u, opt, func(v, w int32) bool {
		return dec.Center[v] != dec.Center[w]
	})
	res := finish(g, u)
	if opt.WantForest {
		res.Forest = make([]graph.Edge, 0, n-res.NumComp)
		for v := 0; v < n; v++ {
			if p := dec.Parent[v]; p != -1 {
				res.Forest = append(res.Forest, graph.Edge{U: p, W: int32(v)})
			}
		}
		res.Forest = append(res.Forest, forestCross...)
	}
	return res
}

func connUF(g *graph.Graph, opt Options) *Result {
	u := uf.New(int(g.N))
	forest := unionEdges(g, u, opt, nil)
	res := finish(g, u)
	if opt.WantForest {
		res.Forest = forest
	}
	return res
}

// unionEdges unions every undirected edge passing opt.Filter (and the extra
// predicate, when non-nil) and returns the edges whose Union succeeded —
// a spanning forest of the processed edge set relative to the current
// union-find state.
func unionEdges(g *graph.Graph, u *uf.UF, opt Options, extra func(v, w int32) bool) []graph.Edge {
	n := int(g.N)
	nb := (n + 511) / 512
	outs := make([][]graph.Edge, nb)
	collect := opt.WantForest
	parallel.ForBlock(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*512, (b+1)*512
			if hi > n {
				hi = n
			}
			var out []graph.Edge
			for v := int32(lo); v < int32(hi); v++ {
				for _, w := range g.Neighbors(v) {
					if v >= w { // each undirected edge once; skips self-loops
						continue
					}
					if extra != nil && !extra(v, w) {
						continue
					}
					if opt.Filter != nil && !opt.Filter(v, w) {
						continue
					}
					if u.Union(v, w) && collect {
						out = append(out, graph.Edge{U: v, W: w})
					}
				}
			}
			outs[b] = out
		}
	})
	if !collect {
		return nil
	}
	var forest []graph.Edge
	for _, o := range outs {
		forest = append(forest, o...)
	}
	return forest
}

// finish flattens the union-find into component labels.
func finish(g *graph.Graph, u *uf.UF) *Result {
	n := int(g.N)
	comp := make([]int32, n)
	parallel.For(n, func(v int) {
		comp[v] = u.Find(int32(v))
	})
	var roots atomic.Int64
	parallel.ForBlock(n, parallel.DefaultGrain, func(lo, hi int) {
		c := 0
		for v := lo; v < hi; v++ {
			if comp[v] == int32(v) {
				c++
			}
		}
		roots.Add(int64(c))
	})
	return &Result{Comp: comp, NumComp: int(roots.Load())}
}

// Normalize remaps component representatives to dense ids 0..NumComp-1 and
// returns the dense labels. The mapping is by increasing representative id,
// so it is deterministic.
func (r *Result) Normalize() []int32 {
	n := len(r.Comp)
	dense := make([]int32, n)
	isRoot := make([]int32, n)
	parallel.For(n, func(v int) {
		if r.Comp[v] == int32(v) {
			isRoot[v] = 1
		}
	})
	prim.ExclusiveScanInt32(isRoot)
	parallel.For(n, func(v int) {
		dense[v] = isRoot[r.Comp[v]]
	})
	return dense
}
