// Package crosstest cross-checks every BCC implementation in the
// repository against every other on the full benchmark suite and on random
// multigraphs — the strongest correctness statement the repository makes
// (five algorithms sharing almost no code must produce identical block
// decompositions).
package crosstest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/bfsbcc"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
	"repro/internal/smbcc"
	"repro/internal/tv"
)

// allDecompositions runs every algorithm on g, returning named block sets.
func allDecompositions(g *graph.Graph, seed uint64) map[string][][]int32 {
	out := map[string][][]int32{
		"seq":      seqbcc.BCC(g).Blocks,
		"fast":     core.BCC(g, core.Options{Seed: seed}).Blocks(),
		"fast-opt": core.BCC(g, core.Options{Seed: seed + 1, LocalSearch: true}).Blocks(),
		"gbbs":     bfsbcc.BCC(g, bfsbcc.Options{Seed: seed}).Blocks(),
		"tv":       tv.BCC(g, tv.Options{Seed: seed}).Blocks(),
	}
	if sm, err := smbcc.BCC(g, smbcc.Options{}); err == nil {
		out["sm14"] = sm.Blocks()
	}
	return out
}

func assertAllAgree(t *testing.T, g *graph.Graph, seed uint64) {
	t.Helper()
	ds := allDecompositions(g, seed)
	ref := ds["seq"]
	for name, blocks := range ds {
		if !check.Equal(blocks, ref) {
			t.Fatalf("%s disagrees with seq:\n %s\n vs\n %s",
				name, check.Describe(blocks), check.Describe(ref))
		}
	}
}

func TestAllAlgorithmsAgreeOnSuite(t *testing.T) {
	// The full 27-instance suite at Small scale: every algorithm must
	// produce the identical decomposition on every instance.
	for _, ins := range bench.Suite() {
		ins := ins
		t.Run(ins.Name, func(t *testing.T) {
			if testing.Short() && (ins.Name == "Chn8" || ins.Name == "COS5") {
				t.Skip("short mode")
			}
			assertAllAgree(t, ins.Build(bench.Small), 11)
		})
	}
}

func TestAllAlgorithmsAgreeOnAdversarial(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.MustFromEdges(0, nil)},
		{"singleton", graph.MustFromEdges(1, nil)},
		{"selfloop", graph.MustFromEdges(1, []graph.Edge{{U: 0, W: 0}})},
		{"paralleltriple", graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}, {U: 0, W: 1}, {U: 0, W: 1}})},
		{"star", gen.Star(200)},
		{"clique", gen.Clique(40)},
		{"longchain", gen.Chain(50000)},
		{"binarytree", gen.RandomTree(5000, 3)},
		{"denseclusters", gen.CliqueChain(20, 8)},
		{"bigcycle", gen.Cycle(30000)},
		{"manyisolated", graph.MustFromEdges(1000, []graph.Edge{{U: 0, W: 999}})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			assertAllAgree(t, tc.g, 13)
		})
	}
}

func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			// Bias toward multigraph features: occasional duplicates and
			// self-loops.
			u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
			edges = append(edges, graph.Edge{U: u, W: w})
			if rng.Intn(10) == 0 && len(edges) > 0 {
				edges = append(edges, edges[rng.Intn(len(edges))])
			}
		}
		g := graph.MustFromEdges(n, edges)
		ds := allDecompositions(g, uint64(seed))
		ref := ds["seq"]
		for _, blocks := range ds {
			if !check.Equal(blocks, ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNumBCCMatchesAcrossScales(t *testing.T) {
	// #BCC must be identical between FAST-BCC and SEQ on every small
	// instance — the check the paper runs on every experiment.
	for _, ins := range bench.Suite() {
		g := ins.Build(bench.Small)
		fast := core.BCC(g, core.Options{Seed: 3})
		seq := seqbcc.BCC(g)
		if fast.NumBCC != seq.NumBCC() {
			t.Fatalf("%s: fast %d != seq %d", ins.Name, fast.NumBCC, seq.NumBCC())
		}
	}
}
