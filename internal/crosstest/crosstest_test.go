// Package crosstest cross-checks every registered BCC engine against the
// sequential Hopcroft–Tarjan oracle on the full benchmark suite and on
// random multigraphs — the strongest correctness statement the repository
// makes (six engines sharing almost no code must produce identical block
// decompositions). The engine list is driven off the algorithm registry
// (internal/engine), so a newly registered engine joins the matrix with
// no change here.
package crosstest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bctree"
	"repro/internal/bench"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

// allResults runs every registered engine on g, returning named results.
func allResults(t testing.TB, g *graph.Graph, seed uint64) map[string]*core.Result {
	t.Helper()
	out := map[string]*core.Result{}
	for _, a := range engine.All() {
		res, err := a.Run(g, engine.RunOptions{Seed: seed})
		if err != nil {
			t.Fatalf("engine %s: %v", a.Name(), err)
		}
		out[a.Name()] = res
	}
	return out
}

func assertAllAgree(t testing.TB, g *graph.Graph, seed uint64) {
	t.Helper()
	// The raw sequential implementation is the oracle — independent of
	// the engine adapters, so registry bugs cannot mask themselves.
	ref := seqbcc.BCC(g).Blocks
	for name, res := range allResults(t, g, seed) {
		if !check.Equal(res.Blocks(), ref) {
			t.Fatalf("%s disagrees with seq oracle:\n %s\n vs\n %s",
				name, check.Describe(res.Blocks()), check.Describe(ref))
		}
	}
}

func TestAllEnginesAgreeOnSuite(t *testing.T) {
	// The full 27-instance suite at Small scale: every registered engine
	// must produce the identical decomposition on every instance.
	for _, ins := range bench.Suite() {
		ins := ins
		t.Run(ins.Name, func(t *testing.T) {
			if testing.Short() && (ins.Name == "Chn8" || ins.Name == "COS5") {
				t.Skip("short mode")
			}
			assertAllAgree(t, ins.Build(bench.Small), 11)
		})
	}
}

func TestAllEnginesAgreeOnAdversarial(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.MustFromEdges(0, nil)},
		{"singleton", graph.MustFromEdges(1, nil)},
		{"selfloop", graph.MustFromEdges(1, []graph.Edge{{U: 0, W: 0}})},
		{"paralleltriple", graph.MustFromEdges(2, []graph.Edge{{U: 0, W: 1}, {U: 0, W: 1}, {U: 0, W: 1}})},
		{"star", gen.Star(200)},
		{"clique", gen.Clique(40)},
		{"longchain", gen.Chain(50000)},
		{"binarytree", gen.RandomTree(5000, 3)},
		{"denseclusters", gen.CliqueChain(20, 8)},
		{"bigcycle", gen.Cycle(30000)},
		{"manyisolated", graph.MustFromEdges(1000, []graph.Edge{{U: 0, W: 999}})},
		{"disconnected", gen.Disjoint(gen.CliqueChain(4, 5), gen.Cycle(77))},
		{"forest", gen.Disjoint(gen.RandomTree(300, 2), gen.RandomTree(200, 5))},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			assertAllAgree(t, tc.g, 13)
		})
	}
}

func TestQuickAllEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			// Bias toward multigraph features: occasional duplicates and
			// self-loops.
			u, w := int32(rng.Intn(n)), int32(rng.Intn(n))
			edges = append(edges, graph.Edge{U: u, W: w})
			if rng.Intn(10) == 0 && len(edges) > 0 {
				edges = append(edges, edges[rng.Intn(len(edges))])
			}
		}
		g := graph.MustFromEdges(n, edges)
		ref := seqbcc.BCC(g).Blocks
		for _, res := range allResults(t, g, uint64(seed)) {
			if !check.Equal(res.Blocks(), ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNumBCCMatchesAcrossScales(t *testing.T) {
	// #BCC must be identical between FAST-BCC and SEQ on every small
	// instance — the check the paper runs on every experiment.
	for _, ins := range bench.Suite() {
		g := ins.Build(bench.Small)
		fast := core.BCC(g, core.Options{Seed: 3})
		seq := seqbcc.BCC(g)
		if fast.NumBCC != seq.NumBCC() {
			t.Fatalf("%s: fast %d != seq %d", ins.Name, fast.NumBCC, seq.NumBCC())
		}
	}
}

// TestIndexQueriesAgreeAcrossEngines builds the online query index from
// every engine's Result and checks that all scalar queries answer
// identically on a corpus covering random, forest, multigraph,
// disconnected, and huge-diameter shapes — the serving-path guarantee
// that the algorithm choice is invisible to clients.
func TestIndexQueriesAgreeAcrossEngines(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"random", gen.ER(120, 260, 5)},
		{"forest", gen.Disjoint(gen.RandomTree(80, 3), gen.RandomTree(50, 2))},
		{"multigraph", graph.MustFromEdges(9, []graph.Edge{
			{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}, {U: 2, W: 3},
			{U: 3, W: 4}, {U: 4, W: 4}, {U: 5, W: 6}, {U: 6, W: 7}, {U: 7, W: 5}})},
		{"disconnected", gen.Disjoint(gen.CliqueChain(3, 4), gen.Cycle(15))},
		{"hugediameter", gen.Chain(4000)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			results := allResults(t, tc.g, 23)
			indexes := map[string]*bctree.Index{}
			for name, res := range results {
				indexes[name] = bctree.New(tc.g, res)
			}
			ref := indexes["fast"]
			n := tc.g.NumVertices()
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 400; trial++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				x := int32(rng.Intn(n))
				for name, idx := range indexes {
					if idx.Connected(u, v) != ref.Connected(u, v) ||
						idx.Biconnected(u, v) != ref.Biconnected(u, v) ||
						idx.TwoEdgeConnected(u, v) != ref.TwoEdgeConnected(u, v) {
						t.Fatalf("%s index disagrees with fast on (%d,%d)", name, u, v)
					}
					if ref.Connected(u, v) {
						if idx.NumCutsOnPath(u, v) != ref.NumCutsOnPath(u, v) ||
							idx.NumBridgesOnPath(u, v) != ref.NumBridgesOnPath(u, v) ||
							idx.Separates(x, u, v) != ref.Separates(x, u, v) {
							t.Fatalf("%s index path queries disagree on (%d,%d,x=%d)", name, u, v, x)
						}
					}
				}
			}
		})
	}
}
