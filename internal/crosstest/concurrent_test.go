package crosstest

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/parallel"
)

// TestAllAlgorithmsAgreeWithWorkers forces multi-worker execution even on a
// single-CPU host: raising GOMAXPROCS and the worker count makes the
// chunked fork-join layer actually spawn goroutines, so the CAS paths
// (union-find links, LDD claims, frontier dedup, atomic min/max tags) run
// interleaved. Combined with `go test -race` this exercises the concurrency
// the plain suite short-circuits when Procs() == 1.
func TestAllAlgorithmsAgreeWithWorkers(t *testing.T) {
	oldGomax := runtime.GOMAXPROCS(8)
	oldProcs := parallel.SetProcs(8)
	defer func() {
		runtime.GOMAXPROCS(oldGomax)
		parallel.SetProcs(oldProcs)
	}()
	names := []string{"YT", "OK", "USA", "GL5", "SQR", "Chn7", "REC'"}
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		ins, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("missing instance %s", name)
		}
		t.Run(name, func(t *testing.T) {
			assertAllAgree(t, ins.Build(bench.Small), 29)
		})
	}
}

// TestRepeatedRunsWithWorkersAreConsistent hammers FAST-BCC with many
// worker-parallel repetitions on one graph: the decomposition must be
// identical every time even though the spanning forest construction races
// internally (CAS winners may differ between runs with different seeds).
func TestRepeatedRunsWithWorkersAreConsistent(t *testing.T) {
	oldGomax := runtime.GOMAXPROCS(8)
	oldProcs := parallel.SetProcs(8)
	defer func() {
		runtime.GOMAXPROCS(oldGomax)
		parallel.SetProcs(oldProcs)
	}()
	ins, _ := bench.ByName("GL2")
	g := ins.Build(bench.Small)
	for seed := uint64(0); seed < 6; seed++ {
		assertAllAgree(t, g, seed)
	}
}
