package crosstest

import (
	"math/rand"
	"testing"

	fastbcc "repro"
	"repro/internal/conn"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestReorderedIndexAnswersMatch is the cross-test behind the serving
// stack's opt-in component reorder (cmd/bccd "reorder", cmd/bcc
// -reorder): relabeling a graph with graph.ReorderByComponent and
// decomposing + indexing the result must answer every query exactly like
// the original graph, modulo the permutation. This is what makes the
// server-side translation (original ids in, original ids out) sound.
func TestReorderedIndexAnswersMatch(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":         gen.RMAT(11, 8, 0x5ee),
		"grid":         gen.Grid2D(30, 30, true),
		"roadlike":     gen.RoadLike(24, 24, 0.1, 0x5ef),
		"disconnected": disconnectedUnion(t),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			n := g.NumVertices()
			cc := conn.Connectivity(g, conn.Options{Seed: 9})
			rg, newID := graph.ReorderByComponentIn(nil, g, cc.Comp)
			if rg.NumVertices() != n || rg.NumEdges() != g.NumEdges() {
				t.Fatalf("reorder changed the graph shape: n %d->%d m %d->%d",
					n, rg.NumVertices(), g.NumEdges(), rg.NumEdges())
			}

			res, idx := fastbcc.BuildIndex(g, &fastbcc.Options{Seed: 4})
			rres, ridx := fastbcc.BuildIndex(rg, &fastbcc.Options{Seed: 4})
			if res.NumBCC != rres.NumBCC {
				t.Fatalf("NumBCC %d != reordered %d", res.NumBCC, rres.NumBCC)
			}
			if got, want := len(rres.ArticulationPoints()), len(res.ArticulationPoints()); got != want {
				t.Fatalf("articulation points %d != reordered %d", want, got)
			}

			rng := rand.New(rand.NewSource(0xd15c))
			for i := 0; i < 500; i++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				x := int32(rng.Intn(n))
				ru, rv, rx := newID[u], newID[v], newID[x]
				if got, want := ridx.Connected(ru, rv), idx.Connected(u, v); got != want {
					t.Fatalf("Connected(%d,%d): reordered %v, original %v", u, v, got, want)
				}
				if got, want := ridx.Biconnected(ru, rv), idx.Biconnected(u, v); got != want {
					t.Fatalf("Biconnected(%d,%d): reordered %v, original %v", u, v, got, want)
				}
				if got, want := ridx.TwoEdgeConnected(ru, rv), idx.TwoEdgeConnected(u, v); got != want {
					t.Fatalf("TwoEdgeConnected(%d,%d): reordered %v, original %v", u, v, got, want)
				}
				if got, want := ridx.Separates(rx, ru, rv), idx.Separates(x, u, v); got != want {
					t.Fatalf("Separates(%d,%d,%d): reordered %v, original %v", x, u, v, got, want)
				}
				if got, want := ridx.NumCutsOnPath(ru, rv), idx.NumCutsOnPath(u, v); got != want {
					t.Fatalf("NumCutsOnPath(%d,%d): reordered %d, original %d", u, v, got, want)
				}
				if got, want := ridx.NumBridgesOnPath(ru, rv), idx.NumBridgesOnPath(u, v); got != want {
					t.Fatalf("NumBridgesOnPath(%d,%d): reordered %d, original %d", u, v, got, want)
				}
				// Enumerations must match as sets under the permutation.
				cuts := idx.CutsOnPath(u, v)
				rcuts := ridx.CutsOnPath(ru, rv)
				if len(cuts) != len(rcuts) {
					t.Fatalf("CutsOnPath(%d,%d): %d cuts vs %d reordered", u, v, len(cuts), len(rcuts))
				}
				seen := map[int32]bool{}
				for _, c := range cuts {
					seen[newID[c]] = true
				}
				for _, c := range rcuts {
					if !seen[c] {
						t.Fatalf("CutsOnPath(%d,%d): reordered cut %d not the image of an original cut", u, v, c)
					}
				}
			}
		})
	}
}

// disconnectedUnion glues three small graphs into one vertex space with
// no edges between them, so the reorder actually has components to make
// contiguous.
func disconnectedUnion(t *testing.T) *graph.Graph {
	t.Helper()
	a := gen.RMAT(8, 8, 1)
	b := gen.Grid2D(12, 12, false)
	var edges []graph.Edge
	off := int32(0)
	for _, g := range []*graph.Graph{a, b, gen.Chain(60)} {
		for _, e := range g.Edges() {
			edges = append(edges, graph.Edge{U: e.U + off, W: e.W + off})
		}
		off += int32(g.NumVertices())
	}
	// Shuffle the ids so components are NOT contiguous before the reorder.
	perm := rand.New(rand.NewSource(42)).Perm(int(off))
	for i := range edges {
		edges[i] = graph.Edge{U: int32(perm[edges[i].U]), W: int32(perm[edges[i].W])}
	}
	g, err := graph.FromEdges(int(off), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
