// Package wire implements the compact binary batch-query protocol bccd
// speaks alongside JSON — the codec behind Content-Type negotiation on
// POST /v1/graphs/{name}/query/batch.
//
// JSON costs ~60 bytes and two allocations per query; a wire record is
// 13 bytes and a whole batch decodes into two preallocated slices. The
// framing is little-endian and length-prefixed so a reader can bound
// every allocation before it happens:
//
//	request  = u32 frameLen | "bcq1" | u32 count | count × record
//	record   = u8 op | i32 u | i32 v | i32 x          (13 bytes)
//	response = u32 frameLen | "bca1" | i64 version | u32 count | count × i32
//
// frameLen counts the bytes after the length prefix itself. count is
// bounded by MaxQueries and cross-checked against frameLen before any
// slice is sized from it, so a hostile 4 GiB length prefix or a
// count/length mismatch fails fast with a small, fixed read — the same
// discipline as the graph loader's ReadBinary.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	fastbcc "repro"
)

// ContentType is the MIME type negotiated for binary batch frames.
const ContentType = "application/x-fastbcc-batch"

// MaxQueries bounds the queries in one request frame (2^20 ≈ 1M — a
// 13 MiB frame — far above any sane batch, far below an allocation
// attack).
const MaxQueries = 1 << 20

// Frame magics: "bcq1" opens a request, "bca1" an answer.
var (
	reqMagic  = [4]byte{'b', 'c', 'q', '1'}
	respMagic = [4]byte{'b', 'c', 'a', '1'}
)

const (
	recordSize     = 13        // u8 op + 3 × i32
	reqHeaderSize  = 4 + 4     // magic + count
	respHeaderSize = 4 + 8 + 4 // magic + version + count
	// readChunk caps how much a frame read trusts the declared length
	// per allocation step: a lying prefix costs at most one chunk.
	readChunk = 1 << 16
)

// ErrTooLarge is wrapped by decode errors for frames whose declared
// query count exceeds MaxQueries.
var ErrTooLarge = errors.New("batch exceeds query limit")

// ErrMalformed is wrapped by every structural decode error: bad magic,
// truncated frame, count/length mismatch, trailing bytes.
var ErrMalformed = errors.New("malformed batch frame")

// AppendRequest appends a request frame carrying qs to dst and returns
// the extended slice. Callers stream the result straight into the
// request body; a reused dst makes encoding allocation-free.
func AppendRequest(dst []byte, qs []fastbcc.Query) []byte {
	frameLen := reqHeaderSize + len(qs)*recordSize
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, reqMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(qs)))
	for i := range qs {
		q := &qs[i]
		dst = append(dst, byte(q.Op))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q.U))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q.V))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(q.X))
	}
	return dst
}

// ReadRequest decodes one request frame from r, appending the queries
// to dst[:0] (pass a recycled slice to decode without allocating; nil
// allocates). Ops are not validated here — the query engine rejects
// unknown ops per query index, which gives better errors than the
// frame layer could.
func ReadRequest(r io.Reader, dst []fastbcc.Query) ([]fastbcc.Query, error) {
	body, err := readFrame(r, reqMagic, reqHeaderSize)
	if err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(body[4:8])
	if count > MaxQueries {
		return nil, fmt.Errorf("wire: %w: %d > %d", ErrTooLarge, count, MaxQueries)
	}
	records := body[reqHeaderSize:]
	if len(records) != int(count)*recordSize {
		return nil, fmt.Errorf("wire: %w: %d records declared, %d bytes of payload",
			ErrMalformed, count, len(records))
	}
	dst = dst[:0]
	if cap(dst) < int(count) {
		dst = make([]fastbcc.Query, 0, count)
	}
	for i := 0; i < int(count); i++ {
		rec := records[i*recordSize:]
		dst = append(dst, fastbcc.Query{
			Op: fastbcc.QueryOp(rec[0]),
			U:  int32(binary.LittleEndian.Uint32(rec[1:5])),
			V:  int32(binary.LittleEndian.Uint32(rec[5:9])),
			X:  int32(binary.LittleEndian.Uint32(rec[9:13])),
		})
	}
	return dst, nil
}

// AppendResponse appends a response frame to dst: the snapshot version
// the batch was answered from, then one i32 per answer.
func AppendResponse(dst []byte, version int64, as []fastbcc.Answer) []byte {
	frameLen := respHeaderSize + len(as)*4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, respMagic[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(version))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(as)))
	for _, a := range as {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(a))
	}
	return dst
}

// ReadResponse decodes one response frame from r, appending the answers
// to dst[:0] (recycle dst to avoid allocation). It returns the snapshot
// version alongside the answers.
func ReadResponse(r io.Reader, dst []fastbcc.Answer) ([]fastbcc.Answer, int64, error) {
	body, err := readFrame(r, respMagic, respHeaderSize)
	if err != nil {
		return nil, 0, err
	}
	version := int64(binary.LittleEndian.Uint64(body[4:12]))
	count := binary.LittleEndian.Uint32(body[12:16])
	if count > MaxQueries {
		return nil, 0, fmt.Errorf("wire: %w: %d > %d", ErrTooLarge, count, MaxQueries)
	}
	payload := body[respHeaderSize:]
	if len(payload) != int(count)*4 {
		return nil, 0, fmt.Errorf("wire: %w: %d answers declared, %d bytes of payload",
			ErrMalformed, count, len(payload))
	}
	dst = dst[:0]
	if cap(dst) < int(count) {
		dst = make([]fastbcc.Answer, 0, count)
	}
	for i := 0; i < int(count); i++ {
		dst = append(dst, fastbcc.Answer(binary.LittleEndian.Uint32(payload[i*4:])))
	}
	return dst, version, nil
}

// maxFrameLen is the largest frame either side legitimately produces:
// a MaxQueries request (responses are strictly smaller).
const maxFrameLen = reqHeaderSize + MaxQueries*recordSize

// readFrame reads one length-prefixed frame and validates its magic and
// minimum size. The declared length is bounded before any allocation,
// and the body is read in chunks so a prefix lying about a huge frame
// over a trickle connection costs at most one chunk of memory.
func readFrame(r io.Reader, magic [4]byte, minLen int) ([]byte, error) {
	return readFrameBounded(r, magic, minLen, maxFrameLen)
}

// readFrameBounded is readFrame with an explicit frame-length cap (the
// mutation frames carry a different payload geometry, so their cap
// differs).
func readFrameBounded(r io.Reader, magic [4]byte, minLen, maxLen int) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, fmt.Errorf("wire: %w: reading length prefix: %v", ErrMalformed, err)
	}
	frameLen := int(binary.LittleEndian.Uint32(pfx[:]))
	if frameLen > maxLen {
		return nil, fmt.Errorf("wire: %w: frame of %d bytes exceeds limit %d",
			ErrTooLarge, frameLen, maxLen)
	}
	if frameLen < minLen {
		return nil, fmt.Errorf("wire: %w: frame of %d bytes shorter than header (%d)",
			ErrMalformed, frameLen, minLen)
	}
	body := make([]byte, 0, min(frameLen, readChunk))
	for len(body) < frameLen {
		n := min(frameLen-len(body), readChunk)
		body = append(body, make([]byte, n)...)
		if _, err := io.ReadFull(r, body[len(body)-n:]); err != nil {
			return nil, fmt.Errorf("wire: %w: frame truncated at %d of %d bytes",
				ErrMalformed, len(body)-n, frameLen)
		}
	}
	if [4]byte(body[:4]) != magic {
		return nil, fmt.Errorf("wire: %w: bad magic %q", ErrMalformed, body[:4])
	}
	return body, nil
}
