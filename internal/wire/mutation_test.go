package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	fastbcc "repro"
)

func TestMutationRoundTrip(t *testing.T) {
	adds := []fastbcc.Edge{{U: 0, W: 1}, {U: 5, W: 2}}
	dels := []fastbcc.Edge{{U: 3, W: 3}}
	frame := AppendMutation(nil, adds, dels)
	gotAdds, gotDels, err := ReadMutation(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAdds) != len(adds) || len(gotDels) != len(dels) {
		t.Fatalf("counts: %d adds, %d dels", len(gotAdds), len(gotDels))
	}
	for i := range adds {
		if gotAdds[i] != adds[i] {
			t.Fatalf("add %d: %+v != %+v", i, gotAdds[i], adds[i])
		}
	}
	for i := range dels {
		if gotDels[i] != dels[i] {
			t.Fatalf("del %d: %+v != %+v", i, gotDels[i], dels[i])
		}
	}
}

func TestMutationEmpty(t *testing.T) {
	frame := AppendMutation(nil, nil, nil)
	adds, dels, err := ReadMutation(bytes.NewReader(frame))
	if err != nil || adds != nil || dels != nil {
		t.Fatalf("empty mutation: adds=%v dels=%v err=%v", adds, dels, err)
	}
}

func TestMutationResultRoundTrip(t *testing.T) {
	want := fastbcc.MutationResult{
		Version: 42, Fast: 3, Collapsed: 1, Queued: 7, Pending: 9,
		DeltaAge: 1500 * time.Millisecond,
	}
	frame := AppendMutationResult(nil, want)
	got, err := ReadMutationResult(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
}

func TestMutationMalformed(t *testing.T) {
	good := AppendMutation(nil, []fastbcc.Edge{{U: 1, W: 2}}, nil)

	// Truncated body.
	if _, _, err := ReadMutation(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated frame: %v", err)
	}
	// Count/length mismatch: bump addCount without payload.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[8:12], 2)
	if _, _, err := ReadMutation(bytes.NewReader(bad)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("count mismatch: %v", err)
	}
	// Oversized declared count.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[0:4], uint32(maxMutFrameLen))
	binary.LittleEndian.PutUint32(bad[8:12], MaxMutations+1)
	if _, _, err := ReadMutation(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized count accepted")
	}
	// Hostile length prefix.
	huge := binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF)
	if _, _, err := ReadMutation(bytes.NewReader(huge)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("hostile length prefix: %v", err)
	}
	// Wrong magic: a query frame is not a mutation frame.
	q := AppendRequest(nil, []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 1}})
	if _, _, err := ReadMutation(bytes.NewReader(q)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("query magic on mutation decode: %v", err)
	}
	// A result frame with trailing bytes.
	r := AppendMutationResult(nil, fastbcc.MutationResult{Version: 1})
	r = append(r, 0xEE)
	binary.LittleEndian.PutUint32(r[0:4], uint32(mutRespHeaderSize+1))
	if _, err := ReadMutationResult(bytes.NewReader(r)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing bytes on result decode: %v", err)
	}
}

// FuzzMutationDecode extends the wire fuzz corpus to mutation frames:
// the decoders must never panic or over-allocate, and anything that
// decodes must round-trip.
func FuzzMutationDecode(f *testing.F) {
	f.Add(AppendMutation(nil, []fastbcc.Edge{{U: 0, W: 1}}, []fastbcc.Edge{{U: 2, W: 3}}))
	f.Add(AppendMutation(nil, nil, nil))
	f.Add(AppendMutationResult(nil, fastbcc.MutationResult{Version: 9, Fast: 1, Pending: 2}))
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		if adds, dels, err := ReadMutation(bytes.NewReader(data)); err == nil {
			frame := AppendMutation(nil, adds, dels)
			a2, d2, err := ReadMutation(bytes.NewReader(frame))
			if err != nil || len(a2) != len(adds) || len(d2) != len(dels) {
				t.Fatalf("mutation round trip diverged: %v", err)
			}
			for i := range adds {
				if a2[i] != adds[i] {
					t.Fatalf("round trip changed add %d", i)
				}
			}
			for i := range dels {
				if d2[i] != dels[i] {
					t.Fatalf("round trip changed del %d", i)
				}
			}
		}
		if res, err := ReadMutationResult(bytes.NewReader(data)); err == nil {
			frame := AppendMutationResult(nil, res)
			again, err := ReadMutationResult(bytes.NewReader(frame))
			if err != nil || again != res {
				t.Fatalf("result round trip diverged: %v", err)
			}
		}
	})
}
