package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	fastbcc "repro"
)

func randQueries(rng *rand.Rand, n int) []fastbcc.Query {
	qs := make([]fastbcc.Query, n)
	for i := range qs {
		qs[i] = fastbcc.Query{
			Op: fastbcc.QueryOp(rng.Intn(8)), // includes invalid ops: the frame layer passes them through
			U:  rng.Int31() - rng.Int31(),
			V:  rng.Int31() - rng.Int31(),
			X:  rng.Int31() - rng.Int31(),
		}
	}
	return qs
}

func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 3, 256, 10000} {
		qs := randQueries(rng, n)
		frame := AppendRequest(nil, qs)
		got, err := ReadRequest(bytes.NewReader(frame), nil)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if len(got) != len(qs) {
			t.Fatalf("n=%d: got %d queries", n, len(got))
		}
		for i := range qs {
			if got[i] != qs[i] {
				t.Fatalf("n=%d: query %d: got %+v, want %+v", n, i, got[i], qs[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	as := []fastbcc.Answer{0, 1, -5, 1 << 20}
	frame := AppendResponse(nil, 42, as)
	got, version, err := ReadResponse(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != 42 {
		t.Fatalf("version = %d, want 42", version)
	}
	if len(got) != len(as) {
		t.Fatalf("got %d answers, want %d", len(got), len(as))
	}
	for i := range as {
		if got[i] != as[i] {
			t.Fatalf("answer %d: got %d, want %d", i, got[i], as[i])
		}
	}
}

// TestDecodeReusesBuffers: decoding into recycled slices must not
// allocate per element (the serving loop's contract).
func TestDecodeReusesBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates the alloc count")
	}
	qs := randQueries(rand.New(rand.NewSource(1)), 512)
	frame := AppendRequest(nil, qs)
	dst := make([]fastbcc.Query, 0, 512)
	rd := bytes.NewReader(frame)
	avg := testing.AllocsPerRun(50, func() {
		rd.Reset(frame)
		var err error
		dst, err = ReadRequest(rd, dst)
		if err != nil {
			t.Fatal(err)
		}
	})
	// One allocation remains: the frame body buffer readFrame builds.
	if avg > 2 {
		t.Fatalf("ReadRequest with recycled dst allocates %.1f/op", avg)
	}
}

func TestTruncatedFrames(t *testing.T) {
	frame := AppendRequest(nil, randQueries(rand.New(rand.NewSource(2)), 16))
	for cut := 0; cut < len(frame); cut += 7 {
		_, err := ReadRequest(bytes.NewReader(frame[:cut]), nil)
		if err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded successfully", cut, len(frame))
		}
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	// A frame declaring ~4 GiB must be rejected from the prefix alone,
	// before any allocation sized by it.
	frame := binary.LittleEndian.AppendUint32(nil, 0xFFFFFFF0)
	frame = append(frame, reqMagic[:]...)
	_, err := ReadRequest(bytes.NewReader(frame), nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("4 GiB prefix: got %v, want ErrTooLarge", err)
	}
}

func TestTooManyQueries(t *testing.T) {
	// Valid frame length, count field over MaxQueries.
	body := append([]byte{}, reqMagic[:]...)
	body = binary.LittleEndian.AppendUint32(body, MaxQueries+1)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	_, err := ReadRequest(bytes.NewReader(frame), nil)
	if err == nil {
		t.Fatal("count > MaxQueries decoded successfully")
	}
}

func TestCountLengthMismatch(t *testing.T) {
	// Declares 3 queries but carries bytes for 2.
	body := append([]byte{}, reqMagic[:]...)
	body = binary.LittleEndian.AppendUint32(body, 3)
	body = append(body, make([]byte, 2*recordSize)...)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	_, err := ReadRequest(bytes.NewReader(frame), nil)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("count/length mismatch: got %v, want ErrMalformed", err)
	}
}

func TestBadMagic(t *testing.T) {
	frame := AppendResponse(nil, 1, []fastbcc.Answer{1})
	// A response frame is not a request frame.
	_, err := ReadRequest(bytes.NewReader(frame), nil)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("response magic on request decode: got %v, want ErrMalformed", err)
	}
}

// FuzzWireDecode throws arbitrary bytes at both decoders (they must
// never panic or over-allocate) and round-trips any input that decodes
// as a request.
func FuzzWireDecode(f *testing.F) {
	f.Add(AppendRequest(nil, []fastbcc.Query{{Op: fastbcc.OpConnected, U: 0, V: 6}}))
	f.Add(AppendResponse(nil, 3, []fastbcc.Answer{1, 0, 7}))
	f.Add([]byte{})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		if qs, err := ReadRequest(bytes.NewReader(data), nil); err == nil {
			frame := AppendRequest(nil, qs)
			again, err := ReadRequest(bytes.NewReader(frame), nil)
			if err != nil {
				t.Fatalf("re-decode of re-encoded frame failed: %v", err)
			}
			if len(again) != len(qs) {
				t.Fatalf("round trip changed count: %d -> %d", len(qs), len(again))
			}
			for i := range qs {
				if again[i] != qs[i] {
					t.Fatalf("round trip changed query %d", i)
				}
			}
		}
		if as, version, err := ReadResponse(bytes.NewReader(data), nil); err == nil {
			frame := AppendResponse(nil, version, as)
			again, v2, err := ReadResponse(bytes.NewReader(frame), nil)
			if err != nil || v2 != version || len(again) != len(as) {
				t.Fatalf("response round trip diverged: %v", err)
			}
		}
	})
}
