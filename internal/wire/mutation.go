package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	fastbcc "repro"
)

// Mutation frames: the binary codec behind POST /v1/graphs/{name}/edges,
// negotiated exactly like the batch-query frames:
//
//	request  = u32 frameLen | "bcu1" | u32 addCount | u32 delCount |
//	           addCount × edge | delCount × edge
//	edge     = i32 u | i32 w                          (8 bytes)
//	response = u32 frameLen | "bcm1" | i64 version | u32 fast |
//	           u32 collapsed | u32 queued | u32 pending | i64 deltaAgeNs
//
// frameLen counts the bytes after the length prefix; both counts are
// bounded by MaxMutations and cross-checked against frameLen before any
// slice is sized from them — the same allocation discipline as the
// query frames.

// MutationContentType is the MIME type negotiated for binary mutation
// frames.
const MutationContentType = "application/x-fastbcc-mutation"

// MaxMutations bounds adds+dels in one request frame.
const MaxMutations = 1 << 20

// Frame magics: "bcu1" opens a mutation request (update), "bcm1" its
// result.
var (
	mutReqMagic  = [4]byte{'b', 'c', 'u', '1'}
	mutRespMagic = [4]byte{'b', 'c', 'm', '1'}
)

const (
	edgeSize          = 8               // 2 × i32
	mutReqHeaderSize  = 4 + 4 + 4       // magic + addCount + delCount
	mutRespHeaderSize = 4 + 8 + 4*4 + 8 // magic + version + 4 counters + ageNs
	maxMutFrameLen    = mutReqHeaderSize + MaxMutations*edgeSize
)

// AppendMutation appends a mutation request frame carrying adds and dels
// to dst and returns the extended slice.
func AppendMutation(dst []byte, adds, dels []fastbcc.Edge) []byte {
	frameLen := mutReqHeaderSize + (len(adds)+len(dels))*edgeSize
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameLen))
	dst = append(dst, mutReqMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(adds)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dels)))
	for _, es := range [2][]fastbcc.Edge{adds, dels} {
		for _, e := range es {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.U))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.W))
		}
	}
	return dst
}

// ReadMutation decodes one mutation request frame from r. Endpoint
// bounds are not validated here — the Store rejects out-of-range ids
// with a better error than the frame layer could give.
func ReadMutation(r io.Reader) (adds, dels []fastbcc.Edge, err error) {
	body, err := readMutFrame(r, mutReqMagic, mutReqHeaderSize)
	if err != nil {
		return nil, nil, err
	}
	addCount := binary.LittleEndian.Uint32(body[4:8])
	delCount := binary.LittleEndian.Uint32(body[8:12])
	if addCount > MaxMutations || delCount > MaxMutations ||
		addCount+delCount > MaxMutations {
		return nil, nil, fmt.Errorf("wire: %w: %d+%d > %d",
			ErrTooLarge, addCount, delCount, MaxMutations)
	}
	payload := body[mutReqHeaderSize:]
	if len(payload) != int(addCount+delCount)*edgeSize {
		return nil, nil, fmt.Errorf("wire: %w: %d+%d edges declared, %d bytes of payload",
			ErrMalformed, addCount, delCount, len(payload))
	}
	decode := func(n uint32) []fastbcc.Edge {
		if n == 0 {
			return nil
		}
		out := make([]fastbcc.Edge, 0, n)
		for i := uint32(0); i < n; i++ {
			rec := payload[i*edgeSize:]
			out = append(out, fastbcc.Edge{
				U: int32(binary.LittleEndian.Uint32(rec[0:4])),
				W: int32(binary.LittleEndian.Uint32(rec[4:8])),
			})
		}
		payload = payload[n*edgeSize:]
		return out
	}
	adds = decode(addCount)
	dels = decode(delCount)
	return adds, dels, nil
}

// AppendMutationResult appends a mutation response frame carrying res to
// dst and returns the extended slice.
func AppendMutationResult(dst []byte, res fastbcc.MutationResult) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(mutRespHeaderSize))
	dst = append(dst, mutRespMagic[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(res.Version))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Fast))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Collapsed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Queued))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(res.Pending))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(res.DeltaAge))
	return dst
}

// ReadMutationResult decodes one mutation response frame from r.
func ReadMutationResult(r io.Reader) (fastbcc.MutationResult, error) {
	body, err := readMutFrame(r, mutRespMagic, mutRespHeaderSize)
	if err != nil {
		return fastbcc.MutationResult{}, err
	}
	if len(body) != mutRespHeaderSize {
		return fastbcc.MutationResult{}, fmt.Errorf("wire: %w: result frame of %d bytes, want %d",
			ErrMalformed, len(body), mutRespHeaderSize)
	}
	return fastbcc.MutationResult{
		Version:   int64(binary.LittleEndian.Uint64(body[4:12])),
		Fast:      int(binary.LittleEndian.Uint32(body[12:16])),
		Collapsed: int(binary.LittleEndian.Uint32(body[16:20])),
		Queued:    int(binary.LittleEndian.Uint32(body[20:24])),
		Pending:   int(binary.LittleEndian.Uint32(body[24:28])),
		DeltaAge:  time.Duration(binary.LittleEndian.Uint64(body[28:36])),
	}, nil
}

// readMutFrame is readFrame with the mutation frames' length bound.
func readMutFrame(r io.Reader, magic [4]byte, minLen int) ([]byte, error) {
	return readFrameBounded(r, magic, minLen, maxMutFrameLen)
}
