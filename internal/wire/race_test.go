//go:build race

package wire

// The race detector's instrumentation adds allocations the exact
// allocs-per-op assertions would misattribute to the codec; the alloc
// contract is checked by the non-race CI test step.
const raceEnabled = true
