package core

import (
	"repro/internal/parallel"
)

// MergeBlockPath returns a new decomposition equal to r except that the
// blocks named by labels — which must be the blocks on one block-cut
// tree path, at least two of them — are merged into a single block. This
// is the incremental-biconnectivity update of Westbrook & Tarjan: adding
// an edge (u, v) inside one connected component collapses exactly the
// blocks on the BC-tree path between u and v into one, and changes
// nothing else.
//
// The merge is a bounded parallel pass over the paper's flat O(n)
// representation, no pipeline rerun: every member of a path block is
// relabeled to one surviving label, the dead labels' heads are cleared,
// and the surviving label's head becomes the path's unique topmost
// vertex in the spanning forest. Label ids are not re-densified — dead
// labels keep their ids with Head == -1, exactly the shape of a root
// singleton, which every derived structure (LabelSizes, articulation
// points, BlockCutTree, bridges, 2ECC) already skips.
//
// Parent is shared with r (it is immutable); Label, Head, and the label
// size cache are fresh copies, so r itself is never mutated and stays
// safe to serve concurrently. Returns nil if the path labels do not
// describe a mergeable path (defensive: callers fall back to a full
// rebuild).
func MergeBlockPath(e *parallel.Exec, r *Result, labels []int32) *Result {
	if len(labels) < 2 {
		return nil
	}
	n := len(r.Label)
	target := labels[0]

	// remap[l] = target for every path label, identity elsewhere. The
	// identity fill doubles as the "is path label" test below.
	remap := make([]int32, r.NumLabels)
	e.Iota(remap, 0)
	for _, l := range labels {
		if l < 0 || int(l) >= r.NumLabels || r.Head[l] == -1 {
			return nil
		}
		remap[l] = target
	}

	// The merged block's head is the path's unique topmost vertex in the
	// spanning forest: the one path-block head that is not itself a
	// member of a path block (every interior cut vertex on the path is a
	// member of the adjacent block toward the top, so its label remaps to
	// target; a forest root heads only, so it also qualifies).
	head := int32(-1)
	for _, l := range labels {
		h := r.Head[l]
		if r.Parent[h] == -1 || remap[r.Label[h]] != target {
			head = h
			break
		}
	}
	if head == -1 {
		return nil
	}

	label := make([]int32, n)
	e.For(n, func(v int) { label[v] = remap[r.Label[v]] })

	newHead := make([]int32, r.NumLabels)
	copy(newHead, r.Head)
	oldCount := r.LabelSizes()
	count := make([]int32, r.NumLabels)
	copy(count, oldCount)
	var total int32
	for _, l := range labels {
		total += oldCount[l]
		newHead[l] = -1
		count[l] = 0
	}
	newHead[target] = head
	count[target] = total

	return &Result{
		Label:      label,
		Head:       newHead,
		Parent:     r.Parent,
		NumLabels:  r.NumLabels,
		NumBCC:     r.NumBCC - (len(labels) - 1),
		Times:      r.Times,
		AuxBytes:   r.AuxBytes,
		labelCount: count,
	}
}
