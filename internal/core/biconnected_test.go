package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

func TestBiconnectedKnown(t *testing.T) {
	// Barbell(3,1): K3 {0,1,2} — bridge 2-3 — K3 {3,4,5}.
	g := gen.Barbell(3, 1)
	res := BCC(g, Options{Seed: 1})
	yes := [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	no := [][2]int32{{0, 3}, {1, 4}, {2, 4}, {0, 5}}
	for _, p := range yes {
		if !res.Biconnected(p[0], p[1]) {
			t.Fatalf("Biconnected(%d,%d) = false, want true", p[0], p[1])
		}
	}
	for _, p := range no {
		if res.Biconnected(p[0], p[1]) {
			t.Fatalf("Biconnected(%d,%d) = true, want false", p[0], p[1])
		}
	}
	if res.Biconnected(2, 2) {
		t.Fatal("a vertex is not biconnected with itself")
	}
}

func TestBiconnectedMatchesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(60)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(trial)})
		// Reference relation from the sequential blocks.
		ref := map[[2]int32]bool{}
		for _, b := range seqbcc.BCC(g).Blocks {
			for i := 0; i < len(b); i++ {
				for j := i + 1; j < len(b); j++ {
					ref[[2]int32{b[i], b[j]}] = true
					ref[[2]int32{b[j], b[i]}] = true
				}
			}
		}
		for u := int32(0); u < int32(n); u++ {
			for w := int32(0); w < int32(n); w++ {
				if u == w {
					continue
				}
				if res.Biconnected(u, w) != ref[[2]int32{u, w}] {
					t.Fatalf("trial %d: Biconnected(%d,%d) = %v, blocks say %v",
						trial, u, w, res.Biconnected(u, w), ref[[2]int32{u, w}])
				}
			}
		}
	}
}

func TestBiconnectedIsolatedAndRoots(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, W: 1}})
	res := BCC(g, Options{Seed: 3})
	if !res.Biconnected(0, 1) {
		t.Fatal("edge endpoints must be biconnected")
	}
	if res.Biconnected(2, 3) || res.Biconnected(0, 2) {
		t.Fatal("isolated vertices are biconnected with nothing")
	}
}
