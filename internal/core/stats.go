package core

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/prim"
)

// BlockSizes returns the number of vertices of every block, indexed by
// dense label. Labels that are not blocks (root singletons) get size 0.
// Computed in parallel with atomic per-label counters.
func (r *Result) BlockSizes() []int32 {
	sizes := make([]int32, r.NumLabels)
	parallel.ForBlock(len(r.Label), parallel.DefaultGrain, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if r.Parent[v] != -1 {
				atomic.AddInt32(&sizes[r.Label[v]], 1)
			}
		}
	})
	parallel.For(r.NumLabels, func(l int) {
		if r.Head[l] != -1 {
			sizes[l]++ // the component head
		} else {
			sizes[l] = 0 // root singleton, not a block
		}
	})
	return sizes
}

// LargestBlock returns the size of the largest block and its dense label
// (-1 if the graph has no blocks). The |BCC1| column of the paper's Tab. 2.
func (r *Result) LargestBlock() (size int32, label int32) {
	sizes := r.BlockSizes()
	label = -1
	for l, s := range sizes {
		if s > size {
			size, label = s, int32(l)
		}
	}
	return size, label
}

// Block returns the sorted vertex set of one block by dense label, or nil
// if the label is not a block.
func (r *Result) Block(label int32) []int32 {
	if label < 0 || int(label) >= r.NumLabels || r.Head[label] == -1 {
		return nil
	}
	members := prim.PackIndices(len(r.Label), func(v int) bool {
		return r.Label[v] == label && r.Parent[v] != -1
	})
	out := append([]int32{r.Head[label]}, members...)
	sortInt32(out)
	return out
}

// NumArticulationPoints counts articulation points without materializing
// them (parallel count).
func (r *Result) NumArticulationPoints() int {
	n := len(r.Label)
	blocksOf := make([]int32, n)
	for _, h := range r.Head {
		if h != -1 {
			blocksOf[h]++
		}
	}
	return prim.CountOnes(n, func(v int) bool {
		c := blocksOf[v]
		if r.Parent[v] != -1 {
			c++
		}
		return c >= 2
	})
}

// NumBridges counts bridge edges of g without materializing them.
func (r *Result) NumBridges(g *graph.Graph) int {
	n := len(r.Label)
	count := make([]int32, r.NumLabels)
	for v := 0; v < n; v++ {
		if r.Parent[v] != -1 {
			count[r.Label[v]]++
		}
	}
	return prim.CountOnes(n, func(v int) bool {
		p := r.Parent[v]
		if p == -1 || count[r.Label[v]] != 1 {
			return false
		}
		mult := 0
		for _, x := range g.Neighbors(int32(v)) {
			if x == p {
				mult++
			}
		}
		return mult == 1
	})
}
