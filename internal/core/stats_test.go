package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

func TestBlockSizes(t *testing.T) {
	g := gen.CliqueChain(3, 5)
	res := BCC(g, Options{Seed: 1})
	sizes := res.BlockSizes()
	nonZero := 0
	for _, s := range sizes {
		if s != 0 {
			nonZero++
			if s != 5 {
				t.Fatalf("block size %d, want 5", s)
			}
		}
	}
	if nonZero != 3 {
		t.Fatalf("blocks with size = %d, want 3", nonZero)
	}
}

func TestLargestBlock(t *testing.T) {
	g := gen.Barbell(6, 4) // K6 blocks of size 6, bridges of size 2
	res := BCC(g, Options{Seed: 2})
	size, label := res.LargestBlock()
	if size != 6 {
		t.Fatalf("largest block size %d, want 6", size)
	}
	blk := res.Block(label)
	if len(blk) != 6 {
		t.Fatalf("Block() returned %d vertices", len(blk))
	}
}

func TestLargestBlockEmpty(t *testing.T) {
	g := graph.MustFromEdges(4, nil)
	res := BCC(g, Options{Seed: 3})
	size, label := res.LargestBlock()
	if size != 0 || label != -1 {
		t.Fatalf("edgeless: size=%d label=%d", size, label)
	}
}

func TestBlockInvalidLabel(t *testing.T) {
	g := gen.Cycle(5)
	res := BCC(g, Options{Seed: 4})
	if res.Block(-1) != nil || res.Block(int32(res.NumLabels)) != nil {
		t.Fatal("out-of-range labels must return nil")
	}
}

func TestBlockMatchesBlocks(t *testing.T) {
	g := gen.ER(80, 160, 5)
	res := BCC(g, Options{Seed: 5})
	blocks := res.Blocks()
	// Sum of per-label Block() sizes equals the blocks' total size.
	total := 0
	for l := int32(0); int(l) < res.NumLabels; l++ {
		total += len(res.Block(l))
	}
	want := 0
	for _, b := range blocks {
		want += len(b)
	}
	if total != want {
		t.Fatalf("Block() total %d != Blocks() total %d", total, want)
	}
}

func TestCountsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(100)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(trial)})
		if got, want := res.NumArticulationPoints(), len(res.ArticulationPoints()); got != want {
			t.Fatalf("trial %d: NumArticulationPoints %d != %d", trial, got, want)
		}
		if got, want := res.NumBridges(g), len(res.Bridges(g)); got != want {
			t.Fatalf("trial %d: NumBridges %d != %d", trial, got, want)
		}
	}
}

func TestBlockSizesSumToMembership(t *testing.T) {
	g := gen.RMAT(10, 6, 7)
	res := BCC(g, Options{Seed: 7})
	ref := seqbcc.BCC(g)
	sizes := res.BlockSizes()
	var total int64
	for _, s := range sizes {
		total += int64(s)
	}
	var want int64
	for _, b := range ref.Blocks {
		want += int64(len(b))
	}
	if total != want {
		t.Fatalf("membership total %d != seq %d", total, want)
	}
}
