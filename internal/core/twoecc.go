package core

import (
	"repro/internal/conn"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// TwoECC computes the 2-edge-connected components of g from an existing
// biconnectivity decomposition: vertices are in the same 2ECC iff they are
// connected without crossing a bridge. Returned as dense labels per vertex
// (every vertex gets a label; isolated vertices are singleton components).
//
// This is the bridge-side sibling of the block decomposition: blocks split
// at articulation points, 2ECCs split at bridges. It reuses the filtered
// connectivity machinery of Last-CC with a "skip bridges" predicate, so it
// runs in the same O(n+m) work / polylog span / O(n) space envelope.
func (r *Result) TwoECC(g *graph.Graph) []int32 { return r.TwoECCIn(nil, g) }

// TwoECCIn is TwoECC running on the execution context e (nil = the
// process-global default).
func (r *Result) TwoECCIn(e *parallel.Exec, g *graph.Graph) []int32 {
	// Per-label member counts identify bridge tree edges: a tree edge
	// (p(v), v) is a bridge iff v's label is a singleton and the edge has
	// multiplicity 1 (same logic as Bridges). The counts are exactly
	// LabelSizes, cached on constructor-built Results.
	count := r.LabelSizes()
	isBridge := func(u, w int32) bool {
		// Orient to (parent, child).
		if r.Parent[w] != u {
			u, w = w, u
			if r.Parent[w] != u {
				return false
			}
		}
		if count[r.Label[w]] != 1 {
			return false
		}
		mult := 0
		for _, x := range g.Neighbors(w) {
			if x == u {
				mult++
			}
		}
		return mult == 1
	}
	cc := conn.Connectivity(g, conn.Options{
		Seed:   0x2ecc,
		Filter: func(u, w int32) bool { return !isBridge(u, w) },
		Exec:   e,
	})
	return cc.NormalizeIn(e)
}
