package core

import (
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestLazyCachesConcurrentFirstCall hammers the lazily-built caches —
// ArticulationPoints, BlockCutTree, LabelSizes — with concurrent first
// calls on one shared Result and requires every caller to get the
// identical cached object. Meant for the -race shard: before the
// sync.Once guards this would be a write-write race on the cache fields.
func TestLazyCachesConcurrentFirstCall(t *testing.T) {
	g := gen.RMAT(12, 8, 0x77)
	res := BCC(g, Options{Seed: 7}) // topology caches still lazy here

	const workers = 16
	aps := make([][]int32, workers)
	bcts := make([]*BlockCutTree, workers)
	sizes := make([][]int32, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				aps[i] = res.ArticulationPoints()
				bcts[i] = res.BlockCutTree()
				sizes[i] = res.LabelSizes()
			case 1:
				bcts[i] = res.BlockCutTree()
				sizes[i] = res.LabelSizes()
				aps[i] = res.ArticulationPoints()
			default:
				sizes[i] = res.LabelSizes()
				aps[i] = res.ArticulationPoints()
				bcts[i] = res.BlockCutTree()
			}
		}(i)
	}
	wg.Wait()

	wantAP, wantBCT, wantSizes := res.ArticulationPoints(), res.BlockCutTree(), res.LabelSizes()
	if len(wantAP) == 0 {
		t.Fatal("degenerate test graph: no articulation points")
	}
	for i := 0; i < workers; i++ {
		if bcts[i] != wantBCT {
			t.Fatalf("worker %d: got a different *BlockCutTree than the cached one", i)
		}
		if &aps[i][0] != &wantAP[0] || len(aps[i]) != len(wantAP) {
			t.Fatalf("worker %d: ArticulationPoints not the cached slice", i)
		}
		if &sizes[i][0] != &wantSizes[0] || len(sizes[i]) != len(wantSizes) {
			t.Fatalf("worker %d: LabelSizes not the cached slice", i)
		}
	}
}

// TestLazyCachesCallerAssembledResult checks the lazy accessors on a
// Result assembled by hand (no constructor, no precompute): they must
// compute, cache, and agree with a constructor-built Result.
func TestLazyCachesCallerAssembledResult(t *testing.T) {
	g := gen.Grid2D(8, 8, false)
	built := BCC(g, Options{Seed: 3})
	manual := &Result{
		Label:     built.Label,
		Head:      built.Head,
		Parent:    built.Parent,
		NumLabels: built.NumLabels,
		NumBCC:    built.NumBCC,
	}
	if got, want := manual.BlockCutTree(), built.BlockCutTree(); got.NumBlocks != want.NumBlocks {
		t.Fatalf("NumBlocks = %d, want %d", got.NumBlocks, want.NumBlocks)
	}
	if got, want := manual.ArticulationPoints(), built.ArticulationPoints(); len(got) != len(want) {
		t.Fatalf("len(ArticulationPoints) = %d, want %d", len(got), len(want))
	}
	if manual.BlockCutTree() != manual.BlockCutTree() {
		t.Fatal("BlockCutTree not cached on a caller-assembled Result")
	}
}
