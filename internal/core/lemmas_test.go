package core

// Property tests that encode the paper's correctness lemmas (Sec. 4.2)
// directly against the algorithm's internal state, on random graphs. These
// go beyond end-to-end equality with SEQ: they pin the *reasons* the
// algorithm is correct.

import (
	"math/rand"
	"testing"

	"repro/internal/conn"
	"repro/internal/etour"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
	"repro/internal/tags"
	"repro/internal/uf"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
	}
	return graph.MustFromEdges(n, edges)
}

func tagsOf(g *graph.Graph, seed uint64) *tags.Tags {
	cc := conn.Connectivity(g, conn.Options{Seed: seed, WantForest: true})
	rt := etour.Root(g.NumVertices(), cc.Forest, cc.Comp)
	return tags.Compute(g, rt)
}

// Lemma 4.3: vertices of each BCC are connected within the spanning tree.
func TestLemma43BlocksConnectedInTree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8+rng.Intn(60), rng.Intn(150))
		tg := tagsOf(g, uint64(trial))
		for _, block := range seqbcc.BCC(g).Blocks {
			in := map[int32]bool{}
			for _, v := range block {
				in[v] = true
			}
			s := uf.NewSeq(g.NumVertices())
			for _, v := range block {
				if p := tg.Parent[v]; p != -1 && in[p] {
					s.Union(v, p)
				}
			}
			root := s.Find(block[0])
			for _, v := range block {
				if s.Find(v) != root {
					t.Fatalf("trial %d: block %v not connected in the spanning tree", trial, block)
				}
			}
		}
	}
}

// Lemma 4.6: for a plain (non-fence) tree edge x–y with x = p(y) and
// z = p(x), the vertices x, y, z are biconnected.
func TestLemma46PlainEdgeTriple(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8+rng.Intn(60), rng.Intn(200))
		tg := tagsOf(g, uint64(trial))
		res := BCC(g, Options{Seed: uint64(trial)})
		for y := int32(0); y < g.N; y++ {
			x := tg.Parent[y]
			if x == -1 {
				continue
			}
			z := tg.Parent[x]
			if z == -1 {
				continue
			}
			if tg.Fence(x, y) || tg.Fence(y, x) {
				continue // not plain
			}
			if !res.Biconnected(x, y) || !res.Biconnected(y, z) || !res.Biconnected(x, z) {
				t.Fatalf("trial %d: plain edge (%d,%d) with grandparent %d not pairwise biconnected",
					trial, x, y, z)
			}
		}
	}
}

// Lemma 4.4: non-root BCC heads are articulation points and vice versa.
func TestLemma44HeadsAreArticulationPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8+rng.Intn(60), rng.Intn(150))
		res := BCC(g, Options{Seed: uint64(trial)})
		want := map[int32]bool{}
		for _, a := range seqbcc.BCC(g).ArticulationPoints() {
			want[a] = true
		}
		// Every non-root head of a label whose component has other blocks
		// attached... the clean statement: v is an articulation point iff
		// it belongs to >= 2 blocks, which ArticulationPoints implements;
		// check it against SEQ, and check heads specifically:
		for l, h := range res.Head {
			if h == -1 {
				continue
			}
			// A head is an articulation point unless it is a tree root
			// heading exactly one block.
			headsOf := 0
			for _, h2 := range res.Head {
				if h2 == h {
					headsOf++
				}
			}
			isRoot := res.Parent[h] == -1
			if !isRoot || headsOf >= 2 {
				if !want[h] {
					t.Fatalf("trial %d: head %d of label %d is not an articulation point per SEQ",
						trial, h, l)
				}
			}
		}
	}
}

// Theorem 4.11: vertices connected in the skeleton G' are biconnected.
func TestThm411SkeletonConnectedImpliesBiconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8+rng.Intn(50), rng.Intn(150))
		res := BCC(g, Options{Seed: uint64(trial)})
		ref := map[[2]int32]bool{}
		for _, b := range seqbcc.BCC(g).Blocks {
			for i := 0; i < len(b); i++ {
				for j := i + 1; j < len(b); j++ {
					ref[[2]int32{b[i], b[j]}] = true
				}
			}
		}
		for u := int32(0); u < g.N; u++ {
			for w := u + 1; w < g.N; w++ {
				if res.Parent[u] == -1 || res.Parent[w] == -1 {
					continue // roots are singletons in G'
				}
				if res.Label[u] == res.Label[w] && !ref[[2]int32{u, w}] {
					t.Fatalf("trial %d: %d,%d share skeleton component but are not biconnected",
						trial, u, w)
				}
			}
		}
	}
}

// Root isolation: every tree edge incident to a root is a fence edge and
// every non-tree edge at a root is a back edge, so roots are always
// singletons in the skeleton (the observation behind head == -1 labels).
func TestRootIsolatedInSkeleton(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 8+rng.Intn(60), rng.Intn(200))
		tg := tagsOf(g, uint64(trial))
		for v := int32(0); v < g.N; v++ {
			if tg.Parent[v] != -1 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w != v && tg.InSkeleton(v, w) {
					t.Fatalf("trial %d: root %d has skeleton edge to %d", trial, v, w)
				}
			}
		}
	}
}

// Fencing intuition from gen structures: in a barbell, the path edges are
// fences; inside the cliques no tree edge is a fence except those touching
// clique boundary articulation points.
func TestFenceEdgesOnBarbell(t *testing.T) {
	g := gen.Barbell(5, 3)
	tg := tagsOf(g, 7)
	fences := 0
	for v := int32(0); v < g.N; v++ {
		if p := tg.Parent[v]; p != -1 && (tg.Fence(p, v) || tg.Fence(v, p)) {
			fences++
		}
	}
	// Exactly: 3 bridge edges + 2 fence edges where the blocks hang off the
	// tree root's component boundaries. At minimum the 3 bridges fence.
	if fences < 3 {
		t.Fatalf("barbell has %d fence tree edges, want >= 3", fences)
	}
}
