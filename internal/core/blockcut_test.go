package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBlockCutTreeChain(t *testing.T) {
	// Chain of 5: 4 blocks, 3 cuts, path-shaped tree.
	g := gen.Chain(5)
	res := BCC(g, Options{Seed: 1})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 4 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("block-cut structure is not a tree")
	}
	// Each cut joins exactly 2 blocks; end blocks have degree 1.
	for i := 0; i < len(bct.Cuts); i++ {
		if d := bct.Degree(int32(bct.NumBlocks + i)); d != 2 {
			t.Fatalf("cut %d degree %d", i, d)
		}
	}
}

func TestBlockCutTreeStar(t *testing.T) {
	g := gen.Star(6)
	res := BCC(g, Options{Seed: 2})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 5 || len(bct.Cuts) != 1 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if bct.Degree(int32(bct.NumBlocks)) != 5 {
		t.Fatalf("center degree %d", bct.Degree(int32(bct.NumBlocks)))
	}
	if !bct.IsTree() {
		t.Fatal("not a tree")
	}
}

func TestBlockCutTreeBiconnected(t *testing.T) {
	g := gen.Cycle(10)
	res := BCC(g, Options{Seed: 3})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 1 || len(bct.Cuts) != 0 {
		t.Fatalf("cycle: blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("single node must be a tree")
	}
}

func TestBlockCutTreeCliqueChain(t *testing.T) {
	g := gen.CliqueChain(4, 4)
	res := BCC(g, Options{Seed: 4})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 4 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("not a tree")
	}
}

func TestBlockCutTreeDisconnected(t *testing.T) {
	g := gen.Disjoint(gen.Chain(4), gen.Cycle(5), gen.Star(4))
	res := BCC(g, Options{Seed: 5})
	bct := res.BlockCutTree()
	// chain: 3 blocks + 2 cuts; cycle: 1 block; star: 3 blocks + 1 cut
	if bct.NumBlocks != 7 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("block-cut forest invariant violated")
	}
}

func TestBlockCutTreeRandomForestInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(100)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(trial)})
		bct := res.BlockCutTree()
		if !bct.IsTree() {
			t.Fatalf("trial %d: block-cut structure is not a forest", trial)
		}
		// Every cut node has degree >= 2 (it joins at least two blocks).
		for i := range bct.Cuts {
			if bct.Degree(int32(bct.NumBlocks+i)) < 2 {
				t.Fatalf("trial %d: cut %d has degree %d", trial, i,
					bct.Degree(int32(bct.NumBlocks+i)))
			}
		}
		if bct.NumBlocks != res.NumBCC {
			t.Fatalf("trial %d: blocks %d != NumBCC %d", trial, bct.NumBlocks, res.NumBCC)
		}
	}
}

func TestBlockCutTreeDenseFieldsAndCaching(t *testing.T) {
	g := gen.CliqueChain(4, 4)
	res := BCC(g, Options{Seed: 7})
	bct := res.BlockCutTree()
	if res.BlockCutTree() != bct {
		t.Fatal("BlockCutTree is not cached on a constructor-built Result")
	}
	ap := res.ArticulationPoints()
	if &ap[0] != &res.ArticulationPoints()[0] {
		t.Fatal("ArticulationPoints is not cached on a constructor-built Result")
	}
	// CutNode is the dense inverse of Cuts; all other vertices map to -1.
	want := make([]int32, g.NumVertices())
	for v := range want {
		want[v] = -1
	}
	for i, v := range bct.Cuts {
		want[v] = int32(bct.NumBlocks + i)
	}
	for v := range want {
		if bct.CutNode[v] != want[v] {
			t.Fatalf("CutNode[%d] = %d, want %d", v, bct.CutNode[v], want[v])
		}
	}
	// Every edge joins a block node and a cut node, and ForestEdges
	// enumerates each exactly once with the block first.
	fe := bct.ForestEdges()
	if 2*len(fe) != len(bct.Adj) {
		t.Fatalf("ForestEdges %d edges, CSR has %d arcs", len(fe), len(bct.Adj))
	}
	for _, e := range fe {
		if int(e.U) >= bct.NumBlocks || int(e.W) < bct.NumBlocks {
			t.Fatalf("edge (%d,%d) does not join a block to a cut", e.U, e.W)
		}
	}
	// A caller-assembled Result (no caches) still answers, fresh per call.
	bare := &Result{Label: res.Label, Head: res.Head, Parent: res.Parent,
		NumLabels: res.NumLabels, NumBCC: res.NumBCC}
	if got := bare.BlockCutTree(); got.NumBlocks != bct.NumBlocks || len(got.Cuts) != len(bct.Cuts) {
		t.Fatalf("uncached BlockCutTree: blocks=%d cuts=%d, want %d/%d",
			got.NumBlocks, len(got.Cuts), bct.NumBlocks, len(bct.Cuts))
	}
}
