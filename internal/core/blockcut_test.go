package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBlockCutTreeChain(t *testing.T) {
	// Chain of 5: 4 blocks, 3 cuts, path-shaped tree.
	g := gen.Chain(5)
	res := BCC(g, Options{Seed: 1})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 4 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("block-cut structure is not a tree")
	}
	// Each cut joins exactly 2 blocks; end blocks have degree 1.
	for i := 0; i < len(bct.Cuts); i++ {
		if d := len(bct.Adj[bct.NumBlocks+i]); d != 2 {
			t.Fatalf("cut %d degree %d", i, d)
		}
	}
}

func TestBlockCutTreeStar(t *testing.T) {
	g := gen.Star(6)
	res := BCC(g, Options{Seed: 2})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 5 || len(bct.Cuts) != 1 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if len(bct.Adj[bct.NumBlocks]) != 5 {
		t.Fatalf("center degree %d", len(bct.Adj[bct.NumBlocks]))
	}
	if !bct.IsTree() {
		t.Fatal("not a tree")
	}
}

func TestBlockCutTreeBiconnected(t *testing.T) {
	g := gen.Cycle(10)
	res := BCC(g, Options{Seed: 3})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 1 || len(bct.Cuts) != 0 {
		t.Fatalf("cycle: blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("single node must be a tree")
	}
}

func TestBlockCutTreeCliqueChain(t *testing.T) {
	g := gen.CliqueChain(4, 4)
	res := BCC(g, Options{Seed: 4})
	bct := res.BlockCutTree()
	if bct.NumBlocks != 4 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("not a tree")
	}
}

func TestBlockCutTreeDisconnected(t *testing.T) {
	g := gen.Disjoint(gen.Chain(4), gen.Cycle(5), gen.Star(4))
	res := BCC(g, Options{Seed: 5})
	bct := res.BlockCutTree()
	// chain: 3 blocks + 2 cuts; cycle: 1 block; star: 3 blocks + 1 cut
	if bct.NumBlocks != 7 || len(bct.Cuts) != 3 {
		t.Fatalf("blocks=%d cuts=%d", bct.NumBlocks, len(bct.Cuts))
	}
	if !bct.IsTree() {
		t.Fatal("block-cut forest invariant violated")
	}
}

func TestBlockCutTreeRandomForestInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(100)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		res := BCC(g, Options{Seed: uint64(trial)})
		bct := res.BlockCutTree()
		if !bct.IsTree() {
			t.Fatalf("trial %d: block-cut structure is not a forest", trial)
		}
		// Every cut node has degree >= 2 (it joins at least two blocks).
		for i := range bct.Cuts {
			if len(bct.Adj[bct.NumBlocks+i]) < 2 {
				t.Fatalf("trial %d: cut %d has degree %d", trial, i,
					len(bct.Adj[bct.NumBlocks+i]))
			}
		}
		if bct.NumBlocks != res.NumBCC {
			t.Fatalf("trial %d: blocks %d != NumBCC %d", trial, bct.NumBlocks, res.NumBCC)
		}
	}
}
