package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// canonBlocks returns the block decomposition in a schedule-independent
// canonical form. With >1 workers the concurrent union-find makes the
// spanning forest (and hence Label/Parent values) schedule-dependent, but
// the set of blocks is a graph property and must never vary.
func canonBlocks(r *Result) []string {
	var out []string
	for _, blk := range r.Blocks() {
		out = append(out, fmt.Sprint(blk))
	}
	sort.Strings(out)
	return out
}

func sameBlocks(t *testing.T, ctx string, got, want *Result) {
	t.Helper()
	if got.NumBCC != want.NumBCC {
		t.Fatalf("%s: NumBCC %d, want %d", ctx, got.NumBCC, want.NumBCC)
	}
	gb, wb := canonBlocks(got), canonBlocks(want)
	if len(gb) != len(wb) {
		t.Fatalf("%s: %d blocks, want %d", ctx, len(gb), len(wb))
	}
	for i := range gb {
		if gb[i] != wb[i] {
			t.Fatalf("%s: block %d = %s, want %s", ctx, i, gb[i], wb[i])
		}
	}
}

// TestBCCScratchMatchesFresh runs BCC repeatedly with one shared arena and
// checks every run agrees with a fresh-allocation run — dirty recycled
// buffers must never leak into results.
func TestBCCScratchMatchesFresh(t *testing.T) {
	graphs := []*graph.Graph{
		gen.RMAT(10, 8, 0x11),
		gen.Grid2D(24, 24, true),
		gen.Chain(300),
		gen.KNN(400, 3, 0x22),
		graph.MustFromEdges(1, nil),
		graph.MustFromEdges(5, []graph.Edge{{U: 0, W: 0}, {U: 1, W: 2}, {U: 1, W: 2}}),
	}
	sc := graph.NewScratch()
	for round := 0; round < 3; round++ {
		for gi, g := range graphs {
			want := BCC(g, Options{Seed: 7})
			got := BCC(g, Options{Seed: 7, Scratch: sc})
			sameBlocks(t, fmt.Sprintf("round %d graph %d", round, gi), got, want)
		}
	}
}

// TestBCCScratchDeterministicSingleProc pins one worker, where the whole
// pipeline is deterministic, and requires bit-identical Label/Parent/Head
// between scratch-backed and fresh runs.
func TestBCCScratchDeterministicSingleProc(t *testing.T) {
	old := parallel.SetProcs(1)
	defer parallel.SetProcs(old)
	sc := graph.NewScratch()
	for _, g := range []*graph.Graph{gen.RMAT(10, 8, 0x11), gen.Grid2D(24, 24, true)} {
		want := BCC(g, Options{Seed: 7})
		for r := 0; r < 3; r++ {
			got := BCC(g, Options{Seed: 7, Scratch: sc})
			for v := range want.Label {
				if got.Label[v] != want.Label[v] || got.Parent[v] != want.Parent[v] {
					t.Fatalf("run %d: vertex %d label/parent (%d,%d) want (%d,%d)",
						r, v, got.Label[v], got.Parent[v], want.Label[v], want.Parent[v])
				}
			}
			for l := range want.Head {
				if got.Head[l] != want.Head[l] {
					t.Fatalf("run %d: head[%d]=%d want %d", r, l, got.Head[l], want.Head[l])
				}
			}
		}
	}
}

// TestBCCScratchResultSurvivesReuse checks that a Result remains valid
// after the arena that served its run is recycled by later runs.
func TestBCCScratchResultSurvivesReuse(t *testing.T) {
	sc := graph.NewScratch()
	g := gen.RMAT(10, 8, 0x33)
	first := BCC(g, Options{Seed: 7, Scratch: sc})
	wantLabels := append([]int32(nil), first.Label...)
	wantParent := append([]int32(nil), first.Parent...)
	wantHead := append([]int32(nil), first.Head...)
	for i := 0; i < 5; i++ {
		BCC(gen.Grid2D(30, 30, false), Options{Seed: uint64(i), Scratch: sc})
	}
	for v := range wantLabels {
		if first.Label[v] != wantLabels[v] || first.Parent[v] != wantParent[v] {
			t.Fatalf("result mutated by arena reuse at vertex %d", v)
		}
	}
	for l := range wantHead {
		if first.Head[l] != wantHead[l] {
			t.Fatalf("head mutated by arena reuse at label %d", l)
		}
	}
}

// TestBCCScratchConcurrent shares one arena between concurrent BCC runs
// under the worker pool; meant for the -race shard.
func TestBCCScratchConcurrent(t *testing.T) {
	old := parallel.SetProcs(4)
	defer parallel.SetProcs(old)
	sc := graph.NewScratch()
	g1 := gen.RMAT(9, 8, 0x44)
	g2 := gen.Grid2D(20, 20, true)
	want1 := BCC(g1, Options{Seed: 3})
	want2 := BCC(g2, Options{Seed: 3})
	done := make(chan *Result, 2)
	go func() { done <- BCC(g1, Options{Seed: 3, Scratch: sc}) }()
	go func() { done <- BCC(g2, Options{Seed: 3, Scratch: sc}) }()
	for i := 0; i < 2; i++ {
		r := <-done
		want := want2
		if len(r.Label) == len(want1.Label) {
			want = want1
		}
		sameBlocks(t, "concurrent", r, want)
	}
}
