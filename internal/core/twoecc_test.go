package core

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/seqbcc"
	"repro/internal/uf"
)

// refTwoECC computes 2-edge-connected components sequentially: union all
// edges except bridges (taken from Hopcroft–Tarjan).
func refTwoECC(g *graph.Graph) *uf.Seq {
	bridges := map[graph.Edge]bool{}
	for _, e := range seqbcc.BCC(g).Bridges() {
		bridges[e] = true
	}
	s := uf.NewSeq(g.NumVertices())
	for v := int32(0); v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v >= w {
				continue
			}
			if !bridges[graph.Edge{U: v, W: w}] {
				s.Union(v, w)
			}
		}
	}
	return s
}

func assertTwoECCMatches(t *testing.T, g *graph.Graph) {
	t.Helper()
	res := BCC(g, Options{Seed: 1})
	got := res.TwoECC(g)
	ref := refTwoECC(g)
	for u := int32(0); u < g.N; u++ {
		for w := u + 1; w < g.N; w++ {
			if (got[u] == got[w]) != ref.SameSet(u, w) {
				t.Fatalf("2ECC(%d,%d): got %v, ref %v", u, w, got[u] == got[w], ref.SameSet(u, w))
			}
		}
	}
}

func TestTwoECCStructured(t *testing.T) {
	cases := []*graph.Graph{
		gen.Cycle(12),               // one 2ECC
		gen.Chain(10),               // all singletons
		gen.Barbell(4, 2),           // two K4 plus path vertices
		gen.Star(8),                 // all singletons
		gen.CliqueChain(3, 4),       // one 2ECC (no bridges!)
		gen.Grid2D(5, 6, true),      // one 2ECC
		graph.MustFromEdges(0, nil), // empty
		graph.MustFromEdges(3, nil), // isolated
		gen.Disjoint(gen.Cycle(5), gen.Chain(4)),
	}
	for i, g := range cases {
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			assertTwoECCMatches(t, g)
		})
	}
}

func TestTwoECCCliqueChainIsOneComponent(t *testing.T) {
	// Clique chains have articulation points but no bridges: a single
	// 2ECC despite multiple blocks — the decompositions genuinely differ.
	g := gen.CliqueChain(4, 4)
	res := BCC(g, Options{Seed: 2})
	labels := res.TwoECC(g)
	for v := 1; v < g.NumVertices(); v++ {
		if labels[v] != labels[0] {
			t.Fatalf("clique chain split at %d", v)
		}
	}
	if res.NumBCC != 4 {
		t.Fatalf("but it still has %d blocks, want 4", res.NumBCC)
	}
}

func TestTwoECCParallelEdgeNotBridge(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, W: 1}, {U: 0, W: 1}, {U: 1, W: 2}})
	res := BCC(g, Options{Seed: 3})
	labels := res.TwoECC(g)
	if labels[0] != labels[1] {
		t.Fatal("parallel pair must stay together")
	}
	if labels[1] == labels[2] {
		t.Fatal("bridge endpoint merged")
	}
}

func TestTwoECCQuickRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(80)
		m := rng.Intn(3 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: int32(rng.Intn(n)), W: int32(rng.Intn(n))})
		}
		assertTwoECCMatches(t, graph.MustFromEdges(n, edges))
	}
}
