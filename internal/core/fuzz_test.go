package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/seqbcc"
)

// FuzzBCCMatchesSeq decodes arbitrary bytes into a multigraph (two bytes
// per edge over at most 64 vertices) and checks FAST-BCC against
// Hopcroft–Tarjan. Runs its seed corpus under plain `go test`; use
// `go test -fuzz FuzzBCCMatchesSeq ./internal/core` to explore.
func FuzzBCCMatchesSeq(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x20})             // path
	f.Add([]byte{0x01, 0x12, 0x20, 0x01})       // triangle + parallel edge
	f.Add([]byte{0x00, 0x11, 0x22})             // self-loops
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89}) // matching
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16 // ids from a nibble
		edges := make([]graph.Edge, 0, len(data))
		for _, b := range data {
			u := int32(b >> 4)
			w := int32(b & 0xf)
			edges = append(edges, graph.Edge{U: u, W: w})
		}
		g := graph.MustFromEdges(n, edges)
		seed := uint64(len(data))*0x9e37 + 17
		res := BCC(g, Options{Seed: seed})
		ref := seqbcc.BCC(g)
		if res.NumBCC != ref.NumBCC() {
			t.Fatalf("NumBCC %d != %d for edges %v", res.NumBCC, ref.NumBCC(), edges)
		}
		if !check.Equal(res.Blocks(), ref.Blocks) {
			t.Fatalf("blocks differ for edges %v:\n fast %s\n  seq %s",
				edges, check.Describe(res.Blocks()), check.Describe(ref.Blocks))
		}
		// Derived structures must stay internally consistent too.
		if !res.BlockCutTree().IsTree() {
			t.Fatalf("block-cut forest invariant violated for %v", edges)
		}
	})
}
