package core

import (
	"testing"
	"time"

	"repro/internal/gen"
)

// TestStepTimesCoverFinalization pins the StepTimes contract after the
// fused-finalization rework: the four reported steps map one-to-one onto
// the paper's phases and together cover essentially the whole
// construction. In particular the Last-CC step must include the fused
// finalization (heads, block count, label sizes) — if someone moves
// finalization work outside the step timers again, the covered fraction
// collapses and this fails. The 50% floor is far below the real value
// (the timers miss only a few struct writes) but far above what any
// regression that untimes real work could sustain.
func TestStepTimesCoverFinalization(t *testing.T) {
	g := gen.RMAT(13, 8, 0x5e)
	start := time.Now()
	res := BCC(g, Options{Seed: 7})
	wall := time.Since(start)

	tm := res.Times
	if tm.FirstCC <= 0 || tm.Rooting <= 0 || tm.Tagging <= 0 || tm.LastCC <= 0 {
		t.Fatalf("every step must report positive time, got %+v", tm)
	}
	if tm.Total() > wall {
		t.Fatalf("step total %v exceeds wall time %v", tm.Total(), wall)
	}
	if tm.Total() < wall/2 {
		t.Fatalf("steps cover %v of %v wall time — construction work is escaping the step timers", tm.Total(), wall)
	}
	// The label-size cache must have been produced inside the timed
	// finalization: reading it now is cache-hit-only and must agree with
	// a from-scratch recount.
	sizes := res.LabelSizes()
	var nonRoot int32
	for _, c := range sizes {
		nonRoot += c
	}
	var want int32
	for v := range res.Parent {
		if res.Parent[v] != -1 {
			want++
		}
	}
	if nonRoot != want {
		t.Fatalf("fused label sizes sum to %d non-root vertices, want %d", nonRoot, want)
	}
}

// TestNumBCCMatchesHeadScan checks the O(1) block count of the fused
// finalization (NumLabels − numTrees) against the definition: labels
// with a component head.
func TestNumBCCMatchesHeadScan(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed uint64
	}{{"rmat", 0x11}, {"grid", 0x22}} {
		g := gen.RMAT(11, 8, tc.seed)
		if tc.name == "grid" {
			g = gen.Grid2D(40, 40, true)
		}
		res := BCC(g, Options{Seed: tc.seed})
		withHead := 0
		for _, h := range res.Head {
			if h != -1 {
				withHead++
			}
		}
		if res.NumBCC != withHead {
			t.Fatalf("%s: NumBCC = %d, but %d labels have heads", tc.name, res.NumBCC, withHead)
		}
	}
}
